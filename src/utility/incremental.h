#ifndef PRIVREC_UTILITY_INCREMENTAL_H_
#define PRIVREC_UTILITY_INCREMENTAL_H_

#include <span>

#include "graph/csr_graph.h"
#include "graph/edge_delta.h"
#include "utility/utility_vector.h"
#include "utility/utility_workspace.h"

namespace privrec {

/// Per-intermediate degree weight of a 2-hop utility, evaluated at an
/// out-degree. Must be the exact function Compute uses, so patched terms
/// cancel bit-for-bit against the cached ones.
using DegreeWeightFn = double (*)(uint32_t degree);

/// Shared O(deg(u) + deg(v)) patch engine for every utility of the form
///   u_r[i] = Σ_{intermediate z on an r→z→i path} weight(out-deg(z))
/// (common neighbors: weight ≡ 1; Adamic-Adar: 1/ln(max(d,2)); resource
/// allocation: 1/d). Given the target's cached vector on the graph
/// immediately BEFORE `delta` and the snapshot immediately AFTER it,
/// produces the post-delta vector without a 2-hop recomputation:
///  - non-endpoint targets adjacent to a toggled endpoint gain/lose the
///    other endpoint's common-neighbor term and (for non-constant
///    weights) have every path through that endpoint reweighted for its
///    ±1 degree shift;
///  - an endpoint target gains/loses the other endpoint as a whole
///    first-hop/intermediate (and as a candidate: the paper's convention
///    excludes neighbors, which FinalizeUtilityScores re-derives from the
///    post-delta graph);
///  - unaffected targets (see EdgeDeltaAffectsTarget) pass through
///    unchanged.
///
/// Exactness: with `constant_weight` (common neighbors) all arithmetic is
/// ±1 on small integers — the result is bitwise-identical to a fresh
/// Compute. Otherwise scores match up to float-rounding dust; slots
/// patched to |value| < 1e-9 are rounded to exactly zero so the nonzero
/// support always matches a fresh Compute (genuine scores of the shipped
/// weight functions are ≥ 1/ln(n), orders of magnitude above the
/// threshold — a utility whose true scores can fall below it must not use
/// this engine).
UtilityVector PatchTwoHopUtility(const CsrGraph& graph, const EdgeDelta& delta,
                                 NodeId target, const UtilityVector& cached,
                                 UtilityWorkspace& workspace,
                                 DegreeWeightFn weight, bool constant_weight);

/// Multi-delta generalization (the "sequential multi-delta patching"
/// follow-up of README "Incremental maintenance"): patches the target's
/// vector across a whole ordered journal window in ONE pass against the
/// post-window snapshot — no intermediate graph states are materialized.
/// Deltas that cancel inside the window net to nothing; every "dirty"
/// intermediate z (a node whose out-adjacency changed, or that
/// entered/left the target's first-hop set) has its pre-window
/// contribution subtracted — reconstructed from the final snapshot minus
/// the net arc changes — and its post-window contribution re-added from
/// the final snapshot directly. Candidates that left the target's
/// neighborhood are rebuilt from scratch (their cached entries were
/// suppressed). Cost: O(Δ log Δ + Σ_z∈dirty deg(z)).
///
/// Exactness matches the single-delta engine: bitwise for constant
/// weights (every adjustment is ±1 on small integers); support-exact with
/// float-rounding dust below 1e-9 otherwise (the subtract-then-re-add of
/// surviving paths introduces dust the single-delta engine avoids, which
/// is why windows of size one dispatch to PatchTwoHopUtility).
/// `deltas` must be the consecutive journal window between the cached
/// vector's graph and `graph`, in order; `graph` is the post-window
/// snapshot.
UtilityVector PatchTwoHopUtilityBatch(const CsrGraph& graph,
                                      std::span<const EdgeDelta> deltas,
                                      NodeId target,
                                      const UtilityVector& cached,
                                      UtilityWorkspace& workspace,
                                      DegreeWeightFn weight,
                                      bool constant_weight);

/// Jaccard patch engine, single- or multi-delta: u_i = I/(d_r + d_i - I)
/// with I the two-hop intersection. The union-size term is maintained
/// alongside the intersection by recovering the integer I from each
/// cached score against the PRE-window degrees (I = u·(d_r+d_i)/(1+u),
/// exact after rounding — I is an integer recovered through a few ulps of
/// float noise), patching I with the constant-weight count engine, and
/// re-deriving every score from the POST-window degrees with the same
/// float expression JaccardUtility::Compute uses — so the result is
/// bitwise-identical to a fresh Compute.
///
/// UNDIRECTED graphs only (checked): a directed Compute can suppress
/// full-intersection candidates whose out-degree is zero (uni = 0), so
/// its cached support under-represents {I > 0} and a support-driven patch
/// cannot be exact — JaccardUtility routes directed repairs to a
/// recompute instead.
///
/// Unlike the pure two-hop family, Jaccard's scores also move when a
/// CANDIDATE endpoint's degree shifts (the union term), which the
/// structural EdgeDeltaAffectsTarget test does not see; callers must gate
/// repairs on JaccardUtility::EdgeDeltaAffects (which widens the test by
/// the cached support) rather than the structural test alone.
UtilityVector PatchJaccardUtility(const CsrGraph& graph,
                                  std::span<const EdgeDelta> deltas,
                                  NodeId target, const UtilityVector& cached,
                                  UtilityWorkspace& workspace);

/// Exact affectedness test for truncated-walk utilities (Katz, personalized
/// PageRank): true iff some window delta's changed out-list can be READ by
/// a walk of at most `max_hops` arcs from `target` — i.e. some delta TAIL
/// (the arc's source; both endpoints on undirected graphs) is the target
/// itself or reachable from it within `max_hops` hops. Reachability runs
/// over the UNION of the post-window snapshot's arcs and every window arc
/// (injected regardless of add/remove): the union is a supergraph of every
/// intermediate state, so "tail unreachable in the union" proves no walk in
/// ANY state of the window touches a changed list — the cached vector is
/// exactly current and may be kept.
///
/// BFS never re-expands `target`, which matches both walk conventions:
/// Katz walks avoid the target as an intermediate, and for PPR (walks may
/// revisit the target) any walk through the target has a suffix from the
/// target at most as long, so plain BFS reachability is equivalent.
bool WindowWithinWalkCone(const CsrGraph& graph,
                          std::span<const EdgeDelta> window, NodeId target,
                          int max_hops);

}  // namespace privrec

#endif  // PRIVREC_UTILITY_INCREMENTAL_H_
