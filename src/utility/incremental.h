#ifndef PRIVREC_UTILITY_INCREMENTAL_H_
#define PRIVREC_UTILITY_INCREMENTAL_H_

#include "graph/csr_graph.h"
#include "graph/edge_delta.h"
#include "utility/utility_vector.h"
#include "utility/utility_workspace.h"

namespace privrec {

/// Per-intermediate degree weight of a 2-hop utility, evaluated at an
/// out-degree. Must be the exact function Compute uses, so patched terms
/// cancel bit-for-bit against the cached ones.
using DegreeWeightFn = double (*)(uint32_t degree);

/// Shared O(deg(u) + deg(v)) patch engine for every utility of the form
///   u_r[i] = Σ_{intermediate z on an r→z→i path} weight(out-deg(z))
/// (common neighbors: weight ≡ 1; Adamic-Adar: 1/ln(max(d,2)); resource
/// allocation: 1/d). Given the target's cached vector on the graph
/// immediately BEFORE `delta` and the snapshot immediately AFTER it,
/// produces the post-delta vector without a 2-hop recomputation:
///  - non-endpoint targets adjacent to a toggled endpoint gain/lose the
///    other endpoint's common-neighbor term and (for non-constant
///    weights) have every path through that endpoint reweighted for its
///    ±1 degree shift;
///  - an endpoint target gains/loses the other endpoint as a whole
///    first-hop/intermediate (and as a candidate: the paper's convention
///    excludes neighbors, which FinalizeUtilityScores re-derives from the
///    post-delta graph);
///  - unaffected targets (see EdgeDeltaAffectsTarget) pass through
///    unchanged.
///
/// Exactness: with `constant_weight` (common neighbors) all arithmetic is
/// ±1 on small integers — the result is bitwise-identical to a fresh
/// Compute. Otherwise scores match up to float-rounding dust; slots
/// patched to |value| < 1e-9 are rounded to exactly zero so the nonzero
/// support always matches a fresh Compute (genuine scores of the shipped
/// weight functions are ≥ 1/ln(n), orders of magnitude above the
/// threshold — a utility whose true scores can fall below it must not use
/// this engine).
UtilityVector PatchTwoHopUtility(const CsrGraph& graph, const EdgeDelta& delta,
                                 NodeId target, const UtilityVector& cached,
                                 UtilityWorkspace& workspace,
                                 DegreeWeightFn weight, bool constant_weight);

}  // namespace privrec

#endif  // PRIVREC_UTILITY_INCREMENTAL_H_
