#ifndef PRIVREC_UTILITY_UTILITY_VECTOR_H_
#define PRIVREC_UTILITY_UTILITY_VECTOR_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace privrec {

/// One candidate and its utility for the target.
struct UtilityEntry {
  NodeId node;
  double utility;
};

/// Sparse utility vector ~u^{G,r} for one target node r (Section 3.1).
///
/// The candidate set follows the paper's experimental setup: every node
/// except r itself and the nodes r already links to. Only candidates with
/// nonzero utility are stored explicitly; the (typically enormous) zero
/// tail is represented by its count. All mechanisms exploit this: the
/// exponential mechanism's partition function adds `num_zero()` units of
/// weight, and the Laplace mechanism samples the zero block's noisy max in
/// O(1) (LaplaceDistribution::SampleMaxOf).
class UtilityVector {
 public:
  /// `nonzero` entries must have strictly positive utility and distinct
  /// node ids; they are sorted by descending utility on construction.
  UtilityVector(NodeId target, uint64_t num_candidates,
                std::vector<UtilityEntry> nonzero);

  NodeId target() const { return target_; }

  /// Total number of candidates (nonzero + zero-utility).
  uint64_t num_candidates() const { return num_candidates_; }

  /// Candidates with utility > 0, sorted by descending utility.
  const std::vector<UtilityEntry>& nonzero() const { return nonzero_; }

  /// Candidates with utility exactly 0 (not materialized).
  uint64_t num_zero() const { return num_candidates_ - nonzero_.size(); }

  bool empty() const { return nonzero_.empty(); }

  /// u_max; 0 when the vector has no nonzero entries.
  double max_utility() const {
    return nonzero_.empty() ? 0.0 : nonzero_.front().utility;
  }

  /// Highest-utility candidate (what R_best recommends). Requires !empty().
  NodeId argmax() const { return nonzero_.front().node; }

  /// Σ_i u_i.
  double sum() const { return sum_; }

  /// Number of candidates with utility strictly greater than `threshold`
  /// (the paper's high-utility group V_hi for threshold (1-c)·u_max).
  uint64_t CountAbove(double threshold) const;

 private:
  NodeId target_;
  uint64_t num_candidates_;
  std::vector<UtilityEntry> nonzero_;
  double sum_ = 0;
};

}  // namespace privrec

#endif  // PRIVREC_UTILITY_UTILITY_VECTOR_H_
