#include "utility/link_predictors.h"

#include <cmath>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "graph/traversal.h"
#include "utility/incremental.h"

namespace privrec {
namespace {

/// Resource allocation's per-intermediate weight; the degree-0 guard only
/// matters on directed graphs (an out-neighbor can have no out-edges) and
/// mirrors Compute's `continue`.
double InverseDegreeWeight(uint32_t degree) {
  return degree == 0 ? 0.0 : 1.0 / static_cast<double>(degree);
}

/// Linear scan: utility vectors are sorted by score, not node, and the
/// repair path asks this once per delta per cached entry.
bool HasPositiveEntry(const UtilityVector& vec, NodeId node) {
  for (const UtilityEntry& e : vec.nonzero()) {
    if (e.node == node) return true;
  }
  return false;
}

}  // namespace

// ----------------------------------------------------------------- Jaccard

UtilityVector JaccardUtility::Compute(const CsrGraph& graph, NodeId target,
                                      UtilityWorkspace& workspace) const {
  workspace.PrepareFor(graph);
  SparseCounter& common = workspace.counter(0);
  for (NodeId mid : graph.OutNeighbors(target)) {
    for (NodeId far : graph.OutNeighbors(mid)) {
      if (far == target) continue;
      common.Add(far, 1.0);
    }
  }
  SparseCounter& scores = workspace.counter(1);
  const double d_r = graph.OutDegree(target);
  for (NodeId v : common.touched()) {
    const double inter = common.Get(v);
    const double uni =
        d_r + static_cast<double>(graph.OutDegree(v)) - inter;
    if (uni > 0) scores.Add(v, inter / uni);
  }
  return FinalizeUtilityScores(graph, target, scores, workspace);
}

UtilityVector JaccardUtility::ApplyEdgeDelta(
    const CsrGraph& graph, const EdgeDelta& delta, NodeId target,
    const UtilityVector& cached, UtilityWorkspace& workspace) const {
  // Directed graphs recompute: the uni > 0 guard in Compute suppresses
  // candidates with out-degree 0 and full intersection (uni = d_r - I =
  // 0), and those hidden candidates can surface later (d_r or I moved) —
  // a cached-support patch cannot resurrect what the cache never stored.
  // Undirected graphs cannot hide support (uni >= max(d_r, d_i) >= 1
  // whenever I > 0), so they take the bitwise O(Δ) patch.
  if (graph.directed()) return Compute(graph, target, workspace);
  return PatchJaccardUtility(graph, std::span<const EdgeDelta>(&delta, 1),
                             target, cached, workspace);
}

UtilityVector JaccardUtility::ApplyEdgeDeltaBatch(
    const CsrGraph& graph, std::span<const EdgeDelta> deltas, NodeId target,
    const UtilityVector& cached, UtilityWorkspace& workspace) const {
  if (graph.directed()) return Compute(graph, target, workspace);
  return PatchJaccardUtility(graph, deltas, target, cached, workspace);
}

bool JaccardUtility::EdgeDeltaAffects(const CsrGraph& graph,
                                      const EdgeDelta& delta, NodeId target,
                                      const UtilityVector& cached) const {
  return EdgeDeltaWindowAffects(graph, std::span<const EdgeDelta>(&delta, 1),
                                target, cached);
}

bool JaccardUtility::EdgeDeltaWindowAffects(const CsrGraph& graph,
                                            std::span<const EdgeDelta> deltas,
                                            NodeId target,
                                            const UtilityVector& cached) const {
  for (const EdgeDelta& delta : deltas) {
    if (EdgeDeltaAffectsTarget(graph, delta, target)) return true;
    // Union-term dependence: the toggle shifted an endpoint's out-degree —
    // delta.u always; delta.v only when the mirror arc toggles too.
    if (HasPositiveEntry(cached, delta.u)) return true;
    if (!graph.directed() && HasPositiveEntry(cached, delta.v)) return true;
  }
  if (!graph.directed()) return false;
  // Directed hidden-support case (see ApplyEdgeDelta): a tail whose
  // out-degree was ZERO before the window can hide a full-intersection
  // candidate behind Compute's uni > 0 guard, and any arc it gained can
  // surface that candidate — cached support cannot witness it, so flag
  // every target (rare: toggles on sink nodes only). The pre-window
  // degree is the post-batch degree minus the window's net arc changes
  // per tail; a lone post-batch OutDegree test would miss a tail that
  // left zero in several steps.
  std::unordered_map<NodeId, int64_t> net;
  for (const EdgeDelta& delta : deltas) {
    net[delta.u] += delta.added ? 1 : -1;
  }
  for (const auto& [tail, shift] : net) {
    const int64_t pre = static_cast<int64_t>(graph.OutDegree(tail)) - shift;
    if (pre <= 0 || graph.OutDegree(tail) == 0) return true;
  }
  return false;
}

double JaccardUtility::SensitivityBound(const CsrGraph& graph) const {
  return graph.directed() ? 2.0 : 4.0;
}

double JaccardUtility::EdgeAlterationsT(
    const CsrGraph& graph, NodeId target,
    const UtilityVector& /*utilities*/) const {
  return static_cast<double>(graph.OutDegree(target)) + 2.0;
}

// -------------------------------------------------- PreferentialAttachment

UtilityVector PreferentialAttachmentUtility::Compute(
    const CsrGraph& graph, NodeId target, UtilityWorkspace& workspace) const {
  workspace.PrepareFor(graph);
  SparseCounter& scores = workspace.counter(0);
  const double d_r = graph.OutDegree(target);
  if (d_r > 0) {
    // Only 2-hop-reachable candidates are materialized: scoring all n
    // nodes would make the vector dense and the mechanism pointless. This
    // matches how PA is used in practice (re-ranking a candidate pool).
    for (NodeId mid : graph.OutNeighbors(target)) {
      for (NodeId far : graph.OutNeighbors(mid)) {
        if (far == target || scores.Get(far) > 0) continue;
        scores.Add(far, d_r * static_cast<double>(graph.OutDegree(far)));
      }
    }
  }
  return FinalizeUtilityScores(graph, target, scores, workspace);
}

double PreferentialAttachmentUtility::SensitivityBound(
    const CsrGraph& graph) const {
  const double d_max = graph.MaxOutDegree();
  const double per_orientation = d_max * (d_max + 2.0);
  return (graph.directed() ? 1.0 : 2.0) * per_orientation;
}

double PreferentialAttachmentUtility::EdgeAlterationsT(
    const CsrGraph& graph, NodeId /*target*/,
    const UtilityVector& /*utilities*/) const {
  return static_cast<double>(graph.MaxOutDegree()) + 2.0;
}

// ------------------------------------------------------ ResourceAllocation

UtilityVector ResourceAllocationUtility::Compute(
    const CsrGraph& graph, NodeId target, UtilityWorkspace& workspace) const {
  workspace.PrepareFor(graph);
  SparseCounter& scores = workspace.counter(0);
  for (NodeId mid : graph.OutNeighbors(target)) {
    const uint32_t degree = graph.OutDegree(mid);
    if (degree == 0) continue;
    const double weight = 1.0 / static_cast<double>(degree);
    for (NodeId far : graph.OutNeighbors(mid)) {
      if (far == target) continue;
      scores.Add(far, weight);
    }
  }
  return FinalizeUtilityScores(graph, target, scores, workspace);
}

UtilityVector ResourceAllocationUtility::ApplyEdgeDelta(
    const CsrGraph& graph, const EdgeDelta& delta, NodeId target,
    const UtilityVector& cached, UtilityWorkspace& workspace) const {
  return PatchTwoHopUtility(graph, delta, target, cached, workspace,
                            &InverseDegreeWeight,
                            /*constant_weight=*/false);
}

UtilityVector ResourceAllocationUtility::ApplyEdgeDeltaBatch(
    const CsrGraph& graph, std::span<const EdgeDelta> deltas, NodeId target,
    const UtilityVector& cached, UtilityWorkspace& workspace) const {
  return PatchTwoHopUtilityBatch(graph, deltas, target, cached, workspace,
                                 &InverseDegreeWeight,
                                 /*constant_weight=*/false);
}

double ResourceAllocationUtility::SensitivityBound(
    const CsrGraph& graph) const {
  return graph.directed() ? 1.0 : 2.0;
}

double ResourceAllocationUtility::EdgeAlterationsT(
    const CsrGraph& graph, NodeId target,
    const UtilityVector& /*utilities*/) const {
  return static_cast<double>(graph.OutDegree(target)) + 2.0;
}

// --------------------------------------------------------------------- Katz

KatzUtility::KatzUtility(double beta, int max_length)
    : beta_(beta), max_length_(max_length) {
  PRIVREC_CHECK_GT(beta, 0.0);
  PRIVREC_CHECK(max_length >= 2 && max_length <= 6);
}

std::string KatzUtility::name() const {
  return "katz[beta=" + FormatDouble(beta_, 3) +
         ",L=" + std::to_string(max_length_) + "]";
}

UtilityVector KatzUtility::Compute(const CsrGraph& graph, NodeId target,
                                   UtilityWorkspace& workspace) const {
  workspace.PrepareFor(graph);
  SparseCounter& scores = workspace.counter(0);
  // Ping-pong between two workspace counters instead of allocating a fresh
  // frontier per step.
  SparseCounter* frontier = &workspace.counter(1);
  SparseCounter* next = &workspace.counter(2);
  frontier->Add(target, 1.0);
  double weight = 1.0;
  for (int step = 1; step <= max_length_; ++step) {
    weight *= beta_;
    for (NodeId v : frontier->touched()) {
      const double walks = frontier->Get(v);
      for (NodeId w : graph.OutNeighbors(v)) {
        if (w == target) continue;  // walks avoid r as an intermediate
        next->Add(w, walks);
      }
    }
    for (NodeId w : next->touched()) scores.Add(w, weight * next->Get(w));
    frontier->Clear();
    std::swap(frontier, next);
  }
  return FinalizeUtilityScores(graph, target, scores, workspace);
}

double KatzUtility::SensitivityBound(const CsrGraph& graph) const {
  // Each truncated walk through the toggled edge has weight <= β^l; the
  // number of length-l walks through a fixed edge is <= l·d_max^{l-2}.
  // Sum over l = 1..L and both orientations.
  const double d_max = graph.MaxOutDegree();
  double bound = 0;
  double beta_pow = 1.0;
  for (int l = 1; l <= max_length_; ++l) {
    beta_pow *= beta_;
    bound += beta_pow * static_cast<double>(l) *
             std::pow(d_max, std::max(0, l - 2));
  }
  return (graph.directed() ? 1.0 : 2.0) * bound;
}

double KatzUtility::EdgeAlterationsT(
    const CsrGraph& graph, NodeId target,
    const UtilityVector& /*utilities*/) const {
  return static_cast<double>(graph.OutDegree(target)) + 2.0;
}

}  // namespace privrec
