#include "utility/link_predictors.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "graph/traversal.h"
#include "utility/incremental.h"
#include "utility/two_hop_kernels.h"

namespace privrec {
namespace {

/// Resource allocation's per-intermediate weight; the degree-0 guard only
/// matters on directed graphs (an out-neighbor can have no out-edges) and
/// mirrors Compute's `continue`.
double InverseDegreeWeight(uint32_t degree) {
  return degree == 0 ? 0.0 : 1.0 / static_cast<double>(degree);
}

/// Linear scan: utility vectors are sorted by score, not node, and the
/// repair path asks this once per delta per cached entry.
bool HasPositiveEntry(const UtilityVector& vec, NodeId node) {
  for (const UtilityEntry& e : vec.nonzero()) {
    if (e.node == node) return true;
  }
  return false;
}

}  // namespace

// ----------------------------------------------------------------- Jaccard

UtilityVector JaccardUtility::Compute(const CsrGraph& graph, NodeId target,
                                      UtilityWorkspace& workspace) const {
  // Frontier kernel with a fused union-term emit: the intersection counts
  // accumulate in the same order as the naive two-counter pass
  // (NaiveJaccardReference), and the drain applies the identical
  // uni > 0 guard and inter/uni float expression per candidate — so the
  // result is bitwise-identical while touching each candidate once
  // instead of three times.
  workspace.PrepareFor(graph);
  TwoHopScratch& scratch = workspace.two_hop();
  uint64_t expansion = 0;
  for (const NodeId mid : graph.OutNeighbors(target)) {
    expansion += graph.OutDegree(mid);
  }
  scratch.PrepareFor(graph.num_nodes(), expansion);
  const size_t frontier_size = ExpandTwoHopFrontier(
      graph, target, scratch, nullptr, /*constant_weight=*/true);
  SetNeighborBits(graph, target, scratch);
  std::vector<UtilityEntry>& nonzero = workspace.entries();
  nonzero.reserve(frontier_size);
  uint32_t* const counts = scratch.counts.data();
  const NodeId* const frontier = scratch.frontier.data();
  const double d_r = graph.OutDegree(target);
  for (size_t k = 0; k < frontier_size; ++k) {
    const NodeId v = frontier[k];
    const double inter = static_cast<double>(counts[v]);
    counts[v] = 0;
    if (v == target) continue;
    const double uni =
        d_r + static_cast<double>(graph.OutDegree(v)) - inter;
    if (!(uni > 0)) continue;
    const double score = inter / uni;
    if (TestNeighborBit(scratch, v)) continue;
    if (score > 0) nonzero.push_back({v, score});
  }
  ClearNeighborBits(graph, target, scratch);
  const uint64_t num_candidates =
      static_cast<uint64_t>(graph.num_nodes()) - 1 - graph.OutDegree(target);
  return UtilityVector(target, num_candidates, nonzero);
}

UtilityVector JaccardUtility::ApplyEdgeDelta(
    const CsrGraph& graph, const EdgeDelta& delta, NodeId target,
    const UtilityVector& cached, UtilityWorkspace& workspace) const {
  // Directed graphs recompute: the uni > 0 guard in Compute suppresses
  // candidates with out-degree 0 and full intersection (uni = d_r - I =
  // 0), and those hidden candidates can surface later (d_r or I moved) —
  // a cached-support patch cannot resurrect what the cache never stored.
  // Undirected graphs cannot hide support (uni >= max(d_r, d_i) >= 1
  // whenever I > 0), so they take the bitwise O(Δ) patch.
  if (graph.directed()) return Compute(graph, target, workspace);
  return PatchJaccardUtility(graph, std::span<const EdgeDelta>(&delta, 1),
                             target, cached, workspace);
}

UtilityVector JaccardUtility::ApplyEdgeDeltaBatch(
    const CsrGraph& graph, std::span<const EdgeDelta> deltas, NodeId target,
    const UtilityVector& cached, UtilityWorkspace& workspace) const {
  if (graph.directed()) return Compute(graph, target, workspace);
  return PatchJaccardUtility(graph, deltas, target, cached, workspace);
}

bool JaccardUtility::EdgeDeltaAffects(const CsrGraph& graph,
                                      const EdgeDelta& delta, NodeId target,
                                      const UtilityVector& cached) const {
  return EdgeDeltaWindowAffects(graph, std::span<const EdgeDelta>(&delta, 1),
                                target, cached);
}

bool JaccardUtility::EdgeDeltaWindowAffects(const CsrGraph& graph,
                                            std::span<const EdgeDelta> deltas,
                                            NodeId target,
                                            const UtilityVector& cached) const {
  for (const EdgeDelta& delta : deltas) {
    if (EdgeDeltaAffectsTarget(graph, delta, target)) return true;
    // Union-term dependence: the toggle shifted an endpoint's out-degree —
    // delta.u always; delta.v only when the mirror arc toggles too.
    if (HasPositiveEntry(cached, delta.u)) return true;
    if (!graph.directed() && HasPositiveEntry(cached, delta.v)) return true;
  }
  if (!graph.directed()) return false;
  // Directed hidden-support case (see ApplyEdgeDelta): a tail whose
  // out-degree was ZERO before the window can hide a full-intersection
  // candidate behind Compute's uni > 0 guard (uni = d_r + 0 - I = 0
  // forces I = d_r), and any arc it gained can surface that candidate —
  // cached support cannot witness it. The pre-window degree is the
  // post-batch degree minus the window's net arc changes per tail; a lone
  // post-batch OutDegree test would miss a tail that left zero in several
  // steps.
  //
  // Narrowed per target (ISSUE 6 — the old target-independent form
  // flagged EVERY cached entry whenever any sink node toggled, turning
  // each one into a recompute): only a tail that crossed OUT of degree
  // zero can surface a hidden candidate, and its post-window score is
  // nonzero only if the target still 2-hop-reaches it (I_post > 0). The
  // reverse crossing — a candidate falling TO degree zero — hides an
  // entry the cache DID store, which the cached-support clause above
  // already flags; and every intersection/d_r shift is structural.
  std::unordered_map<NodeId, int64_t> net;
  for (const EdgeDelta& delta : deltas) {
    net[delta.u] += delta.added ? 1 : -1;
  }
  for (const auto& [tail, shift] : net) {
    const int64_t pre = static_cast<int64_t>(graph.OutDegree(tail)) - shift;
    if (pre > 0 || graph.OutDegree(tail) == 0) continue;
    if (TwoHopReaches(graph, target, tail)) return true;
  }
  return false;
}

void JaccardUtility::FilterAffectingWindow(const CsrGraph& graph,
                                           std::span<const EdgeDelta> deltas,
                                           NodeId target,
                                           const UtilityVector& cached,
                                           std::vector<EdgeDelta>& out) const {
  if (graph.directed()) {
    // Directed repairs recompute regardless (see ApplyEdgeDelta), so
    // filtering buys nothing and the hidden-support dependence is not
    // per-delta separable — keep the whole window.
    out.insert(out.end(), deltas.begin(), deltas.end());
    return;
  }
  // Union-term dependence: every cached score reads its candidate's
  // degree, and the patch engine nets PRE-window degrees from the window
  // — so any delta touching a support node must survive the filter, on
  // top of the structural ever-neighborhood rule.
  std::vector<NodeId> support;
  support.reserve(cached.nonzero().size());
  for (const UtilityEntry& e : cached.nonzero()) support.push_back(e.node);
  std::sort(support.begin(), support.end());
  FilterAffectingDeltas(graph, deltas, target, support, out);
}

double JaccardUtility::SensitivityBound(const CsrGraph& graph) const {
  return graph.directed() ? 2.0 : 4.0;
}

double JaccardUtility::EdgeAlterationsT(
    const CsrGraph& graph, NodeId target,
    const UtilityVector& /*utilities*/) const {
  return static_cast<double>(graph.OutDegree(target)) + 2.0;
}

// -------------------------------------------------- PreferentialAttachment

UtilityVector PreferentialAttachmentUtility::Compute(
    const CsrGraph& graph, NodeId target, UtilityWorkspace& workspace) const {
  workspace.PrepareFor(graph);
  SparseCounter& scores = workspace.counter(0);
  const double d_r = graph.OutDegree(target);
  if (d_r > 0) {
    // Only 2-hop-reachable candidates are materialized: scoring all n
    // nodes would make the vector dense and the mechanism pointless. This
    // matches how PA is used in practice (re-ranking a candidate pool).
    for (NodeId mid : graph.OutNeighbors(target)) {
      for (NodeId far : graph.OutNeighbors(mid)) {
        if (far == target || scores.Get(far) > 0) continue;
        scores.Add(far, d_r * static_cast<double>(graph.OutDegree(far)));
      }
    }
  }
  return FinalizeUtilityScores(graph, target, scores, workspace);
}

double PreferentialAttachmentUtility::SensitivityBound(
    const CsrGraph& graph) const {
  const double d_max = graph.MaxOutDegree();
  const double per_orientation = d_max * (d_max + 2.0);
  return (graph.directed() ? 1.0 : 2.0) * per_orientation;
}

double PreferentialAttachmentUtility::EdgeAlterationsT(
    const CsrGraph& graph, NodeId /*target*/,
    const UtilityVector& /*utilities*/) const {
  return static_cast<double>(graph.MaxOutDegree()) + 2.0;
}

// ------------------------------------------------------ ResourceAllocation

UtilityVector ResourceAllocationUtility::Compute(
    const CsrGraph& graph, NodeId target, UtilityWorkspace& workspace) const {
  // Frontier kernel; InverseDegreeWeight returns 0 for degree-0
  // intermediates, which the kernel prunes — the same skip the naive loop
  // took (and bitwise-identical sums either way).
  return ComputeTwoHopUtility(graph, target, workspace, &InverseDegreeWeight,
                              /*constant_weight=*/false);
}

UtilityVector ResourceAllocationUtility::ApplyEdgeDelta(
    const CsrGraph& graph, const EdgeDelta& delta, NodeId target,
    const UtilityVector& cached, UtilityWorkspace& workspace) const {
  return PatchTwoHopUtility(graph, delta, target, cached, workspace,
                            &InverseDegreeWeight,
                            /*constant_weight=*/false);
}

UtilityVector ResourceAllocationUtility::ApplyEdgeDeltaBatch(
    const CsrGraph& graph, std::span<const EdgeDelta> deltas, NodeId target,
    const UtilityVector& cached, UtilityWorkspace& workspace) const {
  return PatchTwoHopUtilityBatch(graph, deltas, target, cached, workspace,
                                 &InverseDegreeWeight,
                                 /*constant_weight=*/false);
}

double ResourceAllocationUtility::SensitivityBound(
    const CsrGraph& graph) const {
  return graph.directed() ? 1.0 : 2.0;
}

double ResourceAllocationUtility::EdgeAlterationsT(
    const CsrGraph& graph, NodeId target,
    const UtilityVector& /*utilities*/) const {
  return static_cast<double>(graph.OutDegree(target)) + 2.0;
}

// --------------------------------------------------------------------- Katz

KatzUtility::KatzUtility(double beta, int max_length)
    : beta_(beta), max_length_(max_length) {
  PRIVREC_CHECK_GT(beta, 0.0);
  PRIVREC_CHECK(max_length >= 2 && max_length <= 6);
}

std::string KatzUtility::name() const {
  return "katz[beta=" + FormatDouble(beta_, 3) +
         ",L=" + std::to_string(max_length_) + "]";
}

UtilityVector KatzUtility::Compute(const CsrGraph& graph, NodeId target,
                                   UtilityWorkspace& workspace) const {
  workspace.PrepareFor(graph);
  SparseCounter& scores = workspace.counter(0);
  // Ping-pong between two workspace counters instead of allocating a fresh
  // frontier per step.
  SparseCounter* frontier = &workspace.counter(1);
  SparseCounter* next = &workspace.counter(2);
  frontier->Add(target, 1.0);
  double weight = 1.0;
  for (int step = 1; step <= max_length_; ++step) {
    weight *= beta_;
    for (NodeId v : frontier->touched()) {
      const double walks = frontier->Get(v);
      for (NodeId w : graph.OutNeighbors(v)) {
        if (w == target) continue;  // walks avoid r as an intermediate
        next->Add(w, walks);
      }
    }
    for (NodeId w : next->touched()) scores.Add(w, weight * next->Get(w));
    frontier->Clear();
    std::swap(frontier, next);
  }
  return FinalizeUtilityScores(graph, target, scores, workspace);
}

UtilityVector KatzUtility::ApplyEdgeDelta(const CsrGraph& graph,
                                          const EdgeDelta& delta,
                                          NodeId target,
                                          const UtilityVector& cached,
                                          UtilityWorkspace& workspace) const {
  if (!WindowWithinWalkCone(graph, std::span<const EdgeDelta>(&delta, 1),
                            target, max_length_ - 1)) {
    return cached;
  }
  return Compute(graph, target, workspace);
}

UtilityVector KatzUtility::ApplyEdgeDeltaBatch(
    const CsrGraph& graph, std::span<const EdgeDelta> deltas, NodeId target,
    const UtilityVector& cached, UtilityWorkspace& workspace) const {
  if (!WindowWithinWalkCone(graph, deltas, target, max_length_ - 1)) {
    return cached;
  }
  return Compute(graph, target, workspace);
}

bool KatzUtility::EdgeDeltaAffects(const CsrGraph& graph,
                                   const EdgeDelta& delta, NodeId target,
                                   const UtilityVector& /*cached*/) const {
  // A length-l walk uses arc (u, v) only after a length-(l-1) prefix
  // reaches u; truncation at L bounds the prefix by L-1 hops.
  return WindowWithinWalkCone(graph, std::span<const EdgeDelta>(&delta, 1),
                              target, max_length_ - 1);
}

bool KatzUtility::EdgeDeltaWindowAffects(
    const CsrGraph& graph, std::span<const EdgeDelta> deltas, NodeId target,
    const UtilityVector& /*cached*/) const {
  // One union-graph BFS for the whole window: conservative against every
  // intermediate state at the cost of a single cone traversal, instead of
  // the default's per-delta OR.
  return WindowWithinWalkCone(graph, deltas, target, max_length_ - 1);
}

void KatzUtility::FilterAffectingWindow(const CsrGraph& /*graph*/,
                                        std::span<const EdgeDelta> deltas,
                                        NodeId /*target*/,
                                        const UtilityVector& /*cached*/,
                                        std::vector<EdgeDelta>& out) const {
  out.insert(out.end(), deltas.begin(), deltas.end());
}

double KatzUtility::SensitivityBound(const CsrGraph& graph) const {
  // Each truncated walk through the toggled edge has weight <= β^l; the
  // number of length-l walks through a fixed edge is <= l·d_max^{l-2}.
  // Sum over l = 1..L and both orientations.
  const double d_max = graph.MaxOutDegree();
  double bound = 0;
  double beta_pow = 1.0;
  for (int l = 1; l <= max_length_; ++l) {
    beta_pow *= beta_;
    bound += beta_pow * static_cast<double>(l) *
             std::pow(d_max, std::max(0, l - 2));
  }
  return (graph.directed() ? 1.0 : 2.0) * bound;
}

double KatzUtility::EdgeAlterationsT(
    const CsrGraph& graph, NodeId target,
    const UtilityVector& /*utilities*/) const {
  return static_cast<double>(graph.OutDegree(target)) + 2.0;
}

}  // namespace privrec
