#ifndef PRIVREC_UTILITY_UTILITY_WORKSPACE_H_
#define PRIVREC_UTILITY_UTILITY_WORKSPACE_H_

#include <deque>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/traversal.h"
#include "utility/utility_vector.h"

namespace privrec {

/// Raw scratch buffers for the 2-hop kernel layer
/// (utility/two_hop_kernels.h): a dense per-node accumulator, a frontier
/// buffer listing distinct candidates in first-touch order, and a one-bit
/// per-node neighbor bitmap (the dense-target finalize fast path).
///
/// Invariant: `acc`, `counts`, and `bits` are ALL-ZERO between kernel
/// calls. The kernels rezero exactly the slots they touched while
/// draining, so PrepareFor never has to pay an O(n) clear — the same
/// touched-list trick SparseCounter uses, without the per-add branch.
///
/// Constant-weight passes (common neighbors, Jaccard's intersection term)
/// scatter into `counts` instead of `acc`: the values are exact integer
/// counts, so the half-width accumulator loses nothing (a uint32 count
/// converts to double exactly) while the random-access working set halves
/// — on the bench fixtures that is the difference between the scatter
/// hitting L1 and spilling to L2.
struct TwoHopScratch {
  std::vector<double> acc;        // weighted accumulator, all-zero at rest
  std::vector<uint32_t> counts;   // constant-weight accumulator, all-zero
  std::vector<NodeId> frontier;   // distinct candidates, first-touch order
  std::vector<uint64_t> bits;     // neighbor bitmap, all-zero at rest
  std::vector<uint64_t> keys;     // radix pre-sort buffers (no rest-state
  std::vector<uint64_t> keys_tmp; // invariant; cleared on use)

  /// Grows the buffers (zero-filling only the new tail, so the rest-state
  /// invariant is preserved). `max_frontier` must bound the number of
  /// frontier writes of the upcoming kernel call (the target's 2-hop
  /// expansion size). Never shrinks: ping-ponging between graph sizes does
  /// not reallocate.
  void PrepareFor(NodeId num_nodes, uint64_t max_frontier) {
    if (acc.size() < num_nodes) acc.resize(num_nodes, 0.0);
    if (counts.size() < num_nodes) counts.resize(num_nodes, 0);
    const size_t words = (static_cast<size_t>(num_nodes) + 63) / 64;
    if (bits.size() < words) bits.resize(words, 0);
    if (frontier.size() < max_frontier) frontier.resize(max_frontier);
  }
};

/// Reusable scratch space for UtilityFunction::Compute: a pool of
/// SparseCounters plus an entry buffer, all sized to the graph once and
/// then recycled target after target. This removes every O(n) allocation
/// from the per-target loop of batch evaluation and steady-state serving.
///
/// Ownership rules (see README "Batch-serving architecture"):
///  - One workspace per thread. Workspaces are not thread-safe; the batch
///    harness gives each ParallelFor worker its own, and the serving layer
///    owns one per service (the service contract is already
///    externally-synchronized).
///  - A workspace may be reused across graphs of different sizes; counters
///    are re-targeted via SparseCounter::Resize, which keeps the largest
///    backing array ever needed.
///  - Compute overloads must call PrepareFor(graph) first and must not
///    assume counter contents survive across calls.
class UtilityWorkspace {
 public:
  UtilityWorkspace() = default;

  // Scratch buffers cannot be shared; copying is almost certainly a bug
  // (it would silently reintroduce per-call allocation).
  UtilityWorkspace(const UtilityWorkspace&) = delete;
  UtilityWorkspace& operator=(const UtilityWorkspace&) = delete;
  UtilityWorkspace(UtilityWorkspace&&) = default;
  UtilityWorkspace& operator=(UtilityWorkspace&&) = default;

  /// Readies the workspace for one Compute call on `graph`: existing
  /// counters are cleared and re-targeted at graph.num_nodes(), the entry
  /// buffer is emptied (capacity kept). O(total touched last call), not
  /// O(n).
  void PrepareFor(const CsrGraph& graph) {
    num_nodes_ = graph.num_nodes();
    for (SparseCounter& counter : counters_) {
      counter.Clear();
      counter.Resize(num_nodes_);
    }
    entries_.clear();
  }

  /// Cleared counter sized to the prepared graph. Slots are stable within
  /// one Compute call; each utility assigns its own meaning to each slot.
  /// (counters_ is a deque so growing it never invalidates references
  /// already handed out for lower slots.)
  SparseCounter& counter(size_t slot) {
    while (counters_.size() <= slot) {
      counters_.emplace_back(num_nodes_);
    }
    return counters_[slot];
  }

  /// Cleared scratch buffer for assembling the nonzero entries. The
  /// UtilityVector constructor copies from it (exact-size allocation for
  /// the returned vector), leaving the buffer's capacity with the
  /// workspace for the next target.
  std::vector<UtilityEntry>& entries() { return entries_; }

  /// Scratch for the 2-hop kernels (utility/two_hop_kernels.h). NOT reset
  /// by PrepareFor — the kernels maintain its all-zero rest-state invariant
  /// themselves (see TwoHopScratch).
  TwoHopScratch& two_hop() { return two_hop_; }

  NodeId num_nodes() const { return num_nodes_; }

 private:
  NodeId num_nodes_ = 0;
  std::deque<SparseCounter> counters_;
  std::vector<UtilityEntry> entries_;
  TwoHopScratch two_hop_;
};

/// Shared epilogue of every 2-hop-style utility: turns a sparse score
/// accumulator into the final UtilityVector under the paper's candidate
/// convention (every node except the target and its out-neighbors), using
/// the workspace's entry buffer as scratch. Entries are `scale * score`,
/// kept only when strictly positive.
inline UtilityVector FinalizeUtilityScores(const CsrGraph& graph,
                                           NodeId target,
                                           const SparseCounter& scores,
                                           UtilityWorkspace& workspace,
                                           double scale = 1.0) {
  std::vector<UtilityEntry>& nonzero = workspace.entries();
  nonzero.reserve(scores.touched().size());
  for (NodeId v : scores.touched()) {
    if (v == target || graph.HasEdge(target, v)) continue;
    const double u = scores.Get(v) * scale;
    if (u > 0) nonzero.push_back({v, u});
  }
  const uint64_t num_candidates =
      static_cast<uint64_t>(graph.num_nodes()) - 1 - graph.OutDegree(target);
  return UtilityVector(target, num_candidates, nonzero);
}

}  // namespace privrec

#endif  // PRIVREC_UTILITY_UTILITY_WORKSPACE_H_
