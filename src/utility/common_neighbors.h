#ifndef PRIVREC_UTILITY_COMMON_NEIGHBORS_H_
#define PRIVREC_UTILITY_COMMON_NEIGHBORS_H_

#include "utility/utility_function.h"

namespace privrec {

/// Number-of-common-neighbors utility (the paper's running example;
/// Liben-Nowell & Kleinberg's strongest simple link predictor):
///   u_i = C(i, r) = |N(r) ∩ N(i)|.
/// On directed graphs this counts length-2 directed paths r -> a -> i,
/// i.e. follows edges out of the target, matching Section 7.1's treatment
/// of the Twitter network.
class CommonNeighborsUtility : public UtilityFunction {
 public:
  std::string name() const override { return "common_neighbors"; }

  using UtilityFunction::Compute;
  UtilityVector Compute(const CsrGraph& graph, NodeId target,
                        UtilityWorkspace& workspace) const override;

  /// Incremental patching: pure ±1 count patches on integer-valued
  /// scores — the patched vector is bitwise-identical to a fresh Compute
  /// on the post-delta graph (see utility/incremental.h).
  bool SupportsIncrementalUpdate() const override { return true; }
  UtilityVector ApplyEdgeDelta(const CsrGraph& graph, const EdgeDelta& delta,
                               NodeId target, const UtilityVector& cached,
                               UtilityWorkspace& workspace) const override;

  /// Multi-delta windows patch in one pass too (still bitwise: every
  /// window adjustment is ±1 on small integers).
  bool SupportsIncrementalBatch() const override { return true; }
  UtilityVector ApplyEdgeDeltaBatch(const CsrGraph& graph,
                                    std::span<const EdgeDelta> deltas,
                                    NodeId target, const UtilityVector& cached,
                                    UtilityWorkspace& workspace) const override;

  /// Relaxed edge DP: an edge (x,y) with x,y != r changes C(y,r) by one if
  /// x ~ r and C(x,r) by one if y ~ r, so Δf = 2 (1 on directed graphs,
  /// where only the head's utility moves).
  double SensitivityBound(const CsrGraph& graph) const override;

  /// Section 7.1: t = u_max + 1 + 1[u_max == d_r]. Rationale: connect the
  /// promoted node to u_max+1 of r's neighbors to strictly beat the current
  /// best; when u_max == d_r there is no (u_max+1)-th neighbor, so one
  /// extra edge first grows r's neighborhood.
  double EdgeAlterationsT(const CsrGraph& graph, NodeId target,
                          const UtilityVector& utilities) const override;
};

}  // namespace privrec

#endif  // PRIVREC_UTILITY_COMMON_NEIGHBORS_H_
