#ifndef PRIVREC_UTILITY_LINK_PREDICTORS_H_
#define PRIVREC_UTILITY_LINK_PREDICTORS_H_

#include "utility/utility_function.h"

namespace privrec {

/// Additional link-prediction utilities from Liben-Nowell & Kleinberg's
/// catalogue (the paper draws its utility-function axioms from that work
/// and lists "other utility functions" as future work, Section 8). All
/// satisfy exchangeability by construction; all are 2-hop-local except
/// Katz, which truncates like the weighted-paths family.

/// Jaccard coefficient: u_i = |N(r) ∩ N(i)| / |N(r) ∪ N(i)|.
/// Normalized common neighbors; popular candidates are discounted by
/// their own degree.
class JaccardUtility : public UtilityFunction {
 public:
  std::string name() const override { return "jaccard"; }

  using UtilityFunction::Compute;
  UtilityVector Compute(const CsrGraph& graph, NodeId target,
                        UtilityWorkspace& workspace) const override;

  /// Incremental patching (PatchJaccardUtility): the union-size term is
  /// maintained alongside the intersection — the integer intersection is
  /// recovered from each cached score against the pre-window degrees,
  /// patched with the constant-weight count engine, and re-scored against
  /// the post-window degrees with Compute's exact float expression, so
  /// the patched vector is bitwise-identical to a fresh Compute.
  /// Directed graphs can hide support behind Compute's uni > 0 guard
  /// (zero-out-degree candidates with full intersection), which no
  /// cached-support patch can resurrect — there, affected entries
  /// recompute (exact, just not O(Δ)) while the keep path still rides the
  /// widened affectedness test below.
  bool SupportsIncrementalUpdate() const override { return true; }
  bool SupportsIncrementalBatch() const override { return true; }
  UtilityVector ApplyEdgeDelta(const CsrGraph& graph, const EdgeDelta& delta,
                               NodeId target, const UtilityVector& cached,
                               UtilityWorkspace& workspace) const override;
  UtilityVector ApplyEdgeDeltaBatch(const CsrGraph& graph,
                                    std::span<const EdgeDelta> deltas,
                                    NodeId target, const UtilityVector& cached,
                                    UtilityWorkspace& workspace) const override;

  /// Jaccard's scores depend on CANDIDATE degrees through the union term,
  /// so a toggle also reaches every target that scores an endpoint as a
  /// candidate — a dependence the structural 2-hop test cannot see.
  /// Widens the test by the cached support: a toggle whose endpoint has a
  /// nonzero cached score shifts that candidate's denominator. (An
  /// endpoint with zero intersection keeps score exactly 0 under any
  /// denominator, so the widened test is still exact, not conservative.)
  /// On directed graphs an extra clause flags toggles that may surface
  /// hidden support (see ApplyEdgeDelta).
  bool EdgeDeltaAffects(const CsrGraph& graph, const EdgeDelta& delta,
                        NodeId target,
                        const UtilityVector& cached) const override;

  /// The directed hidden-support clause depends on a tail's PRE-window
  /// out-degree; over a multi-delta window that must be reconstructed by
  /// netting the window's arcs per tail (a post-batch OutDegree alone
  /// misses a tail that crossed zero mid-window, e.g. 0 → 2 across two
  /// adds).
  bool EdgeDeltaWindowAffects(const CsrGraph& graph,
                              std::span<const EdgeDelta> deltas,
                              NodeId target,
                              const UtilityVector& cached) const override;

  /// Widens the structural affect filter by the cached support (the
  /// union-term dependence: the patch engine nets support nodes'
  /// pre-window degrees from the window, so their deltas must survive).
  /// Directed graphs keep the whole window (repairs recompute anyway).
  void FilterAffectingWindow(const CsrGraph& graph,
                             std::span<const EdgeDelta> deltas, NodeId target,
                             const UtilityVector& cached,
                             std::vector<EdgeDelta>& out) const override;

  /// One edge toggle moves the intersection by <= 1 and the union by <= 1
  /// for up to two affected candidates, each term bounded by 1 (Jaccard is
  /// in [0,1] and changes by at most 1 per candidate); additionally the
  /// toggle shifts the union size for every candidate adjacent to an
  /// endpoint, each shift <= 1/|union| <= 1/2... conservatively 2 per
  /// orientation: Δf <= 4 undirected, 2 directed.
  double SensitivityBound(const CsrGraph& graph) const override;

  /// Promoting to Jaccard 1 means matching r's neighborhood exactly:
  /// d_r additions (+2 bookkeeping), as for common neighbors.
  double EdgeAlterationsT(const CsrGraph& graph, NodeId target,
                          const UtilityVector& utilities) const override;
};

/// Preferential-attachment score: u_i = deg(r) · deg(i). Degenerate as a
/// personalized signal (it ignores the relationship between r and i
/// entirely) but a standard baseline — and an instructive extreme for the
/// concentration axiom: utility concentrates on global hubs.
class PreferentialAttachmentUtility : public UtilityFunction {
 public:
  std::string name() const override { return "preferential_attachment"; }

  using UtilityFunction::Compute;
  UtilityVector Compute(const CsrGraph& graph, NodeId target,
                        UtilityWorkspace& workspace) const override;

  /// An edge toggle can (a) shift two candidates' degrees (±d_r each) and
  /// (b) add/remove an entire candidate from the 2-hop pool, whose full
  /// score d_r·(deg+1) <= d_max·(d_max+1) then appears/vanishes. Per
  /// orientation: d_max·(d_max+2); doubled for undirected graphs. PA's
  /// huge sensitivity is the point — it is the cautionary extreme among
  /// the predictors (hub-utility functions are nearly impossible to
  /// privatize).
  double SensitivityBound(const CsrGraph& graph) const override;

  /// Make the promoted node the global degree champion: d_max + 1
  /// additions suffice (+1 slack for ties).
  double EdgeAlterationsT(const CsrGraph& graph, NodeId target,
                          const UtilityVector& utilities) const override;
};

/// Resource-allocation index (Zhou-Lü-Zhang): u_i = Σ_{z ∈ CN} 1/deg(z).
/// Adamic–Adar's harsher cousin; the best-performing 2-hop heuristic on
/// many social graphs.
class ResourceAllocationUtility : public UtilityFunction {
 public:
  std::string name() const override { return "resource_allocation"; }

  using UtilityFunction::Compute;
  UtilityVector Compute(const CsrGraph& graph, NodeId target,
                        UtilityWorkspace& workspace) const override;

  /// Same two-hop weighted-count shape as Adamic-Adar (weight 1/deg), so
  /// the shared patch engine applies unchanged — single- and multi-delta.
  bool SupportsIncrementalUpdate() const override { return true; }
  bool SupportsIncrementalBatch() const override { return true; }
  UtilityVector ApplyEdgeDelta(const CsrGraph& graph, const EdgeDelta& delta,
                               NodeId target, const UtilityVector& cached,
                               UtilityWorkspace& workspace) const override;
  UtilityVector ApplyEdgeDeltaBatch(const CsrGraph& graph,
                                    std::span<const EdgeDelta> deltas,
                                    NodeId target, const UtilityVector& cached,
                                    UtilityWorkspace& workspace) const override;

  /// New common-neighbor term <= 1/1 = 1 (clamped at degree 1... degree of
  /// an intermediate on a path is >= 2 after the toggle, so <= 1/2);
  /// degree-shift term: d·(1/d - 1/(d+1)) = 1/(d+1) <= 1/2. Bound: 1 per
  /// orientation.
  double SensitivityBound(const CsrGraph& graph) const override;

  double EdgeAlterationsT(const CsrGraph& graph, NodeId target,
                          const UtilityVector& utilities) const override;
};

/// Truncated Katz index: u_i = Σ_{l=1..L} β^l · |walks_l(r, i)| over walks
/// avoiding r as an intermediate. Unlike WeightedPathsUtility this keeps
/// the l=1 term and uses walk (not simple-path) counts, matching Katz's
/// original definition; candidates adjacent to r are excluded from the
/// output anyway, so the l=1 term only matters through longer walks.
class KatzUtility : public UtilityFunction {
 public:
  explicit KatzUtility(double beta = 0.05, int max_length = 4);

  std::string name() const override;

  using UtilityFunction::Compute;
  UtilityVector Compute(const CsrGraph& graph, NodeId target,
                        UtilityWorkspace& workspace) const override;

  /// Incremental maintenance via the truncated-walk cone: a toggle whose
  /// changed out-list no length-<=(L-1) walk from the target can read
  /// provably leaves the vector untouched (WindowWithinWalkCone in
  /// utility/incremental.h — the keep test is exact, so far-away toggles
  /// stop invalidating cached entries). Affected entries recompute inside
  /// the patch route: per-level walk counts are not recoverable from the
  /// cached scores (one float per candidate, L unknowns), so no O(Δ)
  /// numeric splice can reproduce Compute's accumulation — the same
  /// recompute-internally contract directed Jaccard repairs use. Results
  /// are trivially bitwise-identical to a fresh Compute.
  bool SupportsIncrementalUpdate() const override { return true; }
  bool SupportsIncrementalBatch() const override { return true; }
  UtilityVector ApplyEdgeDelta(const CsrGraph& graph, const EdgeDelta& delta,
                               NodeId target, const UtilityVector& cached,
                               UtilityWorkspace& workspace) const override;
  UtilityVector ApplyEdgeDeltaBatch(const CsrGraph& graph,
                                    std::span<const EdgeDelta> deltas,
                                    NodeId target, const UtilityVector& cached,
                                    UtilityWorkspace& workspace) const override;

  /// Walk-cone test (depth L-1), replacing the structural 2-hop default
  /// which is wrong for a 3+-hop utility in BOTH directions (it would keep
  /// entries a 3-hop walk invalidated, and invalidate entries no walk can
  /// see).
  bool EdgeDeltaAffects(const CsrGraph& graph, const EdgeDelta& delta,
                        NodeId target,
                        const UtilityVector& cached) const override;
  bool EdgeDeltaWindowAffects(const CsrGraph& graph,
                              std::span<const EdgeDelta> deltas,
                              NodeId target,
                              const UtilityVector& cached) const override;

  /// Keeps the window intact: cone membership is a whole-window property
  /// and the patch route recomputes, so dropping deltas buys nothing and
  /// the structural default could unsoundly filter a 3-hop-affecting
  /// window to empty.
  void FilterAffectingWindow(const CsrGraph& graph,
                             std::span<const EdgeDelta> deltas, NodeId target,
                             const UtilityVector& cached,
                             std::vector<EdgeDelta>& out) const override;

  /// Geometric series bound: a toggled edge can appear in at most
  /// L·d_max^{L-2} truncated walks per orientation, each weighted <= β²
  /// for walks of length >= 2; dominated by β·(1 + L·(β·d_max)^{L-2})…
  /// computed conservatively in the .cc.
  double SensitivityBound(const CsrGraph& graph) const override;

  double EdgeAlterationsT(const CsrGraph& graph, NodeId target,
                          const UtilityVector& utilities) const override;

 private:
  double beta_;
  int max_length_;
};

}  // namespace privrec

#endif  // PRIVREC_UTILITY_LINK_PREDICTORS_H_
