#include "utility/sensitivity.h"

#include <cmath>
#include <unordered_map>

#include "graph/transforms.h"

namespace privrec {

double UtilityL1Distance(const UtilityFunction& utility, const CsrGraph& a,
                         const CsrGraph& b, NodeId target) {
  UtilityVector ua = utility.Compute(a, target);
  UtilityVector ub = utility.Compute(b, target);
  std::unordered_map<NodeId, double> diff;
  diff.reserve(ua.nonzero().size() + ub.nonzero().size());
  for (const UtilityEntry& e : ua.nonzero()) diff[e.node] += e.utility;
  for (const UtilityEntry& e : ub.nonzero()) diff[e.node] -= e.utility;
  double l1 = 0;
  for (const auto& [node, delta] : diff) l1 += std::fabs(delta);
  return l1;
}

SensitivityEstimate EstimateEdgeSensitivity(const CsrGraph& graph,
                                            const UtilityFunction& utility,
                                            NodeId target, size_t num_samples,
                                            Rng& rng, bool relaxed) {
  SensitivityEstimate estimate;
  const NodeId n = graph.num_nodes();
  if (n < 3) return estimate;
  double total = 0;
  size_t done = 0;
  size_t attempts = 0;
  const size_t max_attempts = num_samples * 50 + 100;
  while (done < num_samples && ++attempts < max_attempts) {
    NodeId x = static_cast<NodeId>(rng.NextBounded(n));
    NodeId y = static_cast<NodeId>(rng.NextBounded(n));
    if (x == y) continue;
    if (relaxed && (x == target || y == target)) continue;
    auto perturbed = graph.HasEdge(x, y) ? WithEdgeRemoved(graph, x, y)
                                         : WithEdgeAdded(graph, x, y);
    if (!perturbed.ok()) continue;
    double l1 = UtilityL1Distance(utility, graph, *perturbed, target);
    estimate.max_l1 = std::max(estimate.max_l1, l1);
    total += l1;
    ++done;
  }
  estimate.samples = done;
  estimate.mean_l1 = done > 0 ? total / static_cast<double>(done) : 0;
  return estimate;
}

}  // namespace privrec
