#include "utility/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "graph/transforms.h"

namespace privrec {

double UtilityVectorL1Distance(const UtilityVector& a, const UtilityVector& b,
                               UtilityWorkspace& workspace) {
  // The counter doubles as the union-of-supports accumulator; Resize keeps
  // the largest backing array across calls, so the loop below allocates
  // nothing in steady state.
  NodeId max_node = 0;
  for (const UtilityEntry& e : a.nonzero()) max_node = std::max(max_node, e.node);
  for (const UtilityEntry& e : b.nonzero()) max_node = std::max(max_node, e.node);
  SparseCounter& diff = workspace.counter(0);
  diff.Clear();
  if (diff.num_nodes() <= max_node) diff.Resize(max_node + 1);
  for (const UtilityEntry& e : a.nonzero()) diff.Add(e.node, e.utility);
  for (const UtilityEntry& e : b.nonzero()) diff.Add(e.node, -e.utility);
  double l1 = 0;
  for (NodeId v : diff.touched()) l1 += std::fabs(diff.Get(v));
  diff.Clear();
  return l1;
}

double UtilityL1Distance(const UtilityFunction& utility, const CsrGraph& a,
                         const CsrGraph& b, NodeId target,
                         UtilityWorkspace& workspace) {
  const UtilityVector ua = utility.Compute(a, target, workspace);
  const UtilityVector ub = utility.Compute(b, target, workspace);
  return UtilityVectorL1Distance(ua, ub, workspace);
}

double UtilityL1Distance(const UtilityFunction& utility, const CsrGraph& a,
                         const CsrGraph& b, NodeId target) {
  UtilityWorkspace workspace;
  return UtilityL1Distance(utility, a, b, target, workspace);
}

SensitivityEstimate EstimateEdgeSensitivity(const CsrGraph& graph,
                                            const UtilityFunction& utility,
                                            NodeId target, size_t num_samples,
                                            Rng& rng, bool relaxed,
                                            UtilityWorkspace& workspace) {
  SensitivityEstimate estimate;
  const NodeId n = graph.num_nodes();
  if (n < 3) return estimate;
  // One perturbed-CSR materialization per sample is inherent — the
  // utility needs post-toggle neighbor views, and ApplyEdgeDelta takes
  // the post-delta graph. What the rewrite removes from the seed loop is
  // everything else per sample: the second full utility traversal (the
  // O(Δ) patch replaces it for incremental utilities), the throwaway
  // workspace, and the hash-map diff accumulation.
  const UtilityVector base = utility.Compute(graph, target, workspace);
  const bool incremental = utility.SupportsIncrementalUpdate();
  double total = 0;
  size_t done = 0;
  size_t attempts = 0;
  const size_t max_attempts = num_samples * 50 + 100;
  while (done < num_samples && ++attempts < max_attempts) {
    const NodeId x = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId y = static_cast<NodeId>(rng.NextBounded(n));
    if (x == y) continue;
    if (relaxed && (x == target || y == target)) continue;
    const bool added = !graph.HasEdge(x, y);
    auto perturbed_graph =
        added ? WithEdgeAdded(graph, x, y) : WithEdgeRemoved(graph, x, y);
    if (!perturbed_graph.ok()) continue;
    const EdgeDelta delta{x, y, added, /*version=*/0};
    // The O(Δ) patch is exactly a fresh Compute on the perturbed graph
    // (the incremental-update contract, pinned by the property suite), so
    // both branches measure the same distance.
    const UtilityVector perturbed =
        incremental ? utility.ApplyEdgeDelta(*perturbed_graph, delta, target,
                                             base, workspace)
                    : utility.Compute(*perturbed_graph, target, workspace);
    const double l1 = UtilityVectorL1Distance(base, perturbed, workspace);
    estimate.max_l1 = std::max(estimate.max_l1, l1);
    total += l1;
    ++done;
  }
  estimate.samples = done;
  estimate.mean_l1 = done > 0 ? total / static_cast<double>(done) : 0;
  return estimate;
}

SensitivityEstimate EstimateEdgeSensitivity(const CsrGraph& graph,
                                            const UtilityFunction& utility,
                                            NodeId target, size_t num_samples,
                                            Rng& rng, bool relaxed) {
  UtilityWorkspace workspace;
  return EstimateEdgeSensitivity(graph, utility, target, num_samples, rng,
                                 relaxed, workspace);
}

}  // namespace privrec
