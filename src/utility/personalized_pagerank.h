#ifndef PRIVREC_UTILITY_PERSONALIZED_PAGERANK_H_
#define PRIVREC_UTILITY_PERSONALIZED_PAGERANK_H_

#include "utility/utility_function.h"

namespace privrec {

/// Personalized-PageRank utility (the third utility family suggested by
/// the paper after Liben-Nowell & Kleinberg): u_i is the stationary
/// probability of a random walk from the target with restart probability
/// `restart`, computed by `iterations` rounds of sparse power iteration.
///
/// Scores are scaled by 1/restart so they are O(1) rather than O(restart),
/// which keeps exponential-mechanism weights in a sane numeric range;
/// accuracy is scale-invariant (Definition 2) so this is harmless.
class PersonalizedPageRankUtility : public UtilityFunction {
 public:
  explicit PersonalizedPageRankUtility(double restart = 0.15,
                                       int iterations = 30);

  std::string name() const override;

  using UtilityFunction::Compute;
  UtilityVector Compute(const CsrGraph& graph, NodeId target,
                        UtilityWorkspace& workspace) const override;

  /// There is no tight closed-form edge sensitivity for PPR; we use the
  /// standard coarse bound ||Δppr||_1 <= 2/restart · (1-restart) scaled by
  /// our 1/restart normalization. Prefer EmpiricalSensitivity (sensitivity.h)
  /// when calibrating on a concrete graph.
  double SensitivityBound(const CsrGraph& graph) const override;

  /// Tighter-than-default node bound, independent of the degree cap:
  /// rewiring one node's neighborhood changes that node's out-list — ONE
  /// row of the walk's transition matrix — no matter how many arcs inside
  /// the row move, and the coupling argument behind the edge bound (walks
  /// agree until they first leave the changed row) bounds ||Δppr||_1 by
  /// the same 2(1-α)/α. The default D·Δf_edge envelope would be D times
  /// looser for no reason. (The projected view is still required: the cap
  /// bounds how much probability mass one rewired row can redirect per
  /// step in the multi-release composition the auditor measures.)
  double NodeSensitivityBound(const CsrGraph& projected,
                              uint32_t degree_cap) const override;

  /// Incremental maintenance via the push-cone keep test: a toggle whose
  /// changed out-list no mass can reach within `iterations` push rounds
  /// provably leaves the vector untouched (WindowWithinWalkCone, depth
  /// iterations-1). Affected entries recompute inside the patch route —
  /// residual-bounded re-propagation needs per-node mass history that the
  /// cached score vector does not retain (one float per candidate, all
  /// rounds summed), so a numeric re-push could not reproduce Compute's
  /// accumulation bitwise. Same recompute-internally contract as directed
  /// Jaccard and Katz.
  bool SupportsIncrementalUpdate() const override { return true; }
  bool SupportsIncrementalBatch() const override { return true; }
  UtilityVector ApplyEdgeDelta(const CsrGraph& graph, const EdgeDelta& delta,
                               NodeId target, const UtilityVector& cached,
                               UtilityWorkspace& workspace) const override;
  UtilityVector ApplyEdgeDeltaBatch(const CsrGraph& graph,
                                    std::span<const EdgeDelta> deltas,
                                    NodeId target, const UtilityVector& cached,
                                    UtilityWorkspace& workspace) const override;
  bool EdgeDeltaAffects(const CsrGraph& graph, const EdgeDelta& delta,
                        NodeId target,
                        const UtilityVector& cached) const override;
  bool EdgeDeltaWindowAffects(const CsrGraph& graph,
                              std::span<const EdgeDelta> deltas,
                              NodeId target,
                              const UtilityVector& cached) const override;

  /// Keeps the window intact (cone membership is whole-window; the patch
  /// route recomputes — see KatzUtility::FilterAffectingWindow).
  void FilterAffectingWindow(const CsrGraph& graph,
                             std::span<const EdgeDelta> deltas, NodeId target,
                             const UtilityVector& cached,
                             std::vector<EdgeDelta>& out) const override;

  /// Promotion argument as for common neighbors: wiring the promoted node
  /// to all of r's neighbors captures the bulk of 2-hop PPR mass; +2
  /// bookkeeping edges.
  double EdgeAlterationsT(const CsrGraph& graph, NodeId target,
                          const UtilityVector& utilities) const override;

 private:
  double restart_;
  int iterations_;
};

}  // namespace privrec

#endif  // PRIVREC_UTILITY_PERSONALIZED_PAGERANK_H_
