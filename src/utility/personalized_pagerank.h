#ifndef PRIVREC_UTILITY_PERSONALIZED_PAGERANK_H_
#define PRIVREC_UTILITY_PERSONALIZED_PAGERANK_H_

#include "utility/utility_function.h"

namespace privrec {

/// Personalized-PageRank utility (the third utility family suggested by
/// the paper after Liben-Nowell & Kleinberg): u_i is the stationary
/// probability of a random walk from the target with restart probability
/// `restart`, computed by `iterations` rounds of sparse power iteration.
///
/// Scores are scaled by 1/restart so they are O(1) rather than O(restart),
/// which keeps exponential-mechanism weights in a sane numeric range;
/// accuracy is scale-invariant (Definition 2) so this is harmless.
class PersonalizedPageRankUtility : public UtilityFunction {
 public:
  explicit PersonalizedPageRankUtility(double restart = 0.15,
                                       int iterations = 30);

  std::string name() const override;

  using UtilityFunction::Compute;
  UtilityVector Compute(const CsrGraph& graph, NodeId target,
                        UtilityWorkspace& workspace) const override;

  /// There is no tight closed-form edge sensitivity for PPR; we use the
  /// standard coarse bound ||Δppr||_1 <= 2/restart · (1-restart) scaled by
  /// our 1/restart normalization. Prefer EmpiricalSensitivity (sensitivity.h)
  /// when calibrating on a concrete graph.
  double SensitivityBound(const CsrGraph& graph) const override;

  /// Promotion argument as for common neighbors: wiring the promoted node
  /// to all of r's neighbors captures the bulk of 2-hop PPR mass; +2
  /// bookkeeping edges.
  double EdgeAlterationsT(const CsrGraph& graph, NodeId target,
                          const UtilityVector& utilities) const override;

 private:
  double restart_;
  int iterations_;
};

}  // namespace privrec

#endif  // PRIVREC_UTILITY_PERSONALIZED_PAGERANK_H_
