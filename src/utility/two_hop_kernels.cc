#include "utility/two_hop_kernels.h"

#include <algorithm>
#include <vector>

#include "graph/traversal.h"

namespace privrec {
namespace {

// ----------------------------------------------------------- count kernels

uint32_t LinearCount(std::span<const NodeId> a, std::span<const NodeId> b,
                     size_t i, size_t j) {
  uint32_t count = 0;
  while (i < a.size() && j < b.size()) {
    const NodeId x = a[i];
    const NodeId y = b[j];
    count += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return count;
}

uint32_t GallopCount(std::span<const NodeId> small,
                     std::span<const NodeId> large) {
  uint32_t count = 0;
  size_t lo = 0;
  for (const NodeId x : small) {
    if (lo >= large.size()) break;
    // Exponential probe from the moving lower bound, then binary search
    // inside the bracketed run.
    size_t bound = 1;
    while (lo + bound < large.size() && large[lo + bound] < x) bound *= 2;
    const size_t end = std::min(lo + bound + 1, large.size());
    const NodeId* it =
        std::lower_bound(large.data() + lo, large.data() + end, x);
    lo = static_cast<size_t>(it - large.data());
    if (lo < large.size() && large[lo] == x) {
      ++count;
      ++lo;
    }
  }
  return count;
}

// Fixed block width of the all-pairs merge. 4x4 keeps the compare matrix
// in two vector registers on any 128-bit-SIMD baseline while still
// quartering the branch count of the two-pointer merge.
constexpr size_t kBlock = 4;

uint32_t BlockedCount(std::span<const NodeId> a, std::span<const NodeId> b) {
  size_t i = 0;
  size_t j = 0;
  uint32_t count = 0;
  while (i + kBlock <= a.size() && j + kBlock <= b.size()) {
    // 16 independent, branch-free equality tests — the compiler's
    // auto-vectorizer turns these into packed compares.
    uint32_t hits = 0;
    for (size_t ii = 0; ii < kBlock; ++ii) {
      const NodeId x = a[i + ii];
      hits += static_cast<uint32_t>(x == b[j]) +
              static_cast<uint32_t>(x == b[j + 1]) +
              static_cast<uint32_t>(x == b[j + 2]) +
              static_cast<uint32_t>(x == b[j + 3]);
    }
    count += hits;
    // Discard the block(s) with the smaller maximum: every match a
    // discarded element could still make lies inside the other CURRENT
    // block and was just tested.
    const NodeId a_max = a[i + kBlock - 1];
    const NodeId b_max = b[j + kBlock - 1];
    i += (a_max <= b_max) ? kBlock : 0;
    j += (b_max <= a_max) ? kBlock : 0;
  }
  return count + LinearCount(a, b, i, j);
}

// -------------------------------------------------------- weighted kernels
// Every variant emits matches in ascending id order (see header), so the
// float accumulation order is strategy-independent.

double LinearWeightedSum(const CsrGraph& graph, std::span<const NodeId> a,
                         std::span<const NodeId> b, DegreeWeightFn weight,
                         size_t i, size_t j) {
  double sum = 0;
  while (i < a.size() && j < b.size()) {
    const NodeId x = a[i];
    const NodeId y = b[j];
    if (x == y) sum += weight(graph.OutDegree(x));
    i += (x <= y);
    j += (y <= x);
  }
  return sum;
}

double GallopWeightedSum(const CsrGraph& graph, std::span<const NodeId> small,
                         std::span<const NodeId> large, DegreeWeightFn weight) {
  double sum = 0;
  size_t lo = 0;
  for (const NodeId x : small) {
    if (lo >= large.size()) break;
    size_t bound = 1;
    while (lo + bound < large.size() && large[lo + bound] < x) bound *= 2;
    const size_t end = std::min(lo + bound + 1, large.size());
    const NodeId* it =
        std::lower_bound(large.data() + lo, large.data() + end, x);
    lo = static_cast<size_t>(it - large.data());
    if (lo < large.size() && large[lo] == x) {
      sum += weight(graph.OutDegree(x));
      ++lo;
    }
  }
  return sum;
}

double BlockedWeightedSum(const CsrGraph& graph, std::span<const NodeId> a,
                          std::span<const NodeId> b, DegreeWeightFn weight) {
  size_t i = 0;
  size_t j = 0;
  double sum = 0;
  while (i + kBlock <= a.size() && j + kBlock <= b.size()) {
    for (size_t ii = 0; ii < kBlock; ++ii) {
      const NodeId x = a[i + ii];
      // Branch-free hit test; the weight lookup stays behind a branch
      // because it chases the degree array (and `weight` is an opaque
      // function pointer).
      const bool hit = (x == b[j]) | (x == b[j + 1]) | (x == b[j + 2]) |
                       (x == b[j + 3]);
      if (hit) sum += weight(graph.OutDegree(x));
    }
    const NodeId a_max = a[i + kBlock - 1];
    const NodeId b_max = b[j + kBlock - 1];
    i += (a_max <= b_max) ? kBlock : 0;
    j += (b_max <= a_max) ? kBlock : 0;
  }
  return sum + LinearWeightedSum(graph, a, b, weight, i, j);
}

/// LSD byte-radix sort, ascending. Branch-free scatter passes (no
/// per-element comparisons, so none of the mispredict cost a comparison
/// sort pays on tie-heavy keys); byte positions all keys agree on are
/// skipped, so a (count << 32 | node) key set on an n-node graph costs
/// ~ceil(log256(n)) + ceil(log256(max_count)) passes.
void RadixSortKeys(std::vector<uint64_t>& keys, std::vector<uint64_t>& tmp) {
  const size_t n = keys.size();
  if (n < 2) return;
  // One histogram pass for all 8 byte positions (the distribution is
  // permutation-invariant, so the histograms stay valid across passes).
  uint32_t hist[8][256] = {};
  for (const uint64_t key : keys) {
    for (int b = 0; b < 8; ++b) ++hist[b][(key >> (8 * b)) & 0xff];
  }
  if (tmp.size() < n) tmp.resize(n);
  uint64_t* src = keys.data();
  uint64_t* dst = tmp.data();
  for (int b = 0; b < 8; ++b) {
    // Skip bytes every key shares (one full bucket): the pass would be a
    // plain copy.
    if (hist[b][(src[0] >> (8 * b)) & 0xff] == n) continue;
    uint32_t pos[256];
    uint32_t run = 0;
    for (int i = 0; i < 256; ++i) {
      pos[i] = run;
      run += hist[b][i];
    }
    for (size_t i = 0; i < n; ++i) {
      dst[pos[(src[i] >> (8 * b)) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != keys.data()) std::copy(src, src + n, keys.data());
}

}  // namespace

IntersectStrategy ChooseIntersectStrategy(size_t size_a, size_t size_b) {
  const size_t small = std::min(size_a, size_b);
  const size_t large = std::max(size_a, size_b);
  if (small == 0) return IntersectStrategy::kLinearMerge;
  if (large >= 16 * small) return IntersectStrategy::kGalloping;
  if (small >= 16) return IntersectStrategy::kBlockedMerge;
  return IntersectStrategy::kLinearMerge;
}

uint32_t IntersectCount(std::span<const NodeId> a, std::span<const NodeId> b,
                        IntersectStrategy strategy) {
  switch (strategy) {
    case IntersectStrategy::kGalloping:
      // Degree-ordered: the shorter list always drives the gallop.
      return a.size() <= b.size() ? GallopCount(a, b) : GallopCount(b, a);
    case IntersectStrategy::kBlockedMerge:
      return BlockedCount(a, b);
    case IntersectStrategy::kLinearMerge:
      break;
  }
  return LinearCount(a, b, 0, 0);
}

double IntersectWeightedDegreeSum(const CsrGraph& graph,
                                  std::span<const NodeId> a,
                                  std::span<const NodeId> b,
                                  DegreeWeightFn weight,
                                  IntersectStrategy strategy) {
  switch (strategy) {
    case IntersectStrategy::kGalloping:
      return a.size() <= b.size() ? GallopWeightedSum(graph, a, b, weight)
                                  : GallopWeightedSum(graph, b, a, weight);
    case IntersectStrategy::kBlockedMerge:
      return BlockedWeightedSum(graph, a, b, weight);
    case IntersectStrategy::kLinearMerge:
      break;
  }
  return LinearWeightedSum(graph, a, b, weight, 0, 0);
}

double ScoreCandidateTwoHop(const CsrGraph& graph, NodeId target, NodeId node,
                            DegreeWeightFn weight) {
  const std::span<const NodeId> mids = graph.OutNeighbors(target);
  if (!graph.directed()) {
    // z → node ⟺ z ∈ N(node) on an undirected graph: the score is a
    // weighted sorted-list intersection, dispatched adaptively.
    return IntersectWeightedDegreeSum(graph, mids, graph.OutNeighbors(node),
                                      weight);
  }
  // Directed: the in-adjacency of `node` is not available at this layer,
  // so probe each intermediate's sorted list (ascending intermediate
  // order — the same accumulation order as the undirected merge).
  double score = 0;
  for (const NodeId z : mids) {
    if (graph.HasEdge(z, node)) score += weight(graph.OutDegree(z));
  }
  return score;
}

bool TwoHopReaches(const CsrGraph& graph, NodeId target, NodeId node) {
  const std::span<const NodeId> mids = graph.OutNeighbors(target);
  // Degree-ordered midpoint pruning: probe cheap lists first so a hit on
  // a low-degree intermediate short-circuits the hub binary searches.
  constexpr uint32_t kCheapDegree = 32;
  for (const NodeId z : mids) {
    if (graph.OutDegree(z) <= kCheapDegree && graph.HasEdge(z, node)) {
      return true;
    }
  }
  for (const NodeId z : mids) {
    if (graph.OutDegree(z) > kCheapDegree && graph.HasEdge(z, node)) {
      return true;
    }
  }
  return false;
}

size_t ExpandTwoHopFrontier(const CsrGraph& graph, NodeId target,
                            TwoHopScratch& scratch, DegreeWeightFn weight,
                            bool constant_weight) {
  NodeId* const frontier = scratch.frontier.data();
  size_t size = 0;
  if (constant_weight) {
    // Constant-weight fast path: exact integer counts in the half-width
    // accumulator (uint32 -> double is exact, so the emitted values are
    // bit-identical to summing 1.0 per hit); the smaller working set
    // keeps the random scatter in closer cache.
    uint32_t* const counts = scratch.counts.data();
    for (const NodeId mid : graph.OutNeighbors(target)) {
      for (const NodeId far : graph.OutNeighbors(mid)) {
        // Branch-free first-touch capture: the slot joins the frontier
        // exactly when its accumulator was still zero. This is
        // SparseCounter::Add without the unpredictable push_back branch.
        const uint32_t prev = counts[far];
        frontier[size] = far;
        size += static_cast<size_t>(prev == 0);
        counts[far] = prev + 1;
      }
    }
    return size;
  }
  double* const acc = scratch.acc.data();
  for (const NodeId mid : graph.OutNeighbors(target)) {
    const double w = weight(graph.OutDegree(mid));
    if (w == 0.0) continue;  // zero-weight midpoint prune (RA, deg 0)
    for (const NodeId far : graph.OutNeighbors(mid)) {
      // Same first-touch capture over the weighted accumulator (weights
      // are > 0 here, so a touched slot can never return to zero
      // mid-pass).
      const double prev = acc[far];
      frontier[size] = far;
      size += static_cast<size_t>(prev == 0.0);
      acc[far] = prev + w;
    }
  }
  return size;
}

void SetNeighborBits(const CsrGraph& graph, NodeId target,
                     TwoHopScratch& scratch) {
  uint64_t* const bits = scratch.bits.data();
  for (const NodeId v : graph.OutNeighbors(target)) {
    bits[v >> 6] |= (uint64_t{1} << (v & 63));
  }
}

void ClearNeighborBits(const CsrGraph& graph, NodeId target,
                       TwoHopScratch& scratch) {
  uint64_t* const bits = scratch.bits.data();
  for (const NodeId v : graph.OutNeighbors(target)) {
    bits[v >> 6] = 0;
  }
}

UtilityVector ComputeTwoHopUtility(const CsrGraph& graph, NodeId target,
                                   UtilityWorkspace& workspace,
                                   DegreeWeightFn weight,
                                   bool constant_weight) {
  workspace.PrepareFor(graph);
  TwoHopScratch& scratch = workspace.two_hop();
  uint64_t expansion = 0;
  for (const NodeId mid : graph.OutNeighbors(target)) {
    expansion += graph.OutDegree(mid);
  }
  scratch.PrepareFor(graph.num_nodes(), expansion);
  const size_t frontier_size =
      ExpandTwoHopFrontier(graph, target, scratch, weight, constant_weight);
  SetNeighborBits(graph, target, scratch);
  std::vector<UtilityEntry>& nonzero = workspace.entries();
  nonzero.reserve(frontier_size);
  const NodeId* const frontier = scratch.frontier.data();
  if (constant_weight) {
    // Integer-count finalize with a branch-free radix pre-sort. The
    // UtilityVector comparator (utility desc, node asc) is a unique total
    // order — no two entries share a node — so ANY algorithm producing
    // that order yields the identical vector; pre-sorting here turns the
    // constructor's comparison sort (the serve path's mispredict
    // hotspot: tie-heavy doubles) into a cheap pass over already-sorted
    // input. Keys pack (count, node) so ascending-key order reversed is
    // exactly (count desc, node asc).
    uint32_t* const counts = scratch.counts.data();
    const uint64_t last = graph.num_nodes() - 1;
    std::vector<uint64_t>& keys = scratch.keys;
    keys.clear();
    keys.reserve(frontier_size);
    for (size_t k = 0; k < frontier_size; ++k) {
      const NodeId v = frontier[k];
      const uint32_t c = counts[v];
      counts[v] = 0;  // restore the all-zero rest state as we go
      if (v == target) continue;
      if (TestNeighborBit(scratch, v)) continue;
      if (c > 0) {
        keys.push_back((static_cast<uint64_t>(c) << 32) | (last - v));
      }
    }
    RadixSortKeys(keys, scratch.keys_tmp);
    for (size_t k = keys.size(); k-- > 0;) {
      const uint64_t key = keys[k];
      nonzero.push_back(
          {static_cast<NodeId>(last - (key & 0xffffffffu)),
           static_cast<double>(key >> 32)});
    }
  } else {
    double* const acc = scratch.acc.data();
    // Single drain pass in first-touch order — the same emission order as
    // FinalizeUtilityScores walking SparseCounter::touched(), with the
    // O(log d) HasEdge filter replaced by the O(1) neighbor-bitmap probe.
    for (size_t k = 0; k < frontier_size; ++k) {
      const NodeId v = frontier[k];
      const double u = acc[v];
      acc[v] = 0.0;
      if (v == target) continue;
      if (TestNeighborBit(scratch, v)) continue;
      if (u > 0) nonzero.push_back({v, u});
    }
  }
  ClearNeighborBits(graph, target, scratch);
  const uint64_t num_candidates =
      static_cast<uint64_t>(graph.num_nodes()) - 1 - graph.OutDegree(target);
  return UtilityVector(target, num_candidates, nonzero);
}

UtilityVector NaiveTwoHopReference(const CsrGraph& graph, NodeId target,
                                   UtilityWorkspace& workspace,
                                   DegreeWeightFn weight,
                                   bool constant_weight) {
  workspace.PrepareFor(graph);
  SparseCounter& counter = workspace.counter(0);
  for (const NodeId mid : graph.OutNeighbors(target)) {
    double w = 1.0;
    if (!constant_weight) {
      w = weight(graph.OutDegree(mid));
      if (w == 0.0) continue;
    }
    for (const NodeId far : graph.OutNeighbors(mid)) {
      if (far == target) continue;
      counter.Add(far, w);
    }
  }
  return FinalizeUtilityScores(graph, target, counter, workspace);
}

UtilityVector NaiveJaccardReference(const CsrGraph& graph, NodeId target,
                                    UtilityWorkspace& workspace) {
  workspace.PrepareFor(graph);
  SparseCounter& common = workspace.counter(0);
  for (const NodeId mid : graph.OutNeighbors(target)) {
    for (const NodeId far : graph.OutNeighbors(mid)) {
      if (far == target) continue;
      common.Add(far, 1.0);
    }
  }
  SparseCounter& scores = workspace.counter(1);
  const double d_r = graph.OutDegree(target);
  for (const NodeId v : common.touched()) {
    const double inter = common.Get(v);
    const double uni = d_r + static_cast<double>(graph.OutDegree(v)) - inter;
    if (uni > 0) scores.Add(v, inter / uni);
  }
  return FinalizeUtilityScores(graph, target, scores, workspace);
}

}  // namespace privrec
