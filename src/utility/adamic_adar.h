#ifndef PRIVREC_UTILITY_ADAMIC_ADAR_H_
#define PRIVREC_UTILITY_ADAMIC_ADAR_H_

#include <algorithm>
#include <cmath>

#include "utility/utility_function.h"

namespace privrec {

/// Adamic-Adar's per-intermediate weight, clamped so degree-1
/// intermediates (ln 1 = 0) contribute the max weight. Shared between
/// Compute and the incremental patch path, which must cancel terms
/// bit-for-bit against what Compute accumulated.
inline double InverseLogDegreeWeight(uint32_t degree) {
  return 1.0 / std::log(std::max<uint32_t>(degree, 2));
}

/// Adamic–Adar utility (an extension beyond the paper's two experimental
/// functions; listed in its "other utility functions" future work):
///   u_i = Σ_{z ∈ N(r) ∩ N(i)} 1 / ln(deg(z))
/// Common neighbors are weighted inversely by how promiscuous they are.
/// Degree-1 hubs contribute 1/ln(2) (clamped) to avoid division by zero.
class AdamicAdarUtility : public UtilityFunction {
 public:
  std::string name() const override { return "adamic_adar"; }

  using UtilityFunction::Compute;
  UtilityVector Compute(const CsrGraph& graph, NodeId target,
                        UtilityWorkspace& workspace) const override;

  /// Incremental patching: count patch for the toggled common-neighbor
  /// term plus a degree-weight reweighting of every surviving path
  /// through the toggled endpoints (their degree moved by one). Scores
  /// match a fresh Compute to within float-rounding dust; the support
  /// matches exactly (see utility/incremental.h).
  bool SupportsIncrementalUpdate() const override { return true; }
  UtilityVector ApplyEdgeDelta(const CsrGraph& graph, const EdgeDelta& delta,
                               NodeId target, const UtilityVector& cached,
                               UtilityWorkspace& workspace) const override;

  /// Multi-delta windows patch in one pass (support-exact; see
  /// PatchTwoHopUtilityBatch).
  bool SupportsIncrementalBatch() const override { return true; }
  UtilityVector ApplyEdgeDeltaBatch(const CsrGraph& graph,
                                    std::span<const EdgeDelta> deltas,
                                    NodeId target, const UtilityVector& cached,
                                    UtilityWorkspace& workspace) const override;

  /// One non-target edge contributes, per orientation, (a) one new
  /// common-neighbor term worth at most 1/ln 2 and (b) a degree shift of
  /// the intermediate's weight across every path through it, maximized at
  /// degree 2: 2·(1/ln 2 - 1/ln 3). Total ≈ 2.51 per orientation, doubled
  /// on undirected graphs.
  double SensitivityBound(const CsrGraph& graph) const override;

  /// Same promotion argument as common neighbors: connect the promoted
  /// node to all of r's neighbors (+2 bookkeeping edges).
  double EdgeAlterationsT(const CsrGraph& graph, NodeId target,
                          const UtilityVector& utilities) const override;
};

}  // namespace privrec

#endif  // PRIVREC_UTILITY_ADAMIC_ADAR_H_
