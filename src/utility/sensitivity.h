#ifndef PRIVREC_UTILITY_SENSITIVITY_H_
#define PRIVREC_UTILITY_SENSITIVITY_H_

#include <cstddef>

#include "graph/csr_graph.h"
#include "random/rng.h"
#include "utility/utility_function.h"

namespace privrec {

/// Result of empirical sensitivity probing.
struct SensitivityEstimate {
  double max_l1 = 0;   // largest observed ||u^G - u^{G'}||_1
  double mean_l1 = 0;  // mean over probes
  size_t samples = 0;
};

/// L1 distance ||a - b||_1 between two utility vectors over the union of
/// their nonzero supports, accumulated in a workspace counter (no per-call
/// hash map). The vectors must address node ids the workspace's counters
/// can hold (anything produced by a Compute/ApplyEdgeDelta that prepared
/// this workspace qualifies).
double UtilityVectorL1Distance(const UtilityVector& a, const UtilityVector& b,
                               UtilityWorkspace& workspace);

/// Exact L1 distance between the utility vectors of `target` on `a` and
/// `b` (zero-padded over the union of nonzero supports). The workspace
/// overload reuses the caller's scratch across both Computes and the
/// accumulation; the convenience form allocates a throwaway workspace.
double UtilityL1Distance(const UtilityFunction& utility, const CsrGraph& a,
                         const CsrGraph& b, NodeId target,
                         UtilityWorkspace& workspace);
double UtilityL1Distance(const UtilityFunction& utility, const CsrGraph& a,
                         const CsrGraph& b, NodeId target);

/// Probes the edge sensitivity of `utility` at `target` by toggling
/// `num_samples` random node pairs (adding the edge if absent, removing it
/// if present) and measuring the L1 utility change. With `relaxed` (the
/// paper's Section 3.2 variant) pairs incident to the target are skipped.
///
/// The sampling loop computes the base vector once and derives each
/// sample's perturbed vector through the utility's O(Δ) ApplyEdgeDelta
/// when it supports incremental updates (full Compute otherwise); the
/// diff is accumulated in a workspace counter, not a per-sample hash
/// map. One perturbed-CSR materialization per sample remains — the
/// utility needs post-toggle neighbor views. The workspace overload
/// additionally reuses the caller's scratch buffers; one workspace is
/// reused across the whole loop either way.
///
/// The observed max is a *lower* bound on the true global sensitivity; the
/// analytic SensitivityBound is an upper bound. Tests assert
///   max_observed <= SensitivityBound  on every graph/utility pair.
SensitivityEstimate EstimateEdgeSensitivity(const CsrGraph& graph,
                                            const UtilityFunction& utility,
                                            NodeId target, size_t num_samples,
                                            Rng& rng, bool relaxed,
                                            UtilityWorkspace& workspace);
SensitivityEstimate EstimateEdgeSensitivity(const CsrGraph& graph,
                                            const UtilityFunction& utility,
                                            NodeId target, size_t num_samples,
                                            Rng& rng, bool relaxed = true);

}  // namespace privrec

#endif  // PRIVREC_UTILITY_SENSITIVITY_H_
