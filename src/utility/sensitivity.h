#ifndef PRIVREC_UTILITY_SENSITIVITY_H_
#define PRIVREC_UTILITY_SENSITIVITY_H_

#include <cstddef>

#include "graph/csr_graph.h"
#include "random/rng.h"
#include "utility/utility_function.h"

namespace privrec {

/// Result of empirical sensitivity probing.
struct SensitivityEstimate {
  double max_l1 = 0;   // largest observed ||u^G - u^{G'}||_1
  double mean_l1 = 0;  // mean over probes
  size_t samples = 0;
};

/// Exact L1 distance between the utility vectors of `target` on `a` and
/// `b` (zero-padded over the union of nonzero supports).
double UtilityL1Distance(const UtilityFunction& utility, const CsrGraph& a,
                         const CsrGraph& b, NodeId target);

/// Probes the edge sensitivity of `utility` at `target` by toggling
/// `num_samples` random node pairs (adding the edge if absent, removing it
/// if present) and measuring the L1 utility change. With `relaxed` (the
/// paper's Section 3.2 variant) pairs incident to the target are skipped.
///
/// The observed max is a *lower* bound on the true global sensitivity; the
/// analytic SensitivityBound is an upper bound. Tests assert
///   max_observed <= SensitivityBound  on every graph/utility pair.
SensitivityEstimate EstimateEdgeSensitivity(const CsrGraph& graph,
                                            const UtilityFunction& utility,
                                            NodeId target, size_t num_samples,
                                            Rng& rng, bool relaxed = true);

}  // namespace privrec

#endif  // PRIVREC_UTILITY_SENSITIVITY_H_
