#include "utility/utility_vector.h"

#include <algorithm>

#include "common/logging.h"

namespace privrec {

UtilityVector::UtilityVector(NodeId target, uint64_t num_candidates,
                             std::vector<UtilityEntry> nonzero)
    : target_(target),
      num_candidates_(num_candidates),
      nonzero_(std::move(nonzero)) {
  PRIVREC_CHECK_GE(num_candidates_, nonzero_.size());
  std::sort(nonzero_.begin(), nonzero_.end(),
            [](const UtilityEntry& a, const UtilityEntry& b) {
              if (a.utility != b.utility) return a.utility > b.utility;
              return a.node < b.node;  // deterministic tie-break
            });
  for (const UtilityEntry& e : nonzero_) {
    PRIVREC_CHECK_GT(e.utility, 0.0)
        << "nonzero entries must be strictly positive";
    sum_ += e.utility;
  }
}

uint64_t UtilityVector::CountAbove(double threshold) const {
  // nonzero_ is sorted descending; find the first entry <= threshold.
  auto it = std::lower_bound(
      nonzero_.begin(), nonzero_.end(), threshold,
      [](const UtilityEntry& e, double t) { return e.utility > t; });
  return static_cast<uint64_t>(it - nonzero_.begin());
}

}  // namespace privrec
