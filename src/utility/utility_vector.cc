#include "utility/utility_vector.h"

#include <algorithm>

#include "common/logging.h"

namespace privrec {

UtilityVector::UtilityVector(NodeId target, uint64_t num_candidates,
                             std::vector<UtilityEntry> nonzero)
    : target_(target),
      num_candidates_(num_candidates),
      nonzero_(std::move(nonzero)) {
  PRIVREC_CHECK_GE(num_candidates_, nonzero_.size());
  const auto descending = [](const UtilityEntry& a, const UtilityEntry& b) {
    if (a.utility != b.utility) return a.utility > b.utility;
    return a.node < b.node;  // deterministic tie-break
  };
  // The comparator is a unique total order (nodes are distinct), so
  // pre-sorted input — the 2-hop kernels emit via a branch-free radix
  // pass (utility/two_hop_kernels.cc) — skips the comparison sort and its
  // mispredict cost entirely; unsorted producers bail out of the check at
  // the first inversion.
  if (!std::is_sorted(nonzero_.begin(), nonzero_.end(), descending)) {
    std::sort(nonzero_.begin(), nonzero_.end(), descending);
  }
  for (const UtilityEntry& e : nonzero_) {
    PRIVREC_CHECK_GT(e.utility, 0.0)
        << "nonzero entries must be strictly positive";
    sum_ += e.utility;
  }
}

uint64_t UtilityVector::CountAbove(double threshold) const {
  // nonzero_ is sorted descending; find the first entry <= threshold.
  auto it = std::lower_bound(
      nonzero_.begin(), nonzero_.end(), threshold,
      [](const UtilityEntry& e, double t) { return e.utility > t; });
  return static_cast<uint64_t>(it - nonzero_.begin());
}

}  // namespace privrec
