#include "utility/adamic_adar.h"

#include <cmath>

#include "graph/traversal.h"
#include "utility/incremental.h"
#include "utility/two_hop_kernels.h"

namespace privrec {

UtilityVector AdamicAdarUtility::Compute(const CsrGraph& graph, NodeId target,
                                         UtilityWorkspace& workspace) const {
  // Frontier kernel: the per-intermediate weights accumulate in the same
  // mid-major CSR order as the naive scatter, so the float sums are
  // bit-identical (see the bitwise-exactness contract in
  // utility/two_hop_kernels.h).
  return ComputeTwoHopUtility(graph, target, workspace,
                              &InverseLogDegreeWeight,
                              /*constant_weight=*/false);
}

UtilityVector AdamicAdarUtility::ApplyEdgeDelta(
    const CsrGraph& graph, const EdgeDelta& delta, NodeId target,
    const UtilityVector& cached, UtilityWorkspace& workspace) const {
  return PatchTwoHopUtility(graph, delta, target, cached, workspace,
                            &InverseLogDegreeWeight,
                            /*constant_weight=*/false);
}

UtilityVector AdamicAdarUtility::ApplyEdgeDeltaBatch(
    const CsrGraph& graph, std::span<const EdgeDelta> deltas, NodeId target,
    const UtilityVector& cached, UtilityWorkspace& workspace) const {
  return PatchTwoHopUtilityBatch(graph, deltas, target, cached, workspace,
                                 &InverseLogDegreeWeight,
                                 /*constant_weight=*/false);
}

double AdamicAdarUtility::SensitivityBound(const CsrGraph& graph) const {
  // One new edge (x,y) away from the target changes, per orientation:
  //  (a) one new common-neighbor term, worth at most 1/ln 2;
  //  (b) the weight of intermediate x for every path through it, because
  //      deg(x) grew by one: d·(1/ln d - 1/ln(d+1)), maximized at the
  //      clamp boundary d = 2 (degree-1 intermediates are clamped to the
  //      same weight as degree-2, so d = 1 contributes zero shift).
  const double new_term = 1.0 / std::log(2.0);
  double degree_shift = 0;
  for (uint32_t d = 2; d <= 16; ++d) {
    degree_shift = std::max(
        degree_shift, d * (1.0 / std::log(static_cast<double>(d)) -
                           1.0 / std::log(static_cast<double>(d) + 1.0)));
  }
  return (graph.directed() ? 1.0 : 2.0) * (new_term + degree_shift);
}

double AdamicAdarUtility::EdgeAlterationsT(
    const CsrGraph& graph, NodeId target,
    const UtilityVector& /*utilities*/) const {
  return static_cast<double>(graph.OutDegree(target)) + 2.0;
}

}  // namespace privrec
