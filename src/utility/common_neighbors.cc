#include "utility/common_neighbors.h"

#include "graph/traversal.h"

namespace privrec {

UtilityVector CommonNeighborsUtility::Compute(const CsrGraph& graph,
                                              NodeId target) const {
  SparseCounter counter(graph.num_nodes());
  for (NodeId mid : graph.OutNeighbors(target)) {
    for (NodeId far : graph.OutNeighbors(mid)) {
      if (far == target) continue;
      counter.Add(far, 1.0);
    }
  }
  std::vector<UtilityEntry> nonzero;
  nonzero.reserve(counter.touched().size());
  for (NodeId v : counter.touched()) {
    if (graph.HasEdge(target, v)) continue;  // already connected: excluded
    nonzero.push_back({v, counter.Get(v)});
  }
  const uint64_t num_candidates =
      static_cast<uint64_t>(graph.num_nodes()) - 1 -
      graph.OutDegree(target);
  return UtilityVector(target, num_candidates, std::move(nonzero));
}

double CommonNeighborsUtility::SensitivityBound(const CsrGraph& graph) const {
  return graph.directed() ? 1.0 : 2.0;
}

double CommonNeighborsUtility::EdgeAlterationsT(
    const CsrGraph& graph, NodeId target,
    const UtilityVector& utilities) const {
  const double u_max = utilities.max_utility();
  const double d_r = graph.OutDegree(target);
  return u_max + 1.0 + (u_max == d_r ? 1.0 : 0.0);
}

}  // namespace privrec
