#include "utility/common_neighbors.h"

#include "graph/traversal.h"
#include "utility/incremental.h"
#include "utility/two_hop_kernels.h"

namespace privrec {
namespace {

double UnitWeight(uint32_t /*degree*/) { return 1.0; }

}  // namespace

UtilityVector CommonNeighborsUtility::Compute(
    const CsrGraph& graph, NodeId target, UtilityWorkspace& workspace) const {
  // Frontier kernel (utility/two_hop_kernels.h): bitwise-identical to the
  // retained NaiveTwoHopReference scatter loop, branch-free expansion +
  // bitmap finalize.
  return ComputeTwoHopUtility(graph, target, workspace, &UnitWeight,
                              /*constant_weight=*/true);
}

UtilityVector CommonNeighborsUtility::ApplyEdgeDelta(
    const CsrGraph& graph, const EdgeDelta& delta, NodeId target,
    const UtilityVector& cached, UtilityWorkspace& workspace) const {
  return PatchTwoHopUtility(graph, delta, target, cached, workspace,
                            &UnitWeight, /*constant_weight=*/true);
}

UtilityVector CommonNeighborsUtility::ApplyEdgeDeltaBatch(
    const CsrGraph& graph, std::span<const EdgeDelta> deltas, NodeId target,
    const UtilityVector& cached, UtilityWorkspace& workspace) const {
  return PatchTwoHopUtilityBatch(graph, deltas, target, cached, workspace,
                                 &UnitWeight, /*constant_weight=*/true);
}

double CommonNeighborsUtility::SensitivityBound(const CsrGraph& graph) const {
  return graph.directed() ? 1.0 : 2.0;
}

double CommonNeighborsUtility::EdgeAlterationsT(
    const CsrGraph& graph, NodeId target,
    const UtilityVector& utilities) const {
  const double u_max = utilities.max_utility();
  const double d_r = graph.OutDegree(target);
  return u_max + 1.0 + (u_max == d_r ? 1.0 : 0.0);
}

}  // namespace privrec
