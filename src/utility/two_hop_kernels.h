#ifndef PRIVREC_UTILITY_TWO_HOP_KERNELS_H_
#define PRIVREC_UTILITY_TWO_HOP_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "graph/csr_graph.h"
#include "utility/utility_vector.h"
#include "utility/utility_workspace.h"

namespace privrec {

/// Per-intermediate degree weight of a 2-hop utility (same alias as
/// utility/incremental.h — redeclaring an identical alias is well-formed,
/// and the two headers stay independently includable).
using DegreeWeightFn = double (*)(uint32_t degree);

/// How one sorted-list intersection is executed. The kernels pick a
/// strategy per call (ChooseIntersectStrategy); benches and tests force
/// each one explicitly.
enum class IntersectStrategy {
  /// Classic two-pointer merge: O(|a| + |b|), best when the lists are of
  /// comparable length and too short to amortize anything cleverer.
  kLinearMerge,
  /// Iterate the shorter list, exponential-probe + binary-search the
  /// longer one from a moving lower bound: O(small · log(large/small)),
  /// the winner when one list dominates (hub vs leaf).
  kGalloping,
  /// Merge in fixed 4x4 blocks of all-pairs equality tests. The 16
  /// compares per step are branch-free and independent — compilers
  /// auto-vectorize them (no intrinsics; opt into wider vectors with
  /// -DPRIVREC_NATIVE_ARCH=ON). Best for two long lists of comparable
  /// length, where kLinearMerge's per-element branch mispredicts.
  kBlockedMerge,
};

/// Adaptive pick (the "degree-ordered" part of the kernel contract: the
/// caller may pass a and b in either order; the chooser only looks at
/// sizes). Heuristic: gallop when one list is >= 16x the other, block-merge
/// when both are >= 16 elements, linear merge otherwise.
IntersectStrategy ChooseIntersectStrategy(size_t size_a, size_t size_b);

/// |a ∩ b| over sorted, duplicate-free id lists with a forced strategy.
uint32_t IntersectCount(std::span<const NodeId> a, std::span<const NodeId> b,
                        IntersectStrategy strategy);

/// Adaptive |a ∩ b|.
inline uint32_t IntersectCount(std::span<const NodeId> a,
                               std::span<const NodeId> b) {
  return IntersectCount(a, b, ChooseIntersectStrategy(a.size(), b.size()));
}

/// Σ_{z ∈ a ∩ b} weight(out-deg(z)) with a forced strategy. Every strategy
/// emits matches in ascending id order, so the float accumulation order —
/// and therefore the result, bit for bit — is independent of the strategy
/// and identical to the probe loop it replaces (utility/incremental.cc's
/// per-candidate rebuild).
double IntersectWeightedDegreeSum(const CsrGraph& graph,
                                  std::span<const NodeId> a,
                                  std::span<const NodeId> b,
                                  DegreeWeightFn weight,
                                  IntersectStrategy strategy);

/// Adaptive weighted intersection.
inline double IntersectWeightedDegreeSum(const CsrGraph& graph,
                                         std::span<const NodeId> a,
                                         std::span<const NodeId> b,
                                         DegreeWeightFn weight) {
  return IntersectWeightedDegreeSum(
      graph, a, b, weight, ChooseIntersectStrategy(a.size(), b.size()));
}

/// Per-candidate intersection-form score: Σ_{z ∈ N_out(target), z→node}
/// weight(out-deg(z)) — the score a fresh Compute of the Σ-weight family
/// would assign `node`. Undirected graphs intersect the two sorted
/// neighbor lists with the adaptive kernel (degree-ordered: the shorter
/// list drives); directed graphs probe each intermediate's list (the
/// in-adjacency needed for a merge is not available here). Bitwise-equal
/// to the naive probe loop (matches accumulate in ascending intermediate
/// order either way).
double ScoreCandidateTwoHop(const CsrGraph& graph, NodeId target, NodeId node,
                            DegreeWeightFn weight);

/// Whether `target` 2-hop-reaches `node` post-window: ∃ z ∈ N_out(target)
/// with the arc z→node. Degree-ordered midpoint pruning: intermediates are
/// probed smallest-list-first so a hit on a cheap list short-circuits the
/// expensive ones (the common case for JaccardUtility's directed
/// hidden-support test, which calls this once per zero-crossing tail).
bool TwoHopReaches(const CsrGraph& graph, NodeId target, NodeId node);

/// Pass 1 of the full-vector kernel: expands the 2-hop frontier of
/// `target` into `scratch` (which the caller must have PrepareFor'd with
/// the expansion size): the accumulator — scratch.counts (exact integer
/// hit counts, half-width) when `constant_weight`, scratch.acc otherwise
/// — gathers Σ weight(out-deg(z)) over
/// intermediates z in the SAME mid-major, CSR-ascending order as the naive
/// scatter loops — the accumulation-order half of the bitwise-exactness
/// contract — and frontier[0..returned) lists the distinct touched nodes
/// in first-touch order (exactly what SparseCounter::touched() would
/// record), captured branch-free. `target` itself may appear in the
/// frontier; emit passes skip it. Zero-weight intermediates are pruned
/// (resource allocation's directed degree-0 guard). The caller MUST drain
/// acc back to zero over the returned frontier (the emit helpers do).
size_t ExpandTwoHopFrontier(const CsrGraph& graph, NodeId target,
                            TwoHopScratch& scratch, DegreeWeightFn weight,
                            bool constant_weight);

/// Sets the bits of N_out(target) in scratch.bits — the O(1)-probe
/// neighbor filter the emit pass uses instead of FinalizeUtilityScores'
/// O(log d) binary searches (the dense-target fast path; cheap enough that
/// every target takes it). Pair with ClearNeighborBits to restore the
/// all-zero rest state.
void SetNeighborBits(const CsrGraph& graph, NodeId target,
                     TwoHopScratch& scratch);
void ClearNeighborBits(const CsrGraph& graph, NodeId target,
                       TwoHopScratch& scratch);

inline bool TestNeighborBit(const TwoHopScratch& scratch, NodeId v) {
  return (scratch.bits[v >> 6] >> (v & 63)) & 1;
}

/// Full-vector 2-hop kernel: ExpandTwoHopFrontier + bitset finalize, the
/// drop-in replacement for the naive scatter loops of common neighbors
/// (weight ≡ 1, constant_weight = true), Adamic-Adar, and resource
/// allocation. Bitwise-exactness contract: the returned vector is
/// bit-identical to NaiveTwoHopReference — same candidate count, same
/// support, same doubles — because the accumulation order, the candidate
/// filters, and every float expression are preserved exactly
/// (tests/two_hop_kernels_test.cc holds the property over random graphs).
UtilityVector ComputeTwoHopUtility(const CsrGraph& graph, NodeId target,
                                   UtilityWorkspace& workspace,
                                   DegreeWeightFn weight,
                                   bool constant_weight);

/// The pre-kernel scatter loop, retained verbatim as the differential
/// reference: SparseCounter scatter-add + FinalizeUtilityScores, exactly
/// as CommonNeighborsUtility / AdamicAdarUtility / ResourceAllocation
/// computed before the kernel rewire. Tests assert the kernel is
/// bitwise-identical to this; bench/two_hop_kernels.cc reports the
/// kernel's speedup over it.
UtilityVector NaiveTwoHopReference(const CsrGraph& graph, NodeId target,
                                   UtilityWorkspace& workspace,
                                   DegreeWeightFn weight,
                                   bool constant_weight);

/// Naive Jaccard reference (the pre-kernel two-counter pass), same role as
/// NaiveTwoHopReference for JaccardUtility::Compute.
UtilityVector NaiveJaccardReference(const CsrGraph& graph, NodeId target,
                                    UtilityWorkspace& workspace);

}  // namespace privrec

#endif  // PRIVREC_UTILITY_TWO_HOP_KERNELS_H_
