#include "utility/weighted_paths.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "graph/traversal.h"

namespace privrec {

WeightedPathsUtility::WeightedPathsUtility(double gamma, int max_length)
    : gamma_(gamma), max_length_(max_length) {
  PRIVREC_CHECK_GT(gamma, 0.0);
  PRIVREC_CHECK(max_length >= 2 && max_length <= 3)
      << "supported truncation lengths are 2 and 3";
}

std::string WeightedPathsUtility::name() const {
  return "weighted_paths[gamma=" + FormatDouble(gamma_, 4) +
         ",L=" + std::to_string(max_length_) + "]";
}

UtilityVector WeightedPathsUtility::Compute(
    const CsrGraph& graph, NodeId target, UtilityWorkspace& workspace) const {
  workspace.PrepareFor(graph);
  // paths2[i] = |{a : r->a->i}| — simple by construction (a != r, i != r).
  SparseCounter& paths2 = workspace.counter(0);
  for (NodeId a : graph.OutNeighbors(target)) {
    for (NodeId i : graph.OutNeighbors(a)) {
      if (i == target) continue;
      paths2.Add(i, 1.0);
    }
  }

  SparseCounter& score = workspace.counter(1);
  for (NodeId v : paths2.touched()) score.Add(v, paths2.Get(v));

  if (max_length_ >= 3) {
    // walks3[c] = Σ_{b != r} paths2[b] · [b -> c], c != r. This counts all
    // 3-walks r→a→b→c avoiding r; subtract the non-simple family c == a.
    SparseCounter& walks3 = workspace.counter(2);
    for (NodeId b : paths2.touched()) {
      const double count_b = paths2.Get(b);
      for (NodeId c : graph.OutNeighbors(b)) {
        if (c == target) continue;
        walks3.Add(c, count_b);
      }
    }
    // Non-simple walks r→a→b→a: for each first-hop a and each b in
    // N(a)\{r} with an edge back b->a, one walk per such b.
    SparseCounter& backtracks = workspace.counter(3);
    for (NodeId a : graph.OutNeighbors(target)) {
      double back = 0;
      for (NodeId b : graph.OutNeighbors(a)) {
        if (b == target) continue;
        if (graph.HasEdge(b, a)) back += 1.0;
      }
      if (back > 0) backtracks.Add(a, back);
    }
    for (NodeId c : walks3.touched()) {
      double paths3 = walks3.Get(c) - backtracks.Get(c);
      if (paths3 > 0) score.Add(c, gamma_ * paths3);
    }
  }

  return FinalizeUtilityScores(graph, target, score, workspace);
}

double WeightedPathsUtility::SensitivityBound(const CsrGraph& graph) const {
  const double base = graph.directed() ? 1.0 : 2.0;
  if (max_length_ < 3) return base;
  const double dmax = graph.MaxOutDegree();
  return base + (graph.directed() ? 2.0 : 4.0) * gamma_ * dmax;
}

double WeightedPathsUtility::EdgeAlterationsT(
    const CsrGraph& /*graph*/, NodeId /*target*/,
    const UtilityVector& utilities) const {
  return std::floor(utilities.max_utility()) + 2.0;
}

}  // namespace privrec
