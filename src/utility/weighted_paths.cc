#include "utility/weighted_paths.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "graph/traversal.h"

namespace privrec {

WeightedPathsUtility::WeightedPathsUtility(double gamma, int max_length)
    : gamma_(gamma), max_length_(max_length) {
  PRIVREC_CHECK_GT(gamma, 0.0);
  PRIVREC_CHECK(max_length >= 2 && max_length <= 3)
      << "supported truncation lengths are 2 and 3";
}

std::string WeightedPathsUtility::name() const {
  return "weighted_paths[gamma=" + FormatDouble(gamma_, 4) +
         ",L=" + std::to_string(max_length_) + "]";
}

UtilityVector WeightedPathsUtility::Compute(const CsrGraph& graph,
                                            NodeId target) const {
  // paths2[i] = |{a : r->a->i}| — simple by construction (a != r, i != r).
  SparseCounter paths2(graph.num_nodes());
  for (NodeId a : graph.OutNeighbors(target)) {
    for (NodeId i : graph.OutNeighbors(a)) {
      if (i == target) continue;
      paths2.Add(i, 1.0);
    }
  }

  SparseCounter score(graph.num_nodes());
  for (NodeId v : paths2.touched()) score.Add(v, paths2.Get(v));

  if (max_length_ >= 3) {
    // walks3[c] = Σ_{b != r} paths2[b] · [b -> c], c != r. This counts all
    // 3-walks r→a→b→c avoiding r; subtract the non-simple family c == a.
    SparseCounter walks3(graph.num_nodes());
    for (NodeId b : paths2.touched()) {
      const double count_b = paths2.Get(b);
      for (NodeId c : graph.OutNeighbors(b)) {
        if (c == target) continue;
        walks3.Add(c, count_b);
      }
    }
    // Non-simple walks r→a→b→a: for each first-hop a and each b in
    // N(a)\{r} with an edge back b->a, one walk per such b.
    SparseCounter backtracks(graph.num_nodes());
    for (NodeId a : graph.OutNeighbors(target)) {
      double back = 0;
      for (NodeId b : graph.OutNeighbors(a)) {
        if (b == target) continue;
        if (graph.HasEdge(b, a)) back += 1.0;
      }
      if (back > 0) backtracks.Add(a, back);
    }
    for (NodeId c : walks3.touched()) {
      double paths3 = walks3.Get(c) - backtracks.Get(c);
      if (paths3 > 0) score.Add(c, gamma_ * paths3);
    }
  }

  std::vector<UtilityEntry> nonzero;
  nonzero.reserve(score.touched().size());
  for (NodeId v : score.touched()) {
    if (graph.HasEdge(target, v)) continue;
    double u = score.Get(v);
    if (u > 0) nonzero.push_back({v, u});
  }
  const uint64_t num_candidates =
      static_cast<uint64_t>(graph.num_nodes()) - 1 -
      graph.OutDegree(target);
  return UtilityVector(target, num_candidates, std::move(nonzero));
}

double WeightedPathsUtility::SensitivityBound(const CsrGraph& graph) const {
  const double base = graph.directed() ? 1.0 : 2.0;
  if (max_length_ < 3) return base;
  const double dmax = graph.MaxOutDegree();
  return base + (graph.directed() ? 2.0 : 4.0) * gamma_ * dmax;
}

double WeightedPathsUtility::EdgeAlterationsT(
    const CsrGraph& /*graph*/, NodeId /*target*/,
    const UtilityVector& utilities) const {
  return std::floor(utilities.max_utility()) + 2.0;
}

}  // namespace privrec
