#include "utility/personalized_pagerank.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "graph/traversal.h"
#include "utility/incremental.h"

namespace privrec {

PersonalizedPageRankUtility::PersonalizedPageRankUtility(double restart,
                                                          int iterations)
    : restart_(restart), iterations_(iterations) {
  PRIVREC_CHECK(restart > 0.0 && restart < 1.0);
  PRIVREC_CHECK_GT(iterations, 0);
}

std::string PersonalizedPageRankUtility::name() const {
  return "personalized_pagerank[a=" + FormatDouble(restart_, 2) +
         ",iters=" + std::to_string(iterations_) + "]";
}

UtilityVector PersonalizedPageRankUtility::Compute(
    const CsrGraph& graph, NodeId target, UtilityWorkspace& workspace) const {
  workspace.PrepareFor(graph);
  // Sparse push power iteration: mass stays on the touched set only, so a
  // few iterations from one source never go O(n) on large graphs. The walk
  // ping-pongs between two workspace counters.
  SparseCounter& accumulated = workspace.counter(0);
  SparseCounter* current = &workspace.counter(1);
  SparseCounter* next = &workspace.counter(2);
  current->Add(target, 1.0);
  double dangling_restart = 0;  // mass that re-teleports to the target

  for (int iter = 0; iter < iterations_; ++iter) {
    for (NodeId v : current->touched()) {
      const double mass = current->Get(v);
      if (mass == 0) continue;
      accumulated.Add(v, restart_ * mass);
      const double push = (1.0 - restart_) * mass;
      const uint32_t degree = graph.OutDegree(v);
      if (degree == 0) {
        dangling_restart += push;  // dangling node: walk restarts
        continue;
      }
      const double share = push / degree;
      for (NodeId w : graph.OutNeighbors(v)) next->Add(w, share);
    }
    next->Add(target, dangling_restart);
    dangling_restart = 0;
    current->Clear();
    std::swap(current, next);
  }
  // Residual walk mass ((1-restart)^iterations, < 1% at the default 30
  // iterations) is dropped: attributing it anywhere would bias scores, and
  // accuracy is scale-invariant so uniform truncation is harmless.

  return FinalizeUtilityScores(graph, target, accumulated, workspace,
                               /*scale=*/1.0 / restart_);
}

double PersonalizedPageRankUtility::SensitivityBound(
    const CsrGraph& /*graph*/) const {
  return 2.0 * (1.0 - restart_) / restart_;
}

double PersonalizedPageRankUtility::NodeSensitivityBound(
    const CsrGraph& projected, uint32_t /*degree_cap*/) const {
  // One rewired row of the transition matrix: the edge bound's coupling
  // argument applies unchanged (see header).
  return SensitivityBound(projected);
}

UtilityVector PersonalizedPageRankUtility::ApplyEdgeDelta(
    const CsrGraph& graph, const EdgeDelta& delta, NodeId target,
    const UtilityVector& cached, UtilityWorkspace& workspace) const {
  if (!WindowWithinWalkCone(graph, std::span<const EdgeDelta>(&delta, 1),
                            target, iterations_ - 1)) {
    return cached;
  }
  return Compute(graph, target, workspace);
}

UtilityVector PersonalizedPageRankUtility::ApplyEdgeDeltaBatch(
    const CsrGraph& graph, std::span<const EdgeDelta> deltas, NodeId target,
    const UtilityVector& cached, UtilityWorkspace& workspace) const {
  if (!WindowWithinWalkCone(graph, deltas, target, iterations_ - 1)) {
    return cached;
  }
  return Compute(graph, target, workspace);
}

bool PersonalizedPageRankUtility::EdgeDeltaAffects(
    const CsrGraph& graph, const EdgeDelta& delta, NodeId target,
    const UtilityVector& /*cached*/) const {
  // Mass first reaches a node at hop h and its out-list (including the
  // dangling-restart behavior of a degree-0 node) is only read in rounds
  // after that, so `iterations - 1` hops bound every readable tail.
  return WindowWithinWalkCone(graph, std::span<const EdgeDelta>(&delta, 1),
                              target, iterations_ - 1);
}

bool PersonalizedPageRankUtility::EdgeDeltaWindowAffects(
    const CsrGraph& graph, std::span<const EdgeDelta> deltas, NodeId target,
    const UtilityVector& /*cached*/) const {
  return WindowWithinWalkCone(graph, deltas, target, iterations_ - 1);
}

void PersonalizedPageRankUtility::FilterAffectingWindow(
    const CsrGraph& /*graph*/, std::span<const EdgeDelta> deltas,
    NodeId /*target*/, const UtilityVector& /*cached*/,
    std::vector<EdgeDelta>& out) const {
  out.insert(out.end(), deltas.begin(), deltas.end());
}

double PersonalizedPageRankUtility::EdgeAlterationsT(
    const CsrGraph& graph, NodeId target,
    const UtilityVector& /*utilities*/) const {
  return static_cast<double>(graph.OutDegree(target)) + 2.0;
}

}  // namespace privrec
