#include "utility/personalized_pagerank.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "graph/traversal.h"

namespace privrec {

PersonalizedPageRankUtility::PersonalizedPageRankUtility(double restart,
                                                          int iterations)
    : restart_(restart), iterations_(iterations) {
  PRIVREC_CHECK(restart > 0.0 && restart < 1.0);
  PRIVREC_CHECK_GT(iterations, 0);
}

std::string PersonalizedPageRankUtility::name() const {
  return "personalized_pagerank[a=" + FormatDouble(restart_, 2) +
         ",iters=" + std::to_string(iterations_) + "]";
}

UtilityVector PersonalizedPageRankUtility::Compute(const CsrGraph& graph,
                                                   NodeId target) const {
  // Sparse push power iteration: mass stays on the touched set only, so a
  // few iterations from one source never go O(n) on large graphs.
  SparseCounter current(graph.num_nodes());
  SparseCounter accumulated(graph.num_nodes());
  current.Add(target, 1.0);
  double dangling_restart = 0;  // mass that re-teleports to the target

  for (int iter = 0; iter < iterations_; ++iter) {
    SparseCounter next(graph.num_nodes());
    for (NodeId v : current.touched()) {
      const double mass = current.Get(v);
      if (mass == 0) continue;
      accumulated.Add(v, restart_ * mass);
      const double push = (1.0 - restart_) * mass;
      const uint32_t degree = graph.OutDegree(v);
      if (degree == 0) {
        dangling_restart += push;  // dangling node: walk restarts
        continue;
      }
      const double share = push / degree;
      for (NodeId w : graph.OutNeighbors(v)) next.Add(w, share);
    }
    next.Add(target, dangling_restart);
    dangling_restart = 0;
    current = std::move(next);
  }
  // Residual walk mass ((1-restart)^iterations, < 1% at the default 30
  // iterations) is dropped: attributing it anywhere would bias scores, and
  // accuracy is scale-invariant so uniform truncation is harmless.

  std::vector<UtilityEntry> nonzero;
  nonzero.reserve(accumulated.touched().size());
  const double scale = 1.0 / restart_;
  for (NodeId v : accumulated.touched()) {
    if (v == target || graph.HasEdge(target, v)) continue;
    double u = accumulated.Get(v) * scale;
    if (u > 0) nonzero.push_back({v, u});
  }
  const uint64_t num_candidates =
      static_cast<uint64_t>(graph.num_nodes()) - 1 -
      graph.OutDegree(target);
  return UtilityVector(target, num_candidates, std::move(nonzero));
}

double PersonalizedPageRankUtility::SensitivityBound(
    const CsrGraph& /*graph*/) const {
  return 2.0 * (1.0 - restart_) / restart_;
}

double PersonalizedPageRankUtility::EdgeAlterationsT(
    const CsrGraph& graph, NodeId target,
    const UtilityVector& /*utilities*/) const {
  return static_cast<double>(graph.OutDegree(target)) + 2.0;
}

}  // namespace privrec
