#ifndef PRIVREC_UTILITY_WEIGHTED_PATHS_H_
#define PRIVREC_UTILITY_WEIGHTED_PATHS_H_

#include "utility/utility_function.h"

namespace privrec {

/// Weighted-paths utility (Section 5.2):
///   score(r, i) = Σ_{l>=2} γ^{l-2} · |paths^{(l)}(r, i)|.
/// The paper's experiments truncate the sum at l = 3 ("we approximate the
/// weighted paths utility by considering paths of length up to 3"); this
/// implementation makes the truncation length a parameter (2..3).
///
/// Length-2 counts are exactly common neighbors. Length-3 counts are
/// computed as 3-step walks r→a→b→c with r excluded as an intermediate and
/// the non-simple walk family r→a→b→a subtracted, so they equal the number
/// of simple length-3 paths.
class WeightedPathsUtility : public UtilityFunction {
 public:
  /// gamma is the paper's γ decay (0.0005 / 0.005 / 0.05 in Section 7);
  /// max_length ∈ {2, 3}.
  WeightedPathsUtility(double gamma, int max_length = 3);

  std::string name() const override;

  double gamma() const { return gamma_; }
  int max_length() const { return max_length_; }

  using UtilityFunction::Compute;
  UtilityVector Compute(const CsrGraph& graph, NodeId target,
                        UtilityWorkspace& workspace) const override;

  // Deliberately NOT incremental (SupportsIncrementalUpdate() stays
  // false): a 3-hop toggle perturbs targets two hops from either endpoint
  // and re-threads the backtrack subtraction, so an O(Δ) patch has no
  // exact-equality story yet. The serving layer's capability gate routes
  // this utility through the full-recompute path.

  /// Conservative relaxed-edge-DP L1 bound: one new edge (x,y) away from r
  /// contributes at most 1 at l=2 per orientation and at most γ·d_max new
  /// length-3 paths per orientation/role, giving
  ///   Δf <= 2 + 4·γ·d_max  (undirected),  1 + 2·γ·d_max  (directed);
  /// the l=3 terms drop when max_length == 2. Matches the paper's remark
  /// that larger γ means higher sensitivity (Section 7.2).
  double SensitivityBound(const CsrGraph& graph) const override;

  /// Section 7.1: t = floor(u_max) + 2.
  double EdgeAlterationsT(const CsrGraph& graph, NodeId target,
                          const UtilityVector& utilities) const override;

 private:
  double gamma_;
  int max_length_;
};

}  // namespace privrec

#endif  // PRIVREC_UTILITY_WEIGHTED_PATHS_H_
