#include "utility/incremental.h"

#include <cmath>

#include "graph/traversal.h"

namespace privrec {
namespace {

/// Patched-to-zero rounding bound (see header).
constexpr double kResidueEpsilon = 1e-9;

/// The other endpoint's score recomputed from scratch: Σ over first hops
/// z of target with an arc z→node, weighted at z's POST-delta out-degree.
/// Used when an edge removal returns `node` to the target's candidate set
/// (its cached entry was suppressed while it was a neighbor). Iterates
/// first hops in CSR order — the same accumulation order Compute uses, so
/// even float-weighted scores come out identical.
double ScoreFromScratch(const CsrGraph& graph, NodeId target, NodeId node,
                        DegreeWeightFn weight) {
  double score = 0;
  for (NodeId z : graph.OutNeighbors(target)) {
    if (graph.HasEdge(z, node)) score += weight(graph.OutDegree(z));
  }
  return score;
}

}  // namespace

UtilityVector PatchTwoHopUtility(const CsrGraph& graph, const EdgeDelta& delta,
                                 NodeId target, const UtilityVector& cached,
                                 UtilityWorkspace& workspace,
                                 DegreeWeightFn weight, bool constant_weight) {
  workspace.PrepareFor(graph);
  SparseCounter& counter = workspace.counter(0);
  counter.Reserve(cached.nonzero().size() + 8);
  for (const UtilityEntry& e : cached.nonzero()) {
    counter.Add(e.node, e.utility);
  }
  const NodeId x = delta.u;
  const NodeId y = delta.v;
  const bool added = delta.added;

  if (graph.directed()) {
    if (target == x) {
      // The target's first-hop set gained/lost y (whose own out-degree the
      // arc x→y does not touch): every second hop through y shifts by y's
      // full weight.
      const double w_y = weight(graph.OutDegree(y));
      for (NodeId i : graph.OutNeighbors(y)) {
        if (i == target) continue;
        counter.Add(i, added ? w_y : -w_y);
      }
      if (!added) {
        // y re-enters the candidate set; its cached entry was suppressed
        // while it was a neighbor, so rebuild it whole.
        const double score = ScoreFromScratch(graph, target, y, weight);
        if (score > 0) counter.Add(y, score);
      }
      // On add, y is now excluded as a neighbor; FinalizeUtilityScores
      // drops any stale y entry against the post-delta graph.
    } else if (graph.HasEdge(target, x)) {
      // Paths through intermediate x: its out-neighbor set gained/lost y
      // and its out-degree shifted by one (reweighting every surviving
      // path for non-constant weights).
      const uint32_t d_x = graph.OutDegree(x);
      const double post_w = weight(d_x);
      const double pre_w = weight(added ? d_x - 1 : d_x + 1);
      if (!constant_weight && post_w != pre_w) {
        const double dw = post_w - pre_w;
        for (NodeId i : graph.OutNeighbors(x)) {
          if (i == target || i == y) continue;
          counter.Add(i, dw);
        }
      }
      if (y != target) counter.Add(y, added ? post_w : -pre_w);
    }
    // Any other target is untouched by an arc toggle (see
    // EdgeDeltaAffectsTarget): the loaded entries pass through unchanged.
  } else if (target == x || target == y) {
    const NodeId other = (target == x) ? y : x;
    const uint32_t d_other = graph.OutDegree(other);
    if (added) {
      // `other` joined the target's neighborhood: it contributes as a
      // whole new intermediate at its post-delta weight, and leaves the
      // candidate set (handled by the finalize pass).
      const double w_other = weight(d_other);
      for (NodeId i : graph.OutNeighbors(other)) {
        if (i == target) continue;
        counter.Add(i, w_other);
      }
    } else {
      // `other` left the neighborhood: remove its whole contribution at
      // its pre-delta weight (degree before the removal), then rebuild
      // its own re-admitted candidate entry.
      const double w_other = weight(d_other + 1);
      for (NodeId i : graph.OutNeighbors(other)) {
        if (i == target) continue;
        counter.Add(i, -w_other);
      }
      const double score = ScoreFromScratch(graph, target, other, weight);
      if (score > 0) counter.Add(other, score);
    }
  } else {
    // Non-endpoint target of an undirected toggle: each adjacent endpoint
    // e is an intermediate whose degree shifted (reweight surviving paths
    // through e) and whose adjacency to the other endpoint o appeared or
    // vanished (the ± common-neighbor term for o).
    for (int side = 0; side < 2; ++side) {
      const NodeId e = (side == 0) ? x : y;
      const NodeId o = (side == 0) ? y : x;
      if (!graph.HasEdge(target, e)) continue;
      const uint32_t d_e = graph.OutDegree(e);
      const double post_w = weight(d_e);
      const double pre_w = weight(added ? d_e - 1 : d_e + 1);
      if (!constant_weight && post_w != pre_w) {
        const double dw = post_w - pre_w;
        for (NodeId i : graph.OutNeighbors(e)) {
          if (i == target || i == o) continue;
          counter.Add(i, dw);
        }
      }
      counter.Add(o, added ? post_w : -pre_w);
    }
  }

  if (!constant_weight) {
    // Round float residue on fully-cancelled slots to exact zero so the
    // nonzero support matches a fresh Compute (see header contract).
    for (NodeId v : counter.touched()) {
      const double value = counter.Get(v);
      if (value != 0.0 && std::fabs(value) < kResidueEpsilon) {
        counter.Add(v, -value);
      }
    }
  }
  return FinalizeUtilityScores(graph, target, counter, workspace);
}

}  // namespace privrec
