#include "utility/incremental.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "graph/traversal.h"
#include "utility/two_hop_kernels.h"

namespace privrec {
namespace {

/// Patched-to-zero rounding bound (see header).
constexpr double kResidueEpsilon = 1e-9;

double UnitWeight(uint32_t /*degree*/) { return 1.0; }

/// The other endpoint's score recomputed from scratch: Σ over first hops
/// z of target with an arc z→node, weighted at z's POST-delta out-degree.
/// Used when an edge removal returns `node` to the target's candidate set
/// (its cached entry was suppressed while it was a neighbor). Routed
/// through the adaptive intersection kernels
/// (utility/two_hop_kernels.h), which emit matches in the same ascending
/// first-hop order as Compute — so even float-weighted scores come out
/// identical.
double ScoreFromScratch(const CsrGraph& graph, NodeId target, NodeId node,
                        DegreeWeightFn weight) {
  return ScoreCandidateTwoHop(graph, target, node, weight);
}

/// Single-delta core: adjusts a counter pre-loaded with the target's
/// pre-delta scores (or intersection counts) into the post-delta values.
/// Exactly the arithmetic documented on PatchTwoHopUtility; factored out
/// so the Jaccard engine can run it on intersection counts.
void PatchTwoHopCountsOneDelta(const CsrGraph& graph, const EdgeDelta& delta,
                               NodeId target, SparseCounter& counter,
                               DegreeWeightFn weight, bool constant_weight) {
  const NodeId x = delta.u;
  const NodeId y = delta.v;
  const bool added = delta.added;

  if (graph.directed()) {
    if (target == x) {
      // The target's first-hop set gained/lost y (whose own out-degree the
      // arc x→y does not touch): every second hop through y shifts by y's
      // full weight.
      const double w_y = weight(graph.OutDegree(y));
      for (NodeId i : graph.OutNeighbors(y)) {
        if (i == target) continue;
        counter.Add(i, added ? w_y : -w_y);
      }
      if (!added) {
        // y re-enters the candidate set; its cached entry was suppressed
        // while it was a neighbor, so rebuild it whole.
        const double score = ScoreFromScratch(graph, target, y, weight);
        if (score > 0) counter.Add(y, score);
      }
      // On add, y is now excluded as a neighbor; FinalizeUtilityScores
      // drops any stale y entry against the post-delta graph.
    } else if (graph.HasEdge(target, x)) {
      // Paths through intermediate x: its out-neighbor set gained/lost y
      // and its out-degree shifted by one (reweighting every surviving
      // path for non-constant weights).
      const uint32_t d_x = graph.OutDegree(x);
      const double post_w = weight(d_x);
      const double pre_w = weight(added ? d_x - 1 : d_x + 1);
      if (!constant_weight && post_w != pre_w) {
        const double dw = post_w - pre_w;
        for (NodeId i : graph.OutNeighbors(x)) {
          if (i == target || i == y) continue;
          counter.Add(i, dw);
        }
      }
      if (y != target) counter.Add(y, added ? post_w : -pre_w);
    }
    // Any other target is untouched by an arc toggle (see
    // EdgeDeltaAffectsTarget): the loaded entries pass through unchanged.
  } else if (target == x || target == y) {
    const NodeId other = (target == x) ? y : x;
    const uint32_t d_other = graph.OutDegree(other);
    if (added) {
      // `other` joined the target's neighborhood: it contributes as a
      // whole new intermediate at its post-delta weight, and leaves the
      // candidate set (handled by the finalize pass).
      const double w_other = weight(d_other);
      for (NodeId i : graph.OutNeighbors(other)) {
        if (i == target) continue;
        counter.Add(i, w_other);
      }
    } else {
      // `other` left the neighborhood: remove its whole contribution at
      // its pre-delta weight (degree before the removal), then rebuild
      // its own re-admitted candidate entry.
      const double w_other = weight(d_other + 1);
      for (NodeId i : graph.OutNeighbors(other)) {
        if (i == target) continue;
        counter.Add(i, -w_other);
      }
      const double score = ScoreFromScratch(graph, target, other, weight);
      if (score > 0) counter.Add(other, score);
    }
  } else {
    // Non-endpoint target of an undirected toggle: each adjacent endpoint
    // e is an intermediate whose degree shifted (reweight surviving paths
    // through e) and whose adjacency to the other endpoint o appeared or
    // vanished (the ± common-neighbor term for o).
    for (int side = 0; side < 2; ++side) {
      const NodeId e = (side == 0) ? x : y;
      const NodeId o = (side == 0) ? y : x;
      if (!graph.HasEdge(target, e)) continue;
      const uint32_t d_e = graph.OutDegree(e);
      const double post_w = weight(d_e);
      const double pre_w = weight(added ? d_e - 1 : d_e + 1);
      if (!constant_weight && post_w != pre_w) {
        const double dw = post_w - pre_w;
        for (NodeId i : graph.OutNeighbors(e)) {
          if (i == target || i == o) continue;
          counter.Add(i, dw);
        }
      }
      counter.Add(o, added ? post_w : -pre_w);
    }
  }
}

/// Net out-adjacency changes of a journal window, keyed by arc tail.
/// Undirected windows record both arcs of each toggle, so "out-adjacency"
/// uniformly means the CSR's stored arcs for either directedness.
struct NodeOps {
  std::vector<NodeId> added;    // sorted
  std::vector<NodeId> removed;  // sorted
};

class ArcOpsIndex {
 public:
  ArcOpsIndex(const CsrGraph& graph, std::span<const EdgeDelta> deltas) {
    for (const EdgeDelta& delta : deltas) {
      Accumulate(delta.u, delta.v, delta.added);
      if (!graph.directed()) Accumulate(delta.v, delta.u, delta.added);
    }
    for (auto& [tail, ops] : by_tail_) {
      (void)tail;
      std::sort(ops.added.begin(), ops.added.end());
      std::sort(ops.removed.begin(), ops.removed.end());
    }
  }

  const NodeOps* OpsFor(NodeId tail) const {
    auto it = by_tail_.find(tail);
    return it == by_tail_.end() ? nullptr : &it->second;
  }

  /// Whether arc s→t existed before the window, derived from the final
  /// graph and the net toggle (a net-toggled arc's pre-state is the
  /// opposite of its post-state).
  bool PreHasArc(const CsrGraph& graph, NodeId s, NodeId t) const {
    const bool now = graph.HasEdge(s, t);
    auto it = net_.find(Pack(s, t));
    return it == net_.end() ? now : !now;
  }

  /// Out-degree before the window.
  uint32_t PreOutDegree(const CsrGraph& graph, NodeId v) const {
    const NodeOps* ops = OpsFor(v);
    uint32_t degree = graph.OutDegree(v);
    if (ops != nullptr) {
      degree -= static_cast<uint32_t>(ops->added.size());
      degree += static_cast<uint32_t>(ops->removed.size());
    }
    return degree;
  }

  const std::unordered_map<NodeId, NodeOps>& by_tail() const {
    return by_tail_;
  }

 private:
  static uint64_t Pack(NodeId s, NodeId t) {
    return (static_cast<uint64_t>(s) << 32) | t;
  }

  void Accumulate(NodeId s, NodeId t, bool added) {
    int& n = net_[Pack(s, t)];
    n += added ? 1 : -1;
    // A valid journal alternates add/remove per arc, so the net can never
    // leave ±1; anything else means the window is not a journal replay.
    PRIVREC_CHECK(n >= -1 && n <= 1)
        << "malformed journal window: arc toggled out of sequence";
    NodeOps& ops = by_tail_[s];
    auto erase_one = [](std::vector<NodeId>& list, NodeId node) {
      auto it = std::find(list.begin(), list.end(), node);
      if (it != list.end()) list.erase(it);
    };
    erase_one(ops.added, t);
    erase_one(ops.removed, t);
    if (n == 0) {
      net_.erase(Pack(s, t));
      return;
    }
    (n == 1 ? ops.added : ops.removed).push_back(t);
  }

  std::unordered_map<NodeId, NodeOps> by_tail_;
  std::unordered_map<uint64_t, int> net_;
};

/// Multi-delta core: adjusts a counter pre-loaded with the target's
/// pre-window values into the post-window values in one pass over the
/// dirty intermediates (see PatchTwoHopUtilityBatch).
void PatchTwoHopCountsWindow(const CsrGraph& graph, const ArcOpsIndex& ops,
                             NodeId target, SparseCounter& counter,
                             DegreeWeightFn weight) {
  // Dirty intermediates: every node whose out-adjacency changed, plus the
  // heads of the target's own arc changes (for directed graphs those
  // heads' adjacency did not move, but their first-hop membership did).
  std::vector<NodeId> dirty;
  dirty.reserve(ops.by_tail().size() + 4);
  for (const auto& [tail, node_ops] : ops.by_tail()) {
    // Fully-cancelled tails keep an empty entry; they are not dirty.
    if (node_ops.added.empty() && node_ops.removed.empty()) continue;
    if (tail != target) dirty.push_back(tail);
  }
  const NodeOps* target_ops = ops.OpsFor(target);
  if (target_ops != nullptr) {
    for (NodeId head : target_ops->added) dirty.push_back(head);
    for (NodeId head : target_ops->removed) dirty.push_back(head);
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());

  for (const NodeId z : dirty) {
    const NodeOps* z_ops = ops.OpsFor(z);
    const bool was_first_hop = ops.PreHasArc(graph, target, z);
    const bool is_first_hop = graph.HasEdge(target, z);
    if (was_first_hop) {
      // Subtract z's whole pre-window contribution, reconstructed from
      // the final snapshot: N_pre(z) = (N_final(z) \ added) ∪ removed,
      // weighted at z's pre-window degree.
      const double w_pre = weight(ops.PreOutDegree(graph, z));
      for (NodeId i : graph.OutNeighbors(z)) {
        if (i == target) continue;
        if (z_ops != nullptr &&
            std::binary_search(z_ops->added.begin(), z_ops->added.end(), i)) {
          continue;  // not a pre-window neighbor
        }
        counter.Add(i, -w_pre);
      }
      if (z_ops != nullptr) {
        for (NodeId i : z_ops->removed) {
          if (i != target) counter.Add(i, -w_pre);
        }
      }
    }
    if (is_first_hop) {
      // Re-add z's whole post-window contribution from the final snapshot.
      const double w_post = weight(graph.OutDegree(z));
      for (NodeId i : graph.OutNeighbors(z)) {
        if (i != target) counter.Add(i, w_post);
      }
    }
  }

  // Candidates the window re-admitted (arcs target→x removed net): their
  // cached entries were suppressed while they were neighbors, so whatever
  // the dirty pass accumulated is partial — rebuild them whole. (Zeroing
  // first, then adding, keeps the slot bit-exact: x + (-x) is exactly 0.)
  if (target_ops != nullptr) {
    for (NodeId x : target_ops->removed) {
      const double partial = counter.Get(x);
      if (partial != 0.0) counter.Add(x, -partial);
      const double score = ScoreFromScratch(graph, target, x, weight);
      if (score > 0) counter.Add(x, score);
    }
  }
}

/// The batch cores may drive a slot to exactly zero and then touch it
/// again, leaving duplicates in SparseCounter's touched list (the
/// single-delta core adds at most once per slot and cannot). Rewrites the
/// surviving values into `clean` — one Add per node, sorted for
/// deterministic finalize order — rounding float residue to exact zero.
void CanonicalizeCounts(const SparseCounter& counter, bool constant_weight,
                        SparseCounter& clean) {
  std::vector<NodeId> nodes(counter.touched());
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  clean.Reserve(nodes.size());
  for (NodeId v : nodes) {
    const double value = counter.Get(v);
    if (value == 0.0) continue;
    if (!constant_weight && std::fabs(value) < kResidueEpsilon) continue;
    clean.Add(v, value);
  }
}

}  // namespace

UtilityVector PatchTwoHopUtility(const CsrGraph& graph, const EdgeDelta& delta,
                                 NodeId target, const UtilityVector& cached,
                                 UtilityWorkspace& workspace,
                                 DegreeWeightFn weight, bool constant_weight) {
  workspace.PrepareFor(graph);
  SparseCounter& counter = workspace.counter(0);
  counter.Reserve(cached.nonzero().size() + 8);
  for (const UtilityEntry& e : cached.nonzero()) {
    counter.Add(e.node, e.utility);
  }
  PatchTwoHopCountsOneDelta(graph, delta, target, counter, weight,
                            constant_weight);
  if (!constant_weight) {
    // Round float residue on fully-cancelled slots to exact zero so the
    // nonzero support matches a fresh Compute (see header contract).
    for (NodeId v : counter.touched()) {
      const double value = counter.Get(v);
      if (value != 0.0 && std::fabs(value) < kResidueEpsilon) {
        counter.Add(v, -value);
      }
    }
  }
  return FinalizeUtilityScores(graph, target, counter, workspace);
}

UtilityVector PatchTwoHopUtilityBatch(const CsrGraph& graph,
                                      std::span<const EdgeDelta> deltas,
                                      NodeId target,
                                      const UtilityVector& cached,
                                      UtilityWorkspace& workspace,
                                      DegreeWeightFn weight,
                                      bool constant_weight) {
  PRIVREC_CHECK(!deltas.empty());
  if (deltas.size() == 1) {
    // The single-delta engine avoids the subtract-then-re-add dust of the
    // window core; dispatch to it whenever the window allows.
    return PatchTwoHopUtility(graph, deltas.front(), target, cached,
                              workspace, weight, constant_weight);
  }
  workspace.PrepareFor(graph);
  SparseCounter& counter = workspace.counter(0);
  counter.Reserve(cached.nonzero().size() + 8);
  for (const UtilityEntry& e : cached.nonzero()) {
    counter.Add(e.node, e.utility);
  }
  const ArcOpsIndex ops(graph, deltas);
  PatchTwoHopCountsWindow(graph, ops, target, counter, weight);
  SparseCounter& clean = workspace.counter(1);
  CanonicalizeCounts(counter, constant_weight, clean);
  return FinalizeUtilityScores(graph, target, clean, workspace);
}

UtilityVector PatchJaccardUtility(const CsrGraph& graph,
                                  std::span<const EdgeDelta> deltas,
                                  NodeId target, const UtilityVector& cached,
                                  UtilityWorkspace& workspace) {
  PRIVREC_CHECK(!deltas.empty());
  PRIVREC_CHECK(!graph.directed())
      << "directed Jaccard can hide support behind the uni > 0 guard; "
         "callers must recompute (see header)";
  workspace.PrepareFor(graph);
  const ArcOpsIndex ops(graph, deltas);
  // Recover the integer intersection I from each cached score against the
  // PRE-window degrees: u = I/(d_r + d_i - I)  ⇒  I = u·(d_r+d_i)/(1+u),
  // exact after rounding (see header).
  SparseCounter& counts = workspace.counter(0);
  counts.Reserve(cached.nonzero().size() + 8);
  const double d_r_pre =
      static_cast<double>(ops.PreOutDegree(graph, target));
  for (const UtilityEntry& e : cached.nonzero()) {
    const double d_i_pre =
        static_cast<double>(ops.PreOutDegree(graph, e.node));
    const double inter =
        std::round(e.utility * (d_r_pre + d_i_pre) / (1.0 + e.utility));
    counts.Add(e.node, inter);
  }
  if (deltas.size() == 1) {
    PatchTwoHopCountsOneDelta(graph, deltas.front(), target, counts,
                              &UnitWeight, /*constant_weight=*/true);
  } else {
    PatchTwoHopCountsWindow(graph, ops, target, counts, &UnitWeight);
  }
  // Re-derive every score from the POST-window degrees with the exact
  // float expression JaccardUtility::Compute uses (the union-size term:
  // |N(r) ∪ N(i)| = d_r + d_i - I).
  SparseCounter& deduped = workspace.counter(1);
  CanonicalizeCounts(counts, /*constant_weight=*/true, deduped);
  SparseCounter& scores = workspace.counter(2);
  scores.Reserve(deduped.touched().size());
  const double d_r = static_cast<double>(graph.OutDegree(target));
  for (NodeId v : deduped.touched()) {
    const double inter = deduped.Get(v);
    if (inter <= 0) continue;
    const double uni =
        d_r + static_cast<double>(graph.OutDegree(v)) - inter;
    if (uni > 0) scores.Add(v, inter / uni);
  }
  return FinalizeUtilityScores(graph, target, scores, workspace);
}

bool WindowWithinWalkCone(const CsrGraph& graph,
                          std::span<const EdgeDelta> window, NodeId target,
                          int max_hops) {
  if (window.empty()) return false;
  // Tails whose out-lists the window changed, and the union-graph arc
  // injections (every window arc, added or removed: the union covers every
  // intermediate state the cone test must be conservative against).
  std::unordered_map<NodeId, std::vector<NodeId>> injected;
  std::unordered_set<NodeId> tails;
  for (const EdgeDelta& delta : window) {
    tails.insert(delta.u);
    injected[delta.u].push_back(delta.v);
    if (!graph.directed()) {
      tails.insert(delta.v);
      injected[delta.v].push_back(delta.u);
    }
  }
  if (tails.count(target) > 0) return true;
  if (max_hops <= 0) return false;

  // Bounded BFS from the target over post-graph ∪ injected arcs; visited
  // is a hash set so the cost is the cone, not O(n).
  std::unordered_set<NodeId> visited{target};
  std::vector<NodeId> frontier{target}, next;
  for (int hop = 1; hop <= max_hops && !frontier.empty(); ++hop) {
    next.clear();
    for (const NodeId v : frontier) {
      const auto expand = [&](NodeId w) -> bool {
        if (!visited.insert(w).second) return false;
        if (tails.count(w) > 0) return true;
        next.push_back(w);
        return false;
      };
      for (const NodeId w : graph.OutNeighbors(v)) {
        if (expand(w)) return true;
      }
      const auto it = injected.find(v);
      if (it != injected.end()) {
        for (const NodeId w : it->second) {
          if (expand(w)) return true;
        }
      }
    }
    std::swap(frontier, next);
  }
  return false;
}

}  // namespace privrec
