#ifndef PRIVREC_UTILITY_UTILITY_FUNCTION_H_
#define PRIVREC_UTILITY_UTILITY_FUNCTION_H_

#include <string>

#include "graph/csr_graph.h"
#include "utility/utility_vector.h"
#include "utility/utility_workspace.h"

namespace privrec {

/// A graph link-analysis utility function (Section 3.1): assigns each
/// candidate node a goodness score for being recommended to a target,
/// computed from the structure of the graph only. Implementations must
/// satisfy the exchangeability axiom by construction (scores depend only on
/// graph structure, never on node identity).
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// Short stable identifier ("common_neighbors", "weighted_paths[g=0.05]").
  virtual std::string name() const = 0;

  /// Computes the utility vector for `target`. The candidate set excludes
  /// `target` and its existing out-neighbors (the paper's experimental
  /// convention). Directed graphs are traversed along out-edges.
  ///
  /// Convenience form: allocates a throwaway workspace. Batch callers
  /// (EvaluateTargets, RecommendationService) use the workspace overload so
  /// the O(n) scratch buffers are paid once per thread, not per target.
  UtilityVector Compute(const CsrGraph& graph, NodeId target) const {
    UtilityWorkspace workspace;
    return Compute(graph, target, workspace);
  }

  /// Workspace form: all scratch state lives in `workspace`, which may be
  /// reused across targets and graphs (one per thread; see
  /// UtilityWorkspace). Produces bit-identical results to the convenience
  /// form — implementations perform the same arithmetic in the same order
  /// regardless of where the buffers came from.
  virtual UtilityVector Compute(const CsrGraph& graph, NodeId target,
                                UtilityWorkspace& workspace) const = 0;

  /// Conservative global L1 sensitivity Δf = max ||u^G - u^{G'}||_1 over
  /// neighboring graphs differing in one edge *not incident to the target*
  /// (the relaxed edge-DP of Section 3.2, which is what the experiments
  /// use). This calibrates the Laplace/Exponential mechanisms.
  virtual double SensitivityBound(const CsrGraph& graph) const = 0;

  /// The paper's per-target edge-alteration count t used in Corollary 1:
  /// the number of edge additions/removals sufficient to turn a
  /// least-likely candidate into the unique highest-utility node
  /// (Section 7.1 gives the exact expressions per utility function).
  virtual double EdgeAlterationsT(const CsrGraph& graph, NodeId target,
                                  const UtilityVector& utilities) const = 0;
};

}  // namespace privrec

#endif  // PRIVREC_UTILITY_UTILITY_FUNCTION_H_
