#ifndef PRIVREC_UTILITY_UTILITY_FUNCTION_H_
#define PRIVREC_UTILITY_UTILITY_FUNCTION_H_

#include <string>

#include "graph/csr_graph.h"
#include "utility/utility_vector.h"

namespace privrec {

/// A graph link-analysis utility function (Section 3.1): assigns each
/// candidate node a goodness score for being recommended to a target,
/// computed from the structure of the graph only. Implementations must
/// satisfy the exchangeability axiom by construction (scores depend only on
/// graph structure, never on node identity).
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// Short stable identifier ("common_neighbors", "weighted_paths[g=0.05]").
  virtual std::string name() const = 0;

  /// Computes the utility vector for `target`. The candidate set excludes
  /// `target` and its existing out-neighbors (the paper's experimental
  /// convention). Directed graphs are traversed along out-edges.
  virtual UtilityVector Compute(const CsrGraph& graph, NodeId target) const = 0;

  /// Conservative global L1 sensitivity Δf = max ||u^G - u^{G'}||_1 over
  /// neighboring graphs differing in one edge *not incident to the target*
  /// (the relaxed edge-DP of Section 3.2, which is what the experiments
  /// use). This calibrates the Laplace/Exponential mechanisms.
  virtual double SensitivityBound(const CsrGraph& graph) const = 0;

  /// The paper's per-target edge-alteration count t used in Corollary 1:
  /// the number of edge additions/removals sufficient to turn a
  /// least-likely candidate into the unique highest-utility node
  /// (Section 7.1 gives the exact expressions per utility function).
  virtual double EdgeAlterationsT(const CsrGraph& graph, NodeId target,
                                  const UtilityVector& utilities) const = 0;
};

}  // namespace privrec

#endif  // PRIVREC_UTILITY_UTILITY_FUNCTION_H_
