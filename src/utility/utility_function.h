#ifndef PRIVREC_UTILITY_UTILITY_FUNCTION_H_
#define PRIVREC_UTILITY_UTILITY_FUNCTION_H_

#include <span>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/edge_delta.h"
#include "utility/utility_vector.h"
#include "utility/utility_workspace.h"

namespace privrec {

/// A graph link-analysis utility function (Section 3.1): assigns each
/// candidate node a goodness score for being recommended to a target,
/// computed from the structure of the graph only. Implementations must
/// satisfy the exchangeability axiom by construction (scores depend only on
/// graph structure, never on node identity).
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// Short stable identifier ("common_neighbors", "weighted_paths[g=0.05]").
  virtual std::string name() const = 0;

  /// Computes the utility vector for `target`. The candidate set excludes
  /// `target` and its existing out-neighbors (the paper's experimental
  /// convention). Directed graphs are traversed along out-edges.
  ///
  /// Convenience form: allocates a throwaway workspace. Batch callers
  /// (EvaluateTargets, RecommendationService) use the workspace overload so
  /// the O(n) scratch buffers are paid once per thread, not per target.
  UtilityVector Compute(const CsrGraph& graph, NodeId target) const {
    UtilityWorkspace workspace;
    return Compute(graph, target, workspace);
  }

  /// Workspace form: all scratch state lives in `workspace`, which may be
  /// reused across targets and graphs (one per thread; see
  /// UtilityWorkspace). Produces bit-identical results to the convenience
  /// form — implementations perform the same arithmetic in the same order
  /// regardless of where the buffers came from.
  virtual UtilityVector Compute(const CsrGraph& graph, NodeId target,
                                UtilityWorkspace& workspace) const = 0;

  /// Conservative global L1 sensitivity Δf = max ||u^G - u^{G'}||_1 over
  /// neighboring graphs differing in one edge *not incident to the target*
  /// (the relaxed edge-DP of Section 3.2, which is what the experiments
  /// use). This calibrates the Laplace/Exponential mechanisms.
  virtual double SensitivityBound(const CsrGraph& graph) const = 0;

  /// Conservative L1 sensitivity under the NODE neighboring relation
  /// (Appendix A: one node's entire neighborhood rewired), evaluated
  /// against the degree-capped projected view the node-DP serving mode
  /// computes on (`projected` = ProjectDegreeCapped(base, degree_cap), so
  /// every adjacency list the utility reads has length <= degree_cap).
  ///
  /// Default: degree_cap · Δf_edge(projected). Rewiring node x changes at
  /// most degree_cap kept arcs out of x plus degree_cap kept arcs into x
  /// per side; for the 2-hop weighted-count family each arc's influence is
  /// bounded by the edge sensitivity, giving the D·Δf_edge envelope the
  /// ISSUE names. This is an engineering bound, not a closed-form optimum
  /// — the audit harness (eval/service_auditor.h, node-rewiring pairs)
  /// empirically certifies that serving calibrated this way stays <= ε;
  /// utilities with tighter closed forms override (personalized PageRank's
  /// bound is cap-independent: rewiring one node's out-list changes a
  /// single row of the walk matrix).
  virtual double NodeSensitivityBound(const CsrGraph& projected,
                                      uint32_t degree_cap) const {
    return static_cast<double>(degree_cap) * SensitivityBound(projected);
  }

  /// Incremental-maintenance capability (see README "Incremental
  /// maintenance"): true iff ApplyEdgeDelta is overridden with an O(Δ)
  /// patch whose result is exactly equal to a fresh Compute on the
  /// post-delta graph — same candidate count, same nonzero support, and
  /// scores that are bitwise-identical for integer-valued utilities
  /// (common neighbors) or equal to within float-rounding dust (the
  /// degree-weighted family), which the patch engine rounds away so the
  /// support can never differ. Utilities that cannot patch (the 3-hop
  /// weighted-paths family) leave this false and are served through the
  /// full-recompute path.
  virtual bool SupportsIncrementalUpdate() const { return false; }

  /// Patches `cached` — the target's utility vector on the graph
  /// immediately BEFORE `delta` — into the vector for the graph
  /// immediately AFTER it. `graph` must be the post-delta snapshot.
  /// The base implementation ignores the cache and recomputes (always
  /// correct); overrides must honor the exact-equality contract above.
  virtual UtilityVector ApplyEdgeDelta(const CsrGraph& graph,
                                       const EdgeDelta& delta, NodeId target,
                                       const UtilityVector& cached,
                                       UtilityWorkspace& workspace) const {
    (void)delta;
    (void)cached;
    return Compute(graph, target, workspace);
  }

  /// Multi-delta capability: true iff ApplyEdgeDeltaBatch is overridden
  /// with a one-pass window patch honoring the same exact-equality
  /// contract as ApplyEdgeDelta. Kept separate from
  /// SupportsIncrementalUpdate so a utility can support single-delta
  /// patches while still recomputing on multi-delta windows (the serving
  /// cache falls back to a recompute for those — see
  /// ServiceStats::delta_recomputed).
  virtual bool SupportsIncrementalBatch() const { return false; }

  /// Patches `cached` — the target's vector on the graph immediately
  /// BEFORE the ordered journal window `deltas` — into the vector for the
  /// graph AFTER the whole window, against the post-window snapshot only
  /// (no intermediate graph states exist anymore; see
  /// PatchTwoHopUtilityBatch in utility/incremental.h for how that stays
  /// exact). The base implementation recomputes (always correct).
  virtual UtilityVector ApplyEdgeDeltaBatch(const CsrGraph& graph,
                                            std::span<const EdgeDelta> deltas,
                                            NodeId target,
                                            const UtilityVector& cached,
                                            UtilityWorkspace& workspace) const {
    (void)deltas;
    (void)cached;
    return Compute(graph, target, workspace);
  }

  /// Whether `delta` can change the target's vector, given the cached
  /// pre-delta vector. The default is the structural 2-hop test
  /// (EdgeDeltaAffectsTarget), which is exact for utilities of the
  /// Σ weight(deg(intermediate)) form; utilities whose scores also depend
  /// on CANDIDATE-side degrees (Jaccard's union term) must widen it —
  /// keeping an entry this test clears must be exactly as good as
  /// patching it. Evaluated against the post-batch snapshot with the same
  /// whole-window caveat as EdgeDeltaAffectsTarget.
  virtual bool EdgeDeltaAffects(const CsrGraph& graph, const EdgeDelta& delta,
                                NodeId target,
                                const UtilityVector& cached) const {
    (void)cached;
    return EdgeDeltaAffectsTarget(graph, delta, target);
  }

  /// Whole-window form of EdgeDeltaAffects — what cache-repair decisions
  /// must go through. The default ORs the per-delta test, which is exact
  /// for the structural 2-hop rule; utilities whose per-delta test needs
  /// pre-window state the final snapshot no longer shows (Jaccard's
  /// hidden-support clause depends on a tail's PRE-window degree, which a
  /// single post-batch OutDegree lookup cannot reconstruct once several
  /// deltas moved it) override this to net the window first.
  virtual bool EdgeDeltaWindowAffects(const CsrGraph& graph,
                                      std::span<const EdgeDelta> deltas,
                                      NodeId target,
                                      const UtilityVector& cached) const {
    for (const EdgeDelta& delta : deltas) {
      if (EdgeDeltaAffects(graph, delta, target, cached)) return true;
    }
    return false;
  }

  /// Affect-filtered window patching: appends to `out` the sub-window of
  /// `deltas` (an ordered journal window, `graph` the post-window
  /// snapshot) that can matter for `target`, preserving window order.
  /// Contract: patching `cached` with the filtered window through
  /// ApplyEdgeDelta / ApplyEdgeDeltaBatch must equal patching with the
  /// full window — the filter may only drop deltas that touch no state
  /// the utility's compute or patch engines read for this target. The
  /// serving cache uses this so max_patch_window bounds RELEVANT deltas,
  /// not raw window width (ServiceOptions::enable_affect_filter).
  ///
  /// The default is the structural ever-neighborhood filter
  /// (FilterAffectingDeltas), exact for the Σ weight(deg(intermediate))
  /// family; utilities whose scores read candidate-side state widen it
  /// (Jaccard adds its cached support). Must stay consistent with
  /// EdgeDeltaWindowAffects: a window that test flags must never filter
  /// to empty.
  virtual void FilterAffectingWindow(const CsrGraph& graph,
                                     std::span<const EdgeDelta> deltas,
                                     NodeId target,
                                     const UtilityVector& cached,
                                     std::vector<EdgeDelta>& out) const {
    (void)cached;
    FilterAffectingDeltas(graph, deltas, target, out);
  }

  /// The paper's per-target edge-alteration count t used in Corollary 1:
  /// the number of edge additions/removals sufficient to turn a
  /// least-likely candidate into the unique highest-utility node
  /// (Section 7.1 gives the exact expressions per utility function).
  virtual double EdgeAlterationsT(const CsrGraph& graph, NodeId target,
                                  const UtilityVector& utilities) const = 0;
};

}  // namespace privrec

#endif  // PRIVREC_UTILITY_UTILITY_FUNCTION_H_
