#ifndef PRIVREC_UTILITY_UTILITY_FUNCTION_H_
#define PRIVREC_UTILITY_UTILITY_FUNCTION_H_

#include <string>

#include "graph/csr_graph.h"
#include "graph/edge_delta.h"
#include "utility/utility_vector.h"
#include "utility/utility_workspace.h"

namespace privrec {

/// A graph link-analysis utility function (Section 3.1): assigns each
/// candidate node a goodness score for being recommended to a target,
/// computed from the structure of the graph only. Implementations must
/// satisfy the exchangeability axiom by construction (scores depend only on
/// graph structure, never on node identity).
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// Short stable identifier ("common_neighbors", "weighted_paths[g=0.05]").
  virtual std::string name() const = 0;

  /// Computes the utility vector for `target`. The candidate set excludes
  /// `target` and its existing out-neighbors (the paper's experimental
  /// convention). Directed graphs are traversed along out-edges.
  ///
  /// Convenience form: allocates a throwaway workspace. Batch callers
  /// (EvaluateTargets, RecommendationService) use the workspace overload so
  /// the O(n) scratch buffers are paid once per thread, not per target.
  UtilityVector Compute(const CsrGraph& graph, NodeId target) const {
    UtilityWorkspace workspace;
    return Compute(graph, target, workspace);
  }

  /// Workspace form: all scratch state lives in `workspace`, which may be
  /// reused across targets and graphs (one per thread; see
  /// UtilityWorkspace). Produces bit-identical results to the convenience
  /// form — implementations perform the same arithmetic in the same order
  /// regardless of where the buffers came from.
  virtual UtilityVector Compute(const CsrGraph& graph, NodeId target,
                                UtilityWorkspace& workspace) const = 0;

  /// Conservative global L1 sensitivity Δf = max ||u^G - u^{G'}||_1 over
  /// neighboring graphs differing in one edge *not incident to the target*
  /// (the relaxed edge-DP of Section 3.2, which is what the experiments
  /// use). This calibrates the Laplace/Exponential mechanisms.
  virtual double SensitivityBound(const CsrGraph& graph) const = 0;

  /// Incremental-maintenance capability (see README "Incremental
  /// maintenance"): true iff ApplyEdgeDelta is overridden with an O(Δ)
  /// patch whose result is exactly equal to a fresh Compute on the
  /// post-delta graph — same candidate count, same nonzero support, and
  /// scores that are bitwise-identical for integer-valued utilities
  /// (common neighbors) or equal to within float-rounding dust (the
  /// degree-weighted family), which the patch engine rounds away so the
  /// support can never differ. Utilities that cannot patch (the 3-hop
  /// weighted-paths family) leave this false and are served through the
  /// full-recompute path.
  virtual bool SupportsIncrementalUpdate() const { return false; }

  /// Patches `cached` — the target's utility vector on the graph
  /// immediately BEFORE `delta` — into the vector for the graph
  /// immediately AFTER it. `graph` must be the post-delta snapshot.
  /// The base implementation ignores the cache and recomputes (always
  /// correct); overrides must honor the exact-equality contract above.
  virtual UtilityVector ApplyEdgeDelta(const CsrGraph& graph,
                                       const EdgeDelta& delta, NodeId target,
                                       const UtilityVector& cached,
                                       UtilityWorkspace& workspace) const {
    (void)delta;
    (void)cached;
    return Compute(graph, target, workspace);
  }

  /// The paper's per-target edge-alteration count t used in Corollary 1:
  /// the number of edge additions/removals sufficient to turn a
  /// least-likely candidate into the unique highest-utility node
  /// (Section 7.1 gives the exact expressions per utility function).
  virtual double EdgeAlterationsT(const CsrGraph& graph, NodeId target,
                                  const UtilityVector& utilities) const = 0;
};

}  // namespace privrec

#endif  // PRIVREC_UTILITY_UTILITY_FUNCTION_H_
