#ifndef PRIVREC_GRAPH_TRANSFORMS_H_
#define PRIVREC_GRAPH_TRANSFORMS_H_

#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace privrec {

/// Symmetrizes a directed graph: the result has an undirected edge {u,v}
/// whenever u->v or v->u exists. Used by the Wiki-vote pipeline, which the
/// paper converts to an undirected network.
CsrGraph ToUndirected(const CsrGraph& graph);

/// Reverses all arcs of a directed graph; undirected graphs are returned
/// unchanged.
CsrGraph Reverse(const CsrGraph& graph);

/// Returns a copy of `graph` with edge (u,v) added; for undirected graphs
/// both arcs are added. FailedPrecondition if the edge already exists,
/// InvalidArgument on self-loops or out-of-range ids.
/// These neighbor-graph constructors implement the "G and G' differing in
/// one edge" relation of Definition 1 and back the DP auditor.
Result<CsrGraph> WithEdgeAdded(const CsrGraph& graph, NodeId u, NodeId v);

/// Returns a copy with edge (u,v) removed (both arcs for undirected).
/// FailedPrecondition if the edge does not exist.
Result<CsrGraph> WithEdgeRemoved(const CsrGraph& graph, NodeId u, NodeId v);

/// Returns a copy with every edge in `additions` added and every edge in
/// `removals` removed (ignores already-present/absent edges). This is the
/// bulk "rewiring" operation used by the lower-bound machinery (t edge
/// alterations that promote a low-utility node, Section 4.2).
CsrGraph WithEdits(const CsrGraph& graph,
                   const std::vector<std::pair<NodeId, NodeId>>& additions,
                   const std::vector<std::pair<NodeId, NodeId>>& removals);

/// Subgraph induced by `nodes` (ids are relabeled to [0, |nodes|) in the
/// given order). Duplicate ids are not allowed.
Result<CsrGraph> InducedSubgraph(const CsrGraph& graph,
                                 const std::vector<NodeId>& nodes);

}  // namespace privrec

#endif  // PRIVREC_GRAPH_TRANSFORMS_H_
