#ifndef PRIVREC_GRAPH_METRICS_H_
#define PRIVREC_GRAPH_METRICS_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace privrec {

/// Structural graph metrics beyond degrees. The dataset synthesizers are
/// validated against these: a stand-in for wiki-Vote must match not only
/// the degree profile but be in the right ballpark for triangle density
/// and assortativity, since common-neighbors utility is literally a
/// triangle count around the target.

/// Total number of triangles (each counted once). Undirected graphs only
/// (callers symmetrize directed graphs first). O(Σ d(v)²) via forward
/// neighbor intersection.
uint64_t CountTriangles(const CsrGraph& graph);

/// Global clustering coefficient: 3·triangles / #open-wedges.
/// Returns 0 on wedge-free graphs.
double GlobalClusteringCoefficient(const CsrGraph& graph);

/// Average of per-node local clustering coefficients (nodes with degree
/// < 2 contribute 0, the networkx convention).
double AverageLocalClustering(const CsrGraph& graph);

/// Degree assortativity: Pearson correlation of endpoint degrees over all
/// edges. Social graphs are typically mildly assortative; stars are
/// perfectly disassortative (-1).
double DegreeAssortativity(const CsrGraph& graph);

/// K-core decomposition: core number per node (largest k such that the
/// node survives iterated removal of all nodes with degree < k).
/// Peeling algorithm, O(n + m).
std::vector<uint32_t> CoreNumbers(const CsrGraph& graph);

}  // namespace privrec

#endif  // PRIVREC_GRAPH_METRICS_H_
