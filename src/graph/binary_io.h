#ifndef PRIVREC_GRAPH_BINARY_IO_H_
#define PRIVREC_GRAPH_BINARY_IO_H_

#include <string>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace privrec {

/// Compact binary graph format ("PRVG"): little-endian header
/// {magic, version, flags, num_nodes, num_arcs} followed by the raw CSR
/// offset and target arrays, ending with an XOR-fold checksum. Loading is
/// one read + two bulk copies — ~50x faster than text edge lists, which
/// matters when the benchmark harness reloads the Twitter-scale graph.
///
/// The format is an interchange convenience, not an archival promise: it
/// refuses files with a different version rather than migrating them.
Status SaveBinaryGraph(const CsrGraph& graph, const std::string& path);

/// Hardened against malformed input: the file size is validated against
/// the header's counts BEFORE any allocation (a corrupt count fails with
/// InvalidArgument instead of an attempted huge allocation), offsets are
/// checked monotone, every target is checked < num_nodes, and truncation
/// or checksum mismatch is a Status — never UB downstream.
Result<CsrGraph> LoadBinaryGraph(const std::string& path);

}  // namespace privrec

#endif  // PRIVREC_GRAPH_BINARY_IO_H_
