#include "graph/traversal.h"

#include <deque>

#include "graph/transforms.h"

namespace privrec {

std::vector<uint32_t> BfsDistances(const CsrGraph& graph, NodeId source) {
  std::vector<uint32_t> dist(graph.num_nodes(), kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : graph.OutNeighbors(u)) {
      if (dist[v] != kUnreachable) continue;
      dist[v] = dist[u] + 1;
      queue.push_back(v);
    }
  }
  return dist;
}

uint64_t CountTwoHopNodes(const CsrGraph& graph, NodeId source) {
  SparseCounter counter(graph.num_nodes());
  for (NodeId mid : graph.OutNeighbors(source)) {
    for (NodeId far : graph.OutNeighbors(mid)) {
      if (far == source) continue;
      counter.Add(far, 1.0);
    }
  }
  return counter.touched().size();
}

std::vector<NodeId> ConnectedComponents(const CsrGraph& graph,
                                        NodeId* num_components) {
  // Weak connectivity: operate on the symmetrized graph for directed input.
  const CsrGraph* g = &graph;
  CsrGraph undirected = CsrGraph::Empty(0, false);
  if (graph.directed()) {
    undirected = ToUndirected(graph);
    g = &undirected;
  }
  std::vector<NodeId> component(g->num_nodes(), kUnreachable);
  NodeId next_component = 0;
  std::deque<NodeId> queue;
  for (NodeId start = 0; start < g->num_nodes(); ++start) {
    if (component[start] != kUnreachable) continue;
    component[start] = next_component;
    queue.push_back(start);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g->OutNeighbors(u)) {
        if (component[v] != kUnreachable) continue;
        component[v] = next_component;
        queue.push_back(v);
      }
    }
    ++next_component;
  }
  if (num_components != nullptr) *num_components = next_component;
  return component;
}

}  // namespace privrec
