#ifndef PRIVREC_GRAPH_CSR_GRAPH_H_
#define PRIVREC_GRAPH_CSR_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace privrec {

/// Node identifier. Graphs in scope (10^5..10^8 nodes in the paper's
/// discussion, 10^5 in its experiments) fit comfortably in 32 bits.
using NodeId = uint32_t;

/// Immutable compressed-sparse-row graph: the substrate every utility
/// function and mechanism operates on.
///
/// - Directed graphs store out-adjacency; undirected graphs store each edge
///   as two arcs. `directed()` records which interpretation applies.
/// - Neighbor lists are sorted and duplicate-free, enabling O(log d)
///   HasEdge and linear-merge common-neighbor intersection.
/// - Instances are cheap to move and safe to share across threads (no
///   mutation after construction). Edge-perturbed variants (the "neighboring
///   graphs" of differential privacy) are produced by graph/transforms.h.
class CsrGraph {
 public:
  /// Builds from per-arc vectors. `offsets` has num_nodes+1 entries;
  /// arcs of node v are targets[offsets[v]..offsets[v+1]). Neighbor lists
  /// must already be sorted and deduplicated (GraphBuilder guarantees this).
  CsrGraph(std::vector<uint64_t> offsets, std::vector<NodeId> targets,
           bool directed);

  /// Empty graph with `num_nodes` isolated nodes.
  static CsrGraph Empty(NodeId num_nodes, bool directed);

  CsrGraph(const CsrGraph&) = default;
  CsrGraph& operator=(const CsrGraph&) = default;
  CsrGraph(CsrGraph&&) noexcept = default;
  CsrGraph& operator=(CsrGraph&&) noexcept = default;

  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.size() - 1); }

  /// Number of stored arcs (directed edges). For undirected graphs this is
  /// twice num_edges().
  uint64_t num_arcs() const { return targets_.size(); }

  /// Logical edge count: arcs for directed graphs, arcs/2 for undirected.
  uint64_t num_edges() const {
    return directed_ ? num_arcs() : num_arcs() / 2;
  }

  bool directed() const { return directed_; }

  uint32_t OutDegree(NodeId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted out-neighbors of v.
  std::span<const NodeId> OutNeighbors(NodeId v) const {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  /// O(log deg(u)) membership test for arc u -> v.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Largest out-degree over all nodes (the paper's d_max).
  uint32_t MaxOutDegree() const;

  /// Number of common out-neighbors |N(u) ∩ N(v)| via sorted merge.
  uint32_t CountCommonNeighbors(NodeId u, NodeId v) const;

  /// Structural equality (same node count, direction, and arcs).
  bool Equals(const CsrGraph& other) const;

 private:
  std::vector<uint64_t> offsets_;
  std::vector<NodeId> targets_;
  bool directed_;
};

}  // namespace privrec

#endif  // PRIVREC_GRAPH_CSR_GRAPH_H_
