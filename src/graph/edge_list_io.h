#ifndef PRIVREC_GRAPH_EDGE_LIST_IO_H_
#define PRIVREC_GRAPH_EDGE_LIST_IO_H_

#include <string>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace privrec {

/// Options for LoadEdgeList.
struct EdgeListOptions {
  /// Interpret edges as directed arcs (false symmetrizes them).
  bool directed = false;
  /// Relabel arbitrary node ids to a dense [0, n) range in first-seen
  /// order. SNAP datasets (e.g. wiki-Vote) need this.
  bool relabel = true;
};

/// Loads a whitespace-separated edge list (SNAP text format). Lines starting
/// with '#' or '%' are comments; each data line is "<src> <dst>".
/// Returns IOError if the file is unreadable, InvalidArgument on a
/// malformed line.
Result<CsrGraph> LoadEdgeList(const std::string& path,
                              const EdgeListOptions& options);

/// Writes the graph as a SNAP-style edge list. Undirected edges are written
/// once (u < v).
Status SaveEdgeList(const CsrGraph& graph, const std::string& path);

}  // namespace privrec

#endif  // PRIVREC_GRAPH_EDGE_LIST_IO_H_
