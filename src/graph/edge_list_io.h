#ifndef PRIVREC_GRAPH_EDGE_LIST_IO_H_
#define PRIVREC_GRAPH_EDGE_LIST_IO_H_

#include <string>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace privrec {

/// Options for LoadEdgeList.
struct EdgeListOptions {
  /// Interpret edges as directed arcs (false symmetrizes them).
  bool directed = false;
  /// Relabel arbitrary node ids to a dense [0, n) range in first-seen
  /// order. SNAP datasets (e.g. wiki-Vote) need this.
  bool relabel = true;
  /// Largest node id accepted without relabeling (and largest dense node
  /// count with it). A malformed line claiming node 10^15 then fails with
  /// InvalidArgument instead of driving a huge builder allocation. The
  /// default admits the full NodeId range.
  uint64_t max_node_id = 0xffffffffu;
};

/// Loads a whitespace-separated edge list (SNAP text format). Lines starting
/// with '#' or '%' are comments; each data line is "<src> <dst>".
/// Returns IOError if the file is unreadable, InvalidArgument on a
/// malformed line, a negative or over-max_node_id id, or (with relabel) a
/// file with more distinct nodes than NodeId can index.
Result<CsrGraph> LoadEdgeList(const std::string& path,
                              const EdgeListOptions& options);

/// Writes the graph as a SNAP-style edge list. Undirected edges are written
/// once (u < v).
Status SaveEdgeList(const CsrGraph& graph, const std::string& path);

}  // namespace privrec

#endif  // PRIVREC_GRAPH_EDGE_LIST_IO_H_
