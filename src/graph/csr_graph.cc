#include "graph/csr_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace privrec {

CsrGraph::CsrGraph(std::vector<uint64_t> offsets, std::vector<NodeId> targets,
                   bool directed)
    : offsets_(std::move(offsets)),
      targets_(std::move(targets)),
      directed_(directed) {
  PRIVREC_CHECK(!offsets_.empty()) << "offsets must have num_nodes+1 entries";
  PRIVREC_CHECK_EQ(offsets_.front(), 0u);
  PRIVREC_CHECK_EQ(offsets_.back(), targets_.size());
}

CsrGraph CsrGraph::Empty(NodeId num_nodes, bool directed) {
  return CsrGraph(std::vector<uint64_t>(num_nodes + 1, 0), {}, directed);
}

bool CsrGraph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

uint32_t CsrGraph::MaxOutDegree() const {
  uint32_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    best = std::max(best, OutDegree(v));
  }
  return best;
}

uint32_t CsrGraph::CountCommonNeighbors(NodeId u, NodeId v) const {
  auto a = OutNeighbors(u);
  auto b = OutNeighbors(v);
  uint32_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

bool CsrGraph::Equals(const CsrGraph& other) const {
  return directed_ == other.directed_ && offsets_ == other.offsets_ &&
         targets_ == other.targets_;
}

}  // namespace privrec
