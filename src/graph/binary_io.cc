#include "graph/binary_io.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "common/checksum.h"

namespace privrec {
namespace {

constexpr uint32_t kMagic = 0x47565250;  // "PRVG"
constexpr uint32_t kVersion = 1;
constexpr uint32_t kFlagDirected = 1u << 0;

struct Header {
  uint32_t magic;
  uint32_t version;
  uint32_t flags;
  uint32_t num_nodes;
  uint64_t num_arcs;
};

uint64_t Checksum(const std::vector<uint64_t>& offsets,
                  const std::vector<NodeId>& targets) {
  // Shared XOR-fold (common/checksum.h) — the WAL and the budget ledger
  // use the same idiom; the trailer bytes on disk are unchanged.
  return ChecksumCsrArrays(offsets, targets);
}

}  // namespace

Status SaveBinaryGraph(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return Status::IOError("cannot open '" + path + "'");

  std::vector<uint64_t> offsets;
  offsets.reserve(graph.num_nodes() + 1);
  offsets.push_back(0);
  std::vector<NodeId> targets;
  targets.reserve(graph.num_arcs());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    auto nbrs = graph.OutNeighbors(v);
    targets.insert(targets.end(), nbrs.begin(), nbrs.end());
    offsets.push_back(targets.size());
  }

  Header header{kMagic, kVersion, graph.directed() ? kFlagDirected : 0u,
                graph.num_nodes(), graph.num_arcs()};
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(uint64_t)));
  out.write(reinterpret_cast<const char*>(targets.data()),
            static_cast<std::streamsize>(targets.size() * sizeof(NodeId)));
  const uint64_t checksum = Checksum(offsets, targets);
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out.good()) return Status::IOError("write failed on '" + path + "'");
  return Status::OK();
}

Result<CsrGraph> LoadBinaryGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::IOError("cannot open '" + path + "'");
  // Measure the file before trusting any header count: allocation sizes
  // below are derived from the header, and a corrupt num_nodes/num_arcs
  // must fail with a Status, not an attempted multi-gigabyte allocation.
  in.seekg(0, std::ios::end);
  const std::streamoff file_size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (file_size < static_cast<std::streamoff>(sizeof(Header))) {
    return Status::InvalidArgument("'" + path + "' is not a PRVG file");
  }
  Header header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in.good() || header.magic != kMagic) {
    return Status::InvalidArgument("'" + path + "' is not a PRVG file");
  }
  if (header.version != kVersion) {
    return Status::InvalidArgument("unsupported PRVG version " +
                                   std::to_string(header.version));
  }
  const uint64_t num_offsets = static_cast<uint64_t>(header.num_nodes) + 1;
  const uint64_t expected_size = sizeof(Header) +
                                 num_offsets * sizeof(uint64_t) +
                                 header.num_arcs * sizeof(NodeId) +
                                 sizeof(uint64_t);
  if (static_cast<uint64_t>(file_size) != expected_size) {
    return Status::InvalidArgument(
        "'" + path + "' is truncated or its header counts are corrupt (" +
        std::to_string(file_size) + " bytes, header implies " +
        std::to_string(expected_size) + ")");
  }
  std::vector<uint64_t> offsets(static_cast<size_t>(num_offsets));
  std::vector<NodeId> targets(static_cast<size_t>(header.num_arcs));
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(uint64_t)));
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(targets.size() * sizeof(NodeId)));
  uint64_t stored_checksum = 0;
  in.read(reinterpret_cast<char*>(&stored_checksum),
          sizeof(stored_checksum));
  if (!in.good()) {
    return Status::IOError("'" + path + "' is truncated");
  }
  if (Checksum(offsets, targets) != stored_checksum) {
    return Status::IOError("'" + path + "' failed checksum verification");
  }
  // Full structural validation before handing the arrays to CsrGraph: a
  // non-monotone offset or out-of-range target would be UB in every
  // neighbor scan downstream, and the checksum only defends against
  // accidental corruption of a once-valid file, not against a file that
  // was written broken.
  if (offsets.front() != 0 || offsets.back() != targets.size()) {
    return Status::InvalidArgument("'" + path + "' has corrupt offsets");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::InvalidArgument(
          "'" + path + "' has non-monotone offsets at node " +
          std::to_string(i - 1));
    }
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    if (targets[i] >= header.num_nodes) {
      return Status::InvalidArgument(
          "'" + path + "' has out-of-range target " +
          std::to_string(targets[i]) + " at arc " + std::to_string(i));
    }
  }
  return CsrGraph(std::move(offsets), std::move(targets),
                  (header.flags & kFlagDirected) != 0);
}

}  // namespace privrec
