#ifndef PRIVREC_GRAPH_DEGREE_STATS_H_
#define PRIVREC_GRAPH_DEGREE_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace privrec {

/// Summary of a graph's out-degree distribution. The paper's bounds are
/// functions of the degree profile (d_r = α log n), so the experiment
/// harness reports these alongside every run.
struct DegreeStats {
  uint32_t min = 0;
  uint32_t max = 0;
  double mean = 0;
  double median = 0;
  /// degree value d -> number of nodes with out-degree d (dense up to max).
  std::vector<uint64_t> histogram;
  /// Fraction of nodes with out-degree < ln(n), the regime where Theorem 2
  /// forbids simultaneously accurate and private recommendations.
  double fraction_below_log_n = 0;
};

DegreeStats ComputeDegreeStats(const CsrGraph& graph);

}  // namespace privrec

#endif  // PRIVREC_GRAPH_DEGREE_STATS_H_
