#include "graph/graph_builder.h"

#include <algorithm>

namespace privrec {

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  if (u == v) return;
  edges_.emplace_back(u, v);
  if (!directed_) edges_.emplace_back(v, u);
}

CsrGraph GraphBuilder::Build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  NodeId num_nodes = min_num_nodes_;
  for (const auto& [u, v] : edges_) {
    num_nodes = std::max({num_nodes, u + 1, v + 1});
  }

  std::vector<uint64_t> offsets(num_nodes + 1, 0);
  for (const auto& [u, v] : edges_) offsets[u + 1]++;
  for (NodeId i = 0; i < num_nodes; ++i) offsets[i + 1] += offsets[i];

  std::vector<NodeId> targets(edges_.size());
  // edges_ is sorted by (source, target), so a single pass fills CSR in
  // order and neighbor lists come out sorted.
  for (size_t i = 0; i < edges_.size(); ++i) targets[i] = edges_[i].second;

  edges_.clear();
  min_num_nodes_ = 0;
  return CsrGraph(std::move(offsets), std::move(targets), directed_);
}

}  // namespace privrec
