#ifndef PRIVREC_GRAPH_EDGE_DELTA_H_
#define PRIVREC_GRAPH_EDGE_DELTA_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace privrec {

/// One recorded edge mutation of a DynamicGraph (see the edge-delta
/// journal in graph/dynamic_graph.h). For undirected graphs the delta
/// toggles the single logical edge {u, v} (both arcs).
struct EdgeDelta {
  NodeId u = 0;
  NodeId v = 0;
  /// true for AddEdge, false for RemoveEdge.
  bool added = true;
  /// DynamicGraph::version() immediately AFTER this mutation applied; the
  /// journal invariant is that retained deltas carry consecutive versions.
  uint64_t version = 0;
};

/// Whether toggling edge (delta.u, delta.v) can change the utility vector
/// of `target` under any 2-hop utility of the form
///   u_r[i] = sum over common/intermediate neighbors z of w(out-deg(z))
/// (common neighbors, Adamic-Adar, resource allocation), including changes
/// to the candidate set (the paper's convention excludes N(r) and r).
///
/// `graph` must be a snapshot taken at or after the delta (the post-batch
/// state). Evaluating the membership test against a later snapshot is
/// sound as long as EVERY delta between the cached vector's version and
/// the snapshot is tested: if some delta made `target` affected through an
/// adjacency that a later delta removed again, that later delta has
/// `target` as an endpoint and flags it itself.
///
/// Directed graphs: target r is affected iff r == u (its first-hop set or
/// candidate set changed) or r has the arc r -> u (paths through u gain /
/// lose i = v and u's out-degree weight shifts). The head v is NOT
/// affected: its out-neighborhood, out-degree, and candidate set are all
/// untouched (paths v -> u -> * involve the separate arc v -> u).
/// Undirected graphs: both arcs toggle, so the rule applies to both
/// endpoints: affected iff r is an endpoint or adjacent to one.
///
/// This structural test is exact ONLY for the pure two-hop weighted-count
/// family. Utilities whose scores also read candidate-side state (Jaccard's
/// union term uses candidate degrees) have a wider blast radius; they
/// override UtilityFunction::EdgeDeltaAffects, and callers deciding cache
/// repairs must go through that virtual, not this function directly.
bool EdgeDeltaAffectsTarget(const CsrGraph& graph, const EdgeDelta& delta,
                            NodeId target);

/// Enumerates every target EdgeDeltaAffectsTarget accepts, sorted and
/// deduplicated, in O(in-deg(u) + in-deg(v)) using the reverse-adjacency
/// index: `in_graph` must be the in-neighbor (reverse CSR) companion of
/// `graph` (DynamicGraph::StampedSnapshot::in_graph; for undirected graphs
/// it is the graph itself). Same post-batch snapshot caveat as the
/// membership test.
std::vector<NodeId> AffectedTargets(const CsrGraph& graph,
                                    const CsrGraph& in_graph,
                                    const EdgeDelta& delta);

}  // namespace privrec

#endif  // PRIVREC_GRAPH_EDGE_DELTA_H_
