#ifndef PRIVREC_GRAPH_EDGE_DELTA_H_
#define PRIVREC_GRAPH_EDGE_DELTA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.h"

namespace privrec {

/// One recorded edge mutation of a DynamicGraph (see the edge-delta
/// journal in graph/dynamic_graph.h). For undirected graphs the delta
/// toggles the single logical edge {u, v} (both arcs).
struct EdgeDelta {
  NodeId u = 0;
  NodeId v = 0;
  /// true for AddEdge, false for RemoveEdge.
  bool added = true;
  /// DynamicGraph::version() immediately AFTER this mutation applied; the
  /// journal invariant is that retained deltas carry consecutive versions.
  uint64_t version = 0;
};

/// Whether toggling edge (delta.u, delta.v) can change the utility vector
/// of `target` under any 2-hop utility of the form
///   u_r[i] = sum over common/intermediate neighbors z of w(out-deg(z))
/// (common neighbors, Adamic-Adar, resource allocation), including changes
/// to the candidate set (the paper's convention excludes N(r) and r).
///
/// `graph` must be a snapshot taken at or after the delta (the post-batch
/// state). Evaluating the membership test against a later snapshot is
/// sound as long as EVERY delta between the cached vector's version and
/// the snapshot is tested: if some delta made `target` affected through an
/// adjacency that a later delta removed again, that later delta has
/// `target` as an endpoint and flags it itself.
///
/// Directed graphs: target r is affected iff r == u (its first-hop set or
/// candidate set changed) or r has the arc r -> u (paths through u gain /
/// lose i = v and u's out-degree weight shifts). The head v is NOT
/// affected: its out-neighborhood, out-degree, and candidate set are all
/// untouched (paths v -> u -> * involve the separate arc v -> u).
/// Undirected graphs: both arcs toggle, so the rule applies to both
/// endpoints: affected iff r is an endpoint or adjacent to one.
///
/// This structural test is exact ONLY for the pure two-hop weighted-count
/// family. Utilities whose scores also read candidate-side state (Jaccard's
/// union term uses candidate degrees) have a wider blast radius; they
/// override UtilityFunction::EdgeDeltaAffects, and callers deciding cache
/// repairs must go through that virtual, not this function directly.
bool EdgeDeltaAffectsTarget(const CsrGraph& graph, const EdgeDelta& delta,
                            NodeId target);

/// Enumerates every target EdgeDeltaAffectsTarget accepts, sorted and
/// deduplicated, in O(in-deg(u) + in-deg(v)) using the reverse-adjacency
/// index: `in_graph` must be the in-neighbor (reverse CSR) companion of
/// `graph` (DynamicGraph::StampedSnapshot::in_graph; for undirected graphs
/// it is the graph itself). Same post-batch snapshot caveat as the
/// membership test.
std::vector<NodeId> AffectedTargets(const CsrGraph& graph,
                                    const CsrGraph& in_graph,
                                    const EdgeDelta& delta);

/// Affect-filtered window patching (the ISSUE 6 second prong): filters an
/// ordered journal window down to the sub-window that can matter for
/// `target`, appending kept deltas to `out` IN WINDOW ORDER. `graph` is
/// the post-window snapshot.
///
/// Keep rule — a delta survives iff it touches the target's
/// EVER-neighborhood closure C:
///   C = {target} ∪ N_post(target)
///       ∪ {heads of window arcs incident to target}   ("ever-neighbors":
///         nodes that were first-hop neighbors at some point mid-window
///         even if the final snapshot no longer shows the edge)
///       ∪ `extra_nodes` (sorted; a utility-specific widening — Jaccard
///         passes its cached support for the union-term dependence).
/// Directed graphs test the delta's TAIL only (a delta changes only its
/// tail's out-adjacency, and the 2-hop engines read out-state of the
/// target and its ever-first-hops exclusively); undirected graphs test
/// both endpoints.
///
/// Why this filter is exact for the Σ weight(deg(intermediate)) family:
/// every node whose pre-window adjacency or degree the patch engines
/// reconstruct (the target and every node that is a first-hop at ANY
/// point in the window) lies in C, and the filter keeps ALL deltas with
/// an endpoint in C — so the engines see complete net-arc information for
/// every node they query, and the excluded deltas touch only nodes whose
/// state the engines never read. Patching the cached vector with the
/// filtered window therefore equals patching with the full window, delta
/// for delta, bit for bit (tests/incremental_test.cc holds this as a
/// randomized property). In particular a filtered singleton may be
/// dispatched to the single-delta engine even when the raw window was
/// wide.
///
/// Consistency with the affect tests: EdgeDeltaAffectsTarget(delta) == true
/// implies the filter keeps `delta` (a structurally affecting delta has an
/// endpoint in {target} ∪ N_post(target)), so a window that
/// EdgeDeltaWindowAffects flags can never filter to empty under the same
/// closure rule.
void FilterAffectingDeltas(const CsrGraph& graph,
                           std::span<const EdgeDelta> deltas, NodeId target,
                           std::span<const NodeId> extra_nodes,
                           std::vector<EdgeDelta>& out);

/// Structural-only form (no utility-specific widening).
inline void FilterAffectingDeltas(const CsrGraph& graph,
                                  std::span<const EdgeDelta> deltas,
                                  NodeId target, std::vector<EdgeDelta>& out) {
  FilterAffectingDeltas(graph, deltas, target, std::span<const NodeId>(),
                        out);
}

}  // namespace privrec

#endif  // PRIVREC_GRAPH_EDGE_DELTA_H_
