#include "graph/degree_cap.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace privrec {

CsrGraph ProjectDegreeCapped(const CsrGraph& graph, uint32_t cap) {
  PRIVREC_CHECK_GT(cap, 0u);
  const NodeId n = graph.num_nodes();
  std::vector<uint64_t> offsets(n + 1, 0);
  std::vector<NodeId> targets;
  targets.reserve(std::min<uint64_t>(graph.num_arcs(),
                                     static_cast<uint64_t>(n) * cap));
  for (NodeId v = 0; v < n; ++v) {
    const std::span<const NodeId> neighbors = graph.OutNeighbors(v);
    const size_t kept = std::min<size_t>(neighbors.size(), cap);
    targets.insert(targets.end(), neighbors.begin(),
                   neighbors.begin() + kept);
    offsets[v + 1] = targets.size();
  }
  return CsrGraph(std::move(offsets), std::move(targets), graph.directed());
}

Result<CsrGraph> PatchProjectedCsr(const CsrGraph& prev_projected,
                                   const CsrGraph& new_base,
                                   std::span<const EdgeDelta> window,
                                   uint32_t cap) {
  if (cap == 0) return Status::InvalidArgument("degree cap must be positive");
  if (prev_projected.num_nodes() != new_base.num_nodes()) {
    return Status::InvalidArgument(
        "node count changed across the window; re-project from scratch");
  }
  const NodeId n = new_base.num_nodes();
  // Touched = delta endpoints. A directed delta only changes its tail's
  // out-list, but taking both endpoints is a cheap safe superset (the
  // head's re-derived prefix equals its old one).
  std::vector<NodeId> touched;
  touched.reserve(window.size() * 2);
  for (const EdgeDelta& delta : window) {
    touched.push_back(delta.u);
    touched.push_back(delta.v);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (NodeId t : touched) {
    if (t >= n) {
      return Status::InvalidArgument("delta endpoint out of range");
    }
  }

  std::vector<uint64_t> offsets(n + 1, 0);
  std::vector<NodeId> targets;
  targets.reserve(prev_projected.num_arcs() + touched.size());
  size_t next_touched = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (next_touched < touched.size() && touched[next_touched] == v) {
      ++next_touched;
      // Re-derive this node's kept prefix from the patched base: the
      // selection rule reads nothing but the node's own sorted list.
      const std::span<const NodeId> neighbors = new_base.OutNeighbors(v);
      const size_t kept = std::min<size_t>(neighbors.size(), cap);
      targets.insert(targets.end(), neighbors.begin(),
                     neighbors.begin() + kept);
    } else {
      const std::span<const NodeId> prev = prev_projected.OutNeighbors(v);
      targets.insert(targets.end(), prev.begin(), prev.end());
    }
    offsets[v + 1] = targets.size();
  }
  return CsrGraph(std::move(offsets), std::move(targets),
                  new_base.directed());
}

}  // namespace privrec
