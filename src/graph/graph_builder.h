#ifndef PRIVREC_GRAPH_GRAPH_BUILDER_H_
#define PRIVREC_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/csr_graph.h"

namespace privrec {

/// Accumulates edges and finalizes them into a CsrGraph. Self-loops are
/// dropped, duplicate edges are deduplicated, and undirected edges are
/// materialized as two arcs. Node count is max(node id)+1 unless fixed
/// explicitly with SetNumNodes.
class GraphBuilder {
 public:
  /// `directed` selects the interpretation of AddEdge: for undirected
  /// builders, AddEdge(u,v) also inserts (v,u).
  explicit GraphBuilder(bool directed) : directed_(directed) {}

  /// Reserves capacity for `num_edges` pending edges.
  void Reserve(size_t num_edges) { edges_.reserve(num_edges); }

  /// Forces the graph to have at least `num_nodes` nodes (isolated nodes
  /// are legal and occur in real edge lists).
  void SetNumNodes(NodeId num_nodes) { min_num_nodes_ = num_nodes; }

  /// Queues edge u -> v (plus v -> u when undirected). Self-loops ignored.
  void AddEdge(NodeId u, NodeId v);

  /// Number of queued arcs (before dedup).
  size_t pending_arcs() const { return edges_.size(); }

  /// Sorts, dedups, and emits the CSR graph. The builder may be reused
  /// afterwards (it is left empty).
  CsrGraph Build();

 private:
  bool directed_;
  NodeId min_num_nodes_ = 0;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace privrec

#endif  // PRIVREC_GRAPH_GRAPH_BUILDER_H_
