#include "graph/degree_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace privrec {

DegreeStats ComputeDegreeStats(const CsrGraph& graph) {
  DegreeStats stats;
  const NodeId n = graph.num_nodes();
  if (n == 0) return stats;

  std::vector<uint32_t> degrees(n);
  uint64_t total = 0;
  uint32_t min_deg = std::numeric_limits<uint32_t>::max();
  uint32_t max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    degrees[v] = graph.OutDegree(v);
    total += degrees[v];
    min_deg = std::min(min_deg, degrees[v]);
    max_deg = std::max(max_deg, degrees[v]);
  }
  stats.min = min_deg;
  stats.max = max_deg;
  stats.mean = static_cast<double>(total) / static_cast<double>(n);

  stats.histogram.assign(max_deg + 1, 0);
  for (uint32_t d : degrees) stats.histogram[d]++;

  std::nth_element(degrees.begin(), degrees.begin() + n / 2, degrees.end());
  stats.median = degrees[n / 2];

  const double log_n = std::log(static_cast<double>(n));
  uint64_t below = 0;
  for (uint32_t d = 0; d <= max_deg; ++d) {
    if (static_cast<double>(d) < log_n) below += stats.histogram[d];
  }
  stats.fraction_below_log_n =
      static_cast<double>(below) / static_cast<double>(n);
  return stats;
}

}  // namespace privrec
