#include "graph/transforms.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "graph/graph_builder.h"

namespace privrec {
namespace {

Status ValidateEndpoints(const CsrGraph& graph, NodeId u, NodeId v) {
  if (u == v) return Status::InvalidArgument("self-loop");
  if (u >= graph.num_nodes() || v >= graph.num_nodes()) {
    return Status::InvalidArgument("node id out of range");
  }
  return Status::OK();
}

/// Copies all arcs of `graph` into a builder of the same directedness.
GraphBuilder CopyToBuilder(const CsrGraph& graph) {
  GraphBuilder builder(graph.directed());
  builder.SetNumNodes(graph.num_nodes());
  builder.Reserve(graph.num_arcs());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      if (!graph.directed() && v < u) continue;
      builder.AddEdge(u, v);
    }
  }
  return builder;
}

}  // namespace

CsrGraph ToUndirected(const CsrGraph& graph) {
  GraphBuilder builder(/*directed=*/false);
  builder.SetNumNodes(graph.num_nodes());
  builder.Reserve(graph.num_arcs() * 2);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) builder.AddEdge(u, v);
  }
  return builder.Build();
}

CsrGraph Reverse(const CsrGraph& graph) {
  if (!graph.directed()) return graph;
  GraphBuilder builder(/*directed=*/true);
  builder.SetNumNodes(graph.num_nodes());
  builder.Reserve(graph.num_arcs());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) builder.AddEdge(v, u);
  }
  return builder.Build();
}

Result<CsrGraph> WithEdgeAdded(const CsrGraph& graph, NodeId u, NodeId v) {
  PRIVREC_RETURN_NOT_OK(ValidateEndpoints(graph, u, v));
  if (graph.HasEdge(u, v)) {
    return Status::FailedPrecondition("edge already present");
  }
  GraphBuilder builder = CopyToBuilder(graph);
  builder.AddEdge(u, v);
  return builder.Build();
}

Result<CsrGraph> WithEdgeRemoved(const CsrGraph& graph, NodeId u, NodeId v) {
  PRIVREC_RETURN_NOT_OK(ValidateEndpoints(graph, u, v));
  if (!graph.HasEdge(u, v)) {
    return Status::FailedPrecondition("edge not present");
  }
  GraphBuilder builder(graph.directed());
  builder.SetNumNodes(graph.num_nodes());
  builder.Reserve(graph.num_arcs());
  for (NodeId a = 0; a < graph.num_nodes(); ++a) {
    for (NodeId b : graph.OutNeighbors(a)) {
      if (!graph.directed() && b < a) continue;
      bool is_removed = (a == u && b == v);
      if (!graph.directed()) is_removed = is_removed || (a == v && b == u);
      if (is_removed) continue;
      builder.AddEdge(a, b);
    }
  }
  return builder.Build();
}

CsrGraph WithEdits(const CsrGraph& graph,
                   const std::vector<std::pair<NodeId, NodeId>>& additions,
                   const std::vector<std::pair<NodeId, NodeId>>& removals) {
  std::set<std::pair<NodeId, NodeId>> removed;
  for (auto [u, v] : removals) {
    removed.insert({u, v});
    if (!graph.directed()) removed.insert({v, u});
  }
  GraphBuilder builder(graph.directed());
  builder.SetNumNodes(graph.num_nodes());
  builder.Reserve(graph.num_arcs() + additions.size());
  for (NodeId a = 0; a < graph.num_nodes(); ++a) {
    for (NodeId b : graph.OutNeighbors(a)) {
      if (!graph.directed() && b < a) continue;
      if (removed.count({a, b}) > 0) continue;
      builder.AddEdge(a, b);
    }
  }
  for (auto [u, v] : additions) {
    if (u == v) continue;
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

Result<CsrGraph> InducedSubgraph(const CsrGraph& graph,
                                 const std::vector<NodeId>& nodes) {
  std::unordered_map<NodeId, NodeId> relabel;
  relabel.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= graph.num_nodes()) {
      return Status::InvalidArgument("subgraph node id out of range");
    }
    auto [it, inserted] = relabel.emplace(nodes[i], static_cast<NodeId>(i));
    if (!inserted) return Status::InvalidArgument("duplicate subgraph node");
  }
  GraphBuilder builder(graph.directed());
  builder.SetNumNodes(static_cast<NodeId>(nodes.size()));
  for (NodeId old_u : nodes) {
    for (NodeId old_v : graph.OutNeighbors(old_u)) {
      auto it = relabel.find(old_v);
      if (it == relabel.end()) continue;
      if (!graph.directed() && it->second < relabel[old_u]) continue;
      builder.AddEdge(relabel[old_u], it->second);
    }
  }
  return builder.Build();
}

}  // namespace privrec
