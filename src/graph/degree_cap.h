#ifndef PRIVREC_GRAPH_DEGREE_CAP_H_
#define PRIVREC_GRAPH_DEGREE_CAP_H_

#include <cstdint>
#include <span>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "graph/edge_delta.h"

namespace privrec {

/// Degree-capped projection for node-DP serving (the paper's Appendix A
/// setting: a node's entire neighborhood is the protected object, so
/// sensitivity must be bounded by a degree cap D rather than by one edge).
///
/// Selection rule: each node keeps its first min(deg, D) out-neighbors in
/// CSR (sorted ascending id) order — the D smallest neighbor ids. The rule
/// is
///  - deterministic: a pure function of the node's own neighbor set, with
///    no randomness and no cross-node state, so neighboring graphs project
///    consistently (the auditor relies on this: rewiring node x leaves the
///    projected lists of every node not adjacent to x — on either side —
///    bit-identical, and the target's own projected list is unchanged by
///    construction of MakeNodeRewiringPair, so both sides share one
///    candidate set);
///  - stable: toggling one edge (u, v) changes only u's (and, undirected,
///    v's) kept prefix, by at most one insertion/eviction at the cap
///    boundary — which is what makes the O(Δ) patch below possible;
///  - degree-bounding: every projected out-degree is <= D, which is the
///    fact node-sensitivity accounting (UtilityFunction::
///    NodeSensitivityBound) charges against.
///
/// The projection preserves the base graph's directed() flag. For an
/// undirected base the kept arcs can be mildly asymmetric (y may keep a
/// high-degree x while x evicted y): the serving stack only ever reads
/// out-neighbor lists, and keeping the undirected flag keeps every
/// utility's two-orientation (conservative) sensitivity constants. Note
/// num_edges() on such a view is arcs/2 — an accounting convention, not a
/// claim of symmetry.
CsrGraph ProjectDegreeCapped(const CsrGraph& graph, uint32_t cap);

/// O(Δ) companion to PatchCsr for the projected view: given the previous
/// projected CSR, the freshly patched FORWARD base CSR, and the journal
/// window that produced it, re-derives only the delta endpoints' kept
/// prefixes (every other node's projected list is byte-copied from
/// `prev_projected` — the selection rule is per-node-local, so nothing
/// else can change). InvalidArgument when the node counts disagree
/// (AddNode in the window) — callers fall back to ProjectDegreeCapped on
/// the new base.
Result<CsrGraph> PatchProjectedCsr(const CsrGraph& prev_projected,
                                   const CsrGraph& new_base,
                                   std::span<const EdgeDelta> window,
                                   uint32_t cap);

}  // namespace privrec

#endif  // PRIVREC_GRAPH_DEGREE_CAP_H_
