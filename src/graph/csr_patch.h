#ifndef PRIVREC_GRAPH_CSR_PATCH_H_
#define PRIVREC_GRAPH_CSR_PATCH_H_

#include <span>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "graph/edge_delta.h"

namespace privrec {

/// Which arc of each EdgeDelta a CSR stores. A DynamicGraph snapshot is a
/// forward CSR plus, for directed graphs, a reverse CSR of the transposed
/// arcs; both are patched from the same journal window, each through its
/// own orientation.
enum class CsrPatchOrientation {
  /// The delta toggles arc u -> v; when `prev` is undirected the mirror
  /// arc v -> u toggles too (undirected CSRs store each edge as two arcs).
  kForward,
  /// The delta toggles arc v -> u only: the directed reverse (in-neighbor)
  /// CSR. Never combined with an undirected `prev`.
  kReverse,
};

/// Journal-driven CSR patching (the "incrementally-patched CSR snapshots"
/// of README "Incremental maintenance"): applies the ordered edge-delta
/// window `deltas` to the immutable CSR `prev` and returns the CSR of the
/// post-window graph, without rebuilding from adjacency sets.
///
/// One pass over the node range: the offset array is re-based with a
/// running arc shift, untouched nodes' target spans are bulk-memcpy'd, and
/// each touched node's sorted neighbor list is spliced against its (also
/// sorted) net insertions/deletions. Deltas that cancel inside the window
/// (add then remove of the same arc) net to nothing. Cost beyond the
/// unavoidable O(n + m) array copy of an immutable snapshot:
/// O(Δ log Δ + Σ deg(touched)) — no hashing, no global sort, no
/// per-arc dedup, which is what makes a patched publication several times
/// cheaper than GraphBuilder::Build on the same state (see
/// BENCH_mutation_serving.json "snapshot_path").
///
/// Errors (InvalidArgument) when the window is inconsistent with `prev`
/// after cancellation — a net insertion of an arc already present, a net
/// deletion of an arc absent, an endpoint out of range, or a net count
/// outside ±1 (a malformed journal). Callers treat any error as "patch
/// impossible, rebuild from scratch"; DynamicGraph does exactly that.
Result<CsrGraph> PatchCsr(const CsrGraph& prev,
                          std::span<const EdgeDelta> deltas,
                          CsrPatchOrientation orientation);

}  // namespace privrec

#endif  // PRIVREC_GRAPH_CSR_PATCH_H_
