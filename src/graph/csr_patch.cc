#include "graph/csr_patch.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace privrec {
namespace {

/// One net arc mutation after in-window cancellation.
struct ArcOp {
  NodeId src;
  NodeId dst;
  bool insert;  // false = erase
};

/// Expands the delta window into per-arc toggles under `orientation`,
/// cancels inverse pairs, and returns the surviving ops sorted by
/// (src, dst). Fails on a net count outside ±1 (a toggle sequence the
/// journal could never have produced for this orientation).
Status NetArcOps(const CsrGraph& prev, std::span<const EdgeDelta> deltas,
                 CsrPatchOrientation orientation, std::vector<ArcOp>* ops) {
  // Keyed aggregation on packed (src, dst); the window is small (the
  // caller bounds it by the patch threshold), so a sorted flat vector
  // beats hashing.
  std::vector<std::pair<uint64_t, int>> net;
  net.reserve(deltas.size() * 2);
  const NodeId num_nodes = prev.num_nodes();
  for (const EdgeDelta& delta : deltas) {
    if (delta.u >= num_nodes || delta.v >= num_nodes) {
      return Status::InvalidArgument("delta endpoint out of range");
    }
    const int sign = delta.added ? 1 : -1;
    if (orientation == CsrPatchOrientation::kReverse) {
      net.emplace_back((static_cast<uint64_t>(delta.v) << 32) | delta.u, sign);
    } else {
      net.emplace_back((static_cast<uint64_t>(delta.u) << 32) | delta.v, sign);
      if (!prev.directed()) {
        net.emplace_back((static_cast<uint64_t>(delta.v) << 32) | delta.u,
                         sign);
      }
    }
  }
  std::sort(net.begin(), net.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ops->clear();
  ops->reserve(net.size());
  for (size_t i = 0; i < net.size();) {
    const uint64_t key = net[i].first;
    int sum = 0;
    for (; i < net.size() && net[i].first == key; ++i) sum += net[i].second;
    if (sum == 0) continue;
    if (sum < -1 || sum > 1) {
      return Status::InvalidArgument("malformed journal window: |net| > 1");
    }
    ops->push_back(ArcOp{static_cast<NodeId>(key >> 32),
                         static_cast<NodeId>(key & 0xffffffffULL), sum > 0});
  }
  return Status::OK();
}

}  // namespace

Result<CsrGraph> PatchCsr(const CsrGraph& prev,
                          std::span<const EdgeDelta> deltas,
                          CsrPatchOrientation orientation) {
  if (orientation == CsrPatchOrientation::kReverse && !prev.directed()) {
    return Status::InvalidArgument(
        "reverse orientation on an undirected CSR (its reverse is itself)");
  }
  std::vector<ArcOp> ops;
  PRIVREC_RETURN_NOT_OK(NetArcOps(prev, deltas, orientation, &ops));

  // Validate every op against prev BEFORE sizing the output: the splice
  // below trusts that each insert lands in a fresh slot and each erase
  // matches a stored arc, and an inconsistent op at a high node id must
  // not let earlier (valid) inserts write past the net-sized buffer.
  for (const ArcOp& op : ops) {
    const bool present = prev.HasEdge(op.src, op.dst);
    if (op.insert && present) {
      return Status::InvalidArgument("net insertion of a present arc");
    }
    if (!op.insert && !present) {
      return Status::InvalidArgument("net deletion of an absent arc");
    }
  }

  const NodeId num_nodes = prev.num_nodes();
  int64_t arc_shift = 0;
  for (const ArcOp& op : ops) arc_shift += op.insert ? 1 : -1;
  const int64_t new_arc_count =
      static_cast<int64_t>(prev.num_arcs()) + arc_shift;
  if (new_arc_count < 0) {
    return Status::InvalidArgument("window erases more arcs than exist");
  }

  std::vector<uint64_t> offsets(static_cast<size_t>(num_nodes) + 1);
  std::vector<NodeId> targets(static_cast<size_t>(new_arc_count));
  offsets[0] = 0;

  // One sweep over the node range. `ops` is grouped by src ascending, so
  // between consecutive touched nodes we bulk-copy the untouched span and
  // re-base its offsets by the running shift; at a touched node we merge
  // its sorted neighbor list against its sorted op group.
  size_t oi = 0;                // next op
  NodeId copied_through = 0;    // nodes whose spans are already emitted
  uint64_t write_pos = 0;       // next free slot in `targets`
  const auto copy_untouched = [&](NodeId end) {
    // Spans of [copied_through, end) are byte-identical to prev's.
    if (end > copied_through) {
      const std::span<const NodeId> first = prev.OutNeighbors(copied_through);
      const uint64_t span_arcs =
          (prev.OutNeighbors(end - 1).data() + prev.OutDegree(end - 1)) -
          first.data();
      if (span_arcs > 0) {
        std::memcpy(targets.data() + write_pos, first.data(),
                    span_arcs * sizeof(NodeId));
      }
      for (NodeId v = copied_through; v < end; ++v) {
        write_pos += prev.OutDegree(v);
        offsets[v + 1] = write_pos;
      }
      copied_through = end;
    }
  };

  while (oi < ops.size()) {
    const NodeId src = ops[oi].src;
    copy_untouched(src);
    // Merge prev's sorted neighbors of `src` with its op group.
    const std::span<const NodeId> nbrs = prev.OutNeighbors(src);
    size_t ni = 0;
    while (oi < ops.size() && ops[oi].src == src) {
      const ArcOp& op = ops[oi];
      while (ni < nbrs.size() && nbrs[ni] < op.dst) {
        targets[write_pos++] = nbrs[ni++];
      }
      if (op.insert) {
        if (ni < nbrs.size() && nbrs[ni] == op.dst) {
          return Status::InvalidArgument("net insertion of a present arc");
        }
        targets[write_pos++] = op.dst;
      } else {
        if (ni >= nbrs.size() || nbrs[ni] != op.dst) {
          return Status::InvalidArgument("net deletion of an absent arc");
        }
        ++ni;  // drop it
      }
      ++oi;
    }
    while (ni < nbrs.size()) targets[write_pos++] = nbrs[ni++];
    offsets[src + 1] = write_pos;
    copied_through = src + 1;
  }
  copy_untouched(num_nodes);
  // The per-node merges conserve arcs by construction; a mismatch here
  // would mean NetArcOps and the splice disagreed about the window.
  PRIVREC_CHECK_EQ(write_pos, targets.size());
  return CsrGraph(std::move(offsets), std::move(targets), prev.directed());
}

}  // namespace privrec
