#ifndef PRIVREC_GRAPH_TRAVERSAL_H_
#define PRIVREC_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "graph/csr_graph.h"

namespace privrec {

/// Distance value for nodes unreachable from the BFS source.
inline constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();

/// BFS hop distances from `source` following out-edges.
std::vector<uint32_t> BfsDistances(const CsrGraph& graph, NodeId source);

/// Sparse (node, count) accumulator reused across traversals; equivalent to
/// a dense array + touched-list, so repeated per-target traversals are
/// O(work) instead of O(n). A counter can be Resize()d between uses, so one
/// instance amortizes its O(n) backing array across many targets — and even
/// across graphs of different sizes (UtilityWorkspace relies on this).
class SparseCounter {
 public:
  /// Zero-capacity counter; call Resize() before use.
  SparseCounter() = default;

  explicit SparseCounter(NodeId num_nodes)
      : values_(num_nodes, 0.0) {}

  void Add(NodeId v, double amount) {
    if (values_[v] == 0.0 && amount != 0.0) touched_.push_back(v);
    values_[v] += amount;
  }

  double Get(NodeId v) const { return values_[v]; }

  /// Number of node slots currently addressable.
  NodeId num_nodes() const { return static_cast<NodeId>(values_.size()); }

  /// Nodes with nonzero accumulated value, in touch order.
  const std::vector<NodeId>& touched() const { return touched_; }

  /// Pre-sizes the touched list for an expected number of nonzero slots.
  void Reserve(size_t expected_touched) { touched_.reserve(expected_touched); }

  /// Re-targets the counter at a graph with `num_nodes` nodes. Requires the
  /// counter to be cleared (no stale nonzero slot may survive a shrink).
  /// Growing reuses the backing allocation when capacity suffices, and
  /// shrinking never releases it, so ping-ponging between graph sizes does
  /// not reallocate in the common case.
  void Resize(NodeId num_nodes) {
    PRIVREC_CHECK(touched_.empty())
        << "SparseCounter::Resize requires a cleared counter";
    values_.resize(num_nodes, 0.0);
  }

  void Clear() {
    for (NodeId v : touched_) values_[v] = 0.0;
    touched_.clear();
  }

 private:
  std::vector<double> values_;
  std::vector<NodeId> touched_;
};

/// Number of distinct nodes within exactly two hops of `source` (the
/// candidate set of the common-neighbors recommender).
uint64_t CountTwoHopNodes(const CsrGraph& graph, NodeId source);

/// Weakly connected components; returns component id per node and writes
/// the component count to *num_components if non-null.
std::vector<NodeId> ConnectedComponents(const CsrGraph& graph,
                                        NodeId* num_components);

}  // namespace privrec

#endif  // PRIVREC_GRAPH_TRAVERSAL_H_
