#include "graph/metrics.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/logging.h"
#include "common/statistics.h"

namespace privrec {

uint64_t CountTriangles(const CsrGraph& graph) {
  PRIVREC_CHECK(!graph.directed())
      << "CountTriangles expects an undirected graph";
  // Forward counting: for each edge (u,v) with u < v, intersect the
  // higher-id tails of both neighbor lists; each triangle found once at
  // its smallest vertex.
  uint64_t triangles = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto u_nbrs = graph.OutNeighbors(u);
    for (NodeId v : u_nbrs) {
      if (v <= u) continue;
      auto v_nbrs = graph.OutNeighbors(v);
      // Count w > v adjacent to both u and v.
      auto ui = std::upper_bound(u_nbrs.begin(), u_nbrs.end(), v);
      auto vi = std::upper_bound(v_nbrs.begin(), v_nbrs.end(), v);
      while (ui != u_nbrs.end() && vi != v_nbrs.end()) {
        if (*ui < *vi) {
          ++ui;
        } else if (*ui > *vi) {
          ++vi;
        } else {
          ++triangles;
          ++ui;
          ++vi;
        }
      }
    }
  }
  return triangles;
}

namespace {

uint64_t CountWedges(const CsrGraph& graph) {
  uint64_t wedges = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const uint64_t d = graph.OutDegree(v);
    wedges += d * (d - 1) / 2;
  }
  return wedges;
}

}  // namespace

double GlobalClusteringCoefficient(const CsrGraph& graph) {
  const uint64_t wedges = CountWedges(graph);
  if (wedges == 0) return 0;
  return 3.0 * static_cast<double>(CountTriangles(graph)) /
         static_cast<double>(wedges);
}

double AverageLocalClustering(const CsrGraph& graph) {
  PRIVREC_CHECK(!graph.directed());
  if (graph.num_nodes() == 0) return 0;
  double total = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const uint32_t d = graph.OutDegree(v);
    if (d < 2) continue;
    uint64_t closed = 0;
    auto nbrs = graph.OutNeighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (graph.HasEdge(nbrs[i], nbrs[j])) ++closed;
      }
    }
    total += 2.0 * static_cast<double>(closed) /
             (static_cast<double>(d) * (d - 1));
  }
  return total / static_cast<double>(graph.num_nodes());
}

double DegreeAssortativity(const CsrGraph& graph) {
  std::vector<double> left, right;
  left.reserve(graph.num_arcs());
  right.reserve(graph.num_arcs());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      // Each undirected edge contributes both orientations, which is the
      // standard symmetric treatment.
      left.push_back(graph.OutDegree(u));
      right.push_back(graph.OutDegree(v));
    }
  }
  return PearsonCorrelation(left, right);
}

std::vector<uint32_t> CoreNumbers(const CsrGraph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = graph.OutDegree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort nodes by degree (Batagelj–Zaveršnik peeling).
  std::vector<uint32_t> bucket_start(max_degree + 2, 0);
  for (NodeId v = 0; v < n; ++v) bucket_start[degree[v] + 1]++;
  for (uint32_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<NodeId> order(n);
  std::vector<uint32_t> position(n);
  {
    std::vector<uint32_t> cursor(bucket_start.begin(),
                                 bucket_start.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]]++;
      order[position[v]] = v;
    }
  }
  std::vector<uint32_t> core(degree);
  for (NodeId i = 0; i < n; ++i) {
    NodeId v = order[i];
    core[v] = degree[v];
    for (NodeId u : graph.OutNeighbors(v)) {
      if (degree[u] <= degree[v]) continue;
      // Move u one bucket down: swap it with the first node of its bucket.
      const uint32_t du = degree[u];
      const uint32_t pu = position[u];
      const uint32_t pw = bucket_start[du];
      const NodeId w = order[pw];
      if (u != w) {
        std::swap(order[pu], order[pw]);
        position[u] = pw;
        position[w] = pu;
      }
      ++bucket_start[du];
      --degree[u];
    }
  }
  return core;
}

}  // namespace privrec
