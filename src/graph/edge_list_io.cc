#include "graph/edge_list_io.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <unordered_map>

#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace privrec {

Result<CsrGraph> LoadEdgeList(const std::string& path,
                              const EdgeListOptions& options) {
  std::ifstream in(path);
  if (!in.good()) return Status::IOError("cannot open '" + path + "'");

  GraphBuilder builder(options.directed);
  std::unordered_map<int64_t, NodeId> relabel_map;
  auto map_id = [&](int64_t raw) -> NodeId {
    if (!options.relabel) return static_cast<NodeId>(raw);
    auto [it, inserted] =
        relabel_map.emplace(raw, static_cast<NodeId>(relabel_map.size()));
    return it->second;
  };

  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
    auto tokens = SplitWhitespace(trimmed);
    if (tokens.size() < 2) {
      return Status::InvalidArgument("malformed edge at " + path + ":" +
                                     std::to_string(line_number));
    }
    auto src = ParseInt64(tokens[0]);
    auto dst = ParseInt64(tokens[1]);
    if (!src.ok() || !dst.ok()) {
      return Status::InvalidArgument("non-integer node id at " + path + ":" +
                                     std::to_string(line_number));
    }
    if (*src < 0 || *dst < 0) {
      return Status::InvalidArgument("negative node id at " + path + ":" +
                                     std::to_string(line_number));
    }
    // Range-check before the NodeId cast: an id past max_node_id (or the
    // NodeId range) would silently truncate and/or drive a huge builder
    // allocation.
    const uint64_t cap = std::min<uint64_t>(
        options.max_node_id, std::numeric_limits<NodeId>::max());
    if (!options.relabel && (static_cast<uint64_t>(*src) > cap ||
                             static_cast<uint64_t>(*dst) > cap)) {
      return Status::InvalidArgument("node id out of range at " + path + ":" +
                                     std::to_string(line_number));
    }
    // Sequence the two map_id calls: first-seen relabeling must follow
    // source-then-destination order regardless of argument evaluation order.
    NodeId from = map_id(*src);
    NodeId to = map_id(*dst);
    // Under relabeling the cap bounds the dense id space instead: checked
    // after mapping, so it trips exactly when a fresh id exceeds it.
    if (options.relabel &&
        (static_cast<uint64_t>(from) > cap || static_cast<uint64_t>(to) > cap)) {
      return Status::InvalidArgument("too many distinct node ids in '" + path +
                                     "' (limit " + std::to_string(cap + 1) +
                                     ")");
    }
    builder.AddEdge(from, to);
  }
  if (in.bad()) return Status::IOError("read error on '" + path + "'");
  return builder.Build();
}

Status SaveEdgeList(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) return Status::IOError("cannot open '" + path + "'");
  out << "# privrec edge list: " << graph.num_nodes() << " nodes, "
      << graph.num_edges() << (graph.directed() ? " directed" : " undirected")
      << " edges\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      if (!graph.directed() && v < u) continue;  // write undirected edge once
      out << u << '\t' << v << '\n';
    }
  }
  out.flush();
  if (!out.good()) return Status::IOError("write error on '" + path + "'");
  return Status::OK();
}

}  // namespace privrec
