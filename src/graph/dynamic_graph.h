#ifndef PRIVREC_GRAPH_DYNAMIC_GRAPH_H_
#define PRIVREC_GRAPH_DYNAMIC_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "graph/edge_delta.h"
#include "serve/fault_injection.h"

namespace privrec {

class WriteAheadLog;  // persist/wal.h

/// Mutable adjacency-set graph for the dynamic-network setting the paper
/// flags as future work (Section 8: "Social networks clearly change over
/// time (and rather rapidly)"). Supports O(1) expected edge insertion,
/// deletion, and membership, and snapshots to the immutable CsrGraph all
/// analysis code consumes.
///
/// The privacy story for dynamic graphs is subtle (each re-released
/// recommendation spends budget — see PrivacyAccountant); this class only
/// supplies the substrate.
///
/// Thread safety (RCU-style snapshot publication):
///  - All methods are safe to call concurrently from any thread.
///  - Mutations (AddNode, AddEdge, RemoveEdge) and point reads
///    (HasEdge, OutDegree) serialize on a small internal writer mutex;
///    version() is an atomic stamp bumped inside that critical section.
///  - SharedSnapshot()/VersionedSnapshot() never block behind a CSR
///    rebuild that is already current: the published pointer is handed
///    off under a tiny publication mutex whose critical section is one
///    shared_ptr copy. (A hand-off mutex instead of
///    std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic releases its
///    read-side spinlock with a relaxed RMW, which ThreadSanitizer —
///    correctly, per the memory model — refuses to treat as a
///    happens-before edge. The mutex is just as cheap uncontended and
///    sanitizer-provable.) Callers that need a truly contention-free
///    steady state pin the snapshot locally and revalidate against the
///    atomic version() stamp — one relaxed-cost atomic load per request,
///    no lock, no shared refcount traffic; that is what the sharded
///    RecommendationService does per shard.
///  - After a mutation, the first reader to ask materializes the next
///    snapshot under the writer mutex (which also excludes concurrent
///    mutators) and publishes the new version; the publication-mutex
///    re-check collapses concurrent materializers into one. Whenever the
///    edge-delta journal covers the window since the previous published
///    snapshot, materialization is an O(Δ) splice of that window into the
///    previous immutable CSR (graph/csr_patch.h) rather than an O(n+m)
///    rebuild from the adjacency sets; AddNode, journal compaction, a
///    window wider than SetSnapshotPatchThreshold, or a splice
///    inconsistency fall back to the full rebuild. snapshot_patches() /
///    snapshot_builds() count the two paths.
///  - A published snapshot is immutable and stamped with the graph
///    version (and edge count) it was built at; the stamp and the CSR are
///    one allocation, so a reader can never observe a "torn" pair.
///  - Snapshots taken before a mutation remain valid and unchanged
///    afterwards; hold them as long as you like.
///
/// Incremental maintenance (see README "Incremental maintenance"):
///  - Every AddEdge/RemoveEdge is appended to an edge-delta journal — a
///    compacted ring buffer of EdgeDelta records keyed by the version
///    stamp each mutation produced. EdgeDeltasBetween(v0, v1) replays the
///    ordered toggles between two stamps, or reports OutOfRange when the
///    window has been compacted away (capacity overflow) or interrupted by
///    a non-edge version bump (AddNode clears the journal: a new node
///    changes every target's candidate count, which no edge delta
///    describes). Callers — the delta-patched serving cache — fall back to
///    full recomputation on that error.
///  - Directed graphs additionally maintain an in-neighbor index
///    (adjacency transposed) incrementally, O(1) per mutation, and publish
///    it as a reverse CSR alongside each snapshot, so
///    AffectedTargets(delta) is O(in-deg(u) + in-deg(v)) instead of a full
///    scan. For undirected graphs the reverse CSR is the forward CSR
///    (zero extra cost); directed snapshot rebuilds pay a second O(n+m)
///    build for the transpose — once per mutation per first reader, the
///    price of O(in-deg) affected-set enumeration. (The serving hot path
///    itself only needs the O(log deg) membership test
///    EdgeDeltaAffectsTarget, which runs on the forward CSR.)
///  - Journal and index are guarded by the writer mutex like the
///    adjacency itself; all new accessors are safe from any thread.
class DynamicGraph {
 public:
  /// An immutable CSR snapshot together with the graph version it
  /// materializes. `graph` and `in_graph` alias into the same control
  /// block, so holding any member keeps all alive.
  struct StampedSnapshot {
    std::shared_ptr<const CsrGraph> graph;
    /// In-neighbor (reverse CSR) companion: in_graph->OutNeighbors(v) are
    /// the nodes with an arc into v. For undirected graphs this aliases
    /// `graph` itself (in == out); for directed graphs it is the
    /// incrementally-maintained transpose, materialized at the same
    /// version.
    std::shared_ptr<const CsrGraph> in_graph;
    /// Degree-capped projected companion (graph/degree_cap.h), published
    /// at the same stamp when SetDegreeCap(D > 0) is active; null
    /// otherwise. Node-DP serving computes utilities and candidate sets
    /// against this view so one user's rewired neighborhood moves at most
    /// D arcs per list.
    std::shared_ptr<const CsrGraph> projected;
    /// version() at build time.
    uint64_t version = 0;
    /// num_edges() at build time (== graph->num_edges(); the redundancy
    /// lets tests assert the publication was not torn).
    uint64_t num_edges = 0;
  };

  /// Default bound on retained journal entries. Compaction past a pinned
  /// version only costs the reader a full recompute, so the buffer can be
  /// generous without correctness risk.
  static constexpr size_t kDefaultJournalCapacity = 1024;

  /// Default crossover threshold for patched snapshot publication: windows
  /// of up to this many journal deltas are spliced into the previous CSR
  /// (PatchCsr); wider windows fall back to a from-scratch build. Patching
  /// is memcpy-bound while rebuilding re-hashes every adjacency set, so
  /// the crossover sits far above typical per-snapshot deltas; the journal
  /// capacity is the practical ceiling anyway.
  static constexpr size_t kDefaultSnapshotPatchThreshold = 512;

  /// Empty graph on num_nodes nodes.
  DynamicGraph(NodeId num_nodes, bool directed);

  /// Imports an existing snapshot.
  explicit DynamicGraph(const CsrGraph& graph);

  NodeId num_nodes() const {
    return num_nodes_.load(std::memory_order_acquire);
  }
  uint64_t num_edges() const {
    return num_edges_.load(std::memory_order_acquire);
  }
  bool directed() const { return directed_; }

  /// Appends an isolated node; returns its id.
  NodeId AddNode();

  /// Adds edge u->v (both directions when undirected). InvalidArgument on
  /// self-loops/out-of-range; FailedPrecondition if already present.
  Status AddEdge(NodeId u, NodeId v);

  /// Removes edge u->v. FailedPrecondition if absent.
  Status RemoveEdge(NodeId u, NodeId v);

  bool HasEdge(NodeId u, NodeId v) const;

  uint32_t OutDegree(NodeId v) const;

  /// Number of arcs INTO v, maintained incrementally (== OutDegree for
  /// undirected graphs).
  uint32_t InDegree(NodeId v) const;

  /// Mutation counter; bumped by AddNode/AddEdge/RemoveEdge (only when the
  /// mutation succeeds, while the writer mutex is held).
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// The ordered edge toggles that move the graph from `from_version` to
  /// `to_version` (exclusive / inclusive). Empty when the stamps are
  /// equal. Errors:
  ///  - InvalidArgument: from > to, or to is a stamp the graph has never
  ///    reached.
  ///  - OutOfRange: the journal no longer covers the window — either ring
  ///    compaction discarded it or an AddNode (a non-edge mutation no
  ///    delta can describe) cleared it. Callers must treat this as "replay
  ///    impossible, recompute from the snapshot".
  Result<std::vector<EdgeDelta>> EdgeDeltasBetween(uint64_t from_version,
                                                   uint64_t to_version) const;

  /// Caps the number of retained journal entries (older deltas are
  /// compacted away; 0 disables journaling entirely, forcing every
  /// EdgeDeltasBetween onto the OutOfRange fallback). Takes effect
  /// immediately.
  void SetJournalCapacity(size_t capacity);

  /// Versions currently replayable: EdgeDeltasBetween(v0, version()) is OK
  /// exactly for v0 >= journal_floor_version(). Exposed for tests,
  /// monitoring, and the serving cache's journal-aware eviction (which
  /// reads it on the serve path — hence lock-free); racing mutators can
  /// compact the floor forward at any time, so treat the value as a
  /// monotone lower bound.
  uint64_t journal_floor_version() const {
    return journal_floor_version_.load(std::memory_order_acquire);
  }

  /// The cached immutable CSR snapshot of the current state. On an
  /// unmutated graph this is one shared_ptr copy under the publication
  /// mutex; the CSR is rebuilt (under the writer mutex) by the first
  /// caller after a mutation. See the class comment for the publication
  /// protocol and the version()-revalidation pattern for lock-free
  /// steady-state callers.
  std::shared_ptr<const CsrGraph> SharedSnapshot() const {
    return VersionedSnapshot().graph;
  }

  /// SharedSnapshot plus the version stamp it was built at. The stamp is
  /// exactly the version the CSR materializes: callers that need
  /// "utilities and sensitivity from the same graph state" key off it.
  StampedSnapshot VersionedSnapshot() const;

  /// Materializes the current state as an owned CSR copy. Prefer
  /// SharedSnapshot(): this exists for callers that need an independent
  /// mutable-lifetime copy and costs a full graph copy per call.
  CsrGraph Snapshot() const { return *SharedSnapshot(); }

  /// Number of times a CSR snapshot was materialized from scratch
  /// (GraphBuilder over the adjacency sets). Observable so tests and
  /// monitoring can assert that serving does not rebuild snapshots on
  /// unmutated graphs — and, since journal-driven patching landed, that
  /// the mutation path does not rebuild them either (it patches; see
  /// snapshot_patches()). Every snapshot materialization lands in exactly
  /// one of snapshot_builds() or snapshot_patches().
  uint64_t snapshot_builds() const {
    return snapshot_builds_.load(std::memory_order_acquire);
  }

  /// Number of times a snapshot was produced by splicing the journal
  /// window into the previous published CSR (graph/csr_patch.h) instead
  /// of rebuilding — the O(Δ) mutation-path publication.
  uint64_t snapshot_patches() const {
    return snapshot_patches_.load(std::memory_order_acquire);
  }

  /// Enables (cap > 0) or disables (cap == 0) the degree-capped projected
  /// companion: subsequent snapshots carry StampedSnapshot::projected ==
  /// ProjectDegreeCapped(graph, cap), maintained O(Δ) on the mutation path
  /// alongside PatchCsr (PatchProjectedCsr re-derives only the delta
  /// endpoints' kept prefixes). Changing the cap invalidates the published
  /// snapshot, so the next reader materializes a fresh pair; previously
  /// pinned snapshots keep their old (or absent) projection.
  void SetDegreeCap(uint32_t cap);

  /// The active projection cap (0 = no projected companion).
  uint32_t degree_cap() const {
    return degree_cap_.load(std::memory_order_acquire);
  }

  /// Number of from-scratch ProjectDegreeCapped materializations /
  /// O(Δ) PatchProjectedCsr splices, mirroring snapshot_builds() /
  /// snapshot_patches() for the projected companion.
  uint64_t projection_builds() const {
    return projection_builds_.load(std::memory_order_acquire);
  }
  uint64_t projection_patches() const {
    return projection_patches_.load(std::memory_order_acquire);
  }

  /// Caps the journal-window size eligible for patched publication; wider
  /// windows (and windows the journal cannot replay) rebuild from
  /// scratch. 0 disables patching entirely — every mutation costs the
  /// next reader a full rebuild, the pre-patching baseline (benchmarks
  /// and differential tests use this). Takes effect on the next snapshot.
  void SetSnapshotPatchThreshold(size_t max_deltas);

  /// Installs (or, with nullptr, removes) the deterministic fault injector
  /// whose graph-layer points this class evaluates
  /// (serve/fault_injection.h): kJournalCompaction after each journal
  /// append, kSnapshotPatchFail / kProjectionPatchFail inside
  /// TryPatchLocked. The injector is not owned and must outlive its
  /// installation; when none is installed every hook site costs one
  /// relaxed atomic pointer load. RecommendationService installs its
  /// ServiceOptions::fault_injector here automatically.
  void SetFaultInjector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }

  /// Attaches (nullptr detaches) a write-ahead log. Once attached, every
  /// mutation is WAL-FIRST: validated, presence-checked, appended to the
  /// WAL, and only then applied — so the durable log never lags the
  /// applied state, and a failed append (torn write, crashed log) rejects
  /// the mutation outright. The log is not owned and must outlive the
  /// attachment; with none attached the mutation hot path is unchanged.
  /// Call only while the graph's state matches the log's tail (a fresh
  /// graph with a fresh log, or a recovered graph with the log it was
  /// replayed from).
  void AttachWal(WriteAheadLog* wal);

  /// A mutually consistent (snapshot, WAL position) pair for
  /// checkpointing: the snapshot materializes exactly the state after the
  /// WAL record `wal_seq`, taken atomically under the writer mutex so no
  /// mutation can slip between the two. wal_seq is 0 when no WAL is
  /// attached.
  struct CheckpointView {
    StampedSnapshot snapshot;
    uint64_t wal_seq = 0;
  };
  CheckpointView AtomicCheckpointView() const;

 private:
  /// The unit the atomic pointer publishes: stamp + CSR (+ reverse CSR for
  /// directed graphs) in one immutable allocation.
  struct VersionedCsr {
    uint64_t version;
    uint64_t num_edges;
    CsrGraph graph;
    /// Transposed arcs; engaged iff the graph is directed (undirected
    /// snapshots alias `graph` as their own reverse).
    std::optional<CsrGraph> in_graph;
    /// Degree-capped projection of `graph`; engaged iff degree_cap > 0.
    std::optional<CsrGraph> projected;
    /// The cap `projected` was derived at (0 = no projection). Recorded so
    /// TryPatchLocked refuses to splice across a cap change.
    uint32_t degree_cap = 0;
  };

  Status ValidateEndpoints(NodeId u, NodeId v) const;

  /// Appends one toggle to the journal and compacts to capacity. Caller
  /// must hold writer_mu_ and have already bumped version_.
  void JournalAppendLocked(NodeId u, NodeId v, bool added);

  /// Core of EdgeDeltasBetween — the one place that knows the journal's
  /// index math (entry i carries version journal_floor_version_ + i + 1).
  /// Caller must hold writer_mu_.
  Result<std::vector<EdgeDelta>> EdgeDeltasBetweenLocked(
      uint64_t from_version, uint64_t to_version) const;

  /// Builds the CSR for the current adjacency state. Caller must hold
  /// writer_mu_.
  std::shared_ptr<const VersionedCsr> BuildLocked() const;

  /// Attempts the O(Δ) publication path: splice the journal window
  /// (prev->version, version()] into `prev` via PatchCsr (forward CSR
  /// plus, for directed graphs, the reverse CSR from the same window).
  /// Returns null — caller falls back to BuildLocked() — when `prev` is
  /// null, patching is disabled, the node count moved (AddNode), the
  /// journal was compacted past prev->version, the window exceeds the
  /// patch threshold, or the splice reports an inconsistency. Caller must
  /// hold writer_mu_.
  std::shared_ptr<const VersionedCsr> TryPatchLocked(
      const std::shared_ptr<const VersionedCsr>& prev) const;

  /// The snapshot slow path factored out so AtomicCheckpointView can run
  /// it while already holding writer_mu_: re-checks the published
  /// pointer, patches or rebuilds, publishes, and returns the stamped
  /// view. Caller must hold writer_mu_.
  StampedSnapshot SnapshotWriterLocked() const;

  bool directed_;
  std::atomic<NodeId> num_nodes_{0};
  std::atomic<uint64_t> num_edges_{0};
  std::atomic<uint64_t> version_{0};

  /// Serializes mutators with each other and with snapshot rebuilds.
  /// Never taken by snapshot readers whose version is already published.
  mutable std::mutex writer_mu_;
  std::vector<std::unordered_set<NodeId>> adjacency_;
  /// In-neighbor sets, maintained under writer_mu_; populated only for
  /// directed graphs (undirected in-neighbors are adjacency_ itself).
  std::vector<std::unordered_set<NodeId>> in_adjacency_;

  /// Edge-delta journal (guarded by writer_mu_): consecutive-version
  /// toggles with journal_floor_version_ the stamp just before the oldest
  /// retained entry. Invariant: journal_floor_version_ + journal_.size()
  /// == version_. The floor is atomic so monitoring and the serving
  /// cache's eviction heuristic can read it without the writer mutex;
  /// writes still happen only under writer_mu_.
  std::deque<EdgeDelta> journal_;
  /// Write-ahead log (guarded by writer_mu_ like the adjacency): null
  /// until AttachWal; wal_last_seq_ is the sequence of the last record
  /// this graph appended — the WAL position AtomicCheckpointView pairs
  /// with its snapshot.
  WriteAheadLog* wal_ = nullptr;
  uint64_t wal_last_seq_ = 0;
  std::atomic<uint64_t> journal_floor_version_{0};
  size_t journal_capacity_ = kDefaultJournalCapacity;
  size_t snapshot_patch_threshold_ = kDefaultSnapshotPatchThreshold;
  /// Non-owning fault injector; null = no plan, hook sites cost one
  /// relaxed load (see SetFaultInjector).
  std::atomic<FaultInjector*> fault_injector_{nullptr};
  /// Active projection cap; atomic so degree_cap() is lock-free, written
  /// only under writer_mu_.
  std::atomic<uint32_t> degree_cap_{0};

  /// Publication point: guards only the pointer hand-off (one shared_ptr
  /// copy). Lock order: writer_mu_ before snapshot_mu_; mutators never
  /// take snapshot_mu_.
  mutable std::mutex snapshot_mu_;
  mutable std::shared_ptr<const VersionedCsr> snapshot_;  // null until asked
  mutable std::atomic<uint64_t> snapshot_builds_{0};
  mutable std::atomic<uint64_t> snapshot_patches_{0};
  mutable std::atomic<uint64_t> projection_builds_{0};
  mutable std::atomic<uint64_t> projection_patches_{0};
};

}  // namespace privrec

#endif  // PRIVREC_GRAPH_DYNAMIC_GRAPH_H_
