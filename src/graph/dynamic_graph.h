#ifndef PRIVREC_GRAPH_DYNAMIC_GRAPH_H_
#define PRIVREC_GRAPH_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace privrec {

/// Mutable adjacency-set graph for the dynamic-network setting the paper
/// flags as future work (Section 8: "Social networks clearly change over
/// time (and rather rapidly)"). Supports O(1) expected edge insertion,
/// deletion, and membership, and snapshots to the immutable CsrGraph all
/// analysis code consumes.
///
/// The privacy story for dynamic graphs is subtle (each re-released
/// recommendation spends budget — see PrivacyAccountant); this class only
/// supplies the substrate.
class DynamicGraph {
 public:
  /// Empty graph on num_nodes nodes.
  DynamicGraph(NodeId num_nodes, bool directed);

  /// Imports an existing snapshot.
  explicit DynamicGraph(const CsrGraph& graph);

  NodeId num_nodes() const { return static_cast<NodeId>(adjacency_.size()); }
  uint64_t num_edges() const { return num_edges_; }
  bool directed() const { return directed_; }

  /// Appends an isolated node; returns its id.
  NodeId AddNode();

  /// Adds edge u->v (both directions when undirected). InvalidArgument on
  /// self-loops/out-of-range; FailedPrecondition if already present.
  Status AddEdge(NodeId u, NodeId v);

  /// Removes edge u->v. FailedPrecondition if absent.
  Status RemoveEdge(NodeId u, NodeId v);

  bool HasEdge(NodeId u, NodeId v) const;

  uint32_t OutDegree(NodeId v) const {
    return static_cast<uint32_t>(adjacency_[v].size());
  }

  /// Materializes the current state as an immutable CSR snapshot.
  CsrGraph Snapshot() const;

 private:
  Status ValidateEndpoints(NodeId u, NodeId v) const;

  bool directed_;
  uint64_t num_edges_ = 0;
  std::vector<std::unordered_set<NodeId>> adjacency_;
};

}  // namespace privrec

#endif  // PRIVREC_GRAPH_DYNAMIC_GRAPH_H_
