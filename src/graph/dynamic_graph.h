#ifndef PRIVREC_GRAPH_DYNAMIC_GRAPH_H_
#define PRIVREC_GRAPH_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace privrec {

/// Mutable adjacency-set graph for the dynamic-network setting the paper
/// flags as future work (Section 8: "Social networks clearly change over
/// time (and rather rapidly)"). Supports O(1) expected edge insertion,
/// deletion, and membership, and snapshots to the immutable CsrGraph all
/// analysis code consumes.
///
/// The privacy story for dynamic graphs is subtle (each re-released
/// recommendation spends budget — see PrivacyAccountant); this class only
/// supplies the substrate.
///
/// Snapshot versioning contract: every successful mutation (AddNode,
/// AddEdge, RemoveEdge) bumps version(). SharedSnapshot() materializes the
/// CSR form at most once per version — repeated calls against an unmutated
/// graph return the *same* immutable instance, which callers may hold and
/// share across threads for as long as they like; a snapshot taken before
/// a mutation remains valid and unchanged afterwards. Same external-
/// synchronization contract as the mutations themselves: calls into one
/// DynamicGraph must be serialized, but the returned CsrGraph is
/// immutable and freely shareable.
class DynamicGraph {
 public:
  /// Empty graph on num_nodes nodes.
  DynamicGraph(NodeId num_nodes, bool directed);

  /// Imports an existing snapshot.
  explicit DynamicGraph(const CsrGraph& graph);

  NodeId num_nodes() const { return static_cast<NodeId>(adjacency_.size()); }
  uint64_t num_edges() const { return num_edges_; }
  bool directed() const { return directed_; }

  /// Appends an isolated node; returns its id.
  NodeId AddNode();

  /// Adds edge u->v (both directions when undirected). InvalidArgument on
  /// self-loops/out-of-range; FailedPrecondition if already present.
  Status AddEdge(NodeId u, NodeId v);

  /// Removes edge u->v. FailedPrecondition if absent.
  Status RemoveEdge(NodeId u, NodeId v);

  bool HasEdge(NodeId u, NodeId v) const;

  uint32_t OutDegree(NodeId v) const {
    return static_cast<uint32_t>(adjacency_[v].size());
  }

  /// Mutation counter; bumped by AddNode/AddEdge/RemoveEdge (only when the
  /// mutation succeeds).
  uint64_t version() const { return version_; }

  /// The cached immutable CSR snapshot of the current state. Rebuilt
  /// lazily after a mutation; O(1) on an unmutated graph. See the class
  /// comment for the versioning contract.
  std::shared_ptr<const CsrGraph> SharedSnapshot() const;

  /// Materializes the current state as an owned CSR copy. Prefer
  /// SharedSnapshot(): this exists for callers that need an independent
  /// mutable-lifetime copy and costs a full graph copy per call.
  CsrGraph Snapshot() const { return *SharedSnapshot(); }

  /// Number of times a CSR snapshot has actually been materialized (cache
  /// rebuilds). Observable so tests and monitoring can assert that serving
  /// does not rebuild snapshots on unmutated graphs.
  uint64_t snapshot_builds() const { return snapshot_builds_; }

 private:
  Status ValidateEndpoints(NodeId u, NodeId v) const;

  bool directed_;
  uint64_t num_edges_ = 0;
  uint64_t version_ = 0;
  std::vector<std::unordered_set<NodeId>> adjacency_;

  // Lazily built snapshot cache; snapshot_version_ records the graph
  // version the cache corresponds to (valid only when snapshot_ != null).
  mutable std::shared_ptr<const CsrGraph> snapshot_;
  mutable uint64_t snapshot_version_ = 0;
  mutable uint64_t snapshot_builds_ = 0;
};

}  // namespace privrec

#endif  // PRIVREC_GRAPH_DYNAMIC_GRAPH_H_
