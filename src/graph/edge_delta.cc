#include "graph/edge_delta.h"

#include <algorithm>

namespace privrec {

bool EdgeDeltaAffectsTarget(const CsrGraph& graph, const EdgeDelta& delta,
                            NodeId target) {
  if (target == delta.u) return true;
  if (graph.directed()) {
    return graph.HasEdge(target, delta.u);
  }
  return target == delta.v || graph.HasEdge(target, delta.u) ||
         graph.HasEdge(target, delta.v);
}

std::vector<NodeId> AffectedTargets(const CsrGraph& graph,
                                    const CsrGraph& in_graph,
                                    const EdgeDelta& delta) {
  std::vector<NodeId> targets;
  // in_graph.OutNeighbors(x) are the nodes with an arc INTO x.
  const auto in_u = in_graph.OutNeighbors(delta.u);
  targets.reserve(in_u.size() + 2);
  targets.push_back(delta.u);
  targets.insert(targets.end(), in_u.begin(), in_u.end());
  if (!graph.directed()) {
    const auto in_v = in_graph.OutNeighbors(delta.v);
    targets.push_back(delta.v);
    targets.insert(targets.end(), in_v.begin(), in_v.end());
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  return targets;
}

}  // namespace privrec
