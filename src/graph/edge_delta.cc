#include "graph/edge_delta.h"

#include <algorithm>

namespace privrec {

bool EdgeDeltaAffectsTarget(const CsrGraph& graph, const EdgeDelta& delta,
                            NodeId target) {
  if (target == delta.u) return true;
  if (graph.directed()) {
    return graph.HasEdge(target, delta.u);
  }
  return target == delta.v || graph.HasEdge(target, delta.u) ||
         graph.HasEdge(target, delta.v);
}

std::vector<NodeId> AffectedTargets(const CsrGraph& graph,
                                    const CsrGraph& in_graph,
                                    const EdgeDelta& delta) {
  std::vector<NodeId> targets;
  // in_graph.OutNeighbors(x) are the nodes with an arc INTO x.
  const auto in_u = in_graph.OutNeighbors(delta.u);
  targets.reserve(in_u.size() + 2);
  targets.push_back(delta.u);
  targets.insert(targets.end(), in_u.begin(), in_u.end());
  if (!graph.directed()) {
    const auto in_v = in_graph.OutNeighbors(delta.v);
    targets.push_back(delta.v);
    targets.insert(targets.end(), in_v.begin(), in_v.end());
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  return targets;
}

void FilterAffectingDeltas(const CsrGraph& graph,
                           std::span<const EdgeDelta> deltas, NodeId target,
                           std::span<const NodeId> extra_nodes,
                           std::vector<EdgeDelta>& out) {
  // Ever-neighbors: heads of window arcs incident to the target. These
  // nodes' adjacency must be fully reconstructible even when the final
  // snapshot no longer shows the target edge (the batch engine subtracts
  // their pre-window contribution).
  std::vector<NodeId> ever;
  for (const EdgeDelta& delta : deltas) {
    if (delta.u == target) {
      ever.push_back(delta.v);
    } else if (!graph.directed() && delta.v == target) {
      ever.push_back(delta.u);
    }
  }
  std::sort(ever.begin(), ever.end());
  ever.erase(std::unique(ever.begin(), ever.end()), ever.end());

  const auto relevant = [&](NodeId x) {
    return x == target || graph.HasEdge(target, x) ||
           std::binary_search(ever.begin(), ever.end(), x) ||
           std::binary_search(extra_nodes.begin(), extra_nodes.end(), x);
  };
  for (const EdgeDelta& delta : deltas) {
    // Directed: only the tail's out-adjacency changes; the head's
    // out-state is untouched (mirrors EdgeDeltaAffectsTarget).
    const bool keep = graph.directed()
                          ? relevant(delta.u)
                          : (relevant(delta.u) || relevant(delta.v));
    if (keep) out.push_back(delta);
  }
}

}  // namespace privrec
