#include "graph/dynamic_graph.h"

#include "graph/graph_builder.h"

namespace privrec {

DynamicGraph::DynamicGraph(NodeId num_nodes, bool directed)
    : directed_(directed), adjacency_(num_nodes) {
  num_nodes_.store(num_nodes, std::memory_order_release);
}

DynamicGraph::DynamicGraph(const CsrGraph& graph)
    : directed_(graph.directed()), adjacency_(graph.num_nodes()) {
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) adjacency_[u].insert(v);
  }
  num_nodes_.store(graph.num_nodes(), std::memory_order_release);
  num_edges_.store(graph.num_edges(), std::memory_order_release);
}

NodeId DynamicGraph::AddNode() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  adjacency_.emplace_back();
  const NodeId id = static_cast<NodeId>(adjacency_.size() - 1);
  // Version before node count: a reader that observes the new num_nodes()
  // (acquire) is then guaranteed to observe the bumped version too, so it
  // can never pass a bounds check against the grown graph while still
  // trusting a pinned pre-growth snapshot.
  version_.fetch_add(1, std::memory_order_acq_rel);
  num_nodes_.store(static_cast<NodeId>(adjacency_.size()),
                   std::memory_order_release);
  return id;
}

Status DynamicGraph::ValidateEndpoints(NodeId u, NodeId v) const {
  if (u == v) return Status::InvalidArgument("self-loop");
  if (u >= adjacency_.size() || v >= adjacency_.size()) {
    return Status::InvalidArgument("node id out of range");
  }
  return Status::OK();
}

Status DynamicGraph::AddEdge(NodeId u, NodeId v) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  PRIVREC_RETURN_NOT_OK(ValidateEndpoints(u, v));
  if (!adjacency_[u].insert(v).second) {
    return Status::FailedPrecondition("edge already present");
  }
  if (!directed_) adjacency_[v].insert(u);
  num_edges_.fetch_add(1, std::memory_order_acq_rel);
  version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status DynamicGraph::RemoveEdge(NodeId u, NodeId v) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  PRIVREC_RETURN_NOT_OK(ValidateEndpoints(u, v));
  if (adjacency_[u].erase(v) == 0) {
    return Status::FailedPrecondition("edge not present");
  }
  if (!directed_) adjacency_[v].erase(u);
  num_edges_.fetch_sub(1, std::memory_order_acq_rel);
  version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

bool DynamicGraph::HasEdge(NodeId u, NodeId v) const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (u >= adjacency_.size() || v >= adjacency_.size()) return false;
  return adjacency_[u].count(v) > 0;
}

uint32_t DynamicGraph::OutDegree(NodeId v) const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return static_cast<uint32_t>(adjacency_[v].size());
}

std::shared_ptr<const DynamicGraph::VersionedCsr> DynamicGraph::BuildLocked()
    const {
  GraphBuilder builder(directed_);
  builder.SetNumNodes(static_cast<NodeId>(adjacency_.size()));
  builder.Reserve(num_edges_.load(std::memory_order_relaxed));
  for (NodeId u = 0; u < adjacency_.size(); ++u) {
    for (NodeId v : adjacency_[u]) {
      if (!directed_ && v < u) continue;
      builder.AddEdge(u, v);
    }
  }
  auto built = std::make_shared<VersionedCsr>(
      VersionedCsr{version_.load(std::memory_order_relaxed),
                   num_edges_.load(std::memory_order_relaxed),
                   builder.Build()});
  snapshot_builds_.fetch_add(1, std::memory_order_acq_rel);
  return built;
}

DynamicGraph::StampedSnapshot DynamicGraph::VersionedSnapshot() const {
  // Fast path: copy the published pointer under the (tiny) publication
  // mutex and compare its stamp to the atomic version. If a mutator bumps
  // version_ concurrently we either fall through to the rebuild or return
  // the pre-mutation snapshot — both linearizable; the stamp and CSR can
  // never disagree because they share one immutable allocation.
  std::shared_ptr<const VersionedCsr> current;
  {
    std::lock_guard<std::mutex> publish_lock(snapshot_mu_);
    current = snapshot_;
  }
  if (current != nullptr &&
      current->version == version_.load(std::memory_order_acquire)) {
    return StampedSnapshot{
        std::shared_ptr<const CsrGraph>(current, &current->graph),
        current->version, current->num_edges};
  }
  // Slow path: rebuild under the writer mutex (excludes mutators, and
  // collapses concurrent rebuilders into one build via the re-check).
  std::lock_guard<std::mutex> lock(writer_mu_);
  {
    std::lock_guard<std::mutex> publish_lock(snapshot_mu_);
    current = snapshot_;
  }
  if (current == nullptr ||
      current->version != version_.load(std::memory_order_acquire)) {
    current = BuildLocked();
    std::lock_guard<std::mutex> publish_lock(snapshot_mu_);
    snapshot_ = current;
  }
  return StampedSnapshot{
      std::shared_ptr<const CsrGraph>(current, &current->graph),
      current->version, current->num_edges};
}

}  // namespace privrec
