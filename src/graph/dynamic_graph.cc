#include "graph/dynamic_graph.h"

#include "common/logging.h"
#include "graph/csr_patch.h"
#include "graph/degree_cap.h"
#include "graph/graph_builder.h"
#include "persist/wal.h"

namespace privrec {

DynamicGraph::DynamicGraph(NodeId num_nodes, bool directed)
    : directed_(directed),
      adjacency_(num_nodes),
      in_adjacency_(directed ? num_nodes : 0) {
  num_nodes_.store(num_nodes, std::memory_order_release);
}

DynamicGraph::DynamicGraph(const CsrGraph& graph)
    : directed_(graph.directed()),
      adjacency_(graph.num_nodes()),
      in_adjacency_(graph.directed() ? graph.num_nodes() : 0) {
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      adjacency_[u].insert(v);
      if (directed_) in_adjacency_[v].insert(u);
    }
  }
  num_nodes_.store(graph.num_nodes(), std::memory_order_release);
  num_edges_.store(graph.num_edges(), std::memory_order_release);
}

void DynamicGraph::AttachWal(WriteAheadLog* wal) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  wal_ = wal;
  wal_last_seq_ = wal == nullptr ? 0 : wal->next_seq() - 1;
}

NodeId DynamicGraph::AddNode() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (wal_ != nullptr) {
    // A node append cannot be rejected (no precondition can fail), so a
    // WAL that cannot take the record is fatal rather than reportable:
    // injected torn writes must target edge appends, which CAN refuse.
    Result<uint64_t> seq = wal_->Append(
        WalRecordKind::kAddNode, static_cast<uint32_t>(adjacency_.size()), 0);
    PRIVREC_CHECK_OK(seq.status());
    wal_last_seq_ = *seq;
  }
  adjacency_.emplace_back();
  if (directed_) in_adjacency_.emplace_back();
  const NodeId id = static_cast<NodeId>(adjacency_.size() - 1);
  // Version before node count: a reader that observes the new num_nodes()
  // (acquire) is then guaranteed to observe the bumped version too, so it
  // can never pass a bounds check against the grown graph while still
  // trusting a pinned pre-growth snapshot.
  version_.fetch_add(1, std::memory_order_acq_rel);
  num_nodes_.store(static_cast<NodeId>(adjacency_.size()),
                   std::memory_order_release);
  // A node addition is a version bump no edge delta can describe (it
  // changes every target's candidate count); clearing the journal makes
  // any replay window crossing it OutOfRange, which routes readers onto
  // the full-recompute fallback.
  journal_.clear();
  journal_floor_version_.store(version_.load(std::memory_order_relaxed),
                               std::memory_order_release);
  return id;
}

Status DynamicGraph::ValidateEndpoints(NodeId u, NodeId v) const {
  if (u == v) return Status::InvalidArgument("self-loop");
  if (u >= adjacency_.size() || v >= adjacency_.size()) {
    return Status::InvalidArgument("node id out of range");
  }
  return Status::OK();
}

void DynamicGraph::JournalAppendLocked(NodeId u, NodeId v, bool added) {
  if (journal_capacity_ == 0) {
    journal_floor_version_.store(version_.load(std::memory_order_relaxed),
                                 std::memory_order_release);
    return;
  }
  journal_.push_back(
      EdgeDelta{u, v, added, version_.load(std::memory_order_relaxed)});
  while (journal_.size() > journal_capacity_) {
    journal_.pop_front();
    journal_floor_version_.fetch_add(1, std::memory_order_acq_rel);
  }
  // Injected ring compaction (FaultPoint::kJournalCompaction): discard the
  // whole retained window as if capacity had just overflowed past it.
  // Readers pinned below the new floor — stale cache entries, the snapshot
  // patcher — hit the same OutOfRange fallback a production undersized
  // journal produces, deterministically.
  if (FaultInjector* injector =
          fault_injector_.load(std::memory_order_acquire)) {
    if (injector->ShouldFire(FaultPoint::kJournalCompaction)) {
      journal_.clear();
      journal_floor_version_.store(version_.load(std::memory_order_relaxed),
                                   std::memory_order_release);
    }
  }
}

Status DynamicGraph::AddEdge(NodeId u, NodeId v) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  PRIVREC_RETURN_NOT_OK(ValidateEndpoints(u, v));
  if (wal_ == nullptr) {
    // No WAL: keep the single-hash-lookup hot path.
    if (!adjacency_[u].insert(v).second) {
      return Status::FailedPrecondition("edge already present");
    }
  } else {
    // WAL-first: presence-check without mutating, make the record durable,
    // THEN apply. A failed append (torn write, crashed log) rejects the
    // mutation, so applied state never runs ahead of the durable log.
    if (adjacency_[u].count(v) > 0) {
      return Status::FailedPrecondition("edge already present");
    }
    PRIVREC_ASSIGN_OR_RETURN(
        wal_last_seq_, wal_->Append(WalRecordKind::kAddEdge, u, v));
    adjacency_[u].insert(v);
  }
  if (directed_) {
    in_adjacency_[v].insert(u);
  } else {
    adjacency_[v].insert(u);
  }
  num_edges_.fetch_add(1, std::memory_order_acq_rel);
  version_.fetch_add(1, std::memory_order_acq_rel);
  JournalAppendLocked(u, v, /*added=*/true);
  return Status::OK();
}

Status DynamicGraph::RemoveEdge(NodeId u, NodeId v) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  PRIVREC_RETURN_NOT_OK(ValidateEndpoints(u, v));
  if (wal_ == nullptr) {
    if (adjacency_[u].erase(v) == 0) {
      return Status::FailedPrecondition("edge not present");
    }
  } else {
    if (adjacency_[u].count(v) == 0) {
      return Status::FailedPrecondition("edge not present");
    }
    PRIVREC_ASSIGN_OR_RETURN(
        wal_last_seq_, wal_->Append(WalRecordKind::kRemoveEdge, u, v));
    adjacency_[u].erase(v);
  }
  if (directed_) {
    in_adjacency_[v].erase(u);
  } else {
    adjacency_[v].erase(u);
  }
  num_edges_.fetch_sub(1, std::memory_order_acq_rel);
  version_.fetch_add(1, std::memory_order_acq_rel);
  JournalAppendLocked(u, v, /*added=*/false);
  return Status::OK();
}

bool DynamicGraph::HasEdge(NodeId u, NodeId v) const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (u >= adjacency_.size() || v >= adjacency_.size()) return false;
  return adjacency_[u].count(v) > 0;
}

uint32_t DynamicGraph::OutDegree(NodeId v) const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return static_cast<uint32_t>(adjacency_[v].size());
}

uint32_t DynamicGraph::InDegree(NodeId v) const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return static_cast<uint32_t>(directed_ ? in_adjacency_[v].size()
                                         : adjacency_[v].size());
}

Result<std::vector<EdgeDelta>> DynamicGraph::EdgeDeltasBetween(
    uint64_t from_version, uint64_t to_version) const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return EdgeDeltasBetweenLocked(from_version, to_version);
}

Result<std::vector<EdgeDelta>> DynamicGraph::EdgeDeltasBetweenLocked(
    uint64_t from_version, uint64_t to_version) const {
  if (from_version > to_version) {
    return Status::InvalidArgument("from_version > to_version");
  }
  if (to_version > version_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("to_version was never reached");
  }
  const uint64_t floor = journal_floor_version_.load(std::memory_order_relaxed);
  if (from_version < floor) {
    return Status::OutOfRange("journal compacted past from_version");
  }
  // Invariant: journal_ holds the consecutive-version deltas
  // (floor, version_]; the bounds checks above put the requested window
  // inside it.
  const size_t begin = static_cast<size_t>(from_version - floor);
  const size_t end = static_cast<size_t>(to_version - floor);
  return std::vector<EdgeDelta>(journal_.begin() + begin,
                                journal_.begin() + end);
}

void DynamicGraph::SetJournalCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  journal_capacity_ = capacity;
  while (journal_.size() > journal_capacity_) {
    journal_.pop_front();
    journal_floor_version_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void DynamicGraph::SetSnapshotPatchThreshold(size_t max_deltas) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  snapshot_patch_threshold_ = max_deltas;
}

void DynamicGraph::SetDegreeCap(uint32_t cap) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (degree_cap_.load(std::memory_order_relaxed) == cap) return;
  degree_cap_.store(cap, std::memory_order_release);
  // Invalidate the published snapshot so the next reader materializes one
  // whose projected companion matches the new cap. Dropping the pointer
  // (rather than re-projecting eagerly) keeps this O(1); the mutation-path
  // patch refuses stale caps via VersionedCsr::degree_cap anyway.
  std::lock_guard<std::mutex> publish_lock(snapshot_mu_);
  snapshot_.reset();
}

std::shared_ptr<const DynamicGraph::VersionedCsr> DynamicGraph::BuildLocked()
    const {
  GraphBuilder builder(directed_);
  builder.SetNumNodes(static_cast<NodeId>(adjacency_.size()));
  builder.Reserve(num_edges_.load(std::memory_order_relaxed));
  for (NodeId u = 0; u < adjacency_.size(); ++u) {
    for (NodeId v : adjacency_[u]) {
      if (!directed_ && v < u) continue;
      builder.AddEdge(u, v);
    }
  }
  std::optional<CsrGraph> in_graph;
  if (directed_) {
    // Materialize the incrementally-maintained in-neighbor index as the
    // snapshot's reverse CSR (arcs transposed, same stamp).
    GraphBuilder reverse_builder(/*directed=*/true);
    reverse_builder.SetNumNodes(static_cast<NodeId>(in_adjacency_.size()));
    reverse_builder.Reserve(num_edges_.load(std::memory_order_relaxed));
    for (NodeId v = 0; v < in_adjacency_.size(); ++v) {
      for (NodeId u : in_adjacency_[v]) reverse_builder.AddEdge(v, u);
    }
    in_graph.emplace(reverse_builder.Build());
  }
  CsrGraph forward = builder.Build();
  std::optional<CsrGraph> projected;
  const uint32_t cap = degree_cap_.load(std::memory_order_relaxed);
  if (cap > 0) {
    projected.emplace(ProjectDegreeCapped(forward, cap));
    projection_builds_.fetch_add(1, std::memory_order_acq_rel);
  }
  auto built = std::make_shared<VersionedCsr>(
      VersionedCsr{version_.load(std::memory_order_relaxed),
                   num_edges_.load(std::memory_order_relaxed),
                   std::move(forward), std::move(in_graph),
                   std::move(projected), cap});
  snapshot_builds_.fetch_add(1, std::memory_order_acq_rel);
  return built;
}

std::shared_ptr<const DynamicGraph::VersionedCsr> DynamicGraph::TryPatchLocked(
    const std::shared_ptr<const VersionedCsr>& prev) const {
  if (prev == nullptr || snapshot_patch_threshold_ == 0) return nullptr;
  FaultInjector* injector = fault_injector_.load(std::memory_order_acquire);
  // Injected splice failure (FaultPoint::kSnapshotPatchFail): behave as if
  // PatchCsr had reported an inconsistency — null routes the caller onto
  // the BuildLocked rebuild, the same exact fallback.
  if (injector != nullptr &&
      injector->ShouldFire(FaultPoint::kSnapshotPatchFail)) {
    return nullptr;
  }
  // AddNode clears the journal (the window check below fails too), but the
  // node-count comparison keeps the fallback decision independent of
  // journal bookkeeping.
  if (prev->graph.num_nodes() != adjacency_.size()) return nullptr;
  const uint64_t version = version_.load(std::memory_order_relaxed);
  if (prev->version >= version ||
      version - prev->version > snapshot_patch_threshold_) {
    return nullptr;
  }
  // One source of truth for the window index math; OutOfRange here is the
  // compaction/AddNode fallback. (The O(Δ) copy out of the deque is part
  // of the patch budget.)
  Result<std::vector<EdgeDelta>> window =
      EdgeDeltasBetweenLocked(prev->version, version);
  if (!window.ok()) return nullptr;
  Result<CsrGraph> forward =
      PatchCsr(prev->graph, *window, CsrPatchOrientation::kForward);
  if (!forward.ok()) return nullptr;
  std::optional<CsrGraph> in_graph;
  if (directed_) {
    Result<CsrGraph> reverse =
        PatchCsr(*prev->in_graph, *window, CsrPatchOrientation::kReverse);
    if (!reverse.ok()) return nullptr;
    in_graph.emplace(*std::move(reverse));
  }
  // Projected companion: O(Δ) splice when the previous snapshot projected
  // at the same cap, full re-projection otherwise (cap just turned on or
  // changed — the snapshot reset in SetDegreeCap makes that path rare).
  std::optional<CsrGraph> projected;
  const uint32_t cap = degree_cap_.load(std::memory_order_relaxed);
  if (cap > 0) {
    // Injected projection-splice failure (kProjectionPatchFail): skip the
    // PatchProjectedCsr attempt so the companion takes the full
    // ProjectDegreeCapped re-projection below — the node-DP rebuild path.
    const bool force_projection_rebuild =
        injector != nullptr &&
        injector->ShouldFire(FaultPoint::kProjectionPatchFail);
    if (!force_projection_rebuild && prev->projected.has_value() &&
        prev->degree_cap == cap) {
      Result<CsrGraph> patched_projection =
          PatchProjectedCsr(*prev->projected, *forward, *window, cap);
      if (patched_projection.ok()) {
        projected.emplace(*std::move(patched_projection));
        projection_patches_.fetch_add(1, std::memory_order_acq_rel);
      }
    }
    if (!projected.has_value()) {
      projected.emplace(ProjectDegreeCapped(*forward, cap));
      projection_builds_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  auto built = std::make_shared<VersionedCsr>(
      VersionedCsr{version, num_edges_.load(std::memory_order_relaxed),
                   *std::move(forward), std::move(in_graph),
                   std::move(projected), cap});
  // The patched CSR must materialize exactly the journal's idea of the
  // current edge count; a disagreement would be a journal bug, not a
  // recoverable condition.
  PRIVREC_CHECK_EQ(built->graph.num_edges(), built->num_edges);
  snapshot_patches_.fetch_add(1, std::memory_order_acq_rel);
  return built;
}

namespace {

DynamicGraph::StampedSnapshot MakeStamped(
    std::shared_ptr<const void> owner, const CsrGraph* graph,
    const CsrGraph* in_graph, const CsrGraph* projected, uint64_t version,
    uint64_t num_edges) {
  return DynamicGraph::StampedSnapshot{
      std::shared_ptr<const CsrGraph>(owner, graph),
      std::shared_ptr<const CsrGraph>(owner, in_graph),
      projected == nullptr
          ? std::shared_ptr<const CsrGraph>()
          : std::shared_ptr<const CsrGraph>(std::move(owner), projected),
      version, num_edges};
}

}  // namespace

DynamicGraph::StampedSnapshot DynamicGraph::VersionedSnapshot() const {
  // Fast path: copy the published pointer under the (tiny) publication
  // mutex and compare its stamp to the atomic version. If a mutator bumps
  // version_ concurrently we either fall through to the rebuild or return
  // the pre-mutation snapshot — both linearizable; the stamp and CSR can
  // never disagree because they share one immutable allocation.
  std::shared_ptr<const VersionedCsr> current;
  {
    std::lock_guard<std::mutex> publish_lock(snapshot_mu_);
    current = snapshot_;
  }
  if (current != nullptr &&
      current->version == version_.load(std::memory_order_acquire)) {
    const CsrGraph* reverse =
        current->in_graph.has_value() ? &*current->in_graph : &current->graph;
    const CsrGraph* projected =
        current->projected.has_value() ? &*current->projected : nullptr;
    return MakeStamped(current, &current->graph, reverse, projected,
                       current->version, current->num_edges);
  }
  // Slow path: rebuild under the writer mutex (excludes mutators, and
  // collapses concurrent rebuilders into one build via the re-check).
  std::lock_guard<std::mutex> lock(writer_mu_);
  return SnapshotWriterLocked();
}

DynamicGraph::StampedSnapshot DynamicGraph::SnapshotWriterLocked() const {
  std::shared_ptr<const VersionedCsr> current;
  {
    std::lock_guard<std::mutex> publish_lock(snapshot_mu_);
    current = snapshot_;
  }
  if (current == nullptr ||
      current->version != version_.load(std::memory_order_acquire)) {
    // O(Δ) journal splice into the previous published CSR when possible;
    // from-scratch rebuild otherwise (first snapshot, AddNode, compacted
    // or over-threshold window).
    auto patched = TryPatchLocked(current);
    current = patched != nullptr ? std::move(patched) : BuildLocked();
    std::lock_guard<std::mutex> publish_lock(snapshot_mu_);
    snapshot_ = current;
  }
  const CsrGraph* reverse =
      current->in_graph.has_value() ? &*current->in_graph : &current->graph;
  const CsrGraph* projected =
      current->projected.has_value() ? &*current->projected : nullptr;
  return MakeStamped(current, &current->graph, reverse, projected,
                     current->version, current->num_edges);
}

DynamicGraph::CheckpointView DynamicGraph::AtomicCheckpointView() const {
  // Writer mutex held across BOTH the snapshot materialization and the
  // WAL-position read: no mutation can land between them, so the pair is
  // exact — the snapshot is the graph state immediately after WAL record
  // wal_seq.
  std::lock_guard<std::mutex> lock(writer_mu_);
  CheckpointView view;
  view.snapshot = SnapshotWriterLocked();
  view.wal_seq = wal_last_seq_;
  return view;
}

}  // namespace privrec
