#include "graph/dynamic_graph.h"

#include "graph/graph_builder.h"

namespace privrec {

DynamicGraph::DynamicGraph(NodeId num_nodes, bool directed)
    : directed_(directed), adjacency_(num_nodes) {}

DynamicGraph::DynamicGraph(const CsrGraph& graph)
    : directed_(graph.directed()), adjacency_(graph.num_nodes()) {
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) adjacency_[u].insert(v);
  }
  num_edges_ = graph.num_edges();
}

NodeId DynamicGraph::AddNode() {
  adjacency_.emplace_back();
  ++version_;
  return static_cast<NodeId>(adjacency_.size() - 1);
}

Status DynamicGraph::ValidateEndpoints(NodeId u, NodeId v) const {
  if (u == v) return Status::InvalidArgument("self-loop");
  if (u >= num_nodes() || v >= num_nodes()) {
    return Status::InvalidArgument("node id out of range");
  }
  return Status::OK();
}

Status DynamicGraph::AddEdge(NodeId u, NodeId v) {
  PRIVREC_RETURN_NOT_OK(ValidateEndpoints(u, v));
  if (!adjacency_[u].insert(v).second) {
    return Status::FailedPrecondition("edge already present");
  }
  if (!directed_) adjacency_[v].insert(u);
  ++num_edges_;
  ++version_;
  return Status::OK();
}

Status DynamicGraph::RemoveEdge(NodeId u, NodeId v) {
  PRIVREC_RETURN_NOT_OK(ValidateEndpoints(u, v));
  if (adjacency_[u].erase(v) == 0) {
    return Status::FailedPrecondition("edge not present");
  }
  if (!directed_) adjacency_[v].erase(u);
  --num_edges_;
  ++version_;
  return Status::OK();
}

bool DynamicGraph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) return false;
  return adjacency_[u].count(v) > 0;
}

std::shared_ptr<const CsrGraph> DynamicGraph::SharedSnapshot() const {
  if (snapshot_ != nullptr && snapshot_version_ == version_) {
    return snapshot_;
  }
  GraphBuilder builder(directed_);
  builder.SetNumNodes(num_nodes());
  builder.Reserve(num_edges_);
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : adjacency_[u]) {
      if (!directed_ && v < u) continue;
      builder.AddEdge(u, v);
    }
  }
  snapshot_ = std::make_shared<const CsrGraph>(builder.Build());
  snapshot_version_ = version_;
  ++snapshot_builds_;
  return snapshot_;
}

}  // namespace privrec
