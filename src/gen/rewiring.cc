#include "gen/rewiring.h"

#include <unordered_set>
#include <vector>

#include "graph/graph_builder.h"

namespace privrec {
namespace {

uint64_t Key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

Result<CsrGraph> DegreePreservingRewire(const CsrGraph& graph,
                                        uint64_t num_swaps, Rng& rng,
                                        uint64_t* executed_swaps) {
  if (graph.directed()) {
    return Status::InvalidArgument(
        "DegreePreservingRewire expects an undirected graph");
  }
  // Edge list (canonical orientation) + membership set.
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(graph.num_edges());
  std::unordered_set<uint64_t> present;
  present.reserve(graph.num_edges() * 2);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      if (v < u) continue;
      edges.emplace_back(u, v);
      present.insert(Key(u, v));
    }
  }
  if (edges.size() < 2) {
    return Status::FailedPrecondition("need at least two edges to rewire");
  }

  uint64_t executed = 0;
  for (uint64_t attempt = 0; attempt < num_swaps; ++attempt) {
    const size_t i = rng.NextBounded(edges.size());
    const size_t j = rng.NextBounded(edges.size());
    if (i == j) continue;
    auto [a, b] = edges[i];
    auto [c, d] = edges[j];
    // Randomize orientation of the second edge so both pairings occur.
    if (rng.NextBernoulli(0.5)) std::swap(c, d);
    // Proposed replacements: (a,d), (c,b).
    if (a == d || c == b) continue;
    if (present.count(Key(a, d)) > 0 || present.count(Key(c, b)) > 0) {
      continue;
    }
    present.erase(Key(a, b));
    present.erase(Key(c, d));
    present.insert(Key(a, d));
    present.insert(Key(c, b));
    edges[i] = {a, d};
    edges[j] = {c, b};
    ++executed;
  }
  if (executed_swaps != nullptr) *executed_swaps = executed;

  GraphBuilder builder(/*directed=*/false);
  builder.SetNumNodes(graph.num_nodes());
  builder.Reserve(edges.size());
  for (auto [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

}  // namespace privrec
