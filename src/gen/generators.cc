#include "gen/generators.h"

#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "graph/graph_builder.h"
#include "random/alias_sampler.h"
#include "random/distributions.h"

namespace privrec {
namespace {

uint64_t EdgeKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

uint64_t CanonicalEdgeKey(NodeId u, NodeId v, bool directed) {
  if (!directed && u > v) std::swap(u, v);
  return EdgeKey(u, v);
}

uint64_t MaxPossibleEdges(NodeId n, bool directed) {
  uint64_t pairs = static_cast<uint64_t>(n) * (n - 1);
  return directed ? pairs : pairs / 2;
}

}  // namespace

Result<CsrGraph> ErdosRenyiGnm(NodeId n, uint64_t m, bool directed, Rng& rng) {
  if (n < 2) return Status::InvalidArgument("ErdosRenyiGnm needs n >= 2");
  if (m > MaxPossibleEdges(n, directed)) {
    return Status::InvalidArgument("ErdosRenyiGnm: m exceeds possible edges");
  }
  if (m > MaxPossibleEdges(n, directed) / 2) {
    // Dense regime: rejection sampling degrades; sample by shuffling is
    // overkill for our workloads, so just warn — still correct, slower.
    PRIVREC_WLOG << "ErdosRenyiGnm: dense regime (m > half of possible "
                    "edges); generation may be slow";
  }
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  GraphBuilder builder(directed);
  builder.SetNumNodes(n);
  builder.Reserve(m);
  while (seen.size() < m) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    if (!seen.insert(CanonicalEdgeKey(u, v, directed)).second) continue;
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

Result<CsrGraph> ErdosRenyiGnp(NodeId n, double p, bool directed, Rng& rng) {
  if (n < 2) return Status::InvalidArgument("ErdosRenyiGnp needs n >= 2");
  if (p < 0 || p > 1) return Status::InvalidArgument("p must be in [0,1]");
  GraphBuilder builder(directed);
  builder.SetNumNodes(n);
  if (p == 0) return builder.Build();

  // Geometric skipping over the linearized pair index space.
  const uint64_t total = directed ? static_cast<uint64_t>(n) * n
                                  : static_cast<uint64_t>(n) * (n - 1) / 2;
  uint64_t index = 0;
  while (true) {
    uint64_t skip = (p >= 1.0) ? 0 : SampleGeometric(rng, p);
    if (skip > total || index + skip >= total) break;
    index += skip;
    NodeId u, v;
    if (directed) {
      u = static_cast<NodeId>(index / n);
      v = static_cast<NodeId>(index % n);
    } else {
      // Invert the triangular index: index = u*n - u(u+3)/2 + v - 1… use
      // the simpler row-scan inversion via floating sqrt then fix up.
      double nf = static_cast<double>(n);
      double uf = std::floor(
          nf - 0.5 - std::sqrt((nf - 0.5) * (nf - 0.5) - 2.0 *
                               static_cast<double>(index)));
      u = static_cast<NodeId>(uf);
      auto row_start = [&](uint64_t row) {
        return row * (n - 1) - row * (row - 1) / 2;
      };
      while (u > 0 && row_start(u) > index) --u;
      while (row_start(u + 1) <= index) ++u;
      v = static_cast<NodeId>(u + 1 + (index - row_start(u)));
    }
    if (u != v) builder.AddEdge(u, v);
    ++index;
  }
  return builder.Build();
}

Result<CsrGraph> BarabasiAlbert(NodeId n, uint32_t edges_per_node, Rng& rng) {
  if (edges_per_node == 0) {
    return Status::InvalidArgument("BarabasiAlbert needs edges_per_node > 0");
  }
  if (n <= edges_per_node) {
    return Status::InvalidArgument("BarabasiAlbert needs n > edges_per_node");
  }
  GraphBuilder builder(/*directed=*/false);
  builder.SetNumNodes(n);
  builder.Reserve(static_cast<size_t>(n) * edges_per_node);

  // repeated_nodes holds one entry per edge endpoint, so uniform sampling
  // from it is degree-proportional sampling.
  std::vector<NodeId> repeated_nodes;
  repeated_nodes.reserve(2ull * n * edges_per_node);

  // Seed: clique on the first edges_per_node+1 nodes.
  for (NodeId u = 0; u <= edges_per_node; ++u) {
    for (NodeId v = u + 1; v <= edges_per_node; ++v) {
      builder.AddEdge(u, v);
      repeated_nodes.push_back(u);
      repeated_nodes.push_back(v);
    }
  }

  std::unordered_set<NodeId> chosen;
  for (NodeId newcomer = edges_per_node + 1; newcomer < n; ++newcomer) {
    chosen.clear();
    while (chosen.size() < edges_per_node) {
      NodeId pick =
          repeated_nodes[rng.NextBounded(repeated_nodes.size())];
      chosen.insert(pick);
    }
    for (NodeId target : chosen) {
      builder.AddEdge(newcomer, target);
      repeated_nodes.push_back(newcomer);
      repeated_nodes.push_back(target);
    }
  }
  return builder.Build();
}

Result<CsrGraph> WattsStrogatz(NodeId n, uint32_t k, double beta, Rng& rng) {
  if (k == 0 || 2ull * k >= n) {
    return Status::InvalidArgument("WattsStrogatz needs 0 < 2k < n");
  }
  if (beta < 0 || beta > 1) {
    return Status::InvalidArgument("beta must be in [0,1]");
  }
  // Track the edge set explicitly so rewiring avoids duplicates.
  std::unordered_set<uint64_t> edges;
  auto add = [&](NodeId u, NodeId v) {
    if (u != v) edges.insert(CanonicalEdgeKey(u, v, /*directed=*/false));
  };
  auto has = [&](NodeId u, NodeId v) {
    return edges.count(CanonicalEdgeKey(u, v, false)) > 0;
  };
  for (NodeId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= k; ++j) {
      add(u, static_cast<NodeId>((u + j) % n));
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= k; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      if (!has(u, v) || !rng.NextBernoulli(beta)) continue;
      // Rewire (u,v) -> (u,w) for a uniform non-neighbor w.
      for (int attempts = 0; attempts < 64; ++attempts) {
        NodeId w = static_cast<NodeId>(rng.NextBounded(n));
        if (w == u || has(u, w)) continue;
        edges.erase(CanonicalEdgeKey(u, v, false));
        add(u, w);
        break;
      }
    }
  }
  GraphBuilder builder(/*directed=*/false);
  builder.SetNumNodes(n);
  builder.Reserve(edges.size());
  for (uint64_t key : edges) {
    builder.AddEdge(static_cast<NodeId>(key >> 32),
                    static_cast<NodeId>(key & 0xffffffffu));
  }
  return builder.Build();
}

Result<CsrGraph> ConfigurationModel(const std::vector<uint32_t>& degrees,
                                    Rng& rng) {
  uint64_t total = 0;
  for (uint32_t d : degrees) total += d;
  if (total % 2 != 0) {
    return Status::InvalidArgument(
        "ConfigurationModel: degree sum must be even");
  }
  std::vector<NodeId> stubs;
  stubs.reserve(total);
  for (NodeId v = 0; v < degrees.size(); ++v) {
    for (uint32_t i = 0; i < degrees[v]; ++i) stubs.push_back(v);
  }
  // Fisher–Yates pairing.
  for (size_t i = stubs.size(); i > 1; --i) {
    size_t j = rng.NextBounded(i);
    std::swap(stubs[i - 1], stubs[j]);
  }
  GraphBuilder builder(/*directed=*/false);
  builder.SetNumNodes(static_cast<NodeId>(degrees.size()));
  builder.Reserve(total / 2);
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    builder.AddEdge(stubs[i], stubs[i + 1]);  // builder drops self-loops/dups
  }
  return builder.Build();
}

Result<CsrGraph> ChungLu(const std::vector<double>& out_weights,
                         const std::vector<double>& in_weights,
                         uint64_t num_edges, bool directed, Rng& rng) {
  if (out_weights.size() != in_weights.size()) {
    return Status::InvalidArgument("ChungLu: weight vectors differ in size");
  }
  const NodeId n = static_cast<NodeId>(out_weights.size());
  if (n < 2) return Status::InvalidArgument("ChungLu needs n >= 2");
  if (num_edges > MaxPossibleEdges(n, directed) / 2) {
    return Status::InvalidArgument("ChungLu: too many edges requested");
  }
  AliasSampler out_sampler(out_weights);
  AliasSampler in_sampler(in_weights);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  GraphBuilder builder(directed);
  builder.SetNumNodes(n);
  builder.Reserve(num_edges);
  uint64_t attempts = 0;
  const uint64_t max_attempts = num_edges * 200 + 1000;
  while (seen.size() < num_edges) {
    if (++attempts > max_attempts) {
      return Status::Internal("ChungLu: rejection sampling stalled");
    }
    NodeId u = static_cast<NodeId>(out_sampler.Sample(rng));
    NodeId v = static_cast<NodeId>(in_sampler.Sample(rng));
    if (u == v) continue;
    if (!seen.insert(CanonicalEdgeKey(u, v, directed)).second) continue;
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

Result<CsrGraph> Rmat(uint32_t scale, uint64_t num_edges, double a, double b,
                      double c, bool directed, Rng& rng) {
  if (scale == 0 || scale > 31) {
    return Status::InvalidArgument("Rmat: scale must be in [1,31]");
  }
  double d = 1.0 - a - b - c;
  if (a < 0 || b < 0 || c < 0 || d < 0) {
    return Status::InvalidArgument("Rmat: probabilities must be >= 0, <= 1");
  }
  const NodeId n = static_cast<NodeId>(1u << scale);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  GraphBuilder builder(directed);
  builder.SetNumNodes(n);
  builder.Reserve(num_edges);
  uint64_t attempts = 0;
  const uint64_t max_attempts = num_edges * 200 + 1000;
  while (seen.size() < num_edges) {
    if (++attempts > max_attempts) {
      return Status::Internal("Rmat: rejection sampling stalled");
    }
    NodeId u = 0, v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    if (!seen.insert(CanonicalEdgeKey(u, v, directed)).second) continue;
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

std::vector<double> SamplePowerLawDegreeWeights(NodeId n, double exponent,
                                                uint32_t d_max, Rng& rng) {
  PRIVREC_CHECK_GT(exponent, 1.0);
  PRIVREC_CHECK_GT(d_max, 0u);
  std::vector<double> weights(n);
  for (NodeId i = 0; i < n; ++i) {
    weights[i] = static_cast<double>(SampleZipf(rng, d_max, exponent));
  }
  return weights;
}

std::vector<double> PowerLawWeights(NodeId n, double exponent) {
  PRIVREC_CHECK_GT(exponent, 1.0);
  std::vector<double> weights(n);
  const double power = -1.0 / (exponent - 1.0);
  for (NodeId i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i) + 1.0, power);
  }
  return weights;
}

}  // namespace privrec
