#ifndef PRIVREC_GEN_FIXTURES_H_
#define PRIVREC_GEN_FIXTURES_H_

#include "gen/neighboring.h"
#include "graph/csr_graph.h"

namespace privrec {

/// Small deterministic graphs used across tests, examples, and the DP
/// auditor (which needs graphs small enough to enumerate all neighbors).

/// Star: node 0 is the hub connected to nodes 1..leaves.
CsrGraph MakeStar(NodeId leaves);

/// Complete undirected graph K_n.
CsrGraph MakeComplete(NodeId n);

/// Path 0-1-2-...-(n-1).
CsrGraph MakePath(NodeId n);

/// Cycle 0-1-...-(n-1)-0.
CsrGraph MakeCycle(NodeId n);

/// The paper's running scenario in miniature: a target r=0 with two
/// "friends" (1, 2); candidate 3 shares both friends with r (2 common
/// neighbors), candidate 4 shares one, candidate 5 shares none but is
/// connected to 4. Useful for hand-checkable utility values:
///   u_CN(3) = 2, u_CN(4) = 1, u_CN(5) = 0.
CsrGraph MakeTwoTriangleFixture();

/// Directed audit fixture used by the black-box service auditor: target
/// r=0 follows 1 and 2; 1 -> {3, 4}, 2 -> 3. Hand-checkable directed
/// common-neighbors utilities for target 0 (candidates {3, 4, 5}):
///   u_CN(3) = 2, u_CN(4) = 1, u_CN(5) = 0,
/// and the directed CN sensitivity is exactly 1, so a single arc toggle
/// (2, 4) moves one candidate's utility by the full Δf — the configuration
/// where a mis-calibrated (noise-scale-halved) mechanism is maximally
/// visible to a sampling audit.
CsrGraph MakeDirectedAuditFixture();

/// Bipartite people–product fixture for the Section 8 sensitive-edge
/// extension: people 0..3, products 4..6. Person–person friendships
/// (0-1, 0-2) are public; person–product purchase edges (1-4, 2-4, 1-5,
/// 3-5, 2-6, 3-6) are the sensitive relation. Undirected. For target r=0
/// (friends {1, 2}) the candidate set is {3, 4, 5, 6} with
///   u_CN(4) = 2, u_CN(5) = 1, u_CN(6) = 1, u_CN(3) = 0.
CsrGraph MakePeopleProductFixture();

/// Number of people in MakePeopleProductFixture (ids below this are
/// people; ids at or above are products).
inline constexpr NodeId kPeopleProductBoundary = 4;

/// SensitiveEdgePredicate (see eval/dp_auditor.h) marking person–product
/// edges as the sensitive relation. `context` must point to a NodeId
/// holding the people/product id boundary (first product id).
bool IsPersonProductEdge(NodeId u, NodeId v, void* context);

/// Node-DP audit fixture: target r=0, hub x=1, isolated bystander c=2,
/// and a z-block of `zs` nodes (ids 3..zs+2) each adjacent to BOTH r and
/// x (deg(z) = 2). Undirected. Designed so one node rewiring (emptying
/// x's adjacency, MakeNodeAuditRewiringPair) moves resource-allocation
/// utilities as far as the graph allows:
///   - raw view: candidates are {x, c}; u_RA(x) = zs/2 on the base side
///     and 0 on the rewired side — a swing that dwarfs any edge-DP
///     calibration, so a kNode service that skipped the projection
///     (ServiceOptions::uncap_projection) is certified as a violation;
///   - degree-capped view at cap D: r's projected prefix keeps D z's, so
///     u_RA(x) = D/2 → 0 — a swing within D·Δf_edge, so an honest kNode
///     service passes, while one calibrated to the EDGE bound only
///     (satellite EdgeChargedOnly wrapper) is certified at moderate caps.
/// The bystander c keeps the raw candidate set at two outcomes (the
/// audit needs a comparison cell even when x's utility collapses).
CsrGraph MakeNodeAuditFixture(NodeId zs = 32);

/// The worst-case node-rewiring pair on MakeNodeAuditFixture(zs):
/// neighbor = fixture with hub x's adjacency replaced by the empty set
/// (kind kNodeRewired, u = v = x = 1). Deterministic — unlike
/// MakeNodeRewiringPair's random replacement, which on this dense fixture
/// usually re-wires x right back into r's neighborhood and mutes the
/// swing the trip-wire rows need.
NeighboringPair MakeNodeAuditRewiringPair(NodeId zs = 32);

}  // namespace privrec

#endif  // PRIVREC_GEN_FIXTURES_H_
