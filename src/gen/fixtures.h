#ifndef PRIVREC_GEN_FIXTURES_H_
#define PRIVREC_GEN_FIXTURES_H_

#include "graph/csr_graph.h"

namespace privrec {

/// Small deterministic graphs used across tests, examples, and the DP
/// auditor (which needs graphs small enough to enumerate all neighbors).

/// Star: node 0 is the hub connected to nodes 1..leaves.
CsrGraph MakeStar(NodeId leaves);

/// Complete undirected graph K_n.
CsrGraph MakeComplete(NodeId n);

/// Path 0-1-2-...-(n-1).
CsrGraph MakePath(NodeId n);

/// Cycle 0-1-...-(n-1)-0.
CsrGraph MakeCycle(NodeId n);

/// The paper's running scenario in miniature: a target r=0 with two
/// "friends" (1, 2); candidate 3 shares both friends with r (2 common
/// neighbors), candidate 4 shares one, candidate 5 shares none but is
/// connected to 4. Useful for hand-checkable utility values:
///   u_CN(3) = 2, u_CN(4) = 1, u_CN(5) = 0.
CsrGraph MakeTwoTriangleFixture();

}  // namespace privrec

#endif  // PRIVREC_GEN_FIXTURES_H_
