#ifndef PRIVREC_GEN_REWIRING_H_
#define PRIVREC_GEN_REWIRING_H_

#include <cstdint>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "random/rng.h"

namespace privrec {

/// Degree-preserving randomization by double-edge swaps: repeatedly picks
/// two edges (a,b), (c,d) and rewires them to (a,d), (c,b) when neither
/// replacement creates a self-loop or duplicate. Every node keeps its
/// exact degree; all other structure (triangles, assortativity, community
/// structure) is destroyed as `num_swaps` grows.
///
/// This is the null model behind the substitution argument in DESIGN.md:
/// if the paper's accuracy CDFs survive full rewiring (they do — see
/// bench/null_model_ablation), they are a function of the degree sequence
/// alone, so any degree-matched synthetic dataset reproduces them.
///
/// Undirected graphs only. `num_swaps` is attempted swaps; the returned
/// count is the number that actually executed.
Result<CsrGraph> DegreePreservingRewire(const CsrGraph& graph,
                                        uint64_t num_swaps, Rng& rng,
                                        uint64_t* executed_swaps = nullptr);

}  // namespace privrec

#endif  // PRIVREC_GEN_REWIRING_H_
