#ifndef PRIVREC_GEN_DATASETS_H_
#define PRIVREC_GEN_DATASETS_H_

#include <string>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace privrec {

/// Shape parameters of the two evaluation datasets in Section 7 of the
/// paper. We do not ship the proprietary-by-convention SNAP files; instead
/// Make*Like synthesizes degree-profile-matched stand-ins (see DESIGN.md §5)
/// and LoadOrSynthesize* transparently prefers a real edge list if one is
/// present on disk, so the harness reproduces the paper exactly when the
/// datasets are available.
struct WikiVoteSpec {
  static constexpr NodeId kNodes = 7115;
  static constexpr uint64_t kEdges = 100762;  // undirected
  static constexpr bool kDirected = false;
};

struct TwitterSpec {
  static constexpr NodeId kNodes = 96403;
  static constexpr uint64_t kEdges = 489986;  // directed arcs
  static constexpr uint32_t kMaxDegree = 13181;
  static constexpr bool kDirected = true;
};

/// Synthetic stand-in for the Wikipedia vote network: undirected Chung–Lu
/// graph with WikiVoteSpec node/edge counts and a power-law degree profile
/// (exponent ≈ 2.2, matching wiki-Vote's heavy tail). Deterministic in seed.
Result<CsrGraph> MakeWikiVoteLike(uint64_t seed);

/// Synthetic stand-in for the Twitter connections sample: directed Chung–Lu
/// graph with TwitterSpec counts, power-law out/in profiles, and weights
/// skewed so the largest hub reaches the same order of out-degree as the
/// paper's d_max = 13,181.
Result<CsrGraph> MakeTwitterLike(uint64_t seed);

/// Loads `path` as an undirected SNAP edge list if it exists, otherwise
/// falls back to MakeWikiVoteLike(seed).
Result<CsrGraph> LoadOrSynthesizeWikiVote(const std::string& path,
                                          uint64_t seed);

/// Loads `path` as a directed SNAP edge list if it exists, otherwise falls
/// back to MakeTwitterLike(seed).
Result<CsrGraph> LoadOrSynthesizeTwitter(const std::string& path,
                                         uint64_t seed);

}  // namespace privrec

#endif  // PRIVREC_GEN_DATASETS_H_
