#include "gen/neighboring.h"

#include <algorithm>
#include <set>
#include <utility>

#include "graph/transforms.h"

namespace privrec {

std::string NeighboringPair::ToString() const {
  switch (kind) {
    case Kind::kEdgeAdded:
      return "edge_added(" + std::to_string(u) + "," + std::to_string(v) + ")";
    case Kind::kEdgeRemoved:
      return "edge_removed(" + std::to_string(u) + "," + std::to_string(v) +
             ")";
    case Kind::kNodeRewired:
      return "node_rewired(" + std::to_string(u) + ")";
  }
  return "unknown";
}

Result<NeighboringPair> MakeEdgeTogglePair(const CsrGraph& graph,
                                           NodeId target, NodeId u, NodeId v) {
  if (u >= graph.num_nodes() || v >= graph.num_nodes()) {
    return Status::InvalidArgument("endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loop is not an edge");
  if (u == target || v == target) {
    return Status::InvalidArgument(
        "edge incident to the target leaves the relaxed edge-DP relation");
  }
  NeighboringPair pair;
  pair.u = u;
  pair.v = v;
  if (graph.HasEdge(u, v)) {
    PRIVREC_ASSIGN_OR_RETURN(pair.neighbor, WithEdgeRemoved(graph, u, v));
    pair.kind = NeighboringPair::Kind::kEdgeRemoved;
  } else {
    PRIVREC_ASSIGN_OR_RETURN(pair.neighbor, WithEdgeAdded(graph, u, v));
    pair.kind = NeighboringPair::Kind::kEdgeAdded;
  }
  pair.base = graph;
  return pair;
}

Result<std::vector<NeighboringPair>> SampleEdgeTogglePairs(
    const CsrGraph& graph, NodeId target, size_t max_pairs, Rng& rng) {
  if (target >= graph.num_nodes()) {
    return Status::InvalidArgument("target out of range");
  }
  const NodeId n = graph.num_nodes();
  if (n < 3) {
    return Status::InvalidArgument(
        "need at least 3 nodes for a non-target pair");
  }
  // Eligible unordered pairs {u, v} with u, v != target. (For directed
  // graphs a uniform unordered pair still toggles a uniformly random arc
  // direction via the order the sample produces.)
  const uint64_t eligible =
      static_cast<uint64_t>(n - 1) * static_cast<uint64_t>(n - 2) / 2;
  std::vector<NeighboringPair> pairs;
  std::set<std::pair<NodeId, NodeId>> seen;
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(max_pairs, eligible));
  pairs.reserve(want);
  while (pairs.size() < want) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v || u == target || v == target) continue;
    const auto key = std::minmax(u, v);
    if (!seen.insert({key.first, key.second}).second) continue;
    PRIVREC_ASSIGN_OR_RETURN(NeighboringPair pair,
                             MakeEdgeTogglePair(graph, target, u, v));
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

Result<NeighboringPair> MakeNodeRewiringPair(const CsrGraph& graph,
                                             NodeId target, NodeId node,
                                             Rng& rng) {
  if (target >= graph.num_nodes() || node >= graph.num_nodes()) {
    return Status::InvalidArgument("node out of range");
  }
  if (node == target) {
    return Status::InvalidArgument("cannot rewire the target itself");
  }
  const NodeId n = graph.num_nodes();
  // Drop node's entire adjacency except edges to the target (kept so both
  // graphs share one candidate set), then attach a random replacement
  // neighborhood of comparable size.
  std::vector<std::pair<NodeId, NodeId>> removals;
  for (NodeId old_neighbor : graph.OutNeighbors(node)) {
    if (old_neighbor == target) continue;
    removals.emplace_back(node, old_neighbor);
  }
  std::vector<std::pair<NodeId, NodeId>> additions;
  const uint32_t new_degree = static_cast<uint32_t>(
      rng.NextBounded(graph.OutDegree(node) + 3));
  for (uint32_t i = 0; i < new_degree; ++i) {
    const NodeId candidate = static_cast<NodeId>(rng.NextBounded(n));
    if (candidate == node || candidate == target) continue;
    additions.emplace_back(node, candidate);
  }
  NeighboringPair pair;
  pair.base = graph;
  pair.neighbor = WithEdits(graph, additions, removals);
  pair.kind = NeighboringPair::Kind::kNodeRewired;
  pair.u = node;
  pair.v = node;
  return pair;
}

Result<std::vector<NeighboringPair>> SampleNodeRewiringPairs(
    const CsrGraph& graph, NodeId target, size_t max_pairs, Rng& rng) {
  if (target >= graph.num_nodes()) {
    return Status::InvalidArgument("target out of range");
  }
  const NodeId n = graph.num_nodes();
  if (n < 2) {
    return Status::InvalidArgument("need a non-target node to rewire");
  }
  std::vector<NeighboringPair> pairs;
  std::set<NodeId> seen;
  const size_t want =
      static_cast<size_t>(std::min<uint64_t>(max_pairs, n - 1));
  pairs.reserve(want);
  while (pairs.size() < want) {
    const NodeId node = static_cast<NodeId>(rng.NextBounded(n));
    if (node == target || !seen.insert(node).second) continue;
    PRIVREC_ASSIGN_OR_RETURN(NeighboringPair pair,
                             MakeNodeRewiringPair(graph, target, node, rng));
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

}  // namespace privrec
