#ifndef PRIVREC_GEN_NEIGHBORING_H_
#define PRIVREC_GEN_NEIGHBORING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "random/rng.h"

namespace privrec {

/// A pair of graphs that are neighbors under the paper's relaxed edge-DP
/// relation (Definition 1 + Section 3.2: they differ in edges not incident
/// to the audited target, so both sides share one candidate set) or under
/// the Appendix A node-identity relation (one node's entire neighborhood is
/// rewired). These pairs are the input of the black-box service auditor:
/// stand up the serving stack on `base` and on `neighbor`, drive identical
/// trial sequences through both, and compare the output distributions.
struct NeighboringPair {
  enum class Kind {
    kEdgeAdded,    // neighbor = base + edge (u, v)
    kEdgeRemoved,  // neighbor = base - edge (u, v)
    kNodeRewired,  // neighbor = base with node u's neighborhood replaced
  };

  CsrGraph base = CsrGraph::Empty(0, false);
  CsrGraph neighbor = CsrGraph::Empty(0, false);
  Kind kind = Kind::kEdgeAdded;
  /// The toggled edge for the edge kinds; (u, u) for node rewiring where u
  /// is the rewired node.
  NodeId u = 0;
  NodeId v = 0;

  /// "edge_added(3,5)" / "edge_removed(1,4)" / "node_rewired(2)".
  std::string ToString() const;
};

/// Deterministic single edge-toggle pair: neighbor is `graph` with (u, v)
/// toggled (added when absent, removed when present). InvalidArgument when
/// u == v, either endpoint is out of range, or the edge is incident to
/// `target` (which would change the candidate set and leave the relaxed
/// edge-DP relation).
Result<NeighboringPair> MakeEdgeTogglePair(const CsrGraph& graph,
                                           NodeId target, NodeId u, NodeId v);

/// Samples up to `max_pairs` distinct edge-toggle pairs with endpoints not
/// incident to `target`, uniformly over node pairs (so both present edges
/// — removals — and absent edges — additions — appear). Returns fewer than
/// `max_pairs` only when the graph has fewer eligible pairs.
Result<std::vector<NeighboringPair>> SampleEdgeTogglePairs(
    const CsrGraph& graph, NodeId target, size_t max_pairs, Rng& rng);

/// Node-identity neighboring pair (Appendix A): neighbor is `graph` with
/// `node`'s neighborhood replaced by a random one of comparable size. The
/// target's own adjacency is kept fixed (edges between `node` and `target`
/// are preserved) so the candidate sets of the two graphs coincide —
/// mirroring AuditNodeDpSampled's convention. InvalidArgument when `node`
/// == `target` or out of range. Note: against an EDGE-DP service these
/// pairs measure node-DP leakage the service never promised to bound; the
/// empirical ε̂ they produce is expected to exceed the edge-ε (that gap is
/// Appendix A's point), so don't assert ε̂ <= ε on them there. A service
/// running in PrivacyModel::kNode (degree-capped projection +
/// NodeSensitivityBound calibration) DOES promise the bound — node
/// rewiring is exactly its neighboring relation, and ε̂ <= ε is the
/// assertion the node-DP audit suites make.
Result<NeighboringPair> MakeNodeRewiringPair(const CsrGraph& graph,
                                             NodeId target, NodeId node,
                                             Rng& rng);

/// Samples up to `max_pairs` node-rewiring pairs with DISTINCT rewired
/// nodes != target — the node-DP analog of SampleEdgeTogglePairs. Returns
/// fewer only when the graph has fewer non-target nodes.
Result<std::vector<NeighboringPair>> SampleNodeRewiringPairs(
    const CsrGraph& graph, NodeId target, size_t max_pairs, Rng& rng);

}  // namespace privrec

#endif  // PRIVREC_GEN_NEIGHBORING_H_
