#include "gen/datasets.h"

#include <fstream>

#include "common/logging.h"
#include "gen/generators.h"
#include "graph/edge_list_io.h"
#include "random/rng.h"

namespace privrec {
namespace {

bool FileExists(const std::string& path) {
  std::ifstream f(path);
  return f.good();
}

}  // namespace

Result<CsrGraph> MakeWikiVoteLike(uint64_t seed) {
  Rng rng(seed);
  // wiki-Vote: mean degree 28.3, max 1,065, median in the low single
  // digits (most participants cast or receive a handful of votes). The
  // truncated zeta(1.5) on [1, 1065] reproduces that profile: its mean is
  // ~25 and its median is 2, and the cap keeps the hub at wiki-Vote scale.
  std::vector<double> weights = SamplePowerLawDegreeWeights(
      WikiVoteSpec::kNodes, /*exponent=*/1.5, /*d_max=*/1065, rng);
  return ChungLu(weights, weights, WikiVoteSpec::kEdges,
                 WikiVoteSpec::kDirected, rng);
}

Result<CsrGraph> MakeTwitterLike(uint64_t seed) {
  Rng rng(seed);
  // Twitter sample: mean out-degree 5.1, d_max 13,181, median ~1 (most
  // accounts follow almost nobody; a few hubs follow thousands). Truncated
  // zeta(2.0) on [1, 13181] has mean ~5.8 and median 1, with the hub order
  // statistic saturating the cap at n ≈ 10^5 samples. In-degrees use a
  // slightly steeper law (attention is more skewed than following).
  std::vector<double> out_weights = SamplePowerLawDegreeWeights(
      TwitterSpec::kNodes, /*exponent=*/2.0, TwitterSpec::kMaxDegree, rng);
  std::vector<double> in_weights = SamplePowerLawDegreeWeights(
      TwitterSpec::kNodes, /*exponent=*/2.2, TwitterSpec::kMaxDegree, rng);
  return ChungLu(out_weights, in_weights, TwitterSpec::kEdges,
                 TwitterSpec::kDirected, rng);
}

Result<CsrGraph> LoadOrSynthesizeWikiVote(const std::string& path,
                                          uint64_t seed) {
  if (!path.empty() && FileExists(path)) {
    PRIVREC_ILOG << "loading real wiki-Vote edge list from " << path;
    EdgeListOptions options;
    options.directed = false;
    options.relabel = true;
    return LoadEdgeList(path, options);
  }
  PRIVREC_ILOG << "wiki-Vote file not found; synthesizing degree-matched "
                  "stand-in (seed="
               << seed << ")";
  return MakeWikiVoteLike(seed);
}

Result<CsrGraph> LoadOrSynthesizeTwitter(const std::string& path,
                                         uint64_t seed) {
  if (!path.empty() && FileExists(path)) {
    PRIVREC_ILOG << "loading real Twitter edge list from " << path;
    EdgeListOptions options;
    options.directed = true;
    options.relabel = true;
    return LoadEdgeList(path, options);
  }
  PRIVREC_ILOG << "Twitter file not found; synthesizing degree-matched "
                  "stand-in (seed="
               << seed << ")";
  return MakeTwitterLike(seed);
}

}  // namespace privrec
