#include "gen/fixtures.h"

#include "graph/graph_builder.h"

namespace privrec {

CsrGraph MakeStar(NodeId leaves) {
  GraphBuilder builder(/*directed=*/false);
  builder.SetNumNodes(leaves + 1);
  for (NodeId leaf = 1; leaf <= leaves; ++leaf) builder.AddEdge(0, leaf);
  return builder.Build();
}

CsrGraph MakeComplete(NodeId n) {
  GraphBuilder builder(/*directed=*/false);
  builder.SetNumNodes(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
  }
  return builder.Build();
}

CsrGraph MakePath(NodeId n) {
  GraphBuilder builder(/*directed=*/false);
  builder.SetNumNodes(n);
  for (NodeId u = 0; u + 1 < n; ++u) builder.AddEdge(u, u + 1);
  return builder.Build();
}

CsrGraph MakeCycle(NodeId n) {
  GraphBuilder builder(/*directed=*/false);
  builder.SetNumNodes(n);
  for (NodeId u = 0; u + 1 < n; ++u) builder.AddEdge(u, u + 1);
  if (n > 2) builder.AddEdge(n - 1, 0);
  return builder.Build();
}

CsrGraph MakeTwoTriangleFixture() {
  GraphBuilder builder(/*directed=*/false);
  builder.SetNumNodes(6);
  builder.AddEdge(0, 1);  // r -- friend 1
  builder.AddEdge(0, 2);  // r -- friend 2
  builder.AddEdge(1, 3);  // candidate 3 shares friends 1 and 2
  builder.AddEdge(2, 3);
  builder.AddEdge(1, 4);  // candidate 4 shares friend 1 only
  builder.AddEdge(4, 5);  // candidate 5: no common neighbors with r
  return builder.Build();
}

CsrGraph MakeDirectedAuditFixture() {
  GraphBuilder builder(/*directed=*/true);
  builder.SetNumNodes(6);
  builder.AddEdge(0, 1);  // r follows 1
  builder.AddEdge(0, 2);  // r follows 2
  builder.AddEdge(1, 3);  // candidate 3 reachable via both follows
  builder.AddEdge(2, 3);
  builder.AddEdge(1, 4);  // candidate 4 reachable via 1 only
  return builder.Build();
}

CsrGraph MakePeopleProductFixture() {
  GraphBuilder builder(/*directed=*/false);
  builder.SetNumNodes(7);
  // Friendships (public relation).
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  // Purchases (sensitive relation): person -- product.
  builder.AddEdge(1, 4);
  builder.AddEdge(2, 4);
  builder.AddEdge(1, 5);
  builder.AddEdge(3, 5);
  builder.AddEdge(2, 6);
  builder.AddEdge(3, 6);
  return builder.Build();
}

bool IsPersonProductEdge(NodeId u, NodeId v, void* context) {
  const NodeId boundary = *static_cast<const NodeId*>(context);
  return (u < boundary) != (v < boundary);
}

CsrGraph MakeNodeAuditFixture(NodeId zs) {
  GraphBuilder builder(/*directed=*/false);
  builder.SetNumNodes(zs + 3);
  for (NodeId z = 3; z < zs + 3; ++z) {
    builder.AddEdge(0, z);  // r -- z
    builder.AddEdge(1, z);  // x -- z
  }
  // c=2 stays isolated: a zero-utility candidate on every view, keeping
  // the raw candidate set at {x, c} so the audit always has two outcomes.
  return builder.Build();
}

NeighboringPair MakeNodeAuditRewiringPair(NodeId zs) {
  GraphBuilder builder(/*directed=*/false);
  builder.SetNumNodes(zs + 3);
  for (NodeId z = 3; z < zs + 3; ++z) builder.AddEdge(0, z);
  NeighboringPair pair;
  pair.base = MakeNodeAuditFixture(zs);
  pair.neighbor = builder.Build();  // x's entire adjacency removed
  pair.kind = NeighboringPair::Kind::kNodeRewired;
  pair.u = 1;
  pair.v = 1;
  return pair;
}

}  // namespace privrec
