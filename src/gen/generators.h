#ifndef PRIVREC_GEN_GENERATORS_H_
#define PRIVREC_GEN_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "random/rng.h"

namespace privrec {

/// Erdős–Rényi G(n, m): exactly m distinct edges chosen uniformly.
/// InvalidArgument if m exceeds the number of possible edges.
Result<CsrGraph> ErdosRenyiGnm(NodeId n, uint64_t m, bool directed, Rng& rng);

/// Erdős–Rényi G(n, p): every (ordered, if directed) pair independently
/// with probability p. Uses geometric skipping, O(n + m_expected).
Result<CsrGraph> ErdosRenyiGnp(NodeId n, double p, bool directed, Rng& rng);

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new node to `edges_per_node` existing nodes with
/// probability proportional to degree. Produces a power-law tail —
/// the regime where the paper's lower bounds bite (most nodes have
/// d_r = O(log n)).
Result<CsrGraph> BarabasiAlbert(NodeId n, uint32_t edges_per_node, Rng& rng);

/// Watts–Strogatz small world: ring lattice with k neighbors per side,
/// each edge rewired with probability beta.
Result<CsrGraph> WattsStrogatz(NodeId n, uint32_t k, double beta, Rng& rng);

/// Erased configuration model: uniform random multigraph with the given
/// degree sequence, then self-loops and parallel edges removed (so realized
/// degrees can undershoot slightly). Sum of degrees must be even.
Result<CsrGraph> ConfigurationModel(const std::vector<uint32_t>& degrees,
                                    Rng& rng);

/// Chung–Lu style fixed-edge-count sampler: draws endpoints independently
/// from the normalized `out_weights` / `in_weights` until `num_edges`
/// distinct non-loop edges are collected. With power-law weights this gives
/// graphs whose degree profile matches the weights' shape. For undirected
/// output pass the same vector twice.
Result<CsrGraph> ChungLu(const std::vector<double>& out_weights,
                         const std::vector<double>& in_weights,
                         uint64_t num_edges, bool directed, Rng& rng);

/// R-MAT recursive generator (Chakrabarti et al.): 2^scale nodes,
/// quadrant probabilities (a, b, c, implicit d = 1-a-b-c). Skewed
/// quadrants yield power-law in/out degrees, Twitter-like structure.
Result<CsrGraph> Rmat(uint32_t scale, uint64_t num_edges, double a, double b,
                      double c, bool directed, Rng& rng);

/// Power-law weight vector: w_i ∝ (i+1)^{-1/(exponent-1)}, the Chung–Lu
/// weighting that produces degree exponent `exponent`.
std::vector<double> PowerLawWeights(NodeId n, double exponent);

/// Samples n expected-degree weights from the truncated discrete power law
/// P(d) ∝ d^{-exponent} on [1, d_max] — the empirical shape of social-graph
/// degree distributions (wiki-Vote ≈ exponent 1.5 capped near 1065;
/// Twitter out-degrees ≈ exponent 2 capped at 13,181). Feeding these into
/// ChungLu matches a real network's median AND tail simultaneously, which
/// PowerLawWeights' smooth rank weighting cannot (it overshoots the
/// minimum degree badly).
std::vector<double> SamplePowerLawDegreeWeights(NodeId n, double exponent,
                                                uint32_t d_max, Rng& rng);

}  // namespace privrec

#endif  // PRIVREC_GEN_GENERATORS_H_
