#ifndef PRIVREC_EVAL_AUDIT_GATE_H_
#define PRIVREC_EVAL_AUDIT_GATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace privrec {

/// One row of the audit-landscape artifact (BENCH_audit_landscape.json):
/// a (utility, ε, calibration, serve path, release shape) cell with its
/// measured ε̂, certified lower bound, and Bonferroni cell count.
struct AuditLandscapeRow {
  std::string utility;
  /// "honest" or a broken-calibration tag (e.g. "underscaled_half").
  std::string calibration;
  /// "cold" / "cache_hit" / "post_mutation" / "multi_shard" /
  /// "under_mutation".
  std::string path;
  /// "single" or "list" (absent in pre-list artifacts => "single").
  std::string shape = "single";
  double eps = 0;
  double eps_hat = 0;
  double certified_lower = 0;
  /// Bonferroni cell count behind certified_lower (absent in pre-gate
  /// artifacts => 0, which the comparator treats as "no constraint").
  uint64_t cells = 0;
  /// certified_lower > eps at emit time.
  bool violation = false;

  /// The identity the gate matches baseline and fresh rows on.
  std::string Key() const;
};

/// Parses the bench's own JSON artifact. Deliberately line-oriented: the
/// bench emits exactly one row object per line (WriteJson in
/// bench/audit_landscape.cc), so a dependency-free scanner is exact for
/// the format it gates — NOT a general JSON parser. Lines without a
/// "utility" field (the header, braces) are skipped; a malformed row line
/// is an error, not a skip (a gate that drops rows it cannot read would
/// wave regressions through).
Result<std::vector<AuditLandscapeRow>> ParseAuditLandscapeJson(
    const std::string& json_text);

/// Loads and parses the artifact at `path`.
Result<std::vector<AuditLandscapeRow>> LoadAuditLandscape(
    const std::string& path);

/// The ε̂-regression gate: compares a freshly measured landscape against
/// the committed baseline and returns one human-readable failure string
/// per violated invariant (empty == gate passes):
///   1. every baseline row must still exist in the fresh run (a vanished
///      row is an audit that silently stopped running);
///   2. no fresh HONEST row may be a certified violation;
///   3. every baseline VIOLATION row must still be flagged, with its
///      fresh certified bound >= baseline - `tolerance` (detection power
///      must not regress);
///   4. no fresh row's Bonferroni cell count may shrink below its
///      baseline's (fewer cells = a silently weakened correction).
/// Extra fresh rows are allowed (the landscape grows PR over PR).
std::vector<std::string> CompareAuditLandscapes(
    const std::vector<AuditLandscapeRow>& baseline,
    const std::vector<AuditLandscapeRow>& fresh, double tolerance);

}  // namespace privrec

#endif  // PRIVREC_EVAL_AUDIT_GATE_H_
