#ifndef PRIVREC_EVAL_EXPERIMENT_H_
#define PRIVREC_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "random/rng.h"
#include "utility/utility_function.h"

namespace privrec {

/// Per-target outcome of an accuracy experiment (one point of a Figure 1/2
/// curve before CDF aggregation).
struct TargetEvaluation {
  NodeId target = 0;
  uint32_t degree = 0;
  /// Exact expected accuracy of the exponential mechanism A_E(ε).
  double exponential_accuracy = 0;
  /// Monte-Carlo expected accuracy of the Laplace mechanism A_L(ε);
  /// NaN when laplace_trials == 0.
  double laplace_accuracy = 0;
  /// Corollary 1 theoretical accuracy upper bound at this ε.
  double bound = 0;
  /// True when the target had no nonzero-utility candidate. The paper
  /// omits such targets from its plots; the harness reports how many were
  /// skipped instead of silently dropping them.
  bool skipped = false;
};

/// Options for EvaluateTargets.
struct EvaluationOptions {
  double epsilon = 1.0;
  /// Monte-Carlo trials for the Laplace accuracy (the paper uses 1000);
  /// 0 disables the Laplace evaluation entirely.
  size_t laplace_trials = 0;
  /// Master seed; each target gets an independent substream, so results
  /// are independent of thread scheduling.
  uint64_t seed = 7;
  /// Worker threads (0 = all hardware threads).
  unsigned num_threads = 0;
};

/// Uniformly samples floor(fraction · n) distinct target nodes (the
/// paper solicits recommendations for 10% of Wiki-vote nodes and 1% of
/// Twitter nodes).
std::vector<NodeId> SampleTargets(const CsrGraph& graph, double fraction,
                                  Rng& rng);

/// Evaluates one utility/ε configuration over `targets` in parallel:
/// computes each target's utility vector once, then the exponential
/// mechanism's exact accuracy, optionally the Laplace Monte-Carlo
/// accuracy, and the Corollary 1 bound (Section 7.1's procedure).
std::vector<TargetEvaluation> EvaluateTargets(
    const CsrGraph& graph, const UtilityFunction& utility,
    const std::vector<NodeId>& targets, const EvaluationOptions& options);

}  // namespace privrec

#endif  // PRIVREC_EVAL_EXPERIMENT_H_
