#ifndef PRIVREC_EVAL_ACCURACY_H_
#define PRIVREC_EVAL_ACCURACY_H_

#include <cstddef>

#include "common/result.h"
#include "core/mechanism.h"
#include "random/rng.h"
#include "utility/utility_vector.h"

namespace privrec {

/// Expected accuracy Σ u_i p_i / u_max via the mechanism's closed-form
/// distribution. Unimplemented for mechanisms lacking one.
Result<double> ExactExpectedAccuracy(const Mechanism& mechanism,
                                     const UtilityVector& utilities);

/// Monte-Carlo expected accuracy: mean of u(draw)/u_max over `trials`
/// independent recommendations — the paper's procedure for the Laplace
/// mechanism ("running 1,000 independent trials of A_L(ε) and averaging
/// the utilities obtained", Section 7.1).
Result<double> MonteCarloExpectedAccuracy(const Mechanism& mechanism,
                                          const UtilityVector& utilities,
                                          size_t trials, Rng& rng);

}  // namespace privrec

#endif  // PRIVREC_EVAL_ACCURACY_H_
