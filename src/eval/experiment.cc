#include "eval/experiment.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "core/bounds.h"
#include "core/exponential_mechanism.h"
#include "core/laplace_mechanism.h"
#include "eval/accuracy.h"
#include "eval/parallel.h"

namespace privrec {

std::vector<NodeId> SampleTargets(const CsrGraph& graph, double fraction,
                                  Rng& rng) {
  PRIVREC_CHECK(fraction > 0.0 && fraction <= 1.0);
  const NodeId n = graph.num_nodes();
  const size_t want = std::max<size_t>(
      1, static_cast<size_t>(std::floor(fraction * static_cast<double>(n))));
  // Partial Fisher–Yates over an index vector: exact uniform sampling
  // without replacement.
  std::vector<NodeId> pool(n);
  for (NodeId i = 0; i < n; ++i) pool[i] = i;
  for (size_t i = 0; i < want; ++i) {
    size_t j = i + rng.NextBounded(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(want);
  return pool;
}

std::vector<TargetEvaluation> EvaluateTargets(
    const CsrGraph& graph, const UtilityFunction& utility,
    const std::vector<NodeId>& targets, const EvaluationOptions& options) {
  std::vector<TargetEvaluation> results(targets.size());

  // Pre-fork one RNG per target so evaluation order cannot change results.
  std::vector<uint64_t> seeds(targets.size());
  {
    Rng master(options.seed);
    for (auto& s : seeds) s = master.NextUint64();
  }

  const double sensitivity = utility.SensitivityBound(graph);
  const ExponentialMechanism exponential(options.epsilon, sensitivity);
  const LaplaceMechanism laplace(options.epsilon, sensitivity);

  // One reusable workspace per worker: the per-target loop performs no
  // O(n) allocations, only the exact-size UtilityVector results.
  std::vector<UtilityWorkspace> workspaces(
      ParallelWorkerCount(targets.size(), options.num_threads));

  ParallelForWorkers(
      targets.size(),
      [&](unsigned worker, size_t i) {
        TargetEvaluation& eval = results[i];
        eval.target = targets[i];
        eval.degree = graph.OutDegree(targets[i]);
        UtilityVector utilities =
            utility.Compute(graph, targets[i], workspaces[worker]);
        if (utilities.empty()) {
          eval.skipped = true;
          eval.laplace_accuracy = std::numeric_limits<double>::quiet_NaN();
          return;
        }
        auto exp_acc = ExactExpectedAccuracy(exponential, utilities);
        PRIVREC_CHECK_OK(exp_acc.status());
        eval.exponential_accuracy = *exp_acc;

        if (options.laplace_trials > 0) {
          Rng rng(seeds[i]);
          auto lap_acc = MonteCarloExpectedAccuracy(
              laplace, utilities, options.laplace_trials, rng);
          PRIVREC_CHECK_OK(lap_acc.status());
          eval.laplace_accuracy = *lap_acc;
        } else {
          eval.laplace_accuracy = std::numeric_limits<double>::quiet_NaN();
        }

        eval.bound = TheoreticalAccuracyBound(graph, utility, targets[i],
                                              utilities, options.epsilon);
      },
      options.num_threads);
  return results;
}

}  // namespace privrec
