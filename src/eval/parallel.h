#ifndef PRIVREC_EVAL_PARALLEL_H_
#define PRIVREC_EVAL_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace privrec {

/// Runs fn(i) for i in [0, count) across up to `num_threads` worker
/// threads (0 = hardware concurrency). Work is claimed via an atomic
/// counter, so skewed per-item costs (hub vs leaf targets) balance
/// naturally. fn must be safe to call concurrently for distinct i.
inline void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                        unsigned num_threads = 0) {
  if (count == 0) return;
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  if (num_threads <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  num_threads = std::min<size_t>(num_threads, count);
  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (unsigned w = 0; w < num_threads; ++w) {
    workers.emplace_back([&]() {
      while (true) {
        size_t i = next.fetch_add(1);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  for (auto& worker : workers) worker.join();
}

}  // namespace privrec

#endif  // PRIVREC_EVAL_PARALLEL_H_
