#ifndef PRIVREC_EVAL_PARALLEL_H_
#define PRIVREC_EVAL_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace privrec {

/// Number of workers ParallelFor/ParallelForWorkers will actually spawn
/// for `count` items and a requested `num_threads` (0 = hardware
/// concurrency). Exposed so callers can pre-size per-worker state
/// (e.g. one UtilityWorkspace per worker).
inline unsigned ParallelWorkerCount(size_t count, unsigned num_threads = 0) {
  if (count == 0) return 0;
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  if (num_threads <= 1 || count == 1) return 1;
  return static_cast<unsigned>(
      std::min<size_t>(num_threads, count));
}

/// Runs fn(worker, i) for i in [0, count) across
/// ParallelWorkerCount(count, num_threads) workers. Work is claimed via an
/// atomic counter, so skewed per-item costs (hub vs leaf targets) balance
/// naturally. `worker` is a dense id in [0, worker_count): fn is never
/// called concurrently with the same worker id, which makes per-worker
/// scratch state (workspaces, RNG buffers) race-free without locks.
inline void ParallelForWorkers(
    size_t count, const std::function<void(unsigned, size_t)>& fn,
    unsigned num_threads = 0) {
  const unsigned workers_needed = ParallelWorkerCount(count, num_threads);
  if (workers_needed == 0) return;
  if (workers_needed == 1) {
    for (size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(workers_needed);
  for (unsigned w = 0; w < workers_needed; ++w) {
    workers.emplace_back([&, w]() {
      while (true) {
        size_t i = next.fetch_add(1);
        if (i >= count) return;
        fn(w, i);
      }
    });
  }
  for (auto& worker : workers) worker.join();
}

/// Runs fn(i) for i in [0, count); see ParallelForWorkers.
inline void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                        unsigned num_threads = 0) {
  ParallelForWorkers(
      count, [&fn](unsigned, size_t i) { fn(i); }, num_threads);
}

/// Spawns exactly `num_workers` threads, each running fn(worker) once, and
/// joins them. All workers pass a start barrier before fn begins, so
/// throughput measurements (ops/sec across workers) are not skewed by
/// thread spawn latency — the primitive under the concurrent-serving load
/// driver and the stress tests. Unlike ParallelForWorkers there is no work
/// queue: fn(worker) IS the worker's whole job. num_workers == 1 runs fn
/// inline on the calling thread.
inline void RunWorkers(unsigned num_workers,
                       const std::function<void(unsigned)>& fn) {
  if (num_workers == 0) return;
  if (num_workers == 1) {
    fn(0);
    return;
  }
  std::atomic<unsigned> arrived{0};
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (unsigned w = 0; w < num_workers; ++w) {
    workers.emplace_back([&, w]() {
      arrived.fetch_add(1, std::memory_order_acq_rel);
      while (arrived.load(std::memory_order_acquire) < num_workers) {
        std::this_thread::yield();
      }
      fn(w);
    });
  }
  for (auto& worker : workers) worker.join();
}

}  // namespace privrec

#endif  // PRIVREC_EVAL_PARALLEL_H_
