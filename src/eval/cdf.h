#ifndef PRIVREC_EVAL_CDF_H_
#define PRIVREC_EVAL_CDF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace privrec {

/// The thresholds used on the x-axis of Figures 1-2: 0.0, 0.1, ..., 1.0.
std::vector<double> PaperAccuracyThresholds();

/// For each threshold x, the fraction of `values` that are <= x — the
/// "% of nodes receiving recommendations with accuracy <= 1-δ" y-axis of
/// Figures 1(a)-2(b). NaN entries are ignored.
std::vector<double> FractionAtOrBelow(const std::vector<double>& values,
                                      const std::vector<double>& thresholds);

/// Fraction of `values` strictly greater than `threshold` (e.g. the
/// paper's "at most 24% of nodes can hope for accuracy greater than 0.9").
double FractionAbove(const std::vector<double>& values, double threshold);

/// Mean of values, ignoring NaNs; returns NaN if all entries are NaN.
double MeanIgnoringNan(const std::vector<double>& values);

/// Bucketed degree-vs-accuracy aggregation for Figure 2(c): bucket i
/// covers degrees [edges[i], edges[i+1]).
struct DegreeBucket {
  uint32_t degree_lo = 0;
  uint32_t degree_hi = 0;  // exclusive
  size_t count = 0;
  double mean_accuracy = 0;
};

/// Geometric degree buckets (1-2, 2-4, 4-8, ...) over (degree, accuracy)
/// pairs; empty buckets are omitted.
std::vector<DegreeBucket> BucketByDegree(
    const std::vector<uint32_t>& degrees,
    const std::vector<double>& accuracies);

}  // namespace privrec

#endif  // PRIVREC_EVAL_CDF_H_
