#ifndef PRIVREC_EVAL_SERVICE_AUDITOR_H_
#define PRIVREC_EVAL_SERVICE_AUDITOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/privacy_accountant.h"
#include "eval/dp_auditor.h"
#include "gen/neighboring.h"
#include "graph/csr_graph.h"
#include "random/rng.h"
#include "serve/fault_injection.h"
#include "utility/utility_function.h"

namespace privrec {

struct ServiceStats;  // serve/recommendation_service.h

/// The serving-stack code paths the black-box auditor drives. Each path is
/// the REAL production path — the auditor never reimplements the release;
/// it only arranges the service state (cold cache, warm cache, fresh
/// mutation, shard count) before sampling.
enum class ServeAuditPath {
  /// Fresh service per trial: cache miss, snapshot pin, sensitivity
  /// compute, sampler freeze — the first-request path.
  kCold = 0,
  /// One warm-up serve, then every trial hits the cached entry's frozen
  /// RecommendationSampler — the steady-state O(1) path.
  kCacheHit = 1,
  /// Warm the cache, apply one identical graph mutation to BOTH services
  /// (so the pair stays neighboring), then sample: exercises the
  /// invalidation sweep, the Δf ratchet, and the sampler re-freeze.
  kPostMutation = 2,
  /// Cache-hit sampling on a service with ServiceAuditOptions::
  /// multi_shard_count shards: exercises shard striping, per-shard
  /// snapshot pinning, and per-shard sensitivity memos.
  kMultiShard = 3,
};

inline constexpr ServeAuditPath kAllServeAuditPaths[] = {
    ServeAuditPath::kCold, ServeAuditPath::kCacheHit,
    ServeAuditPath::kPostMutation, ServeAuditPath::kMultiShard};

/// "cold" / "cache_hit" / "post_mutation" / "multi_shard" — the names used
/// in DpAuditResult::per_path.
const char* ServeAuditPathName(ServeAuditPath path);

/// The release shape the auditor samples on each path.
enum class ServeAuditShape {
  /// ServeForAudit: one node id per trial, counted directly per outcome.
  kSingle = 0,
  /// ServeListForAudit: a k-slot peeling top-k list per trial, reduced to
  /// binomial outcome cells (position marginals, set membership with
  /// complements, bounded list identity — common/statistics.h
  /// ListOutcomeReduction) before the Clopper–Pearson machinery runs.
  kList = 1,
};

/// The statistical core of the sampling audit, usable standalone (property
/// tests drive their own serve loops and hand the histograms here): given
/// per-outcome counts from `trials` draws on each side of a neighboring
/// pair, returns the point-estimate ε̂ (max |ln(p̂/q̂)| with half-count
/// floors) and the Clopper–Pearson-certified lower bound (Bonferroni-
/// corrected across outcomes at `confidence`). `path_name` labels the
/// resulting entry. `bonferroni_override` != 0 replaces the correction's
/// cell count (gate self-tests only — an override below the true cell
/// count voids the certification).
PathEpsilonEstimate EstimateEpsilonFromCounts(
    const std::string& path_name,
    const std::map<NodeId, uint64_t>& base_counts,
    const std::map<NodeId, uint64_t>& neighbor_counts, uint64_t trials,
    double confidence, size_t bonferroni_override = 0);

struct ServiceAuditOptions {
  /// ε the audited services are configured to release at (the guarantee
  /// being audited).
  double release_epsilon = 0.5;
  /// Serve trials per side (base / neighbor) per audited path. The
  /// Clopper–Pearson half-widths shrink like 1/sqrt(trials); ~2500 per
  /// side resolves ratios of e^0.3 at 99% confidence on small fixtures.
  uint64_t trials_per_side = 2500;
  /// Overall confidence of the certified epsilon_lower_bound, Bonferroni-
  /// split across the per-outcome intervals.
  double confidence = 0.99;
  /// Root seed; every (path, side) gets a splittable sub-stream, so a
  /// fixed seed reproduces the audit exactly.
  uint64_t seed = 0x5eed'a0d1'7000ULL;
  /// Shard count for the multi_shard path (other paths run 1 shard so the
  /// cold/cache-hit/post-mutation state machines are deterministic).
  size_t multi_shard_count = 8;
  /// Which paths to drive. Empty means all four.
  std::vector<ServeAuditPath> paths;
  /// Release shape sampled on every path (see ServeAuditShape).
  ServeAuditShape shape = ServeAuditShape::kSingle;
  /// List length for ServeAuditShape::kList.
  size_t list_k = 5;
  /// Adaptive trial allocation: when nonzero, AuditPair ignores
  /// trials_per_side and instead spends this TOTAL budget (serve trials
  /// per side, summed across audited paths) over `adaptive_rounds` rounds
  /// — round 1 splits uniformly, later rounds allocate each round's slice
  /// proportionally to the paths' current certification gaps
  /// (ε̂ − certified lower bound), so trials concentrate where the
  /// Clopper–Pearson intervals are widest. Deterministic: per-path RNG
  /// streams persist across rounds, so a fixed seed reproduces the audit
  /// regardless of how the allocation unfolds. 0 = uniform (legacy):
  /// every path gets trials_per_side.
  uint64_t total_trial_budget = 0;
  /// Rounds for the adaptive loop (>= 1; 1 degenerates to uniform).
  uint64_t adaptive_rounds = 4;
  /// Nonzero overrides the Bonferroni cell count in every per-path
  /// estimate. GATE SELF-TEST ONLY: an override below the true cell count
  /// voids the certification — it exists so ci/sanitize.sh can inject a
  /// "dropped correction" regression and prove the gate catches it.
  size_t bonferroni_cells_override = 0;
  /// Privacy model the audited services run in (threaded into every
  /// ServiceOptions the auditor constructs). Under kNode, drive the audit
  /// with node-rewiring pairs (AuditNodeRewirings /
  /// SampleNodeRewiringPairs) — that IS the kNode neighboring relation,
  /// and an honest service must hold ε̂ <= ε on them.
  PrivacyModel privacy_model = PrivacyModel::kEdge;
  /// Degree cap of the audited services' node-DP projection (kNode only).
  /// Small by default: the tighter the cap relative to the fixture's
  /// degrees, the more work the projection actually does under audit.
  uint32_t degree_cap = 8;
  /// TRIP-WIRE: audit services that serve on the raw graph while
  /// calibrating to the capped node bound (ServiceOptions::
  /// uncap_projection). The audit must certify these as violations.
  bool uncap_projection = false;
};

/// Traffic shape for ServiceAuditor::AuditPairUnderMutation.
struct MutationAuditOptions {
  /// Concurrent mirrored-mutator threads (serve/concurrent_driver.h).
  unsigned mutator_threads = 2;
  /// Mutation-then-measure rounds. Measurement trials are split evenly
  /// across rounds (equal per-round counts are what make the aggregated
  /// counts a sound mixture: each round's state is identical-except-toggle
  /// on the two sides, so every mixture component is e^ε-bounded).
  uint64_t rounds = 6;
  /// Edge toggles each mutator thread applies per round (to both sides).
  uint64_t toggles_per_thread_per_round = 4;
  /// Budget-neutral churn serves each mutator thread issues per round.
  uint64_t churn_serves_per_thread_per_round = 8;
  /// Edge-delta journal capacity for both sides' graphs; 0 keeps the
  /// DynamicGraph default. Small values force journal fallbacks, putting
  /// the full-recompute repair route under audit too.
  size_t journal_capacity = 0;
};

/// Fault schedule for ServiceAuditor::AuditPairUnderFaults.
struct FaultAuditOptions {
  /// Installed IDENTICALLY on both sides' injectors (FaultPlan is
  /// comparable precisely so this symmetry is checkable). Identical plans
  /// driven by identical call sequences fire identically, so the two sides
  /// stay in mirrored fault states and every (parity, outcome) cell of an
  /// honest service remains e^ε-bounded — faults included.
  FaultPlan plan;
  /// Mirrored toggles of one common edge slot applied to BOTH sides
  /// between consecutive trials, so the fault points that only arm under
  /// mutation (journal compaction, patch failures, repair failure) keep
  /// firing throughout the audit. 0 = static graphs.
  uint64_t mutations_between_trials = 1;
  /// Retry policy for both sides' services. Left at the default (fail
  /// fast), a fail_serve plan makes the audit return an error — the CI
  /// gate's self-test relies on exactly that.
  RetryPolicy retry;
  /// Edge-delta journal capacity for both sides' graphs (0 keeps the
  /// DynamicGraph default). Small values compose with kJournalCompaction
  /// to force journal fallbacks under audit.
  size_t journal_capacity = 0;
};

/// Crash/recovery schedule for ServiceAuditor::AuditAcrossRecovery.
struct RecoveryAuditOptions {
  /// Installed IDENTICALLY on both sides before the pre-crash traffic
  /// (same symmetry contract as FaultAuditOptions::plan). The interesting
  /// plans enable the persist-layer crash points — kWalTornWrite,
  /// kLedgerPartialAppend, kCheckpointCrash; the plan is disarmed after
  /// the crash, so the post-recovery half runs clean.
  FaultPlan plan;
  /// Mirrored common-slot toggles applied to BOTH sides between
  /// consecutive trials (0 = static graphs). These go through the WAL, so
  /// kWalTornWrite actually bites; a torn WAL rejects the toggle on both
  /// sides identically and freezes the parity schedule symmetrically.
  uint64_t mutations_between_trials = 1;
  /// Budget-CHARGING mirrored serves of the target issued after the plan
  /// is armed and before the crash — the traffic the durable ledger must
  /// survive. The audit REFUSES (FailedPrecondition) when the recovered
  /// ledger spend is below what these serves charged in memory: that is
  /// the one state where certifying would launder a lost charge.
  uint64_t charged_serves_per_side = 4;
  /// Directory holding the two sides' durable state (WAL segments, budget
  /// ledger, checkpoints). REQUIRED. Wiped and recreated on entry so a
  /// fixed seed reproduces the audit byte for byte.
  std::string state_dir;
  /// Retry policy for both sides' services.
  RetryPolicy retry;
  /// Edge-delta journal capacity (0 keeps the DynamicGraph default).
  size_t journal_capacity = 0;
};

/// Black-box, sampling-based DP auditor for the serving stack. Where
/// AuditEdgeDp checks a mechanism's closed-form distribution on a static
/// CsrGraph, this auditor stands up two live RecommendationService
/// instances on the two sides of a NeighboringPair and estimates
///   ε̂ = max over audited paths and outcomes of |ln(Pr[serve(G)=o] /
///        Pr[serve(G')=o])|
/// from fixed-seed trials through the real serve paths (frozen cached
/// samplers, Δf ratchet, invalidation sweeps, sharding included). Each
/// per-path estimate comes with a Clopper–Pearson-certified lower bound
/// (DpAuditResult::per_path[i].epsilon_lower_bound): with probability >=
/// `confidence` the true ε of that path is at least the bound, so
///   - bound > configured ε  ==> certified privacy violation;
///   - point estimate ε̂ well under ε across many pairs ==> evidence (not
///     proof: a sampling audit can only ever lower-bound ε) the path
///     honors its budget.
class ServiceAuditor {
 public:
  /// Factory for the utility the audited services run; invoked once per
  /// service instance (services own their utility).
  using UtilityFactory = std::function<std::unique_ptr<UtilityFunction>()>;

  ServiceAuditor(UtilityFactory utility_factory, ServiceAuditOptions options);

  /// Audits one neighboring pair end to end. The returned result has one
  /// per_path entry per audited path, max_abs_log_ratio = the largest
  /// point estimate across paths, and worst_edge_u/v = the pair's toggled
  /// edge. Fails if `target` cannot be served on either side (no
  /// candidates) or the pair's sides disagree on node count/direction.
  Result<DpAuditResult> AuditPair(const NeighboringPair& pair,
                                  NodeId target) const;

  /// Samples up to `max_pairs` edge-toggle neighboring pairs of `graph`
  /// (gen/neighboring.h) and audits each, merging results per path by max.
  /// pairs_checked counts the pairs audited. The merged
  /// epsilon_lower_bound stays certified at `confidence`: each pair's
  /// intervals run at the Bonferroni-split confidence 1 - (1-γ)/K, so the
  /// max over the K pairs cannot inflate the joint failure probability.
  Result<DpAuditResult> AuditEdgeToggles(const CsrGraph& graph, NodeId target,
                                         size_t max_pairs, Rng& rng) const;

  /// Node-DP analog of AuditEdgeToggles: samples up to `max_pairs`
  /// node-rewiring pairs (gen/neighboring.h) and audits each through the
  /// same per-path machinery, merging per path by max with the same
  /// Bonferroni-split confidence. The meaningful combination is
  /// options().privacy_model == kNode — node rewiring is that mode's
  /// neighboring relation; under kEdge the merged ε̂ measures Appendix A's
  /// edge-vs-node gap instead and must not be asserted <= ε.
  Result<DpAuditResult> AuditNodeRewirings(const CsrGraph& graph,
                                           NodeId target, size_t max_pairs,
                                           Rng& rng) const;

  /// Audits the pair while `mutation.mutator_threads` concurrent workers
  /// apply IDENTICAL deterministic edge-toggle streams to both sides
  /// (serve/concurrent_driver.h MirroredMutator) — certifying the
  /// delta-repair + PatchCsr + affect-filter stack under live load, not
  /// just after a single pre-audit toggle. Runs `mutation.rounds` phases:
  /// concurrent mutation+churn, barrier, then a single-threaded
  /// measurement slice of trials_per_side / rounds trials per side on a
  /// 2-shard service. The result has one per_path entry named
  /// "under_mutation" (shape and statistics per ServiceAuditOptions).
  /// `stats_out`, when non-null, receives the two sides' summed
  /// ServiceStats — the test hook for asserting the repair machinery
  /// (delta_kept/patched/recomputed, journal_fallbacks) actually ran.
  Result<DpAuditResult> AuditPairUnderMutation(
      const NeighboringPair& pair, NodeId target,
      const MutationAuditOptions& mutation,
      ServiceStats* stats_out = nullptr) const;

  /// Audits the pair with `faults.plan` installed IDENTICALLY on both
  /// sides: between trials, one common edge slot is toggled on both
  /// services (keeping them neighbors), and the injected faults force the
  /// rare fallback routes — journal compaction under a pinned window,
  /// snapshot/projection patch failure, repair abandonment, shard stalls —
  /// to be the routes actually under audit. Outcome cells are keyed by
  /// toggle parity (the graph state cycles with period 2; the parity is
  /// public schedule, and at equal parity the two sides are neighbors), so
  /// every cell of an honest service is e^ε-bounded even though each
  /// trial's graph state differs. The result has one per_path entry named
  /// "under_faults". A fail_serve plan whose failures outlast
  /// `faults.retry` makes the audit return the Unavailable error instead
  /// of a result — refusing to certify a service that refused to serve.
  /// `stats_out`, when non-null, receives the two sides' summed
  /// ServiceStats (injected_faults / stale_fallback_serves /
  /// journal_fallbacks prove the faults actually fired).
  Result<DpAuditResult> AuditPairUnderFaults(
      const NeighboringPair& pair, NodeId target,
      const FaultAuditOptions& faults,
      ServiceStats* stats_out = nullptr) const;

  /// Audits the pair ACROSS a crash/recovery boundary, on both sides
  /// symmetrically: stand the services up on durable state (WAL + budget
  /// ledger + an initial checkpoint under `recovery.state_dir`), arm
  /// `recovery.plan`, run charged traffic and the first half of the
  /// trials, attempt a mid-audit checkpoint, then simulate a process
  /// death (SimulateCrash on WAL and ledger, services destroyed) and
  /// recover — WAL replay past the authoritative checkpoint, accountants
  /// reseeded from the recovered ledger — before running the second half
  /// of the trials on the recovered services. Outcome cells are keyed by
  /// toggle parity exactly as in AuditPairUnderFaults (recovery is exact,
  /// so the parity→graph-state mapping survives the boundary) and the
  /// estimate pools both halves: an honest, crash-safe service keeps
  /// every cell e^ε-bounded even when half its samples were served by a
  /// different process incarnation. The result has one per_path entry
  /// named "across_recovery".
  ///
  /// Refusals (no certification): FailedPrecondition when the recovered
  /// per-target ledger spend is LESS than what the pre-crash services
  /// charged in memory (a lost charge — the kLedgerPartialAppend state);
  /// any WAL/ledger/checkpoint recovery error propagates. Single shape
  /// only (kList → InvalidArgument). `stats_out` receives the four
  /// services' summed stats (pre-crash + recovered).
  Result<DpAuditResult> AuditAcrossRecovery(
      const NeighboringPair& pair, NodeId target,
      const RecoveryAuditOptions& recovery,
      ServiceStats* stats_out = nullptr) const;

  const ServiceAuditOptions& options() const { return options_; }

 private:
  /// AuditPair with the per-pair confidence overridden (multi-pair audits
  /// split their confidence budget across pairs).
  Result<DpAuditResult> AuditPairAtConfidence(const NeighboringPair& pair,
                                              NodeId target,
                                              double confidence) const;

  /// Audits every pair at the Bonferroni-split per-pair confidence and
  /// merges per path by max (the shared tail of AuditEdgeToggles /
  /// AuditNodeRewirings; `pairs` must be non-empty).
  Result<DpAuditResult> AuditPairsMerged(
      const std::vector<NeighboringPair>& pairs, NodeId target) const;

  UtilityFactory utility_factory_;
  ServiceAuditOptions options_;
};

}  // namespace privrec

#endif  // PRIVREC_EVAL_SERVICE_AUDITOR_H_
