#include "eval/accuracy.h"

namespace privrec {

Result<double> ExactExpectedAccuracy(const Mechanism& mechanism,
                                     const UtilityVector& utilities) {
  if (utilities.empty()) {
    return Status::FailedPrecondition("utility vector has no nonzero entry");
  }
  PRIVREC_ASSIGN_OR_RETURN(RecommendationDistribution dist,
                           mechanism.Distribution(utilities));
  return dist.ExpectedAccuracy(utilities);
}

Result<double> MonteCarloExpectedAccuracy(const Mechanism& mechanism,
                                          const UtilityVector& utilities,
                                          size_t trials, Rng& rng) {
  if (utilities.empty()) {
    return Status::FailedPrecondition("utility vector has no nonzero entry");
  }
  if (trials == 0) return Status::InvalidArgument("trials must be > 0");
  const double u_max = utilities.max_utility();
  double total = 0;
  // Mechanisms with a cheap frozen sampler (exponential) amortize the
  // distribution once and draw each trial in O(1); the draws are
  // distributed exactly as per-trial Recommend runs. Everything else
  // (Laplace) falls back to honest per-trial mechanism executions.
  auto sampler = mechanism.MakeSampler(utilities);
  if (sampler.ok()) {
    for (size_t i = 0; i < trials; ++i) {
      total += sampler->Draw(rng).utility;
    }
  } else if (sampler.status().IsUnimplemented()) {
    for (size_t i = 0; i < trials; ++i) {
      PRIVREC_ASSIGN_OR_RETURN(Recommendation rec,
                               mechanism.Recommend(utilities, rng));
      total += rec.utility;
    }
  } else {
    return sampler.status();
  }
  return total / (static_cast<double>(trials) * u_max);
}

}  // namespace privrec
