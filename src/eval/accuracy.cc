#include "eval/accuracy.h"

namespace privrec {

Result<double> ExactExpectedAccuracy(const Mechanism& mechanism,
                                     const UtilityVector& utilities) {
  if (utilities.empty()) {
    return Status::FailedPrecondition("utility vector has no nonzero entry");
  }
  PRIVREC_ASSIGN_OR_RETURN(RecommendationDistribution dist,
                           mechanism.Distribution(utilities));
  return dist.ExpectedAccuracy(utilities);
}

Result<double> MonteCarloExpectedAccuracy(const Mechanism& mechanism,
                                          const UtilityVector& utilities,
                                          size_t trials, Rng& rng) {
  if (utilities.empty()) {
    return Status::FailedPrecondition("utility vector has no nonzero entry");
  }
  if (trials == 0) return Status::InvalidArgument("trials must be > 0");
  const double u_max = utilities.max_utility();
  double total = 0;
  for (size_t i = 0; i < trials; ++i) {
    PRIVREC_ASSIGN_OR_RETURN(Recommendation rec,
                             mechanism.Recommend(utilities, rng));
    total += rec.utility;
  }
  return total / (static_cast<double>(trials) * u_max);
}

}  // namespace privrec
