#include "eval/audit_gate.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace privrec {
namespace {

/// Finds `"key":` in `line` and returns the character offset just past the
/// colon (and any spaces), or npos.
size_t ValueOffset(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return std::string::npos;
  pos = line.find(':', pos + needle.size());
  if (pos == std::string::npos) return std::string::npos;
  ++pos;
  while (pos < line.size() && line[pos] == ' ') ++pos;
  return pos;
}

bool ParseStringField(const std::string& line, const std::string& key,
                      std::string& out) {
  size_t pos = ValueOffset(line, key);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '"') {
    return false;
  }
  const size_t end = line.find('"', pos + 1);
  if (end == std::string::npos) return false;
  out = line.substr(pos + 1, end - pos - 1);
  return true;
}

bool ParseDoubleField(const std::string& line, const std::string& key,
                      double& out) {
  const size_t pos = ValueOffset(line, key);
  if (pos == std::string::npos) return false;
  try {
    out = std::stod(line.substr(pos));
  } catch (...) {
    return false;
  }
  return true;
}

bool ParseBoolField(const std::string& line, const std::string& key,
                    bool& out) {
  const size_t pos = ValueOffset(line, key);
  if (pos == std::string::npos) return false;
  if (line.compare(pos, 4, "true") == 0) {
    out = true;
    return true;
  }
  if (line.compare(pos, 5, "false") == 0) {
    out = false;
    return true;
  }
  return false;
}

}  // namespace

std::string AuditLandscapeRow::Key() const {
  char eps_buf[32];
  std::snprintf(eps_buf, sizeof(eps_buf), "%.3f", eps);
  return utility + "|" + eps_buf + "|" + calibration + "|" + path + "|" +
         shape;
}

Result<std::vector<AuditLandscapeRow>> ParseAuditLandscapeJson(
    const std::string& json_text) {
  std::vector<AuditLandscapeRow> rows;
  std::istringstream stream(json_text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    // Row lines are exactly the ones carrying a utility field; the
    // description line mentions no "utility": key.
    if (ValueOffset(line, "utility") == std::string::npos) continue;
    AuditLandscapeRow row;
    const bool ok = ParseStringField(line, "utility", row.utility) &&
                    ParseStringField(line, "calibration", row.calibration) &&
                    ParseStringField(line, "path", row.path) &&
                    ParseDoubleField(line, "eps", row.eps) &&
                    ParseDoubleField(line, "eps_hat", row.eps_hat) &&
                    ParseDoubleField(line, "certified_lower",
                                     row.certified_lower) &&
                    ParseBoolField(line, "violation", row.violation);
    if (!ok) {
      return Status::InvalidArgument("malformed audit landscape row at line " +
                                     std::to_string(line_no) + ": " + line);
    }
    // Optional fields (absent in pre-gate artifacts): defaults already set.
    ParseStringField(line, "shape", row.shape);
    double cells = 0;
    if (ParseDoubleField(line, "cells", cells) && cells > 0) {
      row.cells = static_cast<uint64_t>(cells);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<AuditLandscapeRow>> LoadAuditLandscape(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("cannot read audit landscape at " + path);
  }
  std::string text;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return ParseAuditLandscapeJson(text);
}

std::vector<std::string> CompareAuditLandscapes(
    const std::vector<AuditLandscapeRow>& baseline,
    const std::vector<AuditLandscapeRow>& fresh, double tolerance) {
  std::vector<std::string> failures;
  std::map<std::string, const AuditLandscapeRow*> fresh_by_key;
  for (const AuditLandscapeRow& row : fresh) fresh_by_key[row.Key()] = &row;

  for (const AuditLandscapeRow& fresh_row : fresh) {
    if (fresh_row.calibration == "honest" && fresh_row.violation) {
      failures.push_back("honest row certified a violation: " +
                         fresh_row.Key() + " certified_lower=" +
                         FormatDouble(fresh_row.certified_lower, 4) +
                         " > eps=" + FormatDouble(fresh_row.eps, 3));
    }
  }
  for (const AuditLandscapeRow& base_row : baseline) {
    auto it = fresh_by_key.find(base_row.Key());
    if (it == fresh_by_key.end()) {
      failures.push_back("baseline row missing from fresh run: " +
                         base_row.Key());
      continue;
    }
    const AuditLandscapeRow& fresh_row = *it->second;
    if (base_row.violation) {
      if (!fresh_row.violation) {
        failures.push_back("detection lost: " + base_row.Key() +
                           " was a certified VIOLATION in the baseline but "
                           "is not flagged in the fresh run");
      } else if (fresh_row.certified_lower <
                 base_row.certified_lower - tolerance) {
        failures.push_back(
            "detection power regressed: " + base_row.Key() +
            " certified_lower " + FormatDouble(base_row.certified_lower, 4) +
            " -> " + FormatDouble(fresh_row.certified_lower, 4) +
            " (tolerance " + FormatDouble(tolerance, 4) + ")");
      }
    }
    if (base_row.cells > 0 && fresh_row.cells < base_row.cells) {
      failures.push_back(
          "Bonferroni correction weakened: " + base_row.Key() + " cells " +
          std::to_string(base_row.cells) + " -> " +
          std::to_string(fresh_row.cells));
    }
  }
  return failures;
}

}  // namespace privrec
