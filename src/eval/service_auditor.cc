#include "eval/service_auditor.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/statistics.h"
#include "graph/dynamic_graph.h"
#include "persist/budget_ledger.h"
#include "persist/checkpoint.h"
#include "persist/wal.h"
#include "serve/concurrent_driver.h"
#include "serve/recommendation_service.h"

namespace privrec {
namespace {

/// One identical mutation applied to both sides of a pair for the
/// post-mutation path.
struct CommonToggle {
  NodeId a = 0;
  NodeId b = 0;
  bool present = false;  // present in both sides => toggle is a removal
};

bool SameUnorderedEdge(NodeId a, NodeId b, NodeId u, NodeId v) {
  return (a == u && b == v) || (a == v && b == u);
}

/// Picks an edge slot (a, b) whose state matches on both sides, is not
/// incident to the target, and is not the pair's differing edge — so
/// toggling it on BOTH services keeps the graphs neighbors. Prefers a in
/// N(target): that lands inside the target's 2-hop influence set, forcing
/// the delta-patch (or recompute) + re-freeze machinery the post-mutation
/// path exists to audit (a mutation outside the influence set would only
/// exercise the kept-entry path and the ratchet).
std::optional<CommonToggle> ChooseCommonToggle(const NeighboringPair& pair,
                                               NodeId target) {
  const CsrGraph& base = pair.base;
  const CsrGraph& nb = pair.neighbor;
  const NodeId n = base.num_nodes();
  auto eligible = [&](NodeId a, NodeId b) -> std::optional<CommonToggle> {
    if (a == b || a == target || b == target) return std::nullopt;
    if (pair.kind != NeighboringPair::Kind::kNodeRewired &&
        SameUnorderedEdge(a, b, pair.u, pair.v)) {
      return std::nullopt;
    }
    const bool in_base = base.HasEdge(a, b);
    if (in_base != nb.HasEdge(a, b)) return std::nullopt;
    if (!base.directed() && in_base != nb.HasEdge(b, a)) return std::nullopt;
    return CommonToggle{a, b, in_base};
  };
  for (NodeId a : base.OutNeighbors(target)) {
    for (NodeId b = 0; b < n; ++b) {
      if (auto toggle = eligible(a, b)) return toggle;
    }
  }
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (auto toggle = eligible(a, b)) return toggle;
    }
  }
  return std::nullopt;
}

/// The one place audit-side ServiceOptions are built: every driver
/// (per-path, cold per-trial, under-mutation) must configure the audited
/// services identically — privacy model, degree cap, and the
/// uncap_projection trip-wire included — or the audit would measure a
/// service nobody deploys.
ServiceOptions MakeAuditServiceOptions(const ServiceAuditOptions& options,
                                       size_t num_shards) {
  ServiceOptions service_options;
  service_options.release_epsilon = options.release_epsilon;
  service_options.per_user_budget = options.release_epsilon;
  service_options.num_shards = num_shards;
  service_options.seed = options.seed;
  service_options.privacy_model = options.privacy_model;
  service_options.degree_cap = options.degree_cap;
  service_options.uncap_projection = options.uncap_projection;
  return service_options;
}

uint64_t DeriveSeed(uint64_t root, uint64_t path, uint64_t side) {
  SplitMix64 mixer(root ^ (path * 0x9e3779b97f4a7c15ULL));
  mixer.Next();
  for (uint64_t i = 0; i <= side; ++i) mixer.Next();
  return mixer.Next() ^ (side + 1);
}

/// DeriveSeed path id for the under-mutation audit (0–3 are the
/// ServeAuditPath values; sides 0/1 = measurement streams, side 2 = the
/// mirrored mutator's toggle/churn streams).
constexpr uint64_t kMutationPathId = 4;

/// DeriveSeed path id for the under-faults audit (sides 0/1 = measurement
/// streams).
constexpr uint64_t kFaultPathId = 5;

/// DeriveSeed path id for the across-recovery audit (sides 0/1 =
/// measurement streams; each stream spans the crash boundary — the
/// recovered half continues where the pre-crash half stopped, identically
/// on both sides).
constexpr uint64_t kRecoveryPathId = 6;

/// One serve trial of the configured shape, recorded into `counts`
/// (single) or `reduction` (list).
Status RecordShapeTrial(RecommendationService& service, NodeId target,
                        ServeAuditShape shape, size_t list_k, Rng& rng,
                        std::map<NodeId, uint64_t>& counts,
                        ListOutcomeReduction& reduction) {
  if (shape == ServeAuditShape::kSingle) {
    PRIVREC_ASSIGN_OR_RETURN(NodeId outcome,
                             service.ServeForAudit(target, rng));
    ++counts[outcome];
    return Status::OK();
  }
  PRIVREC_ASSIGN_OR_RETURN(TopKResult list,
                           service.ServeListForAudit(target, list_k, rng));
  std::vector<uint32_t> items;
  items.reserve(list.picks.size());
  for (const Recommendation& pick : list.picks) {
    items.push_back(static_cast<uint32_t>(pick.node));
  }
  reduction.AddList(items);
  return Status::OK();
}

/// Builds the per-path estimate from whichever recorder the shape filled.
PathEpsilonEstimate EstimateShape(
    const std::string& path_name, ServeAuditShape shape,
    const std::map<NodeId, uint64_t>& base_counts,
    const std::map<NodeId, uint64_t>& neighbor_counts,
    const ListOutcomeReduction& base_reduction,
    const ListOutcomeReduction& neighbor_reduction, uint64_t trials,
    double confidence, size_t bonferroni_override) {
  if (shape == ServeAuditShape::kSingle) {
    return EstimateEpsilonFromCounts(path_name, base_counts, neighbor_counts,
                                     trials, confidence, bonferroni_override);
  }
  const EpsilonCellEstimate cells = EstimateEpsilonFromListReductions(
      base_reduction, neighbor_reduction, confidence, bonferroni_override);
  PathEpsilonEstimate estimate;
  estimate.path = path_name;
  estimate.trials_per_side = trials;
  estimate.epsilon_hat = cells.epsilon_hat;
  estimate.epsilon_lower_bound = cells.epsilon_lower_bound;
  // Cell ids carry (position | item) or a sequence hash; the low 32 bits
  // are the item for marginal cells, which is the most useful NodeId-sized
  // projection for dashboards.
  estimate.worst_outcome = static_cast<NodeId>(cells.worst_cell);
  estimate.worst_z = cells.worst_z;
  estimate.bonferroni_cells = cells.bonferroni_cells;
  return estimate;
}

/// Largest-remainder apportionment of `total` trials across weights
/// (deterministic: ties break to the lowest index). Zero/negative weight
/// vectors fall back to uniform.
std::vector<uint64_t> Apportion(uint64_t total, std::vector<double> weights) {
  const size_t n = weights.size();
  PRIVREC_CHECK_GT(n, 0u);
  double sum = 0;
  for (double w : weights) sum += std::max(w, 0.0);
  if (sum <= 0) {
    weights.assign(n, 1.0);
    sum = static_cast<double>(n);
  }
  std::vector<uint64_t> alloc(n, 0);
  std::vector<std::pair<double, size_t>> fractions;
  fractions.reserve(n);
  uint64_t assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    const double quota =
        static_cast<double>(total) * std::max(weights[i], 0.0) / sum;
    alloc[i] = static_cast<uint64_t>(quota);
    assigned += alloc[i];
    fractions.emplace_back(quota - static_cast<double>(alloc[i]), i);
  }
  std::sort(fractions.begin(), fractions.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (size_t i = 0; assigned < total; ++i) {
    ++alloc[fractions[i % n].second];
    ++assigned;
  }
  return alloc;
}

/// One audited (path, pair) trial engine, both sides. Construction + Init
/// reproduce the exact service arrangement the one-shot audit used
/// (fresh graphs per path, warm-up discard, post-mutation toggle), but the
/// trial loop is callable in slices so the adaptive allocator can keep
/// spending on the path whose intervals are widest — RNG streams and
/// service state persist across slices, so (seed → transcript) stays a
/// pure function no matter how the budget lands.
class PathTrialDriver {
 public:
  PathTrialDriver(const ServiceAuditor::UtilityFactory& factory,
                  const ServiceAuditOptions& options,
                  const NeighboringPair& pair, NodeId target,
                  ServeAuditPath path)
      : factory_(factory),
        options_(options),
        pair_(pair),
        target_(target),
        path_(path) {}

  Status Init() {
    if (path_ == ServeAuditPath::kPostMutation) {
      toggle_ = ChooseCommonToggle(pair_, target_);
      if (!toggle_.has_value()) {
        return Status::FailedPrecondition(
            "no common edge slot available for the post-mutation toggle");
      }
    }
    for (int side = 0; side < 2; ++side) {
      SideState& state = sides_[side];
      const CsrGraph& side_graph = side == 0 ? pair_.base : pair_.neighbor;
      // Each (path, side) owns a fresh dynamic graph: the post-mutation
      // path mutates it, and cross-path state bleed would make the audit
      // depend on path order.
      state.graph = std::make_unique<DynamicGraph>(side_graph);
      const ServiceOptions service_options = MakeAuditServiceOptions(
          options_,
          path_ == ServeAuditPath::kMultiShard ? options_.multi_shard_count
                                               : 1);
      state.rng = Rng(DeriveSeed(options_.seed, static_cast<uint64_t>(path_),
                                 static_cast<uint64_t>(side)));
      if (path_ == ServeAuditPath::kCold) continue;
      state.service = std::make_unique<RecommendationService>(
          state.graph.get(), factory_(), service_options);
      // Warm the cache so the sampled trials sit on the path under audit
      // (the warm-up draw itself is the cold path; discard it).
      PRIVREC_RETURN_NOT_OK(Warmup(state));
      if (path_ == ServeAuditPath::kPostMutation) {
        const Status mutated =
            toggle_->present
                ? state.service->RemoveEdge(toggle_->a, toggle_->b)
                : state.service->AddEdge(toggle_->a, toggle_->b);
        PRIVREC_RETURN_NOT_OK(mutated);
      }
    }
    return Status::OK();
  }

  Status RunTrials(uint64_t n) {
    for (int side = 0; side < 2; ++side) {
      SideState& state = sides_[side];
      for (uint64_t t = 0; t < n; ++t) {
        if (path_ == ServeAuditPath::kCold) {
          RecommendationService service(state.graph.get(), factory_(),
                                        MakeAuditServiceOptions(options_, 1));
          PRIVREC_RETURN_NOT_OK(
              RecordShapeTrial(service, target_, options_.shape,
                               options_.list_k, state.rng, state.counts,
                               state.reduction));
          continue;
        }
        PRIVREC_RETURN_NOT_OK(
            RecordShapeTrial(*state.service, target_, options_.shape,
                             options_.list_k, state.rng, state.counts,
                             state.reduction));
      }
    }
    trials_done_ += n;
    return Status::OK();
  }

  uint64_t trials_done() const { return trials_done_; }

  PathEpsilonEstimate Estimate(double confidence) const {
    return EstimateShape(ServeAuditPathName(path_), options_.shape,
                         sides_[0].counts, sides_[1].counts,
                         sides_[0].reduction, sides_[1].reduction,
                         trials_done_, confidence,
                         options_.bonferroni_cells_override);
  }

 private:
  struct SideState {
    std::unique_ptr<DynamicGraph> graph;
    std::unique_ptr<RecommendationService> service;  // null for cold
    Rng rng{0};
    std::map<NodeId, uint64_t> counts;
    ListOutcomeReduction reduction;
  };

  Status Warmup(SideState& state) {
    if (options_.shape == ServeAuditShape::kSingle) {
      return state.service->ServeForAudit(target_, state.rng).status();
    }
    return state.service
        ->ServeListForAudit(target_, options_.list_k, state.rng)
        .status();
  }

  const ServiceAuditor::UtilityFactory& factory_;
  const ServiceAuditOptions& options_;
  const NeighboringPair& pair_;
  NodeId target_;
  ServeAuditPath path_;
  std::optional<CommonToggle> toggle_;
  SideState sides_[2];
  uint64_t trials_done_ = 0;
};

ServiceStats SumStats(const ServiceStats& a, const ServiceStats& b) {
  ServiceStats sum = a;
  sum.served += b.served;
  sum.refused_budget += b.refused_budget;
  sum.cache_hits += b.cache_hits;
  sum.cache_misses += b.cache_misses;
  sum.cache_invalidations += b.cache_invalidations;
  sum.sampler_reuses += b.sampler_reuses;
  sum.audit_serves += b.audit_serves;
  sum.audit_list_serves += b.audit_list_serves;
  sum.delta_kept += b.delta_kept;
  sum.delta_patched += b.delta_patched;
  sum.delta_recomputed += b.delta_recomputed;
  sum.journal_fallbacks += b.journal_fallbacks;
  sum.doomed_evictions += b.doomed_evictions;
  sum.filter_dropped_deltas += b.filter_dropped_deltas;
  sum.repair_ns += b.repair_ns;
  sum.refused_window += b.refused_window;
  sum.degraded_serves += b.degraded_serves;
  sum.window_refreshes += b.window_refreshes;
  sum.shed_overload += b.shed_overload;
  sum.retries += b.retries;
  sum.stale_fallback_serves += b.stale_fallback_serves;
  sum.injected_faults += b.injected_faults;
  return sum;
}

}  // namespace

PathEpsilonEstimate EstimateEpsilonFromCounts(
    const std::string& path_name,
    const std::map<NodeId, uint64_t>& base_counts,
    const std::map<NodeId, uint64_t>& neighbor_counts, uint64_t trials,
    double confidence, size_t bonferroni_override) {
  // Thin adapter over the shared outcome-cell kit (common/statistics.h):
  // NodeId outcomes are already 64-bit-safe cell ids, and the kit computes
  // the identical per-interval confidence 1 - (1-γ)/(2m), half-count
  // floors, and CP-box certified bounds this function always used.
  OutcomeCellCounts base_cells;
  OutcomeCellCounts neighbor_cells;
  for (const auto& [node, count] : base_counts) {
    base_cells[static_cast<uint64_t>(node)] = count;
  }
  for (const auto& [node, count] : neighbor_counts) {
    neighbor_cells[static_cast<uint64_t>(node)] = count;
  }
  const EpsilonCellEstimate cells = EstimateEpsilonFromOutcomeCells(
      base_cells, neighbor_cells, trials, confidence, bonferroni_override,
      /*include_complements=*/false);
  PathEpsilonEstimate estimate;
  estimate.path = path_name;
  estimate.trials_per_side = trials;
  estimate.epsilon_hat = cells.epsilon_hat;
  estimate.epsilon_lower_bound = cells.epsilon_lower_bound;
  estimate.worst_outcome = static_cast<NodeId>(cells.worst_cell);
  estimate.worst_z = cells.worst_z;
  estimate.bonferroni_cells = cells.bonferroni_cells;
  return estimate;
}

const char* ServeAuditPathName(ServeAuditPath path) {
  switch (path) {
    case ServeAuditPath::kCold:
      return "cold";
    case ServeAuditPath::kCacheHit:
      return "cache_hit";
    case ServeAuditPath::kPostMutation:
      return "post_mutation";
    case ServeAuditPath::kMultiShard:
      return "multi_shard";
  }
  return "unknown";
}

ServiceAuditor::ServiceAuditor(UtilityFactory utility_factory,
                               ServiceAuditOptions options)
    : utility_factory_(std::move(utility_factory)),
      options_(std::move(options)) {
  PRIVREC_CHECK(utility_factory_ != nullptr);
  PRIVREC_CHECK_GT(options_.release_epsilon, 0.0);
  // Uniform mode draws trials_per_side per path; a total_trial_budget
  // supersedes it (the adaptive loop ignores trials_per_side entirely).
  PRIVREC_CHECK(options_.trials_per_side > 0 ||
                options_.total_trial_budget > 0);
  PRIVREC_CHECK_GT(options_.confidence, 0.0);
  PRIVREC_CHECK(options_.confidence < 1.0);
  if (options_.paths.empty()) {
    options_.paths.assign(std::begin(kAllServeAuditPaths),
                          std::end(kAllServeAuditPaths));
  }
}

Result<DpAuditResult> ServiceAuditor::AuditPair(const NeighboringPair& pair,
                                                NodeId target) const {
  return AuditPairAtConfidence(pair, target, options_.confidence);
}

Result<DpAuditResult> ServiceAuditor::AuditPairAtConfidence(
    const NeighboringPair& pair, NodeId target, double confidence) const {
  if (pair.base.num_nodes() != pair.neighbor.num_nodes() ||
      pair.base.directed() != pair.neighbor.directed()) {
    return Status::InvalidArgument(
        "pair sides disagree on node count or direction");
  }
  if (target >= pair.base.num_nodes()) {
    return Status::InvalidArgument("target out of range");
  }

  DpAuditResult result;
  result.pairs_checked = 1;
  result.worst_edge_u = pair.u;
  result.worst_edge_v = pair.v;

  std::vector<std::unique_ptr<PathTrialDriver>> drivers;
  drivers.reserve(options_.paths.size());
  for (ServeAuditPath path : options_.paths) {
    drivers.push_back(std::make_unique<PathTrialDriver>(
        utility_factory_, options_, pair, target, path));
    PRIVREC_RETURN_NOT_OK(drivers.back()->Init());
  }

  if (options_.total_trial_budget == 0) {
    // Uniform allocation: every path gets trials_per_side, matching the
    // pre-adaptive audit transcript exactly.
    for (auto& driver : drivers) {
      PRIVREC_RETURN_NOT_OK(driver->RunTrials(options_.trials_per_side));
    }
  } else {
    // Adaptive allocation: spend the fixed total budget round by round,
    // steering each round's slice toward the paths whose certification
    // gap (ε̂ − certified bound) is widest. The gap IS the interval
    // width the CP box leaves unresolved, so trials land where they
    // shrink uncertainty fastest; round 1 has no estimates yet and
    // splits uniformly. Total spend is exactly the budget (apportionment
    // is exact), and determinism holds because each driver's streams
    // persist across rounds.
    const uint64_t budget = options_.total_trial_budget;
    const uint64_t rounds = std::max<uint64_t>(1, options_.adaptive_rounds);
    for (uint64_t round = 0; round < rounds; ++round) {
      const uint64_t slice =
          budget / rounds + (round < budget % rounds ? 1 : 0);
      if (slice == 0) continue;
      std::vector<double> widths(drivers.size(), 1.0);
      if (round > 0) {
        for (size_t i = 0; i < drivers.size(); ++i) {
          const PathEpsilonEstimate estimate =
              drivers[i]->Estimate(confidence);
          widths[i] = estimate.epsilon_hat - estimate.epsilon_lower_bound;
        }
      }
      const std::vector<uint64_t> alloc = Apportion(slice, widths);
      for (size_t i = 0; i < drivers.size(); ++i) {
        if (alloc[i] > 0) PRIVREC_RETURN_NOT_OK(drivers[i]->RunTrials(alloc[i]));
      }
    }
  }

  for (auto& driver : drivers) {
    PathEpsilonEstimate estimate = driver->Estimate(confidence);
    result.max_abs_log_ratio =
        std::max(result.max_abs_log_ratio, estimate.epsilon_hat);
    result.per_path.push_back(std::move(estimate));
  }
  return result;
}

Result<DpAuditResult> ServiceAuditor::AuditPairUnderMutation(
    const NeighboringPair& pair, NodeId target,
    const MutationAuditOptions& mutation, ServiceStats* stats_out) const {
  if (pair.base.num_nodes() != pair.neighbor.num_nodes() ||
      pair.base.directed() != pair.neighbor.directed()) {
    return Status::InvalidArgument(
        "pair sides disagree on node count or direction");
  }
  if (target >= pair.base.num_nodes()) {
    return Status::InvalidArgument("target out of range");
  }
  const uint64_t rounds = std::max<uint64_t>(1, mutation.rounds);
  const uint64_t trials_per_round = options_.trials_per_side / rounds;
  if (trials_per_round == 0) {
    return Status::InvalidArgument(
        "trials_per_side must cover at least one trial per round");
  }

  DynamicGraph graphs[2] = {DynamicGraph(pair.base),
                            DynamicGraph(pair.neighbor)};
  if (mutation.journal_capacity > 0) {
    graphs[0].SetJournalCapacity(mutation.journal_capacity);
    graphs[1].SetJournalCapacity(mutation.journal_capacity);
  }
  // Two shards: the audited target and the churn users stripe across
  // shards, so repair, snapshot re-pinning, and sensitivity memos all run
  // under real shard concurrency — while keeping per-shard state small
  // enough that every mutation round actually touches it.
  const ServiceOptions service_options = MakeAuditServiceOptions(options_, 2);
  RecommendationService base_service(&graphs[0], utility_factory_(),
                                     service_options);
  RecommendationService neighbor_service(&graphs[1], utility_factory_(),
                                         service_options);
  RecommendationService* services[2] = {&base_service, &neighbor_service};
  Rng rngs[2] = {Rng(DeriveSeed(options_.seed, kMutationPathId, 0)),
                 Rng(DeriveSeed(options_.seed, kMutationPathId, 1))};
  // Warm both sides so round 1's trials already sit on the cached-entry
  // path that each round's mutations will then have to repair.
  for (int side = 0; side < 2; ++side) {
    const Status warm =
        options_.shape == ServeAuditShape::kSingle
            ? services[side]->ServeForAudit(target, rngs[side]).status()
            : services[side]
                  ->ServeListForAudit(target, options_.list_k, rngs[side])
                  .status();
    PRIVREC_RETURN_NOT_OK(warm);
  }

  MirroredMutatorOptions mutator_options;
  mutator_options.num_threads = mutation.mutator_threads;
  mutator_options.toggles_per_thread = mutation.toggles_per_thread_per_round;
  mutator_options.churn_serves_per_thread =
      mutation.churn_serves_per_thread_per_round;
  mutator_options.seed = DeriveSeed(options_.seed, kMutationPathId, 2);
  MirroredMutator mutator(&base_service, &neighbor_service, pair.base, target,
                          pair.u, pair.v, mutator_options);

  // Outcome cells are keyed by (round, outcome), not outcome alone. The
  // round index is public (the auditor controls the schedule), and within
  // a round the two sides sit in identical-except-toggle states, so every
  // (round, outcome) cell's probability ratio is e^ε-bounded for an
  // honest service. Pooling rounds instead would average the per-state
  // ratios — a mis-calibrated service whose leak peaks in some graph
  // states would hide behind the states where it happens not to leak.
  OutcomeCellCounts round_cells[2];
  std::vector<ListOutcomeReduction> round_reductions[2];
  for (uint64_t round = 0; round < rounds; ++round) {
    // Concurrent phase: identical toggle streams + churn on both sides.
    // RunPhase joins its workers, so the measurement slice below runs
    // against a settled, deterministic graph state.
    mutator.RunPhase();
    for (int side = 0; side < 2; ++side) {
      if (options_.shape == ServeAuditShape::kList) {
        round_reductions[side].emplace_back();
      }
      for (uint64_t t = 0; t < trials_per_round; ++t) {
        if (options_.shape == ServeAuditShape::kSingle) {
          PRIVREC_ASSIGN_OR_RETURN(
              NodeId outcome,
              services[side]->ServeForAudit(target, rngs[side]));
          ++round_cells[side][((round + 1) << 32) |
                              static_cast<uint64_t>(outcome)];
        } else {
          std::map<NodeId, uint64_t> unused;
          PRIVREC_RETURN_NOT_OK(RecordShapeTrial(
              *services[side], target, options_.shape, options_.list_k,
              rngs[side], unused, round_reductions[side].back()));
        }
      }
    }
  }

  DpAuditResult result;
  result.pairs_checked = 1;
  result.worst_edge_u = pair.u;
  result.worst_edge_v = pair.v;
  PathEpsilonEstimate estimate;
  estimate.path = "under_mutation";
  estimate.trials_per_side = trials_per_round * rounds;
  if (options_.shape == ServeAuditShape::kSingle) {
    const EpsilonCellEstimate cells = EstimateEpsilonFromOutcomeCells(
        round_cells[0], round_cells[1], trials_per_round * rounds,
        options_.confidence, options_.bonferroni_cells_override,
        /*include_complements=*/false);
    estimate.epsilon_hat = cells.epsilon_hat;
    estimate.epsilon_lower_bound = cells.epsilon_lower_bound;
    estimate.worst_outcome = static_cast<NodeId>(cells.worst_cell);
    estimate.worst_z = cells.worst_z;
    estimate.bonferroni_cells = cells.bonferroni_cells;
  } else {
    // Per-round list reductions share one Bonferroni budget: first total
    // the cells every round contributes, then re-estimate each round at
    // that shared correction and keep the worst.
    size_t total_cells = options_.bonferroni_cells_override;
    if (total_cells == 0) {
      for (uint64_t round = 0; round < rounds; ++round) {
        total_cells += EstimateEpsilonFromListReductions(
                           round_reductions[0][round],
                           round_reductions[1][round], options_.confidence)
                           .bonferroni_cells;
      }
    }
    for (uint64_t round = 0; round < rounds; ++round) {
      const EpsilonCellEstimate cells = EstimateEpsilonFromListReductions(
          round_reductions[0][round], round_reductions[1][round],
          options_.confidence, total_cells);
      if (cells.epsilon_hat > estimate.epsilon_hat) {
        estimate.epsilon_hat = cells.epsilon_hat;
        estimate.worst_outcome = static_cast<NodeId>(cells.worst_cell);
      }
      estimate.epsilon_lower_bound =
          std::max(estimate.epsilon_lower_bound, cells.epsilon_lower_bound);
      estimate.worst_z = std::max(estimate.worst_z, cells.worst_z);
    }
    estimate.bonferroni_cells = total_cells;
  }
  result.max_abs_log_ratio = estimate.epsilon_hat;
  result.per_path.push_back(std::move(estimate));
  if (stats_out != nullptr) {
    *stats_out = SumStats(base_service.stats(), neighbor_service.stats());
  }
  return result;
}

Result<DpAuditResult> ServiceAuditor::AuditPairUnderFaults(
    const NeighboringPair& pair, NodeId target,
    const FaultAuditOptions& faults, ServiceStats* stats_out) const {
  if (pair.base.num_nodes() != pair.neighbor.num_nodes() ||
      pair.base.directed() != pair.neighbor.directed()) {
    return Status::InvalidArgument(
        "pair sides disagree on node count or direction");
  }
  if (target >= pair.base.num_nodes()) {
    return Status::InvalidArgument("target out of range");
  }
  const uint64_t trials = std::max<uint64_t>(1, options_.trials_per_side);

  DynamicGraph graphs[2] = {DynamicGraph(pair.base),
                            DynamicGraph(pair.neighbor)};
  if (faults.journal_capacity > 0) {
    graphs[0].SetJournalCapacity(faults.journal_capacity);
    graphs[1].SetJournalCapacity(faults.journal_capacity);
  }
  // One injector per side: identical plans driven by the mirrored call
  // sequence below fire identically, so the two sides stay in lockstep
  // fault states (equal fire counts are asserted at the end).
  FaultInjector injectors[2];
  std::unique_ptr<RecommendationService> services[2];
  Rng rngs[2] = {Rng(DeriveSeed(options_.seed, kFaultPathId, 0)),
                 Rng(DeriveSeed(options_.seed, kFaultPathId, 1))};
  for (int side = 0; side < 2; ++side) {
    ServiceOptions service_options = MakeAuditServiceOptions(options_, 2);
    service_options.fault_injector = &injectors[side];
    service_options.retry = faults.retry;
    services[side] = std::make_unique<RecommendationService>(
        &graphs[side], utility_factory_(), service_options);
  }
  // Warm both sides BEFORE arming the plan: the measured trials then sit
  // on the cached-entry path, which is the path the injected faults
  // (repair failure, journal compaction, patch failures) actually bend.
  for (int side = 0; side < 2; ++side) {
    const Status warm =
        options_.shape == ServeAuditShape::kSingle
            ? services[side]->ServeForAudit(target, rngs[side]).status()
            : services[side]
                  ->ServeListForAudit(target, options_.list_k, rngs[side])
                  .status();
    PRIVREC_RETURN_NOT_OK(warm);
  }
  injectors[0].Install(faults.plan);
  injectors[1].Install(faults.plan);

  std::optional<CommonToggle> toggle;
  if (faults.mutations_between_trials > 0) {
    toggle = ChooseCommonToggle(pair, target);
    if (!toggle.has_value()) {
      return Status::FailedPrecondition(
          "no common edge slot available for the under-faults toggles");
    }
  }
  bool present = toggle.has_value() && toggle->present;

  // Outcome cells are keyed by (parity, outcome): the common slot cycles
  // the graph state with period 2, the parity schedule is public, and at
  // equal parity the two sides are neighbors — so each cell of an honest
  // service is e^ε-bounded, exactly the under-mutation argument with the
  // round index collapsed to the toggle parity.
  OutcomeCellCounts parity_cells[2];
  ListOutcomeReduction parity_reductions[2][2];  // [side][parity]
  uint64_t parity_trials[2] = {0, 0};
  for (uint64_t t = 0; t < trials; ++t) {
    for (uint64_t m = 0; m < faults.mutations_between_trials; ++m) {
      for (int side = 0; side < 2; ++side) {
        const Status mutated =
            present ? services[side]->RemoveEdge(toggle->a, toggle->b)
                    : services[side]->AddEdge(toggle->a, toggle->b);
        PRIVREC_RETURN_NOT_OK(mutated);
      }
      present = !present;
    }
    const uint64_t parity =
        (toggle.has_value() && present != toggle->present) ? 1 : 0;
    ++parity_trials[parity];
    for (int side = 0; side < 2; ++side) {
      if (options_.shape == ServeAuditShape::kSingle) {
        PRIVREC_ASSIGN_OR_RETURN(
            NodeId outcome, services[side]->ServeForAudit(target, rngs[side]));
        ++parity_cells[side][((parity + 1) << 32) |
                             static_cast<uint64_t>(outcome)];
      } else {
        std::map<NodeId, uint64_t> unused;
        PRIVREC_RETURN_NOT_OK(RecordShapeTrial(
            *services[side], target, options_.shape, options_.list_k,
            rngs[side], unused, parity_reductions[side][parity]));
      }
    }
  }
  // The determinism contract made observable: mirrored plans + mirrored
  // drive sequences must have produced identical fire counts.
  PRIVREC_CHECK_EQ(injectors[0].total_fires(), injectors[1].total_fires());

  DpAuditResult result;
  result.pairs_checked = 1;
  result.worst_edge_u = pair.u;
  result.worst_edge_v = pair.v;
  PathEpsilonEstimate estimate;
  estimate.path = "under_faults";
  estimate.trials_per_side = trials;
  if (options_.shape == ServeAuditShape::kSingle) {
    const EpsilonCellEstimate cells = EstimateEpsilonFromOutcomeCells(
        parity_cells[0], parity_cells[1], trials, options_.confidence,
        options_.bonferroni_cells_override,
        /*include_complements=*/false);
    estimate.epsilon_hat = cells.epsilon_hat;
    estimate.epsilon_lower_bound = cells.epsilon_lower_bound;
    estimate.worst_outcome = static_cast<NodeId>(cells.worst_cell);
    estimate.worst_z = cells.worst_z;
    estimate.bonferroni_cells = cells.bonferroni_cells;
  } else {
    // Per-parity list reductions share one Bonferroni budget, mirroring
    // the under-mutation per-round merge.
    size_t total_cells = options_.bonferroni_cells_override;
    if (total_cells == 0) {
      for (int parity = 0; parity < 2; ++parity) {
        if (parity_trials[parity] == 0) continue;
        total_cells += EstimateEpsilonFromListReductions(
                           parity_reductions[0][parity],
                           parity_reductions[1][parity], options_.confidence)
                           .bonferroni_cells;
      }
    }
    for (int parity = 0; parity < 2; ++parity) {
      if (parity_trials[parity] == 0) continue;
      const EpsilonCellEstimate cells = EstimateEpsilonFromListReductions(
          parity_reductions[0][parity], parity_reductions[1][parity],
          options_.confidence, total_cells);
      if (cells.epsilon_hat > estimate.epsilon_hat) {
        estimate.epsilon_hat = cells.epsilon_hat;
        estimate.worst_outcome = static_cast<NodeId>(cells.worst_cell);
      }
      estimate.epsilon_lower_bound =
          std::max(estimate.epsilon_lower_bound, cells.epsilon_lower_bound);
      estimate.worst_z = std::max(estimate.worst_z, cells.worst_z);
    }
    estimate.bonferroni_cells = total_cells;
  }
  result.max_abs_log_ratio = estimate.epsilon_hat;
  result.per_path.push_back(std::move(estimate));
  if (stats_out != nullptr) {
    *stats_out = SumStats(services[0]->stats(), services[1]->stats());
  }
  return result;
}

Result<DpAuditResult> ServiceAuditor::AuditAcrossRecovery(
    const NeighboringPair& pair, NodeId target,
    const RecoveryAuditOptions& recovery, ServiceStats* stats_out) const {
  if (options_.shape != ServeAuditShape::kSingle) {
    return Status::InvalidArgument(
        "AuditAcrossRecovery supports ServeAuditShape::kSingle only");
  }
  if (recovery.state_dir.empty()) {
    return Status::InvalidArgument(
        "RecoveryAuditOptions::state_dir is required");
  }
  if (pair.base.num_nodes() != pair.neighbor.num_nodes() ||
      pair.base.directed() != pair.neighbor.directed()) {
    return Status::InvalidArgument(
        "pair sides disagree on node count or direction");
  }
  if (target >= pair.base.num_nodes()) {
    return Status::InvalidArgument("target out of range");
  }
  // At least one trial on each side of the crash boundary — the boundary
  // IS the path under audit.
  const uint64_t trials = std::max<uint64_t>(2, options_.trials_per_side);
  const uint64_t phase0_trials = trials / 2;

  // Per-side durable state, wiped on entry so a fixed seed reproduces the
  // audit byte for byte.
  std::string side_dirs[2];
  for (int side = 0; side < 2; ++side) {
    side_dirs[side] = recovery.state_dir + "/side" + std::to_string(side);
    std::error_code ec;
    std::filesystem::remove_all(side_dirs[side], ec);
    std::filesystem::create_directories(side_dirs[side], ec);
    if (ec) {
      return Status::IOError("cannot create audit state dir '" +
                             side_dirs[side] + "'");
    }
  }
  auto wal_dir = [&](int side) { return side_dirs[side] + "/wal"; };
  auto ledger_dir = [&](int side) { return side_dirs[side] + "/ledger"; };
  auto ckpt_dir = [&](int side) { return side_dirs[side] + "/ckpt"; };

  // Headroom for the charged pre-crash traffic: the audit serves
  // themselves stay budget-neutral, but the charged serves must fit.
  const double per_user_budget =
      options_.release_epsilon *
      static_cast<double>(recovery.charged_serves_per_side + 1);

  FaultInjector injectors[2];
  std::unique_ptr<WriteAheadLog> wals[2];
  std::unique_ptr<BudgetLedger> ledgers[2];
  std::unique_ptr<DynamicGraph> graphs[2];
  std::unique_ptr<RecommendationService> services[2];
  Rng rngs[2] = {Rng(DeriveSeed(options_.seed, kRecoveryPathId, 0)),
                 Rng(DeriveSeed(options_.seed, kRecoveryPathId, 1))};

  auto build_service = [&](int side) -> Status {
    ServiceOptions service_options = MakeAuditServiceOptions(options_, 2);
    service_options.per_user_budget = per_user_budget;
    service_options.fault_injector = &injectors[side];
    service_options.retry = recovery.retry;
    service_options.wal = wals[side].get();
    service_options.budget_ledger = ledgers[side].get();
    services[side] = std::make_unique<RecommendationService>(
        graphs[side].get(), utility_factory_(), service_options);
    return Status::OK();
  };
  for (int side = 0; side < 2; ++side) {
    graphs[side] = std::make_unique<DynamicGraph>(side == 0 ? pair.base
                                                            : pair.neighbor);
    if (recovery.journal_capacity > 0) {
      graphs[side]->SetJournalCapacity(recovery.journal_capacity);
    }
    WalOptions wal_options;
    wal_options.fault_injector = &injectors[side];
    PRIVREC_ASSIGN_OR_RETURN(wals[side],
                             WriteAheadLog::Open(wal_dir(side), wal_options));
    LedgerOptions ledger_options;
    ledger_options.fault_injector = &injectors[side];
    PRIVREC_ASSIGN_OR_RETURN(
        ledgers[side], BudgetLedger::Open(ledger_dir(side), ledger_options));
    PRIVREC_RETURN_NOT_OK(build_service(side));
    // Initial checkpoint BEFORE the plan is armed: recovery always has an
    // authoritative manifest to start from, whatever the plan breaks.
    PRIVREC_RETURN_NOT_OK(services[side]->SaveCheckpoint(ckpt_dir(side)));
    // Warm before arming, mirroring AuditPairUnderFaults: measured trials
    // sit on the cached-entry path.
    PRIVREC_RETURN_NOT_OK(
        services[side]->ServeForAudit(target, rngs[side]).status());
  }
  injectors[0].Install(recovery.plan);
  injectors[1].Install(recovery.plan);

  // Charged pre-crash traffic: the serves the durable ledger must
  // survive. Mirrored; only identical ok-ness is required (a refusal is
  // budget-neutral on both sides).
  for (uint64_t i = 0; i < recovery.charged_serves_per_side; ++i) {
    const Status s0 =
        services[0]->ServeRecommendation(target, rngs[0]).status();
    const Status s1 =
        services[1]->ServeRecommendation(target, rngs[1]).status();
    if (s0.ok() != s1.ok()) {
      return Status::Internal("mirrored charged serves diverged: '" +
                              s0.message() + "' vs '" + s1.message() + "'");
    }
  }
  const double pre_crash_charged[2] = {
      per_user_budget - services[0]->RemainingBudget(target),
      per_user_budget - services[1]->RemainingBudget(target)};

  std::optional<CommonToggle> toggle;
  if (recovery.mutations_between_trials > 0) {
    toggle = ChooseCommonToggle(pair, target);
    if (!toggle.has_value()) {
      return Status::FailedPrecondition(
          "no common edge slot available for the across-recovery toggles");
    }
  }
  bool present = toggle.has_value() && toggle->present;
  // A torn WAL rejects mutations from then on; the schedule freezes
  // SYMMETRICALLY (equal plans fire equally), keeping the parity cells
  // sound. Divergent ok-ness is the one impossible state worth failing on.
  bool mutations_alive = toggle.has_value();
  OutcomeCellCounts parity_cells[2];
  auto run_trials = [&](uint64_t count) -> Status {
    for (uint64_t t = 0; t < count; ++t) {
      if (mutations_alive) {
        for (uint64_t m = 0; m < recovery.mutations_between_trials; ++m) {
          const Status m0 = present
                                ? services[0]->RemoveEdge(toggle->a, toggle->b)
                                : services[0]->AddEdge(toggle->a, toggle->b);
          const Status m1 = present
                                ? services[1]->RemoveEdge(toggle->a, toggle->b)
                                : services[1]->AddEdge(toggle->a, toggle->b);
          if (m0.ok() != m1.ok()) {
            return Status::Internal("mirrored toggles diverged: '" +
                                    m0.message() + "' vs '" + m1.message() +
                                    "'");
          }
          if (!m0.ok()) {
            mutations_alive = false;
            break;
          }
          present = !present;
        }
      }
      const uint64_t parity =
          (toggle.has_value() && present != toggle->present) ? 1 : 0;
      for (int side = 0; side < 2; ++side) {
        PRIVREC_ASSIGN_OR_RETURN(
            NodeId outcome, services[side]->ServeForAudit(target, rngs[side]));
        ++parity_cells[side][((parity + 1) << 32) |
                             static_cast<uint64_t>(outcome)];
      }
    }
    return Status::OK();
  };
  PRIVREC_RETURN_NOT_OK(run_trials(phase0_trials));

  // Mid-audit checkpoint attempt, faults still armed: under
  // kCheckpointCrash this dies before the manifest commit (on both sides
  // identically) and the initial checkpoint stays authoritative.
  {
    const Status c0 = services[0]->SaveCheckpoint(ckpt_dir(0));
    const Status c1 = services[1]->SaveCheckpoint(ckpt_dir(1));
    if (c0.ok() != c1.ok()) {
      return Status::Internal("mirrored checkpoints diverged: '" +
                              c0.message() + "' vs '" + c1.message() + "'");
    }
  }

  // ---- The crash. ----
  PRIVREC_CHECK_EQ(injectors[0].total_fires(), injectors[1].total_fires());
  const ServiceStats pre_crash_stats =
      SumStats(services[0]->stats(), services[1]->stats());
  for (int side = 0; side < 2; ++side) {
    wals[side]->SimulateCrash();
    ledgers[side]->SimulateCrash();
  }
  // Teardown order mirrors ownership: services reference graphs, graphs
  // reference WALs.
  for (int side = 0; side < 2; ++side) services[side].reset();
  for (int side = 0; side < 2; ++side) graphs[side].reset();
  for (int side = 0; side < 2; ++side) {
    wals[side].reset();
    ledgers[side].reset();
  }
  // Post-recovery runs clean; the fire counts above are already folded
  // into pre_crash_stats.
  injectors[0].Clear();
  injectors[1].Clear();

  // ---- Recovery. ----
  for (int side = 0; side < 2; ++side) {
    PRIVREC_ASSIGN_OR_RETURN(wals[side], WriteAheadLog::Open(wal_dir(side)));
    RecoveryReport report;
    PRIVREC_ASSIGN_OR_RETURN(
        graphs[side], RecoverGraph(ckpt_dir(side), *wals[side], &report));
    if (recovery.journal_capacity > 0) {
      graphs[side]->SetJournalCapacity(recovery.journal_capacity);
    }
    PRIVREC_ASSIGN_OR_RETURN(ledgers[side],
                             BudgetLedger::Open(ledger_dir(side)));
    const std::unordered_map<NodeId, double> recovered_spend =
        ledgers[side]->SpentByUser();
    auto it = recovered_spend.find(target);
    const double recovered = it == recovered_spend.end() ? 0.0 : it->second;
    if (recovered + 1e-9 < pre_crash_charged[side]) {
      // The one unrecoverable state: durable spend below what was charged
      // in memory means a charge was lost (torn ledger append). Refusing
      // is the only sound posture — certifying would launder the loss.
      return Status::FailedPrecondition(
          "budget ledger unrecoverable on side " + std::to_string(side) +
          ": recovered spend " + std::to_string(recovered) +
          " < pre-crash charged " +
          std::to_string(pre_crash_charged[side]) +
          " — refusing to certify across this recovery");
    }
    PRIVREC_RETURN_NOT_OK(build_service(side));
    services[side]->ImportSpentBudgets(recovered_spend);
    PRIVREC_RETURN_NOT_OK(
        services[side]->ServeForAudit(target, rngs[side]).status());
  }
  // Re-derive the parity anchor from the RECOVERED graphs: recovery is
  // exact, so both sides must agree — and agree with the pre-crash
  // schedule.
  if (toggle.has_value()) {
    const bool p0 = graphs[0]->VersionedSnapshot().graph->HasEdge(toggle->a,
                                                                  toggle->b);
    const bool p1 = graphs[1]->VersionedSnapshot().graph->HasEdge(toggle->a,
                                                                  toggle->b);
    if (p0 != p1) {
      return Status::Internal(
          "recovered sides disagree on the common toggle slot");
    }
    if (p0 != present) {
      return Status::Internal(
          "recovered graph state disagrees with the pre-crash toggle "
          "schedule");
    }
    mutations_alive = true;  // fresh WAL: toggles flow again
  }
  PRIVREC_RETURN_NOT_OK(run_trials(trials - phase0_trials));
  PRIVREC_CHECK_EQ(injectors[0].total_fires(), injectors[1].total_fires());

  DpAuditResult result;
  result.pairs_checked = 1;
  result.worst_edge_u = pair.u;
  result.worst_edge_v = pair.v;
  PathEpsilonEstimate estimate;
  estimate.path = "across_recovery";
  estimate.trials_per_side = trials;
  const EpsilonCellEstimate cells = EstimateEpsilonFromOutcomeCells(
      parity_cells[0], parity_cells[1], trials, options_.confidence,
      options_.bonferroni_cells_override,
      /*include_complements=*/false);
  estimate.epsilon_hat = cells.epsilon_hat;
  estimate.epsilon_lower_bound = cells.epsilon_lower_bound;
  estimate.worst_outcome = static_cast<NodeId>(cells.worst_cell);
  estimate.worst_z = cells.worst_z;
  estimate.bonferroni_cells = cells.bonferroni_cells;
  result.max_abs_log_ratio = estimate.epsilon_hat;
  result.per_path.push_back(std::move(estimate));
  if (stats_out != nullptr) {
    *stats_out = SumStats(pre_crash_stats,
                          SumStats(services[0]->stats(), services[1]->stats()));
  }
  return result;
}

Result<DpAuditResult> ServiceAuditor::AuditEdgeToggles(const CsrGraph& graph,
                                                       NodeId target,
                                                       size_t max_pairs,
                                                       Rng& rng) const {
  PRIVREC_ASSIGN_OR_RETURN(std::vector<NeighboringPair> pairs,
                           SampleEdgeTogglePairs(graph, target, max_pairs,
                                                 rng));
  if (pairs.empty()) {
    return Status::InvalidArgument("no eligible neighboring pairs");
  }
  return AuditPairsMerged(pairs, target);
}

Result<DpAuditResult> ServiceAuditor::AuditNodeRewirings(const CsrGraph& graph,
                                                         NodeId target,
                                                         size_t max_pairs,
                                                         Rng& rng) const {
  PRIVREC_ASSIGN_OR_RETURN(
      std::vector<NeighboringPair> pairs,
      SampleNodeRewiringPairs(graph, target, max_pairs, rng));
  if (pairs.empty()) {
    return Status::InvalidArgument("no eligible neighboring pairs");
  }
  return AuditPairsMerged(pairs, target);
}

Result<DpAuditResult> ServiceAuditor::AuditPairsMerged(
    const std::vector<NeighboringPair>& pairs, NodeId target) const {
  // The merged bound takes a max over the pairs, so the per-pair
  // confidence must absorb a Bonferroni factor of K for the merged result
  // to stay certified at options_.confidence.
  const double per_pair_confidence =
      1.0 - (1.0 - options_.confidence) / static_cast<double>(pairs.size());
  DpAuditResult merged;
  for (const NeighboringPair& pair : pairs) {
    PRIVREC_ASSIGN_OR_RETURN(
        DpAuditResult audit,
        AuditPairAtConfidence(pair, target, per_pair_confidence));
    merged.pairs_checked += audit.pairs_checked;
    if (audit.max_abs_log_ratio > merged.max_abs_log_ratio) {
      merged.max_abs_log_ratio = audit.max_abs_log_ratio;
      merged.worst_edge_u = audit.worst_edge_u;
      merged.worst_edge_v = audit.worst_edge_v;
    }
    // Merge per-path by max so each path's worst pair survives.
    for (PathEpsilonEstimate& estimate : audit.per_path) {
      PathEpsilonEstimate* existing = nullptr;
      for (PathEpsilonEstimate& entry : merged.per_path) {
        if (entry.path == estimate.path) {
          existing = &entry;
          break;
        }
      }
      if (existing == nullptr) {
        merged.per_path.push_back(std::move(estimate));
        continue;
      }
      if (estimate.epsilon_hat > existing->epsilon_hat) {
        existing->epsilon_hat = estimate.epsilon_hat;
        existing->worst_outcome = estimate.worst_outcome;
      }
      existing->epsilon_lower_bound = std::max(existing->epsilon_lower_bound,
                                               estimate.epsilon_lower_bound);
      existing->worst_z = std::max(existing->worst_z, estimate.worst_z);
      existing->bonferroni_cells =
          std::max(existing->bonferroni_cells, estimate.bonferroni_cells);
    }
  }
  return merged;
}

}  // namespace privrec
