#include "eval/service_auditor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/statistics.h"
#include "graph/dynamic_graph.h"
#include "serve/recommendation_service.h"

namespace privrec {
namespace {

/// One identical mutation applied to both sides of a pair for the
/// post-mutation path.
struct CommonToggle {
  NodeId a = 0;
  NodeId b = 0;
  bool present = false;  // present in both sides => toggle is a removal
};

bool SameUnorderedEdge(NodeId a, NodeId b, NodeId u, NodeId v) {
  return (a == u && b == v) || (a == v && b == u);
}

/// Picks an edge slot (a, b) whose state matches on both sides, is not
/// incident to the target, and is not the pair's differing edge — so
/// toggling it on BOTH services keeps the graphs neighbors. Prefers a in
/// N(target): that lands inside the target's 2-hop influence set, forcing
/// the delta-patch (or recompute) + re-freeze machinery the post-mutation
/// path exists to audit (a mutation outside the influence set would only
/// exercise the kept-entry path and the ratchet).
std::optional<CommonToggle> ChooseCommonToggle(const NeighboringPair& pair,
                                               NodeId target) {
  const CsrGraph& base = pair.base;
  const CsrGraph& nb = pair.neighbor;
  const NodeId n = base.num_nodes();
  auto eligible = [&](NodeId a, NodeId b) -> std::optional<CommonToggle> {
    if (a == b || a == target || b == target) return std::nullopt;
    if (pair.kind != NeighboringPair::Kind::kNodeRewired &&
        SameUnorderedEdge(a, b, pair.u, pair.v)) {
      return std::nullopt;
    }
    const bool in_base = base.HasEdge(a, b);
    if (in_base != nb.HasEdge(a, b)) return std::nullopt;
    if (!base.directed() && in_base != nb.HasEdge(b, a)) return std::nullopt;
    return CommonToggle{a, b, in_base};
  };
  for (NodeId a : base.OutNeighbors(target)) {
    for (NodeId b = 0; b < n; ++b) {
      if (auto toggle = eligible(a, b)) return toggle;
    }
  }
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (auto toggle = eligible(a, b)) return toggle;
    }
  }
  return std::nullopt;
}

uint64_t DeriveSeed(uint64_t root, uint64_t path, uint64_t side) {
  SplitMix64 mixer(root ^ (path * 0x9e3779b97f4a7c15ULL));
  mixer.Next();
  for (uint64_t i = 0; i <= side; ++i) mixer.Next();
  return mixer.Next() ^ (side + 1);
}

}  // namespace

PathEpsilonEstimate EstimateEpsilonFromCounts(
    const std::string& path_name,
    const std::map<NodeId, uint64_t>& base_counts,
    const std::map<NodeId, uint64_t>& neighbor_counts, uint64_t trials,
    double confidence) {
  PathEpsilonEstimate estimate;
  estimate.path = path_name;
  estimate.trials_per_side = trials;
  std::set<NodeId> outcomes;
  for (const auto& [node, count] : base_counts) outcomes.insert(node);
  for (const auto& [node, count] : neighbor_counts) outcomes.insert(node);
  if (outcomes.empty() || trials == 0) return estimate;

  // Bonferroni: the certified bound takes a max over 2·|outcomes| CP
  // intervals, so each interval runs at confidence 1 - (1-γ)/(2m) to make
  // the joint "every interval covers" event hold at >= γ.
  const double per_interval_confidence =
      1.0 - (1.0 - confidence) / (2.0 * static_cast<double>(outcomes.size()));
  const double n = static_cast<double>(trials);
  auto count_of = [](const std::map<NodeId, uint64_t>& counts, NodeId node) {
    auto it = counts.find(node);
    return it == counts.end() ? uint64_t{0} : it->second;
  };
  for (NodeId node : outcomes) {
    const uint64_t c_base = count_of(base_counts, node);
    const uint64_t c_nb = count_of(neighbor_counts, node);
    // Point estimate with a half-count floor so unseen-on-one-side
    // outcomes stay finite (they are exactly the interesting ones).
    const double p_hat = std::max(static_cast<double>(c_base), 0.5) / n;
    const double q_hat = std::max(static_cast<double>(c_nb), 0.5) / n;
    const double point = std::fabs(std::log(p_hat / q_hat));
    if (point > estimate.epsilon_hat) {
      estimate.epsilon_hat = point;
      estimate.worst_outcome = node;
    }
    const BinomialCi p_ci =
        ClopperPearsonInterval(c_base, trials, per_interval_confidence);
    const BinomialCi q_ci =
        ClopperPearsonInterval(c_nb, trials, per_interval_confidence);
    // Certified lower bound on |ln(p/q)| for this outcome: the smallest
    // ratio any (p, q) inside the joint confidence box can achieve.
    double certified = 0;
    if (p_ci.lower > 0 && q_ci.upper > 0) {
      certified = std::max(certified, std::log(p_ci.lower / q_ci.upper));
    }
    if (q_ci.lower > 0 && p_ci.upper > 0) {
      certified = std::max(certified, std::log(q_ci.lower / p_ci.upper));
    }
    estimate.epsilon_lower_bound =
        std::max(estimate.epsilon_lower_bound, certified);
    estimate.worst_z = std::max(
        estimate.worst_z, std::fabs(TwoProportionZ(c_base, trials, c_nb,
                                                   trials)));
  }
  return estimate;
}

const char* ServeAuditPathName(ServeAuditPath path) {
  switch (path) {
    case ServeAuditPath::kCold:
      return "cold";
    case ServeAuditPath::kCacheHit:
      return "cache_hit";
    case ServeAuditPath::kPostMutation:
      return "post_mutation";
    case ServeAuditPath::kMultiShard:
      return "multi_shard";
  }
  return "unknown";
}

ServiceAuditor::ServiceAuditor(UtilityFactory utility_factory,
                               ServiceAuditOptions options)
    : utility_factory_(std::move(utility_factory)),
      options_(std::move(options)) {
  PRIVREC_CHECK(utility_factory_ != nullptr);
  PRIVREC_CHECK_GT(options_.release_epsilon, 0.0);
  PRIVREC_CHECK_GT(options_.trials_per_side, 0u);
  PRIVREC_CHECK_GT(options_.confidence, 0.0);
  PRIVREC_CHECK(options_.confidence < 1.0);
  if (options_.paths.empty()) {
    options_.paths.assign(std::begin(kAllServeAuditPaths),
                          std::end(kAllServeAuditPaths));
  }
}

Result<DpAuditResult> ServiceAuditor::AuditPair(const NeighboringPair& pair,
                                                NodeId target) const {
  return AuditPairAtConfidence(pair, target, options_.confidence);
}

Result<DpAuditResult> ServiceAuditor::AuditPairAtConfidence(
    const NeighboringPair& pair, NodeId target, double confidence) const {
  if (pair.base.num_nodes() != pair.neighbor.num_nodes() ||
      pair.base.directed() != pair.neighbor.directed()) {
    return Status::InvalidArgument(
        "pair sides disagree on node count or direction");
  }
  if (target >= pair.base.num_nodes()) {
    return Status::InvalidArgument("target out of range");
  }

  DpAuditResult result;
  result.pairs_checked = 1;
  result.worst_edge_u = pair.u;
  result.worst_edge_v = pair.v;

  for (ServeAuditPath path : options_.paths) {
    std::optional<CommonToggle> toggle;
    if (path == ServeAuditPath::kPostMutation) {
      toggle = ChooseCommonToggle(pair, target);
      if (!toggle.has_value()) {
        return Status::FailedPrecondition(
            "no common edge slot available for the post-mutation toggle");
      }
    }
    std::map<NodeId, uint64_t> counts[2];
    for (int side = 0; side < 2; ++side) {
      const CsrGraph& side_graph = side == 0 ? pair.base : pair.neighbor;
      // Each (path, side) owns a fresh dynamic graph: the post-mutation
      // path mutates it, and cross-path state bleed would make the audit
      // depend on path order.
      DynamicGraph graph(side_graph);
      ServiceOptions service_options;
      service_options.release_epsilon = options_.release_epsilon;
      service_options.per_user_budget = options_.release_epsilon;
      service_options.num_shards = path == ServeAuditPath::kMultiShard
                                       ? options_.multi_shard_count
                                       : 1;
      service_options.seed = options_.seed;
      Rng rng(DeriveSeed(options_.seed, static_cast<uint64_t>(path),
                         static_cast<uint64_t>(side)));
      auto record = [&](Result<NodeId> outcome) -> Status {
        PRIVREC_RETURN_NOT_OK(outcome.status());
        ++counts[side][*outcome];
        return Status::OK();
      };
      if (path == ServeAuditPath::kCold) {
        for (uint64_t t = 0; t < options_.trials_per_side; ++t) {
          RecommendationService service(&graph, utility_factory_(),
                                        service_options);
          PRIVREC_RETURN_NOT_OK(record(service.ServeForAudit(target, rng)));
        }
        continue;
      }
      RecommendationService service(&graph, utility_factory_(),
                                    service_options);
      // Warm the cache so the sampled trials sit on the path under audit
      // (the warm-up draw itself is the cold path; discard it).
      PRIVREC_RETURN_NOT_OK(service.ServeForAudit(target, rng).status());
      if (path == ServeAuditPath::kPostMutation) {
        const Status mutated =
            toggle->present ? service.RemoveEdge(toggle->a, toggle->b)
                            : service.AddEdge(toggle->a, toggle->b);
        PRIVREC_RETURN_NOT_OK(mutated);
      }
      for (uint64_t t = 0; t < options_.trials_per_side; ++t) {
        PRIVREC_RETURN_NOT_OK(record(service.ServeForAudit(target, rng)));
      }
    }
    PathEpsilonEstimate estimate = EstimateEpsilonFromCounts(
        ServeAuditPathName(path), counts[0], counts[1],
        options_.trials_per_side, confidence);
    result.max_abs_log_ratio =
        std::max(result.max_abs_log_ratio, estimate.epsilon_hat);
    result.per_path.push_back(std::move(estimate));
  }
  return result;
}

Result<DpAuditResult> ServiceAuditor::AuditEdgeToggles(const CsrGraph& graph,
                                                       NodeId target,
                                                       size_t max_pairs,
                                                       Rng& rng) const {
  PRIVREC_ASSIGN_OR_RETURN(std::vector<NeighboringPair> pairs,
                           SampleEdgeTogglePairs(graph, target, max_pairs,
                                                 rng));
  if (pairs.empty()) {
    return Status::InvalidArgument("no eligible neighboring pairs");
  }
  // The merged bound takes a max over the pairs, so the per-pair
  // confidence must absorb a Bonferroni factor of K for the merged result
  // to stay certified at options_.confidence.
  const double per_pair_confidence =
      1.0 - (1.0 - options_.confidence) / static_cast<double>(pairs.size());
  DpAuditResult merged;
  for (const NeighboringPair& pair : pairs) {
    PRIVREC_ASSIGN_OR_RETURN(
        DpAuditResult audit,
        AuditPairAtConfidence(pair, target, per_pair_confidence));
    merged.pairs_checked += audit.pairs_checked;
    if (audit.max_abs_log_ratio > merged.max_abs_log_ratio) {
      merged.max_abs_log_ratio = audit.max_abs_log_ratio;
      merged.worst_edge_u = audit.worst_edge_u;
      merged.worst_edge_v = audit.worst_edge_v;
    }
    // Merge per-path by max so each path's worst pair survives.
    for (PathEpsilonEstimate& estimate : audit.per_path) {
      PathEpsilonEstimate* existing = nullptr;
      for (PathEpsilonEstimate& entry : merged.per_path) {
        if (entry.path == estimate.path) {
          existing = &entry;
          break;
        }
      }
      if (existing == nullptr) {
        merged.per_path.push_back(std::move(estimate));
        continue;
      }
      if (estimate.epsilon_hat > existing->epsilon_hat) {
        existing->epsilon_hat = estimate.epsilon_hat;
        existing->worst_outcome = estimate.worst_outcome;
      }
      existing->epsilon_lower_bound = std::max(existing->epsilon_lower_bound,
                                               estimate.epsilon_lower_bound);
      existing->worst_z = std::max(existing->worst_z, estimate.worst_z);
    }
  }
  return merged;
}

}  // namespace privrec
