#ifndef PRIVREC_EVAL_DP_AUDITOR_H_
#define PRIVREC_EVAL_DP_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/mechanism.h"
#include "graph/csr_graph.h"
#include "random/rng.h"
#include "utility/utility_function.h"

namespace privrec {

/// Empirical ε of ONE audited code path, so privacy regressions localize
/// to the path that leaks instead of hiding behind one global max. The
/// closed-form auditors report a single "closed_form" path; the black-box
/// ServiceAuditor (eval/service_auditor.h) reports one entry per serve
/// path it drove (cold / cache_hit / post_mutation / multi_shard).
struct PathEpsilonEstimate {
  /// "closed_form", "cold", "cache_hit", "post_mutation", "multi_shard".
  std::string path;
  /// Point estimate: max over outcomes of |ln(p̂ / q̂)| (exact likelihood
  /// ratio for the closed-form audits; plug-in frequency ratio for the
  /// sampling audits, floored at half a count to stay finite).
  double epsilon_hat = 0;
  /// Certified high-probability lower bound on the true ε of this path:
  /// max over outcomes of ln(CP_lower(p) / CP_upper(q)) using
  /// Clopper–Pearson intervals, Bonferroni-corrected across outcomes. For
  /// closed-form audits (no sampling error) this equals epsilon_hat.
  double epsilon_lower_bound = 0;
  /// Trials drawn per side (0 for closed-form audits).
  uint64_t trials_per_side = 0;
  /// The outcome (node id) achieving epsilon_hat.
  NodeId worst_outcome = 0;
  /// Largest |two-proportion z| observed across outcomes (sampling audits
  /// only): a scale-free divergence ranking for dashboards.
  double worst_z = 0;
  /// Outcome cells the certified bound's Bonferroni correction was split
  /// across (sampling audits; 0 for closed-form audits). The CI regression
  /// gate checks this never shrinks: fewer cells means optimistically
  /// narrow intervals, i.e. a silently weakened certification.
  uint64_t bonferroni_cells = 0;
};

/// Result of a differential-privacy audit (exhaustive closed-form or
/// sampling-based service audit).
struct DpAuditResult {
  /// max over neighboring graph pairs, audited paths, and outcomes of
  /// |ln(Pr[R(G)=o] / Pr[R(G')=o])| — the empirical ε.
  double max_abs_log_ratio = 0;
  /// Neighboring pairs examined.
  uint64_t pairs_checked = 0;
  /// The edge achieving the max ratio.
  NodeId worst_edge_u = 0;
  NodeId worst_edge_v = 0;
  /// Per-code-path breakdown (see PathEpsilonEstimate).
  std::vector<PathEpsilonEstimate> per_path;

  /// The entry for `path`, or nullptr when that path was not audited.
  const PathEpsilonEstimate* FindPath(const std::string& path) const {
    for (const PathEpsilonEstimate& entry : per_path) {
      if (entry.path == path) return &entry;
    }
    return nullptr;
  }
};

/// Empirically verifies Definition 1 (relaxed variant of Section 3.2) for
/// `mechanism` + `utility` at `target`: enumerates EVERY node pair not
/// incident to the target, toggles the edge, computes the mechanism's
/// closed-form output distribution on both graphs, and reports the largest
/// likelihood-ratio observed. For an ε-DP mechanism the result must be
/// <= ε (+ small numerical slack). Intended for small graphs (cost is
/// O(n²) utility computations).
///
/// Outcomes are compared node-by-node: each nonzero candidate is matched by
/// node id, and candidates that are zero-utility on both sides share the
/// uniform zero-block probability. Probabilities below `floor` are clamped
/// to it (an outcome with probability ~0 on both sides is not a leak but
/// would otherwise produce 0/0).
Result<DpAuditResult> AuditEdgeDp(const CsrGraph& graph,
                                  const UtilityFunction& utility,
                                  const Mechanism& mechanism, NodeId target,
                                  double floor = 1e-12);

/// Decides whether a node pair constitutes a *sensitive* edge. Used for
/// the Section 8 extension where only a subset of edges is private (e.g.
/// people-product links are sensitive but friendships are not).
using SensitiveEdgePredicate = bool (*)(NodeId u, NodeId v, void* context);

/// As AuditEdgeDp, but only toggles pairs the predicate marks sensitive —
/// the empirical ε of the *restricted* adjacency relation. Pairs incident
/// to the target remain excluded regardless of the predicate.
Result<DpAuditResult> AuditSensitiveEdgeDp(
    const CsrGraph& graph, const UtilityFunction& utility,
    const Mechanism& mechanism, NodeId target,
    SensitiveEdgePredicate is_sensitive, void* context,
    double floor = 1e-12);

/// Node-identity DP audit (Appendix A): neighboring graphs differ in the
/// ENTIRE neighborhood of one node. The space of rewirings is exponential,
/// so this audit samples `rewirings_per_node` random replacement
/// neighborhoods for every non-target node and reports the worst observed
/// likelihood ratio — a LOWER bound on the true node-DP ε.
///
/// Appendix A predicts ε >= ln(n)/2 for constant accuracy; the bench and
/// tests use this auditor to show edge-calibrated mechanisms leak far more
/// than their edge-ε under node-level adversaries.
Result<DpAuditResult> AuditNodeDpSampled(const CsrGraph& graph,
                                         const UtilityFunction& utility,
                                         const Mechanism& mechanism,
                                         NodeId target,
                                         size_t rewirings_per_node, Rng& rng,
                                         double floor = 1e-12);

}  // namespace privrec

#endif  // PRIVREC_EVAL_DP_AUDITOR_H_
