#ifndef PRIVREC_EVAL_DP_AUDITOR_H_
#define PRIVREC_EVAL_DP_AUDITOR_H_

#include <cstdint>

#include "common/result.h"
#include "core/mechanism.h"
#include "graph/csr_graph.h"
#include "random/rng.h"
#include "utility/utility_function.h"

namespace privrec {

/// Result of an exhaustive differential-privacy audit.
struct DpAuditResult {
  /// max over neighboring graph pairs and outcomes of
  /// |ln(Pr[R(G)=o] / Pr[R(G')=o])| — the empirical ε.
  double max_abs_log_ratio = 0;
  /// Neighboring pairs examined.
  uint64_t pairs_checked = 0;
  /// The edge achieving the max ratio.
  NodeId worst_edge_u = 0;
  NodeId worst_edge_v = 0;
};

/// Empirically verifies Definition 1 (relaxed variant of Section 3.2) for
/// `mechanism` + `utility` at `target`: enumerates EVERY node pair not
/// incident to the target, toggles the edge, computes the mechanism's
/// closed-form output distribution on both graphs, and reports the largest
/// likelihood-ratio observed. For an ε-DP mechanism the result must be
/// <= ε (+ small numerical slack). Intended for small graphs (cost is
/// O(n²) utility computations).
///
/// Outcomes are compared node-by-node: each nonzero candidate is matched by
/// node id, and candidates that are zero-utility on both sides share the
/// uniform zero-block probability. Probabilities below `floor` are clamped
/// to it (an outcome with probability ~0 on both sides is not a leak but
/// would otherwise produce 0/0).
Result<DpAuditResult> AuditEdgeDp(const CsrGraph& graph,
                                  const UtilityFunction& utility,
                                  const Mechanism& mechanism, NodeId target,
                                  double floor = 1e-12);

/// Decides whether a node pair constitutes a *sensitive* edge. Used for
/// the Section 8 extension where only a subset of edges is private (e.g.
/// people-product links are sensitive but friendships are not).
using SensitiveEdgePredicate = bool (*)(NodeId u, NodeId v, void* context);

/// As AuditEdgeDp, but only toggles pairs the predicate marks sensitive —
/// the empirical ε of the *restricted* adjacency relation. Pairs incident
/// to the target remain excluded regardless of the predicate.
Result<DpAuditResult> AuditSensitiveEdgeDp(
    const CsrGraph& graph, const UtilityFunction& utility,
    const Mechanism& mechanism, NodeId target,
    SensitiveEdgePredicate is_sensitive, void* context,
    double floor = 1e-12);

/// Node-identity DP audit (Appendix A): neighboring graphs differ in the
/// ENTIRE neighborhood of one node. The space of rewirings is exponential,
/// so this audit samples `rewirings_per_node` random replacement
/// neighborhoods for every non-target node and reports the worst observed
/// likelihood ratio — a LOWER bound on the true node-DP ε.
///
/// Appendix A predicts ε >= ln(n)/2 for constant accuracy; the bench and
/// tests use this auditor to show edge-calibrated mechanisms leak far more
/// than their edge-ε under node-level adversaries.
Result<DpAuditResult> AuditNodeDpSampled(const CsrGraph& graph,
                                         const UtilityFunction& utility,
                                         const Mechanism& mechanism,
                                         NodeId target,
                                         size_t rewirings_per_node, Rng& rng,
                                         double floor = 1e-12);

}  // namespace privrec

#endif  // PRIVREC_EVAL_DP_AUDITOR_H_
