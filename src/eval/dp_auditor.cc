#include "eval/dp_auditor.h"

#include <cmath>
#include <unordered_map>
#include <utility>

#include "graph/transforms.h"

namespace privrec {
namespace {

/// Expands a mechanism distribution into per-node probabilities plus the
/// shared zero-block per-node probability.
struct ExpandedDistribution {
  std::unordered_map<NodeId, double> per_node;  // nonzero support only
  double per_zero_node = 0;
  uint64_t num_zero = 0;
};

Result<ExpandedDistribution> Expand(const Mechanism& mechanism,
                                    const UtilityVector& utilities) {
  PRIVREC_ASSIGN_OR_RETURN(RecommendationDistribution dist,
                           mechanism.Distribution(utilities));
  ExpandedDistribution out;
  const auto& entries = utilities.nonzero();
  out.per_node.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    out.per_node.emplace(entries[i].node, dist.nonzero_probs[i]);
  }
  out.num_zero = utilities.num_zero();
  out.per_zero_node =
      out.num_zero > 0
          ? dist.zero_block_prob / static_cast<double>(out.num_zero)
          : 0.0;
  return out;
}

double ProbabilityOf(const ExpandedDistribution& dist, NodeId node,
                     bool in_candidate_set) {
  if (!in_candidate_set) return 0.0;
  auto it = dist.per_node.find(node);
  if (it != dist.per_node.end()) return it->second;
  return dist.per_zero_node;
}

/// Closed-form audits have no sampling error: the per-path entry carries
/// the exact max ratio as both the point estimate and the certified bound.
void FillClosedFormPath(DpAuditResult& audit, NodeId worst_outcome) {
  PathEpsilonEstimate entry;
  entry.path = "closed_form";
  entry.epsilon_hat = audit.max_abs_log_ratio;
  entry.epsilon_lower_bound = audit.max_abs_log_ratio;
  entry.trials_per_side = 0;
  entry.worst_outcome = worst_outcome;
  audit.per_path.push_back(std::move(entry));
}

}  // namespace

Result<DpAuditResult> AuditEdgeDp(const CsrGraph& graph,
                                  const UtilityFunction& utility,
                                  const Mechanism& mechanism, NodeId target,
                                  double floor) {
  return AuditSensitiveEdgeDp(graph, utility, mechanism, target,
                              /*is_sensitive=*/nullptr, /*context=*/nullptr,
                              floor);
}

Result<DpAuditResult> AuditSensitiveEdgeDp(
    const CsrGraph& graph, const UtilityFunction& utility,
    const Mechanism& mechanism, NodeId target,
    SensitiveEdgePredicate is_sensitive, void* context, double floor) {
  if (target >= graph.num_nodes()) {
    return Status::InvalidArgument("target out of range");
  }
  DpAuditResult audit;
  NodeId worst_outcome = 0;
  UtilityVector base_utilities = utility.Compute(graph, target);
  PRIVREC_ASSIGN_OR_RETURN(ExpandedDistribution base,
                           Expand(mechanism, base_utilities));

  const NodeId n = graph.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    if (u == target) continue;
    for (NodeId v = graph.directed() ? 0 : u + 1; v < n; ++v) {
      if (v == target || v == u) continue;
      if (is_sensitive != nullptr && !is_sensitive(u, v, context)) continue;
      auto neighbor_graph = graph.HasEdge(u, v)
                                ? WithEdgeRemoved(graph, u, v)
                                : WithEdgeAdded(graph, u, v);
      if (!neighbor_graph.ok()) continue;
      UtilityVector other_utilities = utility.Compute(*neighbor_graph, target);
      PRIVREC_ASSIGN_OR_RETURN(ExpandedDistribution other,
                               Expand(mechanism, other_utilities));
      ++audit.pairs_checked;

      // Candidate sets are identical (the edge is not incident to the
      // target), so compare outcome-by-outcome over all candidates.
      for (NodeId o = 0; o < n; ++o) {
        if (o == target || graph.HasEdge(target, o)) continue;
        double p = std::max(ProbabilityOf(base, o, true), floor);
        double q = std::max(ProbabilityOf(other, o, true), floor);
        double ratio = std::fabs(std::log(p / q));
        if (ratio > audit.max_abs_log_ratio) {
          audit.max_abs_log_ratio = ratio;
          audit.worst_edge_u = u;
          audit.worst_edge_v = v;
          worst_outcome = o;
        }
      }
    }
  }
  FillClosedFormPath(audit, worst_outcome);
  return audit;
}

Result<DpAuditResult> AuditNodeDpSampled(const CsrGraph& graph,
                                         const UtilityFunction& utility,
                                         const Mechanism& mechanism,
                                         NodeId target,
                                         size_t rewirings_per_node, Rng& rng,
                                         double floor) {
  if (target >= graph.num_nodes()) {
    return Status::InvalidArgument("target out of range");
  }
  DpAuditResult audit;
  NodeId worst_outcome = 0;
  UtilityVector base_utilities = utility.Compute(graph, target);
  PRIVREC_ASSIGN_OR_RETURN(ExpandedDistribution base,
                           Expand(mechanism, base_utilities));
  const NodeId n = graph.num_nodes();
  for (NodeId w = 0; w < n; ++w) {
    if (w == target || graph.HasEdge(target, w) ||
        graph.HasEdge(w, target)) {
      // Keep the target's own adjacency fixed so the candidate sets of the
      // two graphs coincide (mirrors the relaxed edge-DP convention).
      continue;
    }
    for (size_t trial = 0; trial < rewirings_per_node; ++trial) {
      // Replace w's neighborhood with a random one of random size.
      std::vector<std::pair<NodeId, NodeId>> removals;
      for (NodeId old_neighbor : graph.OutNeighbors(w)) {
        removals.emplace_back(w, old_neighbor);
      }
      std::vector<std::pair<NodeId, NodeId>> additions;
      const uint32_t new_degree =
          static_cast<uint32_t>(rng.NextBounded(graph.OutDegree(w) + 3));
      for (uint32_t i = 0; i < new_degree; ++i) {
        NodeId candidate = static_cast<NodeId>(rng.NextBounded(n));
        if (candidate == w || candidate == target) continue;
        additions.emplace_back(w, candidate);
      }
      CsrGraph rewired = WithEdits(graph, additions, removals);
      UtilityVector other_utilities = utility.Compute(rewired, target);
      PRIVREC_ASSIGN_OR_RETURN(ExpandedDistribution other,
                               Expand(mechanism, other_utilities));
      ++audit.pairs_checked;
      for (NodeId o = 0; o < n; ++o) {
        if (o == target || graph.HasEdge(target, o)) continue;
        double p = std::max(ProbabilityOf(base, o, true), floor);
        double q = std::max(ProbabilityOf(other, o, true), floor);
        double ratio = std::fabs(std::log(p / q));
        if (ratio > audit.max_abs_log_ratio) {
          audit.max_abs_log_ratio = ratio;
          audit.worst_edge_u = w;
          audit.worst_edge_v = w;
          worst_outcome = o;
        }
      }
    }
  }
  FillClosedFormPath(audit, worst_outcome);
  return audit;
}

}  // namespace privrec
