#include "eval/cdf.h"

#include <cmath>
#include <cstdint>

#include "common/logging.h"

namespace privrec {

std::vector<double> PaperAccuracyThresholds() {
  std::vector<double> thresholds;
  thresholds.reserve(11);
  for (int i = 0; i <= 10; ++i) {
    thresholds.push_back(static_cast<double>(i) / 10.0);
  }
  return thresholds;
}

std::vector<double> FractionAtOrBelow(const std::vector<double>& values,
                                      const std::vector<double>& thresholds) {
  std::vector<double> fractions(thresholds.size(), 0.0);
  size_t valid = 0;
  for (double v : values) {
    if (std::isnan(v)) continue;
    ++valid;
    for (size_t i = 0; i < thresholds.size(); ++i) {
      if (v <= thresholds[i]) fractions[i] += 1.0;
    }
  }
  if (valid == 0) return fractions;
  for (double& f : fractions) f /= static_cast<double>(valid);
  return fractions;
}

double FractionAbove(const std::vector<double>& values, double threshold) {
  size_t valid = 0, above = 0;
  for (double v : values) {
    if (std::isnan(v)) continue;
    ++valid;
    if (v > threshold) ++above;
  }
  return valid == 0 ? 0.0
                    : static_cast<double>(above) / static_cast<double>(valid);
}

double MeanIgnoringNan(const std::vector<double>& values) {
  size_t valid = 0;
  double total = 0;
  for (double v : values) {
    if (std::isnan(v)) continue;
    ++valid;
    total += v;
  }
  if (valid == 0) return std::nan("");
  return total / static_cast<double>(valid);
}

std::vector<DegreeBucket> BucketByDegree(
    const std::vector<uint32_t>& degrees,
    const std::vector<double>& accuracies) {
  PRIVREC_CHECK_EQ(degrees.size(), accuracies.size());
  std::vector<DegreeBucket> buckets;
  // Geometric edges 1,2,4,8,... up to 2^31.
  for (uint32_t shift = 0; shift < 31; ++shift) {
    DegreeBucket bucket;
    bucket.degree_lo = 1u << shift;
    bucket.degree_hi = 1u << (shift + 1);
    double total = 0;
    for (size_t i = 0; i < degrees.size(); ++i) {
      if (std::isnan(accuracies[i])) continue;
      if (degrees[i] >= bucket.degree_lo && degrees[i] < bucket.degree_hi) {
        bucket.count++;
        total += accuracies[i];
      }
    }
    if (bucket.count > 0) {
      bucket.mean_accuracy = total / static_cast<double>(bucket.count);
      buckets.push_back(bucket);
    }
  }
  return buckets;
}

}  // namespace privrec
