#ifndef PRIVREC_CORE_CLOSED_FORMS_H_
#define PRIVREC_CORE_CLOSED_FORMS_H_

namespace privrec {

/// Lemma 3 / Appendix E: with two candidates of utilities u1 >= u2 and iid
/// Laplace(1/ε) noise, the probability that candidate 1 wins the noisy
/// argmax is
///   P = 1 - (1/2)e^{-ε(u1-u2)} - ε(u1-u2) / (4 e^{ε(u1-u2)}).
/// (The paper notes this is the first explicit closed form for the
/// difference of two Laplace variables in this setting.)
double LaplaceTwoCandidateWinProbability(double u1, double u2,
                                         double epsilon);

/// The exponential mechanism's probability of recommending candidate 1
/// among two candidates with Δf = 1: e^{εu1} / (e^{εu1} + e^{εu2}).
/// Appendix E contrasts this with the Laplace closed form to show the two
/// mechanisms are *not* isomorphic despite near-identical empirical
/// accuracy.
double ExponentialTwoCandidateWinProbability(double u1, double u2,
                                             double epsilon);

}  // namespace privrec

#endif  // PRIVREC_CORE_CLOSED_FORMS_H_
