#include "core/privacy_accountant.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace privrec {

const char* PrivacyModelName(PrivacyModel model) {
  return model == PrivacyModel::kNode ? "node" : "edge";
}

PrivacyAccountant::PrivacyAccountant(double budget) : budget_(budget) {
  PRIVREC_CHECK_GE(budget, 0.0);
}

PrivacyAccountant::PrivacyAccountant(double budget, BudgetWindowPolicy window)
    : budget_(budget), window_(window) {
  PRIVREC_CHECK_GE(budget, 0.0);
  if (window_.enabled) {
    PRIVREC_CHECK_GT(window_.window_length, 0u);
    PRIVREC_CHECK_GT(window_.refresh_epsilon, 0.0);
    PRIVREC_CHECK_GT(window_.degrade_factor, 1.0);
  }
}

namespace {

constexpr const char kExhaustedPrefix[] = "privacy budget exhausted";

}  // namespace

bool PrivacyAccountant::CanCharge(double epsilon) const {
  // Tolerate float dust at the boundary so k charges of budget/k succeed.
  return epsilon >= 0 && spent_ + epsilon <= budget_ * (1.0 + 1e-12) + 1e-12;
}

bool PrivacyAccountant::AdvanceWindow() {
  if (!window_.enabled) return false;
  const uint64_t index = requests_ / window_.window_length;
  ++requests_;
  if (index == window_index_) return false;
  // Crossing a boundary resets the window spend exactly once — the
  // tumbling-window refresh. (index can only ever be window_index_ + k for
  // k >= 1 since requests_ is monotone; each boundary is one refresh.)
  window_index_ = index;
  window_spent_ = 0;
  ++windows_refreshed_;
  return true;
}

bool PrivacyAccountant::CanChargeInWindow(double epsilon) const {
  if (!window_.enabled) return true;
  return epsilon >= 0 &&
         window_spent_ + epsilon <=
             window_.refresh_epsilon * (1.0 + 1e-12) + 1e-12;
}

Status PrivacyAccountant::Charge(double epsilon, const std::string& reason) {
  if (epsilon < 0) {
    return Status::InvalidArgument("cannot charge negative epsilon");
  }
  if (!CanCharge(epsilon)) {
    return Status::FailedPrecondition(
        std::string(kExhaustedPrefix) + ": spent " +
        FormatDouble(spent_, 4) + " of " + FormatDouble(budget_, 4) +
        ", cannot charge " + FormatDouble(epsilon, 4) + " for '" + reason +
        "'");
  }
  if (!CanChargeInWindow(epsilon)) {
    // The window bound is enforced HERE too, not only in the caller's
    // pre-check: a buggy serve path can refuse, never overspend a window.
    return Status::FailedPrecondition(
        std::string(kExhaustedPrefix) + " (window): spent " +
        FormatDouble(window_spent_, 4) + " of " +
        FormatDouble(window_.refresh_epsilon, 4) + " in window " +
        std::to_string(window_index_) + ", cannot charge " +
        FormatDouble(epsilon, 4) + " for '" + reason + "'");
  }
  spent_ += epsilon;
  window_spent_ += epsilon;
  ledger_.push_back({epsilon, reason});
  return Status::OK();
}

void PrivacyAccountant::RestoreSpent(double spent,
                                     const std::string& reason) {
  if (spent <= spent_) return;
  const double delta = spent - spent_;
  spent_ = spent;  // may exceed budget_: remaining() < 0 refuses everything
  ledger_.push_back({delta, reason});
}

bool IsBudgetExhausted(const Status& status) {
  return status.IsFailedPrecondition() &&
         status.message().rfind(kExhaustedPrefix, 0) == 0;
}

}  // namespace privrec
