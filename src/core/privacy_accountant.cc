#include "core/privacy_accountant.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace privrec {

PrivacyAccountant::PrivacyAccountant(double budget) : budget_(budget) {
  PRIVREC_CHECK_GE(budget, 0.0);
}

Status PrivacyAccountant::Charge(double epsilon, const std::string& reason) {
  if (epsilon < 0) {
    return Status::InvalidArgument("cannot charge negative epsilon");
  }
  // Tolerate float dust at the boundary so k charges of budget/k succeed.
  if (spent_ + epsilon > budget_ * (1.0 + 1e-12) + 1e-12) {
    return Status::FailedPrecondition(
        "privacy budget exhausted: spent " + FormatDouble(spent_, 4) +
        " of " + FormatDouble(budget_, 4) + ", cannot charge " +
        FormatDouble(epsilon, 4) + " for '" + reason + "'");
  }
  spent_ += epsilon;
  ledger_.push_back({epsilon, reason});
  return Status::OK();
}

}  // namespace privrec
