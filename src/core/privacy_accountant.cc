#include "core/privacy_accountant.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace privrec {

PrivacyAccountant::PrivacyAccountant(double budget) : budget_(budget) {
  PRIVREC_CHECK_GE(budget, 0.0);
}

namespace {

constexpr const char kExhaustedPrefix[] = "privacy budget exhausted";

}  // namespace

bool PrivacyAccountant::CanCharge(double epsilon) const {
  // Tolerate float dust at the boundary so k charges of budget/k succeed.
  return epsilon >= 0 && spent_ + epsilon <= budget_ * (1.0 + 1e-12) + 1e-12;
}

Status PrivacyAccountant::Charge(double epsilon, const std::string& reason) {
  if (epsilon < 0) {
    return Status::InvalidArgument("cannot charge negative epsilon");
  }
  if (!CanCharge(epsilon)) {
    return Status::FailedPrecondition(
        std::string(kExhaustedPrefix) + ": spent " +
        FormatDouble(spent_, 4) + " of " + FormatDouble(budget_, 4) +
        ", cannot charge " + FormatDouble(epsilon, 4) + " for '" + reason +
        "'");
  }
  spent_ += epsilon;
  ledger_.push_back({epsilon, reason});
  return Status::OK();
}

bool IsBudgetExhausted(const Status& status) {
  return status.IsFailedPrecondition() &&
         status.message().rfind(kExhaustedPrefix, 0) == 0;
}

}  // namespace privrec
