#include "core/bounds.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace privrec {

double Corollary1AccuracyUpperBound(uint64_t n, uint64_t k, double c,
                                    double t, double epsilon) {
  PRIVREC_CHECK_GT(n, k);
  PRIVREC_CHECK(c > 0.0 && c <= 1.0);
  const double nk = static_cast<double>(n - k);
  // e^{εt} can overflow for large t; the bound then approaches 1 — compute
  // in a saturating way.
  const double exponent = epsilon * t;
  if (exponent > 700.0) return 1.0;
  const double et = std::exp(exponent);
  const double bound =
      1.0 - c * nk / (nk + (static_cast<double>(k) + 1.0) * et);
  return std::clamp(bound, 0.0, 1.0);
}

double Lemma1EpsilonLowerBound(uint64_t n, uint64_t k, double c, double delta,
                               double t) {
  PRIVREC_CHECK_GT(n, k);
  PRIVREC_CHECK(c > 0.0 && c <= 1.0);
  PRIVREC_CHECK(delta > 0.0 && delta < c);
  PRIVREC_CHECK_GT(t, 0.0);
  const double term1 = std::log((c - delta) / delta);
  const double term2 = std::log(static_cast<double>(n - k) /
                                (static_cast<double>(k) + 1.0));
  return (term1 + term2) / t;
}

double Lemma2EpsilonLowerBound(uint64_t n, double beta, double t) {
  PRIVREC_CHECK_GT(n, 1u);
  PRIVREC_CHECK_GT(beta, 0.0);
  PRIVREC_CHECK_GT(t, 0.0);
  const double log_n = std::log(static_cast<double>(n));
  const double bound = (log_n - std::log(beta) - std::log(log_n)) / t;
  return std::max(bound, 0.0);
}

double Theorem1EpsilonLowerBound(uint64_t n, uint32_t d_max) {
  PRIVREC_CHECK_GT(n, 1u);
  PRIVREC_CHECK_GT(d_max, 0u);
  const double alpha =
      static_cast<double>(d_max) / std::log(static_cast<double>(n));
  return 0.25 / alpha;
}

double Theorem2EpsilonLowerBound(uint64_t n, uint32_t d_r) {
  PRIVREC_CHECK_GT(n, 1u);
  return std::log(static_cast<double>(n)) /
         (static_cast<double>(d_r) + 2.0);
}

double Theorem3EpsilonLowerBound(uint64_t n, uint32_t d_r, double gamma,
                                 uint32_t d_max) {
  PRIVREC_CHECK_GT(n, 1u);
  PRIVREC_CHECK_GE(gamma, 0.0);
  // Theorem 3's rewiring uses t <= d_r + 2(c-1)d_r with (c-1) = Θ(γ·d_max);
  // we charge the full correction term plus the +2 bookkeeping edges.
  const double t = (1.0 + 2.0 * gamma * static_cast<double>(d_max)) *
                       static_cast<double>(d_r) +
                   2.0;
  return std::log(static_cast<double>(n)) / t;
}

double NodePrivacyEpsilonLowerBound(uint64_t n) {
  PRIVREC_CHECK_GT(n, 1u);
  return std::log(static_cast<double>(n)) / 2.0;
}

double NonMonotoneEpsilonLowerBound(uint64_t n, double t_promotion) {
  PRIVREC_CHECK_GT(n, 1u);
  PRIVREC_CHECK_GT(t_promotion, 0.0);
  return std::log(static_cast<double>(n)) / (2.0 * t_promotion);
}

double TheoreticalAccuracyBound(const UtilityVector& utilities, double t,
                                double epsilon) {
  if (utilities.empty()) return 1.0;
  const uint64_t n = utilities.num_candidates();
  const double u_max = utilities.max_utility();
  double best = 1.0;
  // Enumerate thresholds τ between consecutive distinct utility values:
  // k(τ) = |{u_i > τ}| changes only there. Also include τ -> 0+ (c -> 1).
  const auto& entries = utilities.nonzero();
  double previous_value = -1.0;
  for (const UtilityEntry& e : entries) {
    if (e.utility == previous_value) continue;
    previous_value = e.utility;
    // τ just below this utility level: entries with utility >= e.utility
    // form V_hi; everything strictly below is V_lo.
    const double tau = std::nextafter(e.utility, 0.0);
    const uint64_t k = utilities.CountAbove(tau);
    if (k >= n) continue;
    const double c = 1.0 - tau / u_max;
    if (c <= 0.0) continue;
    best = std::min(best,
                    Corollary1AccuracyUpperBound(n, k, c, t, epsilon));
  }
  // τ -> 0+: all nonzero entries are high-utility, c = 1.
  const uint64_t k_all = entries.size();
  if (k_all < n) {
    best = std::min(best,
                    Corollary1AccuracyUpperBound(n, k_all, 1.0, t, epsilon));
  }
  return best;
}

double TheoreticalAccuracyBound(const CsrGraph& graph,
                                const UtilityFunction& utility, NodeId target,
                                const UtilityVector& utilities,
                                double epsilon) {
  const double t = utility.EdgeAlterationsT(graph, target, utilities);
  return TheoreticalAccuracyBound(utilities, t, epsilon);
}

}  // namespace privrec
