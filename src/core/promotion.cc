#include "core/promotion.h"

#include <algorithm>

#include "core/mechanism.h"
#include "graph/transforms.h"

namespace privrec {

Result<PromotionResult> PromoteToTopUtility(const CsrGraph& graph,
                                            const UtilityFunction& utility,
                                            NodeId target, NodeId promoted) {
  if (target == promoted) {
    return Status::InvalidArgument("cannot promote the target itself");
  }
  if (target >= graph.num_nodes() || promoted >= graph.num_nodes()) {
    return Status::InvalidArgument("node id out of range");
  }
  if (graph.HasEdge(target, promoted)) {
    return Status::FailedPrecondition(
        "promoted node is already connected to the target");
  }

  std::vector<std::pair<NodeId, NodeId>> additions;
  // Step 1: connect `promoted` to every current neighbor of the target it
  // is not already connected to. For common-neighbors utility this lifts
  // u(promoted) to d_r.
  for (NodeId neighbor : graph.OutNeighbors(target)) {
    if (neighbor == promoted) continue;
    if (!graph.HasEdge(promoted, neighbor)) {
      additions.emplace_back(promoted, neighbor);
    }
  }
  CsrGraph rewired = WithEdits(graph, additions, {});

  // Step 2: if some other candidate still ties or beats `promoted`
  // (it may share all of r's neighbors too), grow r's neighborhood with
  // fresh common neighbors exclusive to `promoted` — the "+2 edges to some
  // small-utility node" of Claim 3, iterated for safety on graphs where a
  // single bridge is not enough.
  for (int round = 0; round < 8; ++round) {
    UtilityVector utilities = utility.Compute(rewired, target);
    if (!utilities.empty() && utilities.argmax() == promoted) {
      // Unique argmax? nonzero() sorts ties by node id, so double-check by
      // comparing against the runner-up value.
      const auto& entries = utilities.nonzero();
      bool unique = entries.size() < 2 ||
                    entries[1].utility < entries[0].utility;
      if (unique) {
        PromotionResult result{std::move(rewired), std::move(additions),
                               true};
        return result;
      }
    }
    // Find a bridge node w not adjacent to target or promoted; wire
    // target-w and promoted-w, giving `promoted` a common neighbor no
    // rival gains.
    NodeId bridge = kUnresolvedZeroNode;
    for (NodeId w = 0; w < rewired.num_nodes(); ++w) {
      if (w == target || w == promoted) continue;
      if (rewired.HasEdge(target, w) || rewired.HasEdge(promoted, w)) {
        continue;
      }
      bridge = w;
      break;
    }
    if (bridge == kUnresolvedZeroNode) {
      return Status::FailedPrecondition(
          "graph too dense to promote: no bridge node available");
    }
    additions.emplace_back(target, bridge);
    additions.emplace_back(promoted, bridge);
    rewired = WithEdits(rewired, {{target, bridge}, {promoted, bridge}}, {});
  }
  return Status::Internal("promotion did not converge in 8 rounds");
}

}  // namespace privrec
