#ifndef PRIVREC_CORE_EXPONENTIAL_MECHANISM_H_
#define PRIVREC_CORE_EXPONENTIAL_MECHANISM_H_

#include "core/mechanism.h"

namespace privrec {

/// The exponential mechanism A_E(ε) (Definition 5, after McSherry-Talwar):
/// recommends candidate i with probability ∝ exp(ε·u_i/Δf). ε-DP for any
/// utility function with L1 edge sensitivity ≤ Δf (Theorem 4).
///
/// Implementation notes:
/// - Weights are computed relative to u_max (exp(ε(u_i-u_max)/Δf)) so the
///   partition function never overflows.
/// - The zero-utility block contributes num_zero()·exp(-ε·u_max/Δf) to the
///   partition function without being materialized; if the block wins the
///   draw, the Recommendation carries from_zero_block = true.
/// - Both the sampled draw and the exact closed-form Distribution() are
///   provided; the experiments use the latter ("the expected accuracy
///   follows from the definition of A_E(ε) directly", Section 7.1).
class ExponentialMechanism : public Mechanism {
 public:
  /// `epsilon` is the privacy budget; `sensitivity` the Δf calibration
  /// (use UtilityFunction::SensitivityBound). Both must be positive.
  ExponentialMechanism(double epsilon, double sensitivity);

  std::string name() const override { return "exponential"; }
  double epsilon() const override { return epsilon_; }
  double sensitivity() const { return sensitivity_; }

  Result<Recommendation> Recommend(const UtilityVector& utilities,
                                   Rng& rng) const override;

  Result<RecommendationDistribution> Distribution(
      const UtilityVector& utilities) const override;

  /// Freezes the normalized distribution into an alias table: one
  /// O(#nonzero) build, then O(1) per draw — vs Recommend's O(#nonzero)
  /// cumulative scan per draw. Use whenever more than a handful of draws
  /// come from the same utility vector (Monte-Carlo loops, peeling top-k,
  /// steady-state list serving).
  Result<RecommendationSampler> MakeSampler(
      const UtilityVector& utilities) const override;

 private:
  double epsilon_;
  double sensitivity_;
};

}  // namespace privrec

#endif  // PRIVREC_CORE_EXPONENTIAL_MECHANISM_H_
