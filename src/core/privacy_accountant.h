#ifndef PRIVREC_CORE_PRIVACY_ACCOUNTANT_H_
#define PRIVREC_CORE_PRIVACY_ACCOUNTANT_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace privrec {

/// Sequential-composition privacy accountant. Pure-ε differential privacy
/// composes additively: releasing outputs of an ε₁-DP and an ε₂-DP
/// mechanism on the same graph is (ε₁+ε₂)-DP. This is the bookkeeping a
/// production deployment needs around the mechanisms in this library —
/// each recommendation served, each re-computation on a changed graph
/// (the paper's Section 8 dynamic setting), spends budget.
///
/// The accountant enforces a hard cap: Charge() fails once the cap would
/// be exceeded, which is the correct failure mode for a privacy system
/// (refuse service, never silently degrade the guarantee).
class PrivacyAccountant {
 public:
  /// `budget` is the total ε this principal may ever spend.
  explicit PrivacyAccountant(double budget);

  double budget() const { return budget_; }
  double spent() const { return spent_; }
  double remaining() const { return budget_ - spent_; }

  /// True iff Charge(epsilon, ...) would succeed (same float-dust slack at
  /// the boundary). Lets callers refuse up front without side effects and
  /// then commit a Charge that cannot fail.
  bool CanCharge(double epsilon) const;

  /// Records an ε-expenditure tagged with a human-readable reason.
  /// FailedPrecondition (and no charge) if it would exceed the budget.
  Status Charge(double epsilon, const std::string& reason);

  /// Largest ε that can still be charged.
  double MaxAffordable() const { return remaining(); }

  /// Ledger of successful charges, in order.
  struct Entry {
    double epsilon;
    std::string reason;
  };
  const std::vector<Entry>& ledger() const { return ledger_; }

 private:
  double budget_;
  double spent_ = 0;
  std::vector<Entry> ledger_;
};

/// True iff `status` is the accountant's budget-exhausted refusal — the
/// one FailedPrecondition a serving layer treats as healthy back-pressure
/// rather than an error. Lives here so callers (drivers, dashboards,
/// tests) share one predicate instead of each matching the message text.
bool IsBudgetExhausted(const Status& status);

}  // namespace privrec

#endif  // PRIVREC_CORE_PRIVACY_ACCOUNTANT_H_
