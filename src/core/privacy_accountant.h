#ifndef PRIVREC_CORE_PRIVACY_ACCOUNTANT_H_
#define PRIVREC_CORE_PRIVACY_ACCOUNTANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace privrec {

/// Which neighboring-graph relation the deployment's guarantee is stated
/// against (Definition 1 vs Appendix A):
///  - kEdge: neighbors differ in ONE edge; utilities are calibrated with
///    UtilityFunction::SensitivityBound.
///  - kNode: neighbors differ in one node's ENTIRE neighborhood; serving
///    computes against the degree-capped projected view
///    (graph/degree_cap.h) and calibrates with NodeSensitivityBound, so
///    the rewired node moves at most D arcs per adjacency list.
enum class PrivacyModel { kEdge, kNode };

const char* PrivacyModelName(PrivacyModel model);

/// Continual-observation budget policy for long-lived users: lifetime ε is
/// the hard cap, but within it, spend is throttled to `refresh_epsilon`
/// per tumbling window of `window_length` requests (a request = one
/// budget-charging serve attempt against this principal's accountant,
/// counted whether or not it is ultimately refused). On exhaustion inside
/// a window the service either rejects until the window turns over
/// (kReject) or serves at release_epsilon / degrade_factor while the
/// cheaper charge still fits (kDegrade) — degraded answers are noisier,
/// never over-budget.
struct BudgetWindowPolicy {
  bool enabled = false;
  /// Requests per window; must be > 0 when enabled.
  uint64_t window_length = 0;
  /// ε spendable within one window; must be > 0 when enabled.
  double refresh_epsilon = 0;
  enum class Exhaustion { kReject, kDegrade };
  Exhaustion exhaustion = Exhaustion::kReject;
  /// kDegrade serves run at release_epsilon / degrade_factor (> 1).
  double degrade_factor = 4.0;
};

/// Sequential-composition privacy accountant. Pure-ε differential privacy
/// composes additively: releasing outputs of an ε₁-DP and an ε₂-DP
/// mechanism on the same graph is (ε₁+ε₂)-DP. This is the bookkeeping a
/// production deployment needs around the mechanisms in this library —
/// each recommendation served, each re-computation on a changed graph
/// (the paper's Section 8 dynamic setting), spends budget.
///
/// The accountant enforces a hard cap: Charge() fails once the cap would
/// be exceeded, which is the correct failure mode for a privacy system
/// (refuse service, never silently degrade the guarantee).
class PrivacyAccountant {
 public:
  /// `budget` is the total ε this principal may ever spend.
  explicit PrivacyAccountant(double budget);

  /// Accountant with a continual-observation window policy layered over
  /// the lifetime budget. CHECK-fails on a malformed enabled policy
  /// (window_length == 0, refresh_epsilon <= 0, degrade_factor <= 1).
  PrivacyAccountant(double budget, BudgetWindowPolicy window);

  double budget() const { return budget_; }
  double spent() const { return spent_; }
  double remaining() const { return budget_ - spent_; }

  /// True iff Charge(epsilon, ...) would succeed (same float-dust slack at
  /// the boundary). Lets callers refuse up front without side effects and
  /// then commit a Charge that cannot fail.
  bool CanCharge(double epsilon) const;

  /// Records an ε-expenditure tagged with a human-readable reason.
  /// FailedPrecondition (and no charge) if it would exceed the budget.
  Status Charge(double epsilon, const std::string& reason);

  /// Largest ε that can still be charged.
  double MaxAffordable() const { return remaining(); }

  /// RECOVERY ONLY: raises spent() to `spent` (no-op when already at or
  /// above it), recording the delta as a ledger entry. Unlike Charge()
  /// this may push spent() past the budget — the recovered service then
  /// refuses every charge, which is the correct conservative posture when
  /// the durable ledger says a user already spent more than this
  /// accountant's cap. Never lowers spent(), and deliberately bypasses
  /// the window machinery: windows are request-clock-relative and the
  /// clock restarts with the process, while the lifetime spend must not.
  void RestoreSpent(double spent, const std::string& reason);

  /// Ledger of successful charges, in order.
  struct Entry {
    double epsilon;
    std::string reason;
  };
  const std::vector<Entry>& ledger() const { return ledger_; }

  const BudgetWindowPolicy& window_policy() const { return window_; }

  /// Advances the per-user request clock by one. Call EXACTLY ONCE per
  /// budget-charging request, before the affordability checks (the request
  /// belongs to the window it lands in). Returns true when the call
  /// crossed a window boundary and reset the window spend — the caller's
  /// window_refreshes stat. No-op returning false when the policy is
  /// disabled.
  bool AdvanceWindow();

  /// True iff `epsilon` also fits the CURRENT window's remaining refresh
  /// budget (vacuously true when the policy is disabled). Charge()
  /// enforces the same bound, so callers that pre-check can commit.
  bool CanChargeInWindow(double epsilon) const;

  /// Window spend / position observability (tests, dashboards).
  double window_spent() const { return window_spent_; }
  uint64_t window_index() const { return window_index_; }
  uint64_t requests_observed() const { return requests_; }
  uint64_t windows_refreshed() const { return windows_refreshed_; }

 private:
  double budget_;
  double spent_ = 0;
  std::vector<Entry> ledger_;
  BudgetWindowPolicy window_;
  double window_spent_ = 0;
  uint64_t window_index_ = 0;
  uint64_t requests_ = 0;
  uint64_t windows_refreshed_ = 0;
};

/// True iff `status` is the accountant's budget-exhausted refusal — the
/// one FailedPrecondition a serving layer treats as healthy back-pressure
/// rather than an error. Lives here so callers (drivers, dashboards,
/// tests) share one predicate instead of each matching the message text.
bool IsBudgetExhausted(const Status& status);

}  // namespace privrec

#endif  // PRIVREC_CORE_PRIVACY_ACCOUNTANT_H_
