#ifndef PRIVREC_CORE_BASELINE_MECHANISMS_H_
#define PRIVREC_CORE_BASELINE_MECHANISMS_H_

#include "core/mechanism.h"

namespace privrec {

/// R_best (Section 3.1): deterministically recommends the highest-utility
/// candidate. Attains accuracy 1 by definition and is the denominator of
/// Definition 2. Not differentially private for any finite ε.
class BestMechanism : public Mechanism {
 public:
  std::string name() const override { return "best"; }

  double epsilon() const override {
    return std::numeric_limits<double>::infinity();
  }

  Result<Recommendation> Recommend(const UtilityVector& utilities,
                                   Rng& rng) const override;

  Result<RecommendationDistribution> Distribution(
      const UtilityVector& utilities) const override;
};

/// Uniform baseline: every candidate equally likely. Perfectly private
/// (0-DP: the output is independent of the graph's edges given the
/// candidate count) and the accuracy floor any mechanism can fall to.
class UniformMechanism : public Mechanism {
 public:
  std::string name() const override { return "uniform"; }

  double epsilon() const override { return 0; }

  Result<Recommendation> Recommend(const UtilityVector& utilities,
                                   Rng& rng) const override;

  Result<RecommendationDistribution> Distribution(
      const UtilityVector& utilities) const override;
};

}  // namespace privrec

#endif  // PRIVREC_CORE_BASELINE_MECHANISMS_H_
