#ifndef PRIVREC_CORE_LINEAR_SMOOTHING_H_
#define PRIVREC_CORE_LINEAR_SMOOTHING_H_

#include <memory>

#include "core/mechanism.h"

namespace privrec {

/// The sampling / linear-smoothing mechanism A_S(x) of Appendix F
/// (Definition 7): with probability x defer to an arbitrary inner
/// recommender A (not necessarily private — typically R_best), with
/// probability 1-x recommend uniformly at random.
///
/// Theorem 5: A_S(x) is ln(1 + nx/(1-x))-differentially private and
/// x·μ-accurate when A is μ-accurate. Its value is that it never needs the
/// full utility vector — only the ability to sample from A — which is the
/// paper's answer to graphs where storing n² utilities is impossible.
class LinearSmoothingMechanism : public Mechanism {
 public:
  /// `x` in [0, 1]; `inner` must outlive this mechanism.
  LinearSmoothingMechanism(double x, std::shared_ptr<const Mechanism> inner);

  std::string name() const override { return "linear_smoothing"; }

  double x() const { return x_; }

  /// Theorem 5's guarantee: ln(1 + n·x/(1-x)). Depends on the candidate
  /// count n, which is per-utility-vector, so this returns the guarantee
  /// for the worst case recorded via set_num_candidates_hint (or +inf when
  /// x == 1). Use EpsilonFor(n) for a specific n.
  double epsilon() const override;

  /// ε(n) = ln(1 + n·x/(1-x)).
  double EpsilonFor(uint64_t num_candidates) const;

  /// Inverts Theorem 5: the largest x giving ε-DP on n candidates,
  /// x = (e^ε - 1)/(e^ε - 1 + n).
  static double XForEpsilon(double epsilon, uint64_t num_candidates);

  /// Records the n used by epsilon() reporting.
  void set_num_candidates_hint(uint64_t n) { num_candidates_hint_ = n; }

  Result<Recommendation> Recommend(const UtilityVector& utilities,
                                   Rng& rng) const override;

  /// Exact closed form whenever the inner mechanism has one:
  /// p''_i = (1-x)/n + x·p_i.
  Result<RecommendationDistribution> Distribution(
      const UtilityVector& utilities) const override;

 private:
  double x_;
  std::shared_ptr<const Mechanism> inner_;
  uint64_t num_candidates_hint_ = 0;
};

}  // namespace privrec

#endif  // PRIVREC_CORE_LINEAR_SMOOTHING_H_
