#ifndef PRIVREC_CORE_BOUNDS_H_
#define PRIVREC_CORE_BOUNDS_H_

#include <cstdint>

#include "graph/csr_graph.h"
#include "utility/utility_function.h"
#include "utility/utility_vector.h"

namespace privrec {

/// Closed-form privacy-utility trade-off bounds from Sections 4-5 and
/// Appendix A of the paper. Symbol conventions follow the paper:
///   n  — number of candidate nodes,
///   k  — size of the high-utility group V_hi = {i : u_i > (1-c)·u_max},
///   c  — high-utility threshold parameter in (0, 1],
///   t  — edge alterations needed to promote a low-utility node to the top,
///   δ  — accuracy slack (accuracy = 1-δ),
///   ε  — differential privacy parameter.

/// Corollary 1: the maximum accuracy any ε-DP mechanism can achieve,
///   1 - δ <= 1 - c·(n-k) / (n-k + (k+1)·e^{ε·t}).
double Corollary1AccuracyUpperBound(uint64_t n, uint64_t k, double c,
                                    double t, double epsilon);

/// Lemma 1: the minimum ε any (1-δ)-accurate mechanism must pay,
///   ε >= (1/t)·( ln((c-δ)/δ) + ln((n-k)/(k+1)) ).
double Lemma1EpsilonLowerBound(uint64_t n, uint64_t k, double c, double delta,
                               double t);

/// Lemma 2 (asymptotic, for Ω(1) accuracy and β = o(n/log n)):
///   ε >= (ln n - ln β - ln ln n) / t.
double Lemma2EpsilonLowerBound(uint64_t n, double beta, double t);

/// Theorem 1 (any utility function, d_max = α·ln n):  ε >= 1/(4α).
/// Derivation: t <= 4·d_max by the exchange argument, combined w/ Lemma 2.
double Theorem1EpsilonLowerBound(uint64_t n, uint32_t d_max);

/// Theorem 2 (common-neighbors-like utilities, d_r = α·ln n):
///   ε >= (1-o(1))/α — computed here without the o(1) slack as
///   ln n / (d_r + 2), using Claim 3's exact t <= d_r + 2.
double Theorem2EpsilonLowerBound(uint64_t n, uint32_t d_r);

/// Theorem 3 (weighted paths, γ = o(1/d_max)): same form with
/// t <= (1+o(1))·d_r; computed as ln n / ((1+2γ·d_max)·d_r + 2).
double Theorem3EpsilonLowerBound(uint64_t n, uint32_t d_r, double gamma,
                                 uint32_t d_max);

/// Appendix A (node-identity privacy): swapping two nodes' neighborhoods
/// takes t = 2 rewiring steps, so ε >= (ln n - o(ln n))/2; computed as
/// ln n / 2.
double NodePrivacyEpsilonLowerBound(uint64_t n);

/// Appendix A (non-monotone mechanisms): without monotonicity the argument
/// must *exchange* the least-likely node with the top-utility node rather
/// than merely promote it, roughly doubling the edge alterations. Computed
/// as ln n / (2·t_promotion) — the "slightly weaker lower bound" the
/// appendix describes.
double NonMonotoneEpsilonLowerBound(uint64_t n, double t_promotion);

/// The per-target theoretical accuracy bound plotted in Figures 1-2:
/// Corollary 1 instantiated with the exact t of the target's utility
/// vector (UtilityFunction::EdgeAlterationsT) and minimized over the
/// threshold parameter c — the bound holds for *every* c in (0,1], so the
/// tightest instantiation is taken over thresholds aligned with the
/// distinct utility values of ~u.
///
/// Returns 1.0 (vacuous bound) for empty utility vectors.
double TheoreticalAccuracyBound(const UtilityVector& utilities, double t,
                                double epsilon);

/// Convenience overload: computes t via `utility` then evaluates the bound.
double TheoreticalAccuracyBound(const CsrGraph& graph,
                                const UtilityFunction& utility, NodeId target,
                                const UtilityVector& utilities,
                                double epsilon);

}  // namespace privrec

#endif  // PRIVREC_CORE_BOUNDS_H_
