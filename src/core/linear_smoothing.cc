#include "core/linear_smoothing.h"

#include <cmath>

#include "common/logging.h"

namespace privrec {

LinearSmoothingMechanism::LinearSmoothingMechanism(
    double x, std::shared_ptr<const Mechanism> inner)
    : x_(x), inner_(std::move(inner)) {
  PRIVREC_CHECK(x >= 0.0 && x <= 1.0);
  PRIVREC_CHECK(inner_ != nullptr);
}

double LinearSmoothingMechanism::epsilon() const {
  if (num_candidates_hint_ == 0) {
    return std::numeric_limits<double>::infinity();
  }
  return EpsilonFor(num_candidates_hint_);
}

double LinearSmoothingMechanism::EpsilonFor(uint64_t num_candidates) const {
  if (x_ >= 1.0) return std::numeric_limits<double>::infinity();
  return std::log1p(static_cast<double>(num_candidates) * x_ / (1.0 - x_));
}

double LinearSmoothingMechanism::XForEpsilon(double epsilon,
                                             uint64_t num_candidates) {
  PRIVREC_CHECK_GE(epsilon, 0.0);
  const double e = std::expm1(epsilon);  // e^eps - 1
  return e / (e + static_cast<double>(num_candidates));
}

Result<Recommendation> LinearSmoothingMechanism::Recommend(
    const UtilityVector& utilities, Rng& rng) const {
  const uint64_t total = utilities.num_candidates();
  if (total == 0) {
    return Status::FailedPrecondition("no candidates to recommend");
  }
  if (rng.NextBernoulli(x_)) return inner_->Recommend(utilities, rng);
  // Uniform branch.
  uint64_t pick = rng.NextBounded(total);
  Recommendation rec;
  if (pick < utilities.nonzero().size()) {
    const UtilityEntry& e = utilities.nonzero()[pick];
    rec.node = e.node;
    rec.utility = e.utility;
  } else {
    rec.node = kUnresolvedZeroNode;
    rec.utility = 0;
    rec.from_zero_block = true;
  }
  return rec;
}

Result<RecommendationDistribution> LinearSmoothingMechanism::Distribution(
    const UtilityVector& utilities) const {
  const uint64_t total = utilities.num_candidates();
  if (total == 0) {
    return Status::FailedPrecondition("no candidates to recommend");
  }
  PRIVREC_ASSIGN_OR_RETURN(RecommendationDistribution inner_dist,
                           inner_->Distribution(utilities));
  RecommendationDistribution dist;
  const double uniform = (1.0 - x_) / static_cast<double>(total);
  dist.nonzero_probs.reserve(inner_dist.nonzero_probs.size());
  for (double p : inner_dist.nonzero_probs) {
    dist.nonzero_probs.push_back(uniform + x_ * p);
  }
  dist.zero_block_prob =
      uniform * static_cast<double>(utilities.num_zero()) +
      x_ * inner_dist.zero_block_prob;
  return dist;
}

}  // namespace privrec
