#include "core/topk.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/exponential_mechanism.h"
#include "random/distributions.h"

namespace privrec {
namespace {

Status ValidateTopK(const UtilityVector& utilities, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (utilities.num_candidates() < k) {
    return Status::FailedPrecondition("fewer candidates than k");
  }
  return Status::OK();
}

/// Sum of the k largest utilities (zero-utility slots contribute 0).
double IdealMass(const UtilityVector& utilities, size_t k) {
  double total = 0;
  const auto& entries = utilities.nonzero();
  for (size_t i = 0; i < std::min(k, entries.size()); ++i) {
    total += entries[i].utility;
  }
  return total;
}

}  // namespace

Result<TopKResult> PeelingExponentialTopK(const UtilityVector& utilities,
                                          size_t k, double epsilon,
                                          double sensitivity, Rng& rng) {
  PRIVREC_RETURN_NOT_OK(ValidateTopK(utilities, k));
  const double per_round_epsilon = epsilon / static_cast<double>(k);
  ExponentialMechanism mechanism(per_round_epsilon, sensitivity);

  TopKResult result;
  // Working copy of the candidate pool.
  std::vector<UtilityEntry> remaining(utilities.nonzero());
  uint64_t candidates = utilities.num_candidates();
  for (size_t round = 0; round < k; ++round) {
    UtilityVector pool(utilities.target(), candidates, remaining);
    PRIVREC_ASSIGN_OR_RETURN(Recommendation pick,
                             mechanism.Recommend(pool, rng));
    result.picks.push_back(pick);
    --candidates;
    if (!pick.from_zero_block) {
      auto it = std::find_if(
          remaining.begin(), remaining.end(),
          [&](const UtilityEntry& e) { return e.node == pick.node; });
      PRIVREC_CHECK(it != remaining.end());
      remaining.erase(it);
    }
  }
  const double ideal = IdealMass(utilities, k);
  double got = 0;
  for (const Recommendation& pick : result.picks) got += pick.utility;
  result.accuracy = ideal > 0 ? got / ideal : 1.0;
  return result;
}

Result<TopKResult> OneShotLaplaceTopK(const UtilityVector& utilities,
                                      size_t k, double epsilon,
                                      double sensitivity, Rng& rng) {
  PRIVREC_RETURN_NOT_OK(ValidateTopK(utilities, k));
  const LaplaceDistribution noise(static_cast<double>(k) * sensitivity /
                                  epsilon);
  struct Scored {
    double noisy;
    Recommendation rec;
  };
  std::vector<Scored> scored;
  scored.reserve(utilities.nonzero().size() + k);
  for (const UtilityEntry& e : utilities.nonzero()) {
    scored.push_back({e.utility + noise.Sample(rng),
                      Recommendation{e.node, e.utility, false}});
  }
  // The zero block can occupy up to k of the output slots; sample its k
  // largest noisy values via iterated max-of-m (exact: the j-th largest of
  // m iid samples is the max of a shrinking block after removing winners).
  uint64_t zeros = utilities.num_zero();
  double ceiling = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < k && zeros > 0; ++j, --zeros) {
    // Rejection: draw the max of `zeros` samples conditioned below the
    // previous zero draw (cheap: few iterations, k is small).
    double draw;
    int guard = 0;
    do {
      draw = noise.SampleMaxOf(rng, zeros);
    } while (draw > ceiling && ++guard < 1000);
    draw = std::min(draw, ceiling);
    ceiling = draw;
    scored.push_back(
        {draw, Recommendation{kUnresolvedZeroNode, 0.0, true}});
  }
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<ptrdiff_t>(k), scored.end(),
                    [](const Scored& a, const Scored& b) {
                      return a.noisy > b.noisy;
                    });
  TopKResult result;
  double got = 0;
  for (size_t i = 0; i < k; ++i) {
    result.picks.push_back(scored[i].rec);
    got += scored[i].rec.utility;
  }
  const double ideal = IdealMass(utilities, k);
  result.accuracy = ideal > 0 ? got / ideal : 1.0;
  return result;
}

Result<TopKResult> BestTopK(const UtilityVector& utilities, size_t k) {
  PRIVREC_RETURN_NOT_OK(ValidateTopK(utilities, k));
  TopKResult result;
  const auto& entries = utilities.nonzero();
  for (size_t i = 0; i < k; ++i) {
    if (i < entries.size()) {
      result.picks.push_back(
          Recommendation{entries[i].node, entries[i].utility, false});
    } else {
      result.picks.push_back(Recommendation{kUnresolvedZeroNode, 0.0, true});
    }
  }
  result.accuracy = 1.0;
  return result;
}

}  // namespace privrec
