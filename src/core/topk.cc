#include "core/topk.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/exponential_mechanism.h"
#include "random/distributions.h"

namespace privrec {
namespace {

Status ValidateTopK(const UtilityVector& utilities, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (utilities.num_candidates() < k) {
    return Status::FailedPrecondition("fewer candidates than k");
  }
  return Status::OK();
}

/// Sum of the k largest utilities (zero-utility slots contribute 0).
double IdealMass(const UtilityVector& utilities, size_t k) {
  double total = 0;
  const auto& entries = utilities.nonzero();
  for (size_t i = 0; i < std::min(k, entries.size()); ++i) {
    total += entries[i].utility;
  }
  return total;
}

}  // namespace

Result<TopKResult> PeelingExponentialTopK(const UtilityVector& utilities,
                                          size_t k, double epsilon,
                                          double sensitivity, Rng& rng) {
  PRIVREC_RETURN_NOT_OK(ValidateTopK(utilities, k));
  const double per_round_epsilon = epsilon / static_cast<double>(k);
  ExponentialMechanism mechanism(per_round_epsilon, sensitivity);

  // Every round uses the same per-round ε, so the unnormalized candidate
  // weights never change — only the support shrinks. That makes one frozen
  // alias sampler over the FULL vector exact for every round: drawing from
  // it conditioned on "not yet picked" (and thinning the aggregated
  // zero-block slot from its original size to its remaining size) is
  // precisely the renormalized peeled distribution. No per-round
  // UtilityVector rebuilds, exp() recomputation, or O(m) find+erase. One
  // exception: when the picks so far carried essentially all of the frozen
  // distribution's mass (a far-dominant head at large ε), the leftover
  // probabilities underflow and conditioning loses information — then,
  // rarely, the sampler is rebuilt over the remaining pool, restoring full
  // precision via a fresh u_max.
  PRIVREC_ASSIGN_OR_RETURN(RecommendationSampler sampler,
                           mechanism.MakeSampler(utilities));
  uint64_t zeros = utilities.num_zero();

  // All bookkeeping lives in the current sampler's slot space (the sampler
  // carries its own (node, utility) copies). `pool` is a swap-and-pop set
  // of the not-yet-picked slots (the satellite fix for the old
  // std::find_if + erase), `position[s]` the index of slot s inside it.
  size_t num_slots = 0;
  std::vector<uint32_t> pool, position;
  std::vector<char> picked;
  size_t pool_size = 0;
  // Mass of still-available outcomes under the current sampler; doubles as
  // the rejection acceptance rate and the fallback partition function.
  double remaining_mass = 1.0;
  // Zero-block size the current sampler was built against, and the
  // per-candidate share of its aggregated slot.
  uint64_t sampler_zeros = 0;
  double zero_per_candidate = 0;

  auto reset_bookkeeping = [&]() {
    num_slots = sampler.num_nonzero();
    pool.resize(num_slots);
    position.resize(num_slots);
    picked.assign(num_slots, 0);
    for (uint32_t s = 0; s < num_slots; ++s) pool[s] = position[s] = s;
    pool_size = num_slots;
    sampler_zeros = zeros;
    zero_per_candidate =
        zeros > 0
            ? sampler.ZeroBlockProbability() / static_cast<double>(zeros)
            : 0.0;
    remaining_mass = 1.0;
  };
  reset_bookkeeping();

  // Rebuilds the sampler over the not-yet-picked pool; O(pool_size log
  // pool_size), triggered at most once per ~9 decades of lost mass.
  auto rebuild = [&]() -> Status {
    std::vector<UtilityEntry> left;
    left.reserve(pool_size);
    for (size_t p = 0; p < pool_size; ++p) {
      left.push_back(sampler.entry(pool[p]));
    }
    UtilityVector peeled(utilities.target(),
                         static_cast<uint64_t>(pool_size) + zeros,
                         std::move(left));
    auto rebuilt = mechanism.MakeSampler(peeled);
    PRIVREC_RETURN_NOT_OK(rebuilt.status());
    sampler = *std::move(rebuilt);
    reset_bookkeeping();
    return Status::OK();
  };

  TopKResult result;
  result.picks.reserve(k);
  for (size_t round = 0; round < k; ++round) {
    // Mass collapse: the frozen distribution can no longer resolve the
    // remaining candidates; rebuild against a fresh u_max.
    if (remaining_mass < 1e-9) {
      PRIVREC_RETURN_NOT_OK(rebuild());
    }
    // -2 = undecided, -1 = zero block, >= 0 = sampler slot.
    ptrdiff_t chosen = -2;
    // Rejection from the frozen table: expected attempts are
    // 1/remaining_mass, so lean on it only while the remaining mass stays
    // large; the cap catches adversarially concentrated vectors.
    if (remaining_mass > 0.25) {
      for (int attempt = 0; attempt < 64 && chosen == -2; ++attempt) {
        const size_t slot = sampler.DrawIndex(rng);
        if (slot == num_slots) {
          if (zeros == 0) continue;
          // Thin the aggregated zero slot to its remaining size.
          if (zeros == sampler_zeros ||
              rng.NextDouble() * static_cast<double>(sampler_zeros) <
                  static_cast<double>(zeros)) {
            chosen = -1;
          }
        } else if (!picked[slot]) {
          chosen = static_cast<ptrdiff_t>(slot);
        }
      }
    }
    if (chosen == -2) {
      // Exact fallback: renormalized cumulative scan over the remaining
      // pool (O(pool_size), allocation-free).
      double coin = rng.NextDouble() * remaining_mass;
      for (size_t p = 0; p < pool_size && chosen == -2; ++p) {
        coin -= sampler.Probability(pool[p]);
        if (coin < 0) chosen = static_cast<ptrdiff_t>(pool[p]);
      }
      if (chosen == -2) {
        // Floating-point shortfall: attribute the sliver to the zero
        // block when it still has members, else to the last pool entry.
        if (zeros > 0) {
          chosen = -1;
        } else {
          PRIVREC_CHECK_GT(pool_size, 0u);
          chosen = static_cast<ptrdiff_t>(pool[pool_size - 1]);
        }
      }
    }

    if (chosen == -1) {
      PRIVREC_CHECK_GT(zeros, 0u);
      --zeros;
      remaining_mass -= zero_per_candidate;
      result.picks.push_back(Recommendation{kUnresolvedZeroNode, 0.0, true});
    } else {
      const auto slot = static_cast<uint32_t>(chosen);
      picked[slot] = 1;
      remaining_mass -= sampler.Probability(slot);
      // Swap-and-pop removal from the pool.
      const uint32_t last = pool[pool_size - 1];
      pool[position[slot]] = last;
      position[last] = position[slot];
      --pool_size;
      const UtilityEntry& e = sampler.entry(slot);
      result.picks.push_back(Recommendation{e.node, e.utility, false});
    }
  }
  const double ideal = IdealMass(utilities, k);
  double got = 0;
  for (const Recommendation& pick : result.picks) got += pick.utility;
  result.accuracy = ideal > 0 ? got / ideal : 1.0;
  return result;
}

Result<TopKResult> OneShotLaplaceTopK(const UtilityVector& utilities,
                                      size_t k, double epsilon,
                                      double sensitivity, Rng& rng) {
  PRIVREC_RETURN_NOT_OK(ValidateTopK(utilities, k));
  const LaplaceDistribution noise(static_cast<double>(k) * sensitivity /
                                  epsilon);
  struct Scored {
    double noisy;
    Recommendation rec;
  };
  std::vector<Scored> scored;
  // Tie-grouped draws (the same trick the sequential Laplace mechanism
  // uses, extended from the max to the top-min(k, m) order statistics):
  // candidates sharing a utility value are exchangeable, so a group of m
  // contributes at most min(k, m) entries to the final top-k, and its
  // j-th largest noisy value is the max of (m-j+1) iid samples
  // conditioned below the (j-1)-th (CDF F(y)^m peeled one winner at a
  // time, exactly like the zero block below). Conditioned on the values,
  // the members receiving them form a uniform random subset drawn in rank
  // order. A draw therefore costs O(k · #distinct utilities) noise
  // samples, not O(#nonzero) — and is distributed exactly as noising
  // every candidate independently.
  const auto& entries = utilities.nonzero();
  std::vector<uint32_t> members;  // scratch for within-group selection
  for (size_t i = 0; i < entries.size();) {
    size_t j = i + 1;
    while (j < entries.size() && entries[j].utility == entries[i].utility) {
      ++j;
    }
    const size_t run = j - i;
    if (run == 1) {
      scored.push_back({entries[i].utility + noise.Sample(rng),
                        Recommendation{entries[i].node, entries[i].utility,
                                       false}});
    } else {
      const size_t take = std::min(k, run);
      members.resize(run);
      for (uint32_t m = 0; m < run; ++m) members[m] = static_cast<uint32_t>(m);
      double group_ceiling = std::numeric_limits<double>::infinity();
      for (size_t t = 0; t < take; ++t) {
        const double draw =
            noise.SampleMaxOfBelow(rng, run - t, group_ceiling);
        group_ceiling = draw;
        // Uniform not-yet-chosen member gets this rank (partial
        // Fisher-Yates keeps the chosen prefix distinct).
        const size_t pick = t + static_cast<size_t>(rng.NextBounded(
                                    static_cast<uint64_t>(run - t)));
        std::swap(members[t], members[pick]);
        const UtilityEntry& e = entries[i + members[t]];
        scored.push_back(
            {e.utility + draw, Recommendation{e.node, e.utility, false}});
      }
    }
    i = j;
  }
  // The zero block can occupy up to k of the output slots; sample its k
  // largest noisy values via iterated conditional max (exact: the j-th
  // largest of m iid samples is the max of a shrinking block conditioned
  // below the previous draw).
  uint64_t zeros = utilities.num_zero();
  double ceiling = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < k && zeros > 0; ++j, --zeros) {
    const double draw =
        noise.SampleMaxOfBelow(rng, static_cast<size_t>(zeros), ceiling);
    ceiling = draw;
    scored.push_back(
        {draw, Recommendation{kUnresolvedZeroNode, 0.0, true}});
  }
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<ptrdiff_t>(k), scored.end(),
                    [](const Scored& a, const Scored& b) {
                      return a.noisy > b.noisy;
                    });
  TopKResult result;
  double got = 0;
  for (size_t i = 0; i < k; ++i) {
    result.picks.push_back(scored[i].rec);
    got += scored[i].rec.utility;
  }
  const double ideal = IdealMass(utilities, k);
  result.accuracy = ideal > 0 ? got / ideal : 1.0;
  return result;
}

Result<TopKResult> BestTopK(const UtilityVector& utilities, size_t k) {
  PRIVREC_RETURN_NOT_OK(ValidateTopK(utilities, k));
  TopKResult result;
  const auto& entries = utilities.nonzero();
  for (size_t i = 0; i < k; ++i) {
    if (i < entries.size()) {
      result.picks.push_back(
          Recommendation{entries[i].node, entries[i].utility, false});
    } else {
      result.picks.push_back(Recommendation{kUnresolvedZeroNode, 0.0, true});
    }
  }
  result.accuracy = 1.0;
  return result;
}

}  // namespace privrec
