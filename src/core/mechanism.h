#ifndef PRIVREC_CORE_MECHANISM_H_
#define PRIVREC_CORE_MECHANISM_H_

#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "random/rng.h"
#include "utility/utility_vector.h"

namespace privrec {

/// Sentinel for "a zero-utility candidate, identity not materialized".
inline constexpr NodeId kUnresolvedZeroNode =
    std::numeric_limits<NodeId>::max();

/// One drawn recommendation. When a mechanism lands in the zero-utility
/// block (whose members are not materialized in the UtilityVector), `node`
/// is kUnresolvedZeroNode; ResolveZeroUtilityNode picks a concrete uniform
/// member when an actual node id is needed.
struct Recommendation {
  NodeId node = kUnresolvedZeroNode;
  double utility = 0;
  bool from_zero_block = false;
};

/// Exact recommendation distribution of a mechanism on one utility vector:
/// per-nonzero-candidate probabilities plus the total mass of the zero
/// block (within which all candidates are exchangeable, hence uniform).
struct RecommendationDistribution {
  std::vector<double> nonzero_probs;  // aligned with UtilityVector::nonzero()
  double zero_block_prob = 0;

  /// Expected accuracy Σ u_i p_i / u_max (Definition 2's inner expression)
  /// under this distribution. Zero-block mass contributes no utility.
  double ExpectedAccuracy(const UtilityVector& utilities) const;
};

/// A (possibly randomized) single-recommendation algorithm R (Section 3.1):
/// a probability vector over candidates, determined by the utility vector.
/// Implementations declare their privacy guarantee via epsilon() (infinity
/// for non-private baselines).
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  virtual std::string name() const = 0;

  /// The ε of the mechanism's differential-privacy guarantee;
  /// +infinity when the mechanism is not private (R_best).
  virtual double epsilon() const = 0;

  /// Draws one recommendation. Fails with FailedPrecondition when the
  /// candidate set is empty.
  virtual Result<Recommendation> Recommend(const UtilityVector& utilities,
                                           Rng& rng) const = 0;

  /// Exact output distribution. Mechanisms without a closed form (Laplace
  /// for general n) return Unimplemented; use eval/accuracy.h instead.
  virtual Result<RecommendationDistribution> Distribution(
      const UtilityVector& utilities) const {
    (void)utilities;
    return Status::Unimplemented("no closed-form distribution for " + name());
  }
};

/// Uniformly samples a concrete zero-utility candidate id: a node that is
/// not the target, not an out-neighbor of the target, and not in the
/// nonzero support. Rejection sampling; FailedPrecondition if none exists.
Result<NodeId> ResolveZeroUtilityNode(const CsrGraph& graph,
                                      const UtilityVector& utilities,
                                      Rng& rng);

}  // namespace privrec

#endif  // PRIVREC_CORE_MECHANISM_H_
