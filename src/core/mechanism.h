#ifndef PRIVREC_CORE_MECHANISM_H_
#define PRIVREC_CORE_MECHANISM_H_

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "random/alias_sampler.h"
#include "random/rng.h"
#include "utility/utility_vector.h"

namespace privrec {

/// Sentinel for "a zero-utility candidate, identity not materialized".
inline constexpr NodeId kUnresolvedZeroNode =
    std::numeric_limits<NodeId>::max();

/// One drawn recommendation. When a mechanism lands in the zero-utility
/// block (whose members are not materialized in the UtilityVector), `node`
/// is kUnresolvedZeroNode; ResolveZeroUtilityNode picks a concrete uniform
/// member when an actual node id is needed.
struct Recommendation {
  NodeId node = kUnresolvedZeroNode;
  double utility = 0;
  bool from_zero_block = false;
};

/// Exact recommendation distribution of a mechanism on one utility vector:
/// per-nonzero-candidate probabilities plus the total mass of the zero
/// block (within which all candidates are exchangeable, hence uniform).
struct RecommendationDistribution {
  std::vector<double> nonzero_probs;  // aligned with UtilityVector::nonzero()
  double zero_block_prob = 0;

  /// Expected accuracy Σ u_i p_i / u_max (Definition 2's inner expression)
  /// under this distribution. Zero-block mass contributes no utility.
  double ExpectedAccuracy(const UtilityVector& utilities) const;
};

/// O(1)-per-draw sampler over one frozen recommendation distribution:
/// a Walker/Vose alias table over the nonzero candidates plus one
/// aggregated slot for the entire zero-utility block. Build once
/// (O(#nonzero)), then draw as many times as needed — the repeated-draw
/// workhorse behind Monte-Carlo accuracy loops, peeling top-k, and list
/// serving. Self-contained: it copies the (node, utility) entries, so it
/// may outlive the UtilityVector it was built from.
class RecommendationSampler {
 public:
  /// `dist` must be the mechanism's exact output distribution on
  /// `utilities` (aligned nonzero_probs + zero_block_prob).
  RecommendationSampler(const UtilityVector& utilities,
                        RecommendationDistribution dist);

  /// Index in [0, num_nonzero()] — num_nonzero() is the aggregated
  /// zero-block slot (only ever drawn when num_zero() > 0).
  size_t DrawIndex(Rng& rng) const { return alias_.Sample(rng); }

  /// One O(1) draw, distributed exactly as the originating mechanism's
  /// Recommend on the frozen utility vector.
  Recommendation Draw(Rng& rng) const {
    const size_t slot = DrawIndex(rng);
    if (slot == entries_.size()) {
      return Recommendation{kUnresolvedZeroNode, 0.0, true};
    }
    return Recommendation{entries_[slot].node, entries_[slot].utility, false};
  }

  size_t num_nonzero() const { return entries_.size(); }
  uint64_t num_zero() const { return num_zero_; }

  /// Exact probability of drawing nonzero entry i.
  double Probability(size_t i) const { return alias_.Probability(i); }

  /// Exact total probability of the zero-utility block.
  double ZeroBlockProbability() const {
    return num_zero_ == 0 ? 0.0 : alias_.Probability(entries_.size());
  }

  /// The (node, utility) entry behind nonzero slot i.
  const UtilityEntry& entry(size_t i) const { return entries_[i]; }

 private:
  std::vector<UtilityEntry> entries_;
  uint64_t num_zero_;
  AliasSampler alias_;
};

/// A (possibly randomized) single-recommendation algorithm R (Section 3.1):
/// a probability vector over candidates, determined by the utility vector.
/// Implementations declare their privacy guarantee via epsilon() (infinity
/// for non-private baselines).
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  virtual std::string name() const = 0;

  /// The ε of the mechanism's differential-privacy guarantee;
  /// +infinity when the mechanism is not private (R_best).
  virtual double epsilon() const = 0;

  /// Draws one recommendation. Fails with FailedPrecondition when the
  /// candidate set is empty.
  virtual Result<Recommendation> Recommend(const UtilityVector& utilities,
                                           Rng& rng) const = 0;

  /// Exact output distribution. Mechanisms without a closed form (Laplace
  /// for general n) return Unimplemented; use eval/accuracy.h instead.
  virtual Result<RecommendationDistribution> Distribution(
      const UtilityVector& utilities) const {
    (void)utilities;
    return Status::Unimplemented("no closed-form distribution for " + name());
  }

  /// Builds a frozen O(1)-per-draw sampler equivalent to Recommend on this
  /// utility vector. Only mechanisms whose exact distribution is cheap to
  /// materialize override this (ExponentialMechanism: one O(#nonzero)
  /// pass); the default is Unimplemented so repeated-draw call sites fall
  /// back to per-draw Recommend rather than silently paying an expensive
  /// build (Laplace's quadrature costs more than the draws it would save).
  virtual Result<RecommendationSampler> MakeSampler(
      const UtilityVector& utilities) const {
    (void)utilities;
    return Status::Unimplemented("no frozen sampler for " + name());
  }
};

/// Uniformly samples a concrete zero-utility candidate id: a node that is
/// not the target, not an out-neighbor of the target, and not in the
/// nonzero support. Rejection sampling; FailedPrecondition if none exists.
Result<NodeId> ResolveZeroUtilityNode(const CsrGraph& graph,
                                      const UtilityVector& utilities,
                                      Rng& rng);

}  // namespace privrec

#endif  // PRIVREC_CORE_MECHANISM_H_
