#include "core/recommender.h"

#include "common/logging.h"
#include "core/baseline_mechanisms.h"
#include "core/bounds.h"
#include "core/exponential_mechanism.h"
#include "core/gumbel_mechanism.h"
#include "core/laplace_mechanism.h"
#include "core/linear_smoothing.h"
#include "utility/adamic_adar.h"
#include "utility/common_neighbors.h"
#include "utility/link_predictors.h"
#include "utility/personalized_pagerank.h"
#include "utility/weighted_paths.h"

namespace privrec {
namespace {

std::unique_ptr<UtilityFunction> MakeUtility(const RecommenderOptions& opt) {
  switch (opt.utility) {
    case UtilityKind::kCommonNeighbors:
      return std::make_unique<CommonNeighborsUtility>();
    case UtilityKind::kWeightedPaths:
      return std::make_unique<WeightedPathsUtility>(opt.gamma,
                                                    opt.max_path_length);
    case UtilityKind::kAdamicAdar:
      return std::make_unique<AdamicAdarUtility>();
    case UtilityKind::kPersonalizedPageRank:
      return std::make_unique<PersonalizedPageRankUtility>();
    case UtilityKind::kJaccard:
      return std::make_unique<JaccardUtility>();
    case UtilityKind::kResourceAllocation:
      return std::make_unique<ResourceAllocationUtility>();
    case UtilityKind::kKatz:
      return std::make_unique<KatzUtility>();
    case UtilityKind::kPreferentialAttachment:
      return std::make_unique<PreferentialAttachmentUtility>();
  }
  PRIVREC_FLOG << "unknown utility kind";
  return nullptr;
}

std::shared_ptr<const Mechanism> MakeMechanism(const RecommenderOptions& opt,
                                               const CsrGraph& graph,
                                               double sensitivity) {
  switch (opt.mechanism) {
    case MechanismKind::kBest:
      return std::make_shared<BestMechanism>();
    case MechanismKind::kUniform:
      return std::make_shared<UniformMechanism>();
    case MechanismKind::kExponential:
      return std::make_shared<ExponentialMechanism>(opt.epsilon, sensitivity);
    case MechanismKind::kLaplace:
      return std::make_shared<LaplaceMechanism>(opt.epsilon, sensitivity);
    case MechanismKind::kGumbelMax:
      return std::make_shared<GumbelMaxMechanism>(opt.epsilon, sensitivity);
    case MechanismKind::kLinearSmoothing: {
      const double x = LinearSmoothingMechanism::XForEpsilon(
          opt.epsilon, graph.num_nodes());
      auto smoothing = std::make_shared<LinearSmoothingMechanism>(
          x, std::make_shared<BestMechanism>());
      smoothing->set_num_candidates_hint(graph.num_nodes());
      return smoothing;
    }
  }
  PRIVREC_FLOG << "unknown mechanism kind";
  return nullptr;
}

}  // namespace

SocialRecommender::SocialRecommender(const CsrGraph& graph,
                                     const RecommenderOptions& options)
    : graph_(graph), options_(options), utility_(MakeUtility(options)) {
  sensitivity_ = options.sensitivity_override > 0
                     ? options.sensitivity_override
                     : utility_->SensitivityBound(graph);
  mechanism_ = MakeMechanism(options, graph, sensitivity_);
}

UtilityVector SocialRecommender::ComputeUtilities(NodeId target) const {
  return utility_->Compute(graph_, target);
}

Result<NodeId> SocialRecommender::Recommend(NodeId target, Rng& rng) const {
  if (target >= graph_.num_nodes()) {
    return Status::InvalidArgument("target out of range");
  }
  UtilityVector utilities = ComputeUtilities(target);
  PRIVREC_ASSIGN_OR_RETURN(Recommendation rec,
                           mechanism_->Recommend(utilities, rng));
  if (!rec.from_zero_block) return rec.node;
  return ResolveZeroUtilityNode(graph_, utilities, rng);
}

Result<double> SocialRecommender::ExpectedAccuracy(NodeId target) const {
  if (target >= graph_.num_nodes()) {
    return Status::InvalidArgument("target out of range");
  }
  UtilityVector utilities = ComputeUtilities(target);
  if (utilities.empty()) {
    return Status::FailedPrecondition(
        "target has no nonzero-utility candidates");
  }
  PRIVREC_ASSIGN_OR_RETURN(RecommendationDistribution dist,
                           mechanism_->Distribution(utilities));
  return dist.ExpectedAccuracy(utilities);
}

double SocialRecommender::AccuracyCeiling(NodeId target) const {
  UtilityVector utilities = ComputeUtilities(target);
  return TheoreticalAccuracyBound(graph_, *utility_, target, utilities,
                                  options_.epsilon);
}

}  // namespace privrec
