#include "core/baseline_mechanisms.h"

namespace privrec {

Result<Recommendation> BestMechanism::Recommend(
    const UtilityVector& utilities, Rng& /*rng*/) const {
  if (utilities.empty()) {
    return Status::FailedPrecondition(
        "best mechanism needs a nonzero-utility candidate");
  }
  Recommendation rec;
  rec.node = utilities.argmax();
  rec.utility = utilities.max_utility();
  rec.from_zero_block = false;
  return rec;
}

Result<RecommendationDistribution> BestMechanism::Distribution(
    const UtilityVector& utilities) const {
  if (utilities.empty()) {
    return Status::FailedPrecondition(
        "best mechanism needs a nonzero-utility candidate");
  }
  RecommendationDistribution dist;
  dist.nonzero_probs.assign(utilities.nonzero().size(), 0.0);
  dist.nonzero_probs[0] = 1.0;  // entries are sorted by descending utility
  dist.zero_block_prob = 0.0;
  return dist;
}

Result<Recommendation> UniformMechanism::Recommend(
    const UtilityVector& utilities, Rng& rng) const {
  const uint64_t total = utilities.num_candidates();
  if (total == 0) {
    return Status::FailedPrecondition("no candidates to recommend");
  }
  uint64_t pick = rng.NextBounded(total);
  Recommendation rec;
  if (pick < utilities.nonzero().size()) {
    const UtilityEntry& e = utilities.nonzero()[pick];
    rec.node = e.node;
    rec.utility = e.utility;
    rec.from_zero_block = false;
  } else {
    rec.node = kUnresolvedZeroNode;
    rec.utility = 0;
    rec.from_zero_block = true;
  }
  return rec;
}

Result<RecommendationDistribution> UniformMechanism::Distribution(
    const UtilityVector& utilities) const {
  const uint64_t total = utilities.num_candidates();
  if (total == 0) {
    return Status::FailedPrecondition("no candidates to recommend");
  }
  RecommendationDistribution dist;
  const double p = 1.0 / static_cast<double>(total);
  dist.nonzero_probs.assign(utilities.nonzero().size(), p);
  dist.zero_block_prob = p * static_cast<double>(utilities.num_zero());
  return dist;
}

}  // namespace privrec
