#include "core/exponential_mechanism.h"

#include <cmath>
#include <utility>

#include "common/logging.h"

namespace privrec {

ExponentialMechanism::ExponentialMechanism(double epsilon, double sensitivity)
    : epsilon_(epsilon), sensitivity_(sensitivity) {
  PRIVREC_CHECK_GT(epsilon, 0.0);
  PRIVREC_CHECK_GT(sensitivity, 0.0);
}

Result<RecommendationDistribution> ExponentialMechanism::Distribution(
    const UtilityVector& utilities) const {
  if (utilities.num_candidates() == 0) {
    return Status::FailedPrecondition("no candidates to recommend");
  }
  const double u_max = utilities.max_utility();
  const double scale = epsilon_ / sensitivity_;
  RecommendationDistribution dist;
  dist.nonzero_probs.reserve(utilities.nonzero().size());
  double partition = 0;
  for (const UtilityEntry& e : utilities.nonzero()) {
    double w = std::exp(scale * (e.utility - u_max));
    dist.nonzero_probs.push_back(w);
    partition += w;
  }
  const double zero_weight =
      static_cast<double>(utilities.num_zero()) * std::exp(-scale * u_max);
  partition += zero_weight;
  for (double& p : dist.nonzero_probs) p /= partition;
  dist.zero_block_prob = zero_weight / partition;
  return dist;
}

Result<RecommendationSampler> ExponentialMechanism::MakeSampler(
    const UtilityVector& utilities) const {
  PRIVREC_ASSIGN_OR_RETURN(RecommendationDistribution dist,
                           Distribution(utilities));
  return RecommendationSampler(utilities, std::move(dist));
}

Result<Recommendation> ExponentialMechanism::Recommend(
    const UtilityVector& utilities, Rng& rng) const {
  PRIVREC_ASSIGN_OR_RETURN(RecommendationDistribution dist,
                           Distribution(utilities));
  double coin = rng.NextDouble();
  double cumulative = 0;
  const auto& entries = utilities.nonzero();
  for (size_t i = 0; i < entries.size(); ++i) {
    cumulative += dist.nonzero_probs[i];
    if (coin < cumulative) {
      Recommendation rec;
      rec.node = entries[i].node;
      rec.utility = entries[i].utility;
      rec.from_zero_block = false;
      return rec;
    }
  }
  if (utilities.num_zero() == 0) {
    // Floating-point shortfall in the cumulative sum: attribute the sliver
    // to the last (least likely) nonzero candidate rather than a
    // nonexistent zero block.
    Recommendation rec;
    rec.node = entries.back().node;
    rec.utility = entries.back().utility;
    rec.from_zero_block = false;
    return rec;
  }
  Recommendation rec;
  rec.node = kUnresolvedZeroNode;
  rec.utility = 0;
  rec.from_zero_block = true;
  return rec;
}

}  // namespace privrec
