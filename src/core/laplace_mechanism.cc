#include "core/laplace_mechanism.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "random/distributions.h"

namespace privrec {
namespace {

/// Integration grid density. The integrand is smooth (products of Laplace
/// CDFs); 64 points per noise-scale unit gives ~1e-9 relative accuracy in
/// the regimes the experiments exercise.
constexpr int kPointsPerScale = 64;
constexpr double kTailScales = 42.0;  // exp(-42) ~ 5e-19: negligible tails

}  // namespace

LaplaceMechanism::LaplaceMechanism(double epsilon, double sensitivity)
    : epsilon_(epsilon), sensitivity_(sensitivity) {
  PRIVREC_CHECK_GT(epsilon, 0.0);
  PRIVREC_CHECK_GT(sensitivity, 0.0);
}

Result<Recommendation> LaplaceMechanism::Recommend(
    const UtilityVector& utilities, Rng& rng) const {
  if (utilities.num_candidates() == 0) {
    return Status::FailedPrecondition("no candidates to recommend");
  }
  const LaplaceDistribution noise(noise_scale());
  // Generalized zero-block trick: candidates sharing a utility value are
  // exchangeable, so each maximal tie group contributes max-of-m noise in
  // O(1) via SampleMaxOf, and — conditioned on the group winning — the
  // concrete winner is uniform within the group. Utility vectors from
  // count-style utilities are dominated by ties, so a draw costs
  // O(#distinct utilities), not O(#nonzero). Distributed exactly as the
  // naive per-candidate mechanism.
  const auto& entries = utilities.nonzero();
  double best_noisy = -std::numeric_limits<double>::infinity();
  size_t best_start = 0, best_run = 0;  // best_run == 0 <=> zero block best
  for (size_t i = 0; i < entries.size();) {
    size_t j = i + 1;
    while (j < entries.size() && entries[j].utility == entries[i].utility) {
      ++j;
    }
    const size_t run = j - i;
    const double noisy =
        entries[i].utility +
        (run == 1 ? noise.Sample(rng) : noise.SampleMaxOf(rng, run));
    if (noisy > best_noisy) {
      best_noisy = noisy;
      best_start = i;
      best_run = run;
    }
    i = j;
  }
  const uint64_t zeros = utilities.num_zero();
  if (zeros > 0) {
    const double zero_noisy = noise.SampleMaxOf(rng, zeros);
    if (zero_noisy > best_noisy) best_run = 0;
  }
  if (best_run == 0) {
    return Recommendation{kUnresolvedZeroNode, 0.0, true};
  }
  const size_t winner =
      best_start + (best_run == 1 ? 0 : rng.NextBounded(best_run));
  return Recommendation{entries[winner].node, entries[winner].utility, false};
}

Result<RecommendationDistribution> LaplaceMechanism::Distribution(
    const UtilityVector& utilities) const {
  if (utilities.num_candidates() == 0) {
    return Status::FailedPrecondition("no candidates to recommend");
  }
  const auto& entries = utilities.nonzero();
  const double b = noise_scale();
  const LaplaceDistribution noise(b);
  const double u_max = utilities.max_utility();
  const uint64_t zeros = utilities.num_zero();

  // Integration window: noisy utilities live in
  // [0 - tails, u_max + tails] w.h.p.
  const double lo = -kTailScales * b;
  const double hi = u_max + kTailScales * b;
  const int steps_raw =
      static_cast<int>((hi - lo) / b * kPointsPerScale);
  const int steps = std::min(std::max(steps_raw, 512), 1 << 20) & ~1;  // even
  const double h = (hi - lo) / steps;

  // log F(x - u_j) summed over all candidates, evaluated per grid point.
  // P[i wins] = ∫ f(x-u_i)/F(x-u_i) · exp(Σ_j log F(x-u_j)) dx.
  RecommendationDistribution dist;
  dist.nonzero_probs.assign(entries.size(), 0.0);
  dist.zero_block_prob = 0.0;

  auto log_cdf = [&](double y) { return std::log(noise.Cdf(y)); };
  auto pdf = [&](double y) {
    return std::exp(-std::fabs(y) / b) / (2.0 * b);
  };

  for (int s = 0; s <= steps; ++s) {
    const double x = lo + h * s;
    // Simpson weights 1,4,2,4,...,2,4,1.
    const double w = (s == 0 || s == steps) ? 1.0 : (s % 2 == 1 ? 4.0 : 2.0);
    double log_prod = 0;
    for (const UtilityEntry& e : entries) log_prod += log_cdf(x - e.utility);
    if (zeros > 0) log_prod += static_cast<double>(zeros) * log_cdf(x);
    if (log_prod < -700.0) continue;  // exp underflows: contributes nothing

    for (size_t i = 0; i < entries.size(); ++i) {
      const double y = x - entries[i].utility;
      const double cdf = noise.Cdf(y);
      if (cdf <= 0) continue;
      dist.nonzero_probs[i] +=
          w * pdf(y) * std::exp(log_prod - std::log(cdf));
    }
    if (zeros > 0) {
      const double cdf0 = noise.Cdf(x);
      if (cdf0 > 0) {
        dist.zero_block_prob += w * static_cast<double>(zeros) * pdf(x) *
                                std::exp(log_prod - std::log(cdf0));
      }
    }
  }
  const double factor = h / 3.0;
  double total = 0;
  for (double& p : dist.nonzero_probs) {
    p *= factor;
    total += p;
  }
  dist.zero_block_prob *= factor;
  total += dist.zero_block_prob;
  // Normalize away residual quadrature error; total should be within
  // ~1e-6 of 1 already.
  if (total > 0) {
    for (double& p : dist.nonzero_probs) p /= total;
    dist.zero_block_prob /= total;
  }
  return dist;
}

}  // namespace privrec
