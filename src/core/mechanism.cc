#include "core/mechanism.h"

#include <unordered_set>

namespace privrec {
namespace {

/// Alias-table weights: one bucket per nonzero candidate plus, when the
/// zero block is nonempty, one aggregated bucket carrying its whole mass.
std::vector<double> SamplerWeights(const RecommendationDistribution& dist,
                                   uint64_t num_zero) {
  std::vector<double> weights = dist.nonzero_probs;
  if (num_zero > 0) weights.push_back(dist.zero_block_prob);
  return weights;
}

}  // namespace

RecommendationSampler::RecommendationSampler(const UtilityVector& utilities,
                                             RecommendationDistribution dist)
    : entries_(utilities.nonzero()),
      num_zero_(utilities.num_zero()),
      alias_(SamplerWeights(dist, utilities.num_zero())) {}

double RecommendationDistribution::ExpectedAccuracy(
    const UtilityVector& utilities) const {
  const double u_max = utilities.max_utility();
  if (u_max <= 0) return 0;
  double expected = 0;
  const auto& entries = utilities.nonzero();
  for (size_t i = 0; i < entries.size() && i < nonzero_probs.size(); ++i) {
    expected += entries[i].utility * nonzero_probs[i];
  }
  return expected / u_max;
}

Result<NodeId> ResolveZeroUtilityNode(const CsrGraph& graph,
                                      const UtilityVector& utilities,
                                      Rng& rng) {
  if (utilities.num_zero() == 0) {
    return Status::FailedPrecondition("no zero-utility candidates");
  }
  std::unordered_set<NodeId> support;
  support.reserve(utilities.nonzero().size());
  for (const UtilityEntry& e : utilities.nonzero()) support.insert(e.node);
  const NodeId target = utilities.target();
  // Zero-utility candidates are a constant fraction of V in all realistic
  // inputs, so rejection terminates fast; cap attempts for pathological
  // graphs and fall back to a scan.
  for (int attempt = 0; attempt < 256; ++attempt) {
    NodeId v = static_cast<NodeId>(rng.NextBounded(graph.num_nodes()));
    if (v == target || graph.HasEdge(target, v) || support.count(v) > 0) {
      continue;
    }
    return v;
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (v == target || graph.HasEdge(target, v) || support.count(v) > 0) {
      continue;
    }
    return v;
  }
  return Status::Internal("zero-utility candidate bookkeeping mismatch");
}

}  // namespace privrec
