#ifndef PRIVREC_CORE_RECOMMENDER_H_
#define PRIVREC_CORE_RECOMMENDER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/mechanism.h"
#include "graph/csr_graph.h"
#include "random/rng.h"
#include "utility/utility_function.h"

namespace privrec {

/// Utility-function choices for the facade.
enum class UtilityKind {
  kCommonNeighbors,
  kWeightedPaths,
  kAdamicAdar,
  kPersonalizedPageRank,
  kJaccard,
  kResourceAllocation,
  kKatz,
  kPreferentialAttachment,
};

/// Mechanism choices for the facade.
enum class MechanismKind {
  kBest,            // non-private optimum R_best
  kUniform,         // 0-DP floor
  kExponential,     // A_E(ε)
  kLaplace,         // A_L(ε)
  kGumbelMax,       // A_E(ε) via noisy argmax (identical distribution)
  kLinearSmoothing, // A_S(x) with R_best inside, x calibrated to ε
};

/// Configuration of a SocialRecommender.
struct RecommenderOptions {
  UtilityKind utility = UtilityKind::kCommonNeighbors;
  MechanismKind mechanism = MechanismKind::kExponential;
  /// Privacy budget; ignored by kBest/kUniform.
  double epsilon = 1.0;
  /// γ for kWeightedPaths.
  double gamma = 0.005;
  /// Truncation length for kWeightedPaths (2 or 3).
  int max_path_length = 3;
  /// Override Δf; <= 0 means "use the utility's analytic bound".
  double sensitivity_override = 0;
};

/// The library's front door: ties a utility function, a privacy mechanism,
/// and the theory together behind one object, the way a product integration
/// would consume this work.
///
///   SocialRecommender rec(graph, options);
///   auto suggestion = rec.Recommend(target, rng);     // one private draw
///   double acc = *rec.ExpectedAccuracy(target);       // what it costs us
///   double cap = rec.AccuracyCeiling(target);         // what *anyone* gets
class SocialRecommender {
 public:
  /// The graph must outlive the recommender.
  SocialRecommender(const CsrGraph& graph, const RecommenderOptions& options);

  const UtilityFunction& utility() const { return *utility_; }
  const Mechanism& mechanism() const { return *mechanism_; }
  double sensitivity() const { return sensitivity_; }

  /// Utility vector for `target` (computed fresh; callers doing repeated
  /// analysis on one target should cache it).
  UtilityVector ComputeUtilities(NodeId target) const;

  /// Draws one recommendation for `target`, resolving zero-block picks to
  /// a concrete node id.
  Result<NodeId> Recommend(NodeId target, Rng& rng) const;

  /// Expected accuracy of the configured mechanism on `target`
  /// (Definition 2's per-vector value). Exact where the mechanism has a
  /// closed form; Unimplemented for Laplace on large vectors — use
  /// eval/accuracy.h's Monte-Carlo evaluator there.
  Result<double> ExpectedAccuracy(NodeId target) const;

  /// Corollary 1's cap on the accuracy *any* ε-DP mechanism could reach
  /// for this target (the "Theor. Bound" series of Figures 1-2).
  double AccuracyCeiling(NodeId target) const;

 private:
  const CsrGraph& graph_;
  RecommenderOptions options_;
  std::unique_ptr<UtilityFunction> utility_;
  std::shared_ptr<const Mechanism> mechanism_;
  double sensitivity_ = 0;
};

}  // namespace privrec

#endif  // PRIVREC_CORE_RECOMMENDER_H_
