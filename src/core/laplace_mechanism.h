#ifndef PRIVREC_CORE_LAPLACE_MECHANISM_H_
#define PRIVREC_CORE_LAPLACE_MECHANISM_H_

#include "core/mechanism.h"

namespace privrec {

/// The Laplace mechanism A_L(ε) (Definition 6): perturbs every candidate's
/// utility with independent Laplace(Δf/ε) noise and recommends the argmax
/// of the noisy utilities. ε-DP by the histogram argument of Theorem 4
/// (noisy counts are a private histogram; releasing the top bin's name is
/// post-processing).
///
/// A naive draw costs O(n) noise samples per recommendation — ~10^5 for
/// the paper's Twitter graph, of which all but a few hundred belong to
/// zero-utility candidates. This implementation samples one value per
/// maximal group of equal-utility candidates (the zero block is just the
/// largest such group): the max of m iid Laplace variables has CDF F(y)^m,
/// which LaplaceDistribution::SampleMaxOf inverts in O(1), and within the
/// winning group the concrete winner is uniform by exchangeability. A draw
/// is therefore O(#distinct utility values) — for count-valued utilities
/// typically tens, not hundreds — and is distributed exactly as the naive
/// mechanism. This is what makes the paper's 1000-trial Monte-Carlo
/// procedure cheap in the batch harness.
///
/// Distribution() evaluates the exact win probabilities
///   P[i wins] = ∫ f(x-u_i) Π_{j≠i} F(x-u_j) · F(x)^m dx
/// by composite Simpson quadrature (see laplace_mechanism.cc); the
/// experiments also offer the paper's 1,000-trial Monte-Carlo estimate
/// (eval/accuracy.h) for fidelity to Section 7.1.
class LaplaceMechanism : public Mechanism {
 public:
  LaplaceMechanism(double epsilon, double sensitivity);

  std::string name() const override { return "laplace"; }
  double epsilon() const override { return epsilon_; }
  double sensitivity() const { return sensitivity_; }

  /// Noise scale b = Δf/ε.
  double noise_scale() const { return sensitivity_ / epsilon_; }

  Result<Recommendation> Recommend(const UtilityVector& utilities,
                                   Rng& rng) const override;

  /// Exact (to quadrature accuracy ~1e-9) output distribution.
  Result<RecommendationDistribution> Distribution(
      const UtilityVector& utilities) const override;

 private:
  double epsilon_;
  double sensitivity_;
};

}  // namespace privrec

#endif  // PRIVREC_CORE_LAPLACE_MECHANISM_H_
