#include "core/gumbel_mechanism.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "core/exponential_mechanism.h"
#include "random/distributions.h"

namespace privrec {

GumbelMaxMechanism::GumbelMaxMechanism(double epsilon, double sensitivity)
    : epsilon_(epsilon), sensitivity_(sensitivity) {
  PRIVREC_CHECK_GT(epsilon, 0.0);
  PRIVREC_CHECK_GT(sensitivity, 0.0);
}

Result<Recommendation> GumbelMaxMechanism::Recommend(
    const UtilityVector& utilities, Rng& rng) const {
  if (utilities.num_candidates() == 0) {
    return Status::FailedPrecondition("no candidates to recommend");
  }
  const double scale = sensitivity_ / epsilon_;
  Recommendation best;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const UtilityEntry& e : utilities.nonzero()) {
    double score = e.utility + scale * SampleGumbel(rng);
    if (score > best_score) {
      best_score = score;
      best.node = e.node;
      best.utility = e.utility;
      best.from_zero_block = false;
    }
  }
  const uint64_t zeros = utilities.num_zero();
  if (zeros > 0) {
    // max of m iid Gumbel(0,1) ~ Gumbel(ln m, 1): shift one sample.
    double zero_score =
        scale * (std::log(static_cast<double>(zeros)) + SampleGumbel(rng));
    if (zero_score > best_score) {
      best.node = kUnresolvedZeroNode;
      best.utility = 0;
      best.from_zero_block = true;
    }
  }
  return best;
}

Result<RecommendationDistribution> GumbelMaxMechanism::Distribution(
    const UtilityVector& utilities) const {
  return ExponentialMechanism(epsilon_, sensitivity_)
      .Distribution(utilities);
}

}  // namespace privrec
