#ifndef PRIVREC_CORE_PROMOTION_H_
#define PRIVREC_CORE_PROMOTION_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "utility/utility_function.h"

namespace privrec {

/// Outcome of a constructive node promotion (the adversarial rewiring at
/// the heart of the paper's lower-bound proofs).
struct PromotionResult {
  CsrGraph rewired_graph;
  /// Edges that were added, in order.
  std::vector<std::pair<NodeId, NodeId>> added_edges;
  /// True if `promoted` is the unique argmax of the utility vector on
  /// rewired_graph.
  bool promoted_to_top = false;
};

/// Implements Claim 3's rewiring for common-neighbors-like utilities:
/// connects `promoted` to neighbors of `target` (and, if the target's
/// whole neighborhood is exhausted, grows it) until `promoted` strictly
/// dominates every other candidate. Fails if target/promoted coincide or
/// are adjacent.
///
/// Tests use this to verify the paper's t formulas end-to-end: the number
/// of edges added is <= EdgeAlterationsT(graph, target, utilities), and
/// the promoted node really becomes R_best's recommendation — exactly the
/// adversary move that forces Lemma 1's likelihood-ratio argument.
Result<PromotionResult> PromoteToTopUtility(const CsrGraph& graph,
                                            const UtilityFunction& utility,
                                            NodeId target, NodeId promoted);

}  // namespace privrec

#endif  // PRIVREC_CORE_PROMOTION_H_
