#ifndef PRIVREC_CORE_GUMBEL_MECHANISM_H_
#define PRIVREC_CORE_GUMBEL_MECHANISM_H_

#include "core/mechanism.h"

namespace privrec {

/// Gumbel-max implementation of the exponential mechanism: add iid Gumbel
/// noise of scale Δf/ε to every utility and take the argmax. This is
/// *distributionally identical* to ExponentialMechanism (the Gumbel-max
/// trick), but structurally identical to the Laplace mechanism — the only
/// difference between "Laplace" and "Exponential" in this library is which
/// noise distribution feeds the same noisy-argmax loop, which makes the
/// Section 6 / Appendix E comparison concrete: swap the noise, change the
/// mechanism.
///
/// Like LaplaceMechanism, the zero-utility block is drawn in O(1) via the
/// closed-form max of m iid Gumbel variables (Gumbel(ln m) + noise).
class GumbelMaxMechanism : public Mechanism {
 public:
  GumbelMaxMechanism(double epsilon, double sensitivity);

  std::string name() const override { return "gumbel_max"; }
  double epsilon() const override { return epsilon_; }

  Result<Recommendation> Recommend(const UtilityVector& utilities,
                                   Rng& rng) const override;

  /// Delegates to the exponential mechanism's closed form — the whole
  /// point of the Gumbel-max trick is that the two are the same
  /// distribution (verified by tests/extensions_test.cc).
  Result<RecommendationDistribution> Distribution(
      const UtilityVector& utilities) const override;

 private:
  double epsilon_;
  double sensitivity_;
};

}  // namespace privrec

#endif  // PRIVREC_CORE_GUMBEL_MECHANISM_H_
