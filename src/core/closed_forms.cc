#include "core/closed_forms.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace privrec {

double LaplaceTwoCandidateWinProbability(double u1, double u2,
                                         double epsilon) {
  PRIVREC_CHECK_GE(u1, u2);
  PRIVREC_CHECK_GT(epsilon, 0.0);
  const double g = epsilon * (u1 - u2);  // gap in noise-scale units
  return 1.0 - 0.5 * std::exp(-g) - g / (4.0 * std::exp(g));
}

double ExponentialTwoCandidateWinProbability(double u1, double u2,
                                             double epsilon) {
  PRIVREC_CHECK_GT(epsilon, 0.0);
  // Shift by max for numerical stability.
  const double m = std::max(u1, u2);
  const double w1 = std::exp(epsilon * (u1 - m));
  const double w2 = std::exp(epsilon * (u2 - m));
  return w1 / (w1 + w2);
}

}  // namespace privrec
