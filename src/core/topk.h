#ifndef PRIVREC_CORE_TOPK_H_
#define PRIVREC_CORE_TOPK_H_

#include <vector>

#include "common/result.h"
#include "core/mechanism.h"
#include "random/rng.h"
#include "utility/utility_vector.h"

namespace privrec {

/// Multiple private recommendations (the Appendix A extension: "Our
/// results would imply stronger negative results for making multiple
/// recommendations"). Two standard constructions:
///
/// 1. Peeling exponential mechanism: draw one candidate with A_E(ε/k),
///    remove it, repeat k times. Sequential composition gives ε-DP for the
///    whole list.
/// 2. One-shot noisy top-k: add Laplace(kΔf/ε) noise to every utility once
///    and release the k largest — the Bhaskar et al. (KDD'10) pattern the
///    related-work section contrasts with.
///
/// Both return the chosen entries in draw order. Zero-block picks carry
/// kUnresolvedZeroNode (each zero pick is a *distinct* uniform
/// zero-utility candidate; the zero block shrinks by one per pick).
struct TopKResult {
  std::vector<Recommendation> picks;
  /// Σ u(pick) / (sum of the k largest utilities): the natural accuracy
  /// extension of Definition 2 to k slots.
  double accuracy = 0;
};

/// Peeling exponential mechanism. ε is the TOTAL budget for all k picks.
Result<TopKResult> PeelingExponentialTopK(const UtilityVector& utilities,
                                          size_t k, double epsilon,
                                          double sensitivity, Rng& rng);

/// One-shot Laplace top-k. ε is the total budget (noise scale k·Δf/ε).
Result<TopKResult> OneShotLaplaceTopK(const UtilityVector& utilities,
                                      size_t k, double epsilon,
                                      double sensitivity, Rng& rng);

/// The non-private reference: the k highest utilities (accuracy 1).
Result<TopKResult> BestTopK(const UtilityVector& utilities, size_t k);

}  // namespace privrec

#endif  // PRIVREC_CORE_TOPK_H_
