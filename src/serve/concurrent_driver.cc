#include "serve/concurrent_driver.h"

#include <atomic>

#include "common/stopwatch.h"
#include "core/privacy_accountant.h"
#include "eval/parallel.h"
#include "random/rng.h"

namespace privrec {

ConcurrentDriverReport RunConcurrentDriver(
    RecommendationService& service, DynamicGraph& graph,
    const ConcurrentDriverOptions& options) {
  const NodeId num_users =
      options.num_users == 0 ? graph.num_nodes() : options.num_users;
  std::atomic<uint64_t> serve_ok{0}, serve_refused{0}, serve_failed{0};
  std::atomic<uint64_t> mutate_ok{0}, mutate_noop{0};

  // Per-worker request streams: splittable seeding, so the traffic shape
  // is reproducible for a fixed (seed, num_threads) regardless of thread
  // scheduling.
  SplitMix64 seeder(options.seed);
  std::vector<uint64_t> worker_seeds(options.num_threads);
  for (auto& s : worker_seeds) s = seeder.Next();

  Stopwatch watch;
  RunWorkers(options.num_threads, [&](unsigned w) {
    Rng rng(worker_seeds[w]);
    uint64_t ok = 0, refused = 0, failed = 0, mut_ok = 0, mut_noop = 0;
    for (uint64_t op = 0; op < options.ops_per_thread; ++op) {
      if (options.mutate_fraction > 0 &&
          rng.NextBernoulli(options.mutate_fraction)) {
        // Edge toggle on a uniform pair. A lost race (another worker
        // flipped the same pair between probe and mutation) surfaces as
        // FailedPrecondition from the graph; count it as a no-op.
        const NodeId u = static_cast<NodeId>(rng.NextBounded(num_users));
        NodeId v = static_cast<NodeId>(rng.NextBounded(num_users));
        if (u == v) v = (v + 1) % num_users;
        if (u == v) {
          ++mut_noop;
          continue;
        }
        Status status = graph.HasEdge(u, v) ? service.RemoveEdge(u, v)
                                            : service.AddEdge(u, v);
        if (status.ok()) {
          ++mut_ok;
        } else {
          ++mut_noop;
        }
        continue;
      }
      const NodeId user = static_cast<NodeId>(rng.NextBounded(num_users));
      if (options.list_fraction > 0 &&
          rng.NextBernoulli(options.list_fraction)) {
        auto list = service.ServeList(user, options.list_k);
        if (list.ok()) {
          ++ok;
        } else if (IsBudgetExhausted(list.status())) {
          ++refused;
        } else {
          ++failed;
        }
      } else {
        auto rec = service.ServeRecommendation(user);
        if (rec.ok()) {
          ++ok;
        } else if (IsBudgetExhausted(rec.status())) {
          ++refused;
        } else {
          ++failed;
        }
      }
    }
    serve_ok.fetch_add(ok, std::memory_order_acq_rel);
    serve_refused.fetch_add(refused, std::memory_order_acq_rel);
    serve_failed.fetch_add(failed, std::memory_order_acq_rel);
    mutate_ok.fetch_add(mut_ok, std::memory_order_acq_rel);
    mutate_noop.fetch_add(mut_noop, std::memory_order_acq_rel);
  });

  ConcurrentDriverReport report;
  report.wall_seconds = watch.ElapsedSeconds();
  report.serve_ok = serve_ok.load();
  report.serve_refused = serve_refused.load();
  report.serve_failed = serve_failed.load();
  report.mutate_ok = mutate_ok.load();
  report.mutate_noop = mutate_noop.load();
  const double wall = report.wall_seconds > 0 ? report.wall_seconds : 1e-12;
  report.serves_per_second = static_cast<double>(report.serve_ok) / wall;
  report.ops_per_second =
      static_cast<double>(report.serve_ok + report.serve_refused +
                          report.serve_failed + report.mutate_ok +
                          report.mutate_noop) /
      wall;
  return report;
}

}  // namespace privrec
