#include "serve/concurrent_driver.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/privacy_accountant.h"
#include "eval/parallel.h"
#include "random/rng.h"

namespace privrec {

ConcurrentDriverReport RunConcurrentDriver(
    RecommendationService& service, DynamicGraph& graph,
    const ConcurrentDriverOptions& options) {
  const NodeId num_users =
      options.num_users == 0 ? graph.num_nodes() : options.num_users;
  std::atomic<uint64_t> serve_ok{0}, serve_refused{0}, serve_shed{0},
      serve_failed{0};
  std::atomic<uint64_t> mutate_ok{0}, mutate_noop{0};

  // Per-worker request streams: splittable seeding, so the traffic shape
  // is reproducible for a fixed (seed, num_threads) regardless of thread
  // scheduling.
  SplitMix64 seeder(options.seed);
  std::vector<uint64_t> worker_seeds(options.num_threads);
  for (auto& s : worker_seeds) s = seeder.Next();

  Stopwatch watch;
  RunWorkers(options.num_threads, [&](unsigned w) {
    Rng rng(worker_seeds[w]);
    uint64_t ok = 0, refused = 0, shed = 0, failed = 0, mut_ok = 0,
             mut_noop = 0;
    for (uint64_t op = 0; op < options.ops_per_thread; ++op) {
      if (options.mutate_fraction > 0 &&
          rng.NextBernoulli(options.mutate_fraction)) {
        // Edge toggle on a uniform pair. A lost race (another worker
        // flipped the same pair between probe and mutation) surfaces as
        // FailedPrecondition from the graph; count it as a no-op.
        const NodeId u = static_cast<NodeId>(rng.NextBounded(num_users));
        NodeId v = static_cast<NodeId>(rng.NextBounded(num_users));
        if (u == v) v = (v + 1) % num_users;
        if (u == v) {
          ++mut_noop;
          continue;
        }
        Status status = graph.HasEdge(u, v) ? service.RemoveEdge(u, v)
                                            : service.AddEdge(u, v);
        if (status.ok()) {
          ++mut_ok;
        } else {
          ++mut_noop;
        }
        continue;
      }
      const NodeId user = static_cast<NodeId>(rng.NextBounded(num_users));
      if (options.list_fraction > 0 &&
          rng.NextBernoulli(options.list_fraction)) {
        auto list = service.ServeList(user, options.list_k);
        if (list.ok()) {
          ++ok;
        } else if (IsBudgetExhausted(list.status())) {
          ++refused;
        } else if (list.status().IsUnavailable()) {
          ++shed;
        } else {
          ++failed;
        }
      } else {
        auto rec = service.ServeRecommendation(user);
        if (rec.ok()) {
          ++ok;
        } else if (IsBudgetExhausted(rec.status())) {
          ++refused;
        } else if (rec.status().IsUnavailable()) {
          ++shed;
        } else {
          ++failed;
        }
      }
    }
    serve_ok.fetch_add(ok, std::memory_order_acq_rel);
    serve_refused.fetch_add(refused, std::memory_order_acq_rel);
    serve_shed.fetch_add(shed, std::memory_order_acq_rel);
    serve_failed.fetch_add(failed, std::memory_order_acq_rel);
    mutate_ok.fetch_add(mut_ok, std::memory_order_acq_rel);
    mutate_noop.fetch_add(mut_noop, std::memory_order_acq_rel);
  });

  ConcurrentDriverReport report;
  report.wall_seconds = watch.ElapsedSeconds();
  report.serve_ok = serve_ok.load();
  report.serve_refused = serve_refused.load();
  report.serve_shed = serve_shed.load();
  report.serve_failed = serve_failed.load();
  report.mutate_ok = mutate_ok.load();
  report.mutate_noop = mutate_noop.load();
  const double wall = report.wall_seconds > 0 ? report.wall_seconds : 1e-12;
  report.serves_per_second = static_cast<double>(report.serve_ok) / wall;
  report.ops_per_second =
      static_cast<double>(report.serve_ok + report.serve_refused +
                          report.serve_shed + report.serve_failed +
                          report.mutate_ok + report.mutate_noop) /
      wall;
  return report;
}

MirroredMutator::MirroredMutator(RecommendationService* base,
                                 RecommendationService* neighbor,
                                 const CsrGraph& initial, NodeId target,
                                 NodeId skip_u, NodeId skip_v,
                                 const MirroredMutatorOptions& options)
    : base_(base),
      neighbor_(neighbor),
      target_(target),
      num_nodes_(initial.num_nodes()),
      options_(options) {
  PRIVREC_CHECK(base_ != nullptr);
  PRIVREC_CHECK(neighbor_ != nullptr);
  PRIVREC_CHECK_GT(options_.num_threads, 0u);
  // Eligible slots: not incident to the target (so the audited candidate
  // set never changes mid-audit) and not the pair's differing edge (so the
  // sides stay neighbors). Bounded so huge graphs don't pay O(n²) here —
  // a few hundred slots already saturate the repair machinery.
  constexpr size_t kMaxSlots = 4096;
  std::vector<Slot> slots;
  auto same_unordered = [&](NodeId a, NodeId b) {
    return (a == skip_u && b == skip_v) || (a == skip_v && b == skip_u);
  };
  for (NodeId a = 0; a < num_nodes_ && slots.size() < kMaxSlots; ++a) {
    if (a == target_) continue;
    const NodeId b_begin = initial.directed() ? 0 : a + 1;
    for (NodeId b = b_begin; b < num_nodes_ && slots.size() < kMaxSlots;
         ++b) {
      if (b == a || b == target_) continue;
      if (same_unordered(a, b)) continue;
      slots.push_back(Slot{a, b, initial.HasEdge(a, b)});
    }
  }
  PRIVREC_CHECK(!slots.empty());
  const unsigned threads = static_cast<unsigned>(
      std::min<size_t>(options_.num_threads, slots.size()));
  options_.num_threads = threads;
  SplitMix64 seeder(options_.seed);
  workers_.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers_.emplace_back(seeder.Next(), seeder.Next());
  }
  // Round-robin partition: disjoint ownership is what makes concurrent
  // identical-toggle application race-free without cross-side ordering.
  for (size_t i = 0; i < slots.size(); ++i) {
    workers_[i % threads].slots.push_back(slots[i]);
  }
}

void MirroredMutator::RunPhase() {
  std::atomic<uint64_t> toggles{0}, churns{0};
  const uint64_t churn_per_toggle =
      options_.toggles_per_thread == 0
          ? 0
          : options_.churn_serves_per_thread / options_.toggles_per_thread;
  RunWorkers(options_.num_threads, [&](unsigned w) {
    Worker& worker = workers_[w];
    uint64_t applied = 0, served = 0;
    auto churn = [&]() {
      // Budget-neutral serve on a non-target user: forces snapshot
      // re-pins and lazy repairs on whatever shard the user hashes to,
      // concurrently with other workers' toggles. Output discarded;
      // failures (no candidates) are fine.
      NodeId user = static_cast<NodeId>(
          worker.churn_rng.NextBounded(num_nodes_));
      if (user == target_) user = (user + 1) % num_nodes_;
      if (user == target_) return;  // 1-node graph; nothing to churn
      (void)base_->ServeForAudit(user, worker.churn_rng);
      (void)neighbor_->ServeForAudit(user, worker.churn_rng);
      served += 2;
    };
    for (uint64_t t = 0; t < options_.toggles_per_thread; ++t) {
      Slot& slot = worker.slots[worker.toggle_rng.NextBounded(
          worker.slots.size())];
      // Same toggle on both services, with presence tracked locally — a
      // membership probe against the live graph could observe another
      // worker's in-flight toggle and desynchronize the sides.
      if (slot.present) {
        PRIVREC_CHECK_OK(base_->RemoveEdge(slot.a, slot.b));
        PRIVREC_CHECK_OK(neighbor_->RemoveEdge(slot.a, slot.b));
      } else {
        PRIVREC_CHECK_OK(base_->AddEdge(slot.a, slot.b));
        PRIVREC_CHECK_OK(neighbor_->AddEdge(slot.a, slot.b));
      }
      slot.present = !slot.present;
      ++applied;
      for (uint64_t c = 0; c < churn_per_toggle; ++c) churn();
    }
    for (uint64_t c = options_.toggles_per_thread * churn_per_toggle;
         c < options_.churn_serves_per_thread; ++c) {
      churn();
    }
    toggles.fetch_add(applied, std::memory_order_acq_rel);
    churns.fetch_add(served, std::memory_order_acq_rel);
  });
  toggles_applied_ += toggles.load();
  churn_serves_ += churns.load();
}

}  // namespace privrec
