#include "serve/recommendation_service.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "core/mechanism.h"

namespace privrec {
namespace {

size_t RoundUpPow2(size_t x) {
  size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

size_t ResolveShardCount(size_t requested) {
  size_t n = requested;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  // Clamp before rounding: RoundUpPow2 on a value above 2^63 would never
  // terminate.
  return RoundUpPow2(std::min<size_t>(n, 64));
}

}  // namespace

RecommendationService::RecommendationService(
    DynamicGraph* graph, std::unique_ptr<UtilityFunction> utility,
    const ServiceOptions& options)
    : graph_(graph), utility_(std::move(utility)), options_(options) {
  PRIVREC_CHECK(graph_ != nullptr);
  PRIVREC_CHECK(utility_ != nullptr);
  PRIVREC_CHECK_GT(options.release_epsilon, 0.0);
  PRIVREC_CHECK_GE(options.per_user_budget, options.release_epsilon);
  PRIVREC_CHECK_GT(options.cache_capacity, 0u);
  const size_t num_shards = ResolveShardCount(options.num_shards);
  shard_mask_ = num_shards - 1;
  per_shard_capacity_ = std::max<size_t>(1, options.cache_capacity / num_shards);
  // Splittable seeding: every shard gets an independent stream, derived
  // deterministically from the service seed (the determinism contract of
  // the Rng-less overloads).
  SplitMix64 seeder(options.seed);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(seeder.Next()));
  }
}

size_t RecommendationService::ShardIndex(NodeId user) const {
  // Fibonacci-style mixing so striped user-id ranges spread across shards.
  uint64_t h = static_cast<uint64_t>(user) * 0x9e3779b97f4a7c15ULL;
  return static_cast<size_t>(h >> 32) & shard_mask_;
}

double RecommendationService::SensitivityForLocked(
    Shard& shard, const DynamicGraph::StampedSnapshot& snap) {
  // Computed against this call's own snapshot — never a torn mix of "old
  // utilities, new sensitivity".
  if (!shard.sensitivity_valid || shard.sensitivity_version != snap.version) {
    shard.sensitivity = utility_->SensitivityBound(*snap.graph);
    shard.sensitivity_version = snap.version;
    shard.sensitivity_valid = true;
  }
  return shard.sensitivity;
}

const DynamicGraph::StampedSnapshot& RecommendationService::PinnedSnapshotLocked(
    Shard& shard) {
  // One atomic load on the unmutated fast path; the graph's publication
  // mutex is only touched when the version actually moved (once per
  // mutation per shard).
  if (shard.pinned.graph == nullptr ||
      shard.pinned.version != graph_->version()) {
    shard.pinned = graph_->VersionedSnapshot();
  }
  return shard.pinned;
}

void RecommendationService::EvictIfNeededLocked(Shard& shard) {
  if (shard.cache.size() < per_shard_capacity_) return;
  // Evict the least recently used entry (linear scan: per-shard capacity
  // is modest and eviction rare; a heap would be noise here).
  auto victim = shard.cache.begin();
  for (auto it = shard.cache.begin(); it != shard.cache.end(); ++it) {
    if (it->second.last_used < victim->second.last_used) victim = it;
  }
  shard.cache.erase(victim);
}

PrivacyAccountant& RecommendationService::AccountantForLocked(Shard& shard,
                                                              NodeId user) {
  auto it = shard.accountants.find(user);
  if (it == shard.accountants.end()) {
    it = shard.accountants
             .emplace(user, PrivacyAccountant(options_.per_user_budget))
             .first;
  }
  return it->second;
}

Result<RecommendationService::CacheEntry*>
RecommendationService::GetEntryLocked(
    Shard& shard, NodeId user, const DynamicGraph::StampedSnapshot& snap,
    double sensitivity, bool need_sampler) {
  ++shard.clock;
  auto it = shard.cache.find(user);
  if (it == shard.cache.end()) {
    ++shard.stats.cache_misses;
    // Shared snapshot (no copy) + per-shard workspace: a cache miss costs
    // only the utility traversal, not an O(n + m) graph materialization.
    CacheEntry entry{utility_->Compute(*snap.graph, user, shard.workspace),
                     {},
                     shard.clock,
                     sensitivity,
                     std::nullopt,
                     0.0};
    entry.watched.insert(user);
    for (NodeId v : snap.graph->OutNeighbors(user)) entry.watched.insert(v);
    EvictIfNeededLocked(shard);
    auto [inserted, ok] = shard.cache.emplace(user, std::move(entry));
    PRIVREC_CHECK(ok);
    it = inserted;
  } else {
    ++shard.stats.cache_hits;
    it->second.last_used = shard.clock;
    // A mutation elsewhere in the graph can drift the global Δf without
    // invalidating this user's vector; ratchet the entry's calibration up
    // to the current bound (see CacheEntry::calibration_sensitivity).
    it->second.calibration_sensitivity =
        std::max(it->second.calibration_sensitivity, sensitivity);
  }
  CacheEntry& entry = it->second;
  if (entry.utilities.num_candidates() == 0) {
    // Cached like any other vector (the watched-set sweep keeps it fresh)
    // so repeated requests for an unservable user are O(1) hits, not
    // recomputes; the release itself can never happen.
    return Status::FailedPrecondition("no candidates to recommend");
  }
  if (need_sampler) {
    if (!entry.sampler.has_value() ||
        entry.sampler_sensitivity != entry.calibration_sensitivity) {
      ExponentialMechanism mechanism(options_.release_epsilon,
                                     entry.calibration_sensitivity);
      PRIVREC_ASSIGN_OR_RETURN(RecommendationSampler sampler,
                               mechanism.MakeSampler(entry.utilities));
      entry.sampler.emplace(std::move(sampler));
      entry.sampler_sensitivity = entry.calibration_sensitivity;
    } else {
      ++shard.stats.sampler_reuses;
    }
  }
  return &entry;
}

Result<NodeId> RecommendationService::ServeLocked(Shard& shard, NodeId user,
                                                  Rng& rng,
                                                  bool charge_budget) {
  // Refuse-or-commit charging: budget is checked first (refusals touch
  // nothing else, so refused traffic costs no cache work), but only
  // charged AFTER every other failure mode has passed — a failed serve
  // must never consume lifetime ε it released nothing for. (One corner
  // survives: in the mutation-to-invalidation-sweep race window a
  // zero-block resolution against the fresh snapshot can fail after the
  // charge. Charging without releasing is the conservative direction for
  // privacy, so the corner is tolerated rather than complicated away.)
  // The audit path (charge_budget == false) skips the accountant entirely;
  // everything else is byte-identical to the production path.
  if (charge_budget) {
    PrivacyAccountant& accountant = AccountantForLocked(shard, user);
    if (!accountant.CanCharge(options_.release_epsilon)) {
      ++shard.stats.refused_budget;
      return accountant.Charge(options_.release_epsilon,
                               "single recommendation");  // descriptive refusal
    }
  }
  const DynamicGraph::StampedSnapshot& snap = PinnedSnapshotLocked(shard);
  if (user >= snap.graph->num_nodes()) {
    // The caller's bounds check raced an AddNode; the pinned snapshot is
    // authoritative for everything this serve touches.
    return Status::InvalidArgument("user out of range");
  }
  const double sensitivity = SensitivityForLocked(shard, snap);
  PRIVREC_ASSIGN_OR_RETURN(
      CacheEntry * entry,
      GetEntryLocked(shard, user, snap, sensitivity, /*need_sampler=*/true));
  if (charge_budget) {
    PRIVREC_CHECK_OK(AccountantForLocked(shard, user)
                         .Charge(options_.release_epsilon,
                                 "single recommendation"));
    ++shard.stats.served;
  } else {
    ++shard.stats.audit_serves;
  }
  const Recommendation rec = entry->sampler->Draw(rng);
  if (!rec.from_zero_block) return rec.node;
  return ResolveZeroUtilityNode(*snap.graph, entry->utilities, rng);
}

Result<TopKResult> RecommendationService::ServeListLocked(Shard& shard,
                                                          NodeId user,
                                                          size_t k, Rng& rng) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  PrivacyAccountant& accountant = AccountantForLocked(shard, user);
  const std::string reason = "top-" + std::to_string(k) + " list";
  if (!accountant.CanCharge(options_.release_epsilon)) {
    ++shard.stats.refused_budget;
    return accountant.Charge(options_.release_epsilon, reason);
  }
  const DynamicGraph::StampedSnapshot& snap = PinnedSnapshotLocked(shard);
  if (user >= snap.graph->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  // Pre-validate what PeelingExponentialTopK would reject — cheap snapshot
  // arithmetic (the paper's candidate convention: everyone but the user
  // and their neighbors), before any cache work or budget commitment.
  const uint64_t candidates = static_cast<uint64_t>(snap.graph->num_nodes()) -
                              1 - snap.graph->OutDegree(user);
  if (candidates < k) {
    return Status::FailedPrecondition("fewer candidates than k");
  }
  const double sensitivity = SensitivityForLocked(shard, snap);
  PRIVREC_ASSIGN_OR_RETURN(
      CacheEntry * entry,
      GetEntryLocked(shard, user, snap, sensitivity, /*need_sampler=*/false));
  // Re-check against the vector the peeling will actually run on: a cached
  // entry can lag the snapshot's candidate count (e.g. after AddNode, which
  // invalidates nothing), and the charge below must not be spendable on a
  // release that then fails validation.
  if (entry->utilities.num_candidates() < k) {
    return Status::FailedPrecondition("fewer candidates than k");
  }
  PRIVREC_CHECK_OK(accountant.Charge(options_.release_epsilon, reason));
  auto result = PeelingExponentialTopK(entry->utilities, k,
                                       options_.release_epsilon,
                                       entry->calibration_sensitivity, rng);
  if (result.ok()) ++shard.stats.served;
  return result;
}

Result<NodeId> RecommendationService::ServeRecommendation(NodeId user,
                                                          Rng& rng) {
  if (user >= graph_->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  return ServeLocked(shard, user, rng);
}

Result<NodeId> RecommendationService::ServeRecommendation(NodeId user) {
  if (user >= graph_->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  return ServeLocked(shard, user, shard.rng);
}

Result<NodeId> RecommendationService::ServeForAudit(NodeId user, Rng& rng) {
  if (user >= graph_->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  return ServeLocked(shard, user, rng, /*charge_budget=*/false);
}

Result<TopKResult> RecommendationService::ServeList(NodeId user, size_t k,
                                                    Rng& rng) {
  if (user >= graph_->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  return ServeListLocked(shard, user, k, rng);
}

Result<TopKResult> RecommendationService::ServeList(NodeId user, size_t k) {
  if (user >= graph_->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  return ServeListLocked(shard, user, k, shard.rng);
}

void RecommendationService::InvalidateTouching(NodeId u, NodeId v) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.cache.begin(); it != shard.cache.end();) {
      const auto& watched = it->second.watched;
      if (watched.count(u) > 0 || watched.count(v) > 0) {
        it = shard.cache.erase(it);
        ++shard.stats.cache_invalidations;
      } else {
        ++it;
      }
    }
    // Drop the now-stale pinned snapshot so an idle shard does not keep a
    // dead full-graph CSR alive until its next serve (re-pinned lazily).
    shard.pinned = DynamicGraph::StampedSnapshot{};
  }
}

Status RecommendationService::AddEdge(NodeId u, NodeId v) {
  PRIVREC_RETURN_NOT_OK(graph_->AddEdge(u, v));
  InvalidateTouching(u, v);
  return Status::OK();
}

Status RecommendationService::RemoveEdge(NodeId u, NodeId v) {
  PRIVREC_RETURN_NOT_OK(graph_->RemoveEdge(u, v));
  InvalidateTouching(u, v);
  return Status::OK();
}

double RecommendationService::RemainingBudget(NodeId user) const {
  const Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.accountants.find(user);
  return it == shard.accountants.end() ? options_.per_user_budget
                                       : it->second.remaining();
}

ServiceStats RecommendationService::stats() const {
  ServiceStats total;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    total.served += shard.stats.served;
    total.refused_budget += shard.stats.refused_budget;
    total.cache_hits += shard.stats.cache_hits;
    total.cache_misses += shard.stats.cache_misses;
    total.cache_invalidations += shard.stats.cache_invalidations;
    total.sampler_reuses += shard.stats.sampler_reuses;
    total.audit_serves += shard.stats.audit_serves;
  }
  return total;
}

}  // namespace privrec
