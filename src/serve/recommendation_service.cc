#include "serve/recommendation_service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/mechanism.h"
#include "persist/budget_ledger.h"
#include "persist/checkpoint.h"
#include "persist/wal.h"

namespace privrec {
namespace {

size_t RoundUpPow2(size_t x) {
  size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

size_t ResolveShardCount(size_t requested) {
  size_t n = requested;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  // Clamp before rounding: RoundUpPow2 on a value above 2^63 would never
  // terminate.
  return RoundUpPow2(std::min<size_t>(n, 64));
}

/// Resolves a peeled list's zero-block sentinel picks to DISTINCT uniform
/// zero-utility candidates of `view` — the contract TopKResult documents
/// but defers to the release path. The resolution is part of the privacy
/// argument, not cosmetics: a released sentinel says "this slot's utility
/// is exactly 0", an outcome with probability 0 on the side of a
/// neighboring pair where that candidate's utility is positive — an
/// infinite probability ratio. (The node-DP audit certified exactly that
/// before lists were resolved; single serves always resolved.) Uniform
/// without-replacement resolution makes zero picks exchangeable with
/// positive picks, restoring the peeling mechanism's e^ε bound.
Status ResolveZeroPicks(const CsrGraph& view, const UtilityVector& utilities,
                        TopKResult& result, Rng& rng) {
  std::unordered_set<NodeId> excluded;
  excluded.reserve(utilities.nonzero().size() + result.picks.size());
  for (const UtilityEntry& e : utilities.nonzero()) excluded.insert(e.node);
  const NodeId target = utilities.target();
  auto eligible = [&](NodeId v) {
    return v != target && !view.HasEdge(target, v) && excluded.count(v) == 0;
  };
  for (Recommendation& pick : result.picks) {
    if (!pick.from_zero_block) continue;
    NodeId resolved = kUnresolvedZeroNode;
    // Rejection over uniform node draws conditioned on eligibility is
    // uniform over the remaining zero block; the peeling never draws the
    // zero slot more often than the block has members, so the scan
    // fallback below always finds one.
    for (int attempt = 0; attempt < 256 && resolved == kUnresolvedZeroNode;
         ++attempt) {
      const NodeId v = static_cast<NodeId>(rng.NextBounded(view.num_nodes()));
      if (eligible(v)) resolved = v;
    }
    if (resolved == kUnresolvedZeroNode) {
      std::vector<NodeId> pool;
      for (NodeId v = 0; v < view.num_nodes(); ++v) {
        if (eligible(v)) pool.push_back(v);
      }
      if (pool.empty()) {
        return Status::Internal("zero-utility list bookkeeping mismatch");
      }
      resolved = pool[rng.NextBounded(pool.size())];
    }
    pick.node = resolved;
    excluded.insert(resolved);
  }
  return Status::OK();
}

}  // namespace

RecommendationService::RecommendationService(
    DynamicGraph* graph, std::unique_ptr<UtilityFunction> utility,
    const ServiceOptions& options)
    : graph_(graph), utility_(std::move(utility)), options_(options) {
  PRIVREC_CHECK(graph_ != nullptr);
  PRIVREC_CHECK(utility_ != nullptr);
  PRIVREC_CHECK_GT(options.release_epsilon, 0.0);
  PRIVREC_CHECK_GE(options.per_user_budget, options.release_epsilon);
  PRIVREC_CHECK_GT(options.cache_capacity, 0u);
  if (options.privacy_model == PrivacyModel::kNode) {
    // Node-DP serving is only sound against the degree-capped projection:
    // installing the cap here makes every snapshot the shards pin carry
    // the projected view alongside the raw CSR. The uncap_projection
    // trip-wire skips the install — serves then read the raw graph while
    // calibrating to the capped bound, the broken deployment the audit
    // harness certifies.
    PRIVREC_CHECK_GT(options.degree_cap, 0u);
    if (!options.uncap_projection) {
      graph_->SetDegreeCap(options.degree_cap);
    }
  }
  if (options.fault_injector != nullptr) {
    // One injector covers the whole stack: the service evaluates the
    // serve-path points itself and arms the graph-layer points here, so a
    // single Install reaches journal compaction and both patch sites too.
    graph_->SetFaultInjector(options.fault_injector);
  }
  if (options.wal != nullptr) {
    // WAL-first mutations: from here on every graph toggle is durable
    // before it is visible; SaveCheckpoint/RecoverGraph complete the
    // crash-safety loop.
    graph_->AttachWal(options.wal);
  }
  const size_t num_shards = ResolveShardCount(options.num_shards);
  shard_mask_ = num_shards - 1;
  per_shard_capacity_ = std::max<size_t>(1, options.cache_capacity / num_shards);
  // Splittable seeding: every shard gets an independent stream, derived
  // deterministically from the service seed (the determinism contract of
  // the Rng-less overloads).
  SplitMix64 seeder(options.seed);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(seeder.Next()));
  }
}

size_t RecommendationService::ShardIndex(NodeId user) const {
  // Fibonacci-style mixing so striped user-id ranges spread across shards.
  uint64_t h = static_cast<uint64_t>(user) * 0x9e3779b97f4a7c15ULL;
  return static_cast<size_t>(h >> 32) & shard_mask_;
}

const CsrGraph& RecommendationService::ServingView(
    const DynamicGraph::StampedSnapshot& snap) const {
  if (options_.privacy_model == PrivacyModel::kNode &&
      snap.projected != nullptr) {
    return *snap.projected;
  }
  return *snap.graph;
}

double RecommendationService::SensitivityForLocked(
    Shard& shard, const DynamicGraph::StampedSnapshot& snap) {
  // Computed against this call's own snapshot — never a torn mix of "old
  // utilities, new sensitivity".
  if (!shard.sensitivity_valid || shard.sensitivity_version != snap.version) {
    if (options_.privacy_model == PrivacyModel::kNode) {
      // Node bound on the SAME view the utilities are computed on. Under
      // the uncap_projection trip-wire this evaluates the capped bound
      // against the raw graph — deliberately miscalibrated, so the audit
      // can certify it.
      shard.sensitivity =
          utility_->NodeSensitivityBound(ServingView(snap), options_.degree_cap);
    } else {
      shard.sensitivity = utility_->SensitivityBound(*snap.graph);
    }
    shard.sensitivity_version = snap.version;
    shard.sensitivity_valid = true;
  }
  return shard.sensitivity;
}

const DynamicGraph::StampedSnapshot& RecommendationService::PinnedSnapshotLocked(
    Shard& shard) {
  // One atomic load on the unmutated fast path; the graph's publication
  // mutex is only touched when the version actually moved (once per
  // mutation per shard).
  if (shard.pinned.graph == nullptr ||
      shard.pinned.version != graph_->version()) {
    shard.pinned = graph_->VersionedSnapshot();
  }
  return shard.pinned;
}

void RecommendationService::EvictIfNeededLocked(Shard& shard) {
  if (shard.cache.size() < per_shard_capacity_) return;
  // Journal-aware eviction: entries whose version fell behind the journal
  // floor can never be delta-repaired — their next visit would be a full
  // recompute counted as a journal_fallback. Purging ALL of them first
  // (they cost a recompute whether evicted or not) keeps capacity for
  // repairable entries and turns would-be fallbacks into plain misses, so
  // journal_fallbacks stays a signal of journal undersizing rather than
  // of cache pressure. One pass, same cost as the LRU scan.
  const uint64_t floor = graph_->journal_floor_version();
  uint64_t doomed = 0;
  for (auto it = shard.cache.begin(); it != shard.cache.end();) {
    if (it->second.version < floor) {
      it = shard.cache.erase(it);
      ++doomed;
    } else {
      ++it;
    }
  }
  if (doomed > 0) {
    shard.stats.doomed_evictions += doomed;
    return;
  }
  // Every entry is still repairable: evict the least recently used one
  // (linear scan: per-shard capacity is modest and eviction rare; a heap
  // would be noise here).
  auto victim = shard.cache.begin();
  for (auto it = shard.cache.begin(); it != shard.cache.end(); ++it) {
    if (it->second.last_used < victim->second.last_used) victim = it;
  }
  shard.cache.erase(victim);
}

Status RecommendationService::InjectServeFaultsLocked(Shard& shard) {
  FaultInjector* injector = options_.fault_injector;
  if (injector == nullptr || !injector->armed()) return Status::OK();
  if (std::optional<FaultPoint> point = injector->ShouldFailServe()) {
    ++shard.stats.injected_faults;
    return Status::Unavailable(std::string("injected fault: ") +
                               FaultPointName(*point));
  }
  if (injector->ShouldFire(FaultPoint::kShardStall)) {
    ++shard.stats.injected_faults;
    const uint32_t micros =
        injector->plan().rule(FaultPoint::kShardStall).stall_micros;
    if (micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
    }
  }
  return Status::OK();
}

bool RecommendationService::AdmitOrShed(Shard& shard, NodeId user,
                                        Status* shed_status) {
  const OverloadPolicy& policy = options_.overload;
  if (!policy.enabled) return true;
  const uint32_t depth = shard.inflight.load(std::memory_order_acquire);
  if (policy.max_queue_depth > 0 && depth >= policy.max_queue_depth) {
    shard.shed_overload.fetch_add(1, std::memory_order_relaxed);
    *shed_status = Status::Unavailable("shard overloaded: queue-depth cap");
    return false;
  }
  if (policy.max_inflight_per_shard == 0 ||
      depth < policy.max_inflight_per_shard) {
    return true;
  }
  // Over the soft cap: shed the requests with the least lifetime budget
  // left (they are closest to a refusal anyway), queue the rest. The hint
  // map is the accountant's last published remaining() — admission must
  // not take shard.mu, so it reads this snapshot instead.
  double remaining = options_.per_user_budget;
  {
    std::lock_guard<std::mutex> lock(shard.budget_mu);
    auto it = shard.remaining_hint.find(user);
    if (it != shard.remaining_hint.end()) remaining = it->second;
  }
  if (remaining <= policy.shed_budget_fraction * options_.per_user_budget) {
    shard.shed_overload.fetch_add(1, std::memory_order_relaxed);
    *shed_status =
        Status::Unavailable("shard overloaded: low-budget request shed");
    return false;
  }
  return true;
}

void RecommendationService::UpdateBudgetHintLocked(Shard& shard, NodeId user) {
  if (!options_.overload.enabled) return;
  auto it = shard.accountants.find(user);
  const double remaining = it == shard.accountants.end()
                               ? options_.per_user_budget
                               : it->second.remaining();
  std::lock_guard<std::mutex> lock(shard.budget_mu);
  shard.remaining_hint[user] = remaining;
}

void RecommendationService::DeterministicBackoff(uint32_t attempt) const {
  const uint64_t micros =
      static_cast<uint64_t>(attempt) * options_.retry.backoff_micros;
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

PrivacyAccountant& RecommendationService::AccountantForLocked(Shard& shard,
                                                              NodeId user) {
  auto it = shard.accountants.find(user);
  if (it == shard.accountants.end()) {
    it = shard.accountants
             .emplace(user, PrivacyAccountant(options_.per_user_budget,
                                              options_.budget_window))
             .first;
  }
  return it->second;
}

void RecommendationService::RepairEntryLocked(
    Shard& shard, NodeId user, const DynamicGraph::StampedSnapshot& snap,
    double sensitivity, CacheEntry& entry) {
  // Journal repair is an EDGE-model tool: the journal records raw-graph
  // toggles, but under kNode the serve path reads the projected view, and
  // a raw delta (u,v) can evict a third arc (u,w) from u's capped prefix —
  // an arc change no raw-journal keep test can see. Until a
  // projected-delta journal exists (follow-up in ROADMAP), kNode entries
  // recompute against the view on every version change (the baseline path
  // below), which is exact and still touches no other entry.
  // Distinguishes the FORCED fallback (journal could not replay the
  // window, or an injected kRepairFail) from repair being structurally
  // unavailable — only the former counts as a stale_fallback_serve.
  bool forced_fallback = false;
  bool attempt_repair = options_.privacy_model == PrivacyModel::kEdge &&
                        options_.enable_delta_repair &&
                        utility_->SupportsIncrementalUpdate();
  if (attempt_repair && options_.fault_injector != nullptr &&
      options_.fault_injector->ShouldFire(FaultPoint::kRepairFail)) {
    // Injected repair failure: abandon the journal without draining it and
    // take the exact full-recompute fallback below.
    ++shard.stats.injected_faults;
    forced_fallback = true;
    attempt_repair = false;
  }
  if (attempt_repair) {
    auto deltas = graph_->EdgeDeltasBetween(entry.version, snap.version);
    if (deltas.ok()) {
      // Membership against the post-batch snapshot is exact as long as the
      // whole window is tested together (see EdgeDeltaAffectsTarget); the
      // utility owns the test because some (Jaccard) see a wider blast
      // radius than the structural rule — and need the whole window at
      // once to reconstruct pre-window state (EdgeDeltaWindowAffects).
      if (!utility_->EdgeDeltaWindowAffects(*snap.graph, *deltas, user,
                                            entry.utilities)) {
        // The cached vector — and its frozen sampler — are still exactly
        // right; only the stamp moves. Sensitivity drift is covered by the
        // caller's calibration ratchet.
        ++shard.stats.cache_hits;
        ++shard.stats.delta_kept;
        entry.version = snap.version;
        entry.calibration_sensitivity =
            std::max(entry.calibration_sensitivity, sensitivity);
        return;
      }
      // Affect-filtered window patching (ISSUE 6): shrink the window to
      // the deltas that can matter for THIS target before the size-based
      // dispatch below, so max_patch_window bounds relevant deltas, not
      // raw width — under skewed write traffic an affected entry behind a
      // wide window of mostly-elsewhere toggles still takes the O(Δ)
      // patch instead of the recompute cliff. The filter's exactness
      // contract (UtilityFunction::FilterAffectingWindow) makes every
      // dispatch below — including the filtered-singleton single-delta
      // patch — equal to patching the full window.
      Stopwatch repair_watch;
      std::span<const EdgeDelta> window = *deltas;
      if (options_.enable_affect_filter) {
        shard.filtered.clear();
        utility_->FilterAffectingWindow(*snap.graph, *deltas, user,
                                        entry.utilities, shard.filtered);
        shard.stats.filter_dropped_deltas +=
            deltas->size() - shard.filtered.size();
        window = shard.filtered;
        if (window.empty()) {
          // Unreachable for the shipped utilities (an affecting window
          // never filters to empty — see FilterAffectingDeltas), but the
          // filter contract makes keeping correct regardless: every
          // dropped delta provably leaves this vector unchanged.
          ++shard.stats.cache_hits;
          ++shard.stats.delta_kept;
          entry.version = snap.version;
          entry.calibration_sensitivity =
              std::max(entry.calibration_sensitivity, sensitivity);
          return;
        }
      }
      if (window.size() == 1) {
        // O(Δ) patch, exactly equal to a fresh Compute; the vector changed,
        // so the frozen sampler dies and the calibration re-anchors at the
        // snapshot the repaired vector now reflects.
        entry.utilities = utility_->ApplyEdgeDelta(
            *snap.graph, window.front(), user, entry.utilities,
            shard.workspace);
        ++shard.stats.cache_hits;
        ++shard.stats.delta_patched;
      } else if (utility_->SupportsIncrementalBatch() &&
                 window.size() <= options_.max_patch_window) {
        // Sequential multi-delta patching: the whole window is spliced in
        // one pass against the post-window snapshot (ApplyEdgeDeltaBatch
        // honors the same exact-equality contract) — cheaper than a
        // recompute as long as the window stays narrow.
        entry.utilities = utility_->ApplyEdgeDeltaBatch(
            *snap.graph, window, user, entry.utilities, shard.workspace);
        ++shard.stats.cache_hits;
        ++shard.stats.delta_patched;
      } else {
        // Capability-gated fallback: a utility that patches single deltas
        // but not windows — or a window past the patch/recompute
        // crossover (max_patch_window) — recomputes, still touching no
        // other entry.
        entry.utilities = utility_->Compute(*snap.graph, user, shard.workspace);
        ++shard.stats.cache_misses;
        ++shard.stats.delta_recomputed;
      }
      shard.stats.repair_ns +=
          static_cast<uint64_t>(repair_watch.ElapsedSeconds() * 1e9);
      entry.version = snap.version;
      entry.calibration_sensitivity = sensitivity;
      entry.sampler.reset();
      entry.sampler_sensitivity = 0;
      return;
    }
    ++shard.stats.journal_fallbacks;
    forced_fallback = true;
  }
  // Baseline path: the pre-incremental design would have erased this entry
  // at mutation time; recompute it in place now (against the serving view:
  // raw under kEdge, projected under kNode).
  entry.utilities = utility_->Compute(ServingView(snap), user, shard.workspace);
  entry.version = snap.version;
  entry.calibration_sensitivity = sensitivity;
  entry.sampler.reset();
  entry.sampler_sensitivity = 0;
  ++shard.stats.cache_misses;
  ++shard.stats.cache_invalidations;
  if (forced_fallback) ++shard.stats.stale_fallback_serves;
}

Result<RecommendationService::CacheEntry*>
RecommendationService::GetEntryLocked(
    Shard& shard, NodeId user, const DynamicGraph::StampedSnapshot& snap,
    double sensitivity, bool need_sampler) {
  ++shard.clock;
  auto it = shard.cache.find(user);
  if (it == shard.cache.end()) {
    ++shard.stats.cache_misses;
    // Shared snapshot (no copy) + per-shard workspace: a cache miss costs
    // only the utility traversal, not an O(n + m) graph materialization.
    CacheEntry entry{utility_->Compute(ServingView(snap), user, shard.workspace),
                     snap.version,
                     shard.clock,
                     sensitivity,
                     std::nullopt,
                     0.0};
    EvictIfNeededLocked(shard);
    auto [inserted, ok] = shard.cache.emplace(user, std::move(entry));
    PRIVREC_CHECK(ok);
    it = inserted;
  } else if (it->second.version != snap.version) {
    it->second.last_used = shard.clock;
    RepairEntryLocked(shard, user, snap, sensitivity, it->second);
  } else {
    ++shard.stats.cache_hits;
    it->second.last_used = shard.clock;
    // A mutation elsewhere in the graph can drift the global Δf without
    // changing this user's vector; ratchet the entry's calibration up
    // to the current bound (see CacheEntry::calibration_sensitivity).
    it->second.calibration_sensitivity =
        std::max(it->second.calibration_sensitivity, sensitivity);
  }
  CacheEntry& entry = it->second;
  if (entry.utilities.num_candidates() == 0) {
    // Cached like any other vector (delta repair keeps it fresh)
    // so repeated requests for an unservable user are O(1) hits, not
    // recomputes; the release itself can never happen.
    return Status::FailedPrecondition("no candidates to recommend");
  }
  if (need_sampler) {
    if (!entry.sampler.has_value() ||
        entry.sampler_sensitivity != entry.calibration_sensitivity) {
      ExponentialMechanism mechanism(options_.release_epsilon,
                                     entry.calibration_sensitivity);
      PRIVREC_ASSIGN_OR_RETURN(RecommendationSampler sampler,
                               mechanism.MakeSampler(entry.utilities));
      entry.sampler.emplace(std::move(sampler));
      entry.sampler_sensitivity = entry.calibration_sensitivity;
    } else {
      ++shard.stats.sampler_reuses;
    }
  }
  return &entry;
}

Result<NodeId> RecommendationService::ServeLocked(Shard& shard, NodeId user,
                                                  Rng& rng,
                                                  bool charge_budget) {
  // Refuse-or-commit charging: budget is checked first (refusals touch
  // nothing else, so refused traffic costs no cache work), but only
  // charged AFTER every other failure mode has passed — a failed serve
  // must never consume lifetime ε it released nothing for. (Cache repair
  // pins every entry to this call's snapshot before the charge, so the
  // post-charge zero-block resolution runs against exactly the state the
  // entry reflects; if it still fails, charging without releasing is the
  // conservative direction for privacy.)
  // The audit path (charge_budget == false) skips the accountant entirely
  // — lifetime AND window state, so audits are budget-neutral in both
  // ledgers; everything else is byte-identical to the production path.
  // Injected serve faults surface here too, BEFORE the accountant: a
  // failed attempt spends nothing, so retrying it is privacy-neutral.
  PRIVREC_RETURN_NOT_OK(InjectServeFaultsLocked(shard));
  double charge_eps = options_.release_epsilon;
  bool degraded = false;
  if (charge_budget) {
    PrivacyAccountant& accountant = AccountantForLocked(shard, user);
    // The request clock ticks exactly once per charged request, before any
    // affordability check: refused requests still age the window, so a
    // throttled user recovers by waiting, not by hammering.
    if (accountant.AdvanceWindow()) ++shard.stats.window_refreshes;
    if (!accountant.CanCharge(charge_eps)) {
      ++shard.stats.refused_budget;
      UpdateBudgetHintLocked(shard, user);
      return accountant.Charge(charge_eps,
                               "single recommendation");  // descriptive refusal
    }
    if (!accountant.CanChargeInWindow(charge_eps)) {
      // Window exhausted while lifetime budget still has room. kDegrade
      // retries at the cheaper epsilon (noisier answer, never
      // over-budget); kReject — or a window too tight even for the
      // degraded charge — refuses until the window turns over.
      const BudgetWindowPolicy& policy = accountant.window_policy();
      if (policy.exhaustion == BudgetWindowPolicy::Exhaustion::kDegrade) {
        charge_eps = options_.release_epsilon / policy.degrade_factor;
        degraded = accountant.CanChargeInWindow(charge_eps) &&
                   accountant.CanCharge(charge_eps);
      }
      if (!degraded) {
        ++shard.stats.refused_window;
        UpdateBudgetHintLocked(shard, user);
        return accountant.Charge(charge_eps, "single recommendation");
      }
    }
  }
  const DynamicGraph::StampedSnapshot& snap = PinnedSnapshotLocked(shard);
  if (user >= snap.graph->num_nodes()) {
    // The caller's bounds check raced an AddNode; the pinned snapshot is
    // authoritative for everything this serve touches.
    return Status::InvalidArgument("user out of range");
  }
  const double sensitivity = SensitivityForLocked(shard, snap);
  // A degraded serve cannot draw from the frozen sampler (built at the
  // full release_epsilon), so it skips freezing one and samples from a
  // throwaway mechanism below — the frozen sampler stays valid for the
  // full-epsilon serves of the next window.
  PRIVREC_ASSIGN_OR_RETURN(
      CacheEntry * entry,
      GetEntryLocked(shard, user, snap, sensitivity,
                     /*need_sampler=*/!degraded));
  std::optional<RecommendationSampler> degraded_sampler;
  if (degraded) {
    // Built BEFORE the charge so a sampler failure never spends ε it
    // released nothing for (the refuse-or-commit idiom above).
    ExponentialMechanism mechanism(charge_eps, entry->calibration_sensitivity);
    PRIVREC_ASSIGN_OR_RETURN(RecommendationSampler sampler,
                             mechanism.MakeSampler(entry->utilities));
    degraded_sampler.emplace(std::move(sampler));
  }
  if (charge_budget) {
    if (options_.budget_ledger != nullptr) {
      // Ledger-before-release: the charge is durable before the noised
      // answer exists. A failed append refuses the serve with nothing
      // charged in memory either — utility lost, privacy intact.
      PRIVREC_RETURN_NOT_OK(
          options_.budget_ledger->AppendCharge(user, charge_eps));
      ++shard.stats.ledger_appends;
    }
    PRIVREC_CHECK_OK(AccountantForLocked(shard, user)
                         .Charge(charge_eps, "single recommendation"));
    UpdateBudgetHintLocked(shard, user);
    ++shard.stats.served;
    if (degraded) ++shard.stats.degraded_serves;
  } else {
    ++shard.stats.audit_serves;
  }
  const Recommendation rec =
      degraded ? degraded_sampler->Draw(rng) : entry->sampler->Draw(rng);
  if (!rec.from_zero_block) return rec.node;
  return ResolveZeroUtilityNode(ServingView(snap), entry->utilities, rng);
}

Result<TopKResult> RecommendationService::ServeListLocked(Shard& shard,
                                                          NodeId user,
                                                          size_t k, Rng& rng,
                                                          bool charge_budget) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  const std::string reason = "top-" + std::to_string(k) + " list";
  // The audit path (charge_budget == false) skips the accountant entirely,
  // mirroring ServeLocked; everything else is byte-identical. Injected
  // serve faults surface before the accountant, as in ServeLocked.
  PRIVREC_RETURN_NOT_OK(InjectServeFaultsLocked(shard));
  double charge_eps = options_.release_epsilon;
  bool degraded = false;
  if (charge_budget) {
    PrivacyAccountant& accountant = AccountantForLocked(shard, user);
    // Same window flow as ServeLocked: tick the request clock exactly
    // once, before the affordability checks.
    if (accountant.AdvanceWindow()) ++shard.stats.window_refreshes;
    if (!accountant.CanCharge(charge_eps)) {
      ++shard.stats.refused_budget;
      UpdateBudgetHintLocked(shard, user);
      return accountant.Charge(charge_eps, reason);
    }
    if (!accountant.CanChargeInWindow(charge_eps)) {
      const BudgetWindowPolicy& policy = accountant.window_policy();
      if (policy.exhaustion == BudgetWindowPolicy::Exhaustion::kDegrade) {
        charge_eps = options_.release_epsilon / policy.degrade_factor;
        degraded = accountant.CanChargeInWindow(charge_eps) &&
                   accountant.CanCharge(charge_eps);
      }
      if (!degraded) {
        ++shard.stats.refused_window;
        UpdateBudgetHintLocked(shard, user);
        return accountant.Charge(charge_eps, reason);
      }
    }
  }
  const DynamicGraph::StampedSnapshot& snap = PinnedSnapshotLocked(shard);
  if (user >= snap.graph->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  // Pre-validate what PeelingExponentialTopK would reject — cheap snapshot
  // arithmetic (the paper's candidate convention: everyone but the user
  // and their neighbors), before any cache work or budget commitment. Read
  // from the serving view: under kNode the capped out-degree is what the
  // utility vector will exclude.
  const CsrGraph& view = ServingView(snap);
  const uint64_t candidates =
      static_cast<uint64_t>(view.num_nodes()) - 1 - view.OutDegree(user);
  if (candidates < k) {
    return Status::FailedPrecondition("fewer candidates than k");
  }
  const double sensitivity = SensitivityForLocked(shard, snap);
  PRIVREC_ASSIGN_OR_RETURN(
      CacheEntry * entry,
      GetEntryLocked(shard, user, snap, sensitivity, /*need_sampler=*/false));
  // Defense-in-depth re-check against the vector the peeling will
  // actually run on. Cache repair pins every entry to `snap` before this
  // point (even AddNode routes through the journal fallback), so today
  // the two counts always agree; the guard stays because the charge
  // below must never be spendable on a release that then fails
  // validation, whatever future repair paths exist.
  if (entry->utilities.num_candidates() < k) {
    return Status::FailedPrecondition("fewer candidates than k");
  }
  if (charge_budget) {
    if (options_.budget_ledger != nullptr) {
      // Same ledger-before-release rule as ServeLocked.
      PRIVREC_RETURN_NOT_OK(
          options_.budget_ledger->AppendCharge(user, charge_eps));
      ++shard.stats.ledger_appends;
    }
    PRIVREC_CHECK_OK(AccountantForLocked(shard, user).Charge(charge_eps,
                                                             reason));
    UpdateBudgetHintLocked(shard, user);
  }
  // Degraded lists run the same peeling mechanism at the cheaper total ε
  // (split ε/k per slot inside) — noisier picks, identical shape.
  auto result = PeelingExponentialTopK(entry->utilities, k, charge_eps,
                                       entry->calibration_sensitivity, rng);
  if (result.ok()) {
    // Resolve zero-block picks to concrete distinct candidates — released
    // sentinels would leak "utility exactly 0" (see ResolveZeroPicks).
    PRIVREC_RETURN_NOT_OK(
        ResolveZeroPicks(view, entry->utilities, *result, rng));
    if (charge_budget) {
      ++shard.stats.served;
      if (degraded) ++shard.stats.degraded_serves;
    } else {
      ++shard.stats.audit_list_serves;
    }
  }
  return result;
}

// Every public serve wrapper — audit overloads included, so audits
// exercise the same ladder — runs through ServeWithPolicies: admission
// (shed in O(1) before the mutex), the locked serve body, bounded retry on
// transient failure.

Result<NodeId> RecommendationService::ServeRecommendation(NodeId user,
                                                          Rng& rng) {
  if (user >= graph_->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  Shard& shard = ShardFor(user);
  return ServeWithPolicies(shard, user, [&]() -> Result<NodeId> {
    std::lock_guard<std::mutex> lock(shard.mu);
    return ServeLocked(shard, user, rng);
  });
}

Result<NodeId> RecommendationService::ServeRecommendation(NodeId user) {
  if (user >= graph_->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  Shard& shard = ShardFor(user);
  return ServeWithPolicies(shard, user, [&]() -> Result<NodeId> {
    std::lock_guard<std::mutex> lock(shard.mu);
    return ServeLocked(shard, user, shard.rng);
  });
}

Result<NodeId> RecommendationService::ServeForAudit(NodeId user, Rng& rng) {
  if (user >= graph_->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  Shard& shard = ShardFor(user);
  return ServeWithPolicies(shard, user, [&]() -> Result<NodeId> {
    std::lock_guard<std::mutex> lock(shard.mu);
    return ServeLocked(shard, user, rng, /*charge_budget=*/false);
  });
}

Result<TopKResult> RecommendationService::ServeList(NodeId user, size_t k,
                                                    Rng& rng) {
  if (user >= graph_->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  Shard& shard = ShardFor(user);
  return ServeWithPolicies(shard, user, [&]() -> Result<TopKResult> {
    std::lock_guard<std::mutex> lock(shard.mu);
    return ServeListLocked(shard, user, k, rng);
  });
}

Result<TopKResult> RecommendationService::ServeList(NodeId user, size_t k) {
  if (user >= graph_->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  Shard& shard = ShardFor(user);
  return ServeWithPolicies(shard, user, [&]() -> Result<TopKResult> {
    std::lock_guard<std::mutex> lock(shard.mu);
    return ServeListLocked(shard, user, k, shard.rng);
  });
}

Result<TopKResult> RecommendationService::ServeListForAudit(NodeId user,
                                                            size_t k,
                                                            Rng& rng) {
  if (user >= graph_->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  Shard& shard = ShardFor(user);
  return ServeWithPolicies(shard, user, [&]() -> Result<TopKResult> {
    std::lock_guard<std::mutex> lock(shard.mu);
    return ServeListLocked(shard, user, k, rng, /*charge_budget=*/false);
  });
}

Status RecommendationService::AddEdge(NodeId u, NodeId v) {
  // O(1): the journal records the toggle; stale entries are repaired
  // lazily per shard (see RepairEntryLocked). A shard that never serves
  // again keeps its pre-mutation pinned CSR alive — bounded at one
  // snapshot per shard, the price of sweep-free mutations.
  return graph_->AddEdge(u, v);
}

Status RecommendationService::RemoveEdge(NodeId u, NodeId v) {
  return graph_->RemoveEdge(u, v);
}

Status RecommendationService::SaveCheckpoint(const std::string& dir) {
  if (options_.wal == nullptr) {
    return Status::FailedPrecondition(
        "SaveCheckpoint requires ServiceOptions::wal");
  }
  // Flush first so AtomicCheckpointView's wal_seq is a DURABLE seq: the
  // manifest must never claim coverage past what the WAL fsynced.
  PRIVREC_RETURN_NOT_OK(options_.wal->Sync());
  const DynamicGraph::CheckpointView view = graph_->AtomicCheckpointView();
  PRIVREC_RETURN_NOT_OK(WriteCheckpoint(dir, *view.snapshot.graph,
                                        view.wal_seq, view.snapshot.version,
                                        options_.fault_injector));
  // Post-commit pruning is best-effort durability hygiene: a crash here
  // leaves extra (idempotent-to-ignore) journal behind, never a gap.
  PRIVREC_RETURN_NOT_OK(options_.wal->TruncateSegmentsUpTo(view.wal_seq));
  if (options_.budget_ledger != nullptr) {
    PRIVREC_RETURN_NOT_OK(options_.budget_ledger->Compact());
  }
  return Status::OK();
}

void RecommendationService::ImportSpentBudget(NodeId user, double spent) {
  Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  AccountantForLocked(shard, user)
      .RestoreSpent(spent, "recovered ledger spend");
  UpdateBudgetHintLocked(shard, user);
}

void RecommendationService::ImportSpentBudgets(
    const std::unordered_map<NodeId, double>& spent) {
  for (const auto& [user, eps] : spent) ImportSpentBudget(user, eps);
}

double RecommendationService::RemainingBudget(NodeId user) const {
  const Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.accountants.find(user);
  return it == shard.accountants.end() ? options_.per_user_budget
                                       : it->second.remaining();
}

double RecommendationService::WindowSpent(NodeId user) const {
  const Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.accountants.find(user);
  return it == shard.accountants.end() ? 0.0 : it->second.window_spent();
}

ServiceStats RecommendationService::stats() const {
  ServiceStats total;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    total.served += shard.stats.served;
    total.refused_budget += shard.stats.refused_budget;
    total.cache_hits += shard.stats.cache_hits;
    total.cache_misses += shard.stats.cache_misses;
    total.cache_invalidations += shard.stats.cache_invalidations;
    total.sampler_reuses += shard.stats.sampler_reuses;
    total.audit_serves += shard.stats.audit_serves;
    total.audit_list_serves += shard.stats.audit_list_serves;
    total.delta_kept += shard.stats.delta_kept;
    total.delta_patched += shard.stats.delta_patched;
    total.delta_recomputed += shard.stats.delta_recomputed;
    total.journal_fallbacks += shard.stats.journal_fallbacks;
    total.doomed_evictions += shard.stats.doomed_evictions;
    total.filter_dropped_deltas += shard.stats.filter_dropped_deltas;
    total.repair_ns += shard.stats.repair_ns;
    total.refused_window += shard.stats.refused_window;
    total.degraded_serves += shard.stats.degraded_serves;
    total.window_refreshes += shard.stats.window_refreshes;
    total.stale_fallback_serves += shard.stats.stale_fallback_serves;
    total.injected_faults += shard.stats.injected_faults;
    total.ledger_appends += shard.stats.ledger_appends;
    total.shed_overload +=
        shard.shed_overload.load(std::memory_order_relaxed);
    total.retries += shard.retries.load(std::memory_order_relaxed);
  }
  if (options_.fault_injector != nullptr) {
    // Graph-layer fires (journal compaction + patch fails) and
    // persist-layer fires (torn WAL/ledger appends, checkpoint crashes)
    // are recorded by the injector, not any shard; fold them in once so
    // injected_faults covers the whole stack.
    total.injected_faults += options_.fault_injector->graph_fires();
    total.injected_faults += options_.fault_injector->persist_fires();
  }
  return total;
}

}  // namespace privrec
