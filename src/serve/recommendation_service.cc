#include "serve/recommendation_service.h"

#include <algorithm>

#include "common/logging.h"
#include "core/mechanism.h"

namespace privrec {

RecommendationService::RecommendationService(
    DynamicGraph* graph, std::unique_ptr<UtilityFunction> utility,
    const ServiceOptions& options)
    : graph_(graph), utility_(std::move(utility)), options_(options) {
  PRIVREC_CHECK(graph_ != nullptr);
  PRIVREC_CHECK(utility_ != nullptr);
  PRIVREC_CHECK_GT(options.release_epsilon, 0.0);
  PRIVREC_CHECK_GE(options.per_user_budget, options.release_epsilon);
  PRIVREC_CHECK_GT(options.cache_capacity, 0u);
}

PrivacyAccountant& RecommendationService::AccountantFor(NodeId user) {
  auto it = accountants_.find(user);
  if (it == accountants_.end()) {
    it = accountants_
             .emplace(user, PrivacyAccountant(options_.per_user_budget))
             .first;
  }
  return it->second;
}

const UtilityVector& RecommendationService::GetUtilities(NodeId user) {
  ++clock_;
  auto it = cache_.find(user);
  if (it != cache_.end()) {
    ++stats_.cache_hits;
    it->second.last_used = clock_;
    return it->second.utilities;
  }
  ++stats_.cache_misses;
  EvictIfNeeded();
  // Shared snapshot (no copy) + reused workspace: a cache miss costs only
  // the utility traversal, not an O(n + m) graph materialization.
  std::shared_ptr<const CsrGraph> snapshot = graph_->SharedSnapshot();
  CacheEntry entry{utility_->Compute(*snapshot, user, workspace_), {},
                   clock_};
  entry.watched.insert(user);
  for (NodeId v : snapshot->OutNeighbors(user)) entry.watched.insert(v);
  auto [inserted, ok] = cache_.emplace(user, std::move(entry));
  PRIVREC_CHECK(ok);
  return inserted->second.utilities;
}

double RecommendationService::CurrentSensitivity(const CsrGraph& snapshot) {
  if (!sensitivity_valid_ || sensitivity_version_ != graph_->version()) {
    sensitivity_ = utility_->SensitivityBound(snapshot);
    sensitivity_version_ = graph_->version();
    sensitivity_valid_ = true;
  }
  return sensitivity_;
}

void RecommendationService::EvictIfNeeded() {
  if (cache_.size() < options_.cache_capacity) return;
  // Evict the least recently used entry (linear scan: capacity is modest
  // and eviction rare; a heap would be noise here).
  auto victim = cache_.begin();
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->second.last_used < victim->second.last_used) victim = it;
  }
  cache_.erase(victim);
}

void RecommendationService::InvalidateTouching(NodeId u, NodeId v) {
  for (auto it = cache_.begin(); it != cache_.end();) {
    const auto& watched = it->second.watched;
    if (watched.count(u) > 0 || watched.count(v) > 0) {
      it = cache_.erase(it);
      ++stats_.cache_invalidations;
    } else {
      ++it;
    }
  }
}

Status RecommendationService::AddEdge(NodeId u, NodeId v) {
  PRIVREC_RETURN_NOT_OK(graph_->AddEdge(u, v));
  InvalidateTouching(u, v);
  return Status::OK();
}

Status RecommendationService::RemoveEdge(NodeId u, NodeId v) {
  PRIVREC_RETURN_NOT_OK(graph_->RemoveEdge(u, v));
  InvalidateTouching(u, v);
  return Status::OK();
}

Result<NodeId> RecommendationService::ServeRecommendation(NodeId user,
                                                          Rng& rng) {
  if (user >= graph_->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  PrivacyAccountant& accountant = AccountantFor(user);
  Status charge =
      accountant.Charge(options_.release_epsilon, "single recommendation");
  if (!charge.ok()) {
    ++stats_.refused_budget;
    return charge;
  }
  const UtilityVector& utilities = GetUtilities(user);
  std::shared_ptr<const CsrGraph> snapshot = graph_->SharedSnapshot();
  ExponentialMechanism mechanism(options_.release_epsilon,
                                 CurrentSensitivity(*snapshot));
  PRIVREC_ASSIGN_OR_RETURN(Recommendation rec,
                           mechanism.Recommend(utilities, rng));
  ++stats_.served;
  if (!rec.from_zero_block) return rec.node;
  return ResolveZeroUtilityNode(*snapshot, utilities, rng);
}

Result<TopKResult> RecommendationService::ServeList(NodeId user, size_t k,
                                                    Rng& rng) {
  if (user >= graph_->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  PrivacyAccountant& accountant = AccountantFor(user);
  Status charge = accountant.Charge(options_.release_epsilon,
                                    "top-" + std::to_string(k) + " list");
  if (!charge.ok()) {
    ++stats_.refused_budget;
    return charge;
  }
  const UtilityVector& utilities = GetUtilities(user);
  std::shared_ptr<const CsrGraph> snapshot = graph_->SharedSnapshot();
  auto result = PeelingExponentialTopK(utilities, k,
                                       options_.release_epsilon,
                                       CurrentSensitivity(*snapshot), rng);
  if (result.ok()) ++stats_.served;
  return result;
}

double RecommendationService::RemainingBudget(NodeId user) const {
  auto it = accountants_.find(user);
  return it == accountants_.end() ? options_.per_user_budget
                                  : it->second.remaining();
}

}  // namespace privrec
