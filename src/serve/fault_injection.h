#ifndef PRIVREC_SERVE_FAULT_INJECTION_H_
#define PRIVREC_SERVE_FAULT_INJECTION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string_view>

namespace privrec {

/// Named fault points compiled into the serving stack's hot paths. Each
/// point forces one specific fallback route the production code already
/// has — faults never invent behavior, they only make the rare path the
/// taken path, deterministically, so tests and audits can pin it down:
///  - kJournalCompaction: after a mutation's journal append, compact the
///    ring all the way to the current version. Every reader pinned below
///    it (stale cache entries, the snapshot patcher) then sees OutOfRange
///    and takes the full-recompute / full-rebuild fallback — the
///    "journal undersized under a pinned window" production incident.
///  - kSnapshotPatchFail: DynamicGraph::TryPatchLocked returns null as if
///    the PatchCsr splice had reported an inconsistency, so snapshot
///    publication takes the from-scratch BuildLocked path.
///  - kProjectionPatchFail: the PatchProjectedCsr splice of the
///    degree-capped companion is skipped, forcing a full
///    ProjectDegreeCapped re-projection (node-DP serving's rebuild path).
///  - kRepairFail: RecommendationService::RepairEntryLocked abandons
///    journal repair for the visited entry and recomputes it against the
///    pinned snapshot (the exact baseline path).
///  - kShardStall: the serve path sleeps FaultRule::stall_micros while
///    holding the shard mutex — the deterministic slow-shard generator the
///    overload/admission tests are built on.
///
/// The crash points simulate a process death at a durability boundary,
/// in-process: the persist layer leaves its files exactly as a real crash
/// would (half a record fsync'd, a checkpoint without its manifest) and
/// the test/audit harness then recovers from those bytes:
///  - kWalTornWrite: WriteAheadLog::Append persists only the first half of
///    the record, marks the log crashed (every later durable operation
///    refuses), and fails the append — the mutation is rejected, so
///    applied state never runs ahead of durable state. Recovery must
///    truncate the torn tail.
///  - kLedgerPartialAppend: BudgetLedger::AppendCharge persists half a
///    record but REPORTS SUCCESS (a lying-fsync disk), and silently drops
///    all later appends. The service keeps charging and serving; recovery
///    then finds less durable spend than was charged — the one state
///    AuditAcrossRecovery must refuse to certify.
///  - kCheckpointCrash: WriteCheckpoint dies after writing the graph file
///    but before the manifest rename that commits it — the previous
///    checkpoint stays authoritative and recovery replays the longer WAL
///    suffix.
enum class FaultPoint : uint32_t {
  kJournalCompaction = 0,
  kSnapshotPatchFail = 1,
  kProjectionPatchFail = 2,
  kRepairFail = 3,
  kShardStall = 4,
  kWalTornWrite = 5,
  kLedgerPartialAppend = 6,
  kCheckpointCrash = 7,
};

inline constexpr size_t kNumFaultPoints = 8;

inline constexpr FaultPoint kAllFaultPoints[] = {
    FaultPoint::kJournalCompaction, FaultPoint::kSnapshotPatchFail,
    FaultPoint::kProjectionPatchFail, FaultPoint::kRepairFail,
    FaultPoint::kShardStall, FaultPoint::kWalTornWrite,
    FaultPoint::kLedgerPartialAppend, FaultPoint::kCheckpointCrash};

/// "journal_compaction" / "snapshot_patch_fail" / "projection_patch_fail" /
/// "repair_fail" / "shard_stall" / "wal_torn_write" /
/// "ledger_partial_append" / "checkpoint_crash".
const char* FaultPointName(FaultPoint point);

/// Inverse of FaultPointName (bench/CI --inject flags); nullopt on an
/// unknown name.
std::optional<FaultPoint> FaultPointFromName(std::string_view name);

/// When and how one fault point fires. Firing is a pure function of the
/// rule and the point's evaluation counter — no clocks, no randomness — so
/// two injectors with equal plans driven by equal call sequences fire
/// identically (the determinism contract the differential and audit
/// harnesses rely on).
struct FaultRule {
  bool enabled = false;
  /// Fire on every `period`-th evaluation (1 = every time; 0 behaves as 1).
  uint32_t period = 1;
  /// Evaluations to let pass unharmed before the first fire.
  uint32_t skip = 0;
  /// Total fires before the rule goes quiet (0 = unlimited).
  uint64_t max_fires = 0;
  /// "No fallback": instead of rerouting at the point's reroute site, the
  /// fault surfaces at serve admission as a transient kUnavailable error —
  /// the failure RetryPolicy exists to absorb. A rule with fail_serve set
  /// is evaluated ONLY by the serve-admission hook (ShouldFailServe);
  /// reroute hooks ignore it, so each rule has exactly one consumer and
  /// the evaluation counters stay deterministic.
  bool fail_serve = false;
  /// kShardStall only: deterministic delay injected under the shard mutex.
  uint32_t stall_micros = 0;

  friend bool operator==(const FaultRule&, const FaultRule&) = default;
};

/// A full fault schedule: one rule per fault point. Value-semantic and
/// comparable so "identical plans on both sides of a neighboring pair" is
/// checkable, not aspirational.
struct FaultPlan {
  std::array<FaultRule, kNumFaultPoints> rules;

  FaultRule& rule(FaultPoint point) {
    return rules[static_cast<size_t>(point)];
  }
  const FaultRule& rule(FaultPoint point) const {
    return rules[static_cast<size_t>(point)];
  }

  /// Fluent enable: plan.Enable(kRepairFail).Enable(kShardStall, 3).
  FaultPlan& Enable(FaultPoint point, uint32_t period = 1, uint32_t skip = 0,
                    uint64_t max_fires = 0);

  /// Fluent "no fallback" enable (see FaultRule::fail_serve).
  FaultPlan& FailServe(FaultPoint point, uint32_t period = 1,
                       uint32_t skip = 0, uint64_t max_fires = 0);

  bool any_enabled() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Seedless, counter-deterministic fault injector. One instance is shared
/// by a DynamicGraph and the RecommendationService(s) riding it (install
/// via ServiceOptions::fault_injector, which also wires the graph).
///
/// Hot-path cost: every hook site starts with ShouldFire /
/// ShouldFailServe, whose disarmed fast path is ONE relaxed atomic load —
/// no branch history pollution, no lock, nothing else. Only an installed
/// plan pays the slow path (a small mutex around the per-point counters;
/// the counter mutex is what keeps concurrent shards' evaluations totally
/// ordered, which is what makes fire counts exact under TSAN).
///
/// Thread safety: all methods are safe from any thread. Determinism across
/// two injectors requires the two observed call sequences to match, which
/// single-threaded differential tests and the fault auditor's mirrored
/// drive loops guarantee by construction.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs (replaces) the active plan and resets all counters. A plan
  /// with nothing enabled disarms the injector.
  void Install(const FaultPlan& plan);

  /// Disarms and resets counters.
  void Clear();

  /// The active plan (default-constructed when disarmed).
  FaultPlan plan() const;

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Reroute-site hook: true when `point`'s rule (with fail_serve unset)
  /// fires on this evaluation. Disarmed cost: one relaxed atomic load.
  bool ShouldFire(FaultPoint point) {
    if (!armed_.load(std::memory_order_relaxed)) return false;
    return EvaluateSlow(point, /*fail_serve_site=*/false);
  }

  /// Serve-admission hook: scans the plan for fail_serve rules and returns
  /// the first point that fires (the serve then returns kUnavailable
  /// instead of rerouting). Disarmed cost: one relaxed atomic load.
  std::optional<FaultPoint> ShouldFailServe() {
    if (!armed_.load(std::memory_order_relaxed)) return std::nullopt;
    return FailServeSlow();
  }

  /// Fires recorded for `point` since the last Install/Clear.
  uint64_t fires(FaultPoint point) const;
  uint64_t total_fires() const;

  /// Fires at the graph-layer points (journal compaction + both patch
  /// fails): what RecommendationService::stats() folds into
  /// ServiceStats::injected_faults on top of its per-shard serve-path
  /// counts, so one counter covers the whole stack.
  uint64_t graph_fires() const;

  /// Fires at the persist-layer crash points (torn WAL write, partial
  /// ledger append, checkpoint crash): the durability analog of
  /// graph_fires(), folded into ServiceStats::injected_faults the same
  /// way.
  uint64_t persist_fires() const;

 private:
  bool EvaluateSlow(FaultPoint point, bool fail_serve_site);
  std::optional<FaultPoint> FailServeSlow();
  bool FireLocked(size_t index, bool fail_serve_site);

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  FaultPlan plan_;
  std::array<uint64_t, kNumFaultPoints> evals_{};
  std::array<uint64_t, kNumFaultPoints> fires_{};
};

/// Per-shard admission control + budget-aware load shedding for
/// RecommendationService (the PR 2 follow-up in ROADMAP item 2). Requests
/// are checked BEFORE touching the shard mutex, so an overloaded (or
/// fault-stalled) shard sheds in O(1) instead of queueing unboundedly:
///  - over max_queue_depth: shed unconditionally (hard backstop);
///  - over max_inflight_per_shard: shed the requests whose user's
///    remaining lifetime budget is at or below shed_budget_fraction of
///    per_user_budget — the users closest to a budget refusal anyway, so
///    shedding them costs the least future service — while budget-rich
///    requests queue on the shard mutex.
/// Shed requests return kUnavailable, are counted in
/// ServiceStats::shed_overload, and never touch the accountant: budget
/// accounting stays exact under overload by construction.
struct OverloadPolicy {
  bool enabled = false;
  /// Admitted-or-waiting requests per shard above which budget-aware
  /// shedding starts (0 = no soft cap).
  uint32_t max_inflight_per_shard = 0;
  /// Fraction of per_user_budget at or below which a request is shed once
  /// the shard is over the soft cap.
  double shed_budget_fraction = 0.25;
  /// Hard cap: at this depth every new request is shed regardless of
  /// budget (0 = no hard cap).
  uint32_t max_queue_depth = 0;
};

/// Bounded retries with deterministic backoff for transient
/// (kUnavailable) serve failures — injected no-fallback faults and shed
/// requests. Retries happen in the public serve wrappers, outside the
/// shard mutex and BEFORE any budget charge (a refused attempt spends
/// nothing), so retrying is always privacy-neutral. Backoff is a fixed
/// linear schedule, no jitter: replayable by construction.
struct RetryPolicy {
  /// Additional attempts after the first (0 = fail fast).
  uint32_t max_retries = 0;
  /// Attempt i (1-based) sleeps i * backoff_micros before retrying.
  uint32_t backoff_micros = 50;
};

}  // namespace privrec

#endif  // PRIVREC_SERVE_FAULT_INJECTION_H_
