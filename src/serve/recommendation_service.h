#ifndef PRIVREC_SERVE_RECOMMENDATION_SERVICE_H_
#define PRIVREC_SERVE_RECOMMENDATION_SERVICE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/exponential_mechanism.h"
#include "core/privacy_accountant.h"
#include "core/topk.h"
#include "graph/dynamic_graph.h"
#include "random/rng.h"
#include "serve/fault_injection.h"
#include "utility/utility_function.h"

namespace privrec {

class BudgetLedger;
class WriteAheadLog;

/// Configuration of a RecommendationService.
struct ServiceOptions {
  /// ε charged per single recommendation served.
  double release_epsilon = 0.5;
  /// Lifetime ε budget per user (sequential composition cap).
  double per_user_budget = 5.0;
  /// Maximum cached utility vectors before LRU-ish eviction (split evenly
  /// across shards, at least one entry per shard).
  size_t cache_capacity = 4096;
  /// Number of shards (striped slices of users). 0 = auto: the hardware
  /// concurrency rounded up to a power of two, capped at 64. Values > 0
  /// are also rounded up to a power of two.
  size_t num_shards = 0;
  /// Seed for the per-shard RNG streams used by the Rng-less Serve
  /// overloads. Two services with equal seeds (and equal shard counts)
  /// serve identical sequences for identical call sequences.
  uint64_t seed = 0x5eedf00dULL;
  /// Delta-patched cache repair (see class comment): when the graph moved
  /// under a cached entry, drain the edge-delta journal and keep/patch the
  /// entry instead of recomputing, provided the utility supports
  /// incremental updates. Disabled, every version change costs each cached
  /// entry a full recompute on its next serve — the pre-incremental
  /// baseline path, kept reachable for benchmarks
  /// (bench/mutation_serving.cc) and differential tests.
  bool enable_delta_repair = true;
  /// Widest journal window repaired via ApplyEdgeDeltaBatch; wider windows
  /// recompute the affected entry instead. The window patch walks every
  /// net-changed intermediate, so its cost grows with the window, while a
  /// 2-hop recompute is flat — for an entry that lagged hundreds of
  /// toggles behind, recomputing is the cheaper exact repair. Single-delta
  /// patches are unaffected. With enable_affect_filter this bounds
  /// RELEVANT deltas (post-filter), not raw window width.
  size_t max_patch_window = 32;
  /// Affect-filtered window patching: before dispatching a repair, the
  /// drained window is filtered down to the deltas that can matter for
  /// THIS target (UtilityFunction::FilterAffectingWindow — exactness
  /// contract there), so an entry behind a wide window of mostly-elsewhere
  /// writes is patched in O(deltas touching its neighborhood) instead of
  /// falling off the max_patch_window cliff into a full recompute.
  /// Disabled, repair dispatches on raw window width — the PR 5 behavior,
  /// kept reachable for differential tests and the skewed-write bench
  /// contrast (bench/mutation_serving.cc).
  bool enable_affect_filter = true;
  /// Which neighboring relation the service's DP guarantee is stated
  /// against (core/privacy_accountant.h). kEdge (default): neighbors
  /// differ in one edge; every release runs on the raw snapshot and
  /// calibrates with SensitivityBound. kNode: neighbors differ in one
  /// node's ENTIRE adjacency (Appendix A's rewiring pairs); every release
  /// then runs on the degree-capped projected view (degree_cap,
  /// graph/degree_cap.h) and calibrates with the utility's
  /// NodeSensitivityBound on that view — without the cap, one rewired hub
  /// has unbounded influence and no finite calibration is sound.
  PrivacyModel privacy_model = PrivacyModel::kEdge;
  /// Degree cap D of the node-DP projection (ignored under kEdge; must be
  /// > 0 under kNode). Each node keeps its D smallest out-neighbors.
  uint32_t degree_cap = 16;
  /// TRIP-WIRE / TEST ONLY: under kNode, serve on the RAW graph while
  /// still calibrating to the capped NodeSensitivityBound — the canonical
  /// broken node-DP deployment the audit harness must certify as a
  /// violation (eval/service_auditor.h, bench/audit_landscape.cc). Never
  /// enable in production.
  bool uncap_projection = false;
  /// Continual-observation budget windows layered over the lifetime
  /// budget (core/privacy_accountant.h). Disabled by default.
  BudgetWindowPolicy budget_window;
  /// Deterministic fault injector (serve/fault_injection.h), not owned;
  /// must outlive the service. The constructor also installs it on the
  /// graph, arming the graph-layer points (journal compaction, snapshot /
  /// projection patch failure); the service itself evaluates kRepairFail,
  /// kShardStall, and fail_serve rules. nullptr (default) leaves every
  /// hook at its one-relaxed-load disarmed cost.
  FaultInjector* fault_injector = nullptr;
  /// Per-shard admission control + budget-aware load shedding
  /// (serve/fault_injection.h). Disabled by default.
  OverloadPolicy overload;
  /// Bounded retries with deterministic backoff for transient
  /// (kUnavailable) failures: injected no-fallback faults and shed
  /// requests. Default: fail fast.
  RetryPolicy retry;
  /// Durable edge-delta journal (persist/wal.h), not owned; must outlive
  /// the service. The constructor attaches it to the graph, which then
  /// appends every mutation to the WAL BEFORE applying it in memory —
  /// recovery (persist/checkpoint.h) replays the suffix past the last
  /// checkpoint. nullptr (default) leaves mutations memory-only, the
  /// pre-durability fast path.
  WriteAheadLog* wal = nullptr;
  /// Durable per-user privacy-charge ledger (persist/budget_ledger.h), not
  /// owned; must outlive the service. When set, every budget-charging
  /// serve appends its charge to the ledger — and fsyncs — BEFORE the
  /// noised release leaves the service. A crash between the append and the
  /// release loses utility (a charge with no answer), never privacy: the
  /// recovered accountants can only over-count, not under-count. nullptr
  /// (default) keeps accounting memory-only.
  BudgetLedger* budget_ledger = nullptr;
};

/// Serving statistics. Returned by value from stats(): an exact sum of the
/// per-shard counters at the moment each shard was visited (exact whenever
/// the service is quiescent).
struct ServiceStats {
  uint64_t served = 0;
  uint64_t refused_budget = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Cached entries whose vector had to be rebuilt from scratch because
  /// journal repair was unavailable (repair disabled, non-incremental
  /// utility, or journal fallback). Counted when the stale entry is
  /// visited, which is when the pre-incremental design would have erased
  /// it.
  uint64_t cache_invalidations = 0;
  /// Cache hits that could reuse the frozen sampler as-is (no sensitivity
  /// drift since it was built).
  uint64_t sampler_reuses = 0;
  /// Releases performed by ServeForAudit (not counted in `served` and not
  /// charged against any lifetime budget).
  uint64_t audit_serves = 0;
  /// List releases performed by ServeListForAudit (same contract as
  /// audit_serves: not in `served`, budget-neutral).
  uint64_t audit_list_serves = 0;
  /// Delta-repair outcomes for cached entries visited after the graph
  /// version moved (each stale visit lands in exactly one of these four,
  /// or in cache_invalidations when repair was not attempted):
  /// journal drained, entry unaffected by every delta — kept as-is,
  /// frozen sampler and all (the O(1) survival path).
  uint64_t delta_kept = 0;
  /// Affected by the drained window — repaired through the ApplyEdgeDelta
  /// contract: one delta via UtilityFunction::ApplyEdgeDelta, a
  /// multi-delta window in one pass via ApplyEdgeDeltaBatch (counted here
  /// too; both honor the exact-equality contract). Usually O(Δ); a
  /// utility may internally choose a recompute where patching cannot be
  /// exact (directed Jaccard — see link_predictors.h), which still lands
  /// here: the counter tracks the repair route, not its cost.
  uint64_t delta_patched = 0;
  /// Affected by a multi-delta window that could not (no batch support)
  /// or should not (wider than ServiceOptions::max_patch_window — the
  /// patch/recompute crossover) be patched — recomputed, but cheaper than
  /// a fallback: only affected entries pay.
  uint64_t delta_recomputed = 0;
  /// Journal could not cover the window (ring compaction or AddNode):
  /// the visit fell back to the full-recompute path. Journal-aware
  /// eviction keeps this a signal of journal undersizing: entries the
  /// compaction already doomed are purged at eviction time (see
  /// doomed_evictions) instead of lingering until a visit lands here.
  uint64_t journal_fallbacks = 0;
  /// Entries purged by journal-aware eviction because the journal floor
  /// passed their version (they could never be delta-repaired; their next
  /// visit would have been a journal_fallback recompute anyway).
  uint64_t doomed_evictions = 0;
  /// Deltas dropped by the per-target affect filter
  /// (ServiceOptions::enable_affect_filter) across all repairs: the gap
  /// between raw drained-window width and what the patches actually had
  /// to process. High values under write-heavy traffic are the filter
  /// doing its job (most writes miss most targets' neighborhoods).
  uint64_t filter_dropped_deltas = 0;
  /// Wall time spent inside affected-entry repairs (the affect filter plus
  /// the patch or recompute that follows it; delta_patched +
  /// delta_recomputed events). Keeps the repair path's cost observable
  /// without timing every serve: kept entries and sampler work are
  /// excluded, so repair_ns / (delta_patched + delta_recomputed) is the
  /// average price of a repair under the current traffic.
  uint64_t repair_ns = 0;
  /// Serves refused because the user's current budget WINDOW was
  /// exhausted while the lifetime budget still had room
  /// (BudgetWindowPolicy). Under kDegrade, only the serves that could not
  /// even afford the degraded epsilon land here.
  uint64_t refused_window = 0;
  /// Serves completed at the degraded epsilon (release_epsilon /
  /// degrade_factor) because the window could not afford the full charge
  /// (BudgetWindowPolicy::Exhaustion::kDegrade). Also counted in `served`.
  uint64_t degraded_serves = 0;
  /// Budget-window rollovers observed across all users (each is one
  /// user's window spend resetting at a tumbling-window boundary).
  uint64_t window_refreshes = 0;
  /// Requests shed by the overload ladder before touching the shard mutex
  /// (OverloadPolicy): hard queue-depth cap or budget-aware shedding. Shed
  /// requests never reach the accountant, so they are not in served /
  /// refused_budget and spend no ε.
  uint64_t shed_overload = 0;
  /// Retry attempts the bounded-retry wrapper issued after a transient
  /// (kUnavailable) failure (RetryPolicy). Each retry is one extra pass
  /// through the serve path; the final outcome lands in the usual
  /// counters.
  uint64_t retries = 0;
  /// Serves whose cached entry was refreshed through the FORCED
  /// full-recompute fallback — the journal could not replay the window
  /// (journal_fallbacks) or an injected kRepairFail abandoned repair —
  /// as opposed to repair being structurally unavailable. The fallback is
  /// exact (fresh Compute against the pinned snapshot), so these serves
  /// release correct, fully calibrated answers; the counter tracks how
  /// often the degraded route ran, not an accuracy loss.
  uint64_t stale_fallback_serves = 0;
  /// Fault-point fires observed by this service: serve-path evaluations
  /// (kRepairFail, kShardStall, fail_serve admission faults) counted per
  /// shard, plus — folded in by stats() — the graph-layer fires
  /// (journal compaction, snapshot/projection patch failure) of the
  /// installed injector. 0 unless a FaultPlan is armed. When a WAL or
  /// ledger shares the injector, stats() folds their persist-layer fires
  /// (torn appends, checkpoint crashes) in here too.
  uint64_t injected_faults = 0;
  /// Durable ledger records appended by the ledger-before-release rule
  /// (ServiceOptions::budget_ledger). Equals the number of charged serves
  /// completed since the ledger was attached, except when a crash landed
  /// between the append and the release.
  uint64_t ledger_appends = 0;
};

/// The production wrapper a deployment would put around this library:
/// serves private recommendations over a live (mutating) social graph,
/// with
///  - per-user privacy accounting (refuses service when a user's lifetime
///    budget is spent — the only sound failure mode),
///  - a utility-vector cache repaired precisely when a graph update can
///    change a cached vector (for the 2-hop utility families, an update
///    (u,v) affects target r only if u or v lies in {r} ∪ N(r); this
///    service is restricted to those utilities),
///  - exponential-mechanism releases calibrated to the utility's
///    sensitivity on the current graph.
///
/// Incremental maintenance (the mutation-heavy fast path; README
/// "Incremental maintenance"): AddEdge/RemoveEdge only mutate the
/// DynamicGraph — O(1), no cache sweep; the graph's edge-delta journal
/// carries the history. A cached entry whose version lags the shard's
/// pinned snapshot is repaired lazily on its next visit by draining the
/// journal between the two stamps:
///  - unaffected by every drained delta (checked per delta against the
///    post-batch snapshot, via the utility's own EdgeDeltaAffects test —
///    Jaccard widens the structural rule by the cached support) → kept
///    wholesale, frozen sampler included: a cache-hit serve after an
///    unrelated toggle stays one O(1) alias draw;
///  - affected by one delta → patched via UtilityFunction::ApplyEdgeDelta;
///    affected by a multi-delta window → patched in ONE pass against the
///    post-window snapshot via ApplyEdgeDeltaBatch (both O(Δ), both under
///    the exact-equality contract), sampler re-frozen and calibration
///    re-anchored at the new snapshot's Δf;
///  - multi-delta window under a utility without batch support
///    (SupportsIncrementalBatch() == false), journal compacted past the
///    entry's version, AddNode in the window, repair disabled, or utility
///    without incremental support → full recompute of that entry (the
///    baseline path), still touching no other entry.
/// Eviction is journal-aware: at capacity, entries the journal floor
/// already passed (never again repairable) are purged first; LRU applies
/// only when every entry is still repairable.
/// Every repaired (or kept) entry's vector equals a fresh Compute against
/// the pinned snapshot, so each release stays ε-DP calibrated to the
/// graph state it reflects; the calibration ratchet still covers
/// sensitivity drift for kept entries.
///
/// Thread safety (sharded): users are striped across N shards by a mixed
/// hash of their id. Each shard owns its slice of the accountant map, the
/// utility-vector cache, one UtilityWorkspace, and one RNG stream, all
/// guarded by the shard's mutex, which is held for the duration of one
/// Serve call. Concurrent Serve/ServeList calls for users on different
/// shards never contend; calls for the same user serialize, which is what
/// makes budget accounting exact under races (charge and release happen in
/// one critical section). Graph mutations go through the thread-safe
/// DynamicGraph only; repair happens shard-locally under the shard mutex.
///
/// Fast path: the service never copies the graph — it rides the
/// DynamicGraph's RCU snapshot (lock-free atomic load when unmutated) —
/// and each cache entry carries a frozen RecommendationSampler, so a
/// cache-hit single recommendation is one O(1) alias-table draw. The
/// sampler is rebuilt from the cached utilities only when the utility's
/// sensitivity drifted since it was frozen (a mutation elsewhere in the
/// graph can change the global Δf without touching this user's vector).
///
/// The Rng& overloads use the caller's generator (single-threaded
/// replay/debug path: the caller must not share one Rng across concurrent
/// calls); the Rng-less overloads use the shard's own stream and are the
/// concurrency-safe default.
class RecommendationService {
 public:
  /// `graph` and `utility` must outlive the service. The utility must be
  /// 2-hop local (common neighbors / Adamic-Adar / resource allocation /
  /// Jaccard); this is a documented contract, not something the type
  /// system can check.
  RecommendationService(DynamicGraph* graph,
                        std::unique_ptr<UtilityFunction> utility,
                        const ServiceOptions& options);

  /// Serves one ε-DP recommendation to `user`, charging their budget.
  /// FailedPrecondition when the budget is exhausted or the user has no
  /// candidates.
  Result<NodeId> ServeRecommendation(NodeId user, Rng& rng);

  /// Same, drawing randomness from the user's shard stream.
  Result<NodeId> ServeRecommendation(NodeId user);

  /// Serves a k-slot list via the peeling mechanism, charging the same
  /// release_epsilon total (split ε/k per slot inside).
  Result<TopKResult> ServeList(NodeId user, size_t k, Rng& rng);

  /// Same, drawing randomness from the user's shard stream.
  Result<TopKResult> ServeList(NodeId user, size_t k);

  /// Audit hook for the black-box DP auditor (eval/service_auditor.h):
  /// identical to ServeRecommendation(user, rng) through every real code
  /// path — shard routing, snapshot pinning, sensitivity memo, cache
  /// lookup, calibration ratchet, frozen-sampler draw, zero-block
  /// resolution — except that the user's lifetime budget is neither
  /// checked nor charged. An audit needs thousands of trials per user to
  /// estimate the output distribution; charging them would either exhaust
  /// the real budget (refusing the very trials the audit needs) or force
  /// the auditor onto a synthetic side path that is not the code being
  /// audited. Counted in ServiceStats::audit_serves, NOT in `served`, so
  /// budget-exactness invariants over `served` are unaffected. Production
  /// callers must not use this to bypass accounting — it exists so the
  /// audit can observe per-trial outcomes without double-charging the
  /// lifetime ε that the single real release already spent.
  Result<NodeId> ServeForAudit(NodeId user, Rng& rng);

  /// List-release analog of ServeForAudit: identical to
  /// ServeList(user, k, rng) through every real code path — candidate
  /// validation, cache lookup/repair, calibration ratchet, the peeling
  /// top-k mechanism — except that the lifetime budget is neither checked
  /// nor charged. Counted in ServiceStats::audit_list_serves, NOT in
  /// `served`. Same contract and caveats as ServeForAudit.
  Result<TopKResult> ServeListForAudit(NodeId user, size_t k, Rng& rng);

  /// Applies a graph mutation. O(1): the edge-delta journal records the
  /// toggle and stale cache entries are repaired lazily, per shard, on
  /// their next serve (no synchronous sweep). Mutating the DynamicGraph
  /// directly is equivalent — the journal sees those toggles too.
  Status AddEdge(NodeId u, NodeId v);
  Status RemoveEdge(NodeId u, NodeId v);

  /// Remaining lifetime ε for `user` (full budget if never served).
  double RemainingBudget(NodeId user) const;

  /// ε spent inside `user`'s CURRENT budget window (0 if never served or
  /// the window policy is disabled). Observability for the
  /// continual-observation tests and dashboards.
  double WindowSpent(NodeId user) const;

  /// Sum of the per-shard counters.
  ServiceStats stats() const;

  /// Writes a crash-consistent checkpoint of the current graph state to
  /// `dir` and prunes the durable journals behind it:
  ///  1. flush + fsync the WAL (group-commit buffer included),
  ///  2. atomically capture {snapshot, last WAL seq} under the graph's
  ///     writer lock (DynamicGraph::AtomicCheckpointView — no mutation can
  ///     land between the snapshot and the recorded seq),
  ///  3. write the graph file + manifest durably (tmp + fsync + rename;
  ///     the manifest rename is the commit point),
  ///  4. truncate fully-covered WAL segments and compact the budget
  ///     ledger.
  /// Requires ServiceOptions::wal. On any failure the previous checkpoint
  /// (or none) stays authoritative — recovery just replays a longer WAL
  /// suffix.
  Status SaveCheckpoint(const std::string& dir);

  /// RECOVERY ONLY: seeds `user`'s accountant with a durably recorded
  /// lifetime spend (BudgetLedger::SpentByUser) after a restart. Routes to
  /// PrivacyAccountant::RestoreSpent — raises only, may exceed the budget
  /// (the accountant then refuses everything, the conservative posture).
  void ImportSpentBudget(NodeId user, double spent);

  /// Convenience over ImportSpentBudget for a whole recovered ledger map.
  void ImportSpentBudgets(const std::unordered_map<NodeId, double>& spent);

  size_t num_shards() const { return shards_.size(); }

 private:
  struct CacheEntry {
    UtilityVector utilities;
    /// Graph version `utilities` reflects (a snapshot stamp). A lagging
    /// stamp triggers journal repair on the next visit.
    uint64_t version = 0;
    uint64_t last_used = 0;
    /// The Δf this entry's releases are calibrated at. Ratchets up to
    /// max(creation-time Δf, every Δf observed on later hits): a larger
    /// calibration only adds noise, so it stays ε-DP both for a still-valid
    /// entry (vector equals the current graph's) and for an entry caught in
    /// the mutation-to-invalidation-sweep window (vector reflects the
    /// pre-mutation graph) — without having to distinguish the two.
    double calibration_sensitivity = 0;
    /// Frozen alias sampler for the single-recommendation release
    /// (release_epsilon, sampler_sensitivity). Built lazily — only the
    /// single-recommendation path draws from it — and rebuilt from
    /// `utilities` when the calibration ratchets.
    std::optional<RecommendationSampler> sampler;
    double sampler_sensitivity = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<NodeId, CacheEntry> cache;
    std::unordered_map<NodeId, PrivacyAccountant> accountants;
    UtilityWorkspace workspace;
    /// Reusable buffer for the affect-filtered window (RepairEntryLocked);
    /// shard-local like the workspace, so steady-state repairs allocate
    /// nothing.
    std::vector<EdgeDelta> filtered;
    /// The shard's private randomness stream (Rng-less overloads).
    Rng rng;
    uint64_t clock = 0;
    ServiceStats stats;
    /// Shard-pinned graph snapshot, revalidated against the atomic
    /// version() stamp each request: the steady-state serve path takes no
    /// graph-side lock and generates no shared refcount traffic.
    DynamicGraph::StampedSnapshot pinned;
    /// Per-shard sensitivity memo for pinned.version (recomputing Δf can
    /// cost an O(n) degree scan; shard-local so shards never share a memo
    /// cacheline).
    double sensitivity = 0;
    uint64_t sensitivity_version = 0;
    bool sensitivity_valid = false;
    /// Requests admitted (or queued on `mu`) but not yet finished. Read
    /// lock-free by the admission check; maintained by InflightGuard.
    std::atomic<uint32_t> inflight{0};
    /// Overload/retry tallies live outside `mu` (they are incremented
    /// before it is ever taken), hence atomics rather than ServiceStats
    /// fields; stats() folds them in.
    std::atomic<uint64_t> shed_overload{0};
    std::atomic<uint64_t> retries{0};
    /// Remaining-budget hints for budget-aware shedding. A side map, NOT
    /// the accountants: admission must not take `mu`, so it reads a
    /// cheap snapshot maintained after every charge/refusal under this
    /// dedicated mutex (lock order: mu -> budget_mu; admission takes
    /// budget_mu alone). Absent user => full per_user_budget.
    mutable std::mutex budget_mu;
    std::unordered_map<NodeId, double> remaining_hint;

    explicit Shard(uint64_t seed) : rng(seed) {}
  };

  Shard& ShardFor(NodeId user) {
    return *shards_[ShardIndex(user)];
  }
  const Shard& ShardFor(NodeId user) const {
    return *shards_[ShardIndex(user)];
  }
  size_t ShardIndex(NodeId user) const;

  /// The graph every serve-path read goes through: the degree-capped
  /// projected view under kNode (unless the uncap_projection trip-wire
  /// left the snapshot unprojected), the raw snapshot otherwise.
  /// Sensitivity, candidate counts, utility computation, and zero-block
  /// resolution must all read the SAME view — a mixed read de-calibrates
  /// the release.
  const CsrGraph& ServingView(const DynamicGraph::StampedSnapshot& snap) const;

  /// The utility's sensitivity for `snap`'s version, memoized per shard.
  /// Caller holds `shard.mu`.
  double SensitivityForLocked(Shard& shard,
                              const DynamicGraph::StampedSnapshot& snap);

  /// The shard's pinned snapshot, refreshed from the graph iff the atomic
  /// version stamp moved. Caller holds `shard.mu`.
  const DynamicGraph::StampedSnapshot& PinnedSnapshotLocked(Shard& shard);

  /// Finds (or creates) the user's accountant. Caller holds `shard.mu`.
  PrivacyAccountant& AccountantForLocked(Shard& shard, NodeId user);

  /// Fetches (or computes and caches) the user's entry with its
  /// calibration ratcheted against `sensitivity`; freezes the alias
  /// sampler only when `need_sampler`. Stale entries are repaired first
  /// (RepairEntryLocked). Caller holds `shard.mu`.
  Result<CacheEntry*> GetEntryLocked(Shard& shard, NodeId user,
                                     const DynamicGraph::StampedSnapshot& snap,
                                     double sensitivity, bool need_sampler);

  /// Brings an entry whose version lags `snap` up to date: journal-drain
  /// keep/patch when possible, full recompute otherwise (see the class
  /// comment). Updates the delta_* / cache_* stats. Caller holds
  /// `shard.mu`.
  void RepairEntryLocked(Shard& shard, NodeId user,
                         const DynamicGraph::StampedSnapshot& snap,
                         double sensitivity, CacheEntry& entry);

  /// `charge_budget` == false is the ServeForAudit path: skips the
  /// accountant check-and-charge, counts the release in audit_serves.
  Result<NodeId> ServeLocked(Shard& shard, NodeId user, Rng& rng,
                             bool charge_budget = true);
  Result<TopKResult> ServeListLocked(Shard& shard, NodeId user, size_t k,
                                     Rng& rng, bool charge_budget = true);

  void EvictIfNeededLocked(Shard& shard);

  /// Evaluates the injector's serve-path faults for this request: a firing
  /// fail_serve rule returns kUnavailable (no fallback — the RetryPolicy's
  /// food), a firing kShardStall sleeps stall_micros under the shard
  /// mutex. Runs BEFORE any accountant work, so injected failures are
  /// budget-neutral. Caller holds `shard.mu`.
  Status InjectServeFaultsLocked(Shard& shard);

  /// Overload-ladder admission (OverloadPolicy), checked BEFORE the shard
  /// mutex. Returns true to admit; false to shed, with *shed_status set to
  /// kUnavailable and the shard's shed_overload bumped. Never touches the
  /// accountant.
  bool AdmitOrShed(Shard& shard, NodeId user, Status* shed_status);

  /// Refreshes the user's remaining-budget hint from their accountant.
  /// Caller holds `shard.mu` (takes budget_mu inside; lock order
  /// mu -> budget_mu).
  void UpdateBudgetHintLocked(Shard& shard, NodeId user);

  /// Deterministic linear backoff before retry attempt `attempt`
  /// (1-based): sleeps attempt * retry.backoff_micros.
  void DeterministicBackoff(uint32_t attempt) const;

  /// RAII in-flight tracking for the admission check's queue-depth read.
  struct InflightGuard {
    explicit InflightGuard(Shard& s) : shard(s) {
      shard.inflight.fetch_add(1, std::memory_order_acq_rel);
    }
    ~InflightGuard() {
      shard.inflight.fetch_sub(1, std::memory_order_acq_rel);
    }
    Shard& shard;
  };

  /// The overload/degradation ladder every public serve wrapper runs
  /// through: admission (shed in O(1) before the mutex) -> `body` (which
  /// takes shard.mu itself) -> bounded retry with deterministic backoff on
  /// transient (kUnavailable) failures. Retries re-run admission: a shard
  /// that is still saturated sheds the retry too. Budget-neutral by
  /// construction — kUnavailable is returned before any charge.
  template <typename Fn>
  auto ServeWithPolicies(Shard& shard, NodeId user, Fn body)
      -> decltype(body()) {
    uint32_t attempt = 0;
    for (;;) {
      Status shed_status;
      if (!AdmitOrShed(shard, user, &shed_status)) {
        if (attempt < options_.retry.max_retries) {
          shard.retries.fetch_add(1, std::memory_order_relaxed);
          DeterministicBackoff(++attempt);
          continue;
        }
        return decltype(body())(shed_status);
      }
      {
        InflightGuard guard(shard);
        auto result = body();
        if (result.ok() || result.status().code() != StatusCode::kUnavailable ||
            attempt >= options_.retry.max_retries) {
          return result;
        }
      }
      shard.retries.fetch_add(1, std::memory_order_relaxed);
      DeterministicBackoff(++attempt);
    }
  }

  DynamicGraph* graph_;
  std::unique_ptr<UtilityFunction> utility_;
  ServiceOptions options_;
  size_t per_shard_capacity_ = 1;
  size_t shard_mask_ = 0;  // shards_.size() - 1 (power of two)
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace privrec

#endif  // PRIVREC_SERVE_RECOMMENDATION_SERVICE_H_
