#ifndef PRIVREC_SERVE_RECOMMENDATION_SERVICE_H_
#define PRIVREC_SERVE_RECOMMENDATION_SERVICE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/result.h"
#include "core/exponential_mechanism.h"
#include "core/privacy_accountant.h"
#include "core/topk.h"
#include "graph/dynamic_graph.h"
#include "random/rng.h"
#include "utility/utility_function.h"

namespace privrec {

/// Configuration of a RecommendationService.
struct ServiceOptions {
  /// ε charged per single recommendation served.
  double release_epsilon = 0.5;
  /// Lifetime ε budget per user (sequential composition cap).
  double per_user_budget = 5.0;
  /// Maximum cached utility vectors before LRU-ish eviction.
  size_t cache_capacity = 4096;
};

/// Serving statistics.
struct ServiceStats {
  uint64_t served = 0;
  uint64_t refused_budget = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
};

/// The production wrapper a deployment would put around this library:
/// serves private recommendations over a live (mutating) social graph,
/// with
///  - per-user privacy accounting (refuses service when a user's lifetime
///    budget is spent — the only sound failure mode),
///  - a utility-vector cache invalidated precisely when a graph update
///    can change a cached vector (for the 2-hop utility families, an
///    update (u,v) affects target r only if u or v lies in {r} ∪ N(r);
///    this service is restricted to those utilities),
///  - exponential-mechanism releases calibrated to the utility's
///    sensitivity on the current graph.
///
/// Batch-serving fast path: the service never copies the graph — it holds
/// the DynamicGraph's version-stamped shared snapshot (rebuilt only after
/// a mutation) — and computes utility vectors into a long-lived
/// UtilityWorkspace, so steady-state serving performs no O(n) work beyond
/// the utility traversal itself. Lists are drawn through the exponential
/// mechanism's O(1) alias sampler (see ExponentialMechanism::MakeSampler).
///
/// Thread-compatibility: external synchronization required (same contract
/// as the underlying DynamicGraph).
class RecommendationService {
 public:
  /// `graph` and `utility` must outlive the service. The utility must be
  /// 2-hop local (common neighbors / Adamic-Adar / resource allocation /
  /// Jaccard); this is a documented contract, not something the type
  /// system can check.
  RecommendationService(DynamicGraph* graph,
                        std::unique_ptr<UtilityFunction> utility,
                        const ServiceOptions& options);

  /// Serves one ε-DP recommendation to `user`, charging their budget.
  /// FailedPrecondition when the budget is exhausted or the user has no
  /// candidates.
  Result<NodeId> ServeRecommendation(NodeId user, Rng& rng);

  /// Serves a k-slot list via the peeling mechanism, charging the same
  /// release_epsilon total (split ε/k per slot inside).
  Result<TopKResult> ServeList(NodeId user, size_t k, Rng& rng);

  /// Applies a graph mutation and invalidates affected cache entries.
  Status AddEdge(NodeId u, NodeId v);
  Status RemoveEdge(NodeId u, NodeId v);

  /// Remaining lifetime ε for `user` (full budget if never served).
  double RemainingBudget(NodeId user) const;

  const ServiceStats& stats() const { return stats_; }

 private:
  struct CacheEntry {
    UtilityVector utilities;
    /// {user} ∪ N(user) at compute time: the update-influence set.
    std::unordered_set<NodeId> watched;
    uint64_t last_used = 0;
  };

  /// Fetches (or computes and caches) the user's utility vector.
  const UtilityVector& GetUtilities(NodeId user);

  /// The utility's sensitivity on the current snapshot, recomputed only
  /// when the graph version changes (it can cost an O(n) degree scan).
  double CurrentSensitivity(const CsrGraph& snapshot);

  PrivacyAccountant& AccountantFor(NodeId user);

  void InvalidateTouching(NodeId u, NodeId v);
  void EvictIfNeeded();

  DynamicGraph* graph_;
  std::unique_ptr<UtilityFunction> utility_;
  ServiceOptions options_;
  ServiceStats stats_;
  uint64_t clock_ = 0;
  std::unordered_map<NodeId, CacheEntry> cache_;
  std::unordered_map<NodeId, PrivacyAccountant> accountants_;

  /// Reused across every cache-miss Compute; the service contract is
  /// externally synchronized, so one workspace suffices.
  UtilityWorkspace workspace_;

  /// Sensitivity memo for the graph version it was computed at.
  double sensitivity_ = 0;
  uint64_t sensitivity_version_ = 0;
  bool sensitivity_valid_ = false;
};

}  // namespace privrec

#endif  // PRIVREC_SERVE_RECOMMENDATION_SERVICE_H_
