#include "serve/fault_injection.h"

namespace privrec {

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kJournalCompaction:
      return "journal_compaction";
    case FaultPoint::kSnapshotPatchFail:
      return "snapshot_patch_fail";
    case FaultPoint::kProjectionPatchFail:
      return "projection_patch_fail";
    case FaultPoint::kRepairFail:
      return "repair_fail";
    case FaultPoint::kShardStall:
      return "shard_stall";
    case FaultPoint::kWalTornWrite:
      return "wal_torn_write";
    case FaultPoint::kLedgerPartialAppend:
      return "ledger_partial_append";
    case FaultPoint::kCheckpointCrash:
      return "checkpoint_crash";
  }
  return "unknown";
}

std::optional<FaultPoint> FaultPointFromName(std::string_view name) {
  for (FaultPoint point : kAllFaultPoints) {
    if (name == FaultPointName(point)) return point;
  }
  return std::nullopt;
}

FaultPlan& FaultPlan::Enable(FaultPoint point, uint32_t period, uint32_t skip,
                             uint64_t max_fires) {
  FaultRule& r = rule(point);
  r.enabled = true;
  r.period = period;
  r.skip = skip;
  r.max_fires = max_fires;
  r.fail_serve = false;
  return *this;
}

FaultPlan& FaultPlan::FailServe(FaultPoint point, uint32_t period,
                                uint32_t skip, uint64_t max_fires) {
  Enable(point, period, skip, max_fires);
  rule(point).fail_serve = true;
  return *this;
}

bool FaultPlan::any_enabled() const {
  for (const FaultRule& r : rules) {
    if (r.enabled) return true;
  }
  return false;
}

void FaultInjector::Install(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  evals_.fill(0);
  fires_.fill(0);
  armed_.store(plan_.any_enabled(), std::memory_order_release);
}

void FaultInjector::Clear() { Install(FaultPlan{}); }

FaultPlan FaultInjector::plan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_;
}

bool FaultInjector::FireLocked(size_t index, bool fail_serve_site) {
  const FaultRule& r = plan_.rules[index];
  // A rule belongs to exactly one site kind; the other site must not even
  // consume an evaluation, or two equal plans driven by equal sequences
  // could diverge on which evaluations they count.
  if (!r.enabled || r.fail_serve != fail_serve_site) return false;
  const uint64_t eval = evals_[index]++;
  if (eval < r.skip) return false;
  if (r.max_fires != 0 && fires_[index] >= r.max_fires) return false;
  const uint64_t period = r.period == 0 ? 1 : r.period;
  if ((eval - r.skip) % period != 0) return false;
  ++fires_[index];
  return true;
}

bool FaultInjector::EvaluateSlow(FaultPoint point, bool fail_serve_site) {
  std::lock_guard<std::mutex> lock(mu_);
  return FireLocked(static_cast<size_t>(point), fail_serve_site);
}

std::optional<FaultPoint> FaultInjector::FailServeSlow() {
  std::lock_guard<std::mutex> lock(mu_);
  for (FaultPoint point : kAllFaultPoints) {
    if (FireLocked(static_cast<size_t>(point), /*fail_serve_site=*/true)) {
      return point;
    }
  }
  return std::nullopt;
}

uint64_t FaultInjector::fires(FaultPoint point) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fires_[static_cast<size_t>(point)];
}

uint64_t FaultInjector::total_fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (uint64_t f : fires_) total += f;
  return total;
}

uint64_t FaultInjector::graph_fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fires_[static_cast<size_t>(FaultPoint::kJournalCompaction)] +
         fires_[static_cast<size_t>(FaultPoint::kSnapshotPatchFail)] +
         fires_[static_cast<size_t>(FaultPoint::kProjectionPatchFail)];
}

uint64_t FaultInjector::persist_fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fires_[static_cast<size_t>(FaultPoint::kWalTornWrite)] +
         fires_[static_cast<size_t>(FaultPoint::kLedgerPartialAppend)] +
         fires_[static_cast<size_t>(FaultPoint::kCheckpointCrash)];
}

}  // namespace privrec
