#ifndef PRIVREC_SERVE_CONCURRENT_DRIVER_H_
#define PRIVREC_SERVE_CONCURRENT_DRIVER_H_

#include <cstdint>

#include "graph/dynamic_graph.h"
#include "serve/recommendation_service.h"

namespace privrec {

/// Mixed serve/mutate traffic shape for RunConcurrentDriver.
struct ConcurrentDriverOptions {
  /// Worker threads issuing requests (all started behind one barrier).
  unsigned num_threads = 1;
  /// Requests per worker.
  uint64_t ops_per_thread = 1000;
  /// Probability that a request is an edge toggle (AddEdge/RemoveEdge on a
  /// uniform node pair) instead of a serve. 0 = read-only traffic on an
  /// unmutated graph (the RCU fast path).
  double mutate_fraction = 0.0;
  /// Probability that a serve request is a ServeList instead of a single
  /// recommendation.
  double list_fraction = 0.0;
  /// k for ServeList requests.
  size_t list_k = 5;
  /// Users are drawn uniformly from [0, num_users); 0 = all graph nodes.
  NodeId num_users = 0;
  /// Seed for the per-worker request streams (which user, which op). The
  /// serve randomness itself comes from the service's shard streams.
  uint64_t seed = 1234;
};

/// Aggregate result of one driver run.
struct ConcurrentDriverReport {
  uint64_t serve_ok = 0;
  /// Serves refused because the user's lifetime budget was spent (the
  /// sound failure mode, expected under sustained per-user traffic).
  uint64_t serve_refused = 0;
  /// Serves failed for any other reason (should be 0 on healthy graphs).
  uint64_t serve_failed = 0;
  uint64_t mutate_ok = 0;
  /// Edge toggles that lost a race (edge appeared/vanished between the
  /// membership probe and the mutation) — expected noise, not an error.
  uint64_t mutate_noop = 0;
  double wall_seconds = 0;
  /// Successful serves per second of wall time, summed over workers.
  double serves_per_second = 0;
  /// All completed requests (serves incl. refusals + toggles) per second.
  double ops_per_second = 0;
};

/// Drives `num_threads` workers of mixed Serve/ServeList/mutate traffic
/// against `service` (whose graph must be `graph`) and reports aggregate
/// throughput. Workers start behind a barrier (see RunWorkers) so
/// wall-clock throughput is honest, draw their request streams from
/// independent splittable seeds, and use the service's thread-safe
/// Rng-less overloads. This is the parallel-scaling benchmark harness and
/// the engine under the concurrency stress tests.
ConcurrentDriverReport RunConcurrentDriver(
    RecommendationService& service, DynamicGraph& graph,
    const ConcurrentDriverOptions& options);

}  // namespace privrec

#endif  // PRIVREC_SERVE_CONCURRENT_DRIVER_H_
