#ifndef PRIVREC_SERVE_CONCURRENT_DRIVER_H_
#define PRIVREC_SERVE_CONCURRENT_DRIVER_H_

#include <cstdint>
#include <vector>

#include "graph/dynamic_graph.h"
#include "random/rng.h"
#include "serve/recommendation_service.h"

namespace privrec {

/// Mixed serve/mutate traffic shape for RunConcurrentDriver.
struct ConcurrentDriverOptions {
  /// Worker threads issuing requests (all started behind one barrier).
  unsigned num_threads = 1;
  /// Requests per worker.
  uint64_t ops_per_thread = 1000;
  /// Probability that a request is an edge toggle (AddEdge/RemoveEdge on a
  /// uniform node pair) instead of a serve. 0 = read-only traffic on an
  /// unmutated graph (the RCU fast path).
  double mutate_fraction = 0.0;
  /// Probability that a serve request is a ServeList instead of a single
  /// recommendation.
  double list_fraction = 0.0;
  /// k for ServeList requests.
  size_t list_k = 5;
  /// Users are drawn uniformly from [0, num_users); 0 = all graph nodes.
  NodeId num_users = 0;
  /// Seed for the per-worker request streams (which user, which op). The
  /// serve randomness itself comes from the service's shard streams.
  uint64_t seed = 1234;
};

/// Aggregate result of one driver run.
struct ConcurrentDriverReport {
  uint64_t serve_ok = 0;
  /// Serves refused because the user's lifetime budget was spent (the
  /// sound failure mode, expected under sustained per-user traffic).
  uint64_t serve_refused = 0;
  /// Serves shed by the overload ladder or failed by an injected
  /// no-fallback fault (kUnavailable — the transient failure mode,
  /// expected when OverloadPolicy or a fail_serve FaultPlan is active).
  uint64_t serve_shed = 0;
  /// Serves failed for any other reason (should be 0 on healthy graphs).
  uint64_t serve_failed = 0;
  uint64_t mutate_ok = 0;
  /// Edge toggles that lost a race (edge appeared/vanished between the
  /// membership probe and the mutation) — expected noise, not an error.
  uint64_t mutate_noop = 0;
  double wall_seconds = 0;
  /// Successful serves per second of wall time, summed over workers.
  double serves_per_second = 0;
  /// All completed requests (serves incl. refusals + toggles) per second.
  double ops_per_second = 0;
};

/// Drives `num_threads` workers of mixed Serve/ServeList/mutate traffic
/// against `service` (whose graph must be `graph`) and reports aggregate
/// throughput. Workers start behind a barrier (see RunWorkers) so
/// wall-clock throughput is honest, draw their request streams from
/// independent splittable seeds, and use the service's thread-safe
/// Rng-less overloads. This is the parallel-scaling benchmark harness and
/// the engine under the concurrency stress tests.
ConcurrentDriverReport RunConcurrentDriver(
    RecommendationService& service, DynamicGraph& graph,
    const ConcurrentDriverOptions& options);

/// Traffic shape for one MirroredMutator::RunPhase call.
struct MirroredMutatorOptions {
  /// Concurrent mutator/churn workers per phase.
  unsigned num_threads = 2;
  /// Edge toggles each worker applies (to BOTH services) per phase.
  uint64_t toggles_per_thread = 4;
  /// Budget-neutral ServeForAudit calls each worker issues per phase on
  /// non-target users (outputs discarded): cache churn that forces the
  /// delta-repair machinery to run concurrently with the mutations.
  uint64_t churn_serves_per_thread = 8;
  /// Seed for the per-thread toggle and churn streams.
  uint64_t seed = 0x1217'0a5e'ed00ULL;
};

/// Identical-toggle mutation engine behind the audit-under-mutation path
/// (ServiceAuditor::AuditPairUnderMutation): drives `num_threads` workers
/// that apply the SAME deterministic edge-toggle streams to BOTH services
/// of a neighboring pair, so the two graphs stay neighbors (identical
/// except the pair's differing edge) through every intermediate state.
///
/// Determinism and disjointness: the eligible edge slots — ordered arcs
/// (undirected: unordered pairs) not incident to the audited target and
/// not the pair's differing edge — are partitioned round-robin into
/// per-thread pools at construction. Each worker toggles only its own
/// slots, tracking presence itself, so (a) two workers never race on one
/// slot, (b) no membership probe is needed (a probe could observe another
/// worker's in-flight toggle and diverge between the sides), and (c) the
/// end-of-phase graph state is a deterministic function of (seed, thread
/// count, phase count) regardless of scheduling. Worker streams persist
/// across phases, so successive RunPhase calls keep walking fresh state.
///
/// The audited target is never served or touched by toggles during a
/// phase: the measurement trials that follow (run by the auditor, after
/// RunPhase returns) then see a deterministic graph state, which is what
/// lets equal-trials-per-phase measurement counts compose into a sound
/// mixture bound.
class MirroredMutator {
 public:
  /// `base`/`neighbor` serve the two sides of the pair; `initial` is the
  /// base side's starting graph (slot presence is read from it once —
  /// eligible slots agree on both sides by construction). (`skip_u`,
  /// `skip_v`) is the pair's differing edge. Both services must outlive
  /// the mutator.
  MirroredMutator(RecommendationService* base, RecommendationService* neighbor,
                  const CsrGraph& initial, NodeId target, NodeId skip_u,
                  NodeId skip_v, const MirroredMutatorOptions& options);

  /// Runs one concurrent mutation+churn phase to completion (all workers
  /// joined on return — callers may measure sequentially afterwards).
  void RunPhase();

  /// Toggles applied per side (each counted once, not once per service).
  uint64_t toggles_applied() const { return toggles_applied_; }
  /// Churn ServeForAudit calls issued (both sides summed).
  uint64_t churn_serves() const { return churn_serves_; }

 private:
  struct Slot {
    NodeId a = 0;
    NodeId b = 0;
    bool present = false;
  };
  struct Worker {
    std::vector<Slot> slots;
    Rng toggle_rng;
    Rng churn_rng;
    Worker(uint64_t toggle_seed, uint64_t churn_seed)
        : toggle_rng(toggle_seed), churn_rng(churn_seed) {}
  };

  RecommendationService* base_;
  RecommendationService* neighbor_;
  NodeId target_;
  NodeId num_nodes_;
  MirroredMutatorOptions options_;
  std::vector<Worker> workers_;
  uint64_t toggles_applied_ = 0;
  uint64_t churn_serves_ = 0;
};

}  // namespace privrec

#endif  // PRIVREC_SERVE_CONCURRENT_DRIVER_H_
