#include "common/flags.h"

#include "common/string_util.h"

namespace privrec {

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` if the next token is not itself a flag, else bare bool.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
  return Status::OK();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  auto parsed = ParseInt64(it->second);
  return parsed.ok() ? *parsed : default_value;
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  auto parsed = ParseDouble(it->second);
  return parsed.ok() ? *parsed : default_value;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace privrec
