#ifndef PRIVREC_COMMON_CHECKSUM_H_
#define PRIVREC_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace privrec {

/// XOR-fold with position mixing: cheap, order-sensitive, catches
/// truncation and byte corruption (not an adversarial MAC). This is the
/// `.prvg` trailer checksum factored out of graph/binary_io.cc so the
/// write-ahead log and the budget ledger share one integrity idiom; the
/// bytes it produces for a CSR array pair are identical to what binary_io
/// always wrote.
class XorFoldChecksum {
 public:
  /// Folds a 64-bit word with the `.prvg` offsets-array mixing: the
  /// position multiplier runs 1, 2, 3, ... (pre-incremented), matching
  /// the historical `0x632be59bd9b4e019ULL * (i + 1)` term.
  void Mix64(uint64_t word) {
    acc_ ^= word + 0x632be59bd9b4e019ULL * (++words64_);
    acc_ = (acc_ << 7) | (acc_ >> 57);
  }

  /// Folds a 32-bit word with the `.prvg` targets-array mixing: the
  /// position addend runs 0, 1, 2, ... (post-incremented), matching the
  /// historical `targets[i] + i` term.
  void Mix32(uint32_t word) {
    acc_ ^= static_cast<uint64_t>(word) + words32_++;
    acc_ = (acc_ << 13) | (acc_ >> 51);
  }

  uint64_t value() const { return acc_; }

 private:
  uint64_t acc_ = 0x9e3779b97f4a7c15ULL;
  uint64_t words64_ = 0;
  uint64_t words32_ = 0;
};

/// The exact `.prvg` trailer checksum over a CSR offsets/targets pair
/// (spans so common/ stays free of graph types; NodeId converts).
uint64_t ChecksumCsrArrays(std::span<const uint64_t> offsets,
                           std::span<const uint32_t> targets);

/// Checksum over an arbitrary byte range: folds the length first (so a
/// truncated range cannot collide with its prefix), then the bytes as
/// little-endian 64-bit words with the tail zero-padded. Used for the
/// fixed-size WAL and ledger record prefixes.
uint64_t ChecksumBytes(const void* data, size_t size);

}  // namespace privrec

#endif  // PRIVREC_COMMON_CHECKSUM_H_
