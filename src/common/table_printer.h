#ifndef PRIVREC_COMMON_TABLE_PRINTER_H_
#define PRIVREC_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace privrec {

/// Renders aligned plain-text tables for benchmark/experiment output, e.g.
///
///   accuracy  exp(eps=0.5)  bound(eps=0.5)
///   --------  ------------  --------------
///   0.1000    0.6030        0.5110
///
/// Columns are right-aligned except the first, which is left-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Numeric convenience: formats every cell with `digits` decimals, with
  /// the first cell taken from `label`.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int digits = 4);

  /// Renders the table (header, separator, rows) as a single string.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace privrec

#endif  // PRIVREC_COMMON_TABLE_PRINTER_H_
