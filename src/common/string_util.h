#ifndef PRIVREC_COMMON_STRING_UTIL_H_
#define PRIVREC_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace privrec {

/// Splits `input` on `delim`, omitting empty pieces when `skip_empty`.
std::vector<std::string> Split(std::string_view input, char delim,
                               bool skip_empty = true);

/// Splits on arbitrary ASCII whitespace (space, tab, CR), omitting empties.
std::vector<std::string> SplitWhitespace(std::string_view input);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

bool StartsWith(std::string_view s, std::string_view prefix);

/// Strict integer / floating point parsing: the whole trimmed token must
/// parse, otherwise InvalidArgument.
Result<int64_t> ParseInt64(std::string_view token);
Result<double> ParseDouble(std::string_view token);

/// Formats `value` with `digits` significant decimal places ("0.046").
std::string FormatDouble(double value, int digits = 4);

/// Human-readable count with thousands separators ("100,762").
std::string FormatCount(uint64_t value);

}  // namespace privrec

#endif  // PRIVREC_COMMON_STRING_UTIL_H_
