#ifndef PRIVREC_COMMON_FLAGS_H_
#define PRIVREC_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace privrec {

/// Tiny command-line flag parser for the examples and benchmark drivers.
/// Accepts `--name=value` and `--name value`; bare `--name` means "true".
/// Unrecognized positional arguments are collected in positional().
class FlagParser {
 public:
  /// Parses argv; returns InvalidArgument on malformed flags.
  Status Parse(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace privrec

#endif  // PRIVREC_COMMON_FLAGS_H_
