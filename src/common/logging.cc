#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace privrec {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

LogLevel InitialLogLevel() {
  const char* env = std::getenv("PRIVREC_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

struct LogLevelInitializer {
  LogLevelInitializer() { g_log_level.store(InitialLogLevel()); }
};
LogLevelInitializer g_log_level_initializer;

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for readability; full path is rarely useful.
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace privrec
