#include "common/csv.h"

#include "common/string_util.h"

namespace privrec {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

std::string CsvWriter::Escape(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << Escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(const std::vector<double>& fields) {
  std::vector<std::string> text;
  text.reserve(fields.size());
  for (double v : fields) text.push_back(FormatDouble(v, 6));
  WriteRow(text);
}

Status CsvWriter::Close() {
  out_.flush();
  if (!out_.good()) return Status::IOError("failed to flush CSV output");
  out_.close();
  return Status::OK();
}

}  // namespace privrec
