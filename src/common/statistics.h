#ifndef PRIVREC_COMMON_STATISTICS_H_
#define PRIVREC_COMMON_STATISTICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace privrec {

/// Streaming-free summary statistics over a sample (NaNs are the caller's
/// problem — filter first). Used by the experiment harness and tests.
struct SummaryStats {
  size_t count = 0;
  double mean = 0;
  double stddev = 0;  // population
  double min = 0;
  double max = 0;
};

SummaryStats Summarize(const std::vector<double>& values);

/// p-th percentile (p in [0,100]) by linear interpolation between order
/// statistics; the input need not be sorted. Returns NaN on empty input.
double Percentile(std::vector<double> values, double p);

/// Two-sample Kolmogorov–Smirnov statistic: sup_x |F_a(x) - F_b(x)|.
/// Used by the null-model ablation to quantify how far two accuracy CDFs
/// are apart. Returns 1 when either sample is empty.
double KsStatistic(std::vector<double> a, std::vector<double> b);

/// Pearson correlation; NaN if either side has zero variance or sizes
/// mismatch/empty.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

// ---------------------------------------------------------------------------
// Statistical test kit shared by the DP audit harness and the test suites.
// Everything here is deterministic, allocation-light, and dependency-free so
// tests, benches, and src/eval can all lean on one implementation.
// ---------------------------------------------------------------------------

/// Regularized incomplete beta function I_x(a, b) for a, b > 0, x in [0,1].
/// Continued-fraction evaluation (Lentz), accurate to ~1e-12 — the kernel
/// behind exact binomial tail probabilities and Clopper–Pearson intervals.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Two-sided binomial confidence interval.
struct BinomialCi {
  double lower = 0;
  double upper = 1;
};

/// Exact (Clopper–Pearson) two-sided confidence interval for a binomial
/// proportion: `successes` out of `trials` at the given `confidence` (e.g.
/// 0.99). Guaranteed coverage >= confidence for every true p — which is what
/// lets the DP auditor certify its empirical ε̂ as a high-probability lower
/// bound instead of a point guess. lower = 0 when successes == 0 and
/// upper = 1 when successes == trials, as the exact interval requires.
BinomialCi ClopperPearsonInterval(uint64_t successes, uint64_t trials,
                                  double confidence);

/// Pearson chi-squared goodness-of-fit over pre-binned cells. `observed`
/// and `expected` must be the same length (checked fatally — a dropped
/// cell would silently mask the very bugs this test exists to catch).
/// Cells whose expected count is below `min_expected` are skipped (the
/// classical validity rule); `dof` is (#cells used - 1), the usual GOF
/// degrees of freedom when the expected distribution is fully specified.
struct ChiSquaredGof {
  double statistic = 0;
  size_t cells_used = 0;
  double dof = 0;
};
ChiSquaredGof ChiSquaredGoodnessOfFit(const std::vector<double>& observed,
                                      const std::vector<double>& expected,
                                      double min_expected = 5.0);

/// Conservative acceptance threshold for a chi-squared statistic: the
/// mean + num_sds · stddev of the chi2(dof) distribution (mean = dof,
/// variance = 2·dof). At num_sds = 6 this sits far beyond the 99.9th
/// percentile for any dof, so an exceedance means a real distribution bug,
/// not a flake.
double ChiSquaredConservativeBound(double dof, double num_sds);

/// Two-proportion pooled z statistic for H0: p_a == p_b, given
/// `successes_a`/`trials_a` vs `successes_b`/`trials_b`. Positive when side
/// a's rate is higher. Returns 0 when either trial count is zero or the
/// pooled rate is degenerate (0 or 1). Used by the service auditor to rank
/// which outcome diverges most between neighboring graphs.
double TwoProportionZ(uint64_t successes_a, uint64_t trials_a,
                      uint64_t successes_b, uint64_t trials_b);

}  // namespace privrec

#endif  // PRIVREC_COMMON_STATISTICS_H_
