#ifndef PRIVREC_COMMON_STATISTICS_H_
#define PRIVREC_COMMON_STATISTICS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace privrec {

/// Streaming-free summary statistics over a sample (NaNs are the caller's
/// problem — filter first). Used by the experiment harness and tests.
struct SummaryStats {
  size_t count = 0;
  double mean = 0;
  double stddev = 0;  // population
  double min = 0;
  double max = 0;
};

SummaryStats Summarize(const std::vector<double>& values);

/// p-th percentile (p in [0,100]) by linear interpolation between order
/// statistics; the input need not be sorted. Returns NaN on empty input.
double Percentile(std::vector<double> values, double p);

/// Two-sample Kolmogorov–Smirnov statistic: sup_x |F_a(x) - F_b(x)|.
/// Used by the null-model ablation to quantify how far two accuracy CDFs
/// are apart. Returns 1 when either sample is empty.
double KsStatistic(std::vector<double> a, std::vector<double> b);

/// Pearson correlation; NaN if either side has zero variance or sizes
/// mismatch/empty.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

// ---------------------------------------------------------------------------
// Statistical test kit shared by the DP audit harness and the test suites.
// Everything here is deterministic, allocation-light, and dependency-free so
// tests, benches, and src/eval can all lean on one implementation.
// ---------------------------------------------------------------------------

/// Regularized incomplete beta function I_x(a, b) for a, b > 0, x in [0,1].
/// Continued-fraction evaluation (Lentz), accurate to ~1e-12 — the kernel
/// behind exact binomial tail probabilities and Clopper–Pearson intervals.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Two-sided binomial confidence interval.
struct BinomialCi {
  double lower = 0;
  double upper = 1;
};

/// Exact (Clopper–Pearson) two-sided confidence interval for a binomial
/// proportion: `successes` out of `trials` at the given `confidence` (e.g.
/// 0.99). Guaranteed coverage >= confidence for every true p — which is what
/// lets the DP auditor certify its empirical ε̂ as a high-probability lower
/// bound instead of a point guess. lower = 0 when successes == 0 and
/// upper = 1 when successes == trials, as the exact interval requires.
BinomialCi ClopperPearsonInterval(uint64_t successes, uint64_t trials,
                                  double confidence);

/// Pearson chi-squared goodness-of-fit over pre-binned cells. `observed`
/// and `expected` must be the same length (checked fatally — a dropped
/// cell would silently mask the very bugs this test exists to catch).
/// Cells whose expected count is below `min_expected` are skipped (the
/// classical validity rule); `dof` is (#cells used - 1), the usual GOF
/// degrees of freedom when the expected distribution is fully specified.
struct ChiSquaredGof {
  double statistic = 0;
  size_t cells_used = 0;
  double dof = 0;
};
ChiSquaredGof ChiSquaredGoodnessOfFit(const std::vector<double>& observed,
                                      const std::vector<double>& expected,
                                      double min_expected = 5.0);

/// Conservative acceptance threshold for a chi-squared statistic: the
/// mean + num_sds · stddev of the chi2(dof) distribution (mean = dof,
/// variance = 2·dof). At num_sds = 6 this sits far beyond the 99.9th
/// percentile for any dof, so an exceedance means a real distribution bug,
/// not a flake.
double ChiSquaredConservativeBound(double dof, double num_sds);

/// Two-proportion pooled z statistic for H0: p_a == p_b, given
/// `successes_a`/`trials_a` vs `successes_b`/`trials_b`. Positive when side
/// a's rate is higher. Returns 0 when either trial count is zero or the
/// pooled rate is degenerate (0 or 1). Used by the service auditor to rank
/// which outcome diverges most between neighboring graphs.
double TwoProportionZ(uint64_t successes_a, uint64_t trials_a,
                      uint64_t successes_b, uint64_t trials_b);

// ---------------------------------------------------------------------------
// Outcome-cell epsilon estimation and list-outcome reductions (the DP audit
// harness's statistical core, usable standalone by tests and benches).
// ---------------------------------------------------------------------------

/// Per-cell counts over trials: cell id -> number of trials that landed in
/// the cell. Cells need not partition the outcome space (membership cells
/// overlap; complement events are derived), so per-trial cell hits are
/// Bernoulli and Clopper–Pearson applies cell-wise.
using OutcomeCellCounts = std::map<uint64_t, uint64_t>;

/// Empirical ε estimate over binomial outcome cells; the cell-id-typed
/// core behind PathEpsilonEstimate (eval/dp_auditor.h).
struct EpsilonCellEstimate {
  /// max over cells of |ln(p̂/q̂)| with half-count floors.
  double epsilon_hat = 0;
  /// Certified high-probability lower bound: max over cells of the
  /// smallest |ln(p/q)| any point of the joint Clopper–Pearson box can
  /// realize, Bonferroni-corrected across cells.
  double epsilon_lower_bound = 0;
  /// Cell id achieving epsilon_hat.
  uint64_t worst_cell = 0;
  /// Largest |two-proportion z| across cells.
  double worst_z = 0;
  /// Cells the Bonferroni correction was split across (2 CP intervals per
  /// cell). Recorded so the CI regression gate can reject a run whose
  /// correction silently weakened (fewer cells = optimistically narrow
  /// intervals).
  size_t bonferroni_cells = 0;
};

/// Estimates ε̂ and its certified lower bound from per-cell counts on the
/// two sides of a neighboring pair, `trials` per side. The Bonferroni
/// correction splits (1 - confidence) across 2·`bonferroni_cells` CP
/// intervals; `bonferroni_cells` == 0 means "the number of distinct cells
/// observed on either side" (the usual case — pass an explicit larger
/// value when this estimate is one of several sharing a confidence
/// budget, or a smaller one ONLY for gate self-tests). When
/// `include_complements` is set, each cell's complement event (trials not
/// landing in the cell) is tested too, reusing the same CP box — no extra
/// correction needed, and for membership-style cells the complement
/// ("never listed") is often the leaky side.
EpsilonCellEstimate EstimateEpsilonFromOutcomeCells(
    const OutcomeCellCounts& base_cells,
    const OutcomeCellCounts& neighbor_cells, uint64_t trials,
    double confidence, size_t bonferroni_cells = 0,
    bool include_complements = false);

/// Outcome-space reduction for list-valued releases (top-k serving): a
/// k-slot list over 32-bit items is reduced to binomial cells that
/// Clopper–Pearson bounds apply to:
///   - position-marginal cells (position j, item): trials whose slot j
///     held the item;
///   - set-membership cells (item): trials where the item appeared in any
///     slot (each item counted once per trial);
///   - list-identity cells (full sequence, order-sensitive): trials that
///     produced exactly this list, tracked while the number of distinct
///     lists stays small (kMaxIdentityCells) — on tiny audit fixtures the
///     joint outcome is where a peeling mechanism's per-slot leaks
///     compound, and dropping the reduction when the space is large only
///     lowers (never unsoundly raises) the certified bound.
/// Every reduction is a post-processing of the list release, so an ε-DP
/// list mechanism bounds each cell's probability ratio by e^ε — a
/// certified lower bound on any reduced cell lower-bounds the ε of the
/// list release itself.
class ListOutcomeReduction {
 public:
  /// Distinct full-list outcomes tracked before the list-identity
  /// reduction deterministically switches off (both sides of an audit
  /// must use the same cap so the reductions stay comparable).
  static constexpr size_t kMaxIdentityCells = 64;

  /// Cell id of the position-marginal cell (slot `position`, `item`).
  static uint64_t PositionCell(size_t position, uint32_t item) {
    return ((static_cast<uint64_t>(position) + 1) << 32) |
           static_cast<uint64_t>(item);
  }
  /// Cell id of the set-membership cell for `item`.
  static uint64_t MembershipCell(uint32_t item) {
    return static_cast<uint64_t>(item);
  }

  /// Records one trial's list (slot order significant).
  void AddList(std::span<const uint32_t> items);

  uint64_t trials() const { return trials_; }
  /// Position-marginal + membership cells, keyed by the encodings above.
  const OutcomeCellCounts& marginal_cells() const { return marginal_cells_; }
  /// Full-list identity counts keyed by sequence hash; empty() once the
  /// distinct-list cap was exceeded.
  const OutcomeCellCounts& identity_cells() const { return identity_cells_; }
  bool identity_tracked() const { return identity_tracked_; }

 private:
  OutcomeCellCounts marginal_cells_;
  OutcomeCellCounts identity_cells_;
  uint64_t trials_ = 0;
  bool identity_tracked_ = true;
};

/// Estimates ε̂ of a list release from the two sides' reductions
/// (`base.trials()` must equal `neighbor.trials()`). Marginal
/// (position + membership) cells are tested with complement events;
/// list-identity cells are included only when BOTH sides kept them
/// tracked. The Bonferroni correction spans every cell used (or
/// `bonferroni_override` when nonzero — gate self-test only).
EpsilonCellEstimate EstimateEpsilonFromListReductions(
    const ListOutcomeReduction& base, const ListOutcomeReduction& neighbor,
    double confidence, size_t bonferroni_override = 0);

}  // namespace privrec

#endif  // PRIVREC_COMMON_STATISTICS_H_
