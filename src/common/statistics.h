#ifndef PRIVREC_COMMON_STATISTICS_H_
#define PRIVREC_COMMON_STATISTICS_H_

#include <cstddef>
#include <vector>

namespace privrec {

/// Streaming-free summary statistics over a sample (NaNs are the caller's
/// problem — filter first). Used by the experiment harness and tests.
struct SummaryStats {
  size_t count = 0;
  double mean = 0;
  double stddev = 0;  // population
  double min = 0;
  double max = 0;
};

SummaryStats Summarize(const std::vector<double>& values);

/// p-th percentile (p in [0,100]) by linear interpolation between order
/// statistics; the input need not be sorted. Returns NaN on empty input.
double Percentile(std::vector<double> values, double p);

/// Two-sample Kolmogorov–Smirnov statistic: sup_x |F_a(x) - F_b(x)|.
/// Used by the null-model ablation to quantify how far two accuracy CDFs
/// are apart. Returns 1 when either sample is empty.
double KsStatistic(std::vector<double> a, std::vector<double> b);

/// Pearson correlation; NaN if either side has zero variance or sizes
/// mismatch/empty.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace privrec

#endif  // PRIVREC_COMMON_STATISTICS_H_
