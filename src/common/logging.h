#ifndef PRIVREC_COMMON_LOGGING_H_
#define PRIVREC_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace privrec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo; override via SetLogLevel or PRIVREC_LOG_LEVEL env var.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink: accumulates a message and emits it to stderr on
/// destruction. Fatal messages abort the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the log level filters it out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace privrec

#define PRIVREC_LOG_INTERNAL(level) \
  ::privrec::internal::LogMessage(level, __FILE__, __LINE__)

#define PRIVREC_LOG(severity)                                               \
  (::privrec::LogLevel::k##severity < ::privrec::GetLogLevel())             \
      ? (void)0                                                             \
      : (void)(PRIVREC_LOG_INTERNAL(::privrec::LogLevel::k##severity)       \
               << "")

// Stream-capable variants (PRIVREC_LOG cannot chain <<; use these).
#define PRIVREC_DLOG PRIVREC_LOG_INTERNAL(::privrec::LogLevel::kDebug)
#define PRIVREC_ILOG PRIVREC_LOG_INTERNAL(::privrec::LogLevel::kInfo)
#define PRIVREC_WLOG PRIVREC_LOG_INTERNAL(::privrec::LogLevel::kWarning)
#define PRIVREC_ELOG PRIVREC_LOG_INTERNAL(::privrec::LogLevel::kError)
#define PRIVREC_FLOG PRIVREC_LOG_INTERNAL(::privrec::LogLevel::kFatal)

/// CHECK-style invariant assertions: active in all build modes, abort with a
/// diagnostic on failure. Use for programmer errors, not user input (user
/// input errors must surface as Status).
#define PRIVREC_CHECK(cond)                                          \
  while (!(cond))                                                    \
  PRIVREC_FLOG << "Check failed: " #cond " "

#define PRIVREC_CHECK_OK(expr)                                       \
  do {                                                               \
    ::privrec::Status _privrec_check_status = (expr);                \
    PRIVREC_CHECK(_privrec_check_status.ok())                        \
        << _privrec_check_status.ToString();                         \
  } while (false)

#define PRIVREC_CHECK_EQ(a, b) PRIVREC_CHECK((a) == (b))
#define PRIVREC_CHECK_NE(a, b) PRIVREC_CHECK((a) != (b))
#define PRIVREC_CHECK_LT(a, b) PRIVREC_CHECK((a) < (b))
#define PRIVREC_CHECK_LE(a, b) PRIVREC_CHECK((a) <= (b))
#define PRIVREC_CHECK_GT(a, b) PRIVREC_CHECK((a) > (b))
#define PRIVREC_CHECK_GE(a, b) PRIVREC_CHECK((a) >= (b))

#endif  // PRIVREC_COMMON_LOGGING_H_
