#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"

namespace privrec {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int digits) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, digits));
  AddRow(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      size_t pad = widths[c] - row[c].size();
      if (c == 0) {
        line += row[c] + std::string(pad, ' ');
      } else {
        line += std::string(pad, ' ') + row[c];
      }
    }
    return line;
  };

  std::string out = render_row(header_);
  out += '\n';
  std::vector<std::string> seps;
  seps.reserve(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    seps.push_back(std::string(widths[c], '-'));
  }
  out += render_row(seps);
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
    out += '\n';
  }
  return out;
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace privrec
