#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace privrec {

SummaryStats Summarize(const std::vector<double>& values) {
  SummaryStats stats;
  if (values.empty()) return stats;
  stats.count = values.size();
  stats.min = values.front();
  stats.max = values.front();
  double total = 0;
  for (double v : values) {
    total += v;
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
  }
  stats.mean = total / static_cast<double>(values.size());
  double sq = 0;
  for (double v : values) sq += (v - stats.mean) * (v - stats.mean);
  stats.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return stats;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return std::nan("");
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double KsStatistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double ks = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    // Advance both sides past the smaller value together so ties (common
    // in accuracy CDFs full of exact zeros) do not inflate the statistic.
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == x) ++i;
    while (j < b.size() && b[j] == x) ++j;
    const double fa = static_cast<double>(i) / static_cast<double>(a.size());
    const double fb = static_cast<double>(j) / static_cast<double>(b.size());
    ks = std::max(ks, std::fabs(fa - fb));
  }
  return ks;
}

namespace {

/// Continued fraction for the incomplete beta (Numerical Recipes "betacf"
/// shape, modified Lentz iteration).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 1e-15;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h;
}

/// Smallest p with I_p(a, b) >= target, by bisection (I_x is monotone
/// increasing in x). 200 halvings take p well past double precision.
double InverseRegularizedIncompleteBeta(double a, double b, double target) {
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (RegularizedIncompleteBeta(a, b, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the continued fraction on whichever side converges fast.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

BinomialCi ClopperPearsonInterval(uint64_t successes, uint64_t trials,
                                  double confidence) {
  BinomialCi ci;
  if (trials == 0) return ci;  // vacuous [0, 1]
  const double alpha = std::clamp(1.0 - confidence, 1e-12, 1.0);
  const double k = static_cast<double>(successes);
  const double n = static_cast<double>(trials);
  // Exact interval via the beta quantiles:
  //   lower = BetaInv(alpha/2; k, n-k+1), upper = BetaInv(1-alpha/2; k+1, n-k).
  if (successes > 0) {
    ci.lower = InverseRegularizedIncompleteBeta(k, n - k + 1.0, alpha / 2.0);
  }
  if (successes < trials) {
    ci.upper =
        InverseRegularizedIncompleteBeta(k + 1.0, n - k, 1.0 - alpha / 2.0);
  }
  return ci;
}

ChiSquaredGof ChiSquaredGoodnessOfFit(const std::vector<double>& observed,
                                      const std::vector<double>& expected,
                                      double min_expected) {
  // A size mismatch is always a caller bug (a dropped cell would silently
  // pass the GOF check for exactly the distribution bug it should catch).
  PRIVREC_CHECK_EQ(observed.size(), expected.size());
  ChiSquaredGof gof;
  const size_t cells = observed.size();
  for (size_t i = 0; i < cells; ++i) {
    if (expected[i] < min_expected) continue;
    const double diff = observed[i] - expected[i];
    gof.statistic += diff * diff / expected[i];
    ++gof.cells_used;
  }
  gof.dof = gof.cells_used > 0 ? static_cast<double>(gof.cells_used) - 1.0 : 0.0;
  return gof;
}

double ChiSquaredConservativeBound(double dof, double num_sds) {
  return dof + num_sds * std::sqrt(2.0 * dof);
}

double TwoProportionZ(uint64_t successes_a, uint64_t trials_a,
                      uint64_t successes_b, uint64_t trials_b) {
  if (trials_a == 0 || trials_b == 0) return 0.0;
  const double na = static_cast<double>(trials_a);
  const double nb = static_cast<double>(trials_b);
  const double pa = static_cast<double>(successes_a) / na;
  const double pb = static_cast<double>(successes_b) / nb;
  const double pooled =
      static_cast<double>(successes_a + successes_b) / (na + nb);
  const double var = pooled * (1.0 - pooled) * (1.0 / na + 1.0 / nb);
  if (var <= 0.0) return 0.0;
  return (pa - pb) / std::sqrt(var);
}

EpsilonCellEstimate EstimateEpsilonFromOutcomeCells(
    const OutcomeCellCounts& base_cells,
    const OutcomeCellCounts& neighbor_cells, uint64_t trials,
    double confidence, size_t bonferroni_cells, bool include_complements) {
  EpsilonCellEstimate estimate;
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> cells;
  for (const auto& [cell, count] : base_cells) cells[cell].first = count;
  for (const auto& [cell, count] : neighbor_cells) cells[cell].second = count;
  if (cells.empty() || trials == 0) return estimate;
  estimate.bonferroni_cells =
      bonferroni_cells == 0 ? cells.size() : bonferroni_cells;

  // Bonferroni: the certified bound takes a max over 2 CP intervals per
  // cell, so each interval runs at confidence 1 - (1-γ)/(2m) to keep the
  // joint "every interval covers" event at >= γ. Complement events reuse
  // the same two intervals (1-p lives in [1-p_up, 1-p_lo]), so they cost
  // no additional correction.
  const double per_interval_confidence =
      1.0 - (1.0 - confidence) /
                (2.0 * static_cast<double>(estimate.bonferroni_cells));
  const double n = static_cast<double>(trials);
  auto point_ratio = [n](uint64_t a, uint64_t b) {
    // Half-count floor keeps unseen-on-one-side cells finite (they are
    // exactly the interesting ones).
    const double p = std::max(static_cast<double>(a), 0.5) / n;
    const double q = std::max(static_cast<double>(b), 0.5) / n;
    return std::fabs(std::log(p / q));
  };
  auto certified_ratio = [](const BinomialCi& p_ci, const BinomialCi& q_ci) {
    // Smallest |ln(p/q)| any point of the joint confidence box achieves.
    double certified = 0;
    if (p_ci.lower > 0 && q_ci.upper > 0) {
      certified = std::max(certified, std::log(p_ci.lower / q_ci.upper));
    }
    if (q_ci.lower > 0 && p_ci.upper > 0) {
      certified = std::max(certified, std::log(q_ci.lower / p_ci.upper));
    }
    return certified;
  };
  for (const auto& [cell, counts] : cells) {
    const auto [c_base, c_nb] = counts;
    double point = point_ratio(c_base, c_nb);
    if (include_complements) {
      point = std::max(point, point_ratio(trials - c_base, trials - c_nb));
    }
    if (point > estimate.epsilon_hat) {
      estimate.epsilon_hat = point;
      estimate.worst_cell = cell;
    }
    const BinomialCi p_ci =
        ClopperPearsonInterval(c_base, trials, per_interval_confidence);
    const BinomialCi q_ci =
        ClopperPearsonInterval(c_nb, trials, per_interval_confidence);
    double certified = certified_ratio(p_ci, q_ci);
    if (include_complements) {
      const BinomialCi p_comp{1.0 - p_ci.upper, 1.0 - p_ci.lower};
      const BinomialCi q_comp{1.0 - q_ci.upper, 1.0 - q_ci.lower};
      certified = std::max(certified, certified_ratio(p_comp, q_comp));
    }
    estimate.epsilon_lower_bound =
        std::max(estimate.epsilon_lower_bound, certified);
    estimate.worst_z = std::max(
        estimate.worst_z,
        std::fabs(TwoProportionZ(c_base, trials, c_nb, trials)));
  }
  return estimate;
}

void ListOutcomeReduction::AddList(std::span<const uint32_t> items) {
  ++trials_;
  for (size_t pos = 0; pos < items.size(); ++pos) {
    ++marginal_cells_[PositionCell(pos, items[pos])];
  }
  // Membership: each distinct item once per trial (peeling never repeats a
  // concrete node, but every zero-block pick shares one sentinel id).
  for (size_t i = 0; i < items.size(); ++i) {
    bool seen = false;
    for (size_t j = 0; j < i; ++j) seen |= items[j] == items[i];
    if (!seen) ++marginal_cells_[MembershipCell(items[i])];
  }
  if (identity_tracked_) {
    // FNV-1a over the slot sequence: a stable, order-sensitive list id.
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (uint32_t item : items) {
      hash ^= item;
      hash *= 0x100000001b3ULL;
    }
    ++identity_cells_[hash];
    if (identity_cells_.size() > kMaxIdentityCells) {
      identity_cells_.clear();
      identity_tracked_ = false;
    }
  }
}

EpsilonCellEstimate EstimateEpsilonFromListReductions(
    const ListOutcomeReduction& base, const ListOutcomeReduction& neighbor,
    double confidence, size_t bonferroni_override) {
  PRIVREC_CHECK_EQ(base.trials(), neighbor.trials());
  const uint64_t trials = base.trials();
  const bool use_identity =
      base.identity_tracked() && neighbor.identity_tracked();
  size_t total_cells = bonferroni_override;
  if (total_cells == 0) {
    std::map<uint64_t, std::pair<uint64_t, uint64_t>> merged;
    for (const auto& [cell, count] : base.marginal_cells()) {
      merged[cell].first = count;
    }
    for (const auto& [cell, count] : neighbor.marginal_cells()) {
      merged[cell].second = count;
    }
    total_cells = merged.size();
    if (use_identity) {
      merged.clear();
      for (const auto& [cell, count] : base.identity_cells()) {
        merged[cell].first = count;
      }
      for (const auto& [cell, count] : neighbor.identity_cells()) {
        merged[cell].second = count;
      }
      total_cells += merged.size();
    }
  }
  EpsilonCellEstimate estimate = EstimateEpsilonFromOutcomeCells(
      base.marginal_cells(), neighbor.marginal_cells(), trials, confidence,
      total_cells, /*include_complements=*/true);
  if (use_identity) {
    const EpsilonCellEstimate identity = EstimateEpsilonFromOutcomeCells(
        base.identity_cells(), neighbor.identity_cells(), trials, confidence,
        total_cells, /*include_complements=*/true);
    if (identity.epsilon_hat > estimate.epsilon_hat) {
      estimate.epsilon_hat = identity.epsilon_hat;
      estimate.worst_cell = identity.worst_cell;
    }
    estimate.epsilon_lower_bound =
        std::max(estimate.epsilon_lower_bound, identity.epsilon_lower_bound);
    estimate.worst_z = std::max(estimate.worst_z, identity.worst_z);
  }
  estimate.bonferroni_cells = total_cells;
  return estimate;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.empty()) return std::nan("");
  const SummaryStats sx = Summarize(x);
  const SummaryStats sy = Summarize(y);
  if (sx.stddev == 0 || sy.stddev == 0) return std::nan("");
  double cov = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean) * (y[i] - sy.mean);
  }
  cov /= static_cast<double>(x.size());
  return cov / (sx.stddev * sy.stddev);
}

}  // namespace privrec
