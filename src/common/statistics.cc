#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace privrec {

SummaryStats Summarize(const std::vector<double>& values) {
  SummaryStats stats;
  if (values.empty()) return stats;
  stats.count = values.size();
  stats.min = values.front();
  stats.max = values.front();
  double total = 0;
  for (double v : values) {
    total += v;
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
  }
  stats.mean = total / static_cast<double>(values.size());
  double sq = 0;
  for (double v : values) sq += (v - stats.mean) * (v - stats.mean);
  stats.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return stats;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return std::nan("");
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double KsStatistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double ks = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    // Advance both sides past the smaller value together so ties (common
    // in accuracy CDFs full of exact zeros) do not inflate the statistic.
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == x) ++i;
    while (j < b.size() && b[j] == x) ++j;
    const double fa = static_cast<double>(i) / static_cast<double>(a.size());
    const double fb = static_cast<double>(j) / static_cast<double>(b.size());
    ks = std::max(ks, std::fabs(fa - fb));
  }
  return ks;
}

namespace {

/// Continued fraction for the incomplete beta (Numerical Recipes "betacf"
/// shape, modified Lentz iteration).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 1e-15;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h;
}

/// Smallest p with I_p(a, b) >= target, by bisection (I_x is monotone
/// increasing in x). 200 halvings take p well past double precision.
double InverseRegularizedIncompleteBeta(double a, double b, double target) {
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (RegularizedIncompleteBeta(a, b, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the continued fraction on whichever side converges fast.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

BinomialCi ClopperPearsonInterval(uint64_t successes, uint64_t trials,
                                  double confidence) {
  BinomialCi ci;
  if (trials == 0) return ci;  // vacuous [0, 1]
  const double alpha = std::clamp(1.0 - confidence, 1e-12, 1.0);
  const double k = static_cast<double>(successes);
  const double n = static_cast<double>(trials);
  // Exact interval via the beta quantiles:
  //   lower = BetaInv(alpha/2; k, n-k+1), upper = BetaInv(1-alpha/2; k+1, n-k).
  if (successes > 0) {
    ci.lower = InverseRegularizedIncompleteBeta(k, n - k + 1.0, alpha / 2.0);
  }
  if (successes < trials) {
    ci.upper =
        InverseRegularizedIncompleteBeta(k + 1.0, n - k, 1.0 - alpha / 2.0);
  }
  return ci;
}

ChiSquaredGof ChiSquaredGoodnessOfFit(const std::vector<double>& observed,
                                      const std::vector<double>& expected,
                                      double min_expected) {
  // A size mismatch is always a caller bug (a dropped cell would silently
  // pass the GOF check for exactly the distribution bug it should catch).
  PRIVREC_CHECK_EQ(observed.size(), expected.size());
  ChiSquaredGof gof;
  const size_t cells = observed.size();
  for (size_t i = 0; i < cells; ++i) {
    if (expected[i] < min_expected) continue;
    const double diff = observed[i] - expected[i];
    gof.statistic += diff * diff / expected[i];
    ++gof.cells_used;
  }
  gof.dof = gof.cells_used > 0 ? static_cast<double>(gof.cells_used) - 1.0 : 0.0;
  return gof;
}

double ChiSquaredConservativeBound(double dof, double num_sds) {
  return dof + num_sds * std::sqrt(2.0 * dof);
}

double TwoProportionZ(uint64_t successes_a, uint64_t trials_a,
                      uint64_t successes_b, uint64_t trials_b) {
  if (trials_a == 0 || trials_b == 0) return 0.0;
  const double na = static_cast<double>(trials_a);
  const double nb = static_cast<double>(trials_b);
  const double pa = static_cast<double>(successes_a) / na;
  const double pb = static_cast<double>(successes_b) / nb;
  const double pooled =
      static_cast<double>(successes_a + successes_b) / (na + nb);
  const double var = pooled * (1.0 - pooled) * (1.0 / na + 1.0 / nb);
  if (var <= 0.0) return 0.0;
  return (pa - pb) / std::sqrt(var);
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.empty()) return std::nan("");
  const SummaryStats sx = Summarize(x);
  const SummaryStats sy = Summarize(y);
  if (sx.stddev == 0 || sy.stddev == 0) return std::nan("");
  double cov = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean) * (y[i] - sy.mean);
  }
  cov /= static_cast<double>(x.size());
  return cov / (sx.stddev * sy.stddev);
}

}  // namespace privrec
