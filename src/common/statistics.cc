#include "common/statistics.h"

#include <algorithm>
#include <cmath>

namespace privrec {

SummaryStats Summarize(const std::vector<double>& values) {
  SummaryStats stats;
  if (values.empty()) return stats;
  stats.count = values.size();
  stats.min = values.front();
  stats.max = values.front();
  double total = 0;
  for (double v : values) {
    total += v;
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
  }
  stats.mean = total / static_cast<double>(values.size());
  double sq = 0;
  for (double v : values) sq += (v - stats.mean) * (v - stats.mean);
  stats.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return stats;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return std::nan("");
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double KsStatistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double ks = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    // Advance both sides past the smaller value together so ties (common
    // in accuracy CDFs full of exact zeros) do not inflate the statistic.
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == x) ++i;
    while (j < b.size() && b[j] == x) ++j;
    const double fa = static_cast<double>(i) / static_cast<double>(a.size());
    const double fb = static_cast<double>(j) / static_cast<double>(b.size());
    ks = std::max(ks, std::fabs(fa - fb));
  }
  return ks;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.empty()) return std::nan("");
  const SummaryStats sx = Summarize(x);
  const SummaryStats sy = Summarize(y);
  if (sx.stddev == 0 || sy.stddev == 0) return std::nan("");
  double cov = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean) * (y[i] - sy.mean);
  }
  cov /= static_cast<double>(x.size());
  return cov / (sx.stddev * sy.stddev);
}

}  // namespace privrec
