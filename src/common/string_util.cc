#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace privrec {

std::vector<std::string> Split(std::string_view input, char delim,
                               bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= input.size()) {
    size_t end = input.find(delim, start);
    if (end == std::string_view::npos) end = input.size();
    std::string_view piece = input.substr(start, end - start);
    if (!piece.empty() || !skip_empty) out.emplace_back(piece);
    if (end == input.size()) break;
    start = end + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() && std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < input.size() && !std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<int64_t> ParseInt64(std::string_view token) {
  token = Trim(token);
  if (token.empty()) return Status::InvalidArgument("empty integer token");
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("cannot parse integer: '" +
                                   std::string(token) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view token) {
  token = Trim(token);
  if (token.empty()) return Status::InvalidArgument("empty double token");
  // std::from_chars<double> is available in libstdc++ >= 11.
  double value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("cannot parse double: '" +
                                   std::string(token) + "'");
  }
  return value;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatCount(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace privrec
