#ifndef PRIVREC_COMMON_STOPWATCH_H_
#define PRIVREC_COMMON_STOPWATCH_H_

#include <chrono>

namespace privrec {

/// Wall-clock stopwatch for coarse experiment timing. Starts on
/// construction; Elapsed* report time since construction or last Restart.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace privrec

#endif  // PRIVREC_COMMON_STOPWATCH_H_
