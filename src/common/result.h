#ifndef PRIVREC_COMMON_RESULT_H_
#define PRIVREC_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace privrec {

/// Result<T> is either a value of type T or an error Status, following the
/// arrow::Result idiom. Accessing the value of an errored Result aborts, so
/// callers must check ok() (or use PRIVREC_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Implicit construction from an error Status. Aborts if `status` is OK:
  /// an OK Result must carry a value.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) std::abort();
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    if (!ok()) std::abort();
    return *value_;
  }
  T& ValueOrDie() & {
    if (!ok()) std::abort();
    return *value_;
  }
  T&& ValueOrDie() && {
    if (!ok()) std::abort();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace privrec

#define PRIVREC_CONCAT_IMPL(a, b) a##b
#define PRIVREC_CONCAT(a, b) PRIVREC_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// assigns the value to `lhs`, e.g.
///   PRIVREC_ASSIGN_OR_RETURN(auto graph, LoadEdgeList(path));
#define PRIVREC_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto PRIVREC_CONCAT(_privrec_result_, __LINE__) = (rexpr);          \
  if (!PRIVREC_CONCAT(_privrec_result_, __LINE__).ok())               \
    return PRIVREC_CONCAT(_privrec_result_, __LINE__).status();       \
  lhs = std::move(PRIVREC_CONCAT(_privrec_result_, __LINE__)).ValueOrDie()

#endif  // PRIVREC_COMMON_RESULT_H_
