#ifndef PRIVREC_COMMON_STATUS_H_
#define PRIVREC_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace privrec {

/// Canonical error codes, modelled after the RocksDB/Arrow Status idiom.
/// The library does not throw exceptions across API boundaries; fallible
/// operations return a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  /// Transient refusal: the caller did nothing wrong and the request may
  /// succeed if retried (shard overloaded and the request was shed, or an
  /// injected transient fault with no fallback configured). The serving
  /// layer's RetryPolicy retries exactly this code; budget exhaustion is
  /// kFailedPrecondition and is never retried.
  kUnavailable = 8,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A Status holds an error code plus a context message. The OK status is
/// cheap (no allocation); error statuses carry a message describing what
/// went wrong and, by convention, the offending value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

}  // namespace privrec

/// Propagates a non-OK Status to the caller. `expr` is evaluated once.
#define PRIVREC_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::privrec::Status _privrec_status = (expr);     \
    if (!_privrec_status.ok()) return _privrec_status; \
  } while (false)

#endif  // PRIVREC_COMMON_STATUS_H_
