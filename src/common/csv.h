#ifndef PRIVREC_COMMON_CSV_H_
#define PRIVREC_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace privrec {

/// Minimal CSV writer used by the experiment harness to dump figure series.
/// Values containing commas/quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Check ok() before use.
  explicit CsvWriter(const std::string& path);

  /// True if the file opened successfully.
  bool ok() const { return out_.good(); }

  /// Writes one row. Numeric convenience overload below.
  void WriteRow(const std::vector<std::string>& fields);
  void WriteRow(const std::vector<double>& fields);

  /// Flushes and closes; returns IOError on failure.
  Status Close();

 private:
  static std::string Escape(const std::string& field);

  std::ofstream out_;
};

}  // namespace privrec

#endif  // PRIVREC_COMMON_CSV_H_
