#include "common/checksum.h"

#include <cstring>

namespace privrec {

uint64_t ChecksumCsrArrays(std::span<const uint64_t> offsets,
                           std::span<const uint32_t> targets) {
  XorFoldChecksum checksum;
  for (uint64_t offset : offsets) checksum.Mix64(offset);
  for (uint32_t target : targets) checksum.Mix32(target);
  return checksum.value();
}

uint64_t ChecksumBytes(const void* data, size_t size) {
  XorFoldChecksum checksum;
  checksum.Mix64(size);
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t word = 0;
    std::memcpy(&word, bytes + i, 8);
    checksum.Mix64(word);
  }
  if (i < size) {
    unsigned char tail[8] = {0};
    std::memcpy(tail, bytes + i, size - i);
    uint64_t word = 0;
    std::memcpy(&word, tail, 8);
    checksum.Mix64(word);
  }
  return checksum.value();
}

}  // namespace privrec
