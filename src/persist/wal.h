#ifndef PRIVREC_PERSIST_WAL_H_
#define PRIVREC_PERSIST_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/fault_injection.h"

namespace privrec {

/// The mutations the write-ahead log journals. Matches DynamicGraph's
/// mutation surface: edge toggles plus node appends (a node append is the
/// one mutation no edge delta describes, so the WAL must carry it for
/// replay to reconstruct the graph exactly).
enum class WalRecordKind : uint32_t {
  kAddEdge = 0,
  kRemoveEdge = 1,
  kAddNode = 2,
};

/// One decoded WAL record. `seq` is the log-wide sequence number (1-based,
/// consecutive, no gaps) — the replay cursor checkpoints are keyed by.
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kAddEdge;
  uint32_t u = 0;
  uint32_t v = 0;
  uint64_t seq = 0;

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

struct WalOptions {
  /// Records per segment file before the log rotates to a fresh segment.
  /// Segments are the truncation unit: checkpointing drops whole segments
  /// whose records are all covered by the checkpoint.
  uint64_t segment_max_records = 4096;
  /// Group commit: appends are buffered and flushed+fsync'd once this many
  /// records accumulate (1 = every append is durable before it returns,
  /// the conservative default). Larger values amortize the fsync across a
  /// mutation burst; Sync() forces the buffer down at any time, and
  /// durable_seq() reports how far durability has actually advanced.
  uint64_t group_commit_records = 1;
  /// Optional crash injection (FaultPoint::kWalTornWrite). Not owned.
  FaultInjector* fault_injector = nullptr;
};

/// Segmented append-only write-ahead log for edge deltas.
///
/// On-disk format, all little-endian, one file per segment named
/// `wal-<first_seq, 20 digits>.seg`:
///   segment header (16 bytes): u32 magic "PRVW", u32 version,
///                              u64 first_seq
///   record (32 bytes):         u32 kind, u32 u, u32 v, u32 pad,
///                              u64 seq, u64 checksum
/// where checksum = ChecksumBytes over the record's first 24 bytes (the
/// shared `.prvg` XOR-fold, common/checksum.h). Sequence numbers are
/// consecutive across segments with no gaps.
///
/// Open() validates the whole chain. A short, checksum-bad, or
/// out-of-sequence record at the very tail of the LAST segment is a torn
/// write — the tail is truncated (ftruncate) and appending resumes from
/// the last intact record; the same damage anywhere else is corruption
/// and Open() rejects with IOError. truncated_tail_bytes() reports what
/// the last Open() cut.
///
/// Crash semantics under FaultPoint::kWalTornWrite: Append() persists
/// only the first half of the record, fsyncs (the torn bytes ARE on
/// disk, as after a real mid-write power cut), marks the log crashed,
/// and returns IOError — so the caller rejects the mutation and applied
/// state never runs ahead of durable state. Every subsequent durable
/// operation on a crashed log returns FailedPrecondition; recovery goes
/// through a fresh Open() of the same directory.
///
/// Thread safety: all methods serialize on one internal mutex.
class WriteAheadLog {
 public:
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& dir,
                                                     WalOptions options = {});
  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record and returns its assigned sequence number. The
  /// record is durable when this returns only if the group-commit buffer
  /// flushed (group_commit_records = 1, a rotation, or an explicit
  /// Sync()); durable_seq() always tells the truth.
  Result<uint64_t> Append(WalRecordKind kind, uint32_t u, uint32_t v);

  /// Flushes and fsyncs the group-commit buffer.
  Status Sync();

  /// Sequence number the next Append will assign.
  uint64_t next_seq() const;

  /// Highest sequence number known durable (flushed + fsync'd).
  uint64_t durable_seq() const;

  /// Bytes the last Open() truncated off a torn tail (0 = clean open).
  uint64_t truncated_tail_bytes() const { return truncated_tail_bytes_; }

  /// All durable records with seq > after_seq, in order. Reads the
  /// segment files, not the group-commit buffer — call Sync() first if
  /// buffered records must be included. IOError on any mid-chain
  /// corruption (Open() already truncated the only legal torn tail).
  Result<std::vector<WalRecord>> ReadAfter(uint64_t after_seq) const;

  /// Deletes whole segments whose every record has sequence <= seq; the
  /// active segment is never deleted. Called after a checkpoint commits
  /// at `seq` so the journal window on disk stays bounded.
  Status TruncateSegmentsUpTo(uint64_t seq);

  /// Kills the log in-process the way a crash would: the group-commit
  /// buffer is dropped un-flushed, the file descriptor is closed without
  /// further writes, and every later durable operation refuses. What is
  /// on disk afterwards is exactly the durable prefix.
  void SimulateCrash();

  /// True once a torn write or SimulateCrash killed this instance.
  bool crashed() const;

 private:
  WriteAheadLog(std::string dir, WalOptions options);

  Status OpenLocked();
  Status FlushLocked();
  Status RotateLocked();

  const std::string dir_;
  const WalOptions options_;

  mutable std::mutex mu_;
  int fd_ = -1;
  bool crashed_ = false;
  uint64_t next_seq_ = 1;
  uint64_t durable_seq_ = 0;
  uint64_t truncated_tail_bytes_ = 0;
  /// First sequence of the active segment and records already durable in
  /// it (rotation bookkeeping).
  uint64_t active_first_seq_ = 1;
  uint64_t active_records_ = 0;
  /// Encoded records awaiting group commit.
  std::vector<unsigned char> buffer_;
};

}  // namespace privrec

#endif  // PRIVREC_PERSIST_WAL_H_
