#include "persist/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/checksum.h"
#include "common/logging.h"

namespace privrec {
namespace {

constexpr uint32_t kWalMagic = 0x57565250;  // "PRVW"
constexpr uint32_t kWalVersion = 1;
constexpr size_t kSegmentHeaderBytes = 16;
constexpr size_t kRecordBytes = 32;
/// The prefix a torn write leaves behind: half a record, checksum missing.
constexpr size_t kTornRecordBytes = kRecordBytes / 2;

std::string SegmentFileName(uint64_t first_seq) {
  char name[40];
  std::snprintf(name, sizeof(name), "wal-%020llu.seg",
                static_cast<unsigned long long>(first_seq));
  return name;
}

void EncodeSegmentHeader(uint64_t first_seq,
                         unsigned char out[kSegmentHeaderBytes]) {
  std::memcpy(out + 0, &kWalMagic, 4);
  std::memcpy(out + 4, &kWalVersion, 4);
  std::memcpy(out + 8, &first_seq, 8);
}

void EncodeRecord(WalRecordKind kind, uint32_t u, uint32_t v, uint64_t seq,
                  unsigned char out[kRecordBytes]) {
  const uint32_t kind_word = static_cast<uint32_t>(kind);
  const uint32_t pad = 0;
  std::memcpy(out + 0, &kind_word, 4);
  std::memcpy(out + 4, &u, 4);
  std::memcpy(out + 8, &v, 4);
  std::memcpy(out + 12, &pad, 4);
  std::memcpy(out + 16, &seq, 8);
  const uint64_t checksum = ChecksumBytes(out, 24);
  std::memcpy(out + 24, &checksum, 8);
}

bool DecodeRecord(const unsigned char in[kRecordBytes], WalRecord* out) {
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, in + 24, 8);
  if (ChecksumBytes(in, 24) != stored_checksum) return false;
  uint32_t kind_word = 0;
  std::memcpy(&kind_word, in + 0, 4);
  if (kind_word > static_cast<uint32_t>(WalRecordKind::kAddNode)) return false;
  out->kind = static_cast<WalRecordKind>(kind_word);
  std::memcpy(&out->u, in + 4, 4);
  std::memcpy(&out->v, in + 8, 4);
  std::memcpy(&out->seq, in + 16, 8);
  return true;
}

Status FsyncPath(const std::string& path, bool directory) {
  const int fd =
      ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open '" + path + "' for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError("fsync failed on '" + path + "'");
  return Status::OK();
}

Status WriteAll(int fd, const unsigned char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("wal write failed: " +
                             std::string(std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

struct SegmentInfo {
  std::string path;
  uint64_t first_seq = 0;
};

/// Segment files in `dir`, sorted by first sequence (the zero-padded name
/// sorts the same way, but the header is authoritative).
Result<std::vector<SegmentInfo>> ListSegments(const std::string& dir) {
  std::error_code ec;
  std::vector<SegmentInfo> segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() != 28 || name.rfind("wal-", 0) != 0 ||
        name.substr(24) != ".seg") {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    unsigned char header[kSegmentHeaderBytes];
    in.read(reinterpret_cast<char*>(header), kSegmentHeaderBytes);
    if (!in.good()) {
      return Status::IOError("wal segment '" + name + "' has no header");
    }
    uint32_t magic = 0;
    uint32_t version = 0;
    SegmentInfo info;
    info.path = entry.path().string();
    std::memcpy(&magic, header + 0, 4);
    std::memcpy(&version, header + 4, 4);
    std::memcpy(&info.first_seq, header + 8, 8);
    if (magic != kWalMagic) {
      return Status::IOError("wal segment '" + name + "' has a bad magic");
    }
    if (version != kWalVersion) {
      return Status::IOError("wal segment '" + name +
                             "' has unsupported version " +
                             std::to_string(version));
    }
    segments.push_back(std::move(info));
  }
  if (ec) return Status::IOError("cannot list wal dir '" + dir + "'");
  std::sort(segments.begin(), segments.end(),
            [](const SegmentInfo& a, const SegmentInfo& b) {
              return a.first_seq < b.first_seq;
            });
  return segments;
}

/// Reads one segment's records. `is_last` permits (and reports) a torn
/// tail: scanning stops at the first short/corrupt/out-of-sequence record
/// and `torn_at` receives the byte offset it starts at; the same damage
/// in a non-last segment is an IOError.
Status ReadSegmentRecords(const SegmentInfo& segment, bool is_last,
                          std::vector<WalRecord>* out,
                          uint64_t* torn_at = nullptr) {
  std::ifstream in(segment.path, std::ios::binary);
  if (!in.good()) {
    return Status::IOError("cannot open wal segment '" + segment.path + "'");
  }
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(static_cast<std::streamoff>(kSegmentHeaderBytes));
  uint64_t offset = kSegmentHeaderBytes;
  uint64_t expected_seq = segment.first_seq;
  while (offset < file_size) {
    unsigned char raw[kRecordBytes];
    WalRecord record;
    const bool whole = offset + kRecordBytes <= file_size;
    if (whole) in.read(reinterpret_cast<char*>(raw), kRecordBytes);
    if (!whole || !in.good() || !DecodeRecord(raw, &record) ||
        record.seq != expected_seq) {
      if (!is_last) {
        return Status::IOError("wal segment '" + segment.path +
                               "' is corrupt mid-chain at offset " +
                               std::to_string(offset));
      }
      if (torn_at != nullptr) *torn_at = offset;
      return Status::OK();
    }
    out->push_back(record);
    ++expected_seq;
    offset += kRecordBytes;
  }
  return Status::OK();
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {}

WriteAheadLog::~WriteAheadLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (!crashed_ && !buffer_.empty()) {
      // Best-effort final flush; a caller that needs certainty already
      // called Sync() and checked its Status.
      (void)WriteAll(fd_, buffer_.data(), buffer_.size());
      (void)::fsync(fd_);
    }
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& dir, WalOptions options) {
  if (options.segment_max_records == 0) {
    return Status::InvalidArgument("segment_max_records must be positive");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create wal dir '" + dir + "'");
  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(dir, options));
  {
    std::lock_guard<std::mutex> lock(wal->mu_);
    PRIVREC_RETURN_NOT_OK(wal->OpenLocked());
  }
  return wal;
}

Status WriteAheadLog::OpenLocked() {
  PRIVREC_ASSIGN_OR_RETURN(std::vector<SegmentInfo> segments,
                           ListSegments(dir_));
  truncated_tail_bytes_ = 0;
  if (segments.empty()) {
    active_first_seq_ = 1;
    active_records_ = 0;
    next_seq_ = 1;
    durable_seq_ = 0;
    return RotateLocked();
  }
  // Validate the chain: every segment's first_seq must continue the
  // previous segment exactly (gaps or overlaps mean a segment was lost or
  // doubled — unrecoverable corruption, not a torn tail).
  uint64_t expected_first = segments.front().first_seq;
  uint64_t last_seq = segments.front().first_seq - 1;
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].first_seq != expected_first) {
      return Status::IOError("wal segment chain is broken: expected seq " +
                             std::to_string(expected_first) + ", found '" +
                             segments[i].path + "'");
    }
    const bool is_last = i + 1 == segments.size();
    std::vector<WalRecord> records;
    uint64_t torn_at = 0;
    PRIVREC_RETURN_NOT_OK(
        ReadSegmentRecords(segments[i], is_last, &records, &torn_at));
    if (is_last && torn_at != 0) {
      std::error_code size_ec;
      const uint64_t file_size =
          std::filesystem::file_size(segments[i].path, size_ec);
      if (size_ec) {
        return Status::IOError("cannot stat '" + segments[i].path + "'");
      }
      truncated_tail_bytes_ = file_size - torn_at;
      if (::truncate(segments[i].path.c_str(),
                     static_cast<off_t>(torn_at)) != 0) {
        return Status::IOError("cannot truncate torn tail of '" +
                               segments[i].path + "'");
      }
      PRIVREC_RETURN_NOT_OK(FsyncPath(segments[i].path, /*directory=*/false));
    }
    if (!records.empty()) last_seq = records.back().seq;
    expected_first += records.size();
    if (is_last) {
      active_first_seq_ = segments[i].first_seq;
      active_records_ = records.size();
    }
  }
  next_seq_ = last_seq + 1;
  durable_seq_ = last_seq;
  fd_ = ::open(segments.back().path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    return Status::IOError("cannot open wal segment '" +
                           segments.back().path + "' for append");
  }
  return Status::OK();
}

Status WriteAheadLog::RotateLocked() {
  if (fd_ >= 0) {
    if (::fsync(fd_) != 0) return Status::IOError("wal fsync failed");
    ::close(fd_);
    fd_ = -1;
  }
  const std::string path = dir_ + "/" + SegmentFileName(active_first_seq_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::IOError("cannot create wal segment '" + path + "'");
  }
  unsigned char header[kSegmentHeaderBytes];
  EncodeSegmentHeader(active_first_seq_, header);
  PRIVREC_RETURN_NOT_OK(WriteAll(fd_, header, kSegmentHeaderBytes));
  if (::fsync(fd_) != 0) return Status::IOError("wal fsync failed");
  // The directory entry must be durable too, or a crash could lose the
  // whole segment file while its records report durable.
  return FsyncPath(dir_, /*directory=*/true);
}

Status WriteAheadLog::FlushLocked() {
  if (buffer_.empty()) return Status::OK();
  PRIVREC_RETURN_NOT_OK(WriteAll(fd_, buffer_.data(), buffer_.size()));
  if (::fsync(fd_) != 0) return Status::IOError("wal fsync failed");
  const uint64_t flushed = buffer_.size() / kRecordBytes;
  buffer_.clear();
  active_records_ += flushed;
  durable_seq_ = active_first_seq_ + active_records_ - 1;
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::Append(WalRecordKind kind, uint32_t u,
                                       uint32_t v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::FailedPrecondition("wal crashed");
  const uint64_t pending = buffer_.size() / kRecordBytes;
  if (active_records_ + pending >= options_.segment_max_records) {
    PRIVREC_RETURN_NOT_OK(FlushLocked());
    active_first_seq_ = next_seq_;
    active_records_ = 0;
    PRIVREC_RETURN_NOT_OK(RotateLocked());
  }
  unsigned char raw[kRecordBytes];
  EncodeRecord(kind, u, v, next_seq_, raw);
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->ShouldFire(FaultPoint::kWalTornWrite)) {
    // Injected torn write: flush what was already committed, persist only
    // the first half of this record (fsync'd — the torn bytes ARE on
    // disk), and die. The failed Status makes the caller reject the
    // mutation, so durable state and applied state stay equal; the next
    // Open() truncates the tail.
    const Status flushed = FlushLocked();
    if (flushed.ok()) {
      (void)WriteAll(fd_, raw, kTornRecordBytes);
      (void)::fsync(fd_);
    }
    crashed_ = true;
    return Status::IOError("wal crashed mid-append (injected torn write)");
  }
  buffer_.insert(buffer_.end(), raw, raw + kRecordBytes);
  const uint64_t seq = next_seq_++;
  if (buffer_.size() / kRecordBytes >=
      std::max<uint64_t>(1, options_.group_commit_records)) {
    PRIVREC_RETURN_NOT_OK(FlushLocked());
  }
  return seq;
}

Status WriteAheadLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::FailedPrecondition("wal crashed");
  return FlushLocked();
}

uint64_t WriteAheadLog::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t WriteAheadLog::durable_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_seq_;
}

bool WriteAheadLog::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

Result<std::vector<WalRecord>> WriteAheadLog::ReadAfter(
    uint64_t after_seq) const {
  PRIVREC_ASSIGN_OR_RETURN(std::vector<SegmentInfo> segments,
                           ListSegments(dir_));
  std::vector<WalRecord> out;
  for (size_t i = 0; i < segments.size(); ++i) {
    const bool is_last = i + 1 == segments.size();
    std::vector<WalRecord> records;
    uint64_t torn_at = 0;
    PRIVREC_RETURN_NOT_OK(
        ReadSegmentRecords(segments[i], is_last, &records, &torn_at));
    for (const WalRecord& record : records) {
      if (record.seq > after_seq) out.push_back(record);
    }
  }
  return out;
}

Status WriteAheadLog::TruncateSegmentsUpTo(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::FailedPrecondition("wal crashed");
  PRIVREC_ASSIGN_OR_RETURN(std::vector<SegmentInfo> segments,
                           ListSegments(dir_));
  bool removed = false;
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    // A non-last segment's records end just before its successor starts.
    const uint64_t segment_last_seq = segments[i + 1].first_seq - 1;
    if (segment_last_seq > seq) break;
    std::error_code ec;
    std::filesystem::remove(segments[i].path, ec);
    if (ec) {
      return Status::IOError("cannot remove wal segment '" +
                             segments[i].path + "'");
    }
    removed = true;
  }
  if (removed) PRIVREC_RETURN_NOT_OK(FsyncPath(dir_, /*directory=*/true));
  return Status::OK();
}

void WriteAheadLog::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = true;
  buffer_.clear();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace privrec
