#ifndef PRIVREC_PERSIST_CHECKPOINT_H_
#define PRIVREC_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "graph/dynamic_graph.h"
#include "persist/wal.h"
#include "serve/fault_injection.h"

namespace privrec {

/// What the committed MANIFEST records: which graph file is the
/// checkpoint, and where in the WAL (and in the graph's own version
/// clock) it was cut.
struct CheckpointManifest {
  uint64_t wal_seq = 0;
  uint64_t graph_version = 0;
  std::string graph_file;
};

/// What recovery did, for logs and assertions.
struct RecoveryReport {
  bool checkpoint_found = false;
  CheckpointManifest manifest;
  /// WAL records applied on top of the checkpoint.
  uint64_t replayed_records = 0;
};

/// Writes `graph` as `graph-<wal_seq>.prvg` (SaveBinaryGraph: the
/// checksummed `.prvg` format) and commits it by renaming MANIFEST.tmp to
/// MANIFEST — the rename is the single commit point, so a crash anywhere
/// before it leaves the previous checkpoint authoritative and the new
/// graph file as harmless garbage. FaultPoint::kCheckpointCrash (when
/// `injector` is non-null) kills the write exactly there: graph file
/// durable, manifest not renamed.
Status WriteCheckpoint(const std::string& dir, const CsrGraph& graph,
                       uint64_t wal_seq, uint64_t graph_version,
                       FaultInjector* injector = nullptr);

/// The committed MANIFEST, or FailedPrecondition if the directory has
/// none (a genesis checkpoint must be written before the first crash),
/// IOError on corruption.
Result<CheckpointManifest> ReadCheckpointManifest(const std::string& dir);

/// Full graph recovery: load the checkpoint `.prvg`, rebuild a
/// DynamicGraph from it, then strictly replay every WAL record past the
/// checkpoint's wal_seq. Replay failures are Internal — a record was
/// WAL'd only after its mutation passed validation, so replay must
/// reproduce it exactly. Call on a freshly Open()ed WAL (whose open
/// already truncated any torn tail).
Result<std::unique_ptr<DynamicGraph>> RecoverGraph(
    const std::string& dir, const WriteAheadLog& wal,
    RecoveryReport* report = nullptr);

}  // namespace privrec

#endif  // PRIVREC_PERSIST_CHECKPOINT_H_
