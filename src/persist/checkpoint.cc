#include "persist/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/checksum.h"
#include "common/logging.h"
#include "graph/binary_io.h"

namespace privrec {
namespace {

constexpr uint32_t kManifestMagic = 0x4D565250;  // "PRVM"
constexpr uint32_t kManifestVersion = 1;
constexpr size_t kManifestHeaderBytes = 24;

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

Status FsyncPath(const std::string& path, bool directory) {
  const int fd =
      ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open '" + path + "' for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError("fsync failed on '" + path + "'");
  return Status::OK();
}

std::vector<unsigned char> SerializeManifest(const CheckpointManifest& m) {
  const uint32_t name_len = static_cast<uint32_t>(m.graph_file.size());
  std::vector<unsigned char> out(kManifestHeaderBytes + 4 + name_len + 8);
  std::memcpy(out.data() + 0, &kManifestMagic, 4);
  std::memcpy(out.data() + 4, &kManifestVersion, 4);
  std::memcpy(out.data() + 8, &m.wal_seq, 8);
  std::memcpy(out.data() + 16, &m.graph_version, 8);
  std::memcpy(out.data() + 24, &name_len, 4);
  std::memcpy(out.data() + 28, m.graph_file.data(), name_len);
  const uint64_t checksum = ChecksumBytes(out.data(), 28 + name_len);
  std::memcpy(out.data() + 28 + name_len, &checksum, 8);
  return out;
}

}  // namespace

Status WriteCheckpoint(const std::string& dir, const CsrGraph& graph,
                       uint64_t wal_seq, uint64_t graph_version,
                       FaultInjector* injector) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create checkpoint dir '" + dir + "'");

  char name[40];
  std::snprintf(name, sizeof(name), "graph-%020llu.prvg",
                static_cast<unsigned long long>(wal_seq));
  const std::string graph_path = dir + "/" + name;
  const std::string graph_tmp = graph_path + ".tmp";
  PRIVREC_RETURN_NOT_OK(SaveBinaryGraph(graph, graph_tmp));
  PRIVREC_RETURN_NOT_OK(FsyncPath(graph_tmp, /*directory=*/false));
  if (std::rename(graph_tmp.c_str(), graph_path.c_str()) != 0) {
    return Status::IOError("cannot rename '" + graph_tmp + "'");
  }
  PRIVREC_RETURN_NOT_OK(FsyncPath(dir, /*directory=*/true));

  CheckpointManifest manifest;
  manifest.wal_seq = wal_seq;
  manifest.graph_version = graph_version;
  manifest.graph_file = name;
  const std::vector<unsigned char> bytes = SerializeManifest(manifest);
  const std::string manifest_path = ManifestPath(dir);
  const std::string manifest_tmp = manifest_path + ".tmp";
  {
    std::ofstream out(manifest_tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      return Status::IOError("cannot write '" + manifest_tmp + "'");
    }
  }
  PRIVREC_RETURN_NOT_OK(FsyncPath(manifest_tmp, /*directory=*/false));
  // Injected crash at the one interesting instant: the graph file is
  // durable, the manifest is staged, and the commit rename has NOT
  // happened. The previous checkpoint (or none) stays authoritative;
  // recovery replays the longer WAL suffix instead.
  if (injector != nullptr &&
      injector->ShouldFire(FaultPoint::kCheckpointCrash)) {
    return Status::IOError(
        "checkpoint crashed before manifest commit (injected)");
  }
  if (std::rename(manifest_tmp.c_str(), manifest_path.c_str()) != 0) {
    return Status::IOError("cannot rename '" + manifest_tmp + "'");
  }
  return FsyncPath(dir, /*directory=*/true);
}

Result<CheckpointManifest> ReadCheckpointManifest(const std::string& dir) {
  const std::string path = ManifestPath(dir);
  if (!std::filesystem::exists(path)) {
    return Status::FailedPrecondition("no checkpoint manifest in '" + dir +
                                      "'");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::IOError("cannot open '" + path + "'");
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  if (bytes.size() < kManifestHeaderBytes + 4 + 8) {
    return Status::IOError("'" + path + "' is truncated");
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  CheckpointManifest manifest;
  uint32_t name_len = 0;
  std::memcpy(&magic, bytes.data() + 0, 4);
  std::memcpy(&version, bytes.data() + 4, 4);
  std::memcpy(&manifest.wal_seq, bytes.data() + 8, 8);
  std::memcpy(&manifest.graph_version, bytes.data() + 16, 8);
  std::memcpy(&name_len, bytes.data() + 24, 4);
  if (magic != kManifestMagic || version != kManifestVersion) {
    return Status::IOError("'" + path + "' is not a checkpoint manifest");
  }
  if (bytes.size() != kManifestHeaderBytes + 4 + name_len + 8) {
    return Status::IOError("'" + path + "' size disagrees with its name_len");
  }
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes.data() + 28 + name_len, 8);
  if (ChecksumBytes(bytes.data(), 28 + name_len) != stored_checksum) {
    return Status::IOError("'" + path + "' failed checksum verification");
  }
  manifest.graph_file.assign(
      reinterpret_cast<const char*>(bytes.data() + 28), name_len);
  return manifest;
}

Result<std::unique_ptr<DynamicGraph>> RecoverGraph(const std::string& dir,
                                                   const WriteAheadLog& wal,
                                                   RecoveryReport* report) {
  PRIVREC_ASSIGN_OR_RETURN(CheckpointManifest manifest,
                           ReadCheckpointManifest(dir));
  PRIVREC_ASSIGN_OR_RETURN(CsrGraph base,
                           LoadBinaryGraph(dir + "/" + manifest.graph_file));
  auto graph = std::make_unique<DynamicGraph>(base);
  PRIVREC_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                           wal.ReadAfter(manifest.wal_seq));
  for (const WalRecord& record : records) {
    switch (record.kind) {
      case WalRecordKind::kAddEdge: {
        const Status applied = graph->AddEdge(record.u, record.v);
        if (!applied.ok()) {
          return Status::Internal("wal replay failed at seq " +
                                  std::to_string(record.seq) + ": " +
                                  applied.message());
        }
        break;
      }
      case WalRecordKind::kRemoveEdge: {
        const Status applied = graph->RemoveEdge(record.u, record.v);
        if (!applied.ok()) {
          return Status::Internal("wal replay failed at seq " +
                                  std::to_string(record.seq) + ": " +
                                  applied.message());
        }
        break;
      }
      case WalRecordKind::kAddNode: {
        const NodeId id = graph->AddNode();
        if (id != record.u) {
          return Status::Internal(
              "wal replay: AddNode produced id " + std::to_string(id) +
              ", journal recorded " + std::to_string(record.u));
        }
        break;
      }
    }
  }
  if (report != nullptr) {
    report->checkpoint_found = true;
    report->manifest = manifest;
    report->replayed_records = records.size();
  }
  return graph;
}

}  // namespace privrec
