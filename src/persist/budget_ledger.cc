#include "persist/budget_ledger.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/checksum.h"
#include "common/logging.h"

namespace privrec {
namespace {

constexpr uint32_t kLogMagic = 0x42565250;   // "PRVB"
constexpr uint32_t kCkptMagic = 0x4C565250;  // "PRVL"
constexpr uint32_t kLedgerVersion = 1;
constexpr size_t kLogHeaderBytes = 16;
constexpr size_t kRecordBytes = 32;
constexpr size_t kTornRecordBytes = kRecordBytes / 2;
constexpr size_t kCkptHeaderBytes = 24;
constexpr size_t kCkptEntryBytes = 16;

std::string LogPath(const std::string& dir) { return dir + "/ledger.log"; }
std::string CkptPath(const std::string& dir) { return dir + "/ledger.ckpt"; }

uint64_t EpsToBits(double eps) {
  uint64_t bits = 0;
  std::memcpy(&bits, &eps, 8);
  return bits;
}

double BitsToEps(uint64_t bits) {
  double eps = 0;
  std::memcpy(&eps, &bits, 8);
  return eps;
}

void EncodeRecord(NodeId user, double eps, uint64_t seq,
                  unsigned char out[kRecordBytes]) {
  const uint32_t user_word = user;
  const uint32_t pad = 0;
  const uint64_t eps_bits = EpsToBits(eps);
  std::memcpy(out + 0, &user_word, 4);
  std::memcpy(out + 4, &pad, 4);
  std::memcpy(out + 8, &eps_bits, 8);
  std::memcpy(out + 16, &seq, 8);
  const uint64_t checksum = ChecksumBytes(out, 24);
  std::memcpy(out + 24, &checksum, 8);
}

bool DecodeRecord(const unsigned char in[kRecordBytes], NodeId* user,
                  double* eps, uint64_t* seq) {
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, in + 24, 8);
  if (ChecksumBytes(in, 24) != stored_checksum) return false;
  uint32_t user_word = 0;
  uint64_t eps_bits = 0;
  std::memcpy(&user_word, in + 0, 4);
  std::memcpy(&eps_bits, in + 8, 8);
  std::memcpy(seq, in + 16, 8);
  *user = user_word;
  *eps = BitsToEps(eps_bits);
  return true;
}

Status FsyncPath(const std::string& path, bool directory) {
  const int fd =
      ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open '" + path + "' for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError("fsync failed on '" + path + "'");
  return Status::OK();
}

Status WriteAll(int fd, const unsigned char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("ledger write failed: " +
                             std::string(std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Writes `data` to `path` atomically: temp file, fsync, rename, dir
/// fsync. The rename is the commit point.
Status WriteFileDurably(const std::string& dir, const std::string& path,
                        const std::vector<unsigned char>& data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError("cannot create '" + tmp + "'");
  const Status wrote = WriteAll(fd, data.data(), data.size());
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  PRIVREC_RETURN_NOT_OK(wrote);
  if (!synced) return Status::IOError("fsync failed on '" + tmp + "'");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return FsyncPath(dir, /*directory=*/true);
}

std::vector<unsigned char> SerializeLogHeader(uint64_t first_seq) {
  std::vector<unsigned char> out(kLogHeaderBytes);
  std::memcpy(out.data() + 0, &kLogMagic, 4);
  std::memcpy(out.data() + 4, &kLedgerVersion, 4);
  std::memcpy(out.data() + 8, &first_seq, 8);
  return out;
}

std::vector<unsigned char> SerializeCheckpoint(
    const std::unordered_map<NodeId, double>& totals, uint64_t last_seq) {
  // Deterministic entry order so equal states serialize identically.
  std::vector<std::pair<NodeId, double>> entries(totals.begin(), totals.end());
  std::sort(entries.begin(), entries.end());
  const uint64_t count = entries.size();
  std::vector<unsigned char> out(kCkptHeaderBytes +
                                 count * kCkptEntryBytes + 8);
  std::memcpy(out.data() + 0, &kCkptMagic, 4);
  std::memcpy(out.data() + 4, &kLedgerVersion, 4);
  std::memcpy(out.data() + 8, &count, 8);
  std::memcpy(out.data() + 16, &last_seq, 8);
  size_t offset = kCkptHeaderBytes;
  for (const auto& [user, eps] : entries) {
    const uint32_t user_word = user;
    const uint32_t pad = 0;
    const uint64_t eps_bits = EpsToBits(eps);
    std::memcpy(out.data() + offset + 0, &user_word, 4);
    std::memcpy(out.data() + offset + 4, &pad, 4);
    std::memcpy(out.data() + offset + 8, &eps_bits, 8);
    offset += kCkptEntryBytes;
  }
  const uint64_t checksum = ChecksumBytes(out.data(), offset);
  std::memcpy(out.data() + offset, &checksum, 8);
  return out;
}

}  // namespace

BudgetLedger::BudgetLedger(std::string dir, LedgerOptions options)
    : dir_(std::move(dir)), options_(options) {}

BudgetLedger::~BudgetLedger() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<BudgetLedger>> BudgetLedger::Open(
    const std::string& dir, LedgerOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create ledger dir '" + dir + "'");
  std::unique_ptr<BudgetLedger> ledger(new BudgetLedger(dir, options));
  {
    std::lock_guard<std::mutex> lock(ledger->mu_);
    PRIVREC_RETURN_NOT_OK(ledger->OpenLocked());
  }
  return ledger;
}

Status BudgetLedger::OpenLocked() {
  totals_.clear();
  truncated_tail_bytes_ = 0;
  uint64_t checkpoint_last_seq = 0;

  const std::string ckpt_path = CkptPath(dir_);
  if (std::filesystem::exists(ckpt_path)) {
    std::ifstream in(ckpt_path, std::ios::binary);
    if (!in.good()) return Status::IOError("cannot open '" + ckpt_path + "'");
    std::vector<unsigned char> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    if (bytes.size() < kCkptHeaderBytes + 8) {
      return Status::IOError("'" + ckpt_path + "' is truncated");
    }
    uint32_t magic = 0;
    uint32_t version = 0;
    uint64_t count = 0;
    std::memcpy(&magic, bytes.data() + 0, 4);
    std::memcpy(&version, bytes.data() + 4, 4);
    std::memcpy(&count, bytes.data() + 8, 8);
    std::memcpy(&checkpoint_last_seq, bytes.data() + 16, 8);
    if (magic != kCkptMagic || version != kLedgerVersion) {
      return Status::IOError("'" + ckpt_path + "' is not a ledger checkpoint");
    }
    const size_t expected =
        kCkptHeaderBytes + static_cast<size_t>(count) * kCkptEntryBytes + 8;
    if (bytes.size() != expected) {
      return Status::IOError("'" + ckpt_path +
                             "' size disagrees with its entry count");
    }
    uint64_t stored_checksum = 0;
    std::memcpy(&stored_checksum, bytes.data() + bytes.size() - 8, 8);
    if (ChecksumBytes(bytes.data(), bytes.size() - 8) != stored_checksum) {
      return Status::IOError("'" + ckpt_path +
                             "' failed checksum verification");
    }
    size_t offset = kCkptHeaderBytes;
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t user_word = 0;
      uint64_t eps_bits = 0;
      std::memcpy(&user_word, bytes.data() + offset + 0, 4);
      std::memcpy(&eps_bits, bytes.data() + offset + 8, 8);
      totals_[user_word] = BitsToEps(eps_bits);
      offset += kCkptEntryBytes;
    }
  }

  const std::string log_path = LogPath(dir_);
  uint64_t last_seq = checkpoint_last_seq;
  if (std::filesystem::exists(log_path)) {
    std::ifstream in(log_path, std::ios::binary);
    if (!in.good()) return Status::IOError("cannot open '" + log_path + "'");
    in.seekg(0, std::ios::end);
    const uint64_t file_size = static_cast<uint64_t>(in.tellg());
    in.seekg(0);
    if (file_size < kLogHeaderBytes) {
      return Status::IOError("'" + log_path + "' has no header");
    }
    unsigned char header[kLogHeaderBytes];
    in.read(reinterpret_cast<char*>(header), kLogHeaderBytes);
    uint32_t magic = 0;
    uint32_t version = 0;
    uint64_t first_seq = 0;
    std::memcpy(&magic, header + 0, 4);
    std::memcpy(&version, header + 4, 4);
    std::memcpy(&first_seq, header + 8, 8);
    if (magic != kLogMagic || version != kLedgerVersion) {
      return Status::IOError("'" + log_path + "' is not a ledger log");
    }
    if (first_seq != checkpoint_last_seq + 1) {
      return Status::IOError(
          "'" + log_path + "' does not continue the checkpoint (log starts " +
          std::to_string(first_seq) + ", checkpoint ends " +
          std::to_string(checkpoint_last_seq) + ")");
    }
    uint64_t offset = kLogHeaderBytes;
    uint64_t expected_seq = first_seq;
    while (offset < file_size) {
      unsigned char raw[kRecordBytes];
      NodeId user = 0;
      double eps = 0;
      uint64_t seq = 0;
      const bool whole = offset + kRecordBytes <= file_size;
      if (whole) in.read(reinterpret_cast<char*>(raw), kRecordBytes);
      if (!whole || !in.good() || !DecodeRecord(raw, &user, &eps, &seq) ||
          seq != expected_seq) {
        // Torn tail: keep the intact prefix. Charge-before-release means
        // the dropped record's release never happened — losing it costs
        // utility, never privacy.
        truncated_tail_bytes_ = file_size - offset;
        if (::truncate(log_path.c_str(), static_cast<off_t>(offset)) != 0) {
          return Status::IOError("cannot truncate torn tail of '" + log_path +
                                 "'");
        }
        PRIVREC_RETURN_NOT_OK(FsyncPath(log_path, /*directory=*/false));
        break;
      }
      totals_[user] += eps;
      last_seq = seq;
      ++expected_seq;
      offset += kRecordBytes;
    }
  } else {
    PRIVREC_RETURN_NOT_OK(WriteFileDurably(
        dir_, log_path, SerializeLogHeader(checkpoint_last_seq + 1)));
  }

  next_seq_ = last_seq + 1;
  fd_ = ::open(log_path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    return Status::IOError("cannot open '" + log_path + "' for append");
  }
  return Status::OK();
}

Status BudgetLedger::AppendCharge(NodeId user, double eps) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::FailedPrecondition("ledger crashed");
  // Lying-fsync mode: the disk already tore one append but reported
  // success; everything after it silently goes nowhere. The in-memory
  // totals stay frozen with the durable bytes, so SpentByUser() (and any
  // recovery from this directory) truthfully reports LESS than the
  // service charged — the exact state the recovery audit must refuse.
  if (torn_) return Status::OK();
  unsigned char raw[kRecordBytes];
  EncodeRecord(user, eps, next_seq_, raw);
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->ShouldFire(FaultPoint::kLedgerPartialAppend)) {
    (void)WriteAll(fd_, raw, kTornRecordBytes);
    (void)::fsync(fd_);
    torn_ = true;
    return Status::OK();
  }
  PRIVREC_RETURN_NOT_OK(WriteAll(fd_, raw, kRecordBytes));
  if (::fsync(fd_) != 0) return Status::IOError("ledger fsync failed");
  totals_[user] += eps;
  ++next_seq_;
  ++appended_records_;
  return Status::OK();
}

std::unordered_map<NodeId, double> BudgetLedger::SpentByUser() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

uint64_t BudgetLedger::appended_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_records_;
}

Status BudgetLedger::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::FailedPrecondition("ledger crashed");
  if (torn_) return Status::OK();  // lying disk swallows this too
  const uint64_t last_seq = next_seq_ - 1;
  PRIVREC_RETURN_NOT_OK(WriteFileDurably(dir_, CkptPath(dir_),
                                         SerializeCheckpoint(totals_,
                                                             last_seq)));
  // Reset the log AFTER the checkpoint committed: the rename above is the
  // commit point, and a crash between the two leaves checkpoint + full
  // log, which Open() rejects only if they disagree on sequence — they
  // cannot, because the log's records are <= last_seq and are re-applied
  // ... never double-counted: Open() requires log.first_seq ==
  // ckpt.last_seq + 1, so a stale overlapping log fails loudly rather
  // than double-charging. (Conservative: recovery refuses, never
  // under-reports.)
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  PRIVREC_RETURN_NOT_OK(WriteFileDurably(dir_, LogPath(dir_),
                                         SerializeLogHeader(next_seq_)));
  fd_ = ::open(LogPath(dir_).c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    return Status::IOError("cannot reopen '" + LogPath(dir_) +
                           "' for append");
  }
  return Status::OK();
}

void BudgetLedger::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = true;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace privrec
