#ifndef PRIVREC_PERSIST_BUDGET_LEDGER_H_
#define PRIVREC_PERSIST_BUDGET_LEDGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "serve/fault_injection.h"

namespace privrec {

struct LedgerOptions {
  /// Optional crash injection (FaultPoint::kLedgerPartialAppend). Not
  /// owned.
  FaultInjector* fault_injector = nullptr;
};

/// Durable append-only per-user privacy-charge ledger.
///
/// The ordering rule this class exists for: RecommendationService appends
/// the charge here — durably, fsync before OK — BEFORE the noised release
/// leaves the service. A crash between ledger-append and serve therefore
/// loses utility (a charge with no release), never privacy (a release
/// with no charge). Recovery imports SpentByUser() into the accountants,
/// so a restarted service can only ever believe a user spent MORE than
/// they observed, not less.
///
/// On-disk format (little-endian), two files in the directory:
///   ledger.log:  header (16 bytes): u32 magic "PRVB", u32 version,
///                                   u64 first_seq
///                record (32 bytes): u32 user, u32 pad, u64 eps_bits
///                                   (IEEE double), u64 seq, u64 checksum
///                (checksum = ChecksumBytes over the first 24 bytes)
///   ledger.ckpt: u32 magic "PRVL", u32 version, u64 count, u64 last_seq,
///                count x {u32 user, u32 pad, u64 eps_bits}, u64 checksum
///                over everything before it
/// Compact() folds the log into a fresh ledger.ckpt (temp + fsync +
/// rename) and resets the log to header-only, so recovery cost is
/// O(users + appends-since-compaction), not O(lifetime appends).
///
/// Open() applies checkpoint then log; a short or corrupt record at the
/// log tail is a torn append — truncated, with the intact prefix kept
/// (truncated_tail_bytes() reports the cut). Because appends are
/// charge-before-release, dropping a torn tail record can only drop a
/// charge whose release never happened.
///
/// Crash semantics under FaultPoint::kLedgerPartialAppend: AppendCharge
/// persists half a record, fsyncs, REPORTS SUCCESS, and silently swallows
/// every later append — a lying-fsync disk. The service keeps charging
/// and serving against it, so the durable ledger ends up BELOW what was
/// charged: the unrecoverable state AuditAcrossRecovery must refuse to
/// certify (and the CI gate self-test injects exactly this).
///
/// Thread safety: all methods serialize on one internal mutex (shard
/// threads append concurrently).
class BudgetLedger {
 public:
  static Result<std::unique_ptr<BudgetLedger>> Open(const std::string& dir,
                                                    LedgerOptions options = {});
  ~BudgetLedger();
  BudgetLedger(const BudgetLedger&) = delete;
  BudgetLedger& operator=(const BudgetLedger&) = delete;

  /// Durably appends one charge (fsync before OK). Must be called before
  /// the corresponding release is returned to the caller.
  Status AppendCharge(NodeId user, double eps);

  /// Total durable charge per user (checkpoint + replayed log). This is
  /// what recovery imports into the accountants.
  std::unordered_map<NodeId, double> SpentByUser() const;

  /// Folds the log into ledger.ckpt and resets the log. Called after a
  /// service checkpoint commits.
  Status Compact();

  /// Bytes the last Open() truncated off a torn log tail (0 = clean).
  uint64_t truncated_tail_bytes() const { return truncated_tail_bytes_; }

  /// Durable appends since Open (observability; the torn-append fault
  /// freezes this together with the durable state).
  uint64_t appended_records() const;

  /// Kills the ledger in-process the way a crash would: the descriptor is
  /// closed without further writes and every later operation refuses.
  void SimulateCrash();

  /// True once a SimulateCrash killed this instance. (A torn append does
  /// NOT set this — the lying disk keeps reporting success; that is its
  /// point.)
  bool crashed() const;

 private:
  BudgetLedger(std::string dir, LedgerOptions options);

  Status OpenLocked();

  const std::string dir_;
  const LedgerOptions options_;

  mutable std::mutex mu_;
  int fd_ = -1;
  bool crashed_ = false;
  /// Lying-fsync mode: a partial append fired; later appends are
  /// swallowed while still reporting OK.
  bool torn_ = false;
  uint64_t next_seq_ = 1;
  uint64_t appended_records_ = 0;
  uint64_t truncated_tail_bytes_ = 0;
  /// Durable totals: checkpoint + every intact log record. NOT updated by
  /// swallowed appends, so SpentByUser() always equals what recovery
  /// would find on disk.
  std::unordered_map<NodeId, double> totals_;
};

}  // namespace privrec

#endif  // PRIVREC_PERSIST_BUDGET_LEDGER_H_
