#include "random/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace privrec {

LaplaceDistribution::LaplaceDistribution(double scale) : scale_(scale) {
  PRIVREC_CHECK_GT(scale, 0.0) << "Laplace scale must be positive";
}

double LaplaceDistribution::Sample(Rng& rng) const {
  // Inverse CDF on u ~ U(-1/2, 1/2]: -b * sgn(u) * ln(1 - 2|u|).
  double u = rng.NextDouble() - 0.5;
  double sign = (u >= 0) ? 1.0 : -1.0;
  double mag = std::fabs(u);
  // 1 - 2*mag can be 0 when u == -0.5 exactly; nudge to avoid -inf… that
  // would actually be a legitimate (measure-zero) sample, but keep finite.
  double inner = 1.0 - 2.0 * mag;
  if (inner <= 0.0) inner = 0x1.0p-53;
  return -scale_ * sign * std::log(inner);
}

double LaplaceDistribution::Cdf(double y) const {
  if (y < 0) return 0.5 * std::exp(y / scale_);
  return 1.0 - 0.5 * std::exp(-y / scale_);
}

double LaplaceDistribution::Quantile(double p) const {
  PRIVREC_CHECK(p > 0.0 && p < 1.0) << "Laplace quantile needs p in (0,1)";
  if (p < 0.5) return scale_ * std::log(2.0 * p);
  return -scale_ * std::log(2.0 * (1.0 - p));
}

double LaplaceDistribution::SampleMaxOf(Rng& rng, size_t m) const {
  PRIVREC_CHECK_GT(m, 0u);
  if (m == 1) return Sample(rng);
  // F_max(y) = F(y)^m  =>  y = F^{-1}(u^{1/m}), u ~ U(0,1).
  // Compute u^(1/m) in log space for numerical stability at large m.
  double u = rng.NextDoublePositive();
  double root = std::exp(std::log(u) / static_cast<double>(m));
  if (root >= 1.0) root = 1.0 - 0x1.0p-53;
  if (root <= 0.0) root = 0x1.0p-53;
  return Quantile(root);
}

double LaplaceDistribution::SampleMaxOfBelow(Rng& rng, size_t m,
                                             double ceiling) const {
  PRIVREC_CHECK_GT(m, 0u);
  // F_max|<=c(y) = (F(y)/F(c))^m  =>  y = F^{-1}(F(c) · u^{1/m}).
  const double cap = Cdf(ceiling);  // 1.0 when ceiling = +infinity
  double u = rng.NextDoublePositive();
  double root = m == 1 ? u : std::exp(std::log(u) / static_cast<double>(m));
  double p = cap * root;
  if (p >= 1.0) p = 1.0 - 0x1.0p-53;
  if (p <= 0.0) p = 0x1.0p-1022;  // cap underflow: deep-tail ceiling
  // min() guards the float-rounding sliver where Quantile(Cdf(c)) > c.
  return std::min(Quantile(p), ceiling);
}

double SampleExponential(Rng& rng, double rate) {
  PRIVREC_CHECK_GT(rate, 0.0);
  return -std::log(rng.NextDoublePositive()) / rate;
}

double SampleGumbel(Rng& rng) {
  return -std::log(-std::log(rng.NextDoublePositive()));
}

uint64_t SampleGeometric(Rng& rng, double p) {
  PRIVREC_CHECK(p > 0.0 && p <= 1.0);
  if (p == 1.0) return 0;
  double u = rng.NextDoublePositive();
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

uint64_t SampleZipf(Rng& rng, uint64_t n, double alpha) {
  PRIVREC_CHECK_GT(n, 0u);
  PRIVREC_CHECK_GT(alpha, 1.0);
  // Rejection-inversion (Hörmann & Derflinger 1996), simplified.
  const double b = std::pow(2.0, alpha - 1.0);
  while (true) {
    double u = rng.NextDoublePositive();
    double v = rng.NextDoublePositive();
    uint64_t x = static_cast<uint64_t>(
        std::floor(std::pow(u, -1.0 / (alpha - 1.0))));
    if (x < 1 || x > n) continue;
    double t = std::pow(1.0 + 1.0 / static_cast<double>(x), alpha - 1.0);
    if (v * static_cast<double>(x) * (t - 1.0) / (b - 1.0) <=
        t / b) {
      return x;
    }
  }
}

}  // namespace privrec
