#include "random/alias_sampler.h"

#include <numeric>

#include "common/logging.h"

namespace privrec {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  PRIVREC_CHECK(!weights.empty()) << "AliasSampler needs at least one weight";
  const size_t n = weights.size();
  double total = 0;
  for (double w : weights) {
    PRIVREC_CHECK_GE(w, 0.0) << "negative weight";
    total += w;
  }
  pmf_.resize(n);
  if (total <= 0) {
    // Degenerate input: fall back to uniform.
    for (auto& p : pmf_) p = 1.0 / static_cast<double>(n);
  } else {
    for (size_t i = 0; i < n; ++i) pmf_[i] = weights[i] / total;
  }

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<uint32_t> small, large;
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = pmf_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are numerically == 1.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

size_t AliasSampler::Sample(Rng& rng) const {
  size_t bucket = static_cast<size_t>(rng.NextBounded(prob_.size()));
  return rng.NextDouble() < prob_[bucket] ? bucket : alias_[bucket];
}

double AliasSampler::Probability(size_t i) const {
  PRIVREC_CHECK_LT(i, pmf_.size());
  return pmf_[i];
}

}  // namespace privrec
