#include "random/rng.h"

namespace privrec {

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire, "Fast random integer generation in an interval" (2019).
  uint64_t x = engine_();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = engine_();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

}  // namespace privrec
