#ifndef PRIVREC_RANDOM_ALIAS_SAMPLER_H_
#define PRIVREC_RANDOM_ALIAS_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "random/rng.h"

namespace privrec {

/// Walker/Vose alias method: O(n) construction, O(1) sampling from an
/// arbitrary discrete distribution. Used by the exponential mechanism when
/// many recommendations are drawn from the same utility vector, and by the
/// configuration-model graph generator.
class AliasSampler {
 public:
  /// Builds the table from unnormalized non-negative weights. Weights that
  /// are all zero yield a uniform distribution. Empty input is not allowed.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()).
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

  /// Exact probability of drawing index i (for tests).
  double Probability(size_t i) const;

 private:
  std::vector<double> prob_;     // threshold within each bucket
  std::vector<uint32_t> alias_;  // alias target of each bucket
  std::vector<double> pmf_;      // normalized input distribution
};

}  // namespace privrec

#endif  // PRIVREC_RANDOM_ALIAS_SAMPLER_H_
