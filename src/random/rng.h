#ifndef PRIVREC_RANDOM_RNG_H_
#define PRIVREC_RANDOM_RNG_H_

#include <cstdint>
#include <limits>

namespace privrec {

/// SplitMix64: used to expand a single 64-bit seed into engine state and to
/// derive independent child seeds (splittable seeding). Reference:
/// Steele, Lea, Flood, "Fast splittable pseudorandom number generators".
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256++ 1.0 (Blackman & Vigna): the library's workhorse engine.
/// Satisfies std::uniform_random_bit_generator, so it composes with
/// <random> distributions, but privrec code uses the Rng wrapper below.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  result_type operator()() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Deterministic random source with the conveniences the library needs.
/// Every randomized component takes an Rng (or a seed) explicitly — there is
/// no hidden global RNG, so all experiments are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Raw 64 random bits.
  uint64_t NextUint64() { return engine_(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; safe to pass to log().
  double NextDoublePositive() { return 1.0 - NextDouble(); }

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// nearly-divisionless bounded rejection.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Derives an independent child Rng; successive calls give distinct
  /// streams. Used to give each experiment target its own stream so results
  /// do not depend on evaluation order or parallelism.
  Rng Fork() { return Rng(engine_() ^ 0x5851f42d4c957f2dULL); }

 private:
  Xoshiro256 engine_;
};

}  // namespace privrec

#endif  // PRIVREC_RANDOM_RNG_H_
