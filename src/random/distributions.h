#ifndef PRIVREC_RANDOM_DISTRIBUTIONS_H_
#define PRIVREC_RANDOM_DISTRIBUTIONS_H_

#include <cstddef>

#include "random/rng.h"

namespace privrec {

/// Laplace(location=0, scale=b) sampling and distribution functions.
/// The Laplace mechanism (Dwork et al., TCC'06) adds Laplace(Δf/ε) noise;
/// see core/laplace_mechanism.h.
///
/// pdf(y) = 1/(2b) exp(-|y|/b)      cdf(y) = 1/2 exp(y/b)            y < 0
///                                         = 1 - 1/2 exp(-y/b)        y >= 0
class LaplaceDistribution {
 public:
  /// Creates a Laplace(0, scale) distribution; scale must be > 0.
  explicit LaplaceDistribution(double scale);

  double scale() const { return scale_; }

  /// Draws one sample via inverse-CDF.
  double Sample(Rng& rng) const;

  double Cdf(double y) const;

  /// Inverse CDF; p must be in (0, 1).
  double Quantile(double p) const;

  /// Draws max(X_1..X_m) for m iid Laplace(0, scale) in O(1) via
  /// F_max(y) = Cdf(y)^m: sample u ~ U(0,1), return Quantile(u^(1/m)).
  /// This is what makes the Laplace mechanism tractable on graphs with
  /// ~10^5 zero-utility candidates per target (Section 7 experiments):
  /// all candidates sharing one utility value form a block whose noisy
  /// maximum is sampled in constant time.
  double SampleMaxOf(Rng& rng, size_t m) const;

  /// Draws max(X_1..X_m) conditioned on the max being <= ceiling, exactly
  /// and in O(1): F(y|<=c) = (Cdf(y)/Cdf(c))^m, inverted as
  /// Quantile(Cdf(c) · u^(1/m)). This is the peeling step for order
  /// statistics — the j-th largest of a block of iid draws is the
  /// conditional max of the remaining block below the (j-1)-th — used by
  /// the one-shot top-k mechanism's tie groups and zero block.
  /// ceiling = +infinity degenerates to SampleMaxOf.
  double SampleMaxOfBelow(Rng& rng, size_t m, double ceiling) const;

 private:
  double scale_;
};

/// Exponential(rate) sample via inverse CDF.
double SampleExponential(Rng& rng, double rate);

/// Standard Gumbel sample. Adding iid Gumbel(1/eps') noise to scores and
/// taking the argmax is an exact implementation of the exponential
/// mechanism ("Gumbel-max trick"); core/exponential_mechanism.h exploits
/// this for sampling without materializing the full probability vector.
double SampleGumbel(Rng& rng);

/// Geometric(p) on {0,1,2,...}: number of failures before first success.
uint64_t SampleGeometric(Rng& rng, double p);

/// Zipf-like power-law sample on {1..n} with exponent `alpha` > 1, via
/// rejection-inversion (used by the configuration-model generator).
uint64_t SampleZipf(Rng& rng, uint64_t n, double alpha);

}  // namespace privrec

#endif  // PRIVREC_RANDOM_DISTRIBUTIONS_H_
