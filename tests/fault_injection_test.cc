// Deterministic fault injection (serve/fault_injection.h) and the
// degradation ladder it drives. Three layers under test:
//  - the injector's counter-deterministic schedule semantics
//    (period/skip/max_fires, one-consumer-per-rule, Install/Clear);
//  - the graph-layer hooks (journal compaction, snapshot / projection
//    patch failure) forcing the rebuild routes they document;
//  - the service-level contracts: equal seeds + equal plans serve
//    identical sequences, every forced fallback stays byte-identical to
//    the clean service (faults reroute, they never change answers), and
//    the bounded-retry wrapper absorbs transient injected failures
//    budget-neutrally.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gen/fixtures.h"
#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "gtest/gtest.h"
#include "random/rng.h"
#include "serve/fault_injection.h"
#include "serve/recommendation_service.h"
#include "utility/common_neighbors.h"

namespace privrec {
namespace {

TEST(FaultInjectorTest, DisarmedInjectorNeverFires) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  for (FaultPoint point : kAllFaultPoints) {
    EXPECT_FALSE(injector.ShouldFire(point));
  }
  EXPECT_FALSE(injector.ShouldFailServe().has_value());
  EXPECT_EQ(injector.total_fires(), 0u);
  // A plan with nothing enabled must leave the injector disarmed too.
  injector.Install(FaultPlan{});
  EXPECT_FALSE(injector.armed());
}

TEST(FaultInjectorTest, PeriodSkipAndMaxFiresShapeTheSchedule) {
  FaultInjector injector;
  FaultPlan plan;
  plan.Enable(FaultPoint::kRepairFail, /*period=*/3, /*skip=*/2,
              /*max_fires=*/2);
  injector.Install(plan);
  std::vector<int> fired_at;
  for (int eval = 0; eval < 12; ++eval) {
    if (injector.ShouldFire(FaultPoint::kRepairFail)) fired_at.push_back(eval);
  }
  // Evaluations 0-1 pass unharmed (skip), then every 3rd fires until the
  // 2-fire cap silences the rule: exactly {2, 5}.
  EXPECT_EQ(fired_at, (std::vector<int>{2, 5}));
  EXPECT_EQ(injector.fires(FaultPoint::kRepairFail), 2u);
  EXPECT_EQ(injector.total_fires(), 2u);
  EXPECT_EQ(injector.fires(FaultPoint::kShardStall), 0u);
}

TEST(FaultInjectorTest, FailServeRulesOnlyFireAtTheAdmissionHook) {
  FaultInjector injector;
  FaultPlan plan;
  plan.FailServe(FaultPoint::kSnapshotPatchFail);
  injector.Install(plan);
  // The reroute hook must ignore fail_serve rules entirely (no fire, no
  // counter consumption) — each rule has exactly one consumer.
  EXPECT_FALSE(injector.ShouldFire(FaultPoint::kSnapshotPatchFail));
  std::optional<FaultPoint> point = injector.ShouldFailServe();
  ASSERT_TRUE(point.has_value());
  EXPECT_EQ(*point, FaultPoint::kSnapshotPatchFail);
  EXPECT_EQ(injector.fires(FaultPoint::kSnapshotPatchFail), 1u);
  // And vice versa: a reroute rule is invisible to the admission hook.
  FaultPlan reroute;
  reroute.Enable(FaultPoint::kRepairFail);
  injector.Install(reroute);
  EXPECT_FALSE(injector.ShouldFailServe().has_value());
  EXPECT_TRUE(injector.ShouldFire(FaultPoint::kRepairFail));
}

TEST(FaultInjectorTest, InstallResetsCountersAndClearDisarms) {
  FaultInjector injector;
  FaultPlan plan;
  plan.Enable(FaultPoint::kShardStall);
  injector.Install(plan);
  EXPECT_TRUE(injector.ShouldFire(FaultPoint::kShardStall));
  EXPECT_TRUE(injector.ShouldFire(FaultPoint::kShardStall));
  EXPECT_EQ(injector.fires(FaultPoint::kShardStall), 2u);
  EXPECT_EQ(injector.plan(), plan);
  injector.Install(plan);  // reinstall resets the schedule
  EXPECT_EQ(injector.fires(FaultPoint::kShardStall), 0u);
  injector.Clear();
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.ShouldFire(FaultPoint::kShardStall));
  EXPECT_EQ(injector.plan(), FaultPlan{});
}

TEST(FaultInjectorTest, NamesRoundTripForEveryPoint) {
  for (FaultPoint point : kAllFaultPoints) {
    const char* name = FaultPointName(point);
    std::optional<FaultPoint> parsed = FaultPointFromName(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, point) << name;
  }
  EXPECT_FALSE(FaultPointFromName("no_such_fault").has_value());
}

TEST(FaultInjectorTest, EqualPlansDrivenEquallyFireIdentically) {
  // The determinism contract at the injector layer: two injectors with
  // equal plans observing equal call sequences produce identical firing
  // sequences and counters — no clocks, no randomness.
  FaultPlan plan;
  plan.Enable(FaultPoint::kJournalCompaction, /*period=*/3);
  plan.Enable(FaultPoint::kRepairFail, /*period=*/2, /*skip=*/1);
  plan.FailServe(FaultPoint::kShardStall, /*period=*/5);
  FaultInjector a, b;
  a.Install(plan);
  b.Install(plan);
  std::vector<uint64_t> trace_a, trace_b;
  Rng script(99);
  for (int i = 0; i < 200; ++i) {
    switch (script.NextBounded(3)) {
      case 0:
        trace_a.push_back(a.ShouldFire(FaultPoint::kJournalCompaction));
        trace_b.push_back(b.ShouldFire(FaultPoint::kJournalCompaction));
        break;
      case 1:
        trace_a.push_back(a.ShouldFire(FaultPoint::kRepairFail));
        trace_b.push_back(b.ShouldFire(FaultPoint::kRepairFail));
        break;
      default:
        trace_a.push_back(a.ShouldFailServe().has_value());
        trace_b.push_back(b.ShouldFailServe().has_value());
        break;
    }
  }
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(a.total_fires(), b.total_fires());
  for (FaultPoint point : kAllFaultPoints) {
    EXPECT_EQ(a.fires(point), b.fires(point));
  }
}

// --------------------------------------------------------- graph hooks

TEST(GraphFaultPointsTest, SnapshotPatchFailForcesFullRebuild) {
  Rng rng(5);
  auto base = ErdosRenyiGnm(40, 80, /*directed=*/false, rng);
  ASSERT_TRUE(base.ok());
  DynamicGraph graph(*base);
  FaultInjector injector;
  graph.SetFaultInjector(&injector);
  (void)graph.VersionedSnapshot();  // initial build

  // Control: with the injector disarmed a single-edge mutation publishes
  // via the O(Δ) journal splice, not a rebuild.
  ASSERT_TRUE(graph.AddEdge(0, 1).ok() || graph.RemoveEdge(0, 1).ok());
  const uint64_t patches_before = graph.snapshot_patches();
  const uint64_t builds_before = graph.snapshot_builds();
  (void)graph.VersionedSnapshot();
  ASSERT_EQ(graph.snapshot_patches(), patches_before + 1);
  ASSERT_EQ(graph.snapshot_builds(), builds_before);

  FaultPlan plan;
  plan.Enable(FaultPoint::kSnapshotPatchFail);
  injector.Install(plan);
  ASSERT_TRUE(graph.AddEdge(2, 3).ok() || graph.RemoveEdge(2, 3).ok());
  (void)graph.VersionedSnapshot();
  EXPECT_EQ(graph.snapshot_patches(), patches_before + 1);
  EXPECT_EQ(graph.snapshot_builds(), builds_before + 1)
      << "injected splice failure did not route onto the rebuild path";
  EXPECT_EQ(injector.fires(FaultPoint::kSnapshotPatchFail), 1u);
  EXPECT_EQ(injector.graph_fires(), 1u);
}

TEST(GraphFaultPointsTest, JournalCompactionDoomsPinnedWindows) {
  Rng rng(6);
  auto base = ErdosRenyiGnm(40, 80, /*directed=*/false, rng);
  ASSERT_TRUE(base.ok());
  DynamicGraph graph(*base);
  FaultInjector injector;
  graph.SetFaultInjector(&injector);
  const uint64_t pinned_version = graph.version();

  FaultPlan plan;
  plan.Enable(FaultPoint::kJournalCompaction);
  injector.Install(plan);
  ASSERT_TRUE(graph.AddEdge(4, 5).ok() || graph.RemoveEdge(4, 5).ok());
  // The injected compaction advanced the journal floor to the current
  // version: a reader pinned below it can no longer drain its window and
  // must take the full-recompute fallback.
  EXPECT_EQ(graph.journal_floor_version(), graph.version());
  EXPECT_FALSE(graph.EdgeDeltasBetween(pinned_version, graph.version()).ok());
  EXPECT_EQ(injector.fires(FaultPoint::kJournalCompaction), 1u);
}

TEST(GraphFaultPointsTest, ProjectionPatchFailForcesReprojection) {
  Rng rng(7);
  auto base = ErdosRenyiGnm(40, 120, /*directed=*/false, rng);
  ASSERT_TRUE(base.ok());
  DynamicGraph graph(*base);
  FaultInjector injector;
  graph.SetFaultInjector(&injector);
  graph.SetDegreeCap(2);
  (void)graph.VersionedSnapshot();  // initial projection

  // Control: the projected companion follows a single-edge mutation via
  // the O(Δ) projection patch.
  ASSERT_TRUE(graph.AddEdge(0, 1).ok() || graph.RemoveEdge(0, 1).ok());
  const uint64_t ppatches_before = graph.projection_patches();
  const uint64_t pbuilds_before = graph.projection_builds();
  (void)graph.VersionedSnapshot();
  ASSERT_EQ(graph.projection_patches(), ppatches_before + 1);
  ASSERT_EQ(graph.projection_builds(), pbuilds_before);

  FaultPlan plan;
  plan.Enable(FaultPoint::kProjectionPatchFail);
  injector.Install(plan);
  ASSERT_TRUE(graph.AddEdge(2, 3).ok() || graph.RemoveEdge(2, 3).ok());
  (void)graph.VersionedSnapshot();
  EXPECT_EQ(graph.projection_builds(), pbuilds_before + 1)
      << "injected projection-splice failure did not force re-projection";
  EXPECT_EQ(injector.fires(FaultPoint::kProjectionPatchFail), 1u);
}

// ------------------------------------------------------- service layer

ServiceOptions FaultServiceOptions(FaultInjector* injector) {
  ServiceOptions options;
  options.release_epsilon = 0.4;
  options.per_user_budget = 1e6;
  options.cache_capacity = 128;
  options.num_shards = 2;
  options.seed = 0xfa17ULL;
  options.fault_injector = injector;
  return options;
}

/// Drives `service` through a scripted mix of mutations, single serves,
/// and list serves (Rng-less overloads, so the shard streams are the only
/// randomness) and returns the full outcome trace: ok-ness and values of
/// every serve, flattened into one comparable vector.
std::vector<uint64_t> DriveScriptedTraffic(RecommendationService& service,
                                           NodeId num_users, int ops,
                                           uint64_t script_seed) {
  Rng script(script_seed);
  std::vector<uint64_t> trace;
  for (int op = 0; op < ops; ++op) {
    if (script.NextBernoulli(0.3)) {
      const NodeId a = static_cast<NodeId>(script.NextBounded(num_users));
      const NodeId b = static_cast<NodeId>(script.NextBounded(num_users));
      if (a == b) continue;
      const Status mutated = service.AddEdge(a, b).ok()
                                 ? Status::OK()
                                 : service.RemoveEdge(a, b);
      trace.push_back(mutated.ok() ? 1u : 0u);
    } else if (script.NextBernoulli(0.25)) {
      const NodeId user = static_cast<NodeId>(script.NextBounded(num_users));
      auto list = service.ServeList(user, 3);
      trace.push_back(list.ok() ? 1u : 0u);
      if (list.ok()) {
        for (const Recommendation& pick : list->picks) {
          trace.push_back(pick.node);
        }
      }
    } else {
      const NodeId user = static_cast<NodeId>(script.NextBounded(num_users));
      auto rec = service.ServeRecommendation(user);
      trace.push_back(rec.ok() ? 1u : 0u);
      if (rec.ok()) trace.push_back(*rec);
    }
  }
  return trace;
}

TEST(FaultDeterminismTest, EqualSeedsAndPlansServeIdenticalSequences) {
  // Satellite 3's contract: two services with equal seeds and equal
  // installed FaultPlans, driven by equal call sequences, serve identical
  // sequences — fault schedules included (the injectors must agree on
  // every fire).
  Rng gen(21);
  auto base = ErdosRenyiGnm(60, 150, /*directed=*/false, gen);
  ASSERT_TRUE(base.ok());
  FaultPlan plan;
  plan.Enable(FaultPoint::kRepairFail, /*period=*/2);
  plan.Enable(FaultPoint::kJournalCompaction, /*period=*/7);
  plan.Enable(FaultPoint::kSnapshotPatchFail, /*period=*/3);

  std::vector<uint64_t> traces[2];
  uint64_t fires[2];
  for (int run = 0; run < 2; ++run) {
    DynamicGraph graph(*base);
    FaultInjector injector;
    RecommendationService service(&graph,
                                  std::make_unique<CommonNeighborsUtility>(),
                                  FaultServiceOptions(&injector));
    injector.Install(plan);
    traces[run] = DriveScriptedTraffic(service, 60, 250, /*script_seed=*/77);
    fires[run] = injector.total_fires();
    EXPECT_GT(service.stats().injected_faults, 0u);
  }
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(fires[0], fires[1]);
  EXPECT_GT(fires[0], 0u);
}

TEST(FaultDeterminismTest, RerouteFaultsServeByteIdenticalToCleanService) {
  // The capstone differential: every reroute fault forces an EXACT
  // fallback (recompute against the pinned snapshot, from-scratch
  // rebuild), so a fault-riddled service must serve byte-identical
  // outputs to a clean service with the same seeds. Faults change cost
  // and route — never answers.
  Rng gen(22);
  auto base = ErdosRenyiGnm(60, 150, /*directed=*/false, gen);
  ASSERT_TRUE(base.ok());

  DynamicGraph clean_graph(*base);
  RecommendationService clean_service(
      &clean_graph, std::make_unique<CommonNeighborsUtility>(),
      FaultServiceOptions(nullptr));

  DynamicGraph faulty_graph(*base);
  FaultInjector injector;
  RecommendationService faulty_service(
      &faulty_graph, std::make_unique<CommonNeighborsUtility>(),
      FaultServiceOptions(&injector));
  FaultPlan plan;
  plan.Enable(FaultPoint::kRepairFail, /*period=*/2);
  plan.Enable(FaultPoint::kSnapshotPatchFail, /*period=*/3);
  plan.Enable(FaultPoint::kJournalCompaction, /*period=*/10);
  injector.Install(plan);

  const auto clean_trace =
      DriveScriptedTraffic(clean_service, 60, 300, /*script_seed=*/31);
  const auto faulty_trace =
      DriveScriptedTraffic(faulty_service, 60, 300, /*script_seed=*/31);
  EXPECT_EQ(clean_trace, faulty_trace)
      << "a reroute-only fault plan changed served outputs: some fallback "
         "is not exact";
  // The differential only certifies the fallbacks if they actually ran.
  const ServiceStats stats = faulty_service.stats();
  EXPECT_GT(stats.injected_faults, 0u);
  EXPECT_GT(stats.stale_fallback_serves, 0u);
  EXPECT_EQ(clean_service.stats().injected_faults, 0u);
}

TEST(FaultDeterminismTest, JournalCompactionUnderPinnedWindowFallsBackExactly) {
  // Regression pin for the "journal undersized under a pinned window"
  // incident: a cached entry pinned below an injected compaction must
  // land in journal_fallbacks (counted as a forced stale_fallback serve)
  // and still release the exact answer the clean service releases.
  Rng gen(23);
  auto base = ErdosRenyiGnm(50, 120, /*directed=*/false, gen);
  ASSERT_TRUE(base.ok());

  DynamicGraph clean_graph(*base);
  DynamicGraph faulty_graph(*base);
  FaultInjector injector;
  ServiceOptions options = FaultServiceOptions(nullptr);
  options.num_shards = 1;
  RecommendationService clean_service(
      &clean_graph, std::make_unique<CommonNeighborsUtility>(), options);
  options.fault_injector = &injector;
  RecommendationService faulty_service(
      &faulty_graph, std::make_unique<CommonNeighborsUtility>(), options);

  // Warm user 0's cache entry on both sides (pinning its version).
  auto clean_warm = clean_service.ServeRecommendation(0);
  auto faulty_warm = faulty_service.ServeRecommendation(0);
  ASSERT_TRUE(clean_warm.ok());
  ASSERT_TRUE(faulty_warm.ok());
  ASSERT_EQ(*clean_warm, *faulty_warm);

  // Every mutation now compacts the faulty journal to the current
  // version, dooming the pinned entry's window.
  FaultPlan plan;
  plan.Enable(FaultPoint::kJournalCompaction);
  injector.Install(plan);
  for (NodeId v = 10; v < 14; ++v) {
    ASSERT_TRUE(clean_service.AddEdge(0, v).ok() ||
                clean_service.RemoveEdge(0, v).ok());
    ASSERT_TRUE(faulty_service.AddEdge(0, v).ok() ||
                faulty_service.RemoveEdge(0, v).ok());
  }

  auto clean_rec = clean_service.ServeRecommendation(0);
  auto faulty_rec = faulty_service.ServeRecommendation(0);
  ASSERT_TRUE(clean_rec.ok());
  ASSERT_TRUE(faulty_rec.ok());
  EXPECT_EQ(*clean_rec, *faulty_rec)
      << "the journal-fallback recompute released a different answer";
  const ServiceStats stats = faulty_service.stats();
  EXPECT_GT(stats.journal_fallbacks, 0u)
      << "the injected compaction never doomed the pinned window";
  EXPECT_GT(stats.stale_fallback_serves, 0u);
  EXPECT_EQ(clean_service.stats().journal_fallbacks, 0u);
}

TEST(FaultRetryTest, BoundedRetriesAbsorbTransientInjectedFailures) {
  DynamicGraph graph(MakeDirectedAuditFixture());
  FaultInjector injector;
  ServiceOptions options = FaultServiceOptions(&injector);
  options.retry.max_retries = 2;
  options.retry.backoff_micros = 1;
  RecommendationService service(
      &graph, std::make_unique<CommonNeighborsUtility>(), options);

  // One transient failure, then clean: the retry wrapper must absorb it.
  FaultPlan plan;
  plan.FailServe(FaultPoint::kShardStall, /*period=*/1, /*skip=*/0,
                 /*max_fires=*/1);
  injector.Install(plan);
  const double budget_before = service.RemainingBudget(0);
  auto rec = service.ServeRecommendation(0);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.injected_faults, 1u);
  // Exactly one successful release was charged — the refused attempt
  // spent nothing.
  EXPECT_DOUBLE_EQ(service.RemainingBudget(0),
                   budget_before - options.release_epsilon);
}

TEST(FaultRetryTest, ExhaustedRetriesSurfaceUnavailableBudgetNeutrally) {
  DynamicGraph graph(MakeDirectedAuditFixture());
  FaultInjector injector;
  ServiceOptions options = FaultServiceOptions(&injector);
  options.retry.max_retries = 1;
  options.retry.backoff_micros = 1;
  RecommendationService service(
      &graph, std::make_unique<CommonNeighborsUtility>(), options);

  // Unbounded transient failure: retries run out, the serve surfaces
  // kUnavailable, and no budget moves.
  FaultPlan plan;
  plan.FailServe(FaultPoint::kRepairFail);
  injector.Install(plan);
  auto rec = service.ServeRecommendation(0);
  ASSERT_FALSE(rec.ok());
  EXPECT_TRUE(rec.status().IsUnavailable()) << rec.status().ToString();
  EXPECT_DOUBLE_EQ(service.RemainingBudget(0), options.per_user_budget);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.injected_faults, 2u);  // original attempt + one retry
  EXPECT_EQ(stats.served, 0u);
}

TEST(FaultStatsTest, InjectedFaultsFoldServeAndGraphLayerFires) {
  // ServiceStats::injected_faults is the whole-stack counter: per-shard
  // serve-path fires plus the injector's graph-layer fires, folded once
  // by stats().
  Rng gen(29);
  auto base = ErdosRenyiGnm(40, 100, /*directed=*/false, gen);
  ASSERT_TRUE(base.ok());
  DynamicGraph graph(*base);
  FaultInjector injector;
  RecommendationService service(&graph,
                                std::make_unique<CommonNeighborsUtility>(),
                                FaultServiceOptions(&injector));
  FaultPlan plan;
  plan.Enable(FaultPoint::kRepairFail, /*period=*/2);
  plan.Enable(FaultPoint::kJournalCompaction, /*period=*/3);
  injector.Install(plan);
  (void)DriveScriptedTraffic(service, 40, 200, /*script_seed=*/91);
  const ServiceStats stats = service.stats();
  EXPECT_GT(injector.fires(FaultPoint::kJournalCompaction), 0u);
  EXPECT_GT(injector.fires(FaultPoint::kRepairFail), 0u);
  EXPECT_EQ(stats.injected_faults, injector.total_fires());
}

}  // namespace
}  // namespace privrec
