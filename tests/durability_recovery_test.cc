// Crash-safe durability (ctest label `durability`): the WAL'd edge-delta
// journal, the durable privacy-budget ledger, checkpoint + recovery, and
// the DP audit that straddles a crash/recover boundary. The invariants
// under test are the PR's contract:
//  - WAL-first mutations: applied state never runs ahead of durable
//    state; a torn tail is truncated on open, mid-chain damage rejects.
//  - Ledger-before-release: recovered per-user spend >= what the
//    pre-crash service charged (equality when the crash lands outside the
//    append window) — a crash loses utility, never privacy.
//  - Recovery = checkpoint + WAL replay reproduces the graph EXACTLY, so
//    an equal-seed recovered service serves byte-identical picks.
//  - AuditAcrossRecovery certifies eps-hat <= eps across every crash
//    point, and REFUSES when the durable ledger lost a charge.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/checksum.h"
#include "common/logging.h"
#include "core/privacy_accountant.h"
#include "eval/service_auditor.h"
#include "gen/fixtures.h"
#include "gen/generators.h"
#include "gen/neighboring.h"
#include "graph/binary_io.h"
#include "graph/csr_graph.h"
#include "graph/dynamic_graph.h"
#include "gtest/gtest.h"
#include "persist/budget_ledger.h"
#include "persist/checkpoint.h"
#include "persist/wal.h"
#include "random/rng.h"
#include "serve/fault_injection.h"
#include "serve/recommendation_service.h"
#include "utility/common_neighbors.h"

namespace privrec {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  EXPECT_FALSE(ec) << dir;
  return dir;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void TruncateFile(const std::string& path, uint64_t keep_bytes) {
  const std::string bytes = ReadWholeFile(path);
  ASSERT_LT(keep_bytes, bytes.size()) << path;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(keep_bytes));
  out.flush();
  ASSERT_TRUE(out.good()) << path;
}

std::vector<std::string> WalSegments(const std::string& dir) {
  std::vector<std::string> segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() == 28 && name.rfind("wal-", 0) == 0) {
      segments.push_back(entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

// ---------------------------------------------------------------------
// Shared checksum
// ---------------------------------------------------------------------

TEST(ChecksumTest, ChecksumBytesIsDeterministicAndSensitive) {
  const unsigned char a[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const unsigned char b[] = {1, 2, 3, 4, 5, 6, 7, 8, 10};
  EXPECT_EQ(ChecksumBytes(a, sizeof(a)), ChecksumBytes(a, sizeof(a)));
  EXPECT_NE(ChecksumBytes(a, sizeof(a)), ChecksumBytes(b, sizeof(b)));
  // The length is folded in, so a zero-padded prefix is not a collision.
  EXPECT_NE(ChecksumBytes(a, 8), ChecksumBytes(a, 9));
}

TEST(ChecksumTest, FactoredCsrChecksumMatchesThePrvgTrailer) {
  // Satellite 1's compatibility contract: factoring the XOR-fold into
  // common/checksum.h must leave the bytes SaveBinaryGraph writes
  // unchanged, or every existing .prvg file would rot. Round-tripping
  // through the loader (which verifies the trailer) is the proof.
  Rng rng(7);
  auto graph = ErdosRenyiGnm(40, 120, /*directed=*/true, rng);
  ASSERT_TRUE(graph.ok());
  const std::string path = FreshDir("checksum_prvg") + "/g.prvg";
  ASSERT_TRUE(SaveBinaryGraph(*graph, path).ok());
  auto loaded = LoadBinaryGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), graph->num_nodes());
  EXPECT_EQ(loaded->num_arcs(), graph->num_arcs());
}

// ---------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------

TEST(WalTest, AppendsSurviveReopenInOrder) {
  const std::string dir = FreshDir("wal_roundtrip");
  {
    auto wal = WriteAheadLog::Open(dir);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (uint32_t i = 0; i < 10; ++i) {
      auto seq = (*wal)->Append(WalRecordKind::kAddEdge, i, i + 1);
      ASSERT_TRUE(seq.ok());
      EXPECT_EQ(*seq, i + 1u);  // 1-based, consecutive
    }
    EXPECT_EQ((*wal)->durable_seq(), 10u);  // group_commit_records = 1
  }
  auto wal = WriteAheadLog::Open(dir);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->next_seq(), 11u);
  EXPECT_EQ((*wal)->truncated_tail_bytes(), 0u);
  auto records = (*wal)->ReadAfter(0);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 10u);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ((*records)[i], (WalRecord{WalRecordKind::kAddEdge, i, i + 1,
                                        i + 1u}));
  }
  auto suffix = (*wal)->ReadAfter(7);
  ASSERT_TRUE(suffix.ok());
  EXPECT_EQ(suffix->size(), 3u);
}

TEST(WalTest, GroupCommitBuffersUntilSyncOrThreshold) {
  const std::string dir = FreshDir("wal_group_commit");
  WalOptions options;
  options.group_commit_records = 4;
  auto wal = WriteAheadLog::Open(dir, options);
  ASSERT_TRUE(wal.ok());
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE((*wal)->Append(WalRecordKind::kAddEdge, i, i + 1).ok());
  }
  EXPECT_EQ((*wal)->durable_seq(), 0u);  // still buffered
  ASSERT_TRUE((*wal)->Append(WalRecordKind::kAddEdge, 3, 4).ok());
  EXPECT_EQ((*wal)->durable_seq(), 4u);  // threshold flushed
  ASSERT_TRUE((*wal)->Append(WalRecordKind::kRemoveEdge, 0, 1).ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  EXPECT_EQ((*wal)->durable_seq(), 5u);
}

TEST(WalTest, SimulateCrashDropsTheUnflushedBuffer) {
  const std::string dir = FreshDir("wal_crash_buffer");
  WalOptions options;
  options.group_commit_records = 64;
  {
    auto wal = WriteAheadLog::Open(dir, options);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordKind::kAddEdge, 1, 2).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
    ASSERT_TRUE((*wal)->Append(WalRecordKind::kAddEdge, 3, 4).ok());
    (*wal)->SimulateCrash();  // seq 2 was never fsync'd
    EXPECT_TRUE((*wal)->crashed());
    EXPECT_TRUE((*wal)->Append(WalRecordKind::kAddEdge, 5, 6)
                    .status()
                    .IsFailedPrecondition());
  }
  auto wal = WriteAheadLog::Open(dir);
  ASSERT_TRUE(wal.ok());
  auto records = (*wal)->ReadAfter(0);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);  // exactly the durable prefix
  EXPECT_EQ((*records)[0].seq, 1u);
  EXPECT_EQ((*wal)->next_seq(), 2u);
}

TEST(WalTest, TornTailIsTruncatedAndAppendingResumes) {
  const std::string dir = FreshDir("wal_torn_tail");
  {
    auto wal = WriteAheadLog::Open(dir);
    ASSERT_TRUE(wal.ok());
    for (uint32_t i = 0; i < 5; ++i) {
      ASSERT_TRUE((*wal)->Append(WalRecordKind::kAddEdge, i, i + 1).ok());
    }
  }
  const std::vector<std::string> segments = WalSegments(dir);
  ASSERT_EQ(segments.size(), 1u);
  const uint64_t full = 16 + 5 * 32;  // header + 5 records
  ASSERT_EQ(std::filesystem::file_size(segments[0]), full);
  TruncateFile(segments[0], full - 20);  // mid-record tear
  auto wal = WriteAheadLog::Open(dir);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ((*wal)->truncated_tail_bytes(), 12u);
  auto records = (*wal)->ReadAfter(0);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 4u);  // the torn 5th is gone
  // The freed sequence number is reassigned: no gaps, ever.
  auto seq = (*wal)->Append(WalRecordKind::kRemoveEdge, 9, 9);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 5u);
}

TEST(WalTest, MidChainCorruptionRejects) {
  const std::string dir = FreshDir("wal_mid_chain");
  WalOptions options;
  options.segment_max_records = 4;  // force rotation: damage a NON-last file
  {
    auto wal = WriteAheadLog::Open(dir, options);
    ASSERT_TRUE(wal.ok());
    for (uint32_t i = 0; i < 10; ++i) {
      ASSERT_TRUE((*wal)->Append(WalRecordKind::kAddEdge, i, i + 1).ok());
    }
  }
  const std::vector<std::string> segments = WalSegments(dir);
  ASSERT_GE(segments.size(), 2u);
  TruncateFile(segments[0], 16 + 2 * 32 + 7);  // tear inside segment 1 of N
  auto wal = WriteAheadLog::Open(dir, options);
  ASSERT_FALSE(wal.ok());
  EXPECT_TRUE(wal.status().IsIOError()) << wal.status().ToString();
}

TEST(WalTest, RotationAndTruncationBoundTheJournalOnDisk) {
  const std::string dir = FreshDir("wal_rotation");
  WalOptions options;
  options.segment_max_records = 3;
  auto wal = WriteAheadLog::Open(dir, options);
  ASSERT_TRUE(wal.ok());
  for (uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE((*wal)->Append(WalRecordKind::kAddEdge, i, i + 1).ok());
  }
  ASSERT_GE(WalSegments(dir).size(), 3u);
  // A checkpoint at seq 9 drops every fully covered non-active segment.
  ASSERT_TRUE((*wal)->TruncateSegmentsUpTo(9).ok());
  const std::vector<std::string> after = WalSegments(dir);
  ASSERT_EQ(after.size(), 1u);
  auto records = (*wal)->ReadAfter(9);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].seq, 10u);
}

TEST(WalTest, InjectedTornWriteRejectsTheMutationAndRecovers) {
  const std::string dir = FreshDir("wal_injected_tear");
  FaultInjector injector;
  FaultPlan plan;
  plan.Enable(FaultPoint::kWalTornWrite, /*period=*/1, /*skip=*/2,
              /*max_fires=*/1);
  injector.Install(plan);
  WalOptions options;
  options.fault_injector = &injector;
  {
    auto wal = WriteAheadLog::Open(dir, options);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordKind::kAddEdge, 0, 1).ok());
    ASSERT_TRUE((*wal)->Append(WalRecordKind::kAddEdge, 1, 2).ok());
    auto torn = (*wal)->Append(WalRecordKind::kAddEdge, 2, 3);
    ASSERT_FALSE(torn.ok());
    EXPECT_TRUE(torn.status().IsIOError());
    EXPECT_TRUE((*wal)->crashed());
    EXPECT_EQ(injector.fires(FaultPoint::kWalTornWrite), 1u);
    EXPECT_EQ(injector.persist_fires(), 1u);
  }
  // The torn half-record is really on disk; a fresh Open truncates it and
  // the log carries exactly the two acknowledged records.
  auto wal = WriteAheadLog::Open(dir);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_GT((*wal)->truncated_tail_bytes(), 0u);
  auto records = (*wal)->ReadAfter(0);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

// ---------------------------------------------------------------------
// Budget ledger
// ---------------------------------------------------------------------

TEST(BudgetLedgerTest, ChargesSurviveReopenAndCompaction) {
  const std::string dir = FreshDir("ledger_roundtrip");
  {
    auto ledger = BudgetLedger::Open(dir);
    ASSERT_TRUE(ledger.ok()) << ledger.status().ToString();
    ASSERT_TRUE((*ledger)->AppendCharge(7, 0.5).ok());
    ASSERT_TRUE((*ledger)->AppendCharge(7, 0.25).ok());
    ASSERT_TRUE((*ledger)->AppendCharge(42, 1.0).ok());
  }
  {
    auto ledger = BudgetLedger::Open(dir);
    ASSERT_TRUE(ledger.ok());
    auto spent = (*ledger)->SpentByUser();
    ASSERT_EQ(spent.size(), 2u);
    EXPECT_DOUBLE_EQ(spent[7], 0.75);
    EXPECT_DOUBLE_EQ(spent[42], 1.0);
    ASSERT_TRUE((*ledger)->Compact().ok());
    ASSERT_TRUE((*ledger)->AppendCharge(42, 0.5).ok());
  }
  auto ledger = BudgetLedger::Open(dir);
  ASSERT_TRUE(ledger.ok()) << ledger.status().ToString();
  auto spent = (*ledger)->SpentByUser();
  EXPECT_DOUBLE_EQ(spent[7], 0.75);   // via the checkpoint
  EXPECT_DOUBLE_EQ(spent[42], 1.5);   // checkpoint + fresh log record
}

TEST(BudgetLedgerTest, TornLogTailIsTruncatedKeepingTheIntactPrefix) {
  const std::string dir = FreshDir("ledger_torn_tail");
  {
    auto ledger = BudgetLedger::Open(dir);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE((*ledger)->AppendCharge(1, 0.5).ok());
    ASSERT_TRUE((*ledger)->AppendCharge(2, 0.5).ok());
  }
  TruncateFile(dir + "/ledger.log", 16 + 32 + 9);  // tear record 2
  auto ledger = BudgetLedger::Open(dir);
  ASSERT_TRUE(ledger.ok()) << ledger.status().ToString();
  EXPECT_EQ((*ledger)->truncated_tail_bytes(), 9u);
  auto spent = (*ledger)->SpentByUser();
  ASSERT_EQ(spent.size(), 1u);
  EXPECT_DOUBLE_EQ(spent[1], 0.5);
}

TEST(BudgetLedgerTest, InjectedPartialAppendLiesAndLosesTheCharge) {
  const std::string dir = FreshDir("ledger_lying_fsync");
  FaultInjector injector;
  FaultPlan plan;
  plan.Enable(FaultPoint::kLedgerPartialAppend, /*period=*/1, /*skip=*/1,
              /*max_fires=*/1);
  injector.Install(plan);
  LedgerOptions options;
  options.fault_injector = &injector;
  {
    auto ledger = BudgetLedger::Open(dir, options);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE((*ledger)->AppendCharge(1, 0.5).ok());   // durable
    ASSERT_TRUE((*ledger)->AppendCharge(1, 0.5).ok());   // torn, LIES
    ASSERT_TRUE((*ledger)->AppendCharge(1, 0.5).ok());   // swallowed, LIES
    EXPECT_EQ(injector.fires(FaultPoint::kLedgerPartialAppend), 1u);
    // The in-memory view tells the durable truth, not the lie.
    auto spent = (*ledger)->SpentByUser();
    EXPECT_DOUBLE_EQ(spent[1], 0.5);
  }
  auto ledger = BudgetLedger::Open(dir);
  ASSERT_TRUE(ledger.ok()) << ledger.status().ToString();
  EXPECT_GT((*ledger)->truncated_tail_bytes(), 0u);
  auto spent = (*ledger)->SpentByUser();
  // Three charges acknowledged, one recovered: the exact state
  // AuditAcrossRecovery must refuse to certify.
  EXPECT_DOUBLE_EQ(spent[1], 0.5);
}

TEST(BudgetLedgerTest, StaleLogAfterCheckpointRefusesLoudly) {
  // Compact writes the checkpoint then resets the log; a crash that
  // resurrects an OVERLAPPING pre-compaction log must refuse on open
  // (double-counting charges would silently overstate spend — wrong in
  // the other direction).
  const std::string dir = FreshDir("ledger_stale_log");
  {
    auto ledger = BudgetLedger::Open(dir);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE((*ledger)->AppendCharge(1, 0.5).ok());
  }
  const std::string old_log = ReadWholeFile(dir + "/ledger.log");
  {
    auto ledger = BudgetLedger::Open(dir);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE((*ledger)->Compact().ok());
  }
  {  // resurrect the pre-compaction log
    std::ofstream out(dir + "/ledger.log", std::ios::binary | std::ios::trunc);
    out.write(old_log.data(), static_cast<std::streamsize>(old_log.size()));
  }
  auto reopened = BudgetLedger::Open(dir);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsIOError()) << reopened.status().ToString();
}

// ---------------------------------------------------------------------
// Checkpoint + recovery
// ---------------------------------------------------------------------

TEST(RecoveryTest, CheckpointPlusReplayReconstructsTheGraphExactly) {
  const std::string dir = FreshDir("recovery_exact");
  const std::string wal_dir = dir + "/wal";
  auto wal = WriteAheadLog::Open(wal_dir);
  ASSERT_TRUE(wal.ok());
  DynamicGraph graph(MakeDirectedAuditFixture());
  graph.AttachWal(wal->get());
  ASSERT_TRUE(graph.AddEdge(0, 5).ok());
  ASSERT_TRUE(graph.RemoveEdge(0, 5).ok());
  ASSERT_TRUE(graph.AddEdge(1, 5).ok());
  // Checkpoint here; everything after must come from WAL replay.
  ASSERT_TRUE((*wal)->Sync().ok());
  const DynamicGraph::CheckpointView view = graph.AtomicCheckpointView();
  ASSERT_TRUE(WriteCheckpoint(dir, *view.snapshot.graph, view.wal_seq,
                              view.snapshot.version)
                  .ok());
  const NodeId added = graph.AddNode();
  ASSERT_TRUE(graph.AddEdge(added, 0).ok());
  ASSERT_TRUE(graph.AddEdge(2, added).ok());
  ASSERT_TRUE((*wal)->Sync().ok());

  RecoveryReport report;
  auto recovered = RecoverGraph(dir, **wal, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(report.checkpoint_found);
  EXPECT_EQ(report.manifest.wal_seq, view.wal_seq);
  EXPECT_EQ(report.replayed_records, 3u);  // AddNode + 2 edges
  const auto want = graph.VersionedSnapshot();
  const auto got = (*recovered)->VersionedSnapshot();
  ASSERT_EQ(got.graph->num_nodes(), want.graph->num_nodes());
  ASSERT_EQ(got.graph->num_arcs(), want.graph->num_arcs());
  for (NodeId u = 0; u < want.graph->num_nodes(); ++u) {
    for (NodeId v : want.graph->OutNeighbors(u)) {
      EXPECT_TRUE(got.graph->HasEdge(u, v)) << u << "->" << v;
    }
  }
}

TEST(RecoveryTest, NoManifestIsFailedPreconditionNotACrash) {
  const std::string dir = FreshDir("recovery_no_manifest");
  auto manifest = ReadCheckpointManifest(dir);
  ASSERT_FALSE(manifest.ok());
  EXPECT_TRUE(manifest.status().IsFailedPrecondition());
}

TEST(RecoveryTest, InjectedCheckpointCrashLeavesThePreviousOneAuthoritative) {
  const std::string dir = FreshDir("recovery_ckpt_crash");
  auto wal = WriteAheadLog::Open(dir + "/wal");
  ASSERT_TRUE(wal.ok());
  DynamicGraph graph(MakeDirectedAuditFixture());
  graph.AttachWal(wal->get());
  {  // checkpoint 1 commits
    const auto view = graph.AtomicCheckpointView();
    ASSERT_TRUE(WriteCheckpoint(dir, *view.snapshot.graph, view.wal_seq,
                                view.snapshot.version)
                    .ok());
  }
  ASSERT_TRUE(graph.AddEdge(0, 5).ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  FaultInjector injector;
  FaultPlan plan;
  plan.Enable(FaultPoint::kCheckpointCrash);
  injector.Install(plan);
  {  // checkpoint 2 dies before the manifest rename
    const auto view = graph.AtomicCheckpointView();
    const Status crashed = WriteCheckpoint(dir, *view.snapshot.graph,
                                           view.wal_seq,
                                           view.snapshot.version, &injector);
    ASSERT_FALSE(crashed.ok());
    EXPECT_TRUE(crashed.IsIOError());
    EXPECT_EQ(injector.fires(FaultPoint::kCheckpointCrash), 1u);
  }
  auto manifest = ReadCheckpointManifest(dir);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->wal_seq, 0u);  // checkpoint 1, pre-mutation
  RecoveryReport report;
  auto recovered = RecoverGraph(dir, **wal, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(report.replayed_records, 1u);  // the longer suffix replays
  EXPECT_TRUE(
      (*recovered)->VersionedSnapshot().graph->HasEdge(0, 5));
}

// ---------------------------------------------------------------------
// Crash/recover differential through the full service
// ---------------------------------------------------------------------

ServiceOptions DurableServiceOptions(WriteAheadLog* wal, BudgetLedger* ledger,
                                     FaultInjector* injector = nullptr) {
  ServiceOptions options;
  options.release_epsilon = 0.5;
  options.per_user_budget = 5.0;
  options.num_shards = 2;
  options.seed = 0xd0b5eedULL;
  options.wal = wal;
  options.budget_ledger = ledger;
  options.fault_injector = injector;
  return options;
}

TEST(CrashRecoverDifferentialTest, RecoveredServiceServesByteIdenticalPicks) {
  const std::string dir = FreshDir("crash_differential");
  auto wal = WriteAheadLog::Open(dir + "/wal");
  ASSERT_TRUE(wal.ok());
  auto ledger = BudgetLedger::Open(dir + "/ledger");
  ASSERT_TRUE(ledger.ok());
  auto graph = std::make_unique<DynamicGraph>(MakeDirectedAuditFixture());
  auto service = std::make_unique<RecommendationService>(
      graph.get(), std::make_unique<CommonNeighborsUtility>(),
      DurableServiceOptions(wal->get(), ledger->get()));
  // The uncrashed mirror rides an identical, never-crashed graph.
  DynamicGraph mirror(MakeDirectedAuditFixture());
  auto apply_both = [&](auto&& fn) {
    const Status a = fn(*service);
    struct MirrorShim {
      DynamicGraph& g;
      Status AddEdge(NodeId u, NodeId v) { return g.AddEdge(u, v); }
      Status RemoveEdge(NodeId u, NodeId v) { return g.RemoveEdge(u, v); }
    } shim{mirror};
    const Status b = fn(shim);
    ASSERT_EQ(a.ok(), b.ok());
  };
  apply_both([](auto& s) { return s.AddEdge(0, 5); });
  ASSERT_TRUE(service->SaveCheckpoint(dir).ok());
  apply_both([](auto& s) { return s.RemoveEdge(0, 5); });
  apply_both([](auto& s) { return s.AddEdge(1, 5); });
  apply_both([](auto& s) { return s.AddEdge(3, 0); });
  // Charged traffic: target 0 spends 2 x 0.5 before the crash, durably.
  Rng serve_rng(99);
  ASSERT_TRUE(service->ServeRecommendation(0, serve_rng).ok());
  ASSERT_TRUE(service->ServeRecommendation(0, serve_rng).ok());
  const double charged = 5.0 - service->RemainingBudget(0);
  EXPECT_DOUBLE_EQ(charged, 1.0);

  // Crash: WAL + ledger die mid-flight, every in-memory structure goes.
  (*wal)->SimulateCrash();
  (*ledger)->SimulateCrash();
  service.reset();
  graph.reset();
  wal->reset();
  ledger->reset();

  auto wal2 = WriteAheadLog::Open(dir + "/wal");
  ASSERT_TRUE(wal2.ok());
  RecoveryReport report;
  auto recovered = RecoverGraph(dir, **wal2, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GT(report.replayed_records, 0u);
  auto ledger2 = BudgetLedger::Open(dir + "/ledger");
  ASSERT_TRUE(ledger2.ok());
  auto recovered_service = std::make_unique<RecommendationService>(
      recovered->get(), std::make_unique<CommonNeighborsUtility>(),
      DurableServiceOptions(wal2->get(), ledger2->get()));
  const auto spent = (*ledger2)->SpentByUser();
  recovered_service->ImportSpentBudgets(spent);

  // Budget continuity: the crash landed OUTSIDE the ledger append window,
  // so recovered spend equals charged spend exactly; in general the
  // contract is recovered >= charged.
  auto it = spent.find(0);
  ASSERT_NE(it, spent.end());
  EXPECT_DOUBLE_EQ(it->second, charged);
  EXPECT_GE(it->second + 1e-12, charged);
  EXPECT_DOUBLE_EQ(recovered_service->RemainingBudget(0), 5.0 - charged);

  // Graph equality: every edge agrees with the uncrashed mirror.
  const auto got = (*recovered)->VersionedSnapshot();
  const auto want = mirror.VersionedSnapshot();
  ASSERT_EQ(got.graph->num_nodes(), want.graph->num_nodes());
  ASSERT_EQ(got.graph->num_arcs(), want.graph->num_arcs());

  // Byte-identical serving: a fresh equal-seed service on the mirror and
  // the recovered service draw identical picks from identical Rngs —
  // recovery is exact, so the mechanism sees identical utilities.
  RecommendationService mirror_service(
      &mirror, std::make_unique<CommonNeighborsUtility>(),
      DurableServiceOptions(nullptr, nullptr));
  for (NodeId target : {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}}) {
    Rng rng_a(1234 + target);
    Rng rng_b(1234 + target);
    auto a = recovered_service->ServeForAudit(target, rng_a);
    auto b = mirror_service.ServeForAudit(target, rng_b);
    ASSERT_EQ(a.ok(), b.ok()) << "target " << target;
    if (a.ok()) EXPECT_EQ(*a, *b) << "target " << target;
  }
}

TEST(CrashRecoverDifferentialTest, TornWalWriteNeverLetsAppliedStateRunAhead) {
  // Killed at the wal_torn_write crash point: the mutation that tore is
  // rejected in memory too, so the recovered graph equals the pre-crash
  // in-memory graph — applied state never ran ahead of durable state.
  const std::string dir = FreshDir("crash_torn_wal");
  FaultInjector injector;
  FaultPlan plan;
  plan.Enable(FaultPoint::kWalTornWrite, /*period=*/1, /*skip=*/2,
              /*max_fires=*/1);
  injector.Install(plan);
  WalOptions wal_options;
  wal_options.fault_injector = &injector;
  auto wal = WriteAheadLog::Open(dir + "/wal", wal_options);
  ASSERT_TRUE(wal.ok());
  auto graph = std::make_unique<DynamicGraph>(MakeDirectedAuditFixture());
  graph->AttachWal(wal->get());
  {
    const auto view = graph->AtomicCheckpointView();
    ASSERT_TRUE(WriteCheckpoint(dir, *view.snapshot.graph, view.wal_seq,
                                view.snapshot.version)
                    .ok());
  }
  ASSERT_TRUE(graph->AddEdge(0, 5).ok());
  ASSERT_TRUE(graph->AddEdge(1, 5).ok());
  const Status torn = graph->AddEdge(2, 5);  // tears, rejected
  ASSERT_FALSE(torn.ok());
  const bool applied_after_tear =
      graph->VersionedSnapshot().graph->HasEdge(2, 5);
  EXPECT_FALSE(applied_after_tear);
  graph.reset();
  wal->reset();

  auto wal2 = WriteAheadLog::Open(dir + "/wal");
  ASSERT_TRUE(wal2.ok());
  EXPECT_GT((*wal2)->truncated_tail_bytes(), 0u);
  auto recovered = RecoverGraph(dir, **wal2);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const auto snap = (*recovered)->VersionedSnapshot();
  EXPECT_TRUE(snap.graph->HasEdge(0, 5));
  EXPECT_TRUE(snap.graph->HasEdge(1, 5));
  EXPECT_FALSE(snap.graph->HasEdge(2, 5));
}

TEST(CrashRecoverDifferentialTest, RestoreSpentIsMonotoneAndConservative) {
  PrivacyAccountant accountant(1.0);
  ASSERT_TRUE(accountant.Charge(0.25, "pre").ok());
  accountant.RestoreSpent(0.1, "lower: no-op");
  EXPECT_DOUBLE_EQ(accountant.spent(), 0.25);
  accountant.RestoreSpent(0.75, "recovered");
  EXPECT_DOUBLE_EQ(accountant.spent(), 0.75);
  // Over-budget restore: the accountant refuses everything from here on —
  // the conservative posture when the durable ledger out-says the cap.
  accountant.RestoreSpent(1.5, "over-recovered");
  EXPECT_DOUBLE_EQ(accountant.spent(), 1.5);
  EXPECT_LT(accountant.remaining(), 0.0);
  EXPECT_FALSE(accountant.CanCharge(0.01));
  EXPECT_TRUE(IsBudgetExhausted(accountant.Charge(0.01, "post")));
}

// ---------------------------------------------------------------------
// DP audited ACROSS recovery
// ---------------------------------------------------------------------

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PRIVREC_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PRIVREC_TEST_SANITIZED 1
#endif
#endif
#ifndef PRIVREC_TEST_SANITIZED
#define PRIVREC_TEST_SANITIZED 0
#endif

NeighboringPair RecoveryFixturePair() {
  CsrGraph g = MakeDirectedAuditFixture();
  auto pair = MakeEdgeTogglePair(g, /*target=*/0, 2, 4);
  PRIVREC_CHECK_OK(pair.status());
  return *pair;
}

ServiceAuditOptions RecoveryAuditorOptions() {
  ServiceAuditOptions options;
  options.release_epsilon = 0.8;
  options.trials_per_side = PRIVREC_TEST_SANITIZED ? 300 : 1000;
  options.confidence = 0.99;
  options.seed = 20260808;
  return options;
}

TEST(AuditAcrossRecoveryTest, HonestServiceStaysCertifiedAcrossACleanCrash) {
  ServiceAuditor auditor(
      [] { return std::make_unique<CommonNeighborsUtility>(); },
      RecoveryAuditorOptions());
  RecoveryAuditOptions recovery;
  recovery.state_dir = FreshDir("audit_recovery_clean");
  ServiceStats stats;
  auto audit = auditor.AuditAcrossRecovery(RecoveryFixturePair(),
                                           /*target=*/0, recovery, &stats);
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  ASSERT_EQ(audit->per_path.size(), 1u);
  const PathEpsilonEstimate& estimate = audit->per_path[0];
  EXPECT_EQ(estimate.path, "across_recovery");
  EXPECT_LE(estimate.epsilon_lower_bound,
            RecoveryAuditorOptions().release_epsilon)
      << "a clean crash/recover boundary leaked";
  EXPECT_GT(stats.ledger_appends, 0u)
      << "charged pre-crash traffic never reached the durable ledger";
}

TEST(AuditAcrossRecoveryTest, StaysCertifiedOnRecoverableCrashPoints) {
  // wal_torn_write and checkpoint_crash are the RECOVERABLE crash points:
  // recovery reconstructs exact state, so the audit must complete and
  // certify. (ledger_partial_append is the unrecoverable one — next
  // test.)
  struct CrashCase {
    const char* name;
    FaultPoint point;
    uint64_t skip;  // WAL appends fire per mutation; checkpoints once per save
  };
  const CrashCase cases[] = {
      {"wal_torn_write", FaultPoint::kWalTornWrite, 4},
      {"checkpoint_crash", FaultPoint::kCheckpointCrash, 0},
  };
  for (const CrashCase& crash_case : cases) {
    ServiceAuditor auditor(
        [] { return std::make_unique<CommonNeighborsUtility>(); },
        RecoveryAuditorOptions());
    RecoveryAuditOptions recovery;
    recovery.state_dir =
        FreshDir(std::string("audit_recovery_") + crash_case.name);
    recovery.plan.Enable(crash_case.point, /*period=*/1, crash_case.skip,
                         /*max_fires=*/1);
    ServiceStats stats;
    auto audit = auditor.AuditAcrossRecovery(RecoveryFixturePair(),
                                             /*target=*/0, recovery, &stats);
    ASSERT_TRUE(audit.ok())
        << crash_case.name << ": " << audit.status().ToString();
    EXPECT_LE(audit->per_path[0].epsilon_lower_bound,
              RecoveryAuditorOptions().release_epsilon)
        << crash_case.name;
    EXPECT_GT(stats.injected_faults, 0u)
        << crash_case.name << ": the crash point never fired";
  }
}

TEST(AuditAcrossRecoveryTest, RefusesWhenTheLedgerLostACharge) {
  // The crashed-never-leaky gate: a lying-fsync ledger tear means the
  // recovered spend undercounts what the pre-crash service charged. The
  // audit must REFUSE (FailedPrecondition), not certify around it.
  ServiceAuditor auditor(
      [] { return std::make_unique<CommonNeighborsUtility>(); },
      RecoveryAuditorOptions());
  RecoveryAuditOptions recovery;
  recovery.state_dir = FreshDir("audit_recovery_ledger_tear");
  recovery.plan.Enable(FaultPoint::kLedgerPartialAppend, /*period=*/1,
                       /*skip=*/1, /*max_fires=*/1);
  recovery.charged_serves_per_side = 4;
  auto audit = auditor.AuditAcrossRecovery(RecoveryFixturePair(),
                                           /*target=*/0, recovery);
  ASSERT_FALSE(audit.ok());
  EXPECT_TRUE(audit.status().IsFailedPrecondition())
      << audit.status().ToString();
  EXPECT_NE(audit.status().message().find("refusing to certify"),
            std::string::npos)
      << audit.status().ToString();
}

TEST(AuditAcrossRecoveryTest, FixedSeedReproducesTheRecoveryAudit) {
  ServiceAuditOptions options = RecoveryAuditorOptions();
  options.trials_per_side = 300;
  ServiceAuditor auditor(
      [] { return std::make_unique<CommonNeighborsUtility>(); }, options);
  RecoveryAuditOptions recovery;
  recovery.state_dir = FreshDir("audit_recovery_repro");
  recovery.plan.Enable(FaultPoint::kCheckpointCrash, /*period=*/1,
                       /*skip=*/0, /*max_fires=*/1);
  auto first = auditor.AuditAcrossRecovery(RecoveryFixturePair(), 0, recovery);
  auto second = auditor.AuditAcrossRecovery(RecoveryFixturePair(), 0,
                                            recovery);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_DOUBLE_EQ(first->per_path[0].epsilon_hat,
                   second->per_path[0].epsilon_hat);
  EXPECT_DOUBLE_EQ(first->per_path[0].epsilon_lower_bound,
                   second->per_path[0].epsilon_lower_bound);
}

TEST(AuditAcrossRecoveryTest, ListShapeIsRejectedExplicitly) {
  ServiceAuditOptions options = RecoveryAuditorOptions();
  options.shape = ServeAuditShape::kList;
  ServiceAuditor auditor(
      [] { return std::make_unique<CommonNeighborsUtility>(); }, options);
  RecoveryAuditOptions recovery;
  recovery.state_dir = FreshDir("audit_recovery_list");
  auto audit = auditor.AuditAcrossRecovery(RecoveryFixturePair(), 0, recovery);
  ASSERT_FALSE(audit.ok());
  EXPECT_TRUE(audit.status().IsInvalidArgument());
}

}  // namespace
}  // namespace privrec
