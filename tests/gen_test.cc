#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "gen/datasets.h"
#include "gen/fixtures.h"
#include "gen/generators.h"
#include "gen/neighboring.h"
#include "graph/degree_stats.h"
#include "gtest/gtest.h"
#include "random/rng.h"
#include "utility/common_neighbors.h"

namespace privrec {
namespace {

// ------------------------------------------------------------- Erdős–Rényi

TEST(ErdosRenyiTest, GnmProducesExactEdgeCount) {
  Rng rng(1);
  auto g = ErdosRenyiGnm(100, 500, /*directed=*/false, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 100u);
  EXPECT_EQ(g->num_edges(), 500u);
  EXPECT_FALSE(g->directed());
}

TEST(ErdosRenyiTest, GnmDirected) {
  Rng rng(2);
  auto g = ErdosRenyiGnm(50, 300, /*directed=*/true, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_arcs(), 300u);
  EXPECT_TRUE(g->directed());
}

TEST(ErdosRenyiTest, GnmRejectsImpossibleEdgeCount) {
  Rng rng(3);
  EXPECT_FALSE(ErdosRenyiGnm(10, 100, /*directed=*/false, rng).ok());
  EXPECT_FALSE(ErdosRenyiGnm(1, 1, false, rng).ok());
}

TEST(ErdosRenyiTest, GnmDeterministicInSeed) {
  Rng a(7), b(7);
  auto ga = ErdosRenyiGnm(60, 200, false, a);
  auto gb = ErdosRenyiGnm(60, 200, false, b);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  EXPECT_TRUE(ga->Equals(*gb));
}

TEST(ErdosRenyiTest, GnpEdgeCountNearExpectation) {
  Rng rng(5);
  const NodeId n = 400;
  const double p = 0.05;
  auto g = ErdosRenyiGnp(n, p, /*directed=*/false, rng);
  ASSERT_TRUE(g.ok());
  const double expected = p * n * (n - 1) / 2;
  EXPECT_NEAR(static_cast<double>(g->num_edges()), expected,
              5 * std::sqrt(expected));
}

TEST(ErdosRenyiTest, GnpZeroProbabilityIsEmpty) {
  Rng rng(6);
  auto g = ErdosRenyiGnp(50, 0.0, false, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(ErdosRenyiTest, GnpValidation) {
  Rng rng(6);
  EXPECT_FALSE(ErdosRenyiGnp(50, -0.1, false, rng).ok());
  EXPECT_FALSE(ErdosRenyiGnp(50, 1.1, false, rng).ok());
  EXPECT_FALSE(ErdosRenyiGnp(1, 0.5, false, rng).ok());
}

TEST(ErdosRenyiTest, GnpDirectedHasAsymmetricArcs) {
  Rng rng(8);
  auto g = ErdosRenyiGnp(100, 0.05, /*directed=*/true, rng);
  ASSERT_TRUE(g.ok());
  // With ~500 arcs, the chance all are symmetric is nil.
  bool any_asymmetric = false;
  for (NodeId u = 0; u < g->num_nodes() && !any_asymmetric; ++u) {
    for (NodeId v : g->OutNeighbors(u)) {
      if (!g->HasEdge(v, u)) {
        any_asymmetric = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_asymmetric);
}

// --------------------------------------------------------- Barabási–Albert

TEST(BarabasiAlbertTest, EdgeCountMatchesFormula) {
  Rng rng(11);
  const NodeId n = 500;
  const uint32_t m = 3;
  auto g = BarabasiAlbert(n, m, rng);
  ASSERT_TRUE(g.ok());
  // Seed clique: C(m+1, 2) edges; each of the n-m-1 newcomers adds m.
  const uint64_t expected = m * (m + 1) / 2 + (n - m - 1) * m;
  EXPECT_EQ(g->num_edges(), expected);
}

TEST(BarabasiAlbertTest, ProducesHeavyTail) {
  Rng rng(13);
  auto g = BarabasiAlbert(2000, 2, rng);
  ASSERT_TRUE(g.ok());
  DegreeStats stats = ComputeDegreeStats(*g);
  // Preferential attachment: max degree far above the mean.
  EXPECT_GT(stats.max, 10 * stats.mean);
  EXPECT_GE(stats.min, 2u);
}

TEST(BarabasiAlbertTest, Validation) {
  Rng rng(17);
  EXPECT_FALSE(BarabasiAlbert(5, 0, rng).ok());
  EXPECT_FALSE(BarabasiAlbert(3, 3, rng).ok());
}

// ----------------------------------------------------------- Watts–Strogatz

TEST(WattsStrogatzTest, ZeroBetaIsRingLattice) {
  Rng rng(19);
  auto g = WattsStrogatz(20, 2, 0.0, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 40u);  // n*k
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(0, 2));
  EXPECT_TRUE(g->HasEdge(0, 19));
}

TEST(WattsStrogatzTest, RewiringPreservesEdgeCount) {
  Rng rng(23);
  auto g = WattsStrogatz(100, 3, 0.3, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 300u);
}

TEST(WattsStrogatzTest, Validation) {
  Rng rng(29);
  EXPECT_FALSE(WattsStrogatz(10, 0, 0.1, rng).ok());
  EXPECT_FALSE(WattsStrogatz(10, 5, 0.1, rng).ok());
  EXPECT_FALSE(WattsStrogatz(10, 2, 1.5, rng).ok());
}

// ------------------------------------------------------ Configuration model

TEST(ConfigurationModelTest, RealizesDegreesApproximately) {
  Rng rng(31);
  std::vector<uint32_t> degrees(100, 4);
  auto g = ConfigurationModel(degrees, rng);
  ASSERT_TRUE(g.ok());
  // Erased model: some edges lost to dedup/self-loops, but most survive.
  EXPECT_GT(g->num_edges(), 180u);
  EXPECT_LE(g->num_edges(), 200u);
}

TEST(ConfigurationModelTest, OddDegreeSumRejected) {
  Rng rng(37);
  EXPECT_FALSE(ConfigurationModel({3, 2, 2}, rng).ok());
}

// ----------------------------------------------------------------- ChungLu

TEST(ChungLuTest, ExactEdgeCountUndirected) {
  Rng rng(41);
  auto weights = PowerLawWeights(500, 2.2);
  auto g = ChungLu(weights, weights, 2000, /*directed=*/false, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2000u);
}

TEST(ChungLuTest, HeavyHeadGetsHighDegree) {
  Rng rng(43);
  auto weights = PowerLawWeights(1000, 2.0);
  auto g = ChungLu(weights, weights, 5000, /*directed=*/false, rng);
  ASSERT_TRUE(g.ok());
  // Node 0 carries the largest weight; its degree should dwarf the median.
  DegreeStats stats = ComputeDegreeStats(*g);
  EXPECT_GT(g->OutDegree(0), 10 * static_cast<uint32_t>(stats.median));
}

TEST(ChungLuTest, Validation) {
  Rng rng(47);
  EXPECT_FALSE(ChungLu({1.0}, {1.0}, 1, false, rng).ok());
  EXPECT_FALSE(ChungLu({1.0, 1.0}, {1.0}, 1, false, rng).ok());
  EXPECT_FALSE(ChungLu({1.0, 1.0}, {1.0, 1.0}, 100, false, rng).ok());
}

// -------------------------------------------------------------------- RMAT

TEST(RmatTest, ProducesRequestedEdges) {
  Rng rng(53);
  auto g = Rmat(10, 4000, 0.57, 0.19, 0.19, /*directed=*/true, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 1024u);
  EXPECT_EQ(g->num_arcs(), 4000u);
}

TEST(RmatTest, SkewedQuadrantsYieldSkewedDegrees) {
  Rng rng(59);
  auto g = Rmat(12, 20000, 0.57, 0.19, 0.19, true, rng);
  ASSERT_TRUE(g.ok());
  DegreeStats stats = ComputeDegreeStats(*g);
  EXPECT_GT(stats.max, 8 * stats.mean);
}

TEST(RmatTest, Validation) {
  Rng rng(61);
  EXPECT_FALSE(Rmat(0, 10, 0.5, 0.2, 0.2, true, rng).ok());
  EXPECT_FALSE(Rmat(5, 10, 0.6, 0.3, 0.3, true, rng).ok());  // sums > 1
}

// ------------------------------------------------------------ PowerLaw

TEST(PowerLawWeightsTest, DecreasingAndPositive) {
  auto w = PowerLawWeights(100, 2.2);
  ASSERT_EQ(w.size(), 100u);
  for (size_t i = 1; i < w.size(); ++i) {
    EXPECT_GT(w[i], 0.0);
    EXPECT_LE(w[i], w[i - 1]);
  }
}

// ---------------------------------------------------------------- Datasets

TEST(DatasetsTest, WikiVoteLikeMatchesSpec) {
  auto g = MakeWikiVoteLike(7);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), WikiVoteSpec::kNodes);
  EXPECT_EQ(g->num_edges(), WikiVoteSpec::kEdges);
  EXPECT_FALSE(g->directed());
  DegreeStats stats = ComputeDegreeStats(*g);
  // Heavy tail: max degree within a factor of ~3 of wiki-Vote's 1065 and
  // far above the mean (~28).
  EXPECT_GT(stats.max, 300u);
  EXPECT_LT(stats.max, 4000u);
  EXPECT_NEAR(stats.mean, 28.3, 2.0);
}

TEST(DatasetsTest, WikiVoteLikeDeterministic) {
  auto a = MakeWikiVoteLike(7);
  auto b = MakeWikiVoteLike(7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->Equals(*b));
  auto c = MakeWikiVoteLike(8);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(a->Equals(*c));
}

TEST(DatasetsTest, TwitterLikeMatchesSpec) {
  auto g = MakeTwitterLike(7);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), TwitterSpec::kNodes);
  EXPECT_EQ(g->num_arcs(), TwitterSpec::kEdges);
  EXPECT_TRUE(g->directed());
  DegreeStats stats = ComputeDegreeStats(*g);
  // The pinned hub should reach the same order as the paper's d_max.
  EXPECT_GT(stats.max, TwitterSpec::kMaxDegree / 3);
  EXPECT_LT(stats.max, TwitterSpec::kMaxDegree * 3);
  // Most nodes have tiny out-degree (the regime of the paper's Fig 1(b)).
  EXPECT_GT(stats.fraction_below_log_n, 0.5);
}

TEST(DatasetsTest, LoadOrSynthesizeFallsBackWhenMissing) {
  auto g = LoadOrSynthesizeWikiVote("/no/such/wiki-Vote.txt", 3);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), WikiVoteSpec::kNodes);
}

// ------------------------------------------------- neighboring-pair gen

TEST(NeighboringPairTest, EdgeToggleAddsAbsentAndRemovesPresent) {
  CsrGraph g = MakeTwoTriangleFixture();
  auto removed = MakeEdgeTogglePair(g, /*target=*/0, 1, 3);  // present
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed->kind, NeighboringPair::Kind::kEdgeRemoved);
  EXPECT_TRUE(removed->base.HasEdge(1, 3));
  EXPECT_FALSE(removed->neighbor.HasEdge(1, 3));
  EXPECT_EQ(removed->neighbor.num_edges(), g.num_edges() - 1);

  auto added = MakeEdgeTogglePair(g, 0, 3, 5);  // absent
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(added->kind, NeighboringPair::Kind::kEdgeAdded);
  EXPECT_TRUE(added->neighbor.HasEdge(3, 5));
  EXPECT_EQ(added->neighbor.num_edges(), g.num_edges() + 1);
  EXPECT_EQ(added->ToString(), "edge_added(3,5)");
}

TEST(NeighboringPairTest, EdgeToggleRejectsTargetIncidentAndInvalid) {
  CsrGraph g = MakeTwoTriangleFixture();
  EXPECT_TRUE(MakeEdgeTogglePair(g, 0, 0, 3).status().IsInvalidArgument());
  EXPECT_TRUE(MakeEdgeTogglePair(g, 0, 3, 0).status().IsInvalidArgument());
  EXPECT_TRUE(MakeEdgeTogglePair(g, 0, 3, 3).status().IsInvalidArgument());
  EXPECT_TRUE(MakeEdgeTogglePair(g, 0, 3, 99).status().IsInvalidArgument());
}

TEST(NeighboringPairTest, SampledTogglesAreDistinctAndTargetFree) {
  Rng rng(5);
  auto g = ErdosRenyiGnm(12, 20, /*directed=*/false, rng);
  ASSERT_TRUE(g.ok());
  auto pairs = SampleEdgeTogglePairs(*g, /*target=*/3, 15, rng);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 15u);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const NeighboringPair& pair : *pairs) {
    EXPECT_NE(pair.u, 3u);
    EXPECT_NE(pair.v, 3u);
    const auto key = std::minmax(pair.u, pair.v);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second)
        << "duplicate toggle " << pair.ToString();
    // Each pair differs from the base in exactly one edge.
    const uint64_t diff = pair.kind == NeighboringPair::Kind::kEdgeAdded
                              ? pair.neighbor.num_edges() - pair.base.num_edges()
                              : pair.base.num_edges() - pair.neighbor.num_edges();
    EXPECT_EQ(diff, 1u);
  }
  // Exhaustion: more pairs than exist on a tiny graph returns all of them.
  CsrGraph small = MakeTwoTriangleFixture();  // 6 nodes: C(5,2) = 10 pairs
  Rng rng2(6);
  auto all = SampleEdgeTogglePairs(small, 0, 1000, rng2);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 10u);
}

TEST(NeighboringPairTest, NodeRewiringPreservesTargetAdjacency) {
  Rng rng(9);
  auto g = ErdosRenyiGnm(14, 30, /*directed=*/false, rng);
  ASSERT_TRUE(g.ok());
  for (NodeId node : {1u, 5u, 9u}) {
    auto pair = MakeNodeRewiringPair(*g, /*target=*/0, node, rng);
    ASSERT_TRUE(pair.ok());
    EXPECT_EQ(pair->kind, NeighboringPair::Kind::kNodeRewired);
    EXPECT_EQ(pair->u, node);
    // The target's neighborhood — hence the audited candidate set — is
    // identical on both sides, including any target-node edge.
    ASSERT_EQ(pair->base.OutDegree(0), pair->neighbor.OutDegree(0));
    auto base_n = pair->base.OutNeighbors(0);
    auto nb_n = pair->neighbor.OutNeighbors(0);
    for (size_t i = 0; i < base_n.size(); ++i) {
      EXPECT_EQ(base_n[i], nb_n[i]);
    }
  }
  EXPECT_TRUE(MakeNodeRewiringPair(*g, 0, 0, rng).status().IsInvalidArgument());
}

// ----------------------------------------------------- audit fixtures

double UtilityOf(const UtilityVector& u, NodeId node) {
  for (const UtilityEntry& entry : u.nonzero()) {
    if (entry.node == node) return entry.utility;
  }
  return 0.0;
}

TEST(FixturesTest, DirectedAuditFixtureHasHandCheckableUtilities) {
  CsrGraph g = MakeDirectedAuditFixture();
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(g.num_nodes(), 6u);
  CommonNeighborsUtility cn;
  UtilityVector u = cn.Compute(g, 0);
  EXPECT_EQ(u.num_candidates(), 3u);  // {3, 4, 5}
  EXPECT_DOUBLE_EQ(UtilityOf(u, 3), 2.0);
  EXPECT_DOUBLE_EQ(UtilityOf(u, 4), 1.0);
  EXPECT_DOUBLE_EQ(UtilityOf(u, 5), 0.0);
  EXPECT_DOUBLE_EQ(cn.SensitivityBound(g), 1.0);  // directed CN
}

TEST(FixturesTest, PeopleProductFixtureIsBipartiteInPurchases) {
  CsrGraph g = MakePeopleProductFixture();
  EXPECT_EQ(g.num_nodes(), 7u);
  NodeId boundary = kPeopleProductBoundary;
  // Every edge is either a friendship (both people) or a purchase
  // (person-product): no product-product edges exist.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      EXPECT_FALSE(u >= boundary && v >= boundary)
          << "product-product edge " << u << "-" << v;
    }
  }
  EXPECT_TRUE(IsPersonProductEdge(1, 4, &boundary));
  EXPECT_TRUE(IsPersonProductEdge(4, 1, &boundary));
  EXPECT_FALSE(IsPersonProductEdge(0, 1, &boundary));
  EXPECT_FALSE(IsPersonProductEdge(4, 5, &boundary));
  // Hand-checked CN utilities for target 0 (friends {1, 2}).
  CommonNeighborsUtility cn;
  UtilityVector u = cn.Compute(g, 0);
  EXPECT_DOUBLE_EQ(UtilityOf(u, 4), 2.0);
  EXPECT_DOUBLE_EQ(UtilityOf(u, 5), 1.0);
  EXPECT_DOUBLE_EQ(UtilityOf(u, 6), 1.0);
  EXPECT_DOUBLE_EQ(UtilityOf(u, 3), 0.0);
}

}  // namespace
}  // namespace privrec
