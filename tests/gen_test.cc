#include <cmath>

#include "gen/datasets.h"
#include "gen/generators.h"
#include "graph/degree_stats.h"
#include "gtest/gtest.h"
#include "random/rng.h"

namespace privrec {
namespace {

// ------------------------------------------------------------- Erdős–Rényi

TEST(ErdosRenyiTest, GnmProducesExactEdgeCount) {
  Rng rng(1);
  auto g = ErdosRenyiGnm(100, 500, /*directed=*/false, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 100u);
  EXPECT_EQ(g->num_edges(), 500u);
  EXPECT_FALSE(g->directed());
}

TEST(ErdosRenyiTest, GnmDirected) {
  Rng rng(2);
  auto g = ErdosRenyiGnm(50, 300, /*directed=*/true, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_arcs(), 300u);
  EXPECT_TRUE(g->directed());
}

TEST(ErdosRenyiTest, GnmRejectsImpossibleEdgeCount) {
  Rng rng(3);
  EXPECT_FALSE(ErdosRenyiGnm(10, 100, /*directed=*/false, rng).ok());
  EXPECT_FALSE(ErdosRenyiGnm(1, 1, false, rng).ok());
}

TEST(ErdosRenyiTest, GnmDeterministicInSeed) {
  Rng a(7), b(7);
  auto ga = ErdosRenyiGnm(60, 200, false, a);
  auto gb = ErdosRenyiGnm(60, 200, false, b);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  EXPECT_TRUE(ga->Equals(*gb));
}

TEST(ErdosRenyiTest, GnpEdgeCountNearExpectation) {
  Rng rng(5);
  const NodeId n = 400;
  const double p = 0.05;
  auto g = ErdosRenyiGnp(n, p, /*directed=*/false, rng);
  ASSERT_TRUE(g.ok());
  const double expected = p * n * (n - 1) / 2;
  EXPECT_NEAR(static_cast<double>(g->num_edges()), expected,
              5 * std::sqrt(expected));
}

TEST(ErdosRenyiTest, GnpZeroProbabilityIsEmpty) {
  Rng rng(6);
  auto g = ErdosRenyiGnp(50, 0.0, false, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(ErdosRenyiTest, GnpValidation) {
  Rng rng(6);
  EXPECT_FALSE(ErdosRenyiGnp(50, -0.1, false, rng).ok());
  EXPECT_FALSE(ErdosRenyiGnp(50, 1.1, false, rng).ok());
  EXPECT_FALSE(ErdosRenyiGnp(1, 0.5, false, rng).ok());
}

TEST(ErdosRenyiTest, GnpDirectedHasAsymmetricArcs) {
  Rng rng(8);
  auto g = ErdosRenyiGnp(100, 0.05, /*directed=*/true, rng);
  ASSERT_TRUE(g.ok());
  // With ~500 arcs, the chance all are symmetric is nil.
  bool any_asymmetric = false;
  for (NodeId u = 0; u < g->num_nodes() && !any_asymmetric; ++u) {
    for (NodeId v : g->OutNeighbors(u)) {
      if (!g->HasEdge(v, u)) {
        any_asymmetric = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_asymmetric);
}

// --------------------------------------------------------- Barabási–Albert

TEST(BarabasiAlbertTest, EdgeCountMatchesFormula) {
  Rng rng(11);
  const NodeId n = 500;
  const uint32_t m = 3;
  auto g = BarabasiAlbert(n, m, rng);
  ASSERT_TRUE(g.ok());
  // Seed clique: C(m+1, 2) edges; each of the n-m-1 newcomers adds m.
  const uint64_t expected = m * (m + 1) / 2 + (n - m - 1) * m;
  EXPECT_EQ(g->num_edges(), expected);
}

TEST(BarabasiAlbertTest, ProducesHeavyTail) {
  Rng rng(13);
  auto g = BarabasiAlbert(2000, 2, rng);
  ASSERT_TRUE(g.ok());
  DegreeStats stats = ComputeDegreeStats(*g);
  // Preferential attachment: max degree far above the mean.
  EXPECT_GT(stats.max, 10 * stats.mean);
  EXPECT_GE(stats.min, 2u);
}

TEST(BarabasiAlbertTest, Validation) {
  Rng rng(17);
  EXPECT_FALSE(BarabasiAlbert(5, 0, rng).ok());
  EXPECT_FALSE(BarabasiAlbert(3, 3, rng).ok());
}

// ----------------------------------------------------------- Watts–Strogatz

TEST(WattsStrogatzTest, ZeroBetaIsRingLattice) {
  Rng rng(19);
  auto g = WattsStrogatz(20, 2, 0.0, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 40u);  // n*k
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(0, 2));
  EXPECT_TRUE(g->HasEdge(0, 19));
}

TEST(WattsStrogatzTest, RewiringPreservesEdgeCount) {
  Rng rng(23);
  auto g = WattsStrogatz(100, 3, 0.3, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 300u);
}

TEST(WattsStrogatzTest, Validation) {
  Rng rng(29);
  EXPECT_FALSE(WattsStrogatz(10, 0, 0.1, rng).ok());
  EXPECT_FALSE(WattsStrogatz(10, 5, 0.1, rng).ok());
  EXPECT_FALSE(WattsStrogatz(10, 2, 1.5, rng).ok());
}

// ------------------------------------------------------ Configuration model

TEST(ConfigurationModelTest, RealizesDegreesApproximately) {
  Rng rng(31);
  std::vector<uint32_t> degrees(100, 4);
  auto g = ConfigurationModel(degrees, rng);
  ASSERT_TRUE(g.ok());
  // Erased model: some edges lost to dedup/self-loops, but most survive.
  EXPECT_GT(g->num_edges(), 180u);
  EXPECT_LE(g->num_edges(), 200u);
}

TEST(ConfigurationModelTest, OddDegreeSumRejected) {
  Rng rng(37);
  EXPECT_FALSE(ConfigurationModel({3, 2, 2}, rng).ok());
}

// ----------------------------------------------------------------- ChungLu

TEST(ChungLuTest, ExactEdgeCountUndirected) {
  Rng rng(41);
  auto weights = PowerLawWeights(500, 2.2);
  auto g = ChungLu(weights, weights, 2000, /*directed=*/false, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2000u);
}

TEST(ChungLuTest, HeavyHeadGetsHighDegree) {
  Rng rng(43);
  auto weights = PowerLawWeights(1000, 2.0);
  auto g = ChungLu(weights, weights, 5000, /*directed=*/false, rng);
  ASSERT_TRUE(g.ok());
  // Node 0 carries the largest weight; its degree should dwarf the median.
  DegreeStats stats = ComputeDegreeStats(*g);
  EXPECT_GT(g->OutDegree(0), 10 * static_cast<uint32_t>(stats.median));
}

TEST(ChungLuTest, Validation) {
  Rng rng(47);
  EXPECT_FALSE(ChungLu({1.0}, {1.0}, 1, false, rng).ok());
  EXPECT_FALSE(ChungLu({1.0, 1.0}, {1.0}, 1, false, rng).ok());
  EXPECT_FALSE(ChungLu({1.0, 1.0}, {1.0, 1.0}, 100, false, rng).ok());
}

// -------------------------------------------------------------------- RMAT

TEST(RmatTest, ProducesRequestedEdges) {
  Rng rng(53);
  auto g = Rmat(10, 4000, 0.57, 0.19, 0.19, /*directed=*/true, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 1024u);
  EXPECT_EQ(g->num_arcs(), 4000u);
}

TEST(RmatTest, SkewedQuadrantsYieldSkewedDegrees) {
  Rng rng(59);
  auto g = Rmat(12, 20000, 0.57, 0.19, 0.19, true, rng);
  ASSERT_TRUE(g.ok());
  DegreeStats stats = ComputeDegreeStats(*g);
  EXPECT_GT(stats.max, 8 * stats.mean);
}

TEST(RmatTest, Validation) {
  Rng rng(61);
  EXPECT_FALSE(Rmat(0, 10, 0.5, 0.2, 0.2, true, rng).ok());
  EXPECT_FALSE(Rmat(5, 10, 0.6, 0.3, 0.3, true, rng).ok());  // sums > 1
}

// ------------------------------------------------------------ PowerLaw

TEST(PowerLawWeightsTest, DecreasingAndPositive) {
  auto w = PowerLawWeights(100, 2.2);
  ASSERT_EQ(w.size(), 100u);
  for (size_t i = 1; i < w.size(); ++i) {
    EXPECT_GT(w[i], 0.0);
    EXPECT_LE(w[i], w[i - 1]);
  }
}

// ---------------------------------------------------------------- Datasets

TEST(DatasetsTest, WikiVoteLikeMatchesSpec) {
  auto g = MakeWikiVoteLike(7);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), WikiVoteSpec::kNodes);
  EXPECT_EQ(g->num_edges(), WikiVoteSpec::kEdges);
  EXPECT_FALSE(g->directed());
  DegreeStats stats = ComputeDegreeStats(*g);
  // Heavy tail: max degree within a factor of ~3 of wiki-Vote's 1065 and
  // far above the mean (~28).
  EXPECT_GT(stats.max, 300u);
  EXPECT_LT(stats.max, 4000u);
  EXPECT_NEAR(stats.mean, 28.3, 2.0);
}

TEST(DatasetsTest, WikiVoteLikeDeterministic) {
  auto a = MakeWikiVoteLike(7);
  auto b = MakeWikiVoteLike(7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->Equals(*b));
  auto c = MakeWikiVoteLike(8);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(a->Equals(*c));
}

TEST(DatasetsTest, TwitterLikeMatchesSpec) {
  auto g = MakeTwitterLike(7);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), TwitterSpec::kNodes);
  EXPECT_EQ(g->num_arcs(), TwitterSpec::kEdges);
  EXPECT_TRUE(g->directed());
  DegreeStats stats = ComputeDegreeStats(*g);
  // The pinned hub should reach the same order as the paper's d_max.
  EXPECT_GT(stats.max, TwitterSpec::kMaxDegree / 3);
  EXPECT_LT(stats.max, TwitterSpec::kMaxDegree * 3);
  // Most nodes have tiny out-degree (the regime of the paper's Fig 1(b)).
  EXPECT_GT(stats.fraction_below_log_n, 0.5);
}

TEST(DatasetsTest, LoadOrSynthesizeFallsBackWhenMissing) {
  auto g = LoadOrSynthesizeWikiVote("/no/such/wiki-Vote.txt", 3);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), WikiVoteSpec::kNodes);
}

}  // namespace
}  // namespace privrec
