#include <cstdio>
#include <fstream>

#include "common/csv.h"
#include "common/flags.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "gtest/gtest.h"

namespace privrec {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad gamma");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad gamma");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad gamma");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status ChainedCheck(int x) {
  PRIVREC_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(ChainedCheck(1).ok());
  EXPECT_TRUE(ChainedCheck(-1).IsInvalidArgument());
}

// ---------------------------------------------------------------- Result

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.ValueOr(-1), 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-5);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> DoubleIfPositive(int x) {
  PRIVREC_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*DoubleIfPositive(4), 8);
  EXPECT_TRUE(DoubleIfPositive(0).status().IsOutOfRange());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

// ------------------------------------------------------------ StringUtil

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, SplitSkipsEmptyByDefault) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(Split("a,,c", ',', /*skip_empty=*/false),
            (std::vector<std::string>{"a", "", "c"}));
}

TEST(StringUtilTest, SplitWhitespaceMixedSeparators) {
  EXPECT_EQ(SplitWhitespace("  7115\t100762 \r\n"),
            (std::vector<std::string>{"7115", "100762"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "--"), "x--y--z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \n "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
}

TEST(StringUtilTest, ParseInt64Strict) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64(" -7 "), -7);
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0.005"), 0.005);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e-3"), 1e-3);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.04567, 3), "0.046");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
}

TEST(StringUtilTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(100762), "100,762");
  EXPECT_EQ(FormatCount(400000000), "400,000,000");
}

// ------------------------------------------------------------------ CSV

TEST(CsvTest, WritesQuotedFields) {
  const std::string path = testing::TempDir() + "/privrec_csv_test.csv";
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WriteRow(std::vector<std::string>{"plain", "with,comma",
                                             "with\"quote"});
    writer.WriteRow(std::vector<double>{0.5, 1.0});
    ASSERT_TRUE(writer.Close().ok());
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "plain,\"with,comma\",\"with\"\"quote\"");
  EXPECT_EQ(line2, "0.500000,1.000000");
  std::remove(path.c_str());
}

TEST(CsvTest, BadPathReportsNotOk) {
  CsvWriter writer("/nonexistent-dir-privrec/x.csv");
  EXPECT_FALSE(writer.ok());
}

// --------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"acc", "value"});
  table.AddRow({"0.1", "12"});
  table.AddRow({"0.95", "3"});
  std::string out = table.ToString();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("acc"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, NumericRowFormatting) {
  TablePrinter table({"label", "a", "b"});
  table.AddRow("row", {0.123456, 2.0}, 3);
  std::string out = table.ToString();
  EXPECT_NE(out.find("0.123"), std::string::npos);
  EXPECT_NE(out.find("2.000"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only-one"});
  EXPECT_NO_FATAL_FAILURE(table.ToString());
}

// ---------------------------------------------------------------- Flags

TEST(FlagsTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--epsilon=0.5", "--trials", "100",
                        "--verbose"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(5, const_cast<char**>(argv)).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("epsilon", 1.0), 0.5);
  EXPECT_EQ(flags.GetInt("trials", 0), 100);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.Has("absent"));
  EXPECT_EQ(flags.GetString("absent", "dft"), "dft");
}

TEST(FlagsTest, CollectsPositionals) {
  const char* argv[] = {"prog", "input.txt", "--k=2", "more"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(4, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.txt", "more"}));
}

TEST(FlagsTest, MalformedDefaultsFallBack) {
  const char* argv[] = {"prog", "--epsilon=abc"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("epsilon", 2.0), 2.0);
}

TEST(FlagsTest, BareDoubleDashIsError) {
  const char* argv[] = {"prog", "--"};
  FlagParser flags;
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

}  // namespace
}  // namespace privrec
