// DP audited UNDER FAULTS (ctest labels `faults` + `audit`): the
// capstone of the fault-injection PR. ServiceAuditor::AuditPairUnderFaults
// installs one FaultPlan identically on both sides of a neighboring pair
// and certifies that every forced fallback route — journal compaction
// under a pinned window, snapshot/projection patch failure, repair
// abandonment, shard stalls, retry-absorbed admission failures — still
// releases at epsilon-hat <= epsilon. Degraded must never mean leaky: the
// fallbacks are exact recomputes, so an honest service's certified bound
// stays under the configured epsilon on every fault point, while the
// uncap-projection trip wire stays CAUGHT even with faults firing.

#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/logging.h"
#include "eval/service_auditor.h"
#include "gen/fixtures.h"
#include "gen/neighboring.h"
#include "gtest/gtest.h"
#include "random/rng.h"
#include "serve/fault_injection.h"
#include "serve/recommendation_service.h"
#include "utility/common_neighbors.h"
#include "utility/link_predictors.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PRIVREC_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PRIVREC_TEST_SANITIZED 1
#endif
#endif
#ifndef PRIVREC_TEST_SANITIZED
#define PRIVREC_TEST_SANITIZED 0
#endif

namespace privrec {
namespace {

uint64_t FaultAuditTrials() {
  return PRIVREC_TEST_SANITIZED ? 400 : 1200;
}

NeighboringPair FixturePair() {
  CsrGraph g = MakeDirectedAuditFixture();
  auto pair = MakeEdgeTogglePair(g, /*target=*/0, 2, 4);
  PRIVREC_CHECK_OK(pair.status());
  return *pair;
}

ServiceAuditOptions FaultAuditAuditorOptions() {
  ServiceAuditOptions options;
  options.release_epsilon = 0.8;
  options.trials_per_side = FaultAuditTrials();
  options.confidence = 0.99;
  options.seed = 20260808;
  return options;
}

TEST(FaultAuditTest, HonestServiceStaysCertifiedOnEveryFaultPoint) {
  // One audit per fault point, each with a plan that forces THAT
  // fallback route throughout the trials. The mirrored toggles between
  // trials keep the mutation-armed points (compaction, patch failures,
  // repair failure) firing; epsilon-hat must stay certified <= epsilon on
  // all of them, and the stats hook must prove the faults actually fired.
  struct FaultCase {
    const char* name;
    FaultPoint point;
    uint32_t period;
    bool node_model;  // projection faults only exist under kNode
    uint32_t stall_micros;
  };
  const FaultCase cases[] = {
      {"journal_compaction", FaultPoint::kJournalCompaction, 3, false, 0},
      {"snapshot_patch_fail", FaultPoint::kSnapshotPatchFail, 1, false, 0},
      {"projection_patch_fail", FaultPoint::kProjectionPatchFail, 1, true, 0},
      {"repair_fail", FaultPoint::kRepairFail, 2, false, 0},
      {"shard_stall", FaultPoint::kShardStall, 1, false, 50},
  };
  for (const FaultCase& fault_case : cases) {
    ServiceAuditOptions options = FaultAuditAuditorOptions();
    std::function<std::unique_ptr<UtilityFunction>()> factory =
        [] { return std::make_unique<CommonNeighborsUtility>(); };
    if (fault_case.node_model) {
      options.privacy_model = PrivacyModel::kNode;
      options.degree_cap = 2;
      factory = [] { return std::make_unique<ResourceAllocationUtility>(); };
    }
    ServiceAuditor auditor(factory, options);
    FaultAuditOptions faults;
    faults.plan.Enable(fault_case.point, fault_case.period);
    faults.plan.rule(fault_case.point).stall_micros = fault_case.stall_micros;
    faults.mutations_between_trials = 1;
    ServiceStats stats;
    auto audit =
        auditor.AuditPairUnderFaults(FixturePair(), /*target=*/0, faults,
                                     &stats);
    ASSERT_TRUE(audit.ok())
        << fault_case.name << ": " << audit.status().ToString();
    ASSERT_EQ(audit->per_path.size(), 1u) << fault_case.name;
    const PathEpsilonEstimate& estimate = audit->per_path[0];
    EXPECT_EQ(estimate.path, "under_faults");
    EXPECT_EQ(estimate.trials_per_side, options.trials_per_side);
    // With probability >= confidence the honest stack leaks no more than
    // its configured epsilon even on the forced fallback route.
    EXPECT_LE(estimate.epsilon_lower_bound, options.release_epsilon)
        << fault_case.name
        << ": a forced fallback route leaks more than the charged epsilon";
    // The audit only certifies the route if the faults actually fired.
    EXPECT_GT(stats.injected_faults, 0u)
        << fault_case.name << ": the installed plan never fired";
    if (fault_case.point == FaultPoint::kJournalCompaction) {
      EXPECT_GT(stats.journal_fallbacks, 0u)
          << "compaction fired but never doomed a pinned window";
      EXPECT_GT(stats.stale_fallback_serves, 0u);
    }
    if (fault_case.point == FaultPoint::kRepairFail) {
      EXPECT_GT(stats.stale_fallback_serves, 0u)
          << "repair abandonment never forced the recompute fallback";
    }
  }
}

TEST(FaultAuditTest, RetryAbsorbedFailServeFaultsStayCertified) {
  // fail_serve rules surface injected kUnavailable at serve admission;
  // with a period-2 schedule and two retries every trial's first attempt
  // fails and the retry lands — the audit must complete, stay certified,
  // and the retry/fault tallies must prove the ladder ran end to end.
  ServiceAuditOptions options = FaultAuditAuditorOptions();
  ServiceAuditor auditor(
      [] { return std::make_unique<CommonNeighborsUtility>(); }, options);
  FaultAuditOptions faults;
  faults.plan.FailServe(FaultPoint::kSnapshotPatchFail, /*period=*/2);
  faults.mutations_between_trials = 1;
  faults.retry.max_retries = 2;
  faults.retry.backoff_micros = 1;
  ServiceStats stats;
  auto audit = auditor.AuditPairUnderFaults(FixturePair(), /*target=*/0,
                                            faults, &stats);
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  EXPECT_LE(audit->per_path[0].epsilon_lower_bound, options.release_epsilon)
      << "the retry path leaks more than the charged epsilon";
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.injected_faults, 0u);
}

TEST(FaultAuditTest, UnabsorbedFailServeMakesTheAuditRefuse) {
  // A plan whose injected failures outlast the retry budget must make the
  // audit return the Unavailable error instead of a result: the auditor
  // refuses to certify a service that refused to serve.
  ServiceAuditOptions options = FaultAuditAuditorOptions();
  options.trials_per_side = 50;
  ServiceAuditor auditor(
      [] { return std::make_unique<CommonNeighborsUtility>(); }, options);
  FaultAuditOptions faults;
  faults.plan.FailServe(FaultPoint::kRepairFail);  // every admission, forever
  faults.retry.max_retries = 0;
  auto audit = auditor.AuditPairUnderFaults(FixturePair(), /*target=*/0,
                                            faults);
  ASSERT_FALSE(audit.ok());
  EXPECT_TRUE(audit.status().IsUnavailable()) << audit.status().ToString();
}

TEST(FaultAuditTest, TinyJournalAndCompactionCompose) {
  // Undersized journal + injected compaction: both forced-fallback
  // producers at once, certified together (the production incident is
  // rarely one clean failure).
  ServiceAuditOptions options = FaultAuditAuditorOptions();
  ServiceAuditor auditor(
      [] { return std::make_unique<CommonNeighborsUtility>(); }, options);
  FaultAuditOptions faults;
  faults.plan.Enable(FaultPoint::kJournalCompaction, /*period=*/2);
  faults.plan.Enable(FaultPoint::kRepairFail, /*period=*/3);
  faults.mutations_between_trials = 2;
  faults.journal_capacity = 1;
  ServiceStats stats;
  auto audit = auditor.AuditPairUnderFaults(FixturePair(), /*target=*/0,
                                            faults, &stats);
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  EXPECT_LE(audit->per_path[0].epsilon_lower_bound, options.release_epsilon);
  EXPECT_GT(stats.journal_fallbacks, 0u);
  EXPECT_GT(stats.stale_fallback_serves, 0u);
}

TEST(FaultAuditTest, ListShapeStaysCertifiedUnderFaults) {
  // The k-slot peeling release audited through the same fault schedule:
  // per-parity list reductions share one Bonferroni budget.
  ServiceAuditOptions options = FaultAuditAuditorOptions();
  options.shape = ServeAuditShape::kList;
  options.list_k = 2;
  ServiceAuditor auditor(
      [] { return std::make_unique<CommonNeighborsUtility>(); }, options);
  FaultAuditOptions faults;
  faults.plan.Enable(FaultPoint::kRepairFail, /*period=*/2);
  faults.mutations_between_trials = 1;
  auto audit = auditor.AuditPairUnderFaults(FixturePair(), /*target=*/0,
                                            faults);
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  const PathEpsilonEstimate& estimate = audit->per_path[0];
  EXPECT_LE(estimate.epsilon_lower_bound, options.release_epsilon);
  EXPECT_GE(estimate.bonferroni_cells, 6u);
}

TEST(FaultAuditTest, FixedSeedReproducesTheFaultAudit) {
  // Faults + mirrored toggles + retries are all deterministic, so two
  // runs at one seed must agree bitwise — the property every debugging
  // session under faults depends on.
  ServiceAuditOptions options = FaultAuditAuditorOptions();
  options.trials_per_side = 400;
  ServiceAuditor auditor(
      [] { return std::make_unique<CommonNeighborsUtility>(); }, options);
  FaultAuditOptions faults;
  faults.plan.Enable(FaultPoint::kRepairFail, /*period=*/2);
  faults.plan.Enable(FaultPoint::kJournalCompaction, /*period=*/5);
  faults.mutations_between_trials = 1;
  auto first = auditor.AuditPairUnderFaults(FixturePair(), 0, faults);
  auto second = auditor.AuditPairUnderFaults(FixturePair(), 0, faults);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(first->per_path[0].epsilon_hat,
                   second->per_path[0].epsilon_hat);
  EXPECT_DOUBLE_EQ(first->per_path[0].epsilon_lower_bound,
                   second->per_path[0].epsilon_lower_bound);
}

TEST(FaultAuditTest, UncapTripWireStaysCaughtUnderFaults) {
  // The negative control: auditing under faults must not blunt the
  // audit. The uncap-projection trip wire (serve raw, calibrate capped)
  // has to stay a CERTIFIED violation even while repair faults and
  // compactions force the fallback routes.
  ServiceAuditOptions options = FaultAuditAuditorOptions();
  options.release_epsilon = 1.0;
  options.privacy_model = PrivacyModel::kNode;
  options.degree_cap = 1;
  options.uncap_projection = true;
  options.trials_per_side = PRIVREC_TEST_SANITIZED ? 600 : 2000;
  ServiceAuditor auditor(
      [] { return std::make_unique<ResourceAllocationUtility>(); }, options);
  FaultAuditOptions faults;
  faults.plan.Enable(FaultPoint::kRepairFail, /*period=*/2);
  faults.plan.Enable(FaultPoint::kJournalCompaction, /*period=*/5);
  faults.mutations_between_trials = 1;
  ServiceStats stats;
  auto audit = auditor.AuditPairUnderFaults(MakeNodeAuditRewiringPair(),
                                            /*target=*/0, faults, &stats);
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  const PathEpsilonEstimate& estimate = audit->per_path[0];
  EXPECT_GT(estimate.epsilon_hat, options.release_epsilon);
#if !PRIVREC_TEST_SANITIZED
  EXPECT_GT(estimate.epsilon_lower_bound, options.release_epsilon)
      << "uncapped projection escaped certification once faults were "
         "installed";
#endif
  EXPECT_GT(stats.injected_faults, 0u);
}

}  // namespace
}  // namespace privrec
