// Tests for the extended link-prediction utility catalogue (Jaccard,
// preferential attachment, resource allocation, Katz) — hand-computed
// values, sensitivity-property sweeps, and mechanism integration.

#include <cmath>

#include "core/exponential_mechanism.h"
#include "eval/accuracy.h"
#include "eval/dp_auditor.h"
#include "gen/fixtures.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "gtest/gtest.h"
#include "random/rng.h"
#include "utility/link_predictors.h"
#include "utility/sensitivity.h"

namespace privrec {
namespace {

double UtilityOf(const UtilityVector& u, NodeId node) {
  for (const UtilityEntry& e : u.nonzero()) {
    if (e.node == node) return e.utility;
  }
  return 0.0;
}

// ----------------------------------------------------------------- Jaccard

TEST(JaccardTest, HandComputedFixtureValues) {
  CsrGraph g = MakeTwoTriangleFixture();
  JaccardUtility jaccard;
  UtilityVector u = jaccard.Compute(g, 0);
  // Node 3: common {1,2}=2; union = deg(0)+deg(3)-2 = 2+2-2 = 2 -> 1.0.
  EXPECT_DOUBLE_EQ(UtilityOf(u, 3), 1.0);
  // Node 4: common {1}=1; union = 2+2-1 = 3 -> 1/3.
  EXPECT_NEAR(UtilityOf(u, 4), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(UtilityOf(u, 5), 0.0);
}

TEST(JaccardTest, BoundedByOne) {
  Rng rng(3);
  auto g = ErdosRenyiGnm(60, 240, false, rng);
  ASSERT_TRUE(g.ok());
  JaccardUtility jaccard;
  for (NodeId target : {NodeId(0), NodeId(10), NodeId(42)}) {
    UtilityVector u = jaccard.Compute(*g, target);
    for (const UtilityEntry& e : u.nonzero()) {
      EXPECT_GT(e.utility, 0.0);
      EXPECT_LE(e.utility, 1.0);
    }
  }
}

TEST(JaccardTest, DiscountsPromiscuousCandidates) {
  // Candidates 3 and 4 share exactly one friend with the target, but 4
  // has many unrelated edges: Jaccard must rank 3 above 4.
  GraphBuilder builder(false);
  builder.SetNumNodes(9);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 3);
  builder.AddEdge(1, 4);
  builder.AddEdge(4, 5);
  builder.AddEdge(4, 6);
  builder.AddEdge(4, 7);
  builder.AddEdge(4, 8);
  CsrGraph g = builder.Build();
  JaccardUtility jaccard;
  UtilityVector u = jaccard.Compute(g, 0);
  EXPECT_GT(UtilityOf(u, 3), UtilityOf(u, 4));
}

// --------------------------------------------------- PreferentialAttachment

TEST(PreferentialAttachmentTest, ScoresAreDegreeProducts) {
  CsrGraph g = MakeTwoTriangleFixture();
  PreferentialAttachmentUtility pa;
  UtilityVector u = pa.Compute(g, 0);
  // deg(0)=2; candidates in 2-hop: 3 (deg 2), 4 (deg 2).
  EXPECT_DOUBLE_EQ(UtilityOf(u, 3), 4.0);
  EXPECT_DOUBLE_EQ(UtilityOf(u, 4), 4.0);
}

TEST(PreferentialAttachmentTest, FavorsHubs) {
  CsrGraph g = MakeStar(6);
  PreferentialAttachmentUtility pa;
  // From a leaf, the only 2-hop candidates are other leaves (deg 1); all
  // tie at deg(r)*1 = 1.
  UtilityVector u = pa.Compute(g, 1);
  for (const UtilityEntry& e : u.nonzero()) {
    EXPECT_DOUBLE_EQ(e.utility, 1.0);
  }
}

// ------------------------------------------------------- ResourceAllocation

TEST(ResourceAllocationTest, HandComputedFixtureValues) {
  CsrGraph g = MakeTwoTriangleFixture();
  ResourceAllocationUtility ra;
  UtilityVector u = ra.Compute(g, 0);
  // Node 3 via node 1 (deg 3) and node 2 (deg 2): 1/3 + 1/2.
  EXPECT_NEAR(UtilityOf(u, 3), 1.0 / 3.0 + 1.0 / 2.0, 1e-12);
  // Node 4 via node 1: 1/3.
  EXPECT_NEAR(UtilityOf(u, 4), 1.0 / 3.0, 1e-12);
}

TEST(ResourceAllocationTest, HarsherThanAdamicAdarOnHubs) {
  // RA decays as 1/d, AA as 1/ln d: both rank quiet intermediaries higher,
  // RA more aggressively. Sanity: RA utility <= CN utility always.
  Rng rng(5);
  auto g = ErdosRenyiGnm(50, 220, false, rng);
  ASSERT_TRUE(g.ok());
  ResourceAllocationUtility ra;
  UtilityVector u = ra.Compute(*g, 7);
  for (const UtilityEntry& e : u.nonzero()) {
    EXPECT_LE(e.utility, 50.0);  // trivially bounded by max degree terms
    EXPECT_GT(e.utility, 0.0);
  }
}

// -------------------------------------------------------------------- Katz

TEST(KatzTest, PathGraphGeometricDecay) {
  // Path 0-1-2-3-4, target 0, beta=0.1, L=4:
  //  node 2: one 2-walk -> beta^2; node 3: one 3-walk -> beta^3;
  //  node 4: one 4-walk -> beta^4. (Walks avoiding r; no backtracking
  //  walks reach these nodes within L=4 except 2: 0-1-2 plus
  //  0-1-2-3-2? length 4 ends at 2: contributes beta^4.)
  const double beta = 0.1;
  CsrGraph g = MakePath(5);
  KatzUtility katz(beta, 4);
  UtilityVector u = katz.Compute(g, 0);
  // node 3: beta^3 exactly (4-walks ending at 3: 0-1-2-1? ends at 1…
  // 0-1-2-3 is length 3; length-4 walks to 3: none that avoid r and end
  // at 3? 0-1-2-3 has length 3; 0-1-2-1-... no. So beta^3.)
  EXPECT_NEAR(UtilityOf(u, 3), beta * beta * beta, 1e-12);
  EXPECT_NEAR(UtilityOf(u, 4), beta * beta * beta * beta, 1e-12);
  // node 2: 2-walk beta^2 + two 4-walks (0-1-2-3-2 and 0-1-2-1-2).
  EXPECT_NEAR(UtilityOf(u, 2),
              beta * beta + 2.0 * beta * beta * beta * beta, 1e-12);
}

TEST(KatzTest, LongerTruncationAddsUtility) {
  Rng rng(7);
  auto g = ErdosRenyiGnm(40, 160, false, rng);
  ASSERT_TRUE(g.ok());
  KatzUtility short_katz(0.05, 2), long_katz(0.05, 4);
  UtilityVector us = short_katz.Compute(*g, 0);
  UtilityVector ul = long_katz.Compute(*g, 0);
  EXPECT_GE(ul.sum(), us.sum());
  EXPECT_GE(ul.nonzero().size(), us.nonzero().size());
}

TEST(KatzTest, ParameterValidation) {
  EXPECT_DEATH(KatzUtility(0.0, 3), "");
  EXPECT_DEATH(KatzUtility(0.1, 1), "");
  EXPECT_DEATH(KatzUtility(0.1, 7), "");
}

// ----------------------------------------- Sensitivity property sweeps

struct PredictorCase {
  const char* label;
  uint64_t seed;
};

class PredictorSensitivitySweep
    : public testing::TestWithParam<PredictorCase> {};

TEST_P(PredictorSensitivitySweep, EmpiricalWithinAnalyticBound) {
  Rng rng(GetParam().seed);
  auto g = ErdosRenyiGnm(40, 160, false, rng);
  ASSERT_TRUE(g.ok());
  JaccardUtility jaccard;
  PreferentialAttachmentUtility pa;
  ResourceAllocationUtility ra;
  KatzUtility katz(0.02, 3);
  for (const UtilityFunction* utility :
       std::initializer_list<const UtilityFunction*>{&jaccard, &pa, &ra,
                                                     &katz}) {
    const double bound = utility->SensitivityBound(*g);
    for (NodeId target : {NodeId(2), NodeId(19)}) {
      Rng probe(GetParam().seed * 31 + target);
      SensitivityEstimate est = EstimateEdgeSensitivity(
          *g, *utility, target, /*num_samples=*/50, probe, /*relaxed=*/true);
      EXPECT_LE(est.max_l1, bound + 1e-9)
          << utility->name() << " target " << target;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PredictorSensitivitySweep,
    testing::Values(PredictorCase{"a", 11}, PredictorCase{"b", 22},
                    PredictorCase{"c", 33}),
    [](const testing::TestParamInfo<PredictorCase>& info) {
      return info.param.label;
    });

// ------------------------------------------- DP audit across predictors

TEST(PredictorAuditTest, AllPredictorsPassAuditWhenCalibrated) {
  CsrGraph g = MakeTwoTriangleFixture();
  JaccardUtility jaccard;
  ResourceAllocationUtility ra;
  KatzUtility katz(0.05, 3);
  const double eps = 1.0;
  for (const UtilityFunction* utility :
       std::initializer_list<const UtilityFunction*>{&jaccard, &ra, &katz}) {
    ExponentialMechanism mech(eps, utility->SensitivityBound(g));
    auto audit = AuditEdgeDp(g, *utility, mech, 0);
    ASSERT_TRUE(audit.ok());
    EXPECT_LE(audit->max_abs_log_ratio, eps + 1e-6) << utility->name();
  }
}

TEST(PredictorAuditTest, ExpectedAccuracyOrderedByEpsilon) {
  Rng rng(13);
  auto g = ErdosRenyiGnm(60, 260, false, rng);
  ASSERT_TRUE(g.ok());
  JaccardUtility jaccard;
  UtilityVector u = jaccard.Compute(*g, 3);
  if (u.empty()) GTEST_SKIP();
  double prev = -1;
  for (double eps : {0.5, 2.0, 8.0}) {
    ExponentialMechanism mech(eps, jaccard.SensitivityBound(*g));
    auto acc = ExactExpectedAccuracy(mech, u);
    ASSERT_TRUE(acc.ok());
    EXPECT_GT(*acc, prev);
    prev = *acc;
  }
}

}  // namespace
}  // namespace privrec
