// Incremental-maintenance suite (ctest label `incremental`): the
// edge-delta journal and reverse-adjacency index on DynamicGraph, the
// exact-equality contract of UtilityFunction::ApplyEdgeDelta (bitwise for
// common neighbors, support-exact + 1e-9 scores for the degree-weighted
// family), affected-set completeness, and the delta-patched serving cache
// (differential vs the full-recompute baseline, journal-compaction
// fallback, frozen-sampler survival, and a TSAN-facing concurrent
// mutate/repair stress — ci/sanitize.sh runs this label under
// ThreadSanitizer and the whole suite under ASan+UBSan).

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "core/privacy_accountant.h"
#include "eval/parallel.h"
#include "gen/generators.h"
#include "graph/csr_patch.h"
#include "graph/dynamic_graph.h"
#include "graph/edge_delta.h"
#include "graph/graph_builder.h"
#include "graph/transforms.h"
#include "gtest/gtest.h"
#include "random/rng.h"
#include "serve/recommendation_service.h"
#include "utility/adamic_adar.h"
#include "utility/common_neighbors.h"
#include "utility/link_predictors.h"
#include "utility/sensitivity.h"

namespace privrec {
namespace {

// ------------------------------------------------------------------ journal

TEST(EdgeDeltaJournalTest, ReplayReconstructsTheGraph) {
  for (bool directed : {false, true}) {
    Rng rng(directed ? 3u : 4u);
    auto base = ErdosRenyiGnm(20, 40, directed, rng);
    ASSERT_TRUE(base.ok());
    DynamicGraph graph(*base);
    const DynamicGraph::StampedSnapshot before = graph.VersionedSnapshot();

    for (int i = 0; i < 50; ++i) {
      const NodeId u = static_cast<NodeId>(rng.NextBounded(20));
      const NodeId v = static_cast<NodeId>(rng.NextBounded(20));
      if (u == v) continue;
      if (graph.HasEdge(u, v)) {
        ASSERT_TRUE(graph.RemoveEdge(u, v).ok());
      } else {
        ASSERT_TRUE(graph.AddEdge(u, v).ok());
      }
    }
    const DynamicGraph::StampedSnapshot after = graph.VersionedSnapshot();

    auto deltas = graph.EdgeDeltasBetween(before.version, after.version);
    ASSERT_TRUE(deltas.ok()) << deltas.status().ToString();
    // Consecutive version stamps, replaying exactly onto the old snapshot.
    DynamicGraph replay(*before.graph);
    uint64_t expected_version = before.version;
    for (const EdgeDelta& delta : *deltas) {
      EXPECT_EQ(delta.version, ++expected_version);
      ASSERT_TRUE((delta.added ? replay.AddEdge(delta.u, delta.v)
                               : replay.RemoveEdge(delta.u, delta.v))
                      .ok());
    }
    EXPECT_EQ(expected_version, after.version);
    EXPECT_TRUE(replay.Snapshot().Equals(*after.graph));
    // Empty window is fine; inverted or future windows are not.
    EXPECT_TRUE(graph.EdgeDeltasBetween(after.version, after.version)->empty());
    EXPECT_TRUE(graph.EdgeDeltasBetween(after.version, before.version)
                    .status()
                    .IsInvalidArgument());
    EXPECT_TRUE(graph.EdgeDeltasBetween(0, after.version + 1)
                    .status()
                    .IsInvalidArgument());
  }
}

TEST(EdgeDeltaJournalTest, CompactionAndAddNodeForceTheFallback) {
  DynamicGraph graph(10, /*directed=*/false);
  graph.SetJournalCapacity(4);
  for (NodeId v = 1; v <= 8; ++v) {
    ASSERT_TRUE(graph.AddEdge(0, v).ok());
  }
  // Only the last 4 of 8 toggles are retained.
  EXPECT_EQ(graph.journal_floor_version(), 4u);
  EXPECT_TRUE(graph.EdgeDeltasBetween(0, 8).status().IsOutOfRange());
  EXPECT_TRUE(graph.EdgeDeltasBetween(3, 8).status().IsOutOfRange());
  auto tail = graph.EdgeDeltasBetween(4, 8);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->size(), 4u);

  // AddNode is a version bump no edge delta can describe: every window
  // crossing it must fail, windows after it work again.
  graph.AddNode();
  EXPECT_EQ(graph.version(), 9u);
  EXPECT_TRUE(graph.EdgeDeltasBetween(8, 9).status().IsOutOfRange());
  ASSERT_TRUE(graph.AddEdge(10, 3).ok());
  auto after_node = graph.EdgeDeltasBetween(9, 10);
  ASSERT_TRUE(after_node.ok());
  EXPECT_EQ(after_node->size(), 1u);

  // Capacity 0 disables journaling outright.
  graph.SetJournalCapacity(0);
  ASSERT_TRUE(graph.AddEdge(10, 4).ok());
  EXPECT_TRUE(graph.EdgeDeltasBetween(graph.version() - 1, graph.version())
                  .status()
                  .IsOutOfRange());
}

// ------------------------------------------------------------ reverse index

TEST(ReverseIndexTest, SnapshotInGraphIsTheTranspose) {
  Rng rng(11);
  auto base = ErdosRenyiGnm(25, 60, /*directed=*/true, rng);
  ASSERT_TRUE(base.ok());
  DynamicGraph graph(*base);
  for (int i = 0; i < 40; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(25));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(25));
    if (u == v) continue;
    if (graph.HasEdge(u, v)) {
      ASSERT_TRUE(graph.RemoveEdge(u, v).ok());
    } else {
      ASSERT_TRUE(graph.AddEdge(u, v).ok());
    }
    const DynamicGraph::StampedSnapshot snap = graph.VersionedSnapshot();
    ASSERT_NE(snap.in_graph, nullptr);
    EXPECT_TRUE(snap.in_graph->Equals(Reverse(*snap.graph)))
        << "incrementally-maintained reverse index diverged from the "
           "transpose after toggle "
        << i;
    for (NodeId w = 0; w < 25; ++w) {
      EXPECT_EQ(graph.InDegree(w), snap.in_graph->OutDegree(w));
    }
  }
  // Undirected graphs alias the forward CSR as their own reverse.
  DynamicGraph undirected(5, /*directed=*/false);
  ASSERT_TRUE(undirected.AddEdge(0, 1).ok());
  const DynamicGraph::StampedSnapshot snap = undirected.VersionedSnapshot();
  EXPECT_EQ(snap.in_graph.get(), snap.graph.get());
  EXPECT_EQ(undirected.InDegree(1), 1u);
}

// --------------------------------------------------------- snapshot patching

TEST(CsrPatchTest, SplicesInsertionsDeletionsAndCancelledPairs) {
  GraphBuilder builder(/*directed=*/true);
  builder.SetNumNodes(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 3);
  builder.AddEdge(2, 4);
  builder.AddEdge(5, 0);
  const CsrGraph prev = builder.Build();
  // Window: insert 0->2 (splices between 1 and 3), delete 2->4, toggle
  // 4->5 on and off again (nets to nothing), insert 3->1.
  const std::vector<EdgeDelta> window = {
      {0, 2, true, 1}, {2, 4, false, 2}, {4, 5, true, 3},
      {4, 5, false, 4}, {3, 1, true, 5},
  };
  auto patched = PatchCsr(prev, window, CsrPatchOrientation::kForward);
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();
  GraphBuilder expect_builder(/*directed=*/true);
  expect_builder.SetNumNodes(6);
  expect_builder.AddEdge(0, 1);
  expect_builder.AddEdge(0, 2);
  expect_builder.AddEdge(0, 3);
  expect_builder.AddEdge(5, 0);
  expect_builder.AddEdge(3, 1);
  EXPECT_TRUE(patched->Equals(expect_builder.Build()));
  // The reverse orientation patches the transpose with the same window.
  auto reverse = PatchCsr(Reverse(prev), window, CsrPatchOrientation::kReverse);
  ASSERT_TRUE(reverse.ok()) << reverse.status().ToString();
  EXPECT_TRUE(reverse->Equals(Reverse(*patched)));
}

TEST(CsrPatchTest, InconsistentWindowsAreRejected) {
  GraphBuilder builder(/*directed=*/false);
  builder.SetNumNodes(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const CsrGraph prev = builder.Build();
  const auto patch_one = [&](EdgeDelta delta) {
    return PatchCsr(prev, std::span<const EdgeDelta>(&delta, 1),
                    CsrPatchOrientation::kForward);
  };
  // Net insertion of a present edge / deletion of an absent one.
  EXPECT_TRUE(patch_one({0, 1, true, 1}).status().IsInvalidArgument());
  EXPECT_TRUE(patch_one({0, 3, false, 1}).status().IsInvalidArgument());
  // Endpoint out of range (an AddNode happened after the stamp).
  EXPECT_TRUE(patch_one({0, 9, true, 1}).status().IsInvalidArgument());
  // Same arc toggled twice in the same direction: not a journal replay.
  const std::vector<EdgeDelta> doubled = {{0, 2, true, 1}, {0, 2, true, 2}};
  EXPECT_TRUE(PatchCsr(prev, doubled, CsrPatchOrientation::kForward)
                  .status()
                  .IsInvalidArgument());
  // Regression: a VALID insertion at a low node id balancing an invalid
  // deletion at a high one (net arc shift 0) must be rejected up front —
  // the splice must never write the extra arc into a buffer sized on the
  // assumption every op applies before reaching the bad op (pre-fix this
  // was a heap-buffer-overflow, caught by ASan in CI).
  GraphBuilder directed_builder(/*directed=*/true);
  directed_builder.SetNumNodes(8);
  directed_builder.AddEdge(0, 1);
  directed_builder.AddEdge(0, 2);
  const CsrGraph directed_prev = directed_builder.Build();
  const std::vector<EdgeDelta> unbalanced = {{0, 5, true, 1},
                                             {7, 3, false, 2}};
  EXPECT_TRUE(PatchCsr(directed_prev, unbalanced, CsrPatchOrientation::kForward)
                  .status()
                  .IsInvalidArgument());
  // Reverse orientation is only defined for directed CSRs.
  EXPECT_TRUE(patch_one({0, 2, true, 1}).ok());
  const EdgeDelta fine{0, 2, true, 1};
  EXPECT_TRUE(PatchCsr(prev, std::span<const EdgeDelta>(&fine, 1),
                       CsrPatchOrientation::kReverse)
                  .status()
                  .IsInvalidArgument());
}

TEST(SnapshotPatchTest, RandomizedMutationsEqualFromScratchRebuilds) {
  // The tentpole property: a mutation-heavy DynamicGraph whose snapshots
  // are journal-patched must publish CSRs Equals()-identical to a mirror
  // graph that rebuilds every snapshot from scratch — forward AND reverse
  // CSR, through compaction and AddNode fallbacks (small journal, node
  // growth) and across multi-delta windows.
  for (bool directed : {false, true}) {
    Rng rng(directed ? 211u : 212u);
    auto base = ErdosRenyiGnm(40, 90, directed, rng);
    ASSERT_TRUE(base.ok());
    DynamicGraph patched(*base);
    DynamicGraph rebuilt(*base);
    rebuilt.SetSnapshotPatchThreshold(0);  // the from-scratch mirror
    patched.SetJournalCapacity(8);
    NodeId nodes = 40;
    for (int step = 0; step < 400; ++step) {
      if (rng.NextBernoulli(0.02)) {
        ASSERT_EQ(patched.AddNode(), rebuilt.AddNode());
        ++nodes;
        continue;
      }
      const NodeId u = static_cast<NodeId>(rng.NextBounded(nodes));
      const NodeId v = static_cast<NodeId>(rng.NextBounded(nodes));
      if (u == v) continue;
      if (patched.HasEdge(u, v)) {
        ASSERT_TRUE(patched.RemoveEdge(u, v).ok());
        ASSERT_TRUE(rebuilt.RemoveEdge(u, v).ok());
      } else {
        ASSERT_TRUE(patched.AddEdge(u, v).ok());
        ASSERT_TRUE(rebuilt.AddEdge(u, v).ok());
      }
      // Snapshot sometimes, so windows span 1..many deltas (and sometimes
      // outrun the 8-entry journal, exercising the compaction fallback).
      if (!rng.NextBernoulli(0.35)) continue;
      const DynamicGraph::StampedSnapshot a = patched.VersionedSnapshot();
      const DynamicGraph::StampedSnapshot b = rebuilt.VersionedSnapshot();
      ASSERT_EQ(a.version, b.version);
      ASSERT_EQ(a.num_edges, b.num_edges);
      ASSERT_TRUE(a.graph->Equals(*b.graph))
          << (directed ? "directed" : "undirected")
          << " forward CSR diverged at step " << step;
      ASSERT_TRUE(a.in_graph->Equals(*b.in_graph))
          << (directed ? "directed" : "undirected")
          << " reverse CSR diverged at step " << step;
      if (!directed) {
        ASSERT_EQ(a.in_graph.get(), a.graph.get())
            << "undirected reverse must alias the forward CSR";
      }
    }
    // The property only bites if both publication paths actually ran.
    EXPECT_GT(patched.snapshot_patches(), 0u);
    EXPECT_GT(patched.snapshot_builds(), 1u)
        << "fallback paths (AddNode / compaction) never fired";
    EXPECT_EQ(rebuilt.snapshot_patches(), 0u);
  }
}

TEST(SnapshotPatchTest, ThresholdAndFallbacksRouteToFullRebuild) {
  DynamicGraph g(10, /*directed=*/false);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  (void)g.VersionedSnapshot();  // first materialization: nothing to patch
  EXPECT_EQ(g.snapshot_builds(), 1u);
  EXPECT_EQ(g.snapshot_patches(), 0u);

  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  (void)g.VersionedSnapshot();  // one-delta window: patched
  EXPECT_EQ(g.snapshot_builds(), 1u);
  EXPECT_EQ(g.snapshot_patches(), 1u);

  g.SetSnapshotPatchThreshold(1);
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  ASSERT_TRUE(g.AddEdge(0, 4).ok());
  (void)g.VersionedSnapshot();  // two-delta window above threshold: rebuilt
  EXPECT_EQ(g.snapshot_builds(), 2u);
  EXPECT_EQ(g.snapshot_patches(), 1u);

  ASSERT_TRUE(g.RemoveEdge(0, 3).ok());
  (void)g.VersionedSnapshot();  // back under threshold: patched
  EXPECT_EQ(g.snapshot_patches(), 2u);

  g.AddNode();
  (void)g.VersionedSnapshot();  // node growth: no delta describes it
  EXPECT_EQ(g.snapshot_builds(), 3u);
  EXPECT_EQ(g.snapshot_patches(), 2u);

  g.SetJournalCapacity(0);  // journaling off: every window is OutOfRange
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  (void)g.VersionedSnapshot();
  EXPECT_EQ(g.snapshot_builds(), 4u);
  EXPECT_EQ(g.snapshot_patches(), 2u);

  g.SetJournalCapacity(DynamicGraph::kDefaultJournalCapacity);
  g.SetSnapshotPatchThreshold(0);  // patching off entirely
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  (void)g.VersionedSnapshot();
  EXPECT_EQ(g.snapshot_builds(), 5u);
  EXPECT_EQ(g.snapshot_patches(), 2u);
}

// ------------------------------------------------- affected-set completeness

/// Utility-agnostic ground truth: a target is REALLY unaffected iff its
/// fresh vectors before and after the toggle agree for every shipped
/// 2-hop utility.
void ExpectVectorsIdentical(const UtilityVector& a, const UtilityVector& b,
                            bool bitwise) {
  ASSERT_EQ(a.num_candidates(), b.num_candidates());
  ASSERT_EQ(a.nonzero().size(), b.nonzero().size());
  if (bitwise) {
    // Bitwise-equal scores sort identically (ties break on node id), so
    // the descending entry arrays must agree position by position.
    for (size_t i = 0; i < a.nonzero().size(); ++i) {
      EXPECT_EQ(a.nonzero()[i].node, b.nonzero()[i].node) << "entry " << i;
      EXPECT_EQ(a.nonzero()[i].utility, b.nonzero()[i].utility)
          << "entry " << i;
    }
    return;
  }
  // Float-weighted utilities: scores agree to rounding dust, which can
  // reorder near-ties — compare node-keyed instead of position-keyed.
  auto by_node = [](const UtilityVector& vec) {
    std::vector<UtilityEntry> entries(vec.nonzero().begin(),
                                      vec.nonzero().end());
    std::sort(entries.begin(), entries.end(),
              [](const UtilityEntry& lhs, const UtilityEntry& rhs) {
                return lhs.node < rhs.node;
              });
    return entries;
  };
  const std::vector<UtilityEntry> ea = by_node(a);
  const std::vector<UtilityEntry> eb = by_node(b);
  for (size_t i = 0; i < ea.size(); ++i) {
    ASSERT_EQ(ea[i].node, eb[i].node) << "support mismatch at entry " << i;
    EXPECT_NEAR(ea[i].utility, eb[i].utility,
                1e-9 * std::max(1.0, std::fabs(eb[i].utility)))
        << "node " << ea[i].node;
  }
}

TEST(AffectedTargetsTest, EnumerationIsCompleteAndMatchesMembership) {
  for (bool directed : {false, true}) {
    Rng rng(directed ? 21u : 22u);
    auto base = ErdosRenyiGnm(30, 70, directed, rng);
    ASSERT_TRUE(base.ok());
    DynamicGraph graph(*base);
    CommonNeighborsUtility cn;
    AdamicAdarUtility aa;
    UtilityWorkspace workspace;
    for (int i = 0; i < 25; ++i) {
      const NodeId u = static_cast<NodeId>(rng.NextBounded(30));
      const NodeId v = static_cast<NodeId>(rng.NextBounded(30));
      if (u == v) continue;
      const DynamicGraph::StampedSnapshot before = graph.VersionedSnapshot();
      const bool added = !graph.HasEdge(u, v);
      ASSERT_TRUE((added ? graph.AddEdge(u, v) : graph.RemoveEdge(u, v)).ok());
      const DynamicGraph::StampedSnapshot after = graph.VersionedSnapshot();
      const EdgeDelta delta{u, v, added, after.version};

      const std::vector<NodeId> affected =
          AffectedTargets(*after.graph, *after.in_graph, delta);
      EXPECT_TRUE(std::is_sorted(affected.begin(), affected.end()));
      for (NodeId target = 0; target < 30; ++target) {
        const bool in_set =
            std::binary_search(affected.begin(), affected.end(), target);
        EXPECT_EQ(in_set,
                  EdgeDeltaAffectsTarget(*after.graph, delta, target))
            << "membership/enumeration disagree at target " << target;
        if (in_set) continue;
        // Completeness: an unflagged target's vector must be IDENTICAL
        // across the toggle, for both the constant-weight and the
        // degree-weighted utility.
        ExpectVectorsIdentical(cn.Compute(*before.graph, target, workspace),
                               cn.Compute(*after.graph, target, workspace),
                               /*bitwise=*/true);
        ExpectVectorsIdentical(aa.Compute(*before.graph, target, workspace),
                               aa.Compute(*after.graph, target, workspace),
                               /*bitwise=*/true);
      }
    }
  }
}

// ------------------------------------------------------ patch exact equality

/// Drives a random toggle sequence, maintaining every target's vector via
/// ApplyEdgeDelta (affected targets) or carry-over (unaffected), and
/// checks each step against a fresh Compute. Patched vectors feed the next
/// step, so per-step dust would compound — which is exactly what the
/// contract forbids.
void RunPatchEqualsComputeProperty(const UtilityFunction& utility,
                                   bool directed, bool bitwise,
                                   uint64_t seed) {
  Rng rng(seed);
  constexpr NodeId kNodes = 30;
  auto base = ErdosRenyiGnm(kNodes, 75, directed, rng);
  ASSERT_TRUE(base.ok());
  DynamicGraph graph(*base);
  UtilityWorkspace workspace;

  std::vector<UtilityVector> cached;
  cached.reserve(kNodes);
  const DynamicGraph::StampedSnapshot initial = graph.VersionedSnapshot();
  for (NodeId target = 0; target < kNodes; ++target) {
    cached.push_back(utility.Compute(*initial.graph, target, workspace));
  }

  int toggles = 0;
  while (toggles < 40) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(kNodes));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(kNodes));
    if (u == v) continue;
    const bool added = !graph.HasEdge(u, v);
    ASSERT_TRUE((added ? graph.AddEdge(u, v) : graph.RemoveEdge(u, v)).ok());
    ++toggles;
    const DynamicGraph::StampedSnapshot snap = graph.VersionedSnapshot();
    const EdgeDelta delta{u, v, added, snap.version};
    for (NodeId target = 0; target < kNodes; ++target) {
      // The utility owns the affectedness test (Jaccard widens the
      // structural rule by the cached support); an entry the test clears
      // must carry over EXACTLY, which the fresh-Compute comparison below
      // enforces for kept and patched targets alike.
      if (utility.EdgeDeltaAffects(*snap.graph, delta, target,
                                   cached[target])) {
        cached[target] = utility.ApplyEdgeDelta(*snap.graph, delta, target,
                                                cached[target], workspace);
      }
      ExpectVectorsIdentical(cached[target],
                             utility.Compute(*snap.graph, target, workspace),
                             bitwise);
      if (::testing::Test::HasFailure()) {
        FAIL() << utility.name() << (directed ? " directed" : " undirected")
               << ": patched vector diverged at toggle " << toggles
               << " target " << target;
      }
    }
  }
}

TEST(ApplyEdgeDeltaTest, CommonNeighborsPatchIsBitwiseExact) {
  CommonNeighborsUtility cn;
  RunPatchEqualsComputeProperty(cn, /*directed=*/false, /*bitwise=*/true, 31);
  RunPatchEqualsComputeProperty(cn, /*directed=*/true, /*bitwise=*/true, 32);
}

TEST(ApplyEdgeDeltaTest, AdamicAdarPatchMatchesFreshCompute) {
  AdamicAdarUtility aa;
  RunPatchEqualsComputeProperty(aa, /*directed=*/false, /*bitwise=*/false, 33);
  RunPatchEqualsComputeProperty(aa, /*directed=*/true, /*bitwise=*/false, 34);
}

TEST(ApplyEdgeDeltaTest, ResourceAllocationPatchMatchesFreshCompute) {
  ResourceAllocationUtility ra;
  RunPatchEqualsComputeProperty(ra, /*directed=*/false, /*bitwise=*/false, 35);
  RunPatchEqualsComputeProperty(ra, /*directed=*/true, /*bitwise=*/false, 36);
}

TEST(ApplyEdgeDeltaTest, JaccardPatchIsBitwiseExact) {
  // The union-size term is recovered and re-derived through Compute's own
  // float expression, so even this ratio utility patches bitwise (see
  // PatchJaccardUtility; the directed runs exercise the documented
  // recompute route for affected entries instead). The chained property
  // also exercises JaccardUtility::EdgeDeltaAffects: a kept entry whose
  // endpoint-degree or hidden-support dependence was missed would diverge
  // from the fresh Compute here.
  JaccardUtility jaccard;
  RunPatchEqualsComputeProperty(jaccard, /*directed=*/false, /*bitwise=*/true,
                                38);
  RunPatchEqualsComputeProperty(jaccard, /*directed=*/true, /*bitwise=*/true,
                                39);
}

/// Multi-delta variant: accumulates windows of 1–4 toggles and repairs
/// every affected target with ONE ApplyEdgeDeltaBatch call against the
/// post-window snapshot (no intermediate states), checking each window
/// against a fresh Compute. Patched vectors feed the next window.
void RunBatchPatchEqualsComputeProperty(const UtilityFunction& utility,
                                        bool directed, bool bitwise,
                                        uint64_t seed) {
  Rng rng(seed);
  constexpr NodeId kNodes = 30;
  auto base = ErdosRenyiGnm(kNodes, 75, directed, rng);
  ASSERT_TRUE(base.ok());
  DynamicGraph graph(*base);
  UtilityWorkspace workspace;

  std::vector<UtilityVector> cached;
  cached.reserve(kNodes);
  const DynamicGraph::StampedSnapshot initial = graph.VersionedSnapshot();
  for (NodeId target = 0; target < kNodes; ++target) {
    cached.push_back(utility.Compute(*initial.graph, target, workspace));
  }

  for (int round = 0; round < 15; ++round) {
    const size_t window_size = 1 + rng.NextBounded(4);
    std::vector<EdgeDelta> window;
    while (window.size() < window_size) {
      const NodeId u = static_cast<NodeId>(rng.NextBounded(kNodes));
      const NodeId v = static_cast<NodeId>(rng.NextBounded(kNodes));
      if (u == v) continue;
      const bool added = !graph.HasEdge(u, v);
      ASSERT_TRUE((added ? graph.AddEdge(u, v) : graph.RemoveEdge(u, v)).ok());
      window.push_back(EdgeDelta{u, v, added, graph.version()});
    }
    const DynamicGraph::StampedSnapshot snap = graph.VersionedSnapshot();
    for (NodeId target = 0; target < kNodes; ++target) {
      // The window form is what the service's repair gate uses — a
      // per-delta OR can miss pre-window state (Jaccard's directed
      // hidden-support clause).
      if (utility.EdgeDeltaWindowAffects(*snap.graph, window, target,
                                         cached[target])) {
        cached[target] = utility.ApplyEdgeDeltaBatch(*snap.graph, window,
                                                     target, cached[target],
                                                     workspace);
      }
      ExpectVectorsIdentical(cached[target],
                             utility.Compute(*snap.graph, target, workspace),
                             bitwise);
      if (::testing::Test::HasFailure()) {
        FAIL() << utility.name() << (directed ? " directed" : " undirected")
               << ": batch-patched vector diverged at round " << round
               << " (window " << window.size() << ") target " << target;
      }
    }
  }
}

TEST(ApplyEdgeDeltaBatchTest, CommonNeighborsWindowPatchIsBitwiseExact) {
  CommonNeighborsUtility cn;
  RunBatchPatchEqualsComputeProperty(cn, /*directed=*/false, /*bitwise=*/true,
                                     131);
  RunBatchPatchEqualsComputeProperty(cn, /*directed=*/true, /*bitwise=*/true,
                                     132);
}

TEST(ApplyEdgeDeltaBatchTest, AdamicAdarWindowPatchMatchesFreshCompute) {
  AdamicAdarUtility aa;
  RunBatchPatchEqualsComputeProperty(aa, /*directed=*/false, /*bitwise=*/false,
                                     133);
  RunBatchPatchEqualsComputeProperty(aa, /*directed=*/true, /*bitwise=*/false,
                                     134);
}

TEST(ApplyEdgeDeltaBatchTest, ResourceAllocationWindowPatchMatchesFreshCompute) {
  ResourceAllocationUtility ra;
  RunBatchPatchEqualsComputeProperty(ra, /*directed=*/false, /*bitwise=*/false,
                                     135);
  RunBatchPatchEqualsComputeProperty(ra, /*directed=*/true, /*bitwise=*/false,
                                     136);
}

TEST(ApplyEdgeDeltaBatchTest, JaccardWindowPatchIsBitwiseExact) {
  JaccardUtility jaccard;
  RunBatchPatchEqualsComputeProperty(jaccard, /*directed=*/false,
                                     /*bitwise=*/true, 137);
  RunBatchPatchEqualsComputeProperty(jaccard, /*directed=*/true,
                                     /*bitwise=*/true, 138);
}

TEST(ApplyEdgeDeltaBatchTest, JaccardDirectedHiddenSupportSurfacesAcrossWindow) {
  // Regression: candidate 5 has arcs 1->5 and 2->5, out-degree 0, and full
  // intersection with target 0 (N_out(0) = {1,2}) — suppressed by
  // Compute's uni > 0 guard, hence absent from the cached support. A
  // window {add 5->3, add 5->4} moves 5's out-degree 0 -> 2 without any
  // structural contact with target 0; a per-delta OutDegree test sees 2
  // for both deltas and would KEEP the stale vector, but the window form
  // nets the arcs back to the pre-window degree 0 and must flag it.
  GraphBuilder builder(/*directed=*/true);
  builder.SetNumNodes(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 5);
  builder.AddEdge(2, 5);
  DynamicGraph graph(builder.Build());
  JaccardUtility jaccard;
  UtilityWorkspace workspace;
  const DynamicGraph::StampedSnapshot before = graph.VersionedSnapshot();
  const UtilityVector cached = jaccard.Compute(*before.graph, 0, workspace);
  EXPECT_TRUE(cached.nonzero().empty()) << "candidate 5 must start hidden";
  ASSERT_TRUE(graph.AddEdge(5, 3).ok());
  ASSERT_TRUE(graph.AddEdge(5, 4).ok());
  const DynamicGraph::StampedSnapshot after = graph.VersionedSnapshot();
  const std::vector<EdgeDelta> window = {{5, 3, true, after.version - 1},
                                         {5, 4, true, after.version}};
  ASSERT_TRUE(
      jaccard.EdgeDeltaWindowAffects(*after.graph, window, 0, cached))
      << "window form missed the 0 -> 2 out-degree crossing";
  ExpectVectorsIdentical(
      jaccard.ApplyEdgeDeltaBatch(*after.graph, window, 0, cached, workspace),
      jaccard.Compute(*after.graph, 0, workspace), /*bitwise=*/true);
  EXPECT_FALSE(jaccard.Compute(*after.graph, 0, workspace).nonzero().empty())
      << "candidate 5 should have surfaced";
}

// ------------------------------------------------- affect-filtered windows

/// Same chained-window drive as RunBatchPatchEqualsComputeProperty, but
/// every affected target is repaired with the AFFECT-FILTERED sub-window
/// (UtilityFunction::FilterAffectingWindow) instead of the full window —
/// the filter's exactness contract under test. Windows are widened (up to
/// 8 toggles) and biased toward a hot node pool so most deltas are
/// irrelevant to most targets, making the filter actually drop things.
void RunFilteredPatchEqualsComputeProperty(const UtilityFunction& utility,
                                           bool directed, bool bitwise,
                                           uint64_t seed) {
  Rng rng(seed);
  constexpr NodeId kNodes = 30;
  auto base = ErdosRenyiGnm(kNodes, 75, directed, rng);
  ASSERT_TRUE(base.ok());
  DynamicGraph graph(*base);
  UtilityWorkspace workspace;

  std::vector<UtilityVector> cached;
  cached.reserve(kNodes);
  const DynamicGraph::StampedSnapshot initial = graph.VersionedSnapshot();
  for (NodeId target = 0; target < kNodes; ++target) {
    cached.push_back(utility.Compute(*initial.graph, target, workspace));
  }

  uint64_t dropped = 0;
  for (int round = 0; round < 12; ++round) {
    const size_t window_size = 1 + rng.NextBounded(8);
    std::vector<EdgeDelta> window;
    while (window.size() < window_size) {
      // Skew: most toggles land inside the hot half of the node space.
      const NodeId span = rng.NextBounded(4) == 0 ? kNodes : kNodes / 2;
      const NodeId u = static_cast<NodeId>(rng.NextBounded(span));
      const NodeId v = static_cast<NodeId>(rng.NextBounded(span));
      if (u == v) continue;
      const bool added = !graph.HasEdge(u, v);
      ASSERT_TRUE((added ? graph.AddEdge(u, v) : graph.RemoveEdge(u, v)).ok());
      window.push_back(EdgeDelta{u, v, added, graph.version()});
    }
    const DynamicGraph::StampedSnapshot snap = graph.VersionedSnapshot();
    std::vector<EdgeDelta> filtered;
    for (NodeId target = 0; target < kNodes; ++target) {
      if (utility.EdgeDeltaWindowAffects(*snap.graph, window, target,
                                         cached[target])) {
        filtered.clear();
        utility.FilterAffectingWindow(*snap.graph, window, target,
                                      cached[target], filtered);
        // Consistency with the affectedness gate: an affecting window
        // never filters to empty (the service's empty-filter branch is
        // defensive only).
        ASSERT_FALSE(filtered.empty())
            << utility.name() << ": affecting window filtered to empty at "
            << "round " << round << " target " << target;
        dropped += window.size() - filtered.size();
        cached[target] = utility.ApplyEdgeDeltaBatch(
            *snap.graph, filtered, target, cached[target], workspace);
      }
      ExpectVectorsIdentical(cached[target],
                             utility.Compute(*snap.graph, target, workspace),
                             bitwise);
      if (::testing::Test::HasFailure()) {
        FAIL() << utility.name() << (directed ? " directed" : " undirected")
               << ": filtered-window patch diverged at round " << round
               << " (window " << window.size() << ") target " << target;
      }
    }
  }
  // The property is vacuous if the filter never drops anything.
  EXPECT_GT(dropped, 0u) << utility.name()
                         << ": filter dropped no deltas across the drive";
}

TEST(FilterAffectingWindowTest, CommonNeighborsFilteredPatchIsBitwiseExact) {
  CommonNeighborsUtility cn;
  RunFilteredPatchEqualsComputeProperty(cn, /*directed=*/false,
                                        /*bitwise=*/true, 231);
  RunFilteredPatchEqualsComputeProperty(cn, /*directed=*/true,
                                        /*bitwise=*/true, 232);
}

TEST(FilterAffectingWindowTest, AdamicAdarFilteredPatchMatchesFreshCompute) {
  AdamicAdarUtility aa;
  RunFilteredPatchEqualsComputeProperty(aa, /*directed=*/false,
                                        /*bitwise=*/false, 233);
  RunFilteredPatchEqualsComputeProperty(aa, /*directed=*/true,
                                        /*bitwise=*/false, 234);
}

TEST(FilterAffectingWindowTest,
     ResourceAllocationFilteredPatchMatchesFreshCompute) {
  ResourceAllocationUtility ra;
  RunFilteredPatchEqualsComputeProperty(ra, /*directed=*/false,
                                        /*bitwise=*/false, 235);
  RunFilteredPatchEqualsComputeProperty(ra, /*directed=*/true,
                                        /*bitwise=*/false, 236);
}

TEST(FilterAffectingWindowTest, JaccardFilteredPatchIsBitwiseExact) {
  // Undirected Jaccard widens the structural filter by its cached
  // support (candidate-side degrees matter); directed Jaccard keeps the
  // whole window (its repairs recompute). Both must stay exact.
  JaccardUtility jaccard;
  RunFilteredPatchEqualsComputeProperty(jaccard, /*directed=*/false,
                                        /*bitwise=*/true, 238);
}

TEST(FilterAffectingWindowTest, StructuralFilterKeepsEverNeighborDeltas) {
  // The subtle completeness case: the window removes the target's edge to
  // x, so the final snapshot no longer shows x as a neighbor — but the
  // batch engine must still reconstruct x's pre-window contribution, so
  // deltas with tail x MUST be kept (the "ever-neighbors" clause).
  GraphBuilder builder(false);
  builder.SetNumNodes(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 4);
  CsrGraph before = builder.Build();
  DynamicGraph graph(before);
  ASSERT_TRUE(graph.RemoveEdge(0, 1).ok());  // target loses neighbor 1
  ASSERT_TRUE(graph.AddEdge(1, 5).ok());     // ever-neighbor 1 mutates
  ASSERT_TRUE(graph.AddEdge(3, 5).ok());     // unrelated to target 0
  const DynamicGraph::StampedSnapshot snap = graph.VersionedSnapshot();
  const std::vector<EdgeDelta> window = {
      EdgeDelta{0, 1, /*added=*/false, 1},
      EdgeDelta{1, 5, /*added=*/true, 2},
      EdgeDelta{3, 5, /*added=*/true, 3},
  };
  std::vector<EdgeDelta> filtered;
  FilterAffectingDeltas(*snap.graph, window, /*target=*/0, filtered);
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].u, 0u);  // incident to target
  EXPECT_EQ(filtered[1].u, 1u);  // ever-neighbor, kept though edge is gone
}

TEST(ApplyEdgeDeltaTest, DefaultImplementationIsTheFullRecompute) {
  // A utility without incremental support must still be correct through
  // the base-class ApplyEdgeDelta / ApplyEdgeDeltaBatch (they recompute).
  Rng rng(37);
  auto base = ErdosRenyiGnm(15, 30, /*directed=*/false, rng);
  ASSERT_TRUE(base.ok());
  DynamicGraph graph(*base);
  PreferentialAttachmentUtility pa;
  EXPECT_FALSE(pa.SupportsIncrementalUpdate());
  EXPECT_FALSE(pa.SupportsIncrementalBatch());
  UtilityWorkspace workspace;
  const DynamicGraph::StampedSnapshot before = graph.VersionedSnapshot();
  const UtilityVector cached = pa.Compute(*before.graph, 0, workspace);
  ASSERT_TRUE(graph.AddEdge(3, 9).ok() || graph.RemoveEdge(3, 9).ok());
  const DynamicGraph::StampedSnapshot after = graph.VersionedSnapshot();
  const EdgeDelta delta{3, 9, true, after.version};
  ExpectVectorsIdentical(
      pa.ApplyEdgeDelta(*after.graph, delta, 0, cached, workspace),
      pa.Compute(*after.graph, 0, workspace), /*bitwise=*/true);
  ExpectVectorsIdentical(
      pa.ApplyEdgeDeltaBatch(*after.graph,
                             std::span<const EdgeDelta>(&delta, 1), 0, cached,
                             workspace),
      pa.Compute(*after.graph, 0, workspace), /*bitwise=*/true);
}

// ------------------------------------------------- sensitivity-probe parity

TEST(SensitivityProbeTest, WorkspaceOverloadAgreesWithConvenienceForm) {
  Rng graph_rng(41);
  auto g = ErdosRenyiGnm(20, 45, /*directed=*/false, graph_rng);
  ASSERT_TRUE(g.ok());
  CommonNeighborsUtility cn;
  UtilityWorkspace workspace;
  // Identical rng seeds → identical probe pairs → identical estimates
  // (CN's patches are bitwise-exact, so even max/mean agree exactly).
  Rng rng_a(43), rng_b(43);
  const SensitivityEstimate with_ws =
      EstimateEdgeSensitivity(*g, cn, 0, 25, rng_a, /*relaxed=*/true,
                              workspace);
  const SensitivityEstimate convenience =
      EstimateEdgeSensitivity(*g, cn, 0, 25, rng_b, /*relaxed=*/true);
  EXPECT_EQ(with_ws.samples, convenience.samples);
  EXPECT_DOUBLE_EQ(with_ws.max_l1, convenience.max_l1);
  EXPECT_DOUBLE_EQ(with_ws.mean_l1, convenience.mean_l1);
  EXPECT_LE(with_ws.max_l1, cn.SensitivityBound(*g));
}

// ---------------------------------------------------- service differential

ServiceOptions IncrementalServiceOptions(bool enable_delta_repair) {
  ServiceOptions options;
  options.release_epsilon = 0.25;
  options.per_user_budget = 1e6;
  options.cache_capacity = 256;
  options.num_shards = 4;
  options.seed = 2026;
  options.enable_delta_repair = enable_delta_repair;
  return options;
}

TEST(IncrementalServiceTest, DeltaModeServesIdenticallyToBaseline) {
  // Common neighbors has a graph-independent Δf and a bitwise-exact patch,
  // so the delta-repaired service and the recompute-everything baseline
  // must serve BYTE-IDENTICAL sequences from identical seeds — the
  // strongest possible statement that repair changes cost, not outcomes.
  Rng graph_rng(51);
  auto weights = PowerLawWeights(200, 2.2);
  auto base = ChungLu(weights, weights, 900, /*directed=*/false, graph_rng);
  ASSERT_TRUE(base.ok());
  DynamicGraph graph_delta(*base);
  DynamicGraph graph_baseline(*base);
  RecommendationService delta_service(
      &graph_delta, std::make_unique<CommonNeighborsUtility>(),
      IncrementalServiceOptions(true));
  RecommendationService baseline_service(
      &graph_baseline, std::make_unique<CommonNeighborsUtility>(),
      IncrementalServiceOptions(false));

  Rng ops_rng(53);
  for (int op = 0; op < 1200; ++op) {
    if (ops_rng.NextBernoulli(0.12)) {
      const NodeId u = static_cast<NodeId>(ops_rng.NextBounded(200));
      const NodeId v = static_cast<NodeId>(ops_rng.NextBounded(200));
      if (u == v) continue;
      if (graph_delta.HasEdge(u, v)) {
        ASSERT_TRUE(delta_service.RemoveEdge(u, v).ok());
        ASSERT_TRUE(baseline_service.RemoveEdge(u, v).ok());
      } else {
        ASSERT_TRUE(delta_service.AddEdge(u, v).ok());
        ASSERT_TRUE(baseline_service.AddEdge(u, v).ok());
      }
    } else if (ops_rng.NextBernoulli(0.2)) {
      const NodeId user = static_cast<NodeId>(ops_rng.NextBounded(200));
      auto list_a = delta_service.ServeList(user, 3);
      auto list_b = baseline_service.ServeList(user, 3);
      ASSERT_EQ(list_a.ok(), list_b.ok()) << "op " << op;
      if (!list_a.ok()) continue;
      ASSERT_EQ(list_a->picks.size(), list_b->picks.size());
      for (size_t p = 0; p < list_a->picks.size(); ++p) {
        ASSERT_EQ(list_a->picks[p].node, list_b->picks[p].node)
            << "op " << op << " pick " << p;
      }
    } else {
      const NodeId user = static_cast<NodeId>(ops_rng.NextBounded(200));
      auto rec_a = delta_service.ServeRecommendation(user);
      auto rec_b = baseline_service.ServeRecommendation(user);
      ASSERT_EQ(rec_a.ok(), rec_b.ok()) << "op " << op;
      if (rec_a.ok()) ASSERT_EQ(*rec_a, *rec_b) << "op " << op;
    }
  }

  const ServiceStats delta_stats = delta_service.stats();
  const ServiceStats baseline_stats = baseline_service.stats();
  EXPECT_EQ(delta_stats.served, baseline_stats.served);
  EXPECT_EQ(delta_stats.refused_budget, baseline_stats.refused_budget);
  // The differential is only meaningful if the repair paths actually ran.
  EXPECT_GT(delta_stats.delta_kept, 0u);
  EXPECT_GT(delta_stats.delta_patched, 0u);
  EXPECT_EQ(delta_stats.cache_invalidations, 0u);
  EXPECT_EQ(baseline_stats.delta_kept, 0u);
  EXPECT_EQ(baseline_stats.delta_patched, 0u);
  EXPECT_GT(baseline_stats.cache_invalidations, 0u);
  // Delta repair converts baseline recompute-misses into kept/patched
  // hits; both sides account every lookup exactly once.
  EXPECT_EQ(delta_stats.cache_hits + delta_stats.cache_misses,
            baseline_stats.cache_hits + baseline_stats.cache_misses);
  EXPECT_GT(delta_stats.cache_hits, baseline_stats.cache_hits);
}

TEST(IncrementalServiceTest, CompactedJournalFallsBackAndKeepsServing) {
  Rng graph_rng(61);
  auto base = ErdosRenyiGnm(60, 180, /*directed=*/false, graph_rng);
  ASSERT_TRUE(base.ok());
  DynamicGraph graph(*base);
  // A 2-entry journal: any burst of 3+ toggles between two serves of the
  // same user outruns it.
  graph.SetJournalCapacity(2);
  RecommendationService service(&graph,
                                std::make_unique<CommonNeighborsUtility>(),
                                IncrementalServiceOptions(true));
  Rng rng(63);
  ASSERT_TRUE(service.ServeRecommendation(0, rng).ok());
  Rng mut_rng(65);
  int toggles = 0;
  while (toggles < 6) {
    const NodeId u = static_cast<NodeId>(mut_rng.NextBounded(60));
    const NodeId v = static_cast<NodeId>(mut_rng.NextBounded(60));
    if (u == v) continue;
    if (graph.HasEdge(u, v)) {
      ASSERT_TRUE(service.RemoveEdge(u, v).ok());
    } else {
      ASSERT_TRUE(service.AddEdge(u, v).ok());
    }
    ++toggles;
  }
  ASSERT_TRUE(service.ServeRecommendation(0, rng).ok());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.journal_fallbacks, 1u);
  EXPECT_EQ(stats.cache_invalidations, 1u);
  EXPECT_EQ(stats.delta_patched + stats.delta_kept + stats.delta_recomputed,
            0u);
  // The repaired entry is current again: an immediate re-serve is a plain
  // hit.
  ASSERT_TRUE(service.ServeRecommendation(0, rng).ok());
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(IncrementalServiceTest, AddNodeInvalidatesThroughTheFallback) {
  // A node addition changes every target's candidate count; no delta can
  // express it, so the journal clears and the next visit recomputes.
  DynamicGraph graph(8, /*directed=*/false);
  for (NodeId v = 1; v < 8; ++v) ASSERT_TRUE(graph.AddEdge(0, v).ok());
  ASSERT_TRUE(graph.AddEdge(1, 2).ok());
  RecommendationService service(&graph,
                                std::make_unique<CommonNeighborsUtility>(),
                                IncrementalServiceOptions(true));
  Rng rng(71);
  ASSERT_TRUE(service.ServeRecommendation(1, rng).ok());
  graph.AddNode();
  ASSERT_TRUE(service.ServeRecommendation(1, rng).ok());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.journal_fallbacks, 1u);
  EXPECT_EQ(stats.delta_kept + stats.delta_patched, 0u);
}

TEST(IncrementalServiceTest, MultiDeltaWindowPatchesOnlyAffectedEntries) {
  // Two toggles land between serves: the affected user is patched in one
  // ApplyEdgeDeltaBatch pass (sequential multi-delta patching — counted
  // in delta_patched, no recompute), the unaffected user is still kept.
  DynamicGraph graph(10, /*directed=*/false);
  // 0-1-2 triangle-ish cluster; 5-6-7 cluster far away.
  ASSERT_TRUE(graph.AddEdge(0, 1).ok());
  ASSERT_TRUE(graph.AddEdge(1, 2).ok());
  ASSERT_TRUE(graph.AddEdge(0, 3).ok());
  ASSERT_TRUE(graph.AddEdge(3, 2).ok());
  ASSERT_TRUE(graph.AddEdge(5, 6).ok());
  ASSERT_TRUE(graph.AddEdge(6, 7).ok());
  ASSERT_TRUE(graph.AddEdge(5, 8).ok());
  ASSERT_TRUE(graph.AddEdge(8, 7).ok());
  ServiceOptions options = IncrementalServiceOptions(true);
  options.num_shards = 1;
  RecommendationService service(
      &graph, std::make_unique<CommonNeighborsUtility>(), options);
  Rng rng(73);
  ASSERT_TRUE(service.ServeRecommendation(0, rng).ok());
  ASSERT_TRUE(service.ServeRecommendation(5, rng).ok());
  // Batch of two toggles inside the 0-cluster.
  ASSERT_TRUE(service.AddEdge(1, 3).ok());
  ASSERT_TRUE(service.AddEdge(0, 4).ok());
  ASSERT_TRUE(service.ServeRecommendation(0, rng).ok());
  ASSERT_TRUE(service.ServeRecommendation(5, rng).ok());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.delta_patched, 1u);
  EXPECT_EQ(stats.delta_kept, 1u);
  EXPECT_EQ(stats.delta_recomputed, 0u);
}

TEST(IncrementalServiceTest, UnaffectedEntryKeepsItsFrozenSampler) {
  // The headline O(1) path: a toggle elsewhere must not cost a cached
  // user their frozen alias sampler.
  DynamicGraph graph(10, /*directed=*/false);
  ASSERT_TRUE(graph.AddEdge(0, 1).ok());
  ASSERT_TRUE(graph.AddEdge(0, 2).ok());
  ASSERT_TRUE(graph.AddEdge(1, 3).ok());
  ASSERT_TRUE(graph.AddEdge(2, 3).ok());
  ASSERT_TRUE(graph.AddEdge(2, 4).ok());
  ASSERT_TRUE(graph.AddEdge(6, 7).ok());
  ServiceOptions options = IncrementalServiceOptions(true);
  options.num_shards = 1;
  RecommendationService service(
      &graph, std::make_unique<CommonNeighborsUtility>(), options);
  Rng rng(81);
  ASSERT_TRUE(service.ServeRecommendation(0, rng).ok());  // freeze
  ASSERT_TRUE(service.ServeRecommendation(0, rng).ok());  // reuse
  EXPECT_EQ(service.stats().sampler_reuses, 1u);
  // Toggle far from user 0's 2-hop influence set ({0} ∪ N(0)).
  ASSERT_TRUE(service.AddEdge(6, 8).ok());
  ASSERT_TRUE(service.ServeRecommendation(0, rng).ok());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.delta_kept, 1u);
  EXPECT_EQ(stats.sampler_reuses, 2u)
      << "kept entry lost its frozen sampler on an unrelated toggle";
  EXPECT_EQ(stats.cache_misses, 1u);
}

TEST(IncrementalServiceTest, AffectFilterPatchesThroughWideSkewedWindows) {
  // The recompute cliff this PR removes: a wide window of writes landing
  // far from a cached user used to push the repair past max_patch_window
  // and force a full recompute, even though only ONE delta mattered.
  // With the affect filter, max_patch_window bounds RELEVANT deltas: the
  // 41-toggle window filters to a single delta and takes the O(Δ) patch.
  const auto build_graph = [] {
    auto graph = std::make_unique<DynamicGraph>(70, /*directed=*/false);
    EXPECT_TRUE(graph->AddEdge(0, 1).ok());
    EXPECT_TRUE(graph->AddEdge(0, 2).ok());
    EXPECT_TRUE(graph->AddEdge(1, 3).ok());
    EXPECT_TRUE(graph->AddEdge(2, 3).ok());
    graph->SetJournalCapacity(256);
    return graph;
  };
  const auto drive = [](RecommendationService& service, Rng& rng) {
    ASSERT_TRUE(service.ServeRecommendation(0, rng).ok());
    // One toggle inside user 0's neighborhood...
    ASSERT_TRUE(service.AddEdge(1, 4).ok());
    // ...buried under 40 writes in a far-away hot spot (> max_patch_window).
    for (NodeId i = 0; i < 40; ++i) {
      ASSERT_TRUE(service.AddEdge(20, 21 + i).ok());
    }
    ASSERT_TRUE(service.ServeRecommendation(0, rng).ok());
  };

  ServiceOptions options = IncrementalServiceOptions(true);
  options.num_shards = 1;
  ASSERT_EQ(options.max_patch_window, 32u);
  ASSERT_TRUE(options.enable_affect_filter);
  {
    auto graph = build_graph();
    RecommendationService service(
        graph.get(), std::make_unique<CommonNeighborsUtility>(), options);
    Rng rng(91);
    drive(service, rng);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.delta_patched, 1u);
    EXPECT_EQ(stats.delta_recomputed, 0u) << "recompute cliff is back";
    EXPECT_EQ(stats.filter_dropped_deltas, 40u);
  }
  {
    // Contrast: same traffic with the filter off is the PR 5 behavior —
    // the raw window width exceeds max_patch_window and recomputes.
    options.enable_affect_filter = false;
    auto graph = build_graph();
    RecommendationService service(
        graph.get(), std::make_unique<CommonNeighborsUtility>(), options);
    Rng rng(91);
    drive(service, rng);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.delta_patched, 0u);
    EXPECT_EQ(stats.delta_recomputed, 1u);
    EXPECT_EQ(stats.filter_dropped_deltas, 0u);
  }
}

TEST(IncrementalServiceTest, DirectedJaccardKeepsEntriesUntouchedByFarWrites) {
  // Regression for the directed-Jaccard affectedness trap: the old
  // hidden-support clause flagged EVERY cached entry whenever any tail
  // crossed out of degree zero anywhere in the graph, recomputing all of
  // them. The narrowed clause only fires when the target can actually
  // 2-hop-reach the crossing tail, so far-away writes keep the entry.
  auto graph = std::make_unique<DynamicGraph>(12, /*directed=*/true);
  ASSERT_TRUE(graph->AddEdge(0, 1).ok());
  ASSERT_TRUE(graph->AddEdge(0, 2).ok());
  ASSERT_TRUE(graph->AddEdge(3, 1).ok());  // candidate 3: I=1, uni=2
  ASSERT_TRUE(graph->AddEdge(8, 9).ok());
  ServiceOptions options = IncrementalServiceOptions(true);
  options.num_shards = 1;
  RecommendationService service(graph.get(),
                                std::make_unique<JaccardUtility>(), options);
  Rng rng(93);
  ASSERT_TRUE(service.ServeRecommendation(0, rng).ok());
  // Tail 6 crosses OUT of degree zero — the old clause recomputed user
  // 0's entry for this; 0 cannot 2-hop-reach 6, so it must be kept.
  ASSERT_TRUE(service.AddEdge(6, 7).ok());
  ASSERT_TRUE(service.ServeRecommendation(0, rng).ok());
  // Tail 8 falls back TO degree zero far away: also kept.
  ASSERT_TRUE(service.RemoveEdge(8, 9).ok());
  ASSERT_TRUE(service.ServeRecommendation(0, rng).ok());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.delta_kept, 2u)
      << "directed Jaccard recomputed entries far writes cannot touch";
  EXPECT_EQ(stats.delta_recomputed, 0u);
  EXPECT_EQ(stats.delta_patched, 0u);
}

TEST(IncrementalServiceTest, JaccardServesIdenticallyToBaseline) {
  // Jaccard's patch is bitwise (intersection recovered, union re-derived),
  // so the same byte-identical differential as common neighbors must hold
  // — this drives JaccardUtility::EdgeDeltaAffects through the real
  // repair path, where a missed union-term dependence would surface as a
  // diverging serve.
  Rng graph_rng(151);
  auto weights = PowerLawWeights(150, 2.2);
  auto base = ChungLu(weights, weights, 700, /*directed=*/false, graph_rng);
  ASSERT_TRUE(base.ok());
  DynamicGraph graph_delta(*base);
  DynamicGraph graph_baseline(*base);
  RecommendationService delta_service(&graph_delta,
                                      std::make_unique<JaccardUtility>(),
                                      IncrementalServiceOptions(true));
  RecommendationService baseline_service(&graph_baseline,
                                         std::make_unique<JaccardUtility>(),
                                         IncrementalServiceOptions(false));
  Rng ops_rng(153);
  for (int op = 0; op < 800; ++op) {
    if (ops_rng.NextBernoulli(0.15)) {
      const NodeId u = static_cast<NodeId>(ops_rng.NextBounded(150));
      const NodeId v = static_cast<NodeId>(ops_rng.NextBounded(150));
      if (u == v) continue;
      if (graph_delta.HasEdge(u, v)) {
        ASSERT_TRUE(delta_service.RemoveEdge(u, v).ok());
        ASSERT_TRUE(baseline_service.RemoveEdge(u, v).ok());
      } else {
        ASSERT_TRUE(delta_service.AddEdge(u, v).ok());
        ASSERT_TRUE(baseline_service.AddEdge(u, v).ok());
      }
    } else {
      const NodeId user = static_cast<NodeId>(ops_rng.NextBounded(150));
      auto rec_a = delta_service.ServeRecommendation(user);
      auto rec_b = baseline_service.ServeRecommendation(user);
      ASSERT_EQ(rec_a.ok(), rec_b.ok()) << "op " << op;
      if (rec_a.ok()) ASSERT_EQ(*rec_a, *rec_b) << "op " << op;
    }
  }
  const ServiceStats stats = delta_service.stats();
  EXPECT_GT(stats.delta_kept, 0u);
  EXPECT_GT(stats.delta_patched, 0u);
  EXPECT_EQ(stats.cache_invalidations, 0u);
}

TEST(IncrementalServiceTest, JournalAwareEvictionPurgesDoomedEntries) {
  // Entries the journal floor passed can never be delta-repaired; at
  // capacity they are purged wholesale (doomed_evictions) BEFORE any LRU
  // choice, so later visits to those users are plain misses — under the
  // old LRU-only policy the lingering doomed entries would be visited in
  // place and land in journal_fallbacks one by one.
  Rng graph_rng(161);
  auto base = ErdosRenyiGnm(60, 180, /*directed=*/false, graph_rng);
  ASSERT_TRUE(base.ok());
  DynamicGraph graph(*base);
  graph.SetJournalCapacity(2);
  ServiceOptions options = IncrementalServiceOptions(true);
  options.num_shards = 1;
  options.cache_capacity = 3;
  RecommendationService service(&graph,
                                std::make_unique<CommonNeighborsUtility>(),
                                options);
  Rng rng(163);
  ASSERT_TRUE(service.ServeRecommendation(0, rng).ok());
  ASSERT_TRUE(service.ServeRecommendation(1, rng).ok());
  ASSERT_TRUE(service.ServeRecommendation(2, rng).ok());
  // Outrun the 2-entry journal: every cached entry is now doomed.
  Rng mut_rng(165);
  int toggles = 0;
  while (toggles < 4) {
    const NodeId u = static_cast<NodeId>(mut_rng.NextBounded(60));
    const NodeId v = static_cast<NodeId>(mut_rng.NextBounded(60));
    if (u == v) continue;
    if (graph.HasEdge(u, v)) {
      ASSERT_TRUE(service.RemoveEdge(u, v).ok());
    } else {
      ASSERT_TRUE(service.AddEdge(u, v).ok());
    }
    ++toggles;
  }
  // The next insert hits capacity and purges all three doomed entries.
  ASSERT_TRUE(service.ServeRecommendation(3, rng).ok());
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.doomed_evictions, 3u);
  EXPECT_EQ(stats.journal_fallbacks, 0u);
  // Revisiting a purged user is a plain miss, not a fallback recompute.
  ASSERT_TRUE(service.ServeRecommendation(0, rng).ok());
  stats = service.stats();
  EXPECT_EQ(stats.journal_fallbacks, 0u);
  EXPECT_EQ(stats.cache_invalidations, 0u);
  EXPECT_EQ(stats.cache_misses, 5u);  // 4 first visits + user 0's re-miss
}

// ------------------------------------------------------------- TSAN stress

TEST(IncrementalConcurrencyTest, ConcurrentMutateAndDeltaRepairServes) {
  // Mutators hammer the graph (through the service AND directly — the
  // journal sees both) while servers drive the delta-repair path. Run
  // under ThreadSanitizer by ci/sanitize.sh; the functional assertions
  // mirror the PR 2 stress suite: exact budgets, exact stat sums, no
  // unexpected failure modes.
  constexpr NodeId kNodes = 200;
  Rng graph_rng(91);
  auto weights = PowerLawWeights(kNodes, 2.2);
  auto base = ChungLu(weights, weights, 1000, /*directed=*/false, graph_rng);
  ASSERT_TRUE(base.ok());
  DynamicGraph graph(*base);
  ServiceOptions options;
  options.release_epsilon = 0.25;
  options.per_user_budget = 3.0;  // 12 releases per user
  options.cache_capacity = 512;
  options.num_shards = 8;
  options.seed = 93;
  RecommendationService service(
      &graph, std::make_unique<CommonNeighborsUtility>(), options);

  constexpr unsigned kThreads = 8;
  constexpr uint64_t kOpsPerThread = 1200;
  std::vector<std::atomic<uint64_t>> successes(kNodes);
  for (auto& s : successes) s.store(0);
  std::atomic<uint64_t> mutations{0};
  std::atomic<uint64_t> other_failures{0};

  RunWorkers(kThreads, [&](unsigned w) {
    Rng rng(9100 + w);
    for (uint64_t op = 0; op < kOpsPerThread; ++op) {
      if (rng.NextBernoulli(0.2)) {
        const NodeId u = static_cast<NodeId>(rng.NextBounded(kNodes));
        const NodeId v = static_cast<NodeId>(rng.NextBounded(kNodes));
        if (u == v) continue;
        // Half through the service wrapper, half straight at the graph:
        // the journal must make both equivalent.
        Status status;
        if (graph.HasEdge(u, v)) {
          status = (op % 2 == 0) ? service.RemoveEdge(u, v)
                                 : graph.RemoveEdge(u, v);
        } else {
          status =
              (op % 2 == 0) ? service.AddEdge(u, v) : graph.AddEdge(u, v);
        }
        if (status.ok()) mutations.fetch_add(1);
        continue;
      }
      const NodeId user = static_cast<NodeId>(rng.NextBounded(kNodes));
      auto rec = service.ServeRecommendation(user);
      if (rec.ok()) {
        successes[user].fetch_add(1);
      } else if (!IsBudgetExhausted(rec.status())) {
        other_failures.fetch_add(1);
      }
    }
  });

  EXPECT_EQ(other_failures.load(), 0u);
  EXPECT_GT(mutations.load(), 0u);
  uint64_t total_success = 0;
  const uint64_t max_releases = static_cast<uint64_t>(
      options.per_user_budget / options.release_epsilon + 1e-9);
  for (NodeId user = 0; user < kNodes; ++user) {
    const uint64_t s = successes[user].load();
    total_success += s;
    EXPECT_LE(s, max_releases) << "user " << user;
    EXPECT_NEAR(service.RemainingBudget(user),
                options.per_user_budget -
                    static_cast<double>(s) * options.release_epsilon,
                1e-9)
        << "user " << user;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.served, total_success);
  // Every successful release did exactly one cache lookup, repair paths
  // included.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, total_success);
  // The mutation rate guarantees the repair machinery actually ran.
  EXPECT_GT(stats.delta_kept + stats.delta_patched + stats.delta_recomputed +
                stats.journal_fallbacks,
            0u);
}

TEST(IncrementalConcurrencyTest, ConcurrentMutateAndSnapshotPatch) {
  // Mutators hammer the graph while snapshot readers force patched
  // publications (plus occasional AddNode fallbacks) — the patch path
  // runs under the writer mutex like the full rebuild, so this must stay
  // TSAN-clean and every observed snapshot must be internally coherent.
  for (bool directed : {false, true}) {
    Rng graph_rng(directed ? 171u : 172u);
    auto base = ErdosRenyiGnm(120, 400, directed, graph_rng);
    ASSERT_TRUE(base.ok());
    DynamicGraph graph(*base);
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kOpsPerThread = 1500;
    std::atomic<uint64_t> snapshots_checked{0};

    RunWorkers(kThreads, [&](unsigned w) {
      Rng rng(1700 + 10 * w + (directed ? 1 : 0));
      uint64_t last_version = 0;
      for (uint64_t op = 0; op < kOpsPerThread; ++op) {
        // Every thread both mutates and snapshots, so publication windows
        // stay small and the patch path (not just the threshold fallback)
        // is what races the mutators.
        if (rng.NextBernoulli(0.3)) {  // mutate (with rare node growth)
          if (rng.NextBernoulli(0.005)) {
            graph.AddNode();
            continue;
          }
          const NodeId u = static_cast<NodeId>(rng.NextBounded(120));
          const NodeId v = static_cast<NodeId>(rng.NextBounded(120));
          if (u == v) continue;
          if (graph.HasEdge(u, v)) {
            (void)graph.RemoveEdge(u, v);  // a racing mutator may win
          } else {
            (void)graph.AddEdge(u, v);
          }
          continue;
        }
        const DynamicGraph::StampedSnapshot snap = graph.VersionedSnapshot();
        // Stamp coherence: the version/edge-count pair and the CSRs come
        // from one immutable allocation, patched or rebuilt alike.
        ASSERT_EQ(snap.num_edges, snap.graph->num_edges());
        ASSERT_EQ(snap.graph->num_nodes(), snap.in_graph->num_nodes());
        ASSERT_EQ(snap.graph->num_arcs(), snap.in_graph->num_arcs());
        ASSERT_GE(snap.version, last_version) << "snapshot went backwards";
        last_version = snap.version;
        if (!directed) {
          ASSERT_EQ(snap.in_graph.get(), snap.graph.get());
        }
        snapshots_checked.fetch_add(1);
      }
    });

    EXPECT_GT(snapshots_checked.load(), 0u);
    EXPECT_GT(graph.snapshot_patches(), 0u)
        << "stress never exercised the patched publication path";
    // A final quiescent check: the published state must equal a
    // from-scratch rebuild of the same adjacency.
    const DynamicGraph::StampedSnapshot final_snap = graph.VersionedSnapshot();
    DynamicGraph mirror(*final_snap.graph);
    EXPECT_TRUE(mirror.SharedSnapshot()->Equals(*final_snap.graph));
    EXPECT_TRUE(final_snap.in_graph->Equals(directed
                                                ? Reverse(*final_snap.graph)
                                                : *final_snap.graph));
  }
}

}  // namespace
}  // namespace privrec
