// Graph I/O hardening: truncated, corrupt, and adversarially malformed
// input files must surface as Status errors — never a crash, a huge
// allocation, or UB-feeding arrays handed to CsrGraph. Covers the binary
// PRVG loader (size-vs-header validation BEFORE allocation, monotone
// offsets, in-range targets, checksum), the text edge-list loader
// (negative ids, over-cap ids, relabel overflow, malformed lines), and
// torn-write shapes a crash leaves behind (PRVG cut mid-trailer, WAL
// segment cut mid-record).

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gen/generators.h"
#include "graph/binary_io.h"
#include "graph/csr_graph.h"
#include "graph/edge_list_io.h"
#include "gtest/gtest.h"
#include "persist/wal.h"
#include "random/rng.h"

namespace privrec {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteWholeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  ASSERT_TRUE(out.good()) << path;
}

CsrGraph SmallGraph() {
  Rng rng(3);
  auto g = ErdosRenyiGnm(30, 60, /*directed=*/false, rng);
  EXPECT_TRUE(g.ok());
  return *g;
}

// ------------------------------------------------------------ binary PRVG

TEST(BinaryIoHardeningTest, RoundTripSurvives) {
  const CsrGraph graph = SmallGraph();
  const std::string path = TempPath("roundtrip.prvg");
  ASSERT_TRUE(SaveBinaryGraph(graph, path).ok());
  auto loaded = LoadBinaryGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), graph.num_nodes());
  EXPECT_EQ(loaded->num_arcs(), graph.num_arcs());
  EXPECT_EQ(loaded->directed(), graph.directed());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto a = graph.OutNeighbors(u);
    auto b = loaded->OutNeighbors(u);
    ASSERT_EQ(a.size(), b.size()) << "node " << u;
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(BinaryIoHardeningTest, TruncationAtEveryLayerIsAStatus) {
  const CsrGraph graph = SmallGraph();
  const std::string path = TempPath("trunc.prvg");
  ASSERT_TRUE(SaveBinaryGraph(graph, path).ok());
  const std::string bytes = ReadWholeFile(path);

  // Shorter than the header: not even a PRVG file.
  WriteWholeFile(path, bytes.substr(0, 7));
  EXPECT_FALSE(LoadBinaryGraph(path).ok());

  // Header intact, arrays cut: the size check must trip BEFORE any
  // array read (and before trusting the header counts for allocation).
  WriteWholeFile(path, bytes.substr(0, bytes.size() / 2));
  auto half = LoadBinaryGraph(path);
  ASSERT_FALSE(half.ok());
  EXPECT_NE(half.status().message().find("truncated"), std::string::npos)
      << half.status().ToString();

  // One byte shy of complete — still a clean refusal.
  WriteWholeFile(path, bytes.substr(0, bytes.size() - 1));
  EXPECT_FALSE(LoadBinaryGraph(path).ok());
}

TEST(BinaryIoHardeningTest, CorruptHeaderCountsAreRejectedBeforeAllocating) {
  const CsrGraph graph = SmallGraph();
  const std::string path = TempPath("badcounts.prvg");
  ASSERT_TRUE(SaveBinaryGraph(graph, path).ok());
  std::string bytes = ReadWholeFile(path);
  // num_nodes lives at byte offset 12 (after magic/version/flags). Claim
  // a billion nodes: the expected-size check must refuse instead of
  // attempting the implied multi-gigabyte offsets allocation.
  const uint32_t huge = 1000000000u;
  std::memcpy(bytes.data() + 12, &huge, sizeof(huge));
  WriteWholeFile(path, bytes);
  auto loaded = LoadBinaryGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("header counts"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(BinaryIoHardeningTest, WrongMagicAndVersionAreRejected) {
  const CsrGraph graph = SmallGraph();
  const std::string path = TempPath("magic.prvg");
  ASSERT_TRUE(SaveBinaryGraph(graph, path).ok());
  std::string bytes = ReadWholeFile(path);

  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  WriteWholeFile(path, wrong_magic);
  EXPECT_FALSE(LoadBinaryGraph(path).ok());

  std::string wrong_version = bytes;
  const uint32_t v9 = 9;
  std::memcpy(wrong_version.data() + 4, &v9, sizeof(v9));
  WriteWholeFile(path, wrong_version);
  auto loaded = LoadBinaryGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST(BinaryIoHardeningTest, FlippedPayloadByteFailsChecksum) {
  const CsrGraph graph = SmallGraph();
  const std::string path = TempPath("checksum.prvg");
  ASSERT_TRUE(SaveBinaryGraph(graph, path).ok());
  std::string bytes = ReadWholeFile(path);
  // Flip one byte inside the targets array (keeps the value in range on
  // this small graph, so only the checksum can catch it).
  const size_t offsets_bytes = (graph.num_nodes() + 1) * sizeof(uint64_t);
  bytes[24 + offsets_bytes] ^= 0x01;
  WriteWholeFile(path, bytes);
  auto loaded = LoadBinaryGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().ToString();
}

/// Hand-writes a PRVG file from raw arrays — the "written broken" case the
/// checksum cannot defend against (it is computed over the broken arrays),
/// which is exactly why the loader validates structure independently.
/// Mirrors the writer's layout: header {magic, version, flags, num_nodes,
/// num_arcs}, offsets, targets, XOR-fold checksum.
void WriteCraftedPrvg(const std::string& path,
                      const std::vector<uint64_t>& offsets,
                      const std::vector<NodeId>& targets) {
  uint64_t acc = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < offsets.size(); ++i) {
    acc ^= offsets[i] + 0x632be59bd9b4e019ULL * (i + 1);
    acc = (acc << 7) | (acc >> 57);
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    acc ^= static_cast<uint64_t>(targets[i]) + i;
    acc = (acc << 13) | (acc >> 51);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  const uint32_t magic = 0x47565250, version = 1, flags = 0;
  const uint32_t num_nodes = static_cast<uint32_t>(offsets.size() - 1);
  const uint64_t num_arcs = targets.size();
  out.write(reinterpret_cast<const char*>(&magic), 4);
  out.write(reinterpret_cast<const char*>(&version), 4);
  out.write(reinterpret_cast<const char*>(&flags), 4);
  out.write(reinterpret_cast<const char*>(&num_nodes), 4);
  out.write(reinterpret_cast<const char*>(&num_arcs), 8);
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * 8));
  out.write(reinterpret_cast<const char*>(targets.data()),
            static_cast<std::streamsize>(targets.size() * sizeof(NodeId)));
  out.write(reinterpret_cast<const char*>(&acc), 8);
  out.flush();
  ASSERT_TRUE(out.good());
}

TEST(BinaryIoHardeningTest, NonMonotoneOffsetsAreRejected) {
  const std::string path = TempPath("nonmono.prvg");
  // 2 nodes, 2 arcs, offsets {0, 3, 2}: back() matches the arc count but
  // node 1's extent is negative — UB in every neighbor scan downstream.
  WriteCraftedPrvg(path, {0, 3, 2}, {1, 0});
  auto loaded = LoadBinaryGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("non-monotone"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(BinaryIoHardeningTest, OutOfRangeTargetsAreRejected) {
  const std::string path = TempPath("oobtarget.prvg");
  // 2 nodes but an arc pointing at node 7.
  WriteCraftedPrvg(path, {0, 1, 1}, {7});
  auto loaded = LoadBinaryGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("out-of-range target"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(BinaryIoHardeningTest, CorruptFirstOffsetIsRejected) {
  const std::string path = TempPath("badfront.prvg");
  WriteCraftedPrvg(path, {1, 1, 2}, {0, 1});
  EXPECT_FALSE(LoadBinaryGraph(path).ok());
}

// ------------------------------------------------------------ torn writes

TEST(TornWriteHardeningTest, PrvgTruncatedMidTrailerIsACleanRefusal) {
  // A crash during checkpointing can cut the file INSIDE the final 8-byte
  // checksum trailer: every array is complete, only the trailer is short.
  // That must refuse like any other truncation — never read past the end
  // or accept a partial checksum as valid.
  const CsrGraph graph = SmallGraph();
  const std::string path = TempPath("midtrailer.prvg");
  ASSERT_TRUE(SaveBinaryGraph(graph, path).ok());
  const std::string bytes = ReadWholeFile(path);
  for (const size_t missing : {1u, 4u, 7u}) {
    WriteWholeFile(path, bytes.substr(0, bytes.size() - missing));
    auto loaded = LoadBinaryGraph(path);
    ASSERT_FALSE(loaded.ok()) << "missing " << missing << " trailer bytes";
  }
  // The intact file still loads — the refusals above were the tear, not
  // collateral damage from the writes.
  WriteWholeFile(path, bytes);
  EXPECT_TRUE(LoadBinaryGraph(path).ok());
}

TEST(TornWriteHardeningTest, WalSegmentTruncatedMidRecordKeepsThePrefix) {
  // The WAL analogue: a record cut mid-write in the LAST segment is a
  // torn tail — truncated on open, intact prefix preserved, appends
  // resume. Every truncation offset inside the final record must land on
  // the same durable prefix.
  const std::string dir = ::testing::TempDir() + "/io_torn_wal";
  const uint64_t header = 16, record = 32;
  for (const uint64_t keep_extra : {1ull, 16ull, 31ull}) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    {
      auto wal = WriteAheadLog::Open(dir);
      ASSERT_TRUE(wal.ok()) << wal.status().ToString();
      for (uint32_t i = 0; i < 3; ++i) {
        ASSERT_TRUE((*wal)->Append(WalRecordKind::kAddEdge, i, i + 1).ok());
      }
    }
    std::string segment;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      segment = entry.path().string();
    }
    ASSERT_EQ(std::filesystem::file_size(segment), header + 3 * record);
    const std::string bytes = ReadWholeFile(segment);
    WriteWholeFile(segment, bytes.substr(0, header + 2 * record + keep_extra));
    auto wal = WriteAheadLog::Open(dir);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_EQ((*wal)->truncated_tail_bytes(), keep_extra);
    auto records = (*wal)->ReadAfter(0);
    ASSERT_TRUE(records.ok());
    EXPECT_EQ(records->size(), 2u) << "keep_extra=" << keep_extra;
    EXPECT_EQ((*wal)->next_seq(), 3u);
  }
}

TEST(TornWriteHardeningTest, FlippedWalRecordByteIsCutNotReplayed) {
  // Checksummed records: bit rot inside the tail record must be treated
  // as a tear (cut), never replayed into the graph as a bogus mutation.
  const std::string dir = ::testing::TempDir() + "/io_flipped_wal";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  {
    auto wal = WriteAheadLog::Open(dir);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordKind::kAddEdge, 1, 2).ok());
    ASSERT_TRUE((*wal)->Append(WalRecordKind::kAddEdge, 3, 4).ok());
  }
  std::string segment;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    segment = entry.path().string();
  }
  std::string bytes = ReadWholeFile(segment);
  bytes[16 + 32 + 4] ^= 0x40;  // corrupt the tail record's `u` field
  WriteWholeFile(segment, bytes);
  auto wal = WriteAheadLog::Open(dir);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  auto records = (*wal)->ReadAfter(0);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].u, 1u);
}

// -------------------------------------------------------------- edge list

TEST(EdgeListHardeningTest, NegativeIdsAreRejectedEvenUnderRelabel) {
  const std::string path = TempPath("negative.txt");
  WriteWholeFile(path, "0 1\n-3 2\n");
  for (const bool relabel : {true, false}) {
    EdgeListOptions options;
    options.relabel = relabel;
    auto loaded = LoadEdgeList(path, options);
    ASSERT_FALSE(loaded.ok()) << "relabel=" << relabel;
    EXPECT_NE(loaded.status().message().find("negative"), std::string::npos);
  }
}

TEST(EdgeListHardeningTest, OverCapIdsFailFastWithoutRelabel) {
  const std::string path = TempPath("overcap.txt");
  WriteWholeFile(path, "0 1\n0 999999\n");
  EdgeListOptions options;
  options.relabel = false;
  options.max_node_id = 1000;
  auto loaded = LoadEdgeList(path, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("out of range"),
            std::string::npos);
}

TEST(EdgeListHardeningTest, AstronomicalIdNeverDrivesAllocation) {
  // A malformed line claiming node 10^15: without relabeling the default
  // NodeId-range cap refuses it; with relabeling it maps into the dense
  // range and loads fine.
  const std::string path = TempPath("huge.txt");
  WriteWholeFile(path, "0 1\n2 1000000000000000\n");
  EdgeListOptions raw;
  raw.relabel = false;
  EXPECT_FALSE(LoadEdgeList(path, raw).ok());
  EdgeListOptions dense;
  dense.relabel = true;
  auto loaded = LoadEdgeList(path, dense);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), 4u);
}

TEST(EdgeListHardeningTest, RelabelOverflowTripsTheDenseCap) {
  const std::string path = TempPath("relabelcap.txt");
  WriteWholeFile(path, "10 20\n30 40\n");  // four distinct raw ids
  EdgeListOptions options;
  options.relabel = true;
  options.max_node_id = 2;  // dense ids 0..2 only: the 4th id overflows
  auto loaded = LoadEdgeList(path, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("too many distinct"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(EdgeListHardeningTest, MalformedLinesAreRejectedWithLineNumbers) {
  const std::string path = TempPath("malformed.txt");
  WriteWholeFile(path, "# comment\n0 1\n2\n");
  auto one_token = LoadEdgeList(path, EdgeListOptions{});
  ASSERT_FALSE(one_token.ok());
  EXPECT_NE(one_token.status().message().find(":3"), std::string::npos)
      << one_token.status().ToString();

  WriteWholeFile(path, "0 1\nfoo bar\n");
  auto non_integer = LoadEdgeList(path, EdgeListOptions{});
  ASSERT_FALSE(non_integer.ok());
  EXPECT_NE(non_integer.status().message().find("non-integer"),
            std::string::npos);
}

TEST(EdgeListHardeningTest, MissingFileIsAnIoError) {
  auto loaded = LoadEdgeList(TempPath("does-not-exist.txt"),
                             EdgeListOptions{});
  EXPECT_FALSE(loaded.ok());
  EXPECT_FALSE(LoadBinaryGraph(TempPath("does-not-exist.prvg")).ok());
}

}  // namespace
}  // namespace privrec
