// Focused tests for the evaluation plumbing: Monte-Carlo vs exact
// accuracy convergence, ParallelFor semantics, and CDF edge cases.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "core/baseline_mechanisms.h"
#include "core/exponential_mechanism.h"
#include "core/laplace_mechanism.h"
#include "eval/accuracy.h"
#include "eval/cdf.h"
#include "eval/experiment.h"
#include "eval/parallel.h"
#include "gen/fixtures.h"
#include "gtest/gtest.h"
#include "random/rng.h"
#include "utility/common_neighbors.h"

namespace privrec {
namespace {

UtilityVector EvalVector() {
  return UtilityVector(0, 20, {{1, 4.0}, {2, 3.0}, {3, 1.0}, {4, 0.5}});
}

// ---------------------------------------------------------------- accuracy

TEST(AccuracyTest, MonteCarloConvergesToExactForExponential) {
  ExponentialMechanism mech(1.0, 1.0);
  UtilityVector u = EvalVector();
  auto exact = ExactExpectedAccuracy(mech, u);
  ASSERT_TRUE(exact.ok());
  Rng rng(3);
  // Error should shrink roughly as 1/sqrt(trials).
  auto coarse = MonteCarloExpectedAccuracy(mech, u, 100, rng);
  auto fine = MonteCarloExpectedAccuracy(mech, u, 100000, rng);
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  EXPECT_NEAR(*fine, *exact, 0.01);
  EXPECT_LE(std::fabs(*fine - *exact), std::fabs(*coarse - *exact) + 0.02);
}

TEST(AccuracyTest, MonteCarloMatchesExactForLaplace) {
  LaplaceMechanism mech(1.0, 1.0);
  UtilityVector u = EvalVector();
  auto exact = ExactExpectedAccuracy(mech, u);
  ASSERT_TRUE(exact.ok());
  Rng rng(5);
  auto mc = MonteCarloExpectedAccuracy(mech, u, 50000, rng);
  ASSERT_TRUE(mc.ok());
  EXPECT_NEAR(*mc, *exact, 0.01);
}

TEST(AccuracyTest, ErrorPaths) {
  ExponentialMechanism mech(1.0, 1.0);
  UtilityVector empty(0, 10, {});
  Rng rng(7);
  EXPECT_TRUE(ExactExpectedAccuracy(mech, empty)
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(MonteCarloExpectedAccuracy(mech, empty, 10, rng)
                  .status()
                  .IsFailedPrecondition());
  UtilityVector u = EvalVector();
  EXPECT_TRUE(MonteCarloExpectedAccuracy(mech, u, 0, rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(AccuracyTest, BestMechanismAccuracyIsOneUnderBothEvaluators) {
  BestMechanism best;
  UtilityVector u = EvalVector();
  Rng rng(9);
  EXPECT_DOUBLE_EQ(*ExactExpectedAccuracy(best, u), 1.0);
  EXPECT_DOUBLE_EQ(*MonteCarloExpectedAccuracy(best, u, 50, rng), 1.0);
}

// --------------------------------------------------------------- parallel

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr size_t kCount = 10000;
  std::vector<std::atomic<int>> visits(kCount);
  ParallelFor(kCount, [&](size_t i) { visits[i].fetch_add(1); },
              /*num_threads=*/8);
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, SingleThreadFallbackAndEmpty) {
  std::vector<int> order;
  ParallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); },
              /*num_threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // sequential order
  ParallelFor(0, [&](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int> total{0};
  ParallelFor(3, [&](size_t) { total.fetch_add(1); }, /*num_threads=*/16);
  EXPECT_EQ(total.load(), 3);
}

// -------------------------------------------------------------------- CDF

TEST(CdfEdgeCaseTest, AllValuesIdentical) {
  std::vector<double> values(100, 0.5);
  auto cdf = FractionAtOrBelow(values, {0.4, 0.5, 0.6});
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 1.0);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
}

TEST(CdfEdgeCaseTest, EmptyInput) {
  auto cdf = FractionAtOrBelow({}, {0.5});
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_TRUE(std::isnan(MeanIgnoringNan({})));
  EXPECT_TRUE(std::isnan(MeanIgnoringNan({std::nan("")})));
}

TEST(CdfEdgeCaseTest, BucketsSkipZeroDegree) {
  // Degree-0 nodes fall below the first geometric bucket [1,2) and are
  // dropped (they are skipped targets anyway).
  auto buckets = BucketByDegree({0, 0, 1}, {0.1, 0.2, 0.9});
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_DOUBLE_EQ(buckets[0].mean_accuracy, 0.9);
}

// ------------------------------------------------------------- experiment

TEST(ExperimentEdgeCaseTest, FullFractionSamplesEveryNode) {
  CsrGraph g = MakeComplete(10);
  Rng rng(11);
  auto targets = SampleTargets(g, 1.0, rng);
  EXPECT_EQ(targets.size(), 10u);
  std::sort(targets.begin(), targets.end());
  for (NodeId i = 0; i < 10; ++i) EXPECT_EQ(targets[i], i);
}

TEST(ExperimentEdgeCaseTest, TinyFractionSamplesAtLeastOne) {
  CsrGraph g = MakeComplete(10);
  Rng rng(13);
  EXPECT_EQ(SampleTargets(g, 1e-9, rng).size(), 1u);
}

TEST(ExperimentEdgeCaseTest, SkippedTargetsAreMarked) {
  // Star graph, target = hub: every non-neighbor… hub is adjacent to all,
  // so zero candidates -> utility vector empty -> skipped.
  CsrGraph g = MakeStar(6);
  CommonNeighborsUtility cn;
  EvaluationOptions options;
  options.epsilon = 1.0;
  auto evals = EvaluateTargets(g, cn, {0}, options);
  ASSERT_EQ(evals.size(), 1u);
  EXPECT_TRUE(evals[0].skipped);
  EXPECT_TRUE(std::isnan(evals[0].laplace_accuracy));
}

}  // namespace
}  // namespace privrec
