// Property tests for the degree-capped projection layer (graph/degree_cap.h)
// that node-DP serving reads through:
//  - node-pair differential locality: rewiring node x leaves the projected
//    out-list of every node not adjacent to x (on either side) bit-identical,
//    at every cap — the structural fact the node-sensitivity bound
//    D * Δf_edge charges against;
//  - determinism: the projected view is a pure function of the base graph
//    and the cap — identical across repeated materializations and across
//    service shard counts;
//  - patched-vs-rebuilt equality: a mutation-heavy DynamicGraph whose
//    projected companions are journal-patched (PatchProjectedCsr) publishes
//    projections Equals()-identical to a from-scratch mirror, through
//    journal compaction and AddNode fallbacks (the PR 5 mirror-harness
//    pattern extended to the projected companion).

#include <gtest/gtest.h>

#include <vector>

#include "gen/fixtures.h"
#include "gen/generators.h"
#include "gen/neighboring.h"
#include "graph/degree_cap.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_builder.h"
#include "random/rng.h"
#include "serve/recommendation_service.h"
#include "utility/link_predictors.h"

namespace privrec {
namespace {

constexpr uint32_t kCaps[] = {1, 2, 3, 8};

bool SameOutList(const CsrGraph& a, const CsrGraph& b, NodeId v) {
  const auto la = a.OutNeighbors(v);
  const auto lb = b.OutNeighbors(v);
  if (la.size() != lb.size()) return false;
  for (size_t i = 0; i < la.size(); ++i) {
    if (la[i] != lb[i]) return false;
  }
  return true;
}

// ------------------------------------------- node-pair differential locality

TEST(DegreeCapProjectionTest, NodePairDifferentialLocalityAtEveryCap) {
  // For a node-rewiring pair (G, G') differing in node x's neighborhood,
  // and any cap D: a node w whose adjacency contains x on NEITHER side has
  // a bit-identical projected out-list on both sides. This is the
  // selection rule's per-node locality (each kept prefix is a pure
  // function of the node's own neighbor set), and it is what confines a
  // rewiring's blast radius to x and x's (old or new) neighbors.
  Rng rng(901);
  auto graph = ErdosRenyiGnm(30, 120, /*directed=*/false, rng);
  ASSERT_TRUE(graph.ok());
  for (uint32_t cap : kCaps) {
    for (int trial = 0; trial < 8; ++trial) {
      const NodeId x = static_cast<NodeId>(1 + rng.NextBounded(29));
      auto pair = MakeNodeRewiringPair(*graph, /*target=*/0, x, rng);
      ASSERT_TRUE(pair.ok());
      const CsrGraph base_proj = ProjectDegreeCapped(pair->base, cap);
      const CsrGraph rewired_proj = ProjectDegreeCapped(pair->neighbor, cap);
      for (NodeId w = 0; w < base_proj.num_nodes(); ++w) {
        // Every projected out-degree honors the cap — the degree bound
        // node-sensitivity accounting charges against.
        EXPECT_LE(base_proj.OutDegree(w), cap);
        EXPECT_LE(rewired_proj.OutDegree(w), cap);
        if (w == x) continue;
        const bool touches_x =
            pair->base.HasEdge(w, x) || pair->neighbor.HasEdge(w, x);
        if (touches_x) continue;
        EXPECT_TRUE(SameOutList(base_proj, rewired_proj, w))
            << "cap " << cap << ": node " << w
            << " is not adjacent to rewired node " << x
            << " on either side but its projected out-list moved";
      }
    }
  }
}

TEST(DegreeCapProjectionTest, WorstCasePairSwingBoundedByCap) {
  // On the trip-wire fixture (x's whole adjacency removed), the projected
  // candidate utilities can move by at most the capped prefix the target
  // actually kept — spot-check the arithmetic the bench's honest rows rely
  // on: r keeps exactly min(zs, D) z's, and each z's list loses exactly
  // the one arc to x.
  const NeighboringPair pair = MakeNodeAuditRewiringPair();
  for (uint32_t cap : kCaps) {
    const CsrGraph base_proj = ProjectDegreeCapped(pair.base, cap);
    const CsrGraph rewired_proj = ProjectDegreeCapped(pair.neighbor, cap);
    EXPECT_EQ(base_proj.OutDegree(0), std::min<uint32_t>(32, cap));
    EXPECT_TRUE(SameOutList(base_proj, rewired_proj, 0))
        << "target r's projected prefix must not move under x's rewiring";
    EXPECT_EQ(rewired_proj.OutDegree(1), 0u);  // x emptied
    for (NodeId z = 3; z < 35; ++z) {
      // z's raw adjacency is {r, x} -> {r}; both fit under every cap.
      EXPECT_EQ(base_proj.OutDegree(z), std::min<uint32_t>(2, cap));
      EXPECT_EQ(rewired_proj.OutDegree(z), std::min<uint32_t>(1, cap));
    }
  }
}

// ----------------------------------------------------------- determinism

TEST(DegreeCapProjectionTest, DeterministicAcrossMaterializations) {
  Rng rng(902);
  auto graph = ErdosRenyiGnm(40, 160, /*directed=*/false, rng);
  ASSERT_TRUE(graph.ok());
  for (uint32_t cap : kCaps) {
    const CsrGraph once = ProjectDegreeCapped(*graph, cap);
    const CsrGraph twice = ProjectDegreeCapped(*graph, cap);
    EXPECT_TRUE(once.Equals(twice));
  }
}

TEST(DegreeCapProjectionTest, DeterministicAcrossServiceShardCounts) {
  // Two kNode services over the same graph with different shard counts
  // must serve off Equals()-identical projected views: the projection is
  // published once per DynamicGraph snapshot, not per shard, and equals
  // the pure-function materialization. (Guards against a future "each
  // shard projects its own stripe" optimization changing the view.)
  Rng rng(903);
  auto graph = ErdosRenyiGnm(64, 256, /*directed=*/false, rng);
  ASSERT_TRUE(graph.ok());
  const CsrGraph expected = ProjectDegreeCapped(*graph, 4);
  for (size_t shards : {size_t{1}, size_t{8}}) {
    DynamicGraph dynamic(*graph);
    ServiceOptions options;
    options.release_epsilon = 0.5;
    options.per_user_budget = 100.0;
    options.num_shards = shards;
    options.privacy_model = PrivacyModel::kNode;
    options.degree_cap = 4;
    RecommendationService service(
        &dynamic, std::make_unique<ResourceAllocationUtility>(), options);
    // Touch every shard so each pins its snapshot through the serve path.
    Rng serve_rng(904);
    for (NodeId user = 0; user < 16; ++user) {
      ASSERT_TRUE(service.ServeForAudit(user, serve_rng).ok());
    }
    const DynamicGraph::StampedSnapshot snap = dynamic.VersionedSnapshot();
    ASSERT_NE(snap.projected, nullptr);
    EXPECT_TRUE(snap.projected->Equals(expected))
        << shards << "-shard service projected view diverged";
  }
}

// ---------------------------------------- patched vs rebuilt projections

TEST(ProjectionSnapshotPatchTest, RandomizedMutationsEqualFromScratch) {
  // Mirror harness: `patched` publishes projected companions via the O(Δ)
  // PatchProjectedCsr route whenever the journal window allows; `rebuilt`
  // has patching disabled, so every one of its projections is a
  // from-scratch ProjectDegreeCapped. Both must publish Equals()-identical
  // projections at every sampled version, through small-journal compaction
  // fallbacks and AddNode (which PatchProjectedCsr refuses, falling back
  // to a full projection build).
  for (uint32_t cap : {2u, 8u}) {
    Rng rng(920 + cap);
    auto base = ErdosRenyiGnm(40, 90, /*directed=*/false, rng);
    ASSERT_TRUE(base.ok());
    DynamicGraph patched(*base);
    DynamicGraph rebuilt(*base);
    rebuilt.SetSnapshotPatchThreshold(0);
    patched.SetJournalCapacity(8);
    patched.SetDegreeCap(cap);
    rebuilt.SetDegreeCap(cap);
    NodeId nodes = 40;
    for (int step = 0; step < 400; ++step) {
      if (rng.NextBernoulli(0.02)) {
        ASSERT_EQ(patched.AddNode(), rebuilt.AddNode());
        ++nodes;
        continue;
      }
      const NodeId u = static_cast<NodeId>(rng.NextBounded(nodes));
      const NodeId v = static_cast<NodeId>(rng.NextBounded(nodes));
      if (u == v) continue;
      if (patched.HasEdge(u, v)) {
        ASSERT_TRUE(patched.RemoveEdge(u, v).ok());
        ASSERT_TRUE(rebuilt.RemoveEdge(u, v).ok());
      } else {
        ASSERT_TRUE(patched.AddEdge(u, v).ok());
        ASSERT_TRUE(rebuilt.AddEdge(u, v).ok());
      }
      if (!rng.NextBernoulli(0.35)) continue;
      const DynamicGraph::StampedSnapshot a = patched.VersionedSnapshot();
      const DynamicGraph::StampedSnapshot b = rebuilt.VersionedSnapshot();
      ASSERT_EQ(a.version, b.version);
      ASSERT_NE(a.projected, nullptr);
      ASSERT_NE(b.projected, nullptr);
      ASSERT_TRUE(a.projected->Equals(*b.projected))
          << "cap " << cap << ": projected CSR diverged at step " << step;
      // The projection must also agree with the pure function of the
      // published forward CSR — patching may never drift from the rule.
      ASSERT_TRUE(a.projected->Equals(ProjectDegreeCapped(*a.graph, cap)))
          << "cap " << cap << ": patched projection drifted at step " << step;
    }
    // The harness only proves something if both publication routes ran.
    EXPECT_GT(patched.projection_patches(), 0u);
    EXPECT_GT(patched.projection_builds(), 0u);  // AddNode/compaction falls back
    EXPECT_EQ(rebuilt.projection_patches(), 0u);
    EXPECT_GT(rebuilt.projection_builds(), 0u);
  }
}

}  // namespace
}  // namespace privrec
