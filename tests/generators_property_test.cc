// Property sweeps over the graph generators: structural invariants every
// generator must satisfy on every seed — no self-loops, no duplicate
// arcs, sorted adjacency, symmetric arcs for undirected output, and
// determinism in the seed. These invariants are load-bearing: the utility
// functions assume sorted duplicate-free neighbor lists, and the
// experiment harness assumes seed-determinism.

#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "gen/generators.h"
#include "gen/rewiring.h"
#include "gtest/gtest.h"
#include "random/rng.h"

namespace privrec {
namespace {

struct GeneratorCase {
  std::string name;
  std::function<Result<CsrGraph>(Rng&)> make;
};

std::vector<GeneratorCase> AllGenerators() {
  std::vector<GeneratorCase> cases;
  cases.push_back({"er_gnm_und", [](Rng& rng) {
                     return ErdosRenyiGnm(150, 700, false, rng);
                   }});
  cases.push_back({"er_gnm_dir", [](Rng& rng) {
                     return ErdosRenyiGnm(150, 700, true, rng);
                   }});
  cases.push_back({"er_gnp_und", [](Rng& rng) {
                     return ErdosRenyiGnp(150, 0.05, false, rng);
                   }});
  cases.push_back({"er_gnp_dir", [](Rng& rng) {
                     return ErdosRenyiGnp(150, 0.05, true, rng);
                   }});
  cases.push_back(
      {"ba", [](Rng& rng) { return BarabasiAlbert(200, 3, rng); }});
  cases.push_back({"ws", [](Rng& rng) {
                     return WattsStrogatz(120, 3, 0.2, rng);
                   }});
  cases.push_back({"config_model", [](Rng& rng) {
                     std::vector<uint32_t> degrees(100);
                     for (auto& d : degrees) {
                       d = 1 + static_cast<uint32_t>(rng.NextBounded(6));
                     }
                     if ((std::accumulate(degrees.begin(), degrees.end(),
                                          0u) %
                          2) != 0) {
                       degrees[0]++;
                     }
                     return ConfigurationModel(degrees, rng);
                   }});
  cases.push_back({"chung_lu_und", [](Rng& rng) {
                     auto w = PowerLawWeights(200, 2.2);
                     return ChungLu(w, w, 900, false, rng);
                   }});
  cases.push_back({"chung_lu_dir", [](Rng& rng) {
                     auto wo = PowerLawWeights(200, 2.0);
                     auto wi = PowerLawWeights(200, 2.4);
                     return ChungLu(wo, wi, 900, true, rng);
                   }});
  cases.push_back({"rmat", [](Rng& rng) {
                     return Rmat(8, 900, 0.57, 0.19, 0.19, true, rng);
                   }});
  cases.push_back({"zipf_degree_cl", [](Rng& rng) {
                     auto w =
                         SamplePowerLawDegreeWeights(200, 1.6, 50, rng);
                     return ChungLu(w, w, 600, false, rng);
                   }});
  cases.push_back({"rewired", [](Rng& rng) {
                     auto g = ErdosRenyiGnm(120, 500, false, rng);
                     return DegreePreservingRewire(*g, 2000, rng, nullptr);
                   }});
  return cases;
}

class GeneratorInvariantSweep
    : public testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(GeneratorInvariantSweep, StructuralInvariantsHold) {
  const auto cases = AllGenerators();
  const GeneratorCase& gen = cases[std::get<0>(GetParam())];
  Rng rng(std::get<1>(GetParam()));
  auto graph = gen.make(rng);
  ASSERT_TRUE(graph.ok()) << gen.name << ": " << graph.status().ToString();

  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    auto nbrs = graph->OutNeighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      // No self-loops, in-range targets.
      EXPECT_NE(nbrs[i], v) << gen.name;
      ASSERT_LT(nbrs[i], graph->num_nodes()) << gen.name;
      // Sorted strictly ascending => no duplicates.
      if (i > 0) {
        EXPECT_LT(nbrs[i - 1], nbrs[i]) << gen.name << " v=" << v;
      }
      // Undirected graphs store symmetric arcs.
      if (!graph->directed()) {
        EXPECT_TRUE(graph->HasEdge(nbrs[i], v))
            << gen.name << " missing reverse of (" << v << "," << nbrs[i]
            << ")";
      }
    }
  }
}

TEST_P(GeneratorInvariantSweep, DeterministicInSeed) {
  const auto cases = AllGenerators();
  const GeneratorCase& gen = cases[std::get<0>(GetParam())];
  const uint64_t seed = std::get<1>(GetParam());
  Rng rng_a(seed), rng_b(seed);
  auto a = gen.make(rng_a);
  auto b = gen.make(rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->Equals(*b)) << gen.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorInvariantSweep,
    testing::Combine(testing::Range<size_t>(0, 12),
                     testing::Values(1ull, 17ull, 4242ull)),
    [](const testing::TestParamInfo<std::tuple<size_t, uint64_t>>& info) {
      static const auto cases = AllGenerators();
      return cases[std::get<0>(info.param)].name + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace privrec
